# Development targets. `make check` is the pre-commit gate: formatting,
# vet, and the full test suite under the race detector.

GO ?= go

.PHONY: all build test race vet fmt check bench benchcheck fuzz faults linkcheck shardcheck livecheck anncheck httpshardcheck throughputcheck

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Docs link checker: every relative markdown link must resolve to a file.
linkcheck:
	$(GO) test -run '^TestDocLinks$$' .

# Shard-count invariance battery under the race detector (docs/SHARDING.md):
# sharded rankings must be bit-identical to unsharded ones, concurrently.
shardcheck:
	$(GO) test -race -run '^Test(Shard|Coordinator)' . ./internal/shard

# Rebuild-equivalence battery under the race detector (docs/LIVE_INDEX.md):
# after any add/remove sequence against live indexes, rankings must be
# bit-identical to a from-scratch build, including under concurrent queries
# and delta-log restart replay.
livecheck:
	$(GO) test -race -run '^TestLive' .

# Shard-over-HTTP battery under the race detector (docs/SHARDING.md
# §"Shard-over-HTTP"): remote scatter-gather must rank bit-identically to
# in-process sharding and the unsharded system — clean and under every
# injected fault class (refusal, 500s, corruption, stalls, slow-loris) —
# plus the retry/hedge/failover/breaker unit tests and the /shard/*
# endpoint handlers.
httpshardcheck:
	$(GO) test -race -run '^Test(HTTPShard|RemoteShard|ReadOnly)' ./internal/server ./internal/remote

# ANN serving battery under the race detector (docs/ANN.md): HNSW graph
# invariants, off-mode bit-identity, parallelism/shard determinism, epoch
# fallback + rebuild, and the recall/NDCG thresholds of the differential
# harness (`benchrunner -exp ann`).
anncheck:
	$(GO) test -race -run '^Test(ANN|HNSW)' . ./internal/embedding ./internal/experiments

# Throughput battery under the race detector (docs/THROUGHPUT.md): batch
# search must be bit-identical to sequential calls across the scoring
# matrix (including truncation and mutation races), and the cross-query σ
# cache must never change a ranking before or after epoch invalidation.
throughputcheck:
	$(GO) test -race -run '^Test(Batch|CrossCache)' . ./internal/core ./internal/server

check: fmt vet build race linkcheck shardcheck livecheck anncheck httpshardcheck throughputcheck

# Replays every fuzz target's seed corpus (f.Add seeds + testdata/fuzz/)
# as a fast regression suite. Live exploration happens in CI and via
# `go test -fuzz <Target> <pkg>`.
fuzz:
	$(GO) test -run '^Fuzz' ./internal/atomicio ./internal/bm25 ./internal/core ./internal/embedding ./internal/kg ./internal/lsh ./internal/server

# Fault-injection and corruption-matrix suite (docs/RELIABILITY.md): every
# test named Corrupt* or Fault* — single-byte snapshot flips, truncations,
# injected device errors, contained panics.
faults:
	$(GO) test -run '^Test(Corrupt|Fault)' ./...

# Paper-table benchmarks (bench_test.go); pass BENCH=<regex> to narrow.
BENCH ?= .
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

# Paired σ-cache regression canary (docs/PERFORMANCE.md): default build vs
# the `nosigmacache` escape hatch, best-of-N, fail on >5% regression.
benchcheck:
	./scripts/benchcheck.sh
