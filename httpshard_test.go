package thetis

// Root-package tests for the shard-over-HTTP daemon glue. The end-to-end
// differential battery lives in internal/server/httpshard_battery_test.go;
// these cover the System-level wire-query resolution directly.

import (
	"context"
	"testing"

	"thetis/internal/remote"
)

// TestResolveWireQueryUnknownURIsAreEphemeral: a /shard/search query
// mentioning URIs this daemon has never interned must not grow the shared
// graph (a stream of novel URIs — adversarial or just diverse — would
// otherwise expand it without bound and serialize searches behind the
// write locks). Unknowns resolve to request-scoped ephemeral IDs that
// preserve tuple arity and identity: distinct URIs stay distinct, repeats
// share an ID, and none collide with real entities.
func TestResolveWireQueryUnknownURIsAreEphemeral(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	before := sys.GraphCounts()

	q := sys.resolveWireQuery([][]string{
		{"res/Ron_Santo", "http://nowhere/unknown-a"},
		{"http://nowhere/unknown-b", "http://nowhere/unknown-a"},
	})
	if got := sys.GraphCounts(); got != before {
		t.Fatalf("resolving unknown URIs mutated the graph: %+v -> %+v", before, got)
	}
	if len(q) != 2 || len(q[0]) != 2 || len(q[1]) != 2 {
		t.Fatalf("tuple arity lost: %+v", q)
	}
	known, ok := sys.graph.Lookup("res/Ron_Santo")
	if !ok || q[0][0] != known {
		t.Fatalf("known URI resolved to %v, want %v", q[0][0], known)
	}
	a, b := q[0][1], q[1][0]
	if a == b {
		t.Fatal("distinct unknown URIs collapsed to one ID")
	}
	if q[1][1] != a {
		t.Fatalf("repeated unknown URI got a fresh ID: %v vs %v", q[1][1], a)
	}
	for _, e := range []EntityID{a, b} {
		if int(e) < sys.graph.NumEntities() {
			t.Fatalf("ephemeral ID %v collides with the interned range [0,%d)", e, sys.graph.NumEntities())
		}
	}

	// Resolving the same unknowns again must still not intern anything —
	// the IDs are request-scoped, not cached.
	sys.resolveWireQuery([][]string{{"http://nowhere/unknown-a"}})
	if got := sys.GraphCounts(); got != before {
		t.Fatalf("second resolution mutated the graph: %+v -> %+v", before, got)
	}
}

// TestServeShardSearchUnknownURIsStillRank: a leg whose query mixes known
// and unknown entities must search without panicking or growing the
// graph, under both similarities — every σ implementation treats an
// ephemeral out-of-range ID as an entity with no types, edges, or
// vectors (score 0 off the diagonal), exactly like a freshly interned
// stranger used to.
func TestServeShardSearchUnknownURIsStillRank(t *testing.T) {
	for _, sim := range []string{"type", "predicate"} {
		sys, _ := buildDemoSystem(t)
		switch sim {
		case "type":
			sys.UseTypeSimilarity()
		case "predicate":
			sys.UsePredicateSimilarity()
		}
		before := sys.GraphCounts()
		p := sys.ServeShardSearch(context.Background(), remote.SearchRequest{
			Tuples: [][]string{{"res/Ron_Santo", "http://nowhere/never-seen"}},
			K:      10,
		})
		if got := sys.GraphCounts(); got != before {
			t.Fatalf("%s: ServeShardSearch grew the graph: %+v -> %+v", sim, before, got)
		}
		if len(p.Results) == 0 {
			t.Fatalf("%s: no results despite a known query entity", sim)
		}
		if p.Results[0].Table != 0 {
			t.Fatalf("%s: roster table not ranked first: %+v", sim, p.Results)
		}
	}
}

// TestResolveWireQueryAllUnknownEmptyRanking: a query of only strangers
// matches nothing but must degrade cleanly (σ = 0 everywhere scores no
// table above zero).
func TestResolveWireQueryAllUnknownEmptyRanking(t *testing.T) {
	sys, _ := buildDemoSystem(t)
	sys.UseTypeSimilarity()
	p := sys.ServeShardSearch(context.Background(), remote.SearchRequest{
		Tuples: [][]string{{"http://nowhere/x", "http://nowhere/y"}},
		K:      10,
	})
	for _, r := range p.Results {
		if r.Score != 0 {
			t.Fatalf("all-unknown query scored a table: %+v", p.Results)
		}
	}
}
