package thetis

// Throughput battery (docs/THROUGHPUT.md): SearchBatch must be
// bit-identical to sequential Search calls across aggregation × score mode
// × parallelism × shard count × LSH, truncation must cut the whole batch
// to correctly ranked prefixes, and the cross-query σ cache must never
// change a ranking — before or after mutation-epoch invalidation.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// assertBatchEquals compares one SearchBatch answer against per-query
// sequential SearchStats on the same system: same IDs, same scores (bit
// for bit), same order.
func assertBatchEquals(t *testing.T, label string, s interface {
	SearchBatch(queries []Query, k int) ([][]Result, []SearchStats)
	SearchStats(q Query, k int) ([]Result, SearchStats)
}, queries []Query, k int) {
	t.Helper()
	got, gotStats := s.SearchBatch(queries, k)
	for qi, q := range queries {
		want, wantStats := s.SearchStats(q, k)
		if gotStats[qi].Truncated || wantStats.Truncated {
			t.Fatalf("%s q%d: unexpected truncation (batch=%v sequential=%v)",
				label, qi, gotStats[qi].Truncated, wantStats.Truncated)
		}
		if len(got[qi]) != len(want) {
			t.Fatalf("%s q%d: batch returned %d results, sequential %d", label, qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i].Table != want[i].Table || got[qi][i].Score != want[i].Score {
				t.Fatalf("%s q%d rank %d: batch (%d, %.17g/%#x), sequential (%d, %.17g/%#x)",
					label, qi, i,
					got[qi][i].Table, got[qi][i].Score, math.Float64bits(got[qi][i].Score),
					want[i].Table, want[i].Score, math.Float64bits(want[i].Score))
			}
		}
	}
}

// TestBatchMatchesSequentialFullScan sweeps the scoring matrix on an
// unsharded, unindexed System: the table-major batch pass must reproduce
// the sequential rankings under every aggregation, score mode, and
// parallelism, at top-10 and unbounded k.
func TestBatchMatchesSequentialFullScan(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	for _, cfg := range []struct {
		name string
		agg  Aggregation
		mode ScoreMode
		par  int
	}{
		{"max-entitywise-par0", AggregateMax, ModeEntityWise, 0},
		{"avg-entitywise-par1", AggregateAvg, ModeEntityWise, 1},
		{"max-pairwise-par4", AggregateMax, ModePairwise, 4},
		{"avg-pairwise-par1", AggregateAvg, ModePairwise, 1},
	} {
		sys.SetAggregation(cfg.agg)
		sys.SetScoreMode(cfg.mode)
		sys.SetParallelism(cfg.par)
		assertBatchEquals(t, cfg.name, sys, queries, 10)
		assertBatchEquals(t, cfg.name+"/all", sys, queries[:2], -1)
	}
}

// TestBatchMatchesSequentialWithLSH adds the LSEI prefilter: per-query
// candidate sets (with full-scan fallback on empty ones) must flow through
// the union pass without changing any ranking, at every vote threshold.
func TestBatchMatchesSequentialWithLSH(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())
	for _, votes := range []int{1, 2, 3} {
		sys.SetVotes(votes)
		assertBatchEquals(t, "lsh", sys, queries, 10)
	}
}

// TestBatchMatchesSequentialSharded runs the same contract through the
// scatter-gather coordinator, where the batch shares σ via the
// context-planted cache instead of the table-major pass.
func TestBatchMatchesSequentialSharded(t *testing.T) {
	_, _, queries := batteryEnv(t)
	for _, n := range []int{1, 2, 4} {
		_, ss := buildPair(t, n, NewHashPartitioner(n))
		assertBatchEquals(t, "sharded", ss, queries, 10)
		ss.BuildIndex(DefaultIndexConfig())
		ss.SetVotes(2)
		assertBatchEquals(t, "sharded-lsh", ss, queries, 10)
	}
}

// TestBatchCancelledContext pins whole-batch truncation: a context dead on
// arrival yields empty, Truncated-marked rankings for every query — not an
// error, not a partial mix.
func TestBatchCancelledContext(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats := sys.SearchBatchContext(ctx, queries, 10)
	for qi := range queries {
		if !stats[qi].Truncated {
			t.Errorf("q%d: cancelled batch not marked Truncated", qi)
		}
		if len(results[qi]) != 0 {
			t.Errorf("q%d: cancelled batch returned %d results, want 0", qi, len(results[qi]))
		}
	}
}

// TestBatchTruncationMidBatch cancels while the batch is scoring. Whatever
// prefix survives must be a correctly ranked subset of the sequential
// ranking — same scores for the tables it does return, descending order —
// and every query must carry the Truncated mark.
func TestBatchTruncationMidBatch(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	sys.SetParallelism(2)

	// Full sequential rankings as score oracle.
	oracle := make([]map[TableID]float64, len(queries))
	for qi, q := range queries {
		oracle[qi] = map[TableID]float64{}
		full, _ := sys.SearchStats(q, -1)
		for _, r := range full {
			oracle[qi][r.Table] = r.Score
		}
	}

	// Cancel mid-flight; retry with a later cancellation if the batch was
	// cut before any scoring happened, so the test exercises a non-empty
	// prefix at least once when the machine allows it.
	for _, delay := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		results, stats := sys.SearchBatchContext(ctx, queries, -1)
		cancel()
		if !stats[0].Truncated {
			continue // batch finished before the deadline; nothing to check
		}
		for qi := range queries {
			if !stats[qi].Truncated {
				t.Fatalf("delay %v: q0 truncated but q%d not — truncation must be a batch property", delay, qi)
			}
			prev := math.Inf(1)
			for i, r := range results[qi] {
				want, ok := oracle[qi][r.Table]
				if !ok || r.Score != want {
					t.Fatalf("delay %v q%d rank %d: table %d score %.17g, oracle %.17g (present=%v)",
						delay, qi, i, r.Table, r.Score, want, ok)
				}
				if r.Score > prev {
					t.Fatalf("delay %v q%d rank %d: score %.17g above predecessor %.17g", delay, qi, i, r.Score, prev)
				}
				prev = r.Score
			}
		}
	}
}

// TestBatchMutationDuringBatch races SearchBatch against AddTable and
// RemoveTable under -race. Batches hold the read lock for their whole
// pass, so every answer must be internally consistent (all scores from one
// corpus epoch, descending); afterwards the corpus must still answer
// exactly like a from-scratch rebuild.
func TestBatchMutationDuringBatch(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	sys.EnableCrossCache(8 << 20)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Mutation loop: re-add a rotating table, remove the ID it got.
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := sys.AddTable(tables[i%len(tables)])
			if err := sys.RemoveTable(id); err != nil {
				t.Errorf("RemoveTable(%d): %v", id, err)
				return
			}
			i++
		}
	}()
	for pass := 0; pass < 8; pass++ {
		results, _ := sys.SearchBatch(queries, 10)
		for qi := range results {
			prev := math.Inf(1)
			for i, r := range results[qi] {
				if r.Score > prev {
					t.Fatalf("pass %d q%d rank %d: unsorted batch ranking", pass, qi, i)
				}
				prev = r.Score
			}
		}
	}
	close(stop)
	wg.Wait()

	// The mutation loop always removed what it added, so a from-scratch
	// rebuild over the original tables must agree bit for bit.
	ref := New(kgEnv.Graph)
	for _, tb := range tables {
		ref.AddTable(tb)
	}
	ref.UseTypeSimilarity()
	for qi, q := range queries {
		want, _ := ref.SearchStats(q, 10)
		got, _ := sys.SearchStats(q, 10)
		if len(got) != len(want) {
			t.Fatalf("q%d: post-mutation system returned %d results, rebuild %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d rank %d: post-mutation %+v, rebuild %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestCrossCacheExactness runs the full query set twice with the cross
// cache on and compares every ranking against a cache-less twin: hit or
// miss, σ values are deterministic, so rankings must be bit-identical —
// and the second pass must actually hit.
func TestCrossCacheExactness(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	cached := New(kgEnv.Graph)
	plain := New(kgEnv.Graph)
	for _, tb := range tables {
		cached.AddTable(tb)
		plain.AddTable(tb)
	}
	cached.UseTypeSimilarity()
	plain.UseTypeSimilarity()
	cached.EnableCrossCache(16 << 20)
	for pass := 0; pass < 2; pass++ {
		for qi, q := range queries {
			want, _ := plain.SearchStats(q, -1)
			got, _ := cached.SearchStats(q, -1)
			if len(got) != len(want) {
				t.Fatalf("pass %d q%d: cached returned %d results, plain %d", pass, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pass %d q%d rank %d: cached (%d, %.17g/%#x), plain (%d, %.17g/%#x)",
						pass, qi, i,
						got[i].Table, got[i].Score, math.Float64bits(got[i].Score),
						want[i].Table, want[i].Score, math.Float64bits(want[i].Score))
				}
			}
		}
	}
	st, ok := cached.CrossCacheStats()
	if !ok {
		t.Fatal("CrossCacheStats reports the cache as disabled")
	}
	if st.Hits == 0 {
		t.Fatalf("two passes over %d queries produced no cross-cache hits: %+v", len(queries), st)
	}
	cached.DisableCrossCache()
	if _, ok := cached.CrossCacheStats(); ok {
		t.Fatal("CrossCacheStats still reports enabled after DisableCrossCache")
	}
}

// TestCrossCacheInvalidationOnEpochBump pins the lifecycle: populate the
// cache, mutate the corpus (epoch bump), mutate again, and require every
// post-mutation ranking to match a from-scratch rebuild over the surviving
// corpus — cached σ from the old epoch must never leak into an answer.
func TestCrossCacheInvalidationOnEpochBump(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	sys.EnableCrossCache(16 << 20)
	before, _ := sys.CrossCacheStats()

	// Populate, then mutate: drop the first two tables, re-add one.
	sys.SearchBatch(queries, 10)
	if err := sys.RemoveTable(0); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	readded := sys.AddTable(tables[1])
	after, _ := sys.CrossCacheStats()
	if after.Epoch <= before.Epoch {
		t.Fatalf("mutations did not advance the cache epoch: %d -> %d", before.Epoch, after.Epoch)
	}

	// From-scratch reference over the survivors, in the live-ID order the
	// mutated system reports (tables 2..n-1, then the re-added table 1).
	ref := New(kgEnv.Graph)
	liveIDs := make([]TableID, 0, len(tables)-1)
	for _, tb := range tables[2:] {
		ref.AddTable(tb)
	}
	ref.AddTable(tables[1])
	for i := 2; i < len(tables); i++ {
		liveIDs = append(liveIDs, TableID(i))
	}
	liveIDs = append(liveIDs, readded)
	ref.UseTypeSimilarity()

	for pass := 0; pass < 2; pass++ { // second pass answers from the repopulated cache
		for qi, q := range queries {
			want, _ := ref.SearchStats(q, 10)
			got, _ := sys.SearchStats(q, 10)
			if len(got) != len(want) {
				t.Fatalf("pass %d q%d: mutated returned %d results, rebuild %d", pass, qi, len(got), len(want))
			}
			for i := range want {
				wantID := liveIDs[int(want[i].Table)]
				if got[i].Table != wantID || got[i].Score != want[i].Score {
					t.Fatalf("pass %d q%d rank %d: mutated (%d, %.17g), rebuild (%d→%d, %.17g)",
						pass, qi, i, got[i].Table, got[i].Score, want[i].Table, wantID, want[i].Score)
				}
			}
		}
	}
}

// TestCrossCacheSharded checks the deployment-wide cache: one CrossCache
// shared by every shard engine must leave sharded rankings identical to
// the unsharded system and collect hits across shards.
func TestCrossCacheSharded(t *testing.T) {
	_, _, queries := batteryEnv(t)
	sys, ss := buildPair(t, 2, NewHashPartitioner(2))
	ss.EnableCrossCache(16 << 20)
	for pass := 0; pass < 2; pass++ {
		assertIdenticalRankings(t, "cross-sharded", sys, ss, queries, 10)
	}
	st, ok := ss.CrossCacheStats()
	if !ok {
		t.Fatal("sharded CrossCacheStats reports disabled")
	}
	if st.Hits == 0 {
		t.Fatalf("no cross-cache hits across shards: %+v", st)
	}
	ss.DisableCrossCache()
	if _, ok := ss.CrossCacheStats(); ok {
		t.Fatal("sharded CrossCacheStats still enabled after disable")
	}
}
