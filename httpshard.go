package thetis

// Shard-over-HTTP (docs/SHARDING.md §"Shard-over-HTTP"): the pieces that
// turn the in-process scatter-gather seam into a distributed deployment.
//
// Topology: N shard daemons each run an ordinary unsharded thetisd over
// their slice of the corpus; one coordinator daemon (thetisd -shard-urls)
// loads the FULL corpus locally — for query parsing, BM25 keyword search,
// table lookups, and artifact computation — but scatters every semantic
// search to the shard daemons through remote.Shard clients (one per
// shard, N replicas each) and merges with the same Coordinator the
// in-process path uses.
//
// This file is the root-package glue: the daemon-side handlers a System
// needs to serve as a remote shard (ServeShardSearch,
// ApplyShardArtifacts), the coordinator-side artifact computation and
// global ID mapping, and the RemoteSharded facade that plugs into the
// HTTP layer as a server.Backend.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/remote"
)

// Remote shard-over-HTTP seams, re-exported from internal/remote.
type (
	// RemoteShard is the HTTP shard client: a Shard whose SearchShard
	// proxies to a remote unsharded thetisd with retries, hedging,
	// replica failover, and circuit breaking.
	RemoteShard = remote.Shard
	// RemoteReplica is one interchangeable daemon serving a shard.
	RemoteReplica = remote.Replica
	// RemoteOptions tunes the remote client's robustness layer.
	RemoteOptions = remote.Options
	// RemoteStatus is one shard's per-replica breaker breakdown.
	RemoteStatus = remote.Status
	// ShardArtifacts is the global-artifact bootstrap payload
	// (POST /shard/artifacts).
	ShardArtifacts = remote.Artifacts
)

// NewRemoteShard builds the HTTP client for one shard; see remote.NewShard.
func NewRemoteShard(label string, g *Graph, globals []TableID, replicas []RemoteReplica, opt RemoteOptions) (*RemoteShard, error) {
	return remote.NewShard(label, g, globals, replicas, opt)
}

// ErrReadOnly reports a mutation against a read-only deployment — a
// coordinator over remote shards cannot ingest or remove tables, because
// the authoritative corpus lives on the shard daemons.
var ErrReadOnly = errors.New("thetis: deployment is read-only (mutate the shard daemons and re-bootstrap)")

// ServeShardSearch answers one POST /shard/search leg: it resolves the
// wire query's entity URIs against this daemon's graph (mapping unknown
// ones to request-scoped ephemeral IDs, so tuple arity — which the
// assignment normalization depends on — survives even for entities this
// daemon has never seen, without growing the graph), runs the same
// SearchShard an in-process scatter leg runs (FallbackNone; the
// coordinator owns the full-scan decision), and returns the ranking in
// LOCAL table IDs for the client to translate.
func (s *System) ServeShardSearch(ctx context.Context, req remote.SearchRequest) remote.SearchPayload {
	q := s.resolveWireQuery(req.Tuples)
	results, stats := s.SearchShard(ctx, q, req.K, ShardSearchOptions{ForceFullScan: req.ForceFullScan})
	wr := make([]remote.WireResult, len(results))
	for i, r := range results {
		wr[i] = remote.WireResult{Table: int32(r.Table), Score: r.Score}
	}
	return remote.SearchPayload{
		Results: wr,
		Stats: remote.WireStats{
			Candidates:   stats.Candidates,
			Scored:       stats.Scored,
			MappingMicro: stats.MappingTime.Microseconds(),
			TotalMicro:   stats.TotalTime.Microseconds(),
			Truncated:    stats.Truncated,
			Panicked:     stats.Panicked,
			SigmaHits:    stats.SigmaHits,
			SigmaMisses:  stats.SigmaMisses,
		},
	}
}

// resolveWireQuery maps entity URIs to this process's entity IDs, running
// entirely under the read lock. A URI this graph has never interned
// resolves to a request-scoped ephemeral ID counting down from the top of
// the EntityID space: distinct unknown URIs stay distinct (preserving
// tuple arity and the σ(e,e)=1 diagonal for repeats, exactly like a
// freshly interned untyped entity would), but nothing is written to the
// shared graph — a stream of searches with novel URIs must not grow the
// daemon's graph without bound or serialize the hot search path behind
// the global write locks. Every similarity guards out-of-range IDs with
// score 0 and informativeness falls back to weight 1, matching the
// behavior of an interned entity that carries no types, edges, vectors,
// or corpus mentions.
func (s *System) resolveWireQuery(tuples [][]string) Query {
	s.mu.RLock()
	defer s.mu.RUnlock()
	q := make(Query, len(tuples))
	var eph map[string]EntityID
	next := ^kg.EntityID(0) // far above any realistic intern count
	for i, uris := range tuples {
		tup := make(Tuple, len(uris))
		for j, uri := range uris {
			e, ok := s.graph.Lookup(uri)
			if !ok {
				if eph == nil {
					eph = make(map[string]EntityID)
				}
				id, seen := eph[uri]
				if !seen {
					id = next
					next--
					eph[uri] = id
				}
				e = id
			}
			tup[j] = e
		}
		q[i] = tup
	}
	return q
}

// ApplyShardArtifacts installs the coordinator's global-artifact bootstrap
// (POST /shard/artifacts) on this daemon: corpus-global IDF
// informativeness weights replace the local-lake default, the vote
// threshold is adopted, and — when an index spec is shipped — the LSEI is
// built under the GLOBAL frequent-type filter instead of a locally
// computed one. After this call the daemon's SearchShard legs rank
// bit-identically to the corresponding in-process shard
// (docs/SHARDING.md).
//
// The shipped weights and filter are frozen snapshots of the
// coordinator's corpus: mutating this daemon's corpus afterwards keeps
// serving correct local rankings but breaks the deployment-wide
// bit-identity until the coordinator re-bootstraps.
func (s *System) ApplyShardArtifacts(a remote.Artifacts) error {
	if s.engine == nil {
		return errors.New("thetis: select a similarity before ApplyShardArtifacts")
	}
	var cfg IndexConfig
	if a.Index != nil {
		cfg = IndexConfig{
			Vectors:               a.Index.Vectors,
			BandSize:              a.Index.BandSize,
			FrequentTypeThreshold: a.Index.Threshold,
			ColumnAggregation:     a.Index.ColumnAggregation,
			Seed:                  a.Index.Seed,
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("thetis: shard artifacts index spec: %w", err)
		}
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	s.mu.Lock()
	weights := make(map[EntityID]float64, len(a.Informativeness))
	for uri, w := range a.Informativeness {
		weights[s.graph.AddEntity(uri, "")] = w
	}
	var filter map[kg.TypeID]bool
	if a.HasFilter {
		filter = make(map[kg.TypeID]bool, len(a.FrequentTypes))
		for _, uri := range a.FrequentTypes {
			// A type this graph has not interned cannot appear in any local
			// entity's type set, so skipping it never changes a signature.
			if t, ok := s.graph.LookupType(uri); ok {
				filter[t] = true
			}
		}
	}
	// Absent entities weigh 1, exactly like df == 0 under the IDF formula.
	s.engine.Inf = func(e EntityID) float64 {
		if w, ok := weights[e]; ok {
			return w
		}
		return 1
	}
	if a.Votes > 0 {
		s.votes.Store(int32(a.Votes))
	}
	s.mu.Unlock()

	if a.Index == nil {
		return nil
	}
	s.indexCfg = cfg
	if s.ec != nil && s.engine.Sim == Similarity(s.ec) {
		s.filterState = nil
		s.index.Store(core.BuildEmbeddingLSEI(s.lake, s.ec, s.store.Dim(), cfg))
		return nil
	}
	if filter == nil {
		// No filter shipped for a type index: freeze an empty one rather
		// than computing a local filter that would diverge across shards.
		filter = map[kg.TypeID]bool{}
	}
	// The filter stays a frozen global snapshot — no TypeFilterState, so
	// later local mutations extend signatures under it without re-balancing
	// (re-balancing against one shard's sub-corpus would diverge from the
	// other shards anyway; see the method comment).
	s.filterState = nil
	s.index.Store(core.BuildTypeLSEIFiltered(s.lake, s.tj, cfg, filter))
	return nil
}

// ComputeShardArtifacts computes the bootstrap payload from this System's
// FULL corpus: IDF informativeness for every corpus entity (keyed by URI
// so shard daemons can resolve them in their own intern order), the
// frequent-type filter for type-similarity indexes, the vote threshold,
// and — when cfg is non-nil — the index spec every shard must build with.
// A nil cfg means the shard daemons serve unindexed (full-scan) legs.
func (s *System) ComputeShardArtifacts(cfg *IndexConfig, votes int) ShardArtifacts {
	s.mustEngine()
	s.mu.RLock()
	defer s.mu.RUnlock()
	inf := core.IDFInformativenessOver([]*lake.Lake{s.lake})
	weights := make(map[string]float64)
	for _, e := range s.lake.DistinctEntities() {
		weights[s.graph.URI(e)] = inf(e)
	}
	a := ShardArtifacts{Informativeness: weights, Votes: votes}
	if cfg == nil {
		return a
	}
	c := *cfg
	a.Index = &remote.IndexSpec{
		Vectors:           c.Vectors,
		BandSize:          c.BandSize,
		Threshold:         thresholdOf(c),
		ColumnAggregation: c.ColumnAggregation,
		Seed:              c.Seed,
	}
	if s.ec != nil && s.engine.Sim == Similarity(s.ec) {
		return a // embedding LSEIs have no type filter
	}
	filter := core.FrequentTypesOver([]*lake.Lake{s.lake}, s.tj, thresholdOf(c))
	uris := make([]string, 0, len(filter))
	for t, dropped := range filter {
		if dropped {
			uris = append(uris, s.graph.TypeURI(t))
		}
	}
	sort.Strings(uris)
	a.FrequentTypes = uris
	a.HasFilter = true
	return a
}

// ShardGlobalIDs replays a partitioner over the corpus in global ID
// (= ingestion) order and returns, per shard, the global IDs of the
// tables that shard owns — the local→global translation map a RemoteShard
// needs. Placement is reproducible only for stateless partitioners (hash;
// thetisd -shard-urls therefore requires -shard-by hash): a fresh
// balanced partitioner replaying a corpus with removals would not see the
// load the original saw.
func (s *System) ShardGlobalIDs(part Partitioner) [][]TableID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]TableID, part.Shards())
	for id, t := range s.lake.Tables() {
		if t == nil {
			continue
		}
		si := part.Assign(t)
		out[si] = append(out[si], TableID(id))
	}
	return out
}

// RemoteSharded is the coordinator daemon's backend (thetisd -shard-urls):
// System's serving surface with semantic search scattered to remote
// shards. The local System holds the full corpus read-only — it answers
// ParseQuery, keyword/hybrid's BM25 half, /stats, and /tables/{id} — while
// SearchStatsContext fans out through the remote clients and merges with
// the standard Coordinator, so truncation, rescatter, and partial-failure
// semantics are exactly the in-process ones. Mutations return ErrReadOnly.
type RemoteSharded struct {
	local  *System
	shards []*RemoteShard
	coord  *Coordinator

	indexCfg *IndexConfig
	votes    int
}

// NewRemoteSharded assembles the coordinator backend over a bootstrapped
// local System (full corpus, similarity selected, keyword index built if
// hybrid is served) and one RemoteShard client per shard.
func NewRemoteSharded(local *System, shards ...*RemoteShard) *RemoteSharded {
	searchers := make([]Shard, len(shards))
	for i, sh := range shards {
		searchers[i] = sh
	}
	return &RemoteSharded{
		local:  local,
		shards: shards,
		coord:  NewCoordinator(searchers...),
		votes:  1,
	}
}

// SetIndexConfig fixes the LSEI configuration Bootstrap ships to the
// shard daemons. Without it, shards serve unindexed full-scan legs.
func (rs *RemoteSharded) SetIndexConfig(cfg IndexConfig) { c := cfg; rs.indexCfg = &c }

// SetVotes fixes the vote threshold Bootstrap ships (default 1).
func (rs *RemoteSharded) SetVotes(v int) { rs.votes = v }

// Bootstrap computes the global artifacts from the local corpus and ships
// them to every replica of every shard. It must succeed before serving:
// an un-bootstrapped shard daemon ranks with local weights and filter,
// which is correct for its own corpus but not bit-identical to the
// deployment.
func (rs *RemoteSharded) Bootstrap(ctx context.Context) error {
	a := rs.local.ComputeShardArtifacts(rs.indexCfg, rs.votes)
	var errs []string
	for _, sh := range rs.shards {
		if err := sh.PushArtifacts(ctx, a); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("thetis: bootstrap: %s", strings.Join(errs, "; "))
	}
	return nil
}

// NumShards returns how many shards the coordinator fans out to.
func (rs *RemoteSharded) NumShards() int { return len(rs.shards) }

// ShardStatuses snapshots every shard's per-replica breaker state (the
// /readyz breakdown).
func (rs *RemoteSharded) ShardStatuses() []RemoteStatus {
	out := make([]RemoteStatus, len(rs.shards))
	for i, sh := range rs.shards {
		out[i] = sh.Status()
	}
	return out
}

// StartProbes starts every shard's background health probing; call the
// returned stop on shutdown.
func (rs *RemoteSharded) StartProbes(interval time.Duration) (stop func()) {
	stops := make([]func(), len(rs.shards))
	for i, sh := range rs.shards {
		stops[i] = sh.StartProbes(interval)
	}
	return func() {
		for _, st := range stops {
			st()
		}
	}
}

// ParseQuery resolves a textual query against the local full-corpus graph.
func (rs *RemoteSharded) ParseQuery(text string) (Query, error) { return rs.local.ParseQuery(text) }

// SearchStatsContext scatters the query to every remote shard and merges
// (Coordinator.Search): per-shard counters sum, Truncated ORs, remote
// legs' trace stages arrive labeled per shard, and failed legs surface in
// Stats.ShardErrors.
func (rs *RemoteSharded) SearchStatsContext(ctx context.Context, q Query, k int) ([]Result, SearchStats) {
	return rs.coord.Search(ctx, q, k)
}

// KeywordSearch runs BM25 over the local full-corpus index (keyword
// search is global — IDF depends on corpus-wide document frequencies).
func (rs *RemoteSharded) KeywordSearch(text string, k int) []TableID {
	return rs.local.KeywordSearch(text, k)
}

// HybridSearchContext complements the local BM25 ranking with the
// scattered semantic ranking (System.HybridSearchContext, with the
// semantic half remote).
func (rs *RemoteSharded) HybridSearchContext(ctx context.Context, q Query, keywords string, k int) []TableID {
	sem, _ := rs.coord.Search(ctx, q, k)
	semIDs := make([]int, len(sem))
	for i, r := range sem {
		semIDs[i] = int(r.Table)
	}
	bmIDs := rs.local.KeywordSearch(keywords, k)
	bmInts := make([]int, len(bmIDs))
	for i, id := range bmIDs {
		bmInts[i] = int(id)
	}
	merged := core.Complement(semIDs, bmInts, k)
	out := make([]TableID, len(merged))
	for i, id := range merged {
		out[i] = TableID(id)
	}
	return out
}

// Stats returns the local full corpus's statistics.
func (rs *RemoteSharded) Stats() lake.Stats { return rs.local.Stats() }

// GraphCounts returns the local KG's size counters.
func (rs *RemoteSharded) GraphCounts() GraphCounts { return rs.local.GraphCounts() }

// NumTables returns the full corpus's live table count.
func (rs *RemoteSharded) NumTables() int { return rs.local.NumTables() }

// Table returns a table by its global ID from the local corpus copy.
func (rs *RemoteSharded) Table(id TableID) *Table { return rs.local.Table(id) }

// AddTableJSON is not supported: the deployment is read-only.
func (rs *RemoteSharded) AddTableJSON(data []byte) (TableID, error) { return 0, ErrReadOnly }

// RemoveTable is not supported: the deployment is read-only.
func (rs *RemoteSharded) RemoveTable(id TableID) error { return ErrReadOnly }

// IndexEpoch returns the local corpus's mutation epoch (always the load
// epoch — the deployment is read-only).
func (rs *RemoteSharded) IndexEpoch() uint64 { return rs.local.IndexEpoch() }
