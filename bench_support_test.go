package thetis_test

import (
	"thetis/internal/embedding"
	"thetis/internal/experiments"
)

// trainForBench retrains the environment's embeddings (benchmark helper).
func trainForBench(env *experiments.Env, cfg experiments.Config) *embedding.Store {
	return embedding.TrainGraph(env.KG.Graph, cfg.Walks, cfg.Train)
}
