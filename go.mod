module thetis

go 1.22
