// Command thetisd serves a semantic data lake over HTTP (see
// internal/server for the API).
//
//	thetisd -kg bench/kg.nt -corpus bench/corpus.jsonl -addr :8080 \
//	        [-sim types|embeddings] [-embfile embeddings.bin] \
//	        [-ann-topk K] [-ann-ef N] [-cross-cache-mb MB] \
//	        [-shards 1] [-shard-by hash|size] \
//	        [-shard-urls http://a:8081|http://a2:8081,http://b:8082] [-probe-every 3s] \
//	        [-lsh] [-votes 3] [-vectors 30] [-band 10] [-indexfile index.bin] \
//	        [-lenient-ingest] [-ingest-budget N] [-max-line BYTES] \
//	        [-delta-log deltas.log] [-compact-every 10m] \
//	        [-timeout 10s] [-max-inflight 64] [-drain 30s] [-pprof]
//
// Sharded serving (docs/SHARDING.md): -shards N partitions the corpus into
// N in-process shards (-shard-by picks hash or size-balanced placement)
// searched by scatter-gather; rankings are identical to -shards 1, and each
// shard's LSEI builds and hot-swaps independently (per-shard states on
// /readyz and thetis_shard_* metrics). -indexfile requires -shards 1:
// snapshots cover one unsharded index.
//
// Shard-over-HTTP (docs/SHARDING.md §"Shard-over-HTTP"): -shard-urls turns
// the daemon into a scatter-gather coordinator over remote shard daemons
// (plain unsharded thetisd instances each serving its hash-assigned slice
// of the corpus). The coordinator loads the full corpus locally for query
// parsing, keyword search, and the global-artifact bootstrap it ships to
// every shard, but answers /search by scattering over HTTP with retries,
// hedging, replica failover, and per-replica circuit breakers
// (thetis_remote_shard_* metrics; per-replica breakdown on /readyz). The
// deployment is read-only: POST/DELETE /tables answer 405.
//
// Approximate σ (docs/ANN.md): with -sim embeddings, -ann-topk K scores
// each query entity against only its K nearest store entities (found
// through a pure-Go HNSW graph; -ann-ef tunes the recall/latency
// trade-off) instead of the whole entity store. Corpus mutations bump the
// index epoch; searches fall back to exact σ while the graph rebuilds in
// the background (thetis_ann_* metrics, GET /debug/ann).
//
// Throughput mode (docs/THROUGHPUT.md): POST /search/batch answers N
// queries in one pass with a batch-shared σ cache, bit-identical to N
// sequential /search calls. -cross-cache-mb additionally persists σ pairs
// across requests in a bounded cross-query cache that corpus mutations
// lazily invalidate (thetis_cross_cache_* metrics); it is incompatible
// with -ann-topk (top-k σ is excluded from cross-query sharing) and with
// -shard-urls (a coordinator scores nothing locally).
//
// Request lifecycle: every search-type request runs under -timeout (an
// expiring search returns its partial ranking marked "truncated"), at most
// -max-inflight searches execute concurrently (excess load is shed with
// 429 + Retry-After), and SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight queries for up to -drain before exiting.
//
// Fault tolerance (docs/RELIABILITY.md): -lenient-ingest skips malformed
// KG lines and corpus tables — quarantining up to -ingest-budget of them,
// inspectable on GET /debug/ingest — instead of refusing to start. With
// -lsh the daemon serves immediately, brute-force, while the LSEI builds
// in the background; -indexfile loads a checksummed snapshot instead, and
// a corrupt snapshot is rejected (never loaded wrong) with the same
// degraded-then-rebuild fallback. GET /readyz reports the index lifecycle.
//
// Live mutation (docs/LIVE_INDEX.md): POST /tables and DELETE /tables/{id}
// fold additions and removals into every live index without a restart.
// -delta-log (requires -shards 1) write-ahead-logs each mutation to a
// checksummed append-only file and replays it over the base corpus on the
// next start — a corrupt log refuses to start rather than serve a wrong
// index. -compact-every periodically rebuilds the LSEI aside to shed
// tombstones; searches keep flowing through each compaction.
//
// Operational endpoints (docs/OBSERVABILITY.md): GET /metrics exposes
// Prometheus-format counters and latency histograms, GET /debug/trace
// returns a per-stage breakdown of one search, and -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"thetis"
	"thetis/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thetisd: ")

	kgPath := flag.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := flag.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	addr := flag.String("addr", ":8080", "listen address")
	sim := flag.String("sim", "types", "similarity: types | embeddings")
	embFile := flag.String("embfile", "", "embeddings file (for -sim embeddings)")
	annTopK := flag.Int("ann-topk", 0, "approximate top-k sigma: each query entity keeps its K nearest store entities via HNSW, 0 = exact (requires -sim embeddings)")
	annEf := flag.Int("ann-ef", 64, "HNSW search beam width for -ann-topk (higher = better recall, slower)")
	crossMB := flag.Int("cross-cache-mb", 0, "cross-query sigma cache budget in MiB, invalidated on corpus mutation (0 disables; see docs/THROUGHPUT.md)")
	shards := flag.Int("shards", 1, "in-process shard count for scatter-gather serving (1 = unsharded)")
	shardBy := flag.String("shard-by", "hash", "partitioning strategy for -shards > 1: hash | size")
	shardURLs := flag.String("shard-urls", "", "serve as a scatter-gather coordinator over remote shard daemons: shards comma-separated, replicas of one shard |-separated (requires -shard-by hash)")
	probeEvery := flag.Duration("probe-every", 3*time.Second, "remote-replica health probe interval for -shard-urls (0 disables probing)")
	useLSH := flag.Bool("lsh", true, "enable LSH prefiltering")
	votes := flag.Int("votes", 3, "LSH vote threshold")
	vectors := flag.Int("vectors", 30, "LSH permutations/projections")
	band := flag.Int("band", 10, "LSH band size")
	indexFile := flag.String("indexfile", "", "load a checksummed LSEI snapshot instead of building (rebuilds in background if corrupt)")
	lenient := flag.Bool("lenient-ingest", false, "skip malformed KG lines and corpus tables instead of aborting (see /debug/ingest)")
	budget := flag.Int("ingest-budget", 1000, "max records lenient ingestion may quarantine before giving up (-1 = unlimited)")
	maxLine := flag.Int("max-line", 0, "max bytes per KG/corpus line (0 = 16 MiB default)")
	deltaLog := flag.String("delta-log", "", "write-ahead mutation log, replayed over the base corpus on restart (requires -shards 1)")
	compactEvery := flag.Duration("compact-every", 0, "rebuild live indexes this often to shed removal tombstones (0 disables)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request search deadline; expiring searches return partial results (0 disables)")
	maxInflight := flag.Int("max-inflight", 8*runtime.GOMAXPROCS(0), "max concurrent search requests before shedding with 429 (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight requests (0 waits forever)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Validate the whole flag combination up front (see flags.go for the
	// incompatibility matrix): a bad -vectors/-band pair or an unsupported
	// flag mix is a usage error, not a mid-flight panic.
	cfg := thetis.DefaultIndexConfig()
	cfg.Vectors = *vectors
	cfg.BandSize = *band
	if err := validateFlags(flagConfig{
		Sim:       *sim,
		Shards:    *shards,
		ShardBy:   *shardBy,
		ShardURLs: *shardURLs,
		Votes:     *votes,
		Index:     cfg,
		IndexFile: *indexFile,
		DeltaLog:  *deltaLog,
		AnnTopK:   *annTopK,
		AnnEf:     *annEf,
		CrossMB:   *crossMB,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "thetisd: invalid flags: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	report := thetis.NewIngestReport()
	sys, single, sharded := load(*kgPath, *corpusPath, *shards, *shardBy, thetis.IngestOptions{
		Lenient:      *lenient,
		MaxLineBytes: *maxLine,
		ErrorBudget:  *budget,
		Report:       report,
	})
	if *lenient {
		tOK, tSkip := report.Triples.Counts()
		cOK, cSkip := report.Tables.Counts()
		if tSkip+cSkip > 0 {
			log.Printf("lenient ingest: quarantined %d/%d triples and %d/%d tables (details on /debug/ingest)",
				tSkip, tOK+tSkip, cSkip, cOK+cSkip)
		}
	}
	if *deltaLog != "" {
		base := sys.NumTables()
		if err := single.AttachDeltaLog(*deltaLog); err != nil {
			log.Fatalf("delta log %s: %v (restore the base corpus and a clean log)", *deltaLog, err)
		}
		if n := sys.NumTables(); n != base {
			log.Printf("delta log %s: replayed mutations, %d -> %d live tables", *deltaLog, base, n)
		}
	}
	switch *sim {
	case "types":
		sys.UseTypeSimilarity()
	case "embeddings":
		if *embFile != "" {
			f, err := os.Open(*embFile)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadEmbeddings(bufio.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatalf("loading embeddings %s: %v", *embFile, err)
			}
		} else {
			log.Println("training embeddings…")
			sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
		}
		sys.UseEmbeddingSimilarity()
		if *annTopK > 0 {
			log.Printf("building ANN graph (top-%d sigma, ef %d)…", *annTopK, *annEf)
			if err := sys.EnableAnnTopK(*annTopK, *annEf); err != nil {
				log.Fatalf("enabling ANN top-k sigma: %v", err)
			}
		}
	default:
		log.Fatalf("unknown similarity %q", *sim)
	}
	if *crossMB > 0 {
		// After similarity selection: EnableCrossCache needs the engine, and
		// attaches to whichever σ the daemon will serve with.
		sys.EnableCrossCache(int64(*crossMB) << 20)
		log.Printf("cross-query sigma cache enabled (%d MiB, stats in thetis_cross_cache_* metrics)", *crossMB)
	}
	log.Println("building keyword index…")
	sys.BuildKeywordIndex()

	opts := []server.Option{
		server.WithSearchTimeout(*timeout),
		server.WithMaxInFlight(*maxInflight),
		server.WithIngestReport(report),
	}
	var backend server.Backend = sys
	var shardGroups [][]string
	stopProbes := func() {}
	if *shardURLs != "" {
		// Coordinator mode (docs/SHARDING.md §"Shard-over-HTTP"): the full
		// corpus just loaded stays local for parsing/keyword/stats, semantic
		// search scatters to the remote daemons. No local LSEI — the shards
		// build theirs from the bootstrapped index spec.
		groups, err := parseShardURLs(*shardURLs)
		if err != nil {
			log.Fatal(err) // unreachable: validateFlags already parsed it
		}
		shardGroups = groups
		var hedge float64
		if *timeout > 0 {
			hedge = 0.95
		}
		rsys, stop := startCoordinator(single, groups, cfg, *useLSH, *votes, *probeEvery, hedge)
		backend = rsys
		stopProbes = stop
		opts = append(opts, server.WithRemoteShardStatus(rsys.ShardStatuses))
	} else if *useLSH && sharded != nil {
		// Sharded: every shard's index builds in the background and
		// hot-swaps independently; /readyz reports the per-shard lifecycle.
		rds := server.NewShardReadinesses(nil, sharded.NumShards())
		opts = append(opts, server.WithShardReadiness(rds))
		done := server.ActivateShardIndexes(sharded, rds, cfg, *votes)
		go logShardActivation(rds, done)
	} else if *useLSH {
		// Serve immediately — brute force while the index builds in the
		// background (or loads from a snapshot), then hot-swap.
		ready := server.NewReadiness(nil)
		opts = append(opts, server.WithReadiness(ready))
		var snapshot *os.File
		if *indexFile != "" {
			f, err := os.Open(*indexFile)
			if err != nil {
				log.Fatal(err)
			}
			snapshot = f
		}
		if snapshot != nil {
			done := server.ActivateIndex(single, ready, cfg, *votes, bufio.NewReader(snapshot))
			snapshot.Close()
			// A rejected snapshot parks the state at degraded before the
			// background rebuild starts; surface that in the log so disk
			// corruption is not hidden behind a successful rebuild.
			if state, detail, _ := ready.Snapshot(); state == server.StateDegraded {
				log.Printf("%s: %s", *indexFile, detail)
			}
			go logActivation(ready, done)
		} else {
			done := server.ActivateIndex(single, ready, cfg, *votes, nil)
			go logActivation(ready, done)
		}
	}
	if *withPprof {
		opts = append(opts, server.WithPprof())
		log.Println("pprof enabled on /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *compactEvery > 0 && *shardURLs == "" {
		go func() {
			tick := time.NewTicker(*compactEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if sharded != nil {
						sharded.Compact()
					} else {
						single.Compact()
					}
				}
			}
		}()
	}
	switch {
	case *shardURLs != "":
		log.Printf("coordinating %d tables across %d remote shards on %s (metrics on /metrics, timeout %v, max in-flight %d)",
			sys.NumTables(), len(shardGroups), *addr, *timeout, *maxInflight)
	case sharded != nil:
		log.Printf("serving %d tables across %d shards (%s-partitioned) on %s (metrics on /metrics, timeout %v, max in-flight %d)",
			sys.NumTables(), sharded.NumShards(), *shardBy, *addr, *timeout, *maxInflight)
	default:
		log.Printf("serving %d tables on %s (metrics on /metrics, timeout %v, max in-flight %d)",
			sys.NumTables(), *addr, *timeout, *maxInflight)
	}
	err := server.Run(ctx, *addr, server.New(backend, opts...), *drain)
	stopProbes()
	if err != nil {
		log.Fatal(err)
	}
	if *deltaLog != "" {
		if err := single.DeltaLogError(); err != nil {
			log.Printf("delta log %s: stopped logging after error: %v (mutations since are not durable)", *deltaLog, err)
		}
		single.CloseDeltaLog()
	}
	log.Println("drained in-flight queries, shut down cleanly")
}

// startCoordinator assembles the remote-sharded backend (thetisd
// -shard-urls): one RemoteShard client per replica group, global table IDs
// assigned by replaying the hash partitioner over the local corpus, then a
// blocking bootstrap that ships the global artifacts (IDF informativeness,
// frequent-type filter, index spec, votes) to every replica. Bootstrap
// failure is fatal — serving un-bootstrapped shards would return rankings
// that differ from the unsharded system.
func startCoordinator(local *thetis.System, groups [][]string, cfg thetis.IndexConfig, useLSH bool, votes int, probeEvery time.Duration, hedgePct float64) (*thetis.RemoteSharded, func()) {
	part := thetis.NewHashPartitioner(len(groups))
	globals := local.ShardGlobalIDs(part)
	shards := make([]*thetis.RemoteShard, len(groups))
	for i, urls := range groups {
		replicas := make([]thetis.RemoteReplica, len(urls))
		for j, u := range urls {
			replicas[j] = thetis.RemoteReplica{URL: u}
		}
		sh, err := thetis.NewRemoteShard(fmt.Sprintf("%d", i), local.Graph(), globals[i], replicas, thetis.RemoteOptions{
			HedgePercentile: hedgePct,
		})
		if err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
		shards[i] = sh
	}
	rsys := thetis.NewRemoteSharded(local, shards...)
	if useLSH {
		rsys.SetIndexConfig(cfg)
	}
	rsys.SetVotes(votes)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	log.Printf("bootstrapping %d remote shards (global artifacts + index spec)…", len(shards))
	if err := rsys.Bootstrap(ctx); err != nil {
		log.Fatalf("bootstrap: %v (start the shard daemons, then restart the coordinator)", err)
	}
	stop := func() {}
	if probeEvery > 0 {
		stop = rsys.StartProbes(probeEvery)
	}
	return rsys, stop
}

// logActivation reports the index lifecycle outcome without blocking
// startup.
func logActivation(ready *server.Readiness, done <-chan error) {
	if err := <-done; err != nil {
		log.Printf("index activation failed: %v (still serving, brute force)", err)
		return
	}
	_, detail, _ := ready.Snapshot()
	log.Printf("index ready: %s", detail)
}

// logShardActivation is logActivation's sharded variant: it reports how
// many shard indexes landed once every build has finished.
func logShardActivation(rds []*server.Readiness, done <-chan error) {
	err := <-done
	ready := 0
	for _, rd := range rds {
		if rd.State() == server.StateReady {
			ready++
		}
	}
	if err != nil {
		log.Printf("shard index activation: %d/%d shards ready, first failure: %v (failed shards serve brute force)",
			ready, len(rds), err)
		return
	}
	log.Printf("shard indexes ready: %d/%d", ready, len(rds))
}

// backend is the daemon's view of a lake system: everything the HTTP layer
// needs (server.Backend) plus the configuration surface main exercises
// before serving. Both *thetis.System and *thetis.ShardedSystem satisfy it.
type backend interface {
	server.Backend
	IngestCorpus(r io.Reader, opts thetis.IngestOptions) (int, error)
	UseTypeSimilarity()
	UseEmbeddingSimilarity()
	EnableAnnTopK(k, ef int) error
	EnableCrossCache(maxBytes int64)
	TrainEmbeddings(w thetis.WalkConfig, t thetis.TrainConfig) *thetis.EmbeddingStore
	LoadEmbeddings(r io.Reader) error
	BuildKeywordIndex()
}

// load builds the graph and ingests the corpus into either an unsharded
// System (shards == 1) or a ShardedSystem. Exactly one of the two concrete
// returns is non-nil; sys aliases it as the shared configuration surface.
func load(kgPath, corpusPath string, shards int, shardBy string, opts thetis.IngestOptions) (sys backend, single *thetis.System, sharded *thetis.ShardedSystem) {
	g := thetis.NewGraph()
	kf, err := os.Open(kgPath)
	if err != nil {
		log.Fatal(err)
	}
	var tq *thetis.Quarantine
	if opts.Report != nil {
		tq = opts.Report.Triples
	}
	err = thetis.LoadTriplesOpts(g, bufio.NewReader(kf), thetis.LoadOptions{
		Lenient:      opts.Lenient,
		MaxLineBytes: opts.MaxLineBytes,
		ErrorBudget:  opts.ErrorBudget,
		Source:       kgPath,
		Quarantine:   tq,
	})
	kf.Close()
	if err != nil {
		log.Fatalf("loading KG %s: %v", kgPath, err)
	}

	if shards > 1 {
		var part thetis.Partitioner
		switch shardBy {
		case "size":
			part = thetis.NewBalancedPartitioner(shards)
		default:
			part = thetis.NewHashPartitioner(shards)
		}
		sharded = thetis.NewShardedSystem(g, part)
		sys = sharded
	} else {
		single = thetis.New(g)
		sys = single
	}
	cf, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	opts.Source = corpusPath
	if _, err := sys.IngestCorpus(bufio.NewReaderSize(cf, 1<<20), opts); err != nil {
		log.Fatalf("corpus %s: %v", corpusPath, err)
	}
	return sys, single, sharded
}
