// Command thetisd serves a semantic data lake over HTTP (see
// internal/server for the API).
//
//	thetisd -kg bench/kg.nt -corpus bench/corpus.jsonl -addr :8080 \
//	        [-sim types|embeddings] [-embfile embeddings.bin] [-lsh] [-votes 3] \
//	        [-pprof]
//
// Operational endpoints (docs/OBSERVABILITY.md): GET /metrics exposes
// Prometheus-format counters and latency histograms, GET /debug/trace
// returns a per-stage breakdown of one search, and -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"bufio"
	"flag"
	"io"
	"log"
	"net/http"
	"os"

	"thetis"
	"thetis/internal/server"
	"thetis/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thetisd: ")

	kgPath := flag.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := flag.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	addr := flag.String("addr", ":8080", "listen address")
	sim := flag.String("sim", "types", "similarity: types | embeddings")
	embFile := flag.String("embfile", "", "embeddings file (for -sim embeddings)")
	useLSH := flag.Bool("lsh", true, "enable LSH prefiltering (30,10)")
	votes := flag.Int("votes", 3, "LSH vote threshold")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	sys := load(*kgPath, *corpusPath)
	switch *sim {
	case "types":
		sys.UseTypeSimilarity()
	case "embeddings":
		if *embFile != "" {
			f, err := os.Open(*embFile)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadEmbeddings(bufio.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		} else {
			log.Println("training embeddings…")
			sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
		}
		sys.UseEmbeddingSimilarity()
	default:
		log.Fatalf("unknown similarity %q", *sim)
	}
	if *useLSH {
		log.Println("building LSEI…")
		sys.BuildIndex(thetis.DefaultIndexConfig())
		sys.SetVotes(*votes)
	}
	log.Println("building keyword index…")
	sys.BuildKeywordIndex()

	var opts []server.Option
	if *withPprof {
		opts = append(opts, server.WithPprof())
		log.Println("pprof enabled on /debug/pprof/")
	}
	log.Printf("serving %d tables on %s (metrics on /metrics)", sys.NumTables(), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(sys, opts...)))
}

func load(kgPath, corpusPath string) *thetis.System {
	g := thetis.NewGraph()
	kf, err := os.Open(kgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := thetis.LoadTriples(g, bufio.NewReader(kf)); err != nil {
		log.Fatalf("loading KG: %v", err)
	}
	kf.Close()

	sys := thetis.New(g)
	cf, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	jr := table.NewJSONReader(g, bufio.NewReaderSize(cf, 1<<20))
	for {
		t, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("corpus: %v", err)
		}
		sys.AddTable(t)
	}
	return sys
}
