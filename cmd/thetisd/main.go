// Command thetisd serves a semantic data lake over HTTP (see
// internal/server for the API).
//
//	thetisd -kg bench/kg.nt -corpus bench/corpus.jsonl -addr :8080 \
//	        [-sim types|embeddings] [-embfile embeddings.bin] [-lsh] [-votes 3] \
//	        [-timeout 10s] [-max-inflight 64] [-drain 30s] [-pprof]
//
// Request lifecycle: every search-type request runs under -timeout (an
// expiring search returns its partial ranking marked "truncated"), at most
// -max-inflight searches execute concurrently (excess load is shed with
// 429 + Retry-After), and SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight queries for up to -drain before exiting.
//
// Operational endpoints (docs/OBSERVABILITY.md): GET /metrics exposes
// Prometheus-format counters and latency histograms, GET /debug/trace
// returns a per-stage breakdown of one search, and -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"thetis"
	"thetis/internal/server"
	"thetis/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thetisd: ")

	kgPath := flag.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := flag.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	addr := flag.String("addr", ":8080", "listen address")
	sim := flag.String("sim", "types", "similarity: types | embeddings")
	embFile := flag.String("embfile", "", "embeddings file (for -sim embeddings)")
	useLSH := flag.Bool("lsh", true, "enable LSH prefiltering (30,10)")
	votes := flag.Int("votes", 3, "LSH vote threshold")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request search deadline; expiring searches return partial results (0 disables)")
	maxInflight := flag.Int("max-inflight", 8*runtime.GOMAXPROCS(0), "max concurrent search requests before shedding with 429 (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight requests (0 waits forever)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	sys := load(*kgPath, *corpusPath)
	switch *sim {
	case "types":
		sys.UseTypeSimilarity()
	case "embeddings":
		if *embFile != "" {
			f, err := os.Open(*embFile)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadEmbeddings(bufio.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		} else {
			log.Println("training embeddings…")
			sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
		}
		sys.UseEmbeddingSimilarity()
	default:
		log.Fatalf("unknown similarity %q", *sim)
	}
	if *useLSH {
		log.Println("building LSEI…")
		sys.BuildIndex(thetis.DefaultIndexConfig())
		sys.SetVotes(*votes)
	}
	log.Println("building keyword index…")
	sys.BuildKeywordIndex()

	opts := []server.Option{
		server.WithSearchTimeout(*timeout),
		server.WithMaxInFlight(*maxInflight),
	}
	if *withPprof {
		opts = append(opts, server.WithPprof())
		log.Println("pprof enabled on /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %d tables on %s (metrics on /metrics, timeout %v, max in-flight %d)",
		sys.NumTables(), *addr, *timeout, *maxInflight)
	if err := server.Run(ctx, *addr, server.New(sys, opts...), *drain); err != nil {
		log.Fatal(err)
	}
	log.Println("drained in-flight queries, shut down cleanly")
}

func load(kgPath, corpusPath string) *thetis.System {
	g := thetis.NewGraph()
	kf, err := os.Open(kgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := thetis.LoadTriples(g, bufio.NewReader(kf)); err != nil {
		log.Fatalf("loading KG: %v", err)
	}
	kf.Close()

	sys := thetis.New(g)
	cf, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	jr := table.NewJSONReader(g, bufio.NewReaderSize(cf, 1<<20))
	for {
		t, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("corpus: %v", err)
		}
		sys.AddTable(t)
	}
	return sys
}
