// Command thetisd serves a semantic data lake over HTTP (see
// internal/server for the API).
//
//	thetisd -kg bench/kg.nt -corpus bench/corpus.jsonl -addr :8080 \
//	        [-sim types|embeddings] [-embfile embeddings.bin] \
//	        [-lsh] [-votes 3] [-vectors 30] [-band 10] [-indexfile index.bin] \
//	        [-lenient-ingest] [-ingest-budget N] [-max-line BYTES] \
//	        [-timeout 10s] [-max-inflight 64] [-drain 30s] [-pprof]
//
// Request lifecycle: every search-type request runs under -timeout (an
// expiring search returns its partial ranking marked "truncated"), at most
// -max-inflight searches execute concurrently (excess load is shed with
// 429 + Retry-After), and SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight queries for up to -drain before exiting.
//
// Fault tolerance (docs/RELIABILITY.md): -lenient-ingest skips malformed
// KG lines and corpus tables — quarantining up to -ingest-budget of them,
// inspectable on GET /debug/ingest — instead of refusing to start. With
// -lsh the daemon serves immediately, brute-force, while the LSEI builds
// in the background; -indexfile loads a checksummed snapshot instead, and
// a corrupt snapshot is rejected (never loaded wrong) with the same
// degraded-then-rebuild fallback. GET /readyz reports the index lifecycle.
//
// Operational endpoints (docs/OBSERVABILITY.md): GET /metrics exposes
// Prometheus-format counters and latency histograms, GET /debug/trace
// returns a per-stage breakdown of one search, and -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"thetis"
	"thetis/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thetisd: ")

	kgPath := flag.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := flag.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	addr := flag.String("addr", ":8080", "listen address")
	sim := flag.String("sim", "types", "similarity: types | embeddings")
	embFile := flag.String("embfile", "", "embeddings file (for -sim embeddings)")
	useLSH := flag.Bool("lsh", true, "enable LSH prefiltering")
	votes := flag.Int("votes", 3, "LSH vote threshold")
	vectors := flag.Int("vectors", 30, "LSH permutations/projections")
	band := flag.Int("band", 10, "LSH band size")
	indexFile := flag.String("indexfile", "", "load a checksummed LSEI snapshot instead of building (rebuilds in background if corrupt)")
	lenient := flag.Bool("lenient-ingest", false, "skip malformed KG lines and corpus tables instead of aborting (see /debug/ingest)")
	budget := flag.Int("ingest-budget", 1000, "max records lenient ingestion may quarantine before giving up (-1 = unlimited)")
	maxLine := flag.Int("max-line", 0, "max bytes per KG/corpus line (0 = 16 MiB default)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request search deadline; expiring searches return partial results (0 disables)")
	maxInflight := flag.Int("max-inflight", 8*runtime.GOMAXPROCS(0), "max concurrent search requests before shedding with 429 (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight requests (0 waits forever)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Validate flag-derived index parameters up front: a bad -vectors/-band
	// combination is a usage error, not a mid-flight panic.
	cfg := thetis.DefaultIndexConfig()
	cfg.Vectors = *vectors
	cfg.BandSize = *band
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "thetisd: invalid flags: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *votes < 1 {
		fmt.Fprintf(os.Stderr, "thetisd: invalid flags: -votes must be >= 1 (got %d)\n", *votes)
		flag.Usage()
		os.Exit(2)
	}

	report := thetis.NewIngestReport()
	sys := load(*kgPath, *corpusPath, thetis.IngestOptions{
		Lenient:      *lenient,
		MaxLineBytes: *maxLine,
		ErrorBudget:  *budget,
		Report:       report,
	})
	if *lenient {
		tOK, tSkip := report.Triples.Counts()
		cOK, cSkip := report.Tables.Counts()
		if tSkip+cSkip > 0 {
			log.Printf("lenient ingest: quarantined %d/%d triples and %d/%d tables (details on /debug/ingest)",
				tSkip, tOK+tSkip, cSkip, cOK+cSkip)
		}
	}
	switch *sim {
	case "types":
		sys.UseTypeSimilarity()
	case "embeddings":
		if *embFile != "" {
			f, err := os.Open(*embFile)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadEmbeddings(bufio.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatalf("loading embeddings %s: %v", *embFile, err)
			}
		} else {
			log.Println("training embeddings…")
			sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
		}
		sys.UseEmbeddingSimilarity()
	default:
		log.Fatalf("unknown similarity %q", *sim)
	}
	log.Println("building keyword index…")
	sys.BuildKeywordIndex()

	opts := []server.Option{
		server.WithSearchTimeout(*timeout),
		server.WithMaxInFlight(*maxInflight),
		server.WithIngestReport(report),
	}
	var ready *server.Readiness
	if *useLSH {
		// Serve immediately — brute force while the index builds in the
		// background (or loads from a snapshot), then hot-swap.
		ready = server.NewReadiness(nil)
		opts = append(opts, server.WithReadiness(ready))
		var snapshot *os.File
		if *indexFile != "" {
			f, err := os.Open(*indexFile)
			if err != nil {
				log.Fatal(err)
			}
			snapshot = f
		}
		if snapshot != nil {
			done := server.ActivateIndex(sys, ready, cfg, *votes, bufio.NewReader(snapshot))
			snapshot.Close()
			// A rejected snapshot parks the state at degraded before the
			// background rebuild starts; surface that in the log so disk
			// corruption is not hidden behind a successful rebuild.
			if state, detail, _ := ready.Snapshot(); state == server.StateDegraded {
				log.Printf("%s: %s", *indexFile, detail)
			}
			go logActivation(ready, done)
		} else {
			done := server.ActivateIndex(sys, ready, cfg, *votes, nil)
			go logActivation(ready, done)
		}
	}
	if *withPprof {
		opts = append(opts, server.WithPprof())
		log.Println("pprof enabled on /debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %d tables on %s (metrics on /metrics, timeout %v, max in-flight %d)",
		sys.NumTables(), *addr, *timeout, *maxInflight)
	if err := server.Run(ctx, *addr, server.New(sys, opts...), *drain); err != nil {
		log.Fatal(err)
	}
	log.Println("drained in-flight queries, shut down cleanly")
}

// logActivation reports the index lifecycle outcome without blocking
// startup.
func logActivation(ready *server.Readiness, done <-chan error) {
	if err := <-done; err != nil {
		log.Printf("index activation failed: %v (still serving, brute force)", err)
		return
	}
	_, detail, _ := ready.Snapshot()
	log.Printf("index ready: %s", detail)
}

func load(kgPath, corpusPath string, opts thetis.IngestOptions) *thetis.System {
	g := thetis.NewGraph()
	kf, err := os.Open(kgPath)
	if err != nil {
		log.Fatal(err)
	}
	var tq *thetis.Quarantine
	if opts.Report != nil {
		tq = opts.Report.Triples
	}
	err = thetis.LoadTriplesOpts(g, bufio.NewReader(kf), thetis.LoadOptions{
		Lenient:      opts.Lenient,
		MaxLineBytes: opts.MaxLineBytes,
		ErrorBudget:  opts.ErrorBudget,
		Source:       kgPath,
		Quarantine:   tq,
	})
	kf.Close()
	if err != nil {
		log.Fatalf("loading KG %s: %v", kgPath, err)
	}

	sys := thetis.New(g)
	cf, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	opts.Source = corpusPath
	if _, err := sys.IngestCorpus(bufio.NewReaderSize(cf, 1<<20), opts); err != nil {
		log.Fatalf("corpus %s: %v", corpusPath, err)
	}
	return sys
}
