package main

// Satellite of docs/SHARDING.md's shard-over-HTTP work: the flag
// incompatibility matrix is pure logic (flags.go), so every rule that used
// to be an inline os.Exit(2) in main is pinned here without forking a
// process. The headline regression: -delta-log with -shards > 1 must be
// rejected at startup — a write-ahead log can only replay into one
// unsharded system, and accepting the pair used to mean a daemon that
// started and then served from a corpus the log never covered.

import (
	"strings"
	"testing"

	"thetis"
)

// validConfig is a baseline that passes validation; tests mutate one
// aspect at a time.
func validConfig() flagConfig {
	return flagConfig{
		Sim:     "types",
		Shards:  1,
		ShardBy: "hash",
		Votes:   3,
		Index:   thetis.DefaultIndexConfig(),
		AnnEf:   64,
	}
}

func TestValidateFlagsAcceptsBaseline(t *testing.T) {
	if err := validateFlags(validConfig()); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	sharded := validConfig()
	sharded.Shards = 4
	sharded.ShardBy = "size"
	if err := validateFlags(sharded); err != nil {
		t.Fatalf("plain sharded config rejected: %v", err)
	}
	coord := validConfig()
	coord.ShardURLs = "http://a:8081|http://a2:8081,http://b:8082"
	if err := validateFlags(coord); err != nil {
		t.Fatalf("coordinator config rejected: %v", err)
	}
	crossed := validConfig()
	crossed.CrossMB = 64
	if err := validateFlags(crossed); err != nil {
		t.Fatalf("cross-cache config rejected: %v", err)
	}
}

func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flagConfig)
		wantSub string
	}{
		{"delta log with shards", func(c *flagConfig) { c.Shards = 2; c.DeltaLog = "d.log" }, "-delta-log requires -shards 1"},
		{"indexfile with shards", func(c *flagConfig) { c.Shards = 2; c.IndexFile = "i.bin" }, "-indexfile requires -shards 1"},
		{"zero shards", func(c *flagConfig) { c.Shards = 0 }, "-shards must be >= 1"},
		{"zero votes", func(c *flagConfig) { c.Votes = 0 }, "-votes must be >= 1"},
		{"bad shard-by", func(c *flagConfig) { c.ShardBy = "round-robin" }, "-shard-by must be hash or size"},
		{"bad index config", func(c *flagConfig) { c.Index.Vectors = 7; c.Index.BandSize = 10 }, ""},
		{"ann without embeddings", func(c *flagConfig) { c.AnnTopK = 8 }, "-ann-topk"},
		{"negative ann", func(c *flagConfig) { c.AnnTopK = -1 }, "-ann-topk"},
		{"ann with bad ef", func(c *flagConfig) { c.Sim = "embeddings"; c.AnnTopK = 8; c.AnnEf = 0 }, "-ann-ef"},
		{"shard-urls with shards", func(c *flagConfig) { c.Shards = 2; c.ShardURLs = "http://a:1" }, "incompatible with -shards"},
		{"shard-urls with size placement", func(c *flagConfig) { c.ShardBy = "size"; c.ShardURLs = "http://a:1" }, "requires -shard-by hash"},
		{"shard-urls with delta log", func(c *flagConfig) { c.DeltaLog = "d.log"; c.ShardURLs = "http://a:1" }, "incompatible with -delta-log"},
		{"shard-urls with indexfile", func(c *flagConfig) { c.IndexFile = "i.bin"; c.ShardURLs = "http://a:1" }, "incompatible with -indexfile"},
		{"shard-urls with ann", func(c *flagConfig) { c.Sim = "embeddings"; c.AnnTopK = 8; c.ShardURLs = "http://a:1" }, "incompatible with -ann-topk"},
		{"negative cross cache", func(c *flagConfig) { c.CrossMB = -1 }, "-cross-cache-mb must be >= 0"},
		{"cross cache with ann", func(c *flagConfig) { c.Sim = "embeddings"; c.AnnTopK = 8; c.CrossMB = 64 }, "incompatible with -ann-topk"},
		{"shard-urls with cross cache", func(c *flagConfig) { c.CrossMB = 64; c.ShardURLs = "http://a:1" }, "incompatible with -cross-cache-mb"},
		{"shard-urls empty group", func(c *flagConfig) { c.ShardURLs = "http://a:1,," }, "no replicas"},
		{"shard-urls bad scheme", func(c *flagConfig) { c.ShardURLs = "ftp://a:1" }, "http://"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validConfig()
			tc.mutate(&c)
			err := validateFlags(c)
			if err == nil {
				t.Fatalf("config accepted, want rejection containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseShardURLs(t *testing.T) {
	groups, err := parseShardURLs(" http://a:8081 | http://a2:8081 , http://b:8082/ ")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a:8081", "http://a2:8081"}, {"http://b:8082"}}
	if len(groups) != len(want) {
		t.Fatalf("got %d shards, want %d", len(groups), len(want))
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("shard %d: got %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("shard %d replica %d: got %q, want %q", i, j, groups[i][j], want[i][j])
			}
		}
	}
	if _, err := parseShardURLs(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}
