package main

// Flag validation, factored out of main so the incompatibility matrix is
// testable without forking a process: every rule here answers exit code 2
// (usage error) before any corpus I/O starts, instead of surfacing as a
// mid-flight panic or — worse — a daemon that starts but serves wrong
// results under an unsupported flag combination.

import (
	"fmt"
	"strings"

	"thetis"
)

// flagConfig is the subset of thetisd's flags whose combinations need
// validating.
type flagConfig struct {
	Sim       string
	Shards    int
	ShardBy   string
	ShardURLs string
	Votes     int
	Index     thetis.IndexConfig
	IndexFile string
	DeltaLog  string
	AnnTopK   int
	AnnEf     int
	CrossMB   int
}

// validateFlags returns the first rule the configuration violates, nil if
// the combination is serveable.
func validateFlags(c flagConfig) error {
	if err := c.Index.Validate(); err != nil {
		return err
	}
	if c.Votes < 1 {
		return fmt.Errorf("-votes must be >= 1 (got %d)", c.Votes)
	}
	if c.Shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", c.Shards)
	}
	if c.ShardBy != "hash" && c.ShardBy != "size" {
		return fmt.Errorf("-shard-by must be hash or size (got %q)", c.ShardBy)
	}
	if c.Shards > 1 && c.IndexFile != "" {
		return fmt.Errorf("-indexfile requires -shards 1 (snapshots cover one unsharded index)")
	}
	if c.Shards > 1 && c.DeltaLog != "" {
		return fmt.Errorf("-delta-log requires -shards 1 (the log replays into one unsharded system)")
	}
	if c.AnnTopK < 0 || (c.AnnTopK > 0 && c.Sim != "embeddings") {
		return fmt.Errorf("-ann-topk needs a positive K and -sim embeddings")
	}
	if c.AnnTopK > 0 && c.AnnEf < 1 {
		return fmt.Errorf("-ann-ef must be >= 1 (got %d)", c.AnnEf)
	}
	if c.CrossMB < 0 {
		return fmt.Errorf("-cross-cache-mb must be >= 0 (got %d)", c.CrossMB)
	}
	if c.CrossMB > 0 && c.AnnTopK > 0 {
		return fmt.Errorf("-cross-cache-mb is incompatible with -ann-topk (top-k searches use per-query sigma functions the cross cache is excluded from, so the cache would never be consulted)")
	}
	if c.ShardURLs != "" {
		// Coordinator mode scatters to remote daemons; everything that
		// assumes a local index or local mutations is off the table.
		if c.Shards > 1 {
			return fmt.Errorf("-shard-urls is incompatible with -shards > 1 (remote and in-process sharding cannot nest)")
		}
		if c.ShardBy != "hash" {
			return fmt.Errorf("-shard-urls requires -shard-by hash (only stateless placement is reproducible across coordinator restarts)")
		}
		if c.DeltaLog != "" {
			return fmt.Errorf("-shard-urls is incompatible with -delta-log (a coordinator is read-only; mutate the shard daemons)")
		}
		if c.IndexFile != "" {
			return fmt.Errorf("-shard-urls is incompatible with -indexfile (the coordinator holds no local index; shards build their own)")
		}
		if c.AnnTopK > 0 {
			return fmt.Errorf("-shard-urls is incompatible with -ann-topk (approximate sigma is a shard-daemon setting)")
		}
		if c.CrossMB > 0 {
			return fmt.Errorf("-shard-urls is incompatible with -cross-cache-mb (the coordinator scores nothing locally; enable the cache on the shard daemons)")
		}
		if _, err := parseShardURLs(c.ShardURLs); err != nil {
			return err
		}
	}
	return nil
}

// parseShardURLs splits -shard-urls into per-shard replica groups: shards
// are comma-separated, replicas of one shard pipe-separated —
// "http://a:8081|http://a2:8081,http://b:8082" is two shards, the first
// with two interchangeable replicas. Shard order must match the hash
// partitioner's shard numbering, which in turn fixes which slice of the
// corpus each daemon must serve.
func parseShardURLs(spec string) ([][]string, error) {
	var groups [][]string
	for i, group := range strings.Split(spec, ",") {
		var replicas []string
		for _, u := range strings.Split(group, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("-shard-urls: shard %d replica %q must start with http:// or https://", i, u)
			}
			replicas = append(replicas, strings.TrimRight(u, "/"))
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-shard-urls: shard %d has no replicas", i)
		}
		groups = append(groups, replicas)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("-shard-urls: no shards listed")
	}
	return groups, nil
}
