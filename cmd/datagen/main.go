// Command datagen generates a synthetic semantic-data-lake benchmark: a
// knowledge graph (triples file), an entity-annotated table corpus (JSONL),
// and benchmark queries with ground-truth metadata (JSON).
//
// Usage:
//
//	datagen -out bench/ -tables 4000 -profile wt2015 -queries 25
//
// The output directory will contain kg.nt, corpus.jsonl, and queries.json:
// the input format of cmd/thetis, cmd/thetisd, and `benchrunner -bench`.
package main

import (
	"flag"
	"log"

	"thetis/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	out := flag.String("out", "bench", "output directory")
	tables := flag.Int("tables", 4000, "number of tables")
	profile := flag.String("profile", "wt2015", "corpus profile: wt2015 | wt2019 | gittables")
	queries := flag.Int("queries", 25, "number of benchmark queries")
	tuples := flag.Int("tuples", 5, "tuples per query")
	width := flag.Int("width", 3, "entities per tuple")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	var prof datagen.CorpusProfile
	switch *profile {
	case "wt2015":
		prof = datagen.ProfileWT2015(*tables)
	case "wt2019":
		prof = datagen.ProfileWT2019(*tables)
	case "gittables":
		prof = datagen.ProfileGitTables(*tables)
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	kgCfg := datagen.DefaultKGConfig()
	kgCfg.Seed = *seed
	log.Printf("generating knowledge graph…")
	k := datagen.GenerateKG(kgCfg)
	log.Printf("  %s", k.Graph)

	log.Printf("generating %d-table %s corpus…", *tables, prof.Name)
	l := datagen.GenerateCorpus(k, prof)
	log.Printf("  %s", l.ComputeStats())

	qs := datagen.GenerateQueries(k, datagen.QueryConfig{
		Count: *queries, TuplesPerQuery: *tuples, Width: *width, Seed: *seed,
	})

	if err := datagen.WriteBenchmark(*out, k.Graph, l, qs); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s/{kg.nt, corpus.jsonl, queries.json}", *out)
}
