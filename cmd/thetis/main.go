// Command thetis searches a semantic data lake from the command line.
//
// Subcommands:
//
//	thetis stats  -kg kg.nt -corpus corpus.jsonl
//	thetis embed  -kg kg.nt -out embeddings.bin [-dim 48] [-epochs 3]
//	thetis index  -kg kg.nt -corpus corpus.jsonl -out index.bin \
//	              [-sim types|embeddings] [-embfile embeddings.bin]
//	thetis search -kg kg.nt -corpus corpus.jsonl -query "Ron Santo | Chicago Cubs" \
//	              [-sim types|embeddings] [-embfile embeddings.bin] \
//	              [-k 10] [-lsh] [-indexfile index.bin] [-votes 3] [-hybrid] \
//	              [-timeout 5s]
//
// The corpus is a JSONL file of entity-annotated tables as produced by
// cmd/datagen (or any tool emitting the same format). Training embeddings
// once with `thetis embed` and loading them via -embfile avoids retraining
// on every search.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"thetis"
	"thetis/internal/atomicio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("thetis: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "stats":
		runStats(os.Args[2:])
	case "embed":
		runEmbed(os.Args[2:])
	case "index":
		runIndex(os.Args[2:])
	case "search":
		runSearch(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: thetis <stats|embed|index|search> [flags]")
	os.Exit(2)
}

func runIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	kgPath := fs.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := fs.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	out := fs.String("out", "index.bin", "output index file")
	sim := fs.String("sim", "types", "similarity: types | embeddings")
	embFile := fs.String("embfile", "", "embeddings file (for -sim embeddings)")
	vectors := fs.Int("vectors", 30, "LSH permutations/projections")
	band := fs.Int("band", 10, "LSH band size")
	lenient, budget, maxLine := ingestFlags(fs)
	fs.Parse(args)

	cfg := thetis.DefaultIndexConfig()
	cfg.Vectors = *vectors
	cfg.BandSize = *band
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "thetis index: invalid flags: %v\n", err)
		fs.Usage()
		os.Exit(2)
	}

	sys := loadSystem(*kgPath, *corpusPath, *lenient, *budget, *maxLine)
	configureSimilarity(sys, *sim, *embFile)
	log.Println("building LSEI…")
	sys.BuildIndex(cfg)

	// The snapshot is written atomically (temp file + rename) so a crash
	// mid-write can never leave a half-written index at -out; loads verify
	// checksums regardless.
	err := atomicio.WriteFileAtomic(*out, func(w io.Writer) error {
		return sys.SaveIndex(w)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// ingestFlags registers the shared lenient-ingestion flags.
func ingestFlags(fs *flag.FlagSet) (lenient *bool, budget, maxLine *int) {
	lenient = fs.Bool("lenient", false, "skip malformed KG lines and corpus tables instead of aborting")
	budget = fs.Int("budget", 1000, "max records lenient ingestion may quarantine before giving up (-1 = unlimited)")
	maxLine = fs.Int("max-line", 0, "max bytes per KG/corpus line (0 = 16 MiB default)")
	return
}

// configureSimilarity applies the -sim/-embfile flags to a system.
func configureSimilarity(sys *thetis.System, sim, embFile string) {
	switch sim {
	case "types":
		sys.UseTypeSimilarity()
	case "predicates":
		sys.UsePredicateSimilarity()
	case "embeddings":
		if embFile != "" {
			f, err := os.Open(embFile)
			if err != nil {
				log.Fatal(err)
			}
			err = sys.LoadEmbeddings(bufio.NewReader(f))
			f.Close()
			if err != nil {
				log.Fatalf("loading embeddings: %v", err)
			}
		} else {
			log.Println("training embeddings (use `thetis embed` + -embfile to avoid retraining)…")
			sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
		}
		sys.UseEmbeddingSimilarity()
	default:
		log.Fatalf("unknown similarity %q", sim)
	}
}

func runEmbed(args []string) {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	kgPath := fs.String("kg", "bench/kg.nt", "knowledge graph triples file")
	out := fs.String("out", "embeddings.bin", "output embeddings file")
	dim := fs.Int("dim", 48, "embedding dimensionality")
	epochs := fs.Int("epochs", 3, "training epochs")
	walks := fs.Int("walks", 10, "walks per entity")
	length := fs.Int("length", 8, "walk length")
	seed := fs.Int64("seed", 1, "training seed")
	fs.Parse(args)

	g := thetis.NewGraph()
	kf, err := os.Open(*kgPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := thetis.LoadTriples(g, bufio.NewReader(kf)); err != nil {
		log.Fatalf("loading KG: %v", err)
	}
	kf.Close()

	sys := thetis.New(g)
	wcfg := thetis.WalkConfig{WalksPerEntity: *walks, Length: *length, Undirected: true, Seed: *seed}
	tcfg := thetis.DefaultTrainConfig()
	tcfg.Dim = *dim
	tcfg.Epochs = *epochs
	tcfg.Seed = *seed
	log.Printf("training %d-dim embeddings for %d entities…", *dim, g.NumEntities())
	start := time.Now()
	store := sys.TrainEmbeddings(wcfg, tcfg)
	log.Printf("trained %d vectors in %v", store.Len(), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := sys.SaveEmbeddings(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}

// loadSystem reads the KG and corpus into a System. With lenient set,
// malformed lines and tables are quarantined (up to budget) and a summary
// is logged instead of aborting the load.
func loadSystem(kgPath, corpusPath string, lenient bool, budget, maxLine int) *thetis.System {
	report := thetis.NewIngestReport()
	g := thetis.NewGraph()
	kf, err := os.Open(kgPath)
	if err != nil {
		log.Fatal(err)
	}
	defer kf.Close()
	err = thetis.LoadTriplesOpts(g, bufio.NewReader(kf), thetis.LoadOptions{
		Lenient:      lenient,
		MaxLineBytes: maxLine,
		ErrorBudget:  budget,
		Source:       kgPath,
		Quarantine:   report.Triples,
	})
	if err != nil {
		log.Fatalf("loading KG: %v", err)
	}

	sys := thetis.New(g)
	cf, err := os.Open(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	defer cf.Close()
	if _, err := sys.IngestCorpus(bufio.NewReaderSize(cf, 1<<20), thetis.IngestOptions{
		Lenient:      lenient,
		MaxLineBytes: maxLine,
		ErrorBudget:  budget,
		Source:       corpusPath,
		Report:       report,
	}); err != nil {
		log.Fatalf("corpus: %v", err)
	}
	if lenient {
		_, tSkip := report.Triples.Counts()
		_, cSkip := report.Tables.Counts()
		if tSkip+cSkip > 0 {
			log.Printf("lenient ingest: quarantined %d triples and %d tables", tSkip, cSkip)
			for _, rec := range append(report.Triples.Records(), report.Tables.Records()...) {
				log.Printf("  %s:%d: %s", rec.Source, rec.Line, rec.Reason)
			}
		}
	}
	return sys
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	kgPath := fs.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := fs.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	lenient, budget, maxLine := ingestFlags(fs)
	fs.Parse(args)

	sys := loadSystem(*kgPath, *corpusPath, *lenient, *budget, *maxLine)
	g := sys.Graph()
	fmt.Printf("knowledge graph: %v\n", g)
	fmt.Printf("corpus: %s\n", sys.Stats())
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	kgPath := fs.String("kg", "bench/kg.nt", "knowledge graph triples file")
	corpusPath := fs.String("corpus", "bench/corpus.jsonl", "corpus JSONL file")
	queryText := fs.String("query", "", "query: entities separated by '|', tuples by ';' (labels or URIs)")
	sim := fs.String("sim", "types", "similarity: types | embeddings | predicates")
	embFile := fs.String("embfile", "", "load embeddings from file instead of training")
	k := fs.Int("k", 10, "number of results")
	useLSH := fs.Bool("lsh", false, "enable LSH prefiltering (30,10)")
	indexFile := fs.String("indexfile", "", "load a prebuilt LSEI instead of building one")
	votes := fs.Int("votes", 1, "LSH vote threshold")
	hybrid := fs.Bool("hybrid", false, "complement with BM25 keyword search")
	timeout := fs.Duration("timeout", 0, "search deadline; an expiring search prints the partial ranking (0 disables)")
	lenient, budget, maxLine := ingestFlags(fs)
	fs.Parse(args)

	if *queryText == "" {
		log.Fatal("search: -query is required")
	}
	if *votes < 1 {
		fmt.Fprintf(os.Stderr, "thetis search: invalid flags: -votes must be >= 1 (got %d)\n", *votes)
		fs.Usage()
		os.Exit(2)
	}
	sys := loadSystem(*kgPath, *corpusPath, *lenient, *budget, *maxLine)
	configureSimilarity(sys, *sim, *embFile)
	switch {
	case *indexFile != "":
		f, err := os.Open(*indexFile)
		if err != nil {
			log.Fatal(err)
		}
		err = sys.LoadIndex(bufio.NewReader(f))
		f.Close()
		if err != nil {
			if errors.Is(err, atomicio.ErrCorruptSnapshot) {
				log.Fatalf("index %s is corrupt (%v); rebuild it with `thetis index`", *indexFile, err)
			}
			log.Fatalf("loading index: %v", err)
		}
		sys.SetVotes(*votes)
	case *useLSH:
		log.Println("building LSEI…")
		sys.BuildIndex(thetis.DefaultIndexConfig())
		sys.SetVotes(*votes)
	}

	q, err := sys.ParseQuery(strings.ReplaceAll(*queryText, ";", "\n"))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	if *hybrid {
		sys.BuildKeywordIndex()
		ids := sys.HybridSearchContext(ctx, q, strings.NewReplacer("|", " ", ";", " ").Replace(*queryText), *k)
		elapsed := time.Since(start)
		for i, id := range ids {
			fmt.Printf("%2d. %s\n", i+1, sys.Table(id).Name)
		}
		fmt.Printf("(%d results in %v, hybrid)\n", len(ids), elapsed.Round(time.Millisecond))
		return
	}

	results, stats := sys.SearchStatsContext(ctx, q, *k)
	elapsed := time.Since(start)
	for i, r := range results {
		fmt.Printf("%2d. %-40s score=%.4f\n", i+1, sys.Table(r.Table).Name, r.Score)
	}
	fmt.Printf("(%d/%d tables scored in %v)\n", stats.Scored, stats.Candidates, elapsed.Round(time.Millisecond))
	if stats.Truncated {
		fmt.Printf("(truncated: deadline %v expired; ranking covers tables scored before the cutoff)\n", *timeout)
	}
	if stats.Trace != nil {
		fmt.Printf("(%s)\n", stats.Trace)
	}
}
