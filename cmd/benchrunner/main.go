// Command benchrunner regenerates the paper's evaluation artifacts (Tables
// 2–4, Figures 4–6, and the in-prose ablations of Section 7) over a
// synthetic semantic-data-lake benchmark, printing the same rows and series
// the paper reports.
//
// Usage:
//
//	benchrunner                      # run every experiment at default scale
//	benchrunner -exp fig4            # run one experiment
//	benchrunner -tables 20000 -queries 50   # approach the paper's scale
//	benchrunner -list                # list experiment IDs
//	benchrunner -exp table3 -sigmacache=false   # paired σ-cache runs
//	benchrunner -exp shards -shards 8    # scatter-gather sweep up to 8 shards
//	benchrunner -exp ann -json BENCH_ann.json   # ANN recall/NDCG differential
//	benchrunner -exp throughput -concurrency 8 -duration 2s -json BENCH_throughput.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"thetis/internal/core"
	"thetis/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchrunner: ")

	exp := flag.String("exp", "all", "experiment ID or 'all'")
	tables := flag.Int("tables", 0, "corpus size (0 = default)")
	queries := flag.Int("queries", 0, "number of benchmark queries (0 = default)")
	small := flag.Bool("small", false, "use the fast test-scale environment")
	bench := flag.String("bench", "", "load a datagen benchmark directory instead of generating")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	sigmacache := flag.Bool("sigmacache", true,
		"enable the query-scoped similarity cache (pass -sigmacache=false for paired runs, see docs/PERFORMANCE.md)")
	shards := flag.Int("shards", 0,
		"largest shard count the scatter-gather experiment sweeps (0 = default, see docs/SHARDING.md)")
	jsonOut := flag.String("json", "",
		"write the experiment's machine-readable record to this file (single -exp only)")
	qps := flag.Float64("qps", 0,
		"throughput experiment: cap the aggregate request rate (0 = unpaced closed loop, see docs/THROUGHPUT.md)")
	concurrency := flag.Int("concurrency", 0,
		"throughput experiment: closed-loop worker count (0 = default 8)")
	duration := flag.Duration("duration", 0,
		"throughput experiment: measuring window per cell (0 = default 2s)")
	flag.Parse()

	core.SetSigmaCacheEnabled(*sigmacache)

	if *list {
		fmt.Println(strings.Join(experiments.ExperimentIDs(), "\n"))
		return
	}

	cfg := experiments.DefaultConfig()
	if *small {
		cfg = experiments.SmallConfig()
	}
	if *tables > 0 {
		cfg.Tables = *tables
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	cfg.QPS = *qps
	if *concurrency > 0 {
		cfg.Concurrency = *concurrency
	}
	if *duration > 0 {
		cfg.LoadWindow = *duration
	}

	start := time.Now()
	var env *experiments.Env
	if *bench != "" {
		var err error
		env, err = experiments.NewEnvFromBenchmark(*bench, cfg, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		env = experiments.NewEnv(cfg, os.Stderr)
	}

	if *exp == "all" {
		if *jsonOut != "" {
			log.Fatal("-json requires a single -exp")
		}
		experiments.RunAll(env, os.Stdout)
	} else {
		res, err := experiments.RunCapture(env, *exp, os.Stdout)
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut != "" {
			j, ok := res.(experiments.JSONer)
			if !ok {
				log.Fatalf("-json: experiment %q has no JSON record", *exp)
			}
			raw, err := j.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
}
