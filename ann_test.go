package thetis

// ANN serving battery (docs/ANN.md): top-k σ must be a pure serving-time
// overlay — off means bit-identical exact rankings, on means deterministic
// rankings across parallelism and shard counts, and a corpus mutation
// degrades to exact σ (never a stale graph) until the background rebuild
// lands. The concurrency legs run under -race via `make anncheck`.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"thetis/internal/obs"
)

var (
	annOnce    sync.Once
	annStore   *EmbeddingStore
	annQueries []Query
)

// annEnv trains one small embedding store over the shared battery KG and
// derives mixed 1-/5-tuple queries. The store is immutable and shared; each
// test builds its own System around it.
func annEnv(t *testing.T) (*EmbeddingStore, []*Table, []Query) {
	t.Helper()
	kgEnv, tables, queries := batteryEnv(t)
	annOnce.Do(func() {
		sys := New(kgEnv.Graph)
		annStore = sys.TrainEmbeddings(
			WalkConfig{WalksPerEntity: 6, Length: 6, Undirected: true, Seed: 9},
			TrainConfig{Dim: 16, Window: 3, Negatives: 4, Epochs: 2, LearningRate: 0.03, Seed: 9},
		)
		annQueries = queries
	})
	return annStore, tables, annQueries
}

// annSystem builds a System over n battery tables with embedding σ
// selected; enable ANN per test.
func annSystem(t *testing.T, n int) *System {
	t.Helper()
	store, tables, _ := annEnv(t)
	kgEnv, _, _ := batteryEnv(t)
	sys := New(kgEnv.Graph)
	if n > len(tables) {
		n = len(tables)
	}
	for _, tb := range tables[:n] {
		sys.AddTable(tb)
	}
	sys.SetEmbeddings(store)
	sys.UseEmbeddingSimilarity()
	return sys
}

func rankingsEqual(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Table != b[i].Table || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestANNOffBitIdentical: enabling then disabling ANN must leave the engine
// scoring bit-identically to a system that never turned it on.
func TestANNOffBitIdentical(t *testing.T) {
	_, _, queries := annEnv(t)
	plain := annSystem(t, 200)
	toggled := annSystem(t, 200)
	if err := toggled.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	toggled.DisableAnnTopK()
	for qi, q := range queries {
		want := plain.Search(q, 10)
		got := toggled.Search(q, 10)
		if !rankingsEqual(want, got) {
			t.Fatalf("q%d: rankings differ after enable/disable round trip", qi)
		}
	}
}

// TestANNDeterministicAcrossParallelism: neighborhoods are resolved before
// scoring workers start, so the top-k σ ranking must not depend on the
// worker count.
func TestANNDeterministicAcrossParallelism(t *testing.T) {
	_, _, queries := annEnv(t)
	sys := annSystem(t, 200)
	if err := sys.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	var baseline [][]Result
	for _, par := range []int{1, 4, 16} {
		sys.SetParallelism(par)
		for qi, q := range queries {
			got := sys.Search(q, 10)
			if par == 1 {
				baseline = append(baseline, got)
				continue
			}
			if !rankingsEqual(baseline[qi], got) {
				t.Fatalf("q%d: ranking at parallelism %d differs from parallelism 1", qi, par)
			}
		}
	}
}

// TestANNShardedMatchesUnsharded: one shared graph serves every shard, so a
// sharded deployment with ANN on must rank bit-identically to the unsharded
// system with ANN on.
func TestANNShardedMatchesUnsharded(t *testing.T) {
	store, tables, queries := annEnv(t)
	kgEnv, _, _ := batteryEnv(t)
	sys := annSystem(t, 200)
	ss := NewShardedSystem(kgEnv.Graph, NewHashPartitioner(4))
	for _, tb := range tables[:200] {
		ss.AddTable(tb)
	}
	ss.SetEmbeddings(store)
	ss.UseEmbeddingSimilarity()
	if err := sys.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	if err := ss.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want := sys.Search(q, 10)
		got := ss.Search(q, 10)
		if !rankingsEqual(want, got) {
			t.Fatalf("q%d: sharded ANN ranking differs from unsharded", qi)
		}
	}
	st := ss.AnnStatus()
	if !st.Enabled || !st.Current || st.GraphNodes == 0 {
		t.Fatalf("sharded AnnStatus = %+v", st)
	}
}

// TestANNEpochFallbackAndRebuild: a corpus mutation must flip the graph to
// stale, searches must serve exact σ meanwhile (never the stale graph), and
// the background rebuild must converge to a current graph.
func TestANNEpochFallbackAndRebuild(t *testing.T) {
	_, tables, queries := annEnv(t)
	sys := annSystem(t, 200)
	exact := annSystem(t, 200) // stays in exact mode, mutated in lockstep
	if err := sys.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	if st := sys.AnnStatus(); !st.Enabled || !st.Current {
		t.Fatalf("fresh AnnStatus = %+v", st)
	}

	sys.AddTable(tables[200])
	exact.AddTable(tables[200])
	if st := sys.AnnStatus(); st.Current {
		t.Fatalf("AnnStatus still current after mutation: %+v", st)
	}
	// The first search after the epoch bump serves the degraded exact
	// fallback — bit-identical to the pure exact system.
	for qi, q := range queries {
		if !rankingsEqual(exact.Search(q, 10), sys.Search(q, 10)) {
			t.Fatalf("q%d: degraded fallback differs from exact", qi)
		}
	}
	// The fallback search kicked a single-flight rebuild; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for !sys.AnnStatus().Current {
		if time.Now().After(deadline) {
			t.Fatal("ANN graph never caught up with the corpus epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for qi, q := range queries {
		if got := sys.Search(q, 10); len(got) == 0 {
			t.Fatalf("q%d: no results after rebuild", qi)
		}
	}
}

// TestANNConcurrentSearchScrapeRebuild hammers one ANN-enabled system with
// concurrent searches and /metrics scrapes while corpus mutations force
// epoch rebuilds mid-flight. Run under -race (make anncheck); the assertion
// is the absence of races/panics plus non-empty results throughout.
func TestANNConcurrentSearchScrapeRebuild(t *testing.T) {
	_, tables, queries := annEnv(t)
	sys := annSystem(t, 200)
	if err := sys.EnableAnnTopK(10, 64); err != nil {
		t.Fatal(err)
	}
	handler := obs.Default.Handler()

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				if res := sys.Search(q, 10); len(res) == 0 {
					select {
					case errc <- fmt.Errorf("worker %d: empty result", w):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != 200 {
				select {
				case errc <- fmt.Errorf("metrics scrape status %d", rec.Code):
				default:
				}
				return
			}
			_ = sys.AnnStatus()
		}
	}()
	// Mutations from the test goroutine: each bumps the epoch, forcing the
	// searchers through the degraded-fallback + background-rebuild path.
	for i := 200; i < 210 && i < len(tables); i++ {
		sys.AddTable(tables[i])
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
