// Coverage robustness: Section 7.5 of the paper shows Thetis keeps
// retrieving relevant tables even when only a fraction of cells are linked
// to the KG. This example builds a lake of rosters, then progressively
// strips entity links from the relevant tables and reports how the target
// table's rank and score degrade — gracefully, not catastrophically.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"thetis"
)

func main() {
	g := buildGraph()
	linker := thetis.NewDictionaryLinker(g)

	fmt.Println("link coverage vs rank/score of the relevant roster table")
	fmt.Println("coverage  rank  SemRel")
	for _, keep := range []float64{1.0, 0.6, 0.3, 0.1, 0.05, 0.0} {
		sys := thetis.New(g)

		// The relevant table: players of the queried team, with a
		// controlled fraction of cells linked.
		roster := thetis.NewTable("cubs_roster", []string{"Player", "Team"})
		for i := 0; i < 20; i++ {
			roster.AppendValues(fmt.Sprintf("Cubs Player %d", i), "Chicago Cubs")
		}
		thetis.LinkTable(roster, linker)
		delink(roster, keep, 7)
		sys.AddTable(roster)

		// Distractors: rosters of other domains, fully linked.
		for d := 0; d < 20; d++ {
			t := thetis.NewTable(fmt.Sprintf("other_%d", d), []string{"Member", "Club"})
			for i := 0; i < 20; i++ {
				t.AppendValues(fmt.Sprintf("Chess Player %d", (d*20+i)%40), "Pawn Stars Club")
			}
			thetis.LinkTable(t, linker)
			sys.AddTable(t)
		}

		sys.UseTypeSimilarity()
		q, err := sys.ParseQuery("Cubs Player 3 | Chicago Cubs")
		if err != nil {
			log.Fatal(err)
		}
		results := sys.Search(q, -1)
		rank, score := -1, 0.0
		for i, r := range results {
			if sys.Table(r.Table).Name == "cubs_roster" {
				rank, score = i+1, r.Score
				break
			}
		}
		if rank < 0 {
			fmt.Printf("%7.0f%%  gone  (table no longer retrieved)\n", keep*100)
			continue
		}
		fmt.Printf("%7.0f%%  %4d  %.3f\n", keep*100, rank, score)
	}
}

// delink removes entity annotations until only `keep` of the original
// links remain.
func delink(t *thetis.Table, keep float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, row := range t.Rows {
		for j := range row {
			if row[j].Linked() && rng.Float64() > keep {
				row[j] = thetis.Cell{Value: row[j].Value}
			}
		}
	}
}

func buildGraph() *thetis.Graph {
	g := thetis.NewGraph()
	ontology := `
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/ChessPlayer>    <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam>   <rdfs:subClassOf> <onto/Organisation> .
<onto/ChessClub>      <rdfs:subClassOf> <onto/Organisation> .
`
	if err := thetis.LoadTriples(g, strings.NewReader(ontology)); err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<res/cubs> <rdf:type> <onto/BaseballTeam> .\n")
	fmt.Fprintf(&b, "<res/cubs> <rdfs:label> \"Chicago Cubs\" .\n")
	fmt.Fprintf(&b, "<res/pawns> <rdf:type> <onto/ChessClub> .\n")
	fmt.Fprintf(&b, "<res/pawns> <rdfs:label> \"Pawn Stars Club\" .\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "<res/cp%d> <rdf:type> <onto/BaseballPlayer> .\n", i)
		fmt.Fprintf(&b, "<res/cp%d> <rdfs:label> \"Cubs Player %d\" .\n", i, i)
	}
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "<res/ch%d> <rdf:type> <onto/ChessPlayer> .\n", i)
		fmt.Fprintf(&b, "<res/ch%d> <rdfs:label> \"Chess Player %d\" .\n", i, i)
	}
	if err := thetis.LoadTriples(g, strings.NewReader(b.String())); err != nil {
		log.Fatal(err)
	}
	return g
}
