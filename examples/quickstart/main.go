// Quickstart: build a tiny semantic data lake and run one semantic table
// search, end to end, in under a minute of reading.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"thetis"
)

// A miniature knowledge graph: a taxonomy of athletes and teams, a few
// entities, and their relationships — the kind of thing an enterprise KG
// records about its domain.
const triples = `
<onto/Athlete>        <rdfs:subClassOf> <onto/Person> .
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam>   <rdfs:subClassOf> <onto/Organisation> .

<res/Ron_Santo>      <rdf:type>   <onto/BaseballPlayer> .
<res/Ron_Santo>      <rdfs:label> "Ron Santo" .
<res/Mitch_Stetter>  <rdf:type>   <onto/BaseballPlayer> .
<res/Mitch_Stetter>  <rdfs:label> "Mitch Stetter" .
<res/Ernie_Banks>    <rdf:type>   <onto/BaseballPlayer> .
<res/Ernie_Banks>    <rdfs:label> "Ernie Banks" .
<res/Chicago_Cubs>      <rdf:type>   <onto/BaseballTeam> .
<res/Chicago_Cubs>      <rdfs:label> "Chicago Cubs" .
<res/Milwaukee_Brewers> <rdf:type>   <onto/BaseballTeam> .
<res/Milwaukee_Brewers> <rdfs:label> "Milwaukee Brewers" .

<res/Ron_Santo>     <onto/team> <res/Chicago_Cubs> .
<res/Ernie_Banks>   <onto/team> <res/Chicago_Cubs> .
<res/Mitch_Stetter> <onto/team> <res/Milwaukee_Brewers> .
`

func main() {
	// 1. Load the knowledge graph.
	g := thetis.NewGraph()
	if err := thetis.LoadTriples(g, strings.NewReader(triples)); err != nil {
		log.Fatal(err)
	}

	// 2. Create the semantic data lake and ingest tables. An entity linker
	// annotates cell values with KG entities (the Φ mapping) before
	// ingestion — here a simple label dictionary.
	sys := thetis.New(g)
	linker := thetis.NewDictionaryLinker(g)

	roster := thetis.NewTable("cubs_roster", []string{"Player", "Team", "Avg"})
	roster.AppendValues("Ron Santo", "Chicago Cubs", ".277")
	roster.AppendValues("Ernie Banks", "Chicago Cubs", ".274")
	thetis.LinkTable(roster, linker)
	sys.AddTable(roster)

	transfers := thetis.NewTable("transfers", []string{"Player", "To"})
	transfers.AppendValues("Mitch Stetter", "Milwaukee Brewers")
	thetis.LinkTable(transfers, linker)
	sys.AddTable(transfers)

	budget := thetis.NewTable("budget", []string{"Quarter", "Spend"})
	budget.AppendValues("Q1", "120000")
	budget.AppendValues("Q2", "98000")
	thetis.LinkTable(budget, linker)
	sys.AddTable(budget)

	// 3. Pick an entity similarity. Type similarity needs no training.
	sys.UseTypeSimilarity()

	// 4. Search with an example entity tuple: "tables about Ron Santo and
	// the Chicago Cubs". Semantically related tables (Stetter/Brewers —
	// same types) rank below exact matches; the budget table, which has no
	// related entities, is not returned at all.
	q, err := sys.ParseQuery("Ron Santo | Chicago Cubs")
	if err != nil {
		log.Fatal(err)
	}
	results := sys.Search(q, 10)

	fmt.Println("query: ⟨Ron Santo, Chicago Cubs⟩")
	for i, r := range results {
		fmt.Printf("%d. %-12s SemRel=%.3f\n", i+1, sys.Table(r.Table).Name, r.Score)
	}
}
