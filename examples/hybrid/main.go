// Hybrid search: Section 7.2 of the paper shows keyword search (BM25) and
// semantic table search find largely disjoint sets of relevant tables, and
// that complementing the two (STSTC/STSEC) improves recall by up to 5.4x.
// This example builds a lake where some tables mention entities under
// surface variants that keyword search cannot match, and compares the three
// strategies.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"strings"

	"thetis"
)

func main() {
	g := thetis.NewGraph()
	if err := thetis.LoadTriples(g, strings.NewReader(`
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam>   <rdfs:subClassOf> <onto/Organisation> .
<res/santo>   <rdf:type> <onto/BaseballPlayer> .
<res/santo>   <rdfs:label> "Ron Santo" .
<res/banks>   <rdf:type> <onto/BaseballPlayer> .
<res/banks>   <rdfs:label> "Ernie Banks" .
<res/stetter> <rdf:type> <onto/BaseballPlayer> .
<res/stetter> <rdfs:label> "Mitch Stetter" .
<res/cubs>    <rdf:type> <onto/BaseballTeam> .
<res/cubs>    <rdfs:label> "Chicago Cubs" .
<res/brewers> <rdf:type> <onto/BaseballTeam> .
<res/brewers> <rdfs:label> "Milwaukee Brewers" .
`)); err != nil {
		log.Fatal(err)
	}

	sys := thetis.New(g)
	santo, _ := g.Lookup("res/santo")
	cubs, _ := g.Lookup("res/cubs")
	banks, _ := g.Lookup("res/banks")
	stetter, _ := g.Lookup("res/stetter")
	brewers, _ := g.Lookup("res/brewers")

	// Table found by BOTH: canonical mentions.
	exact := thetis.NewTable("exact_mentions", []string{"Player", "Team"})
	exact.AppendRow([]thetis.Cell{
		thetis.LinkedCell("Ron Santo", santo),
		thetis.LinkedCell("Chicago Cubs", cubs),
	})
	sys.AddTable(exact)

	// Table only SEMANTIC search finds: the cells use abbreviations the
	// keyword query can't match, but the entity links carry the semantics.
	variant := thetis.NewTable("scorecard_1969", []string{"3B", "Club"})
	variant.AppendRow([]thetis.Cell{
		thetis.LinkedCell("SANTO R", santo),
		thetis.LinkedCell("CHC", cubs),
	})
	sys.AddTable(variant)

	// Related table (different players, same types) — semantic only.
	related := thetis.NewTable("brewers_moves", []string{"Player", "Team"})
	related.AppendRow([]thetis.Cell{
		thetis.LinkedCell("M. Stetter", stetter),
		thetis.LinkedCell("MIL", brewers),
	})
	sys.AddTable(related)

	// Table only KEYWORD search finds: it mentions the query strings in a
	// context the entity linker missed (no links at all).
	unlinked := thetis.NewTable("newspaper_clippings", []string{"Headline"})
	unlinked.AppendValues("Ron Santo leads Chicago Cubs to victory")
	sys.AddTable(unlinked)

	// A linked distractor.
	other := thetis.NewTable("banks_profile", []string{"Player"})
	other.AppendRow([]thetis.Cell{thetis.LinkedCell("Ernie Banks", banks)})
	sys.AddTable(other)

	sys.UseTypeSimilarity()
	sys.BuildKeywordIndex()

	q, err := sys.ParseQuery("Ron Santo | Chicago Cubs")
	if err != nil {
		log.Fatal(err)
	}
	keywords := "Ron Santo Chicago Cubs"

	names := func(ids []thetis.TableID) string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = sys.Table(id).Name
		}
		return strings.Join(out, ", ")
	}

	semantic := sys.Search(q, 4)
	semIDs := make([]thetis.TableID, len(semantic))
	for i, r := range semantic {
		semIDs[i] = r.Table
	}
	fmt.Println("semantic only: ", names(semIDs))
	fmt.Println("keyword only:  ", names(sys.KeywordSearch(keywords, 4)))
	fmt.Println("hybrid (STSTC):", names(sys.HybridSearch(q, keywords, 4)))
	fmt.Println()
	fmt.Println("the hybrid result covers the abbreviation-only scorecard (semantic)")
	fmt.Println("and the unlinked newspaper table (keyword) in one ranking.")
}
