// Baseball analytics: the paper's motivating scenario (Figure 1). A
// betting company analyzes baseball teams and players across a data lake
// that also holds tables about other sports and unrelated domains. The
// example builds a KG-backed lake, trains entity embeddings, and contrasts
// the two similarity functions (types vs embeddings) plus LSH prefiltering
// on a multi-tuple query.
//
//	go run ./examples/baseball
package main

import (
	"fmt"
	"log"
	"strings"

	"thetis"
)

const ontology = `
<onto/Athlete>          <rdfs:subClassOf> <onto/Person> .
<onto/BaseballPlayer>   <rdfs:subClassOf> <onto/Athlete> .
<onto/VolleyballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/SportsTeam>       <rdfs:subClassOf> <onto/Organisation> .
<onto/BaseballTeam>     <rdfs:subClassOf> <onto/SportsTeam> .
<onto/VolleyballTeam>   <rdfs:subClassOf> <onto/SportsTeam> .
<onto/City>             <rdfs:subClassOf> <onto/Place> .
`

type entitySpec struct{ uri, label, typ string }

var entities = []entitySpec{
	{"res/Ron_Santo", "Ron Santo", "onto/BaseballPlayer"},
	{"res/Ernie_Banks", "Ernie Banks", "onto/BaseballPlayer"},
	{"res/Mitch_Stetter", "Mitch Stetter", "onto/BaseballPlayer"},
	{"res/Tony_Giarratano", "Tony Giarratano", "onto/BaseballPlayer"},
	{"res/Micah_Hoffpauir", "Micah Hoffpauir", "onto/BaseballPlayer"},
	{"res/Chicago_Cubs", "Chicago Cubs", "onto/BaseballTeam"},
	{"res/Milwaukee_Brewers", "Milwaukee Brewers", "onto/BaseballTeam"},
	{"res/Detroit_Tigers", "Detroit Tigers", "onto/BaseballTeam"},
	{"res/Vera_Koslova", "Vera Koslova", "onto/VolleyballPlayer"},
	{"res/Chicago_Smash", "Chicago Smash", "onto/VolleyballTeam"},
	{"res/Chicago", "Chicago", "onto/City"},
	{"res/Milwaukee", "Milwaukee", "onto/City"},
	{"res/Detroit", "Detroit", "onto/City"},
}

var edges = [][2]string{
	{"res/Ron_Santo", "res/Chicago_Cubs"},
	{"res/Ernie_Banks", "res/Chicago_Cubs"},
	{"res/Micah_Hoffpauir", "res/Chicago_Cubs"},
	{"res/Mitch_Stetter", "res/Milwaukee_Brewers"},
	{"res/Tony_Giarratano", "res/Detroit_Tigers"},
	{"res/Vera_Koslova", "res/Chicago_Smash"},
}

var locations = [][2]string{
	{"res/Chicago_Cubs", "res/Chicago"},
	{"res/Chicago_Smash", "res/Chicago"},
	{"res/Milwaukee_Brewers", "res/Milwaukee"},
	{"res/Detroit_Tigers", "res/Detroit"},
}

func buildGraph() *thetis.Graph {
	g := thetis.NewGraph()
	if err := thetis.LoadTriples(g, strings.NewReader(ontology)); err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	for _, e := range entities {
		fmt.Fprintf(&b, "<%s> <rdf:type> <%s> .\n", e.uri, e.typ)
		fmt.Fprintf(&b, "<%s> <rdfs:label> \"%s\" .\n", e.uri, e.label)
	}
	for _, ed := range edges {
		fmt.Fprintf(&b, "<%s> <onto/team> <%s> .\n", ed[0], ed[1])
	}
	for _, lo := range locations {
		fmt.Fprintf(&b, "<%s> <onto/locatedIn> <%s> .\n", lo[0], lo[1])
	}
	if err := thetis.LoadTriples(g, strings.NewReader(b.String())); err != nil {
		log.Fatal(err)
	}
	return g
}

// buildLake mirrors Figure 1b: T1 teams, T2 player moves, T3 game results,
// T4 rosters, T5 a volleyball table from the same cities.
func buildLake(g *thetis.Graph) *thetis.System {
	sys := thetis.New(g)
	linker := thetis.NewDictionaryLinker(g)
	add := func(t *thetis.Table) {
		thetis.LinkTable(t, linker)
		sys.AddTable(t)
	}

	teams := thetis.NewTable("T1_teams", []string{"Team", "City", "Founded"})
	teams.AppendValues("Chicago Cubs", "Chicago", "1876")
	teams.AppendValues("Milwaukee Brewers", "Milwaukee", "1969")
	teams.AppendValues("Detroit Tigers", "Detroit", "1894")
	add(teams)

	moves := thetis.NewTable("T2_player_moves", []string{"Player", "From", "Season"})
	moves.AppendValues("Tony Giarratano", "Detroit Tigers", "2005")
	moves.AppendValues("Mitch Stetter", "Milwaukee Brewers", "2011")
	add(moves)

	results := thetis.NewTable("T3_game_results", []string{"Home", "Away", "Score"})
	results.AppendValues("Chicago Cubs", "Milwaukee Brewers", "5-3")
	results.AppendValues("Detroit Tigers", "Chicago Cubs", "2-7")
	add(results)

	roster := thetis.NewTable("T4_roster", []string{"Player", "Team", "Avg"})
	roster.AppendValues("Ron Santo", "Chicago Cubs", ".277")
	roster.AppendValues("Micah Hoffpauir", "Chicago Cubs", ".257")
	add(roster)

	volleyball := thetis.NewTable("T5_volleyball", []string{"Player", "Team", "City"})
	volleyball.AppendValues("Vera Koslova", "Chicago Smash", "Chicago")
	add(volleyball)

	budget := thetis.NewTable("T6_office_budget", []string{"Quarter", "Spend"})
	budget.AppendValues("Q1", "120000")
	add(budget)

	return sys
}

func show(title string, sys *thetis.System, results []thetis.Result) {
	fmt.Printf("\n%s\n", title)
	for i, r := range results {
		fmt.Printf("  %d. %-18s SemRel=%.3f\n", i+1, sys.Table(r.Table).Name, r.Score)
	}
}

func main() {
	g := buildGraph()
	sys := buildLake(g)

	// The paper's query (Figure 1c): baseball players and their teams in
	// different seasons — two example tuples.
	q, err := sys.ParseQuery(`
		Ron Santo | Chicago Cubs
		Mitch Stetter | Milwaukee Brewers
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Type-based similarity (STST): ranks tables by taxonomic relatedness.
	sys.UseTypeSimilarity()
	show("STST (type similarity):", sys, sys.Search(q, 10))

	// Embedding similarity (STSE): graph context separates baseball from
	// volleyball even where the taxonomy is coarse.
	sys.TrainEmbeddings(
		thetis.WalkConfig{WalksPerEntity: 50, Length: 8, Undirected: true, Seed: 1},
		thetis.TrainConfig{Dim: 24, Window: 4, Negatives: 5, Epochs: 10, LearningRate: 0.05, Seed: 1})
	sys.UseEmbeddingSimilarity()
	show("STSE (embedding similarity):", sys, sys.Search(q, 10))

	// LSH prefiltering keeps the same top results while scoring fewer
	// tables — the mechanism that scales Thetis to 10^6-table lakes.
	sys.BuildIndex(thetis.DefaultIndexConfig())
	res, stats := sys.SearchStats(q, 10)
	show(fmt.Sprintf("STSE + LSEI(30,10) — scored %d of %d tables:", stats.Candidates, sys.NumTables()), sys, res)
}
