// Data discovery session: the extension features working together. An
// analyst explores an unfamiliar lake with an over-specialized query
// (automatically relaxed), blends type and embedding similarity into one
// σ, and persists the trained artifacts so the next session starts
// instantly.
//
//	go run ./examples/discovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"thetis"
)

func main() {
	g := buildGraph()
	sys := buildLake(g)

	// 1. Blend the two similarity signals (the paper's future-work item of
	// combining measures in a unified manner): taxonomy types catch
	// same-kind entities, embeddings catch same-community entities.
	sys.TrainEmbeddings(
		thetis.WalkConfig{WalksPerEntity: 40, Length: 8, Undirected: true, IncludePredicates: true, Seed: 1},
		thetis.TrainConfig{Dim: 24, Window: 4, Negatives: 5, Epochs: 8, LearningRate: 0.05, Seed: 1})
	sys.UseCombinedSimilarity(0.5, 0.5)

	// 2. An over-specialized query: the analyst lists a player, the team,
	// the city, AND a specific season value no table pairs with all of
	// them. Plain search finds no perfect match; RelaxedSearch drops the
	// least informative entity (the ubiquitous city) and recovers.
	q, err := sys.ParseQuery("Nia Keller | Harbor Queens | Port Vista")
	if err != nil {
		log.Fatal(err)
	}
	strict := sys.Search(q, 5)
	fmt.Println("strict query (player | team | city):")
	printResults(sys, strict)

	relaxedResults, relaxedQuery := sys.RelaxedSearch(q, 5, 1, 0.999)
	fmt.Printf("\nafter relaxation (query narrowed to %d entities):\n", relaxedQuery.NumEntities())
	printResults(sys, relaxedResults)

	// 3. Persist the trained artifacts: the next session loads embeddings
	// and the LSH index instead of re-training and re-hashing.
	sys.BuildIndex(thetis.DefaultIndexConfig())
	var embBlob, idxBlob bytes.Buffer
	if err := sys.SaveEmbeddings(&embBlob); err != nil {
		log.Fatal(err)
	}
	if err := sys.SaveIndex(&idxBlob); err != nil {
		log.Fatal(err)
	}

	embBytes, idxBytes := embBlob.Len(), idxBlob.Len()
	next := buildLake(buildGraph()) // a fresh process over the same lake
	if err := next.LoadEmbeddings(&embBlob); err != nil {
		log.Fatal(err)
	}
	next.UseCombinedSimilarity(0.5, 0.5) // same σ as the session that saved
	if err := next.LoadIndex(&idxBlob); err != nil {
		log.Fatal(err)
	}
	q2, _ := next.ParseQuery("Nia Keller | Harbor Queens")
	fmt.Printf("\nnext session (loaded %d B embeddings + %d B index, no retraining):\n",
		embBytes, idxBytes)
	printResults(next, next.Search(q2, 5))
}

func printResults(sys *thetis.System, results []thetis.Result) {
	if len(results) == 0 {
		fmt.Println("  (no tables with SemRel > 0)")
		return
	}
	for i, r := range results {
		fmt.Printf("  %d. %-22s SemRel=%.3f\n", i+1, sys.Table(r.Table).Name, r.Score)
	}
}

func buildGraph() *thetis.Graph {
	g := thetis.NewGraph()
	ontology := `
<onto/RowerPlayer>  <rdfs:subClassOf> <onto/Athlete> .
<onto/SailorPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/Team>         <rdfs:subClassOf> <onto/Organisation> .
<onto/City>         <rdfs:subClassOf> <onto/Place> .
`
	if err := thetis.LoadTriples(g, strings.NewReader(ontology)); err != nil {
		log.Fatal(err)
	}
	var b strings.Builder
	add := func(uri, label, typ string) {
		fmt.Fprintf(&b, "<%s> <rdf:type> <%s> .\n<%s> <rdfs:label> \"%s\" .\n", uri, typ, uri, label)
	}
	add("res/keller", "Nia Keller", "onto/RowerPlayer")
	add("res/ferro", "Max Ferro", "onto/RowerPlayer")
	add("res/ito", "Kana Ito", "onto/RowerPlayer")
	add("res/queens", "Harbor Queens", "onto/Team")
	add("res/gulls", "Bay Gulls", "onto/Team")
	add("res/portvista", "Port Vista", "onto/City")
	for i := 0; i < 12; i++ {
		add(fmt.Sprintf("res/sailor%d", i), fmt.Sprintf("Sailor %d", i), "onto/SailorPlayer")
	}
	fmt.Fprintf(&b, "<res/keller> <onto/team> <res/queens> .\n")
	fmt.Fprintf(&b, "<res/ito> <onto/team> <res/queens> .\n")
	fmt.Fprintf(&b, "<res/ferro> <onto/team> <res/gulls> .\n")
	fmt.Fprintf(&b, "<res/queens> <onto/locatedIn> <res/portvista> .\n")
	fmt.Fprintf(&b, "<res/gulls> <onto/locatedIn> <res/portvista> .\n")
	if err := thetis.LoadTriples(g, strings.NewReader(b.String())); err != nil {
		log.Fatal(err)
	}
	return g
}

func buildLake(g *thetis.Graph) *thetis.System {
	sys := thetis.New(g)
	linker := thetis.NewDictionaryLinker(g)
	add := func(t *thetis.Table) {
		thetis.LinkTable(t, linker)
		sys.AddTable(t)
	}

	roster := thetis.NewTable("queens_roster", []string{"Rower", "Team"})
	roster.AppendValues("Nia Keller", "Harbor Queens")
	roster.AppendValues("Kana Ito", "Harbor Queens")
	add(roster)

	rivals := thetis.NewTable("gulls_roster", []string{"Rower", "Team"})
	rivals.AppendValues("Max Ferro", "Bay Gulls")
	add(rivals)

	// Port Vista appears in many unrelated tables, making it uninformative
	// — and no table holds player+team+city together, which is what makes
	// the 3-entity query over-specialized.
	for i := 0; i < 6; i++ {
		t := thetis.NewTable(fmt.Sprintf("city_events_%d", i), []string{"City", "Event"})
		t.AppendValues("Port Vista", fmt.Sprintf("Regatta %d", i))
		add(t)
	}
	return sys
}
