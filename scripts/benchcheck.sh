#!/bin/sh
# benchcheck — paired σ-cache regression benchmark (docs/PERFORMANCE.md).
#
# Runs the BruteTypes case of BenchmarkSearchBruteVsLSH with the default
# build (query-scoped similarity cache on) and with the `nosigmacache`
# escape hatch, takes the best-of-N ns/op for each, and fails when the
# cached build is more than MAX_REGRESSION_PCT slower than the uncached
# one — the canary for the cache turning into overhead. The cached build
# is normally far *faster*; this guard is one-sided on purpose so noisy
# runners don't flake on the size of the win.
#
# Usage: scripts/benchcheck.sh [count]   (default 5 runs per build)
set -eu

COUNT="${1:-5}"
BENCH='^BenchmarkSearchBruteVsLSH$/^BruteTypes$'
MAX_REGRESSION_PCT=5

best_nsop() {
    # $1: extra go test args. Prints the minimum ns/op across $COUNT runs.
    # shellcheck disable=SC2086  # word-splitting of $1 is intended
    go test -run '^$' -bench "$BENCH" -benchtime 2x -count "$COUNT" $1 . |
        awk '/BruteTypes/ { for (i = 1; i <= NF; i++) if ($(i+1) == "ns/op") print $i }' |
        sort -n | head -1
}

echo "benchcheck: $COUNT runs per build, best-of (bench: $BENCH)"
cached=$(best_nsop "")
uncached=$(best_nsop "-tags nosigmacache")

if [ -z "$cached" ] || [ -z "$uncached" ]; then
    echo "benchcheck: FAILED to parse benchmark output" >&2
    exit 2
fi

echo "benchcheck: cached   best $cached ns/op"
echo "benchcheck: uncached best $uncached ns/op (-tags nosigmacache)"

# Fail if cached > uncached * (1 + MAX_REGRESSION_PCT/100), integer math.
limit=$((uncached + uncached * MAX_REGRESSION_PCT / 100))
if [ "$cached" -gt "$limit" ]; then
    pct=$(( (cached - uncached) * 100 / uncached ))
    echo "benchcheck: FAIL — cached build is ${pct}% slower than the nosigmacache escape hatch (limit ${MAX_REGRESSION_PCT}%)" >&2
    exit 1
fi

if [ "$cached" -lt "$uncached" ]; then
    speedup=$(( (uncached - cached) * 100 / uncached ))
    echo "benchcheck: OK — cached build ${speedup}% faster"
else
    echo "benchcheck: OK — within the ${MAX_REGRESSION_PCT}% regression budget"
fi
