package thetis_test

// Runnable godoc examples for the sharded serving seams (docs/SHARDING.md):
// assembling a ShardedSystem behind a partitioner, and driving a
// Coordinator over custom Shard implementations. `go test` verifies the
// outputs.

import (
	"context"
	"fmt"
	"strings"

	"thetis"
)

// ExampleNewShardedSystem partitions the README's baseball corpus across
// two shards and searches it by scatter-gather. Global table IDs are
// assigned in ingestion order, so the ranking — IDs and scores — is
// exactly what an unsharded System returns over the same corpus.
func ExampleNewShardedSystem() {
	g := thetis.NewGraph()
	triples := `
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/VolleyballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<res/Ron_Santo> <rdf:type> <onto/BaseballPlayer> .
<res/Ron_Santo> <rdfs:label> "Ron Santo" .
<res/Mitch_Stetter> <rdf:type> <onto/BaseballPlayer> .
<res/Mitch_Stetter> <rdfs:label> "Mitch Stetter" .
<res/Vera_Volley> <rdf:type> <onto/VolleyballPlayer> .
<res/Vera_Volley> <rdfs:label> "Vera Volley" .
`
	if err := thetis.LoadTriples(g, strings.NewReader(triples)); err != nil {
		panic(err)
	}
	linker := thetis.NewDictionaryLinker(g)

	ss := thetis.NewShardedSystem(g, thetis.NewHashPartitioner(2))
	for _, name := range []string{"Ron Santo", "Mitch Stetter", "Vera Volley"} {
		t := thetis.NewTable(strings.ToLower(name), []string{"Player"})
		t.AppendValues(name)
		thetis.LinkTable(t, linker)
		ss.AddTable(t)
	}
	ss.UseTypeSimilarity()

	q, err := ss.ParseQuery("Ron Santo")
	if err != nil {
		panic(err)
	}
	for _, r := range ss.Search(q, 3) {
		fmt.Printf("%s %.2f\n", ss.Table(r.Table).Name, r.Score)
	}
	// Output:
	// ron santo 1.00
	// mitch stetter 0.95
	// vera volley 0.60
}

// tinyShard is a Shard serving a fixed, pre-ranked slice of the global ID
// space — the shape a shard-over-HTTP client takes. A dead context makes
// it contribute a truncated (here: empty) prefix instead.
type tinyShard []thetis.Result

func (s tinyShard) SearchShard(ctx context.Context, q thetis.Query, k int, opts thetis.ShardSearchOptions) ([]thetis.Result, thetis.SearchStats) {
	if ctx.Err() != nil {
		return nil, thetis.SearchStats{Truncated: true}
	}
	res := []thetis.Result(s)
	if k >= 0 && k < len(res) {
		res = res[:k]
	}
	return res, thetis.SearchStats{Candidates: len(res), Scored: len(res)}
}

// ExampleNewCoordinator merges two shards' rankings into one global top-k.
// Cross-shard score ties break toward the smaller table ID, so the merged
// order never depends on shard or arrival order; a failed leg degrades the
// result to a correctly ranked prefix marked Truncated.
func ExampleNewCoordinator() {
	east := tinyShard{{Table: 0, Score: 0.9}, {Table: 2, Score: 0.5}}
	west := tinyShard{{Table: 3, Score: 0.7}, {Table: 1, Score: 0.5}}
	coord := thetis.NewCoordinator(east, west)

	results, stats := coord.Search(context.Background(), nil, 10)
	for _, r := range results {
		fmt.Printf("table %d: %.1f\n", r.Table, r.Score)
	}
	fmt.Println("truncated:", stats.Truncated)

	// A cancelled context truncates every leg: the merge still returns a
	// correctly ranked (empty) prefix and marks the stats.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats = coord.Search(ctx, nil, 10)
	fmt.Printf("after cancel: %d results, truncated: %v\n", len(results), stats.Truncated)
	// Output:
	// table 0: 0.9
	// table 3: 0.7
	// table 1: 0.5
	// table 2: 0.5
	// truncated: false
	// after cancel: 0 results, truncated: true
}
