package thetis

// Documentation link checker (wired into `make check` as linkcheck): every
// relative markdown link in the repo's .md files must resolve to an
// existing file or directory, so docs cannot silently drift as files move.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are rare in this repo and intentionally not matched.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, ".claude") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — is the test running from the repo root?")
	}

	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			// External links, mail links, and intra-document anchors are out
			// of scope; this checker keeps *file* references honest.
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip a fragment: docs/FOO.md#section must check docs/FOO.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked — regex or corpus changed?")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}

// changesEntry matches the two forms a PR entry takes in CHANGES.md: a
// list entry ("- PR 7 (2026-08-08): ..." or the PR 6 tombstone
// "- PR 6: no entry ...") and a section heading ("## PR 5 — ...").
var changesEntry = regexp.MustCompile(`^(?:- |## )PR (\d+)[^\d]`)

// TestChangesLogNumbering keeps CHANGES.md honestly one-entry-per-PR:
// every PR number from 1 to the maximum recorded must appear exactly
// once — either as a real entry or as an explicit tombstone (like PR 6's
// "no entry was recorded" line). A gap means a session forgot to log
// itself; a duplicate means two entries claim the same PR.
func TestChangesLogNumbering(t *testing.T) {
	data, err := os.ReadFile("CHANGES.md")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int][]string{}
	max := 0
	for _, line := range strings.Split(string(data), "\n") {
		m := changesEntry.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var n int
		for _, d := range m[1] {
			n = n*10 + int(d-'0')
		}
		seen[n] = append(seen[n], line)
		if n > max {
			max = n
		}
	}
	if max == 0 {
		t.Fatal("no PR entries found in CHANGES.md — format changed?")
	}
	for n := 1; n <= max; n++ {
		switch len(seen[n]) {
		case 0:
			t.Errorf("CHANGES.md: PR %d has no entry and no tombstone (max recorded is PR %d)", n, max)
		case 1:
			// exactly one entry — good
		default:
			t.Errorf("CHANGES.md: PR %d has %d entries:\n%s", n, len(seen[n]), strings.Join(seen[n], "\n"))
		}
	}
	t.Logf("CHANGES.md: PRs 1..%d each recorded exactly once", max)
}
