package thetis

// Documentation link checker (wired into `make check` as linkcheck): every
// relative markdown link in the repo's .md files must resolve to an
// existing file or directory, so docs cannot silently drift as files move.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are rare in this repo and intentionally not matched.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, ".claude") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — is the test running from the repo root?")
	}

	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			// External links, mail links, and intra-document anchors are out
			// of scope; this checker keeps *file* references honest.
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip a fragment: docs/FOO.md#section must check docs/FOO.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked — regex or corpus changed?")
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}
