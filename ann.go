package thetis

// ANN serving layer (docs/ANN.md): top-k σ scoring over a pure-Go HNSW
// graph (internal/embedding). EnableAnnTopK builds the graph from the
// trained embedding store and switches the engine into Engine.SigmaTopK
// mode; exact scoring stays the default and is bit-identical whenever the
// mode is off. The graph is epoch-checked like every other index
// (docs/LIVE_INDEX.md): a corpus mutation bumps the lake epoch, searches
// notice the stale graph, serve exact σ (counted on
// thetis_ann_fallbacks_total), and a single background rebuild hot-swaps a
// fresh graph in — the same build-aside pattern the LSEI uses.

import (
	"errors"
	"time"

	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/obs"
)

var errAnnNeedsEmbeddings = errors.New("thetis: EnableAnnTopK requires UseEmbeddingSimilarity")

var (
	mAnnGraphNodes   = obs.AnnGraphNodes(nil)
	mAnnBuildSeconds = obs.AnnBuildSeconds(nil)
)

// annState pairs an immutable HNSW graph with the corpus epoch it was
// built at. Searches hot-load it through an atomic pointer.
type annState struct {
	ix    *embedding.HNSW
	epoch uint64
}

// AnnStatus reports the ANN serving state (the /debug/ann endpoint).
type AnnStatus struct {
	Enabled    bool   `json:"enabled"`
	TopK       int    `json:"top_k"`
	EfSearch   int    `json:"ef_search"`
	GraphNodes int    `json:"graph_nodes"`
	BuiltEpoch uint64 `json:"built_epoch"`
	Epoch      uint64 `json:"epoch"`
	// Current is false while the graph trails the corpus epoch — searches
	// are falling back to exact σ until the background rebuild lands.
	Current bool `json:"current"`
}

// buildAnnState builds an HNSW graph over store with the default
// parameters and the given search beam, stamping it with epoch and
// updating the build metrics.
func buildAnnState(store *embedding.Store, ef int, epoch uint64) *annState {
	cfg := embedding.DefaultHNSWConfig()
	cfg.EfSearch = ef
	t0 := time.Now()
	ix := embedding.BuildHNSW(store, cfg)
	mAnnBuildSeconds.Set(time.Since(t0).Seconds())
	mAnnGraphNodes.Set(float64(ix.Len()))
	return &annState{ix: ix, epoch: epoch}
}

// EnableAnnTopK switches embedding σ to approximate top-k mode: the query
// resolves a pooled candidate set — the union of each query entity's k
// nearest store entities through an HNSW graph — scores exact cosine inside
// it and 0 against everything else (docs/ANN.md). ef is the search beam
// width (0 uses the default, 64). The graph is built synchronously here;
// call after UseEmbeddingSimilarity, alongside the other setup-time
// configuration.
func (s *System) EnableAnnTopK(k, ef int) error {
	if k <= 0 {
		return errors.New("thetis: EnableAnnTopK needs k > 0")
	}
	if ef <= 0 {
		ef = embedding.DefaultHNSWConfig().EfSearch
	}
	if s.store == nil || s.ec == nil || s.engine == nil || s.engine.Sim != Similarity(s.ec) {
		return errAnnNeedsEmbeddings
	}
	s.annTopK, s.annEf = k, ef
	s.ann.Store(buildAnnState(s.store, ef, s.lake.Epoch()))
	s.engine.SigmaTopK = k
	s.engine.Ann = s.annIndex
	return nil
}

// DisableAnnTopK returns the engine to exact σ scoring and drops the
// graph.
func (s *System) DisableAnnTopK() {
	s.annTopK, s.annEf = 0, 0
	s.ann.Store(nil)
	if s.engine != nil {
		s.engine.SigmaTopK = 0
		s.engine.Ann = nil
	}
}

// annIndex is the engine's AnnSource: the current graph when it matches
// the corpus epoch, or nil — exact-σ fallback — while a rebuild is in
// flight.
func (s *System) annIndex() core.AnnIndex {
	st := s.ann.Load()
	if st == nil {
		return nil
	}
	if epoch := s.lake.Epoch(); st.epoch != epoch {
		s.kickAnnRebuild(epoch)
		return nil
	}
	return st.ix
}

// kickAnnRebuild starts a single-flight background rebuild stamped with
// the observed epoch. If the corpus moves again mid-build the next search
// notices the stale stamp and kicks another rebuild — convergent, never
// blocking the search path.
func (s *System) kickAnnRebuild(epoch uint64) {
	if !s.annBuilding.CompareAndSwap(false, true) {
		return
	}
	store, ef := s.store, s.annEf
	go func() {
		defer s.annBuilding.Store(false)
		s.ann.Store(buildAnnState(store, ef, epoch))
	}()
}

// reenableAnnLocked restores ANN mode on a freshly installed engine
// (Refresh recreates engines, which clears their SigmaTopK wiring).
func (s *System) reenableAnnLocked() {
	if s.annTopK > 0 && s.ec != nil && s.engine != nil && s.engine.Sim == Similarity(s.ec) {
		_ = s.EnableAnnTopK(s.annTopK, s.annEf)
	}
}

// AnnStatus reports the current ANN serving state.
func (s *System) AnnStatus() AnnStatus {
	st := s.ann.Load()
	out := AnnStatus{Enabled: s.annTopK > 0, TopK: s.annTopK, EfSearch: s.annEf, Epoch: s.lake.Epoch()}
	if st != nil {
		out.GraphNodes = st.ix.Len()
		out.BuiltEpoch = st.epoch
		out.Current = st.epoch == out.Epoch
	}
	return out
}

// EnableAnnTopK is System.EnableAnnTopK for a sharded deployment: one
// graph is built over the shared embedding store (the store is a graph
// property, identical across shards) and every shard engine scores
// through it; trace stages from shard legs carry the shard label.
func (ss *ShardedSystem) EnableAnnTopK(k, ef int) error {
	if k <= 0 {
		return errors.New("thetis: EnableAnnTopK needs k > 0")
	}
	if ef <= 0 {
		ef = embedding.DefaultHNSWConfig().EfSearch
	}
	if ss.store == nil || ss.ec == nil {
		return errAnnNeedsEmbeddings
	}
	for _, sh := range ss.shards {
		if eng := sh.Engine(); eng == nil || eng.Sim != Similarity(ss.ec) {
			return errAnnNeedsEmbeddings
		}
	}
	ss.annTopK, ss.annEf = k, ef
	ss.ann.Store(buildAnnState(ss.store, ef, ss.epoch.Load()))
	for _, sh := range ss.shards {
		eng := sh.Engine()
		eng.SigmaTopK = k
		eng.Ann = ss.annIndex
	}
	return nil
}

// annIndex mirrors System.annIndex against the deployment-wide epoch.
func (ss *ShardedSystem) annIndex() core.AnnIndex {
	st := ss.ann.Load()
	if st == nil {
		return nil
	}
	if epoch := ss.epoch.Load(); st.epoch != epoch {
		ss.kickAnnRebuild(epoch)
		return nil
	}
	return st.ix
}

func (ss *ShardedSystem) kickAnnRebuild(epoch uint64) {
	if !ss.annBuilding.CompareAndSwap(false, true) {
		return
	}
	store, ef := ss.store, ss.annEf
	go func() {
		defer ss.annBuilding.Store(false)
		ss.ann.Store(buildAnnState(store, ef, epoch))
	}()
}

// AnnStatus reports the deployment-wide ANN serving state.
func (ss *ShardedSystem) AnnStatus() AnnStatus {
	st := ss.ann.Load()
	out := AnnStatus{Enabled: ss.annTopK > 0, TopK: ss.annTopK, EfSearch: ss.annEf, Epoch: ss.epoch.Load()}
	if st != nil {
		out.GraphNodes = st.ix.Len()
		out.BuiltEpoch = st.epoch
		out.Current = st.epoch == out.Epoch
	}
	return out
}
