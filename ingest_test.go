package thetis

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// corpusFixture builds a JSONL corpus of good table lines plus the same
// lines with malformed ones (~10%) spliced in, returning both streams and
// the number of injected faults.
func corpusFixture() (clean, dirty string, faults int) {
	var good []string
	for i := 0; i < 9; i++ {
		player, team := "res/Ron_Santo", "res/Chicago_Cubs"
		pv, tv := "Ron Santo", "Chicago Cubs"
		if i%3 == 1 {
			player, team = "res/Mitch_Stetter", "res/Milwaukee_Brewers"
			pv, tv = "Mitch Stetter", "Milwaukee Brewers"
		}
		if i%3 == 2 {
			player, team = "res/Vera_Volley", "res/Milwaukee_Brewers"
			pv, tv = "Vera Volley", "Milwaukee Brewers"
		}
		good = append(good, fmt.Sprintf(
			`{"name":"t%d","attributes":["Player","Team"],"rows":[[{"v":"%s","e":"%s"},{"v":"%s","e":"%s"}]]}`,
			i, pv, player, tv, team))
	}
	bad := []string{
		`{"name":"broken-json","attributes":["Player"],"rows":[[{"v":`,
		`{"name":"bad-arity","attributes":["Player","Team"],"rows":[[{"v":"orphan","e":"res/Never_Interned"}]]}`,
	}
	var dirtyLines []string
	for i, g := range good {
		dirtyLines = append(dirtyLines, g)
		// Splice a malformed line after every 4th good one: 2 faults in 11
		// lines, ≈ the acceptance criterion's 10% malformed corpus.
		if i%4 == 3 && len(bad) > 0 {
			dirtyLines = append(dirtyLines, bad[0])
			bad = bad[1:]
			faults++
		}
	}
	return strings.Join(good, "\n") + "\n", strings.Join(dirtyLines, "\n") + "\n", faults
}

const ingestKG = `
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/VolleyballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<res/Ron_Santo> <rdf:type> <onto/BaseballPlayer> .
<res/Ron_Santo> <rdfs:label> "Ron Santo" .
<res/Mitch_Stetter> <rdf:type> <onto/BaseballPlayer> .
<res/Mitch_Stetter> <rdfs:label> "Mitch Stetter" .
<res/Vera_Volley> <rdf:type> <onto/VolleyballPlayer> .
<res/Vera_Volley> <rdfs:label> "Vera Volley" .
<res/Chicago_Cubs> <rdf:type> <onto/BaseballTeam> .
<res/Chicago_Cubs> <rdfs:label> "Chicago Cubs" .
<res/Milwaukee_Brewers> <rdf:type> <onto/BaseballTeam> .
<res/Milwaukee_Brewers> <rdfs:label> "Milwaukee Brewers" .
`

func ingestSystem(t *testing.T, corpus string, opts IngestOptions) (*System, int) {
	t.Helper()
	g := NewGraph()
	if err := LoadTriples(g, strings.NewReader(ingestKG)); err != nil {
		t.Fatal(err)
	}
	sys := New(g)
	n, err := sys.IngestCorpus(strings.NewReader(corpus), opts)
	if err != nil {
		t.Fatal(err)
	}
	sys.UseTypeSimilarity()
	return sys, n
}

// TestLenientIngestEquivalence is the lenient-ingest acceptance criterion:
// a lenient load of a ~10% malformed corpus quarantines exactly the injected
// faults, and searching the survivors returns exactly what a strict load of
// the clean subset returns.
func TestLenientIngestEquivalence(t *testing.T) {
	clean, dirty, faults := corpusFixture()

	report := NewIngestReport()
	dirtySys, dirtyN := ingestSystem(t, dirty, IngestOptions{
		Lenient: true, ErrorBudget: -1, Source: "dirty.jsonl", Report: report,
	})
	cleanSys, cleanN := ingestSystem(t, clean, IngestOptions{})

	if dirtyN != cleanN {
		t.Fatalf("lenient ingested %d tables, clean subset has %d", dirtyN, cleanN)
	}
	ok, skipped := report.Tables.Counts()
	if skipped != int64(faults) || ok != int64(cleanN) {
		t.Fatalf("quarantine counts = (%d ok, %d skipped), want (%d, %d)", ok, skipped, cleanN, faults)
	}
	// Rejected tables never intern entities: both graphs are the same size.
	if dirtySys.Graph().NumEntities() != cleanSys.Graph().NumEntities() {
		t.Errorf("entities: lenient %d != clean %d (quarantined table polluted the graph)",
			dirtySys.Graph().NumEntities(), cleanSys.Graph().NumEntities())
	}

	for _, text := range []string{"Ron Santo | Chicago Cubs", "Mitch Stetter | Milwaukee Brewers"} {
		q, err := dirtySys.ParseQuery(text)
		if err != nil {
			t.Fatal(err)
		}
		got := dirtySys.Search(q, -1)
		want := cleanSys.Search(q, -1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %q: lenient-dirty results differ from strict-clean:\n got %v\nwant %v", text, got, want)
		}
	}

	// The /debug/ingest summary carries the same numbers.
	sum := report.Summary()
	if sum["tables"].Skipped != int64(faults) || len(sum["tables"].Samples) != faults {
		t.Errorf("summary = %+v", sum["tables"])
	}
}

// TestStrictIngestAborts: the default (strict) ingestion still fails fast on
// the first malformed table.
func TestStrictIngestAborts(t *testing.T) {
	_, dirty, _ := corpusFixture()
	g := NewGraph()
	if err := LoadTriples(g, strings.NewReader(ingestKG)); err != nil {
		t.Fatal(err)
	}
	sys := New(g)
	if _, err := sys.IngestCorpus(strings.NewReader(dirty), IngestOptions{}); err == nil {
		t.Fatal("strict ingest of a malformed corpus succeeded")
	}
}

// TestLenientIngestWithIndex: an LSEI built over a leniently ingested corpus
// prefilters the same searches as one built over the clean subset.
func TestLenientIngestWithIndex(t *testing.T) {
	clean, dirty, _ := corpusFixture()
	dirtySys, _ := ingestSystem(t, dirty, IngestOptions{Lenient: true, ErrorBudget: -1})
	cleanSys, _ := ingestSystem(t, clean, IngestOptions{})
	cfg := IndexConfig{Vectors: 16, BandSize: 4, Seed: 1}
	dirtySys.BuildIndex(cfg)
	cleanSys.BuildIndex(cfg)
	q, err := dirtySys.ParseQuery("Ron Santo | Chicago Cubs")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dirtySys.Search(q, 5), cleanSys.Search(q, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("indexed search over lenient corpus differs:\n got %v\nwant %v", got, want)
	}
}
