// Package thetis is a semantic table search engine for data lakes, a
// from-scratch reproduction of "Fantastic Tables and Where to Find Them:
// Table Search in Semantic Data Lakes" (EDBT 2025).
//
// A semantic data lake is a table repository whose cell values are
// (partially) linked to the entities of a knowledge graph. Thetis answers
// entity-tuple queries — "find tables about ⟨Ron Santo, Chicago Cubs⟩" — by
// ranking every table with a principled semantic relevance score (SemRel)
// built from an entity similarity σ (taxonomy type overlap or graph
// embeddings), and scales to large repositories with locality-sensitive
// entity indexes (LSEI) that prune the search space before scoring.
//
// The typical flow:
//
//	g := thetis.NewGraph()                      // build or load a KG
//	thetis.LoadTriples(g, file)
//	sys := thetis.New(g)                        // a semantic data lake
//	thetis.LinkTable(tbl, thetis.NewDictionaryLinker(g))
//	sys.AddTable(tbl)                           // ingest annotated tables
//	sys.UseTypeSimilarity()                     // or TrainEmbeddings + UseEmbeddingSimilarity
//	sys.BuildIndex(thetis.DefaultIndexConfig()) // optional LSH prefiltering
//	results := sys.Search(query, 10)
package thetis

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"thetis/internal/bm25"
	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/linking"
	"thetis/internal/obs"
	"thetis/internal/table"
)

// Re-exported substrate types. These aliases make the internal
// implementation packages usable through the public API.
type (
	// Graph is a labeled directed knowledge graph with a type taxonomy.
	Graph = kg.Graph
	// EntityID identifies a KG entity.
	EntityID = kg.EntityID
	// TypeID identifies a KG type.
	TypeID = kg.TypeID
	// Table is one data lake table.
	Table = table.Table
	// Cell is one table cell (value + optional entity annotation).
	Cell = table.Cell
	// TableID identifies a table within a lake.
	TableID = lake.TableID
	// Tuple is one entity tuple of a query.
	Tuple = core.Tuple
	// Query is a set of entity tuples.
	Query = core.Query
	// Result is one scored table.
	Result = core.Result
	// SearchStats reports how a search spent its time.
	SearchStats = core.Stats
	// Trace is the structured per-stage breakdown of one search
	// (SearchStats.Trace): prefilter probe/vote, column mapping, scoring,
	// ranking.
	Trace = obs.Trace
	// TraceStage is one pipeline stage of a Trace.
	TraceStage = obs.Stage
	// IndexConfig parameterizes the LSH prefiltering index.
	IndexConfig = core.LSEIConfig
	// Linker resolves cell values to KG entities.
	Linker = linking.Linker
	// Similarity is the entity similarity σ.
	Similarity = core.Similarity
	// EmbeddingStore holds trained entity embeddings.
	EmbeddingStore = embedding.Store
	// WalkConfig controls random-walk generation for embedding training.
	WalkConfig = embedding.WalkConfig
	// TrainConfig controls skip-gram embedding training.
	TrainConfig = embedding.TrainConfig
	// Aggregation selects MAX or AVG row-score aggregation.
	Aggregation = core.Aggregation
	// ScoreMode selects entity-wise (Algorithm 1) or pairwise (Equation 1)
	// SemRel computation.
	ScoreMode = core.ScoreMode
	// MappingMethod selects the query-to-column assignment algorithm.
	MappingMethod = core.MappingMethod
	// LoadOptions configures lenient (quarantine-based) triple loading.
	LoadOptions = kg.LoadOptions
	// Quarantine collects records rejected by lenient ingestion.
	Quarantine = obs.Quarantine
	// IngestReport aggregates the triple and table quarantines of one
	// corpus load (served on the daemon's GET /debug/ingest).
	IngestReport = obs.IngestReport
)

// Aggregation modes (Section 5.3 of the paper; MAX is recommended).
const (
	AggregateMax = core.AggregateMax
	AggregateAvg = core.AggregateAvg
)

// Score modes (Section 4.1; entity-wise is Algorithm 1 and the default).
const (
	ModeEntityWise = core.ModeEntityWise
	ModePairwise   = core.ModePairwise
)

// Mapping methods (Section 5.1; Hungarian is the paper's choice).
const (
	MappingHungarian = core.MappingHungarian
	MappingGreedy    = core.MappingGreedy
)

// NewGraph returns an empty knowledge graph.
func NewGraph() *Graph { return kg.NewGraph() }

// LoadTriples loads an N-Triples-subset stream into g, strictly: the first
// malformed line aborts the load.
func LoadTriples(g *Graph, r io.Reader) error { return kg.LoadTriples(g, r) }

// LoadTriplesOpts is LoadTriples with explicit strictness and quarantine
// configuration; with opts.Lenient, malformed lines are skipped and
// recorded instead of aborting.
func LoadTriplesOpts(g *Graph, r io.Reader, opts LoadOptions) error {
	return kg.LoadTriplesOpts(g, r, opts)
}

// NewIngestReport creates the quarantine pair (triples + tables) threaded
// through lenient loads and served on the daemon's /debug/ingest.
func NewIngestReport() *IngestReport { return obs.NewIngestReport(nil) }

// NewTable creates an empty table with the given column headers.
func NewTable(name string, attributes []string) *Table { return table.New(name, attributes) }

// LinkedCell builds a cell annotated with an entity.
func LinkedCell(value string, e EntityID) Cell { return table.LinkedCell(value, e) }

// ReadCSV parses a CSV stream into an (unlinked) table.
func ReadCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// NewDictionaryLinker links cell values by exact normalized label match.
func NewDictionaryLinker(g *Graph) Linker { return linking.NewDictionaryLinker(g) }

// NewFuzzyLinker links cell values by token overlap with entity labels.
// minOverlap is the fraction of value tokens that must match (e.g. 0.75).
func NewFuzzyLinker(g *Graph, minOverlap float64) Linker {
	return linking.NewFuzzyLinker(g, minOverlap)
}

// DefaultIndexConfig returns the paper's recommended (30, 10) LSH
// configuration.
func DefaultIndexConfig() IndexConfig { return core.DefaultLSEIConfig() }

// DefaultWalkConfig returns standard random-walk settings.
func DefaultWalkConfig() WalkConfig { return embedding.DefaultWalkConfig() }

// DefaultTrainConfig returns standard skip-gram settings.
func DefaultTrainConfig() TrainConfig { return embedding.DefaultTrainConfig() }

// System is a semantic data lake with its search machinery: the KG, the
// table corpus, an entity similarity, optional LSH prefiltering indexes,
// and a BM25 keyword index for hybrid search. Ingest tables first, then
// choose a similarity, then search.
//
// Once configured, a System is safe for concurrent searches AND concurrent
// mutations (AddTable/AddTableJSON/RemoveTable, docs/LIVE_INDEX.md): search
// paths hold a read lock for their full duration, mutations a brief write
// lock, so every search observes the corpus, the LSEI, the frequent-type
// filter, and the keyword index at one consistent epoch. Configuration
// calls (similarity selection, embedding training) remain setup-time and
// must not race with serving.
type System struct {
	graph *Graph
	lake  *lake.Lake

	tj    *core.TypeJaccard
	ec    *core.EmbeddingCosine
	store *embedding.Store

	engine *core.Engine
	// index holds the active LSEI behind an atomic pointer so a background
	// build (degraded-mode serving) can hot-swap it under live searches:
	// searches Load once per query, builders Store a fully built index.
	index    atomic.Pointer[core.LSEI]
	indexCfg IndexConfig
	votes    atomic.Int32

	keyword *bm25.Index

	// ann holds the HNSW graph backing top-k σ mode and the epoch it was
	// built at (nil when the mode is off); annBuilding single-flights the
	// background rebuild after an epoch bump. See ann.go / docs/ANN.md.
	ann            atomic.Pointer[annState]
	annBuilding    atomic.Bool
	annTopK, annEf int

	// mu is the serving lock: searches (and other corpus reads) hold RLock
	// for their full duration, mutations hold Lock while they patch the
	// lake, LSEI, filter, and keyword index together.
	mu sync.RWMutex
	// maintMu serializes maintenance against mutations: AddTable/
	// RemoveTable, BuildIndex/LoadIndex, Compact, and AttachDeltaLog all
	// hold it (lock order: maintMu before mu). Index builds run under
	// maintMu alone so searches keep flowing while a fresh index is built
	// aside and hot-swapped in.
	maintMu sync.Mutex
	// filterState tracks the frequent-type filter under mutation for the
	// type-similarity LSEI (nil for embedding indexes or when no index is
	// live). Guarded by maintMu for structure, mu for the shared filter map.
	filterState *core.TypeFilterState
	// delta, when attached, write-ahead-logs every mutation so a restart
	// can replay base snapshot + deltas (AttachDeltaLog).
	delta *deltaLog

	// cross, when enabled, memoizes σ across queries under epoch
	// invalidation (EnableCrossCache, docs/THROUGHPUT.md). Mutations keep
	// its epoch current via noteEpochLocked; similarity changes reattach
	// and flush it (attachCross).
	cross *core.CrossCache
}

// New creates an empty semantic data lake over the knowledge graph g.
func New(g *Graph) *System {
	s := &System{graph: g, lake: lake.New(g)}
	s.votes.Store(1)
	return s
}

// Graph returns the underlying knowledge graph.
func (s *System) Graph() *Graph { return s.graph }

// NumTables returns the number of live (not removed) tables.
func (s *System) NumTables() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lake.NumTables()
}

// Table returns an ingested table by ID, or nil when the ID was never
// assigned or the table has been removed.
func (s *System) Table(id TableID) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lake.Table(id)
}

// AddTable ingests a table (annotations included) and returns its ID.
// Tables must be fully annotated before ingestion; use LinkTable first when
// links come from a Linker.
//
// Ingestion is incremental: tables added after BuildIndex or
// BuildKeywordIndex are folded into the live indexes — LSH signatures
// inserted, the frequent-type filter re-balanced, BM25 postings extended —
// honoring the semantic-data-lake principle of effortless dataset
// addition, and the result is bit-identical to rebuilding from scratch
// (docs/LIVE_INDEX.md). AddTable may run concurrently with searches; it
// blocks them briefly. Similarity structures cover the KG as it was when
// the similarity was selected — tables mentioning entities added to the
// graph afterwards still ingest fine, but call Refresh to make the new
// entities similar to anything.
func (s *System) AddTable(t *Table) TableID {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logAddLocked(t)
	return s.addTableLocked(t)
}

// IngestOptions configures IngestCorpus. The zero value is strict
// ingestion: the first malformed table aborts the load.
type IngestOptions struct {
	// Lenient skips malformed tables (recording them in Report) instead of
	// aborting on the first one.
	Lenient bool
	// MaxLineBytes caps one JSONL line; 0 means the kg default (16 MiB).
	MaxLineBytes int
	// ErrorBudget bounds how many tables lenient mode may quarantine
	// before giving up; negative means unlimited.
	ErrorBudget int
	// Source names the stream in quarantine records (e.g. the file path).
	Source string
	// Report receives quarantine records and accept/skip counts; may be
	// nil.
	Report *IngestReport
}

// IngestCorpus streams a JSONL corpus of annotated tables from r into the
// lake, returning how many tables were ingested. With opts.Lenient,
// malformed tables are quarantined (never interned into the graph) and
// ingestion continues, so searching the surviving tables behaves exactly
// like loading the clean subset directly.
func (s *System) IngestCorpus(r io.Reader, opts IngestOptions) (int, error) {
	var q *obs.Quarantine
	if opts.Report != nil {
		q = opts.Report.Tables
	}
	jr := newCorpusReader(s.graph, r, opts, q)
	n := 0
	for {
		t, err := jr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		s.AddTable(t)
		q.Accept()
		n++
	}
}

// newCorpusReader is the shared JSONL corpus reader configuration of
// System.IngestCorpus and ShardedSystem.IngestCorpus.
func newCorpusReader(g *Graph, r io.Reader, opts IngestOptions, q *obs.Quarantine) *table.JSONReader {
	return table.NewJSONReaderOpts(g, r, table.ReadOptions{
		Lenient:      opts.Lenient,
		MaxLineBytes: opts.MaxLineBytes,
		ErrorBudget:  opts.ErrorBudget,
		Source:       opts.Source,
		Quarantine:   q,
	})
}

// Refresh rebuilds the similarity structures, informativeness weights, and
// any built indexes against the current state of the graph and lake. Call
// it after ingesting tables that mention newly added KG entities, or after
// large ingestion batches to refresh corpus-frequency weights.
func (s *System) Refresh() {
	rebuildIndex := s.index.Load() != nil
	rebuildKeyword := s.keyword != nil
	switch {
	case s.engine == nil:
		// Nothing configured yet.
	case s.ec != nil && s.engine.Sim == Similarity(s.ec):
		s.UseEmbeddingSimilarity()
	default:
		s.tj = nil
		s.UseTypeSimilarity()
	}
	if rebuildIndex && s.engine != nil {
		s.BuildIndex(s.indexCfg)
	}
	if rebuildKeyword {
		s.BuildKeywordIndex()
	}
	s.reenableAnnLocked()
}

// LinkTable annotates a table's cells with l before ingestion.
func LinkTable(t *Table, l Linker) int { return linking.LinkTable(t, l) }

// TrainEmbeddings generates random walks over the KG and trains skip-gram
// entity embeddings (the RDF2Vec substitute), storing them on the system.
func (s *System) TrainEmbeddings(w WalkConfig, t TrainConfig) *EmbeddingStore {
	s.store = embedding.TrainGraph(s.graph, w, t)
	return s.store
}

// SetEmbeddings installs externally trained embeddings.
func (s *System) SetEmbeddings(store *EmbeddingStore) { s.store = store }

// SaveEmbeddings serializes the trained embeddings (binary format).
func (s *System) SaveEmbeddings(w io.Writer) error {
	if s.store == nil {
		return errNoEmbeddings
	}
	return s.store.Write(w)
}

// LoadEmbeddings installs embeddings previously written by SaveEmbeddings.
func (s *System) LoadEmbeddings(r io.Reader) error {
	store, err := embedding.ReadStore(r)
	if err != nil {
		return err
	}
	s.store = store
	return nil
}

// UseTypeSimilarity configures σ as the adjusted Jaccard of taxonomy-
// expanded entity type sets (Equation 4; the paper's STST).
func (s *System) UseTypeSimilarity() {
	if s.tj == nil {
		s.tj = core.NewTypeJaccard(s.graph)
	}
	s.engine = core.NewEngine(s.lake, s.tj)
	s.index.Store(nil)
	s.filterState = nil
	s.attachCross()
}

// UseEmbeddingSimilarity configures σ as the clamped cosine of entity
// embeddings (the paper's STSE). TrainEmbeddings or SetEmbeddings must have
// been called.
func (s *System) UseEmbeddingSimilarity() {
	if s.store == nil {
		panic("thetis: UseEmbeddingSimilarity before TrainEmbeddings/SetEmbeddings")
	}
	s.ec = core.NewEmbeddingCosine(s.graph, s.store)
	s.engine = core.NewEngine(s.lake, s.ec)
	s.index.Store(nil)
	s.filterState = nil
	s.attachCross()
}

// UseCombinedSimilarity configures σ as a weighted blend of the type and
// embedding similarities (the paper's future-work direction of combining
// similarity measures in a unified manner). Requires trained embeddings.
// LSH prefiltering built afterwards uses the type index.
func (s *System) UseCombinedSimilarity(typeWeight, embeddingWeight float64) {
	if s.store == nil {
		panic("thetis: UseCombinedSimilarity before TrainEmbeddings/SetEmbeddings")
	}
	if s.tj == nil {
		s.tj = core.NewTypeJaccard(s.graph)
	}
	s.ec = core.NewEmbeddingCosine(s.graph, s.store)
	comb := core.NewCombinedSimilarity(
		[]core.Similarity{s.tj, s.ec},
		[]float64{typeWeight, embeddingWeight})
	s.engine = core.NewEngine(s.lake, comb)
	s.index.Store(nil)
	s.filterState = nil
	s.attachCross()
}

// RelaxedSearch is Search with automatic relaxation of over-specialized
// queries: when fewer than minResults tables score at least minScore, the
// least informative entity is dropped from every tuple and the search
// retries. It returns the results together with the (possibly relaxed)
// query that produced them.
func (s *System) RelaxedSearch(q Query, k, minResults int, minScore float64) ([]Result, Query) {
	return s.RelaxedSearchContext(context.Background(), q, k, minResults, minScore)
}

// RelaxedSearchContext is RelaxedSearch honoring cancellation: each round's
// search is truncatable and no new relaxation round starts once ctx is
// dead.
func (s *System) RelaxedSearchContext(ctx context.Context, q Query, k, minResults int, minScore float64) ([]Result, Query) {
	s.mustEngine()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.RelaxedSearchContext(ctx, q, core.RelaxOptions{K: k, MinResults: minResults, MinScore: minScore})
}

// UsePredicateSimilarity configures σ as the Jaccard of the directional
// predicate sets around entities — the alternative set similarity the paper
// suggests for KGs with thin taxonomies but rich relation vocabularies.
// LSH prefiltering is not available for this similarity.
func (s *System) UsePredicateSimilarity() {
	s.engine = core.NewEngine(s.lake, core.NewPredicateJaccard(s.graph))
	s.index.Store(nil)
	s.filterState = nil
}

// SetAggregation switches between MAX (default, recommended) and AVG
// row-score aggregation.
func (s *System) SetAggregation(a Aggregation) {
	s.mustEngine()
	s.engine.Agg = a
}

// SetScoreMode switches between entity-wise (default) and pairwise SemRel.
func (s *System) SetScoreMode(m ScoreMode) {
	s.mustEngine()
	s.engine.Mode = m
}

// SetMapping switches the query-to-column assignment algorithm.
func (s *System) SetMapping(m MappingMethod) {
	s.mustEngine()
	s.engine.Mapping = m
}

// BuildIndex builds the LSH prefiltering index (LSEI) for the currently
// selected similarity. Votes sets the table vote threshold (1 disables
// voting; the paper finds 3 faster at equal quality).
//
// The index is built aside and installed atomically, so BuildIndex may run
// concurrently with searches (which serve brute-force until the swap) —
// the mechanism behind the daemon's degraded-mode serving. It serializes
// against ingestion via the maintenance lock; similarity changes remain
// setup-time.
func (s *System) BuildIndex(cfg IndexConfig) {
	s.mustEngine()
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.indexCfg = cfg
	s.rebuildIndexLocked()
}

// rebuildIndexLocked builds a fresh LSEI (and, for the type path, a fresh
// frequent-type filter state sharing one map with it) over the live corpus
// and hot-swaps it in. Caller holds maintMu; searches keep flowing.
func (s *System) rebuildIndexLocked() {
	cfg := s.indexCfg
	if s.ec != nil && s.engine.Sim == Similarity(s.ec) {
		s.filterState = nil
		s.index.Store(core.BuildEmbeddingLSEI(s.lake, s.ec, s.store.Dim(), cfg))
		return
	}
	fs := core.NewTypeFilterState([]*lake.Lake{s.lake}, s.tj, thresholdOf(cfg))
	ix := core.BuildTypeLSEIFiltered(s.lake, s.tj, cfg, fs.Filter())
	s.index.Store(ix)
	s.filterState = fs
}

// thresholdOf resolves the effective frequent-type threshold of a config
// (0 means the paper's default 0.5, matching BuildTypeLSEIFiltered).
func thresholdOf(cfg IndexConfig) float64 {
	if cfg.FrequentTypeThreshold == 0 {
		return 0.5
	}
	return cfg.FrequentTypeThreshold
}

// HasIndex reports whether an LSEI is currently active.
func (s *System) HasIndex() bool { return s.index.Load() != nil }

// SetVotes sets the LSEI vote threshold used by Search.
func (s *System) SetVotes(v int) { s.votes.Store(int32(v)) }

// SaveIndex serializes the built LSEI so a later process can LoadIndex
// instead of re-hashing the corpus.
func (s *System) SaveIndex(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := s.index.Load()
	if ix == nil {
		return errors.New("thetis: no index built")
	}
	return ix.Write(w)
}

// LoadIndex installs an LSEI snapshot previously written by SaveIndex. The
// snapshot must match the currently selected similarity (type snapshots
// for type similarity, embedding snapshots for embedding similarity) and
// the corpus it was built over. A snapshot damaged in any way — flipped
// bytes, truncation — fails with atomicio.ErrCorruptSnapshot and leaves
// the previously active index (if any) in place.
func (s *System) LoadIndex(r io.Reader) error {
	s.mustEngine()
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.ec != nil && s.engine.Sim == Similarity(s.ec) {
		x, err := core.LoadEmbeddingLSEI(s.lake, s.ec, r)
		if err != nil {
			return err
		}
		s.indexCfg = x.Config()
		s.filterState = nil
		s.index.Store(x)
		return nil
	}
	x, err := core.LoadTypeLSEI(s.lake, s.tj, r)
	if err != nil {
		return err
	}
	// Adopt the snapshot's filter map as live mutation state so later
	// AddTable/RemoveTable keep filter and signatures in lockstep.
	s.indexCfg = x.Config()
	s.filterState = core.ResumeTypeFilterState(
		x.TypeFilter(), []*lake.Lake{s.lake}, s.tj, thresholdOf(x.Config()), x)
	s.index.Store(x)
	return nil
}

// Search ranks tables by semantic relevance to the query and returns the
// top-k (k < 0 returns all relevant tables). When an index has been built,
// the search space is LSH-prefiltered first.
func (s *System) Search(q Query, k int) []Result {
	res, _ := s.SearchStats(q, k)
	return res
}

// SearchContext is Search honoring cancellation and deadlines: the LSEI
// probe/vote loop and the scoring workers check ctx cooperatively, so an
// expiring deadline returns promptly with the correctly ranked prefix of
// tables scored so far (SearchStatsContext exposes the Truncated marker).
func (s *System) SearchContext(ctx context.Context, q Query, k int) []Result {
	res, _ := s.SearchStatsContext(ctx, q, k)
	return res
}

// SearchStats is Search returning timing statistics as well. When the
// prefilter yields no candidates at all (e.g. every query entity's types
// were dropped by the frequent-type filter), the search falls back to a
// full scan rather than silently returning nothing.
//
// The returned stats carry a structured Trace covering the whole pipeline:
// with an index built, the prefilter's probe and vote stages precede the
// engine's mapping/score/rank stages, and Trace.Total spans everything
// (Stats.TotalTime remains engine-only, the quantity of the paper's
// Table 3).
func (s *System) SearchStats(q Query, k int) ([]Result, SearchStats) {
	return s.SearchStatsContext(context.Background(), q, k)
}

// SearchStatsContext is SearchStats honoring cancellation and deadlines.
// When ctx dies mid-search the results are a best-effort, correctly ranked
// subset and Stats.Truncated is set — graceful degradation, not an error.
func (s *System) SearchStatsContext(ctx context.Context, q Query, k int) ([]Result, SearchStats) {
	s.mustEngine()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.searchStatsLocked(ctx, q, k)
}

// searchStatsLocked is the search pipeline body; the caller holds mu.RLock
// so the corpus, index, filter, and keyword structures stay at one epoch.
func (s *System) searchStatsLocked(ctx context.Context, q Query, k int) ([]Result, SearchStats) {
	return core.SearchWithIndex(ctx, s.engine, s.index.Load(), int(s.votes.Load()), q, k, core.FallbackFullScan)
}

// ParseQuery resolves a textual query ("entity | entity" per line, matching
// URIs or labels) into entity tuples.
func (s *System) ParseQuery(text string) (Query, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return core.ParseQuery(s.graph, text)
}

// BuildKeywordIndex builds the BM25 index used by KeywordSearch and
// HybridSearch. Later AddTable/RemoveTable calls keep it current, so one
// build after bulk ingestion suffices.
func (s *System) BuildKeywordIndex() {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	kw := bm25.IndexLake(s.lake)
	s.mu.Lock()
	s.keyword = kw
	s.mu.Unlock()
}

// KeywordSearch runs BM25 keyword search over table text and returns the
// top-k table IDs.
func (s *System) KeywordSearch(text string, k int) []TableID {
	s.mustKeyword()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.keywordSearchLocked(text, k)
}

func (s *System) keywordSearchLocked(text string, k int) []TableID {
	hits := s.keyword.Search(text, k)
	out := make([]TableID, len(hits))
	for i, h := range hits {
		out[i] = TableID(h.Doc)
	}
	return out
}

// HybridSearch complements BM25 keyword search with semantic search (the
// paper's STSTC/STSEC): the top half of each result list is merged. This is
// the configuration the paper finds best for recall — up to 5.4× over
// keyword search alone.
func (s *System) HybridSearch(q Query, keywords string, k int) []TableID {
	return s.HybridSearchContext(context.Background(), q, keywords, k)
}

// HybridSearchContext is HybridSearch honoring cancellation on its semantic
// half (the BM25 half is index-lookup fast and runs to completion).
func (s *System) HybridSearchContext(ctx context.Context, q Query, keywords string, k int) []TableID {
	s.mustEngine()
	s.mustKeyword()
	// One read lock across both halves: the semantic and keyword rankings
	// are computed against the same corpus epoch (and RLock does not nest
	// safely under a waiting writer).
	s.mu.RLock()
	defer s.mu.RUnlock()
	sem, _ := s.searchStatsLocked(ctx, q, k)
	semIDs := make([]int, len(sem))
	for i, r := range sem {
		semIDs[i] = int(r.Table)
	}
	bmIDs := s.keywordSearchLocked(keywords, k)
	bmInts := make([]int, len(bmIDs))
	for i, id := range bmIDs {
		bmInts[i] = int(id)
	}
	merged := core.Complement(semIDs, bmInts, k)
	out := make([]TableID, len(merged))
	for i, id := range merged {
		out[i] = TableID(id)
	}
	return out
}

// Stats returns corpus statistics (table count, mean rows/columns, link
// coverage).
func (s *System) Stats() lake.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lake.ComputeStats()
}

var errNoEmbeddings = errors.New("thetis: no embeddings trained or loaded")

func (s *System) mustEngine() {
	if s.engine == nil {
		panic("thetis: select a similarity first (UseTypeSimilarity or UseEmbeddingSimilarity)")
	}
}

func (s *System) mustKeyword() {
	if s.keyword == nil {
		panic("thetis: BuildKeywordIndex before keyword/hybrid search")
	}
}
