package thetis

// Rebuild-equivalence battery for live-lake maintenance (docs/LIVE_INDEX.md):
// after ANY sequence of AddTable/RemoveTable against live indexes, search
// results must be bit-identical — same tables, same float64 score bits, same
// order — to a from-scratch build over the surviving corpus. The battery runs
// seeded randomized mutation sequences across aggregations, score modes,
// parallelism, vote thresholds, shard counts, and both similarity families,
// with and without LSH prefiltering, plus keyword and hybrid search; a
// failing sequence is automatically shrunk to a minimal reproducer. These
// tests are `make livecheck` (run under -race) and part of `make check`.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"thetis/internal/atomicio"
)

// liveKeywords is the fixed keyword query of the keyword/hybrid legs.
const liveKeywords = "member domain city"

// liveSearcher is the mutable-corpus surface shared by System and
// ShardedSystem that the battery exercises.
type liveSearcher interface {
	AddTable(t *Table) TableID
	RemoveTable(id TableID) error
	SearchStats(q Query, k int) ([]Result, SearchStats)
	KeywordSearch(text string, k int) []TableID
	HybridSearch(q Query, keywords string, k int) []TableID
	NumTables() int
	IndexEpoch() uint64
	Compact()
}

var (
	_ liveSearcher = (*System)(nil)
	_ liveSearcher = (*ShardedSystem)(nil)
)

// liveOp is one corpus mutation. Adds name a table by corpus position;
// removes pick a victim by reducing pick modulo the live count at
// application time, so an op list stays applicable after shrinking.
type liveOp struct {
	add   bool
	table int    // add: index into the battery table slice
	pick  uint32 // remove: selects st.ids[pick % len(st.ids)]
}

func (op liveOp) String() string {
	if op.add {
		return fmt.Sprintf("add(t%d)", op.table)
	}
	return fmt.Sprintf("remove(pick%%%d)", op.pick)
}

func opsString(ops []liveOp) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// genLiveOps generates a seeded mutation sequence: n ops mixing adds of
// fresh tables from [firstTable, lastTable) with removes of random live
// tables, simulating the live count so every op is applicable.
func genLiveOps(seed int64, n, baseLive, firstTable, lastTable int) []liveOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]liveOp, 0, n)
	live, next := baseLive, firstTable
	for len(ops) < n {
		add := rng.Float64() < 0.55
		if next >= lastTable {
			add = false
		}
		if live == 0 {
			add = true
		}
		if add && next >= lastTable {
			break // nothing left to add and nothing left to remove
		}
		if add {
			ops = append(ops, liveOp{add: true, table: next})
			next++
			live++
		} else {
			ops = append(ops, liveOp{pick: rng.Uint32()})
			live--
		}
	}
	return ops
}

// liveState tracks the live corpus of an incremental system: IDs (in the
// system's sparse, tombstoned ID space) and tables, both in ascending ID
// order — the ingestion order a from-scratch rebuild uses.
type liveState struct {
	ids  []TableID
	tabs []*Table
}

func baseState(n int, tables []*Table) *liveState {
	st := &liveState{ids: make([]TableID, n), tabs: make([]*Table, n)}
	for i := 0; i < n; i++ {
		st.ids[i] = TableID(i)
		st.tabs[i] = tables[i]
	}
	return st
}

// apply runs one op against the incremental system, keeping st in sync.
func (st *liveState) apply(m liveSearcher, op liveOp, tables []*Table) error {
	if op.add {
		id := m.AddTable(tables[op.table])
		if len(st.ids) > 0 && id <= st.ids[len(st.ids)-1] {
			return fmt.Errorf("AddTable reused ID %d (last was %d)", id, st.ids[len(st.ids)-1])
		}
		st.ids = append(st.ids, id)
		st.tabs = append(st.tabs, tables[op.table])
		return nil
	}
	if len(st.ids) == 0 {
		return nil // shrunk sequence removed the adds; treat as no-op
	}
	i := int(op.pick) % len(st.ids)
	if err := m.RemoveTable(st.ids[i]); err != nil {
		return fmt.Errorf("RemoveTable(%d): %v", st.ids[i], err)
	}
	st.ids = append(st.ids[:i], st.ids[i+1:]...)
	st.tabs = append(st.tabs[:i], st.tabs[i+1:]...)
	return nil
}

// liveConfig is one point of the equivalence matrix.
type liveConfig struct {
	name    string
	agg     Aggregation
	mode    ScoreMode
	par     int
	votes   int
	lsh     bool
	keyword bool
	// compactAfter, when >= 0, calls Compact after that many ops (and again
	// at the end), proving compaction never changes results.
	compactAfter int
}

// configureLive applies a liveConfig's knobs to a freshly ingested system.
// Both System and ShardedSystem expose identical configuration surfaces.
func configureLive(s liveSearcher, cfg liveConfig) {
	type knobs interface {
		UseTypeSimilarity()
		SetAggregation(Aggregation)
		SetScoreMode(ScoreMode)
		SetParallelism(int)
		BuildIndex(IndexConfig)
		SetVotes(int)
		BuildKeywordIndex()
	}
	k := s.(knobs)
	k.UseTypeSimilarity()
	k.SetAggregation(cfg.agg)
	k.SetScoreMode(cfg.mode)
	k.SetParallelism(cfg.par)
	if cfg.lsh {
		k.BuildIndex(DefaultIndexConfig())
		k.SetVotes(cfg.votes)
	}
	if cfg.keyword {
		k.BuildKeywordIndex()
	}
}

// buildLiveReference builds a from-scratch System over the surviving corpus,
// ingested in ascending live-ID order, configured identically.
func buildLiveReference(st *liveState, cfg liveConfig) *System {
	kgEnv := batteryKG
	ref := New(kgEnv.Graph)
	for _, tb := range st.tabs {
		ref.AddTable(tb)
	}
	configureLive(ref, cfg)
	return ref
}

// assertLiveEquivalence compares the incremental system against the rebuilt
// reference. Reference IDs are dense (0..len-1 in survivor order); the
// incremental system's IDs are st.ids at the same positions — the map is
// monotone, so rank order and tie-breaks must agree exactly.
func assertLiveEquivalence(inc liveSearcher, ref *System, st *liveState, cfg liveConfig, queries []Query, k int) error {
	if got, want := inc.NumTables(), len(st.ids); got != want {
		return fmt.Errorf("NumTables = %d, survivors = %d", got, want)
	}
	mapID := func(refID TableID) (TableID, error) {
		if int(refID) < 0 || int(refID) >= len(st.ids) {
			return 0, fmt.Errorf("reference returned out-of-range ID %d", refID)
		}
		return st.ids[int(refID)], nil
	}
	for qi, q := range queries {
		want, wantStats := ref.SearchStats(q, k)
		got, gotStats := inc.SearchStats(q, k)
		if wantStats.Truncated || gotStats.Truncated {
			return fmt.Errorf("q%d: unexpected truncation (rebuild=%v incremental=%v)",
				qi, wantStats.Truncated, gotStats.Truncated)
		}
		if len(got) != len(want) {
			return fmt.Errorf("q%d: incremental returned %d results, rebuild %d", qi, len(got), len(want))
		}
		for i := range want {
			wantID, err := mapID(want[i].Table)
			if err != nil {
				return fmt.Errorf("q%d rank %d: %v", qi, i, err)
			}
			if got[i].Table != wantID || got[i].Score != want[i].Score {
				return fmt.Errorf("q%d rank %d: incremental (%d, %.17g/%#x), rebuild (%d→%d, %.17g/%#x)",
					qi, i, got[i].Table, got[i].Score, math.Float64bits(got[i].Score),
					want[i].Table, wantID, want[i].Score, math.Float64bits(want[i].Score))
			}
		}
	}
	if cfg.keyword {
		want := ref.KeywordSearch(liveKeywords, 10)
		got := inc.KeywordSearch(liveKeywords, 10)
		if len(got) != len(want) {
			return fmt.Errorf("keyword: incremental returned %d results, rebuild %d", len(got), len(want))
		}
		for i := range want {
			wantID, err := mapID(want[i])
			if err != nil {
				return fmt.Errorf("keyword rank %d: %v", i, err)
			}
			if got[i] != wantID {
				return fmt.Errorf("keyword rank %d: incremental %d, rebuild %d→%d", i, got[i], want[i], wantID)
			}
		}
		wantH := ref.HybridSearch(queries[1], liveKeywords, 10)
		gotH := inc.HybridSearch(queries[1], liveKeywords, 10)
		if len(gotH) != len(wantH) {
			return fmt.Errorf("hybrid: incremental returned %d results, rebuild %d", len(gotH), len(wantH))
		}
		for i := range wantH {
			wantID, err := mapID(wantH[i])
			if err != nil {
				return fmt.Errorf("hybrid rank %d: %v", i, err)
			}
			if gotH[i] != wantID {
				return fmt.Errorf("hybrid rank %d: incremental %d, rebuild %d→%d", i, gotH[i], wantH[i], wantID)
			}
		}
	}
	return nil
}

// runLiveScenario ingests baseN tables into a fresh incremental system (made
// by mk), configures it, applies ops against the LIVE indexes, then checks
// rebuild equivalence. Returns nil when the invariant holds.
func runLiveScenario(mk func() liveSearcher, tables []*Table, queries []Query, cfg liveConfig, baseN int, ops []liveOp) error {
	inc := mk()
	st := baseState(baseN, tables)
	for _, tb := range st.tabs {
		inc.AddTable(tb)
	}
	configureLive(inc, cfg)
	for i, op := range ops {
		if err := st.apply(inc, op, tables); err != nil {
			return fmt.Errorf("op %d (%s): %v", i, op, err)
		}
		if cfg.compactAfter >= 0 && i == cfg.compactAfter {
			inc.Compact()
		}
	}
	if cfg.compactAfter >= 0 {
		inc.Compact()
	}
	ref := buildLiveReference(st, cfg)
	if err := assertLiveEquivalence(inc, ref, st, cfg, queries, 10); err != nil {
		return err
	}
	// Unbounded k on a couple of queries exercises full-ranking equality.
	return assertLiveEquivalence(inc, ref, st, cfg, queries[:2], -1)
}

// shrinkLiveOps minimizes a failing op sequence by repeatedly deleting
// chunks while the failure persists (delta-debugging style, trial-bounded
// since every trial rebuilds two systems).
func shrinkLiveOps(check func([]liveOp) error, ops []liveOp) []liveOp {
	trials := 0
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(ops) && trials < 48; {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			cand := make([]liveOp, 0, len(ops)-(end-start))
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[end:]...)
			trials++
			if check(cand) != nil {
				ops = cand // still fails without the chunk: keep it out
			} else {
				start = end
			}
		}
	}
	return ops
}

// checkLive runs a scenario and, on failure, shrinks the op sequence to a
// minimal reproducer before failing the test.
func checkLive(t *testing.T, label string, mk func() liveSearcher, tables []*Table, queries []Query, cfg liveConfig, baseN int, ops []liveOp) {
	t.Helper()
	check := func(ops []liveOp) error {
		return runLiveScenario(mk, tables, queries, cfg, baseN, ops)
	}
	err := check(ops)
	if err == nil {
		return
	}
	min := shrinkLiveOps(check, ops)
	t.Fatalf("%s: rebuild equivalence broken: %v\nminimal sequence (%d of %d ops, base %d tables): %s",
		label, check(min), len(min), len(ops), baseN, opsString(min))
}

func TestLiveRebuildEquivalence(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	mk := func() liveSearcher { return New(kgEnv.Graph) }
	const baseN = 200
	configs := []liveConfig{
		{name: "max-entitywise-lsh3-kw", agg: AggregateMax, mode: ModeEntityWise,
			par: 0, votes: 3, lsh: true, keyword: true, compactAfter: -1},
		{name: "avg-pairwise-lsh1-par1", agg: AggregateAvg, mode: ModePairwise,
			par: 1, votes: 1, lsh: true, compactAfter: -1},
		{name: "max-pairwise-lsh2-par4", agg: AggregateMax, mode: ModePairwise,
			par: 4, votes: 2, lsh: true, compactAfter: -1},
		{name: "avg-entitywise-noindex-kw", agg: AggregateAvg, mode: ModeEntityWise,
			par: 2, keyword: true, compactAfter: -1},
	}
	for _, cfg := range configs {
		ops := genLiveOps(41, 60, baseN, baseN, len(tables))
		checkLive(t, cfg.name, mk, tables, queries, cfg, baseN, ops)
	}
	// Extra seeds on the paper-default configuration.
	for _, seed := range []int64{7, 1009} {
		cfg := liveConfig{name: fmt.Sprintf("default-seed%d", seed), agg: AggregateMax,
			mode: ModeEntityWise, votes: 3, lsh: true, keyword: true, compactAfter: -1}
		ops := genLiveOps(seed, 60, baseN, baseN, len(tables))
		checkLive(t, cfg.name, mk, tables, queries, cfg, baseN, ops)
	}
}

func TestLiveRebuildEquivalenceSharded(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	const baseN = 200
	for _, shards := range []int{1, 2, 4} {
		mk := func() liveSearcher { return NewShardedSystem(kgEnv.Graph, NewHashPartitioner(shards)) }
		cfg := liveConfig{name: fmt.Sprintf("shards%d", shards), agg: AggregateMax,
			mode: ModeEntityWise, votes: 2, lsh: true, keyword: true, compactAfter: -1}
		ops := genLiveOps(int64(100+shards), 50, baseN, baseN, len(tables))
		checkLive(t, cfg.name, mk, tables, queries, cfg, baseN, ops)
	}
}

func TestLiveCompactionPreservesResults(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	mk := func() liveSearcher { return New(kgEnv.Graph) }
	const baseN = 200
	// Compact mid-sequence AND after the final op; results must still match
	// the rebuild bit for bit (compaction rebuilds the same structures the
	// reference builds).
	cfg := liveConfig{name: "compact", agg: AggregateMax, mode: ModeEntityWise,
		votes: 3, lsh: true, keyword: true, compactAfter: 25}
	ops := genLiveOps(4242, 50, baseN, baseN, len(tables))
	checkLive(t, cfg.name, mk, tables, queries, cfg, baseN, ops)
}

func TestLiveRebuildEquivalenceEmbeddings(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	const baseN = 150
	// Train once on the shared graph; every trial system reuses the store.
	trainer := New(kgEnv.Graph)
	store := trainer.TrainEmbeddings(
		WalkConfig{WalksPerEntity: 4, Length: 5, Undirected: true, Seed: 9},
		TrainConfig{Dim: 16, Window: 3, Negatives: 3, Epochs: 2, LearningRate: 0.03, Seed: 9},
	)
	ops := genLiveOps(77, 40, baseN, baseN, len(tables))

	inc := New(kgEnv.Graph)
	st := baseState(baseN, tables)
	for _, tb := range st.tabs {
		inc.AddTable(tb)
	}
	inc.SetEmbeddings(store)
	inc.UseEmbeddingSimilarity()
	inc.BuildIndex(DefaultIndexConfig())
	inc.SetVotes(2)
	for i, op := range ops {
		if err := st.apply(inc, op, tables); err != nil {
			t.Fatalf("op %d (%s): %v", i, op, err)
		}
	}
	ref := New(kgEnv.Graph)
	for _, tb := range st.tabs {
		ref.AddTable(tb)
	}
	ref.SetEmbeddings(store)
	ref.UseEmbeddingSimilarity()
	ref.BuildIndex(DefaultIndexConfig())
	ref.SetVotes(2)
	cfg := liveConfig{name: "embeddings"} // semantic legs only
	if err := assertLiveEquivalence(inc, ref, st, cfg, queries, 10); err != nil {
		t.Fatalf("embeddings: rebuild equivalence broken: %v\nops: %s", err, opsString(ops))
	}
}

func TestLiveEpochSemantics(t *testing.T) {
	kgEnv, tables, _ := batteryEnv(t)
	sys := New(kgEnv.Graph)
	for _, tb := range tables[:20] {
		sys.AddTable(tb)
	}
	if got := sys.IndexEpoch(); got != 20 {
		t.Fatalf("epoch after 20 adds = %d, want 20", got)
	}
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())
	if got := sys.IndexEpoch(); got != 20 {
		t.Fatalf("BuildIndex (a hot-swap, not a mutation) moved the epoch to %d", got)
	}
	id := sys.AddTable(tables[20])
	if got := sys.IndexEpoch(); got != 21 {
		t.Fatalf("epoch after add = %d, want 21", got)
	}
	if err := sys.RemoveTable(id); err != nil {
		t.Fatalf("RemoveTable(%d): %v", id, err)
	}
	if got := sys.IndexEpoch(); got != 22 {
		t.Fatalf("epoch after remove = %d, want 22", got)
	}
	if sys.Table(id) != nil {
		t.Fatalf("Table(%d) is not nil after removal", id)
	}
	if err := sys.RemoveTable(id); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double remove returned %v, want ErrNoSuchTable", err)
	}
	if err := sys.RemoveTable(9999); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("remove of unassigned ID returned %v, want ErrNoSuchTable", err)
	}
	sys.Compact()
	if got := sys.IndexEpoch(); got != 22 {
		t.Fatalf("Compact (corpus unchanged) moved the epoch to %d", got)
	}
	// IDs are never reused: re-adding the same table gets a fresh slot.
	if again := sys.AddTable(tables[20]); again == id {
		t.Fatalf("removed ID %d was reused", id)
	} else if got := sys.IndexEpoch(); got != 23 {
		t.Fatalf("epoch after re-add = %d, want 23", got)
	} else if sys.Table(again) == nil {
		t.Fatalf("re-added table %d not visible", again)
	}
	if sys.Table(id) != nil {
		t.Fatalf("tombstoned slot %d resurrected by re-add", id)
	}
}

func TestLiveConcurrentSearchDuringMutation(t *testing.T) {
	kgEnv, tables, queries := batteryEnv(t)
	systems := []struct {
		name string
		mk   func() liveSearcher
	}{
		{"system", func() liveSearcher { return New(kgEnv.Graph) }},
		{"sharded2", func() liveSearcher { return NewShardedSystem(kgEnv.Graph, NewHashPartitioner(2)) }},
	}
	const baseN = 150
	for _, sc := range systems {
		t.Run(sc.name, func(t *testing.T) {
			inc := sc.mk()
			st := baseState(baseN, tables)
			for _, tb := range st.tabs {
				inc.AddTable(tb)
			}
			cfg := liveConfig{agg: AggregateMax, mode: ModeEntityWise,
				votes: 2, lsh: true, keyword: true, compactAfter: -1}
			configureLive(inc, cfg)

			done := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for {
						select {
						case <-done:
							return
						default:
						}
						q := queries[rng.Intn(len(queries))]
						switch w % 4 {
						case 0:
							inc.SearchStats(q, 10)
						case 1:
							inc.KeywordSearch(liveKeywords, 10)
						case 2:
							inc.HybridSearch(q, liveKeywords, 10)
						case 3:
							inc.NumTables()
							inc.IndexEpoch()
						}
					}
				}(w)
			}
			ops := genLiveOps(99, 40, baseN, baseN, len(tables))
			for i, op := range ops {
				if err := st.apply(inc, op, tables); err != nil {
					close(done)
					wg.Wait()
					t.Fatalf("op %d (%s): %v", i, op, err)
				}
				if i == len(ops)/2 {
					inc.Compact() // hot-swap under live queries
				}
			}
			close(done)
			wg.Wait()
			// After the dust settles the equivalence invariant still holds.
			ref := buildLiveReference(st, cfg)
			if err := assertLiveEquivalence(inc, ref, st, cfg, queries, 10); err != nil {
				t.Fatalf("post-concurrency equivalence broken: %v", err)
			}
		})
	}
}

// newLiveBase builds a System over the first baseN battery tables with the
// default live configuration — the shared starting point of the delta-log
// tests (a "base snapshot" both the original and the restarted process load).
func newLiveBase(baseN int) (*System, *liveState) {
	sys := New(batteryKG.Graph)
	st := baseState(baseN, batteryTables)
	for _, tb := range st.tabs {
		sys.AddTable(tb)
	}
	sys.UseTypeSimilarity()
	sys.BuildIndex(DefaultIndexConfig())
	sys.SetVotes(2)
	sys.BuildKeywordIndex()
	return sys, st
}

func TestLiveDeltaLogRestartReplay(t *testing.T) {
	_, tables, queries := batteryEnv(t)
	const baseN = 150
	path := filepath.Join(t.TempDir(), "deltas.log")

	// Original process: base corpus, fresh log, live mutations.
	orig, st := newLiveBase(baseN)
	if err := orig.AttachDeltaLog(path); err != nil {
		t.Fatalf("attach fresh log: %v", err)
	}
	ops := genLiveOps(2025, 40, baseN, baseN, len(tables))
	for i, op := range ops {
		if err := st.apply(orig, op, tables); err != nil {
			t.Fatalf("op %d (%s): %v", i, op, err)
		}
	}
	if err := orig.DeltaLogError(); err != nil {
		t.Fatalf("delta log went sticky-bad during mutation: %v", err)
	}
	if err := orig.CloseDeltaLog(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	// Restarted process: same base corpus, replay the log into the live
	// indexes. Every search modality must be bit-identical.
	restarted, _ := newLiveBase(baseN)
	if err := restarted.AttachDeltaLog(path); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got, want := restarted.NumTables(), orig.NumTables(); got != want {
		t.Fatalf("replayed corpus has %d tables, original %d", got, want)
	}
	if got, want := restarted.IndexEpoch(), orig.IndexEpoch(); got != want {
		t.Fatalf("replayed epoch %d, original %d", got, want)
	}
	for qi, q := range queries {
		want, _ := orig.SearchStats(q, 10)
		got, _ := restarted.SearchStats(q, 10)
		if len(got) != len(want) {
			t.Fatalf("q%d: replay returned %d results, original %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].Table != want[i].Table || got[i].Score != want[i].Score {
				t.Fatalf("q%d rank %d: replay %+v, original %+v", qi, i, got[i], want[i])
			}
		}
	}
	a, b := orig.KeywordSearch(liveKeywords, 10), restarted.KeywordSearch(liveKeywords, 10)
	if len(a) != len(b) {
		t.Fatalf("keyword counts diverge after replay: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("keyword rank %d diverges after replay: %d vs %d", i, a[i], b[i])
		}
	}

	// The restarted process can keep mutating: appends resume at the next
	// sequence number, and a third process replays the longer log.
	extra := restarted.AddTable(tables[len(tables)-1])
	if err := restarted.RemoveTable(extra); err != nil {
		t.Fatalf("post-replay mutation: %v", err)
	}
	if err := restarted.DeltaLogError(); err != nil {
		t.Fatalf("resumed log went sticky-bad: %v", err)
	}
	if err := restarted.CloseDeltaLog(); err != nil {
		t.Fatalf("close resumed log: %v", err)
	}
	third, _ := newLiveBase(baseN)
	if err := third.AttachDeltaLog(path); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if got, want := third.NumTables(), restarted.NumTables(); got != want {
		t.Fatalf("second replay has %d tables, want %d", got, want)
	}
}

func TestLiveDeltaLogCorruption(t *testing.T) {
	_, tables, _ := batteryEnv(t)
	const baseN = 60
	dir := t.TempDir()
	path := filepath.Join(dir, "deltas.log")

	orig, st := newLiveBase(baseN)
	if err := orig.AttachDeltaLog(path); err != nil {
		t.Fatalf("attach: %v", err)
	}
	ops := genLiveOps(5, 12, baseN, baseN, baseN+20)
	for i, op := range ops {
		if err := st.apply(orig, op, tables); err != nil {
			t.Fatalf("op %d (%s): %v", i, op, err)
		}
	}
	if err := orig.CloseDeltaLog(); err != nil {
		t.Fatalf("close: %v", err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	attach := func(t *testing.T, data []byte, baseTables int) error {
		t.Helper()
		p := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "-")+".log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sys, _ := newLiveBase(baseTables)
		return sys.AttachDeltaLog(p)
	}
	mustCorrupt := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("damaged delta log replayed without error")
		}
		if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("damage surfaced as %v, want ErrCorruptSnapshot", err)
		}
	}

	t.Run("clean-replays", func(t *testing.T) {
		if err := attach(t, clean, baseN); err != nil {
			t.Fatalf("pristine copy failed to replay: %v", err)
		}
	})
	t.Run("flipped-header-byte", func(t *testing.T) {
		data := append([]byte(nil), clean...)
		data[3] ^= 0x40
		mustCorrupt(t, attach(t, data, baseN))
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		data := append([]byte(nil), clean...)
		data[len(data)/2] ^= 0x01
		mustCorrupt(t, attach(t, data, baseN))
	})
	t.Run("truncated-mid-record", func(t *testing.T) {
		mustCorrupt(t, attach(t, clean[:len(clean)-3], baseN))
	})
	t.Run("appended-garbage-record", func(t *testing.T) {
		// Duplicating the trailing bytes of the log past a clean EOF breaks
		// either sequence continuity or a CRC; replay must refuse rather
		// than apply a phantom record.
		garbled := append(append([]byte(nil), clean...), clean[len(clean)-21:]...)
		mustCorrupt(t, attach(t, garbled, baseN))
	})
	t.Run("wrong-base-snapshot", func(t *testing.T) {
		mustCorrupt(t, attach(t, clean, baseN-5))
	})
	t.Run("remove-of-dead-id", func(t *testing.T) {
		// A structurally intact log whose remove targets an ID that is not
		// live in THIS base (the operator paired the log with the wrong
		// snapshot generation) must be refused as corruption.
		src, _ := newLiveBase(baseN)
		p := filepath.Join(dir, "deadremove.log")
		if err := src.AttachDeltaLog(p); err != nil {
			t.Fatal(err)
		}
		if err := src.RemoveTable(TableID(baseN - 1)); err != nil {
			t.Fatal(err)
		}
		if err := src.CloseDeltaLog(); err != nil {
			t.Fatal(err)
		}
		victim, _ := newLiveBase(baseN)
		if err := victim.RemoveTable(TableID(baseN - 1)); err != nil {
			t.Fatal(err)
		}
		mustCorrupt(t, victim.AttachDeltaLog(p))
	})
}

func TestLiveDoubleAttachRefused(t *testing.T) {
	batteryEnv(t)
	sys, _ := newLiveBase(10)
	dir := t.TempDir()
	if err := sys.AttachDeltaLog(filepath.Join(dir, "a.log")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDeltaLog(filepath.Join(dir, "b.log")); err == nil {
		t.Fatal("second AttachDeltaLog succeeded; must be refused")
	}
	if err := sys.CloseDeltaLog(); err != nil {
		t.Fatal(err)
	}
	// After a detach, a fresh attach is allowed again.
	if err := sys.AttachDeltaLog(filepath.Join(dir, "c.log")); err != nil {
		t.Fatalf("re-attach after close: %v", err)
	}
	if err := sys.CloseDeltaLog(); err != nil {
		t.Fatal(err)
	}
}
