package lsh

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"thetis/internal/atomicio"
	"thetis/internal/faultio"
)

// Corruption matrix for the LSH component serializers: flipping ANY single
// byte of a serialized component, or truncating it at ANY prefix, must make
// its reader return atomicio.ErrCorruptSnapshot — never a silently wrong
// component, never a panic. Run with `make faults`.

func serializedComponents(t *testing.T) map[string]struct {
	data []byte
	read func(io.Reader) (any, error)
} {
	t.Helper()
	m := NewMinHasher(16, 7)
	h := NewHyperplaneHasher(8, 4, 3)
	ix := NewIndex(16, 4)
	ix.Insert(10, m.Signature([]uint64{1, 2, 3}))
	ix.Insert(20, m.Signature([]uint64{500, 600}))

	out := make(map[string]struct {
		data []byte
		read func(io.Reader) (any, error)
	})
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out["MinHasher"] = struct {
		data []byte
		read func(io.Reader) (any, error)
	}{bytes.Clone(buf.Bytes()), func(r io.Reader) (any, error) { return ReadMinHasher(r) }}

	buf.Reset()
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out["HyperplaneHasher"] = struct {
		data []byte
		read func(io.Reader) (any, error)
	}{bytes.Clone(buf.Bytes()), func(r io.Reader) (any, error) { return ReadHyperplaneHasher(r) }}

	buf.Reset()
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out["Index"] = struct {
		data []byte
		read func(io.Reader) (any, error)
	}{bytes.Clone(buf.Bytes()), func(r io.Reader) (any, error) { return ReadIndex(r) }}
	return out
}

func TestCorruptComponentEveryByteFlip(t *testing.T) {
	for name, c := range serializedComponents(t) {
		t.Run(name, func(t *testing.T) {
			// Sanity: the pristine bytes load.
			if _, err := c.read(bytes.NewReader(c.data)); err != nil {
				t.Fatalf("pristine component rejected: %v", err)
			}
			for off := range c.data {
				for _, mask := range []byte{0x01, 0x80} {
					fr := faultio.NewFlipReader(bytes.NewReader(c.data), int64(off), mask)
					_, err := c.read(fr)
					if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
						t.Fatalf("byte %d ^ %#x: got %v, want ErrCorruptSnapshot", off, mask, err)
					}
				}
			}
		})
	}
}

func TestCorruptComponentEveryTruncation(t *testing.T) {
	for name, c := range serializedComponents(t) {
		t.Run(name, func(t *testing.T) {
			for n := 0; n < len(c.data); n++ {
				_, err := c.read(faultio.NewShortReader(bytes.NewReader(c.data), int64(n)))
				if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
					t.Fatalf("prefix of %d/%d bytes: got %v, want ErrCorruptSnapshot", n, len(c.data), err)
				}
			}
		})
	}
}

// TestFaultComponentReadError: a device error mid-read surfaces as a
// corruption error (the stream cannot be validated), not a hang or panic.
func TestFaultComponentReadError(t *testing.T) {
	for name, c := range serializedComponents(t) {
		t.Run(name, func(t *testing.T) {
			_, err := c.read(faultio.NewFailingReader(bytes.NewReader(c.data), int64(len(c.data)/2), nil))
			if err == nil {
				t.Fatal("mid-read device error ignored")
			}
		})
	}
}

func TestNewIndexChecked(t *testing.T) {
	if _, err := NewIndexChecked(16, 0); err == nil {
		t.Error("band size 0 accepted")
	}
	if _, err := NewIndexChecked(16, -1); err == nil {
		t.Error("negative band size accepted")
	}
	if _, err := NewIndexChecked(4, 8); err == nil {
		t.Error("band size > permutations accepted")
	}
	ix, err := NewIndexChecked(16, 4)
	if err != nil || ix == nil || ix.Bands() != 4 {
		t.Errorf("valid shape rejected: %v", err)
	}
	// NewIndex keeps its panicking contract for programmer errors.
	defer func() {
		if recover() == nil {
			t.Error("NewIndex(4, 8) did not panic")
		}
	}()
	NewIndex(4, 8)
}
