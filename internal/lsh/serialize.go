package lsh

import (
	"bufio"
	"encoding/binary"
	"io"

	"thetis/internal/atomicio"
)

// Binary serialization for hashers and indexes, so a built LSEI can be
// persisted and reloaded instead of re-hashing a whole corpus at startup.
// The format is little-endian with a small magic header per component, and
// every component is sealed with a CRC32C section checksum of its own bytes
// (magic included): a flipped bit anywhere in a serialized component makes
// its reader return atomicio.ErrCorruptSnapshot instead of a silently wrong
// index. The full wire layout is documented in docs/RELIABILITY.md.

const (
	magicMinHash = uint32(0x544D4831) // "TMH1"
	magicHyper   = uint32(0x54485031) // "THP1"
	magicIndex   = uint32(0x54495831) // "TIX1"
)

// Plausibility caps for decoded shape fields. They bound allocations driven
// by corrupt counts (a flipped high byte must produce ErrCorruptSnapshot,
// not an out-of-memory crash) and sit far above any configuration the paper
// sweeps (at most 128 permutations / projections).
const (
	maxPermutations = 1 << 20
	maxDim          = 1 << 20
	maxBands        = 1 << 16
	// allocHint caps the capacity pre-allocated from a decoded count;
	// larger collections grow by append, bounded by the actual stream.
	allocHint = 1 << 20
)

type countingWriter struct {
	w io.Writer
}

func (cw countingWriter) u32(v uint32) error { return binary.Write(cw.w, binary.LittleEndian, v) }
func (cw countingWriter) u64(v uint64) error { return binary.Write(cw.w, binary.LittleEndian, v) }

type reader struct {
	r io.Reader
}

func (rd reader) u32() (uint32, error) {
	var v uint32
	err := binary.Read(rd.r, binary.LittleEndian, &v)
	return v, err
}

func (rd reader) u64() (uint64, error) {
	var v uint64
	err := binary.Read(rd.r, binary.LittleEndian, &v)
	return v, err
}

// Write serializes the hasher's permutation parameters.
func (m *MinHasher) Write(w io.Writer) error {
	buf := bufio.NewWriter(w)
	cw := atomicio.NewCRCWriter(buf)
	bw := countingWriter{cw}
	if err := bw.u32(magicMinHash); err != nil {
		return err
	}
	if err := bw.u32(uint32(len(m.a))); err != nil {
		return err
	}
	for i := range m.a {
		if err := bw.u64(m.a[i]); err != nil {
			return err
		}
		if err := bw.u64(m.b[i]); err != nil {
			return err
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	return buf.Flush()
}

// ReadMinHasher deserializes a hasher written by Write. It reads exactly
// the hasher's bytes from r, so several components may share one stream.
// Any malformed input — bad magic, implausible shape, truncation, or a
// checksum mismatch — returns atomicio.ErrCorruptSnapshot.
func ReadMinHasher(r io.Reader) (*MinHasher, error) {
	cr := atomicio.NewCRCReader(r)
	rd := reader{cr}
	magic, err := rd.u32()
	if err != nil {
		return nil, atomicio.Corruptf("lsh: reading MinHasher magic: %v", err)
	}
	if magic != magicMinHash {
		return nil, atomicio.Corruptf("lsh: bad MinHasher magic %#x", magic)
	}
	n, err := rd.u32()
	if err != nil {
		return nil, atomicio.Corruptf("lsh: reading MinHasher size: %v", err)
	}
	if n == 0 || n > maxPermutations {
		return nil, atomicio.Corruptf("lsh: implausible MinHasher permutation count %d", n)
	}
	m := &MinHasher{a: make([]uint64, n), b: make([]uint64, n)}
	for i := uint32(0); i < n; i++ {
		if m.a[i], err = rd.u64(); err != nil {
			return nil, atomicio.Corruptf("lsh: reading MinHasher permutation %d: %v", i, err)
		}
		if m.b[i], err = rd.u64(); err != nil {
			return nil, atomicio.Corruptf("lsh: reading MinHasher permutation %d: %v", i, err)
		}
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	return m, nil
}

// Write serializes the projection planes.
func (h *HyperplaneHasher) Write(w io.Writer) error {
	buf := bufio.NewWriter(w)
	cw := atomicio.NewCRCWriter(buf)
	if err := binary.Write(cw, binary.LittleEndian, magicHyper); err != nil {
		return err
	}
	header := []uint32{uint32(len(h.planes)), uint32(h.dim)}
	for _, v := range header {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range h.planes {
		if err := binary.Write(cw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	return buf.Flush()
}

// ReadHyperplaneHasher deserializes a hasher written by Write. It reads
// exactly the hasher's bytes from r, and returns
// atomicio.ErrCorruptSnapshot on any malformed input.
func ReadHyperplaneHasher(r io.Reader) (*HyperplaneHasher, error) {
	cr := atomicio.NewCRCReader(r)
	var magic, n, dim uint32
	for _, p := range []*uint32{&magic, &n, &dim} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, atomicio.Corruptf("lsh: reading HyperplaneHasher header: %v", err)
		}
	}
	if magic != magicHyper {
		return nil, atomicio.Corruptf("lsh: bad HyperplaneHasher magic %#x", magic)
	}
	if n == 0 || n > maxPermutations || dim == 0 || dim > maxDim {
		return nil, atomicio.Corruptf("lsh: implausible HyperplaneHasher shape projections=%d dim=%d", n, dim)
	}
	h := &HyperplaneHasher{dim: int(dim), planes: make([][]float32, n)}
	for i := range h.planes {
		p := make([]float32, dim)
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, atomicio.Corruptf("lsh: reading projection plane %d: %v", i, err)
		}
		h.planes[i] = p
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	return h, nil
}

// Write serializes the banded bucket index.
func (ix *Index) Write(w io.Writer) error {
	buf := bufio.NewWriter(w)
	cw := atomicio.NewCRCWriter(buf)
	u32 := func(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }
	u64 := func(v uint64) error { return binary.Write(cw, binary.LittleEndian, v) }
	if err := u32(magicIndex); err != nil {
		return err
	}
	if err := u32(uint32(ix.bandSize)); err != nil {
		return err
	}
	if err := u32(uint32(ix.bands)); err != nil {
		return err
	}
	for _, buckets := range ix.buckets {
		if err := u32(uint32(len(buckets))); err != nil {
			return err
		}
		for key, items := range buckets {
			if err := u64(key); err != nil {
				return err
			}
			if err := u32(uint32(len(items))); err != nil {
				return err
			}
			for _, it := range items {
				if err := u32(it); err != nil {
					return err
				}
			}
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	return buf.Flush()
}

// ReadIndex deserializes an index written by Write. It reads exactly the
// index's bytes from r, and returns atomicio.ErrCorruptSnapshot on any
// malformed input — truncation, implausible shapes, or checksum mismatch —
// never a wrong-but-loaded index.
func ReadIndex(r io.Reader) (*Index, error) {
	cr := atomicio.NewCRCReader(r)
	rd := reader{cr}
	magic, err := rd.u32()
	if err != nil {
		return nil, atomicio.Corruptf("lsh: reading Index magic: %v", err)
	}
	if magic != magicIndex {
		return nil, atomicio.Corruptf("lsh: bad Index magic %#x", magic)
	}
	bandSize, err := rd.u32()
	if err != nil {
		return nil, atomicio.Corruptf("lsh: reading Index band size: %v", err)
	}
	bands, err := rd.u32()
	if err != nil {
		return nil, atomicio.Corruptf("lsh: reading Index band count: %v", err)
	}
	if bandSize == 0 || bandSize > maxPermutations || bands == 0 || bands > maxBands {
		return nil, atomicio.Corruptf("lsh: implausible index shape bands=%d bandSize=%d", bands, bandSize)
	}
	ix := &Index{bandSize: int(bandSize), bands: int(bands), buckets: make([]map[uint64][]uint32, bands)}
	for b := range ix.buckets {
		n, err := rd.u32()
		if err != nil {
			return nil, atomicio.Corruptf("lsh: reading band %d bucket count: %v", b, err)
		}
		m := make(map[uint64][]uint32, min(int(n), allocHint))
		for i := uint32(0); i < n; i++ {
			key, err := rd.u64()
			if err != nil {
				return nil, atomicio.Corruptf("lsh: reading band %d bucket key: %v", b, err)
			}
			cnt, err := rd.u32()
			if err != nil {
				return nil, atomicio.Corruptf("lsh: reading band %d bucket size: %v", b, err)
			}
			items := make([]uint32, 0, min(int(cnt), allocHint))
			for j := uint32(0); j < cnt; j++ {
				it, err := rd.u32()
				if err != nil {
					return nil, atomicio.Corruptf("lsh: reading band %d bucket item: %v", b, err)
				}
				items = append(items, it)
			}
			m[key] = items
		}
		ix.buckets[b] = m
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	// Every insert lands in each band group, so the per-band entry total
	// recovers the inserted-signature count for NumItems.
	entries := 0
	for _, items := range ix.buckets[0] {
		entries += len(items)
	}
	ix.items = entries
	return ix, nil
}
