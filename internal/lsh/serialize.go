package lsh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization for hashers and indexes, so a built LSEI can be
// persisted and reloaded instead of re-hashing a whole corpus at startup.
// The format is little-endian with small magic headers per component.

const (
	magicMinHash = uint32(0x544D4831) // "TMH1"
	magicHyper   = uint32(0x54485031) // "THP1"
	magicIndex   = uint32(0x54495831) // "TIX1"
)

type countingWriter struct {
	w *bufio.Writer
}

func (cw countingWriter) u32(v uint32) error { return binary.Write(cw.w, binary.LittleEndian, v) }
func (cw countingWriter) u64(v uint64) error { return binary.Write(cw.w, binary.LittleEndian, v) }

type reader struct {
	r io.Reader
}

func (rd reader) u32() (uint32, error) {
	var v uint32
	err := binary.Read(rd.r, binary.LittleEndian, &v)
	return v, err
}

func (rd reader) u64() (uint64, error) {
	var v uint64
	err := binary.Read(rd.r, binary.LittleEndian, &v)
	return v, err
}

// Write serializes the hasher's permutation parameters.
func (m *MinHasher) Write(w io.Writer) error {
	bw := countingWriter{bufio.NewWriter(w)}
	if err := bw.u32(magicMinHash); err != nil {
		return err
	}
	if err := bw.u32(uint32(len(m.a))); err != nil {
		return err
	}
	for i := range m.a {
		if err := bw.u64(m.a[i]); err != nil {
			return err
		}
		if err := bw.u64(m.b[i]); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

// ReadMinHasher deserializes a hasher written by Write. It reads exactly
// the hasher's bytes from r, so several components may share one stream.
func ReadMinHasher(r io.Reader) (*MinHasher, error) {
	rd := reader{r}
	magic, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if magic != magicMinHash {
		return nil, fmt.Errorf("lsh: bad MinHasher magic %#x", magic)
	}
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	m := &MinHasher{a: make([]uint64, n), b: make([]uint64, n)}
	for i := uint32(0); i < n; i++ {
		if m.a[i], err = rd.u64(); err != nil {
			return nil, err
		}
		if m.b[i], err = rd.u64(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Write serializes the projection planes.
func (h *HyperplaneHasher) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, magicHyper); err != nil {
		return err
	}
	header := []uint32{uint32(len(h.planes)), uint32(h.dim)}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range h.planes {
		if err := binary.Write(bw, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHyperplaneHasher deserializes a hasher written by Write. It reads
// exactly the hasher's bytes from r.
func ReadHyperplaneHasher(r io.Reader) (*HyperplaneHasher, error) {
	br := r
	var magic, n, dim uint32
	for _, p := range []*uint32{&magic, &n, &dim} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if magic != magicHyper {
		return nil, fmt.Errorf("lsh: bad HyperplaneHasher magic %#x", magic)
	}
	h := &HyperplaneHasher{dim: int(dim), planes: make([][]float32, n)}
	for i := range h.planes {
		p := make([]float32, dim)
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
		h.planes[i] = p
	}
	return h, nil
}

// Write serializes the banded bucket index.
func (ix *Index) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	u32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	u64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := u32(magicIndex); err != nil {
		return err
	}
	if err := u32(uint32(ix.bandSize)); err != nil {
		return err
	}
	if err := u32(uint32(ix.bands)); err != nil {
		return err
	}
	for _, buckets := range ix.buckets {
		if err := u32(uint32(len(buckets))); err != nil {
			return err
		}
		for key, items := range buckets {
			if err := u64(key); err != nil {
				return err
			}
			if err := u32(uint32(len(items))); err != nil {
				return err
			}
			for _, it := range items {
				if err := u32(it); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadIndex deserializes an index written by Write. It reads exactly the
// index's bytes from r.
func ReadIndex(r io.Reader) (*Index, error) {
	rd := reader{r}
	magic, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if magic != magicIndex {
		return nil, fmt.Errorf("lsh: bad Index magic %#x", magic)
	}
	bandSize, err := rd.u32()
	if err != nil {
		return nil, err
	}
	bands, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if bandSize == 0 || bands == 0 || bands > 1<<16 {
		return nil, fmt.Errorf("lsh: implausible index shape bands=%d bandSize=%d", bands, bandSize)
	}
	ix := &Index{bandSize: int(bandSize), bands: int(bands), buckets: make([]map[uint64][]uint32, bands)}
	for b := range ix.buckets {
		n, err := rd.u32()
		if err != nil {
			return nil, err
		}
		m := make(map[uint64][]uint32, n)
		for i := uint32(0); i < n; i++ {
			key, err := rd.u64()
			if err != nil {
				return nil, err
			}
			cnt, err := rd.u32()
			if err != nil {
				return nil, err
			}
			items := make([]uint32, cnt)
			for j := range items {
				if items[j], err = rd.u32(); err != nil {
					return nil, err
				}
			}
			m[key] = items
		}
		ix.buckets[b] = m
	}
	return ix, nil
}
