package lsh

import (
	"bytes"
	"testing"

	"thetis/internal/embedding"
)

func TestMinHasherRoundTrip(t *testing.T) {
	m := NewMinHasher(32, 7)
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMinHasher(&buf)
	if err != nil {
		t.Fatal(err)
	}
	shingles := []uint64{1, 5, 99, 12345}
	a, b := m.Signature(shingles), back.Signature(shingles)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures differ after round trip")
		}
	}
}

func TestHyperplaneRoundTrip(t *testing.T) {
	h := NewHyperplaneHasher(16, 8, 3)
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHyperplaneHasher(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v := embedding.Vector{1, -2, 3, -4, 5, -6, 7, -8}
	a, b := h.Signature(v), back.Signature(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures differ after round trip")
		}
	}
	if back.Dim() != 8 || back.Projections() != 16 {
		t.Errorf("shape after round trip: dim=%d proj=%d", back.Dim(), back.Projections())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := NewMinHasher(32, 1)
	ix := NewIndex(32, 8)
	sigA := m.Signature([]uint64{1, 2, 3})
	sigB := m.Signature([]uint64{500, 600})
	ix.Insert(10, sigA)
	ix.Insert(20, sigB)
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bands() != ix.Bands() || back.NumBuckets() != ix.NumBuckets() {
		t.Fatalf("shape after round trip: bands=%d buckets=%d", back.Bands(), back.NumBuckets())
	}
	got := back.QuerySet(sigA)
	if !got[10] || got[20] {
		t.Errorf("query after round trip = %v", got)
	}
}

func TestSharedStreamRoundTrip(t *testing.T) {
	// Multiple components serialized back to back into one stream must
	// deserialize cleanly in sequence (no over-reading).
	m := NewMinHasher(16, 2)
	ix := NewIndex(16, 8)
	ix.Insert(1, m.Signature([]uint64{42}))
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMinHasher(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(&buf); err != nil {
		t.Fatalf("second component corrupted by first read: %v", err)
	}
}

func TestReadersBadMagic(t *testing.T) {
	junk := bytes.Repeat([]byte{9}, 64)
	if _, err := ReadMinHasher(bytes.NewReader(junk)); err == nil {
		t.Error("MinHasher bad magic accepted")
	}
	if _, err := ReadHyperplaneHasher(bytes.NewReader(junk)); err == nil {
		t.Error("HyperplaneHasher bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(junk)); err == nil {
		t.Error("Index bad magic accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(nil)); err == nil {
		t.Error("empty index stream accepted")
	}
}
