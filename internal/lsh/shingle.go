package lsh

import "sort"

// TypePairShingles converts a set of type indices into the shingle set the
// paper feeds MinHash: one shingle per unordered pair of types (i ≤ j),
// mimicking "a pair of types with indices 24 and 48 have index 2448 in the
// bit vector". Including the diagonal (i,i) keeps single-type entities
// hashable. The input need not be sorted or deduplicated.
func TypePairShingles(types []uint32) []uint64 {
	if len(types) == 0 {
		return nil
	}
	sorted := append([]uint32(nil), types...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	// Deduplicate.
	n := 0
	for i, t := range sorted {
		if i == 0 || t != sorted[n-1] {
			sorted[n] = t
			n++
		}
	}
	sorted = sorted[:n]
	out := make([]uint64, 0, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			out = append(out, uint64(sorted[i])<<32|uint64(sorted[j]))
		}
	}
	return out
}

// JaccardEstimate estimates the Jaccard similarity of two sets from their
// MinHash signatures: the fraction of agreeing positions. Exposed for
// testing and for tuning LSH configurations.
func JaccardEstimate(a, b []uint32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(a))
}
