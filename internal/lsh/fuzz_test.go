package lsh

import (
	"bytes"
	"errors"
	"testing"

	"thetis/internal/atomicio"
)

// FuzzReadIndex: the index deserializer must never panic or allocate
// unboundedly on arbitrary bytes; every rejection is the typed
// ErrCorruptSnapshot. Seeds live in testdata/fuzz/FuzzReadIndex.
func FuzzReadIndex(f *testing.F) {
	m := NewMinHasher(16, 2)
	ix := NewIndex(16, 4)
	ix.Insert(1, m.Signature([]uint64{42}))
	ix.Insert(2, m.Signature([]uint64{7, 9}))
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // checksum torn off
	f.Add(valid[:3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
				t.Fatalf("non-typed read error: %v", err)
			}
			return
		}
		_ = back.QuerySet(m.Signature([]uint64{42}))
	})
}
