// Package lsh implements the two locality-sensitive hashing schemes behind
// the paper's Locality-Sensitive Entity Index (Section 6): MinHash over
// shingle sets (for entity types) and random hyperplane projections (for
// entity embeddings), plus the banded bucket index both share.
//
// A signature of P values is split into P/B bands of size B; each band is
// hashed into its own group of buckets. Two items collide when any band
// hashes equally, so larger bands mean more selective (but lossier) lookups
// — exactly the (permutations/projections, band size) trade-off the paper
// sweeps as configurations (32,8), (128,8), and (30,10).
package lsh

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync/atomic"

	"thetis/internal/embedding"
	"thetis/internal/obs"
)

// Band-probe metrics, cached once (see internal/obs): every index in the
// process accumulates into the same counters.
var (
	mBandProbes   = obs.LSHBandProbesTotal()
	mItemsScanned = obs.LSHItemsScannedTotal()
)

// MinHasher computes MinHash signatures of shingle sets using one universal
// hash function per permutation: h_i(x) = (a_i·x + b_i) mod p with a large
// Mersenne prime p.
type MinHasher struct {
	a, b []uint64
}

const mersenne61 = (1 << 61) - 1

// NewMinHasher creates a hasher with the given number of permutations.
func NewMinHasher(permutations int, seed int64) *MinHasher {
	rng := rand.New(rand.NewSource(seed))
	m := &MinHasher{
		a: make([]uint64, permutations),
		b: make([]uint64, permutations),
	}
	for i := 0; i < permutations; i++ {
		m.a[i] = uint64(rng.Int63n(mersenne61-1)) + 1 // a != 0
		m.b[i] = uint64(rng.Int63n(mersenne61))
	}
	return m
}

// Permutations returns the signature length.
func (m *MinHasher) Permutations() int { return len(m.a) }

// Signature computes the MinHash signature of a shingle set. An empty set
// yields a signature of all-max values (colliding only with other empty
// sets).
func (m *MinHasher) Signature(shingles []uint64) []uint32 {
	sig := make([]uint32, len(m.a))
	for i := range sig {
		sig[i] = ^uint32(0)
	}
	for _, s := range shingles {
		x := mix64(s)
		for i := range m.a {
			h := mulmod61(m.a[i], x) + m.b[i]
			if h >= mersenne61 {
				h -= mersenne61
			}
			v := uint32(h ^ (h >> 32))
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// mulmod61 multiplies two values modulo 2^61-1 without overflow, using
// 128-bit intermediate arithmetic via math/bits-style splitting.
func mulmod61(a, b uint64) uint64 {
	// Split a into high and low 32-bit halves: a = ah*2^32 + al.
	ah, al := a>>32, a&0xFFFFFFFF
	bh, bl := b>>32, b&0xFFFFFFFF
	// a*b = ah*bh*2^64 + (ah*bl + al*bh)*2^32 + al*bl (mod 2^61-1)
	// 2^61 ≡ 1, so 2^64 ≡ 8 and 2^32 parts are folded via shifts.
	hi := ah * bh
	mid := ah*bl + al*bh // may overflow; reduce each term
	lo := al * bl
	res := mod61(lo)
	res = mod61(res + mod61shift(mid, 32))
	res = mod61(res + mod61shift(hi, 64))
	return res
}

// mod61shift reduces x·2^s modulo 2^61-1.
func mod61shift(x uint64, s uint) uint64 {
	r := mod61(x)
	for s >= 61 {
		s -= 61 // 2^61 ≡ 1
	}
	// r·2^s may overflow 64 bits when s > 3; reduce in chunks of 30 bits.
	for s > 0 {
		chunk := s
		if chunk > 2 {
			chunk = 2
		}
		r = mod61(r << chunk)
		s -= chunk
	}
	return r
}

func mod61(x uint64) uint64 {
	x = (x >> 61) + (x & mersenne61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

// mix64 is SplitMix64's finalizer, decorrelating raw shingle values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HyperplaneHasher computes bit signatures of embedding vectors by random
// projections: bit i is 1 iff the dot product with projection vector i is
// positive.
type HyperplaneHasher struct {
	dim    int
	planes [][]float32 // projections × dim, standard normal entries
}

// NewHyperplaneHasher creates a hasher with the given number of projection
// vectors for embeddings of dimensionality dim.
func NewHyperplaneHasher(projections, dim int, seed int64) *HyperplaneHasher {
	rng := rand.New(rand.NewSource(seed))
	h := &HyperplaneHasher{dim: dim, planes: make([][]float32, projections)}
	for i := range h.planes {
		p := make([]float32, dim)
		for j := range p {
			p[j] = float32(rng.NormFloat64())
		}
		h.planes[i] = p
	}
	return h
}

// Projections returns the signature length.
func (h *HyperplaneHasher) Projections() int { return len(h.planes) }

// Dim returns the expected vector dimensionality.
func (h *HyperplaneHasher) Dim() int { return h.dim }

// Signature computes the bit signature of v (one uint32 per bit: 0 or 1,
// matching the banded index's value-based band hashing).
func (h *HyperplaneHasher) Signature(v embedding.Vector) []uint32 {
	sig := make([]uint32, len(h.planes))
	for i, p := range h.planes {
		var dot float64
		for j := 0; j < h.dim && j < len(v); j++ {
			dot += float64(p[j]) * float64(v[j])
		}
		if dot > 0 {
			sig[i] = 1
		}
	}
	return sig
}

// Index is a banded LSH bucket index over uint32 item IDs. It is safe for
// concurrent queries; Insert/Remove mutate the bucket maps and must be
// serialized against queries by the caller (thetis.System holds its write
// lock across mutations). Queries maintain cumulative probe counters
// (band-bucket lookups and items scanned), readable via ProbeCounts and
// mirrored on /metrics.
type Index struct {
	bandSize int
	bands    int
	buckets  []map[uint64][]uint32 // one bucket map per band group

	probes  atomic.Int64 // band-bucket lookups across all queries
	scanned atomic.Int64 // items read out of colliding buckets
	items   int          // signatures inserted
}

// NewIndex creates an index for signatures of length permutations, divided
// into bands of bandSize values. The trailing remainder of a signature that
// does not fill a whole band is ignored, mirroring the (30,10) setup where
// 30 values form exactly 3 bands. It panics on out-of-range parameters;
// code handling untrusted configuration (CLI flags, snapshot headers)
// should use NewIndexChecked instead.
func NewIndex(permutations, bandSize int) *Index {
	ix, err := NewIndexChecked(permutations, bandSize)
	if err != nil {
		panic(err.Error())
	}
	return ix
}

// NewIndexChecked is NewIndex returning an error instead of panicking when
// the band size is outside [1, permutations] — the validating constructor
// for parameters derived from flags or deserialized headers.
func NewIndexChecked(permutations, bandSize int) (*Index, error) {
	if bandSize <= 0 || permutations < bandSize {
		return nil, fmt.Errorf("lsh: band size must be in [1, permutations]: got permutations=%d bandSize=%d",
			permutations, bandSize)
	}
	bands := permutations / bandSize
	ix := &Index{bandSize: bandSize, bands: bands, buckets: make([]map[uint64][]uint32, bands)}
	for i := range ix.buckets {
		ix.buckets[i] = make(map[uint64][]uint32)
	}
	return ix, nil
}

// Bands returns the number of band groups.
func (ix *Index) Bands() int { return ix.bands }

// bandHash hashes one band of a signature together with the band number, so
// identical values in different bands land in different bucket groups.
func bandHash(sig []uint32, band, bandSize int) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(band))
	h.Write(buf[:])
	for _, v := range sig[band*bandSize : (band+1)*bandSize] {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Insert adds an item with the given signature to every band group.
func (ix *Index) Insert(item uint32, sig []uint32) {
	ix.items++
	for b := 0; b < ix.bands; b++ {
		key := bandHash(sig, b, ix.bandSize)
		ix.buckets[b][key] = append(ix.buckets[b][key], item)
	}
}

// Remove deletes an item previously Inserted under the same signature,
// reporting whether it was found in any band. A band bucket emptied by the
// removal is deleted from its map rather than left as a zero-length entry —
// NumBuckets and the probe counters in Stats.Trace must look exactly like
// an index that never held the item. Like Insert, Remove must not run
// concurrently with queries.
func (ix *Index) Remove(item uint32, sig []uint32) bool {
	removed := false
	for b := 0; b < ix.bands; b++ {
		key := bandHash(sig, b, ix.bandSize)
		items := ix.buckets[b][key]
		for i, it := range items {
			if it == item {
				items = append(items[:i], items[i+1:]...)
				removed = true
				break
			}
		}
		if len(items) == 0 {
			delete(ix.buckets[b], key)
		} else {
			ix.buckets[b][key] = items
		}
	}
	if removed {
		ix.items--
	}
	return removed
}

// Query returns the bag of items sharing at least one bucket with the
// signature. Items colliding in multiple bands appear multiple times; use
// QuerySet for deduplicated results.
func (ix *Index) Query(sig []uint32) []uint32 {
	var out []uint32
	for b := 0; b < ix.bands; b++ {
		key := bandHash(sig, b, ix.bandSize)
		out = append(out, ix.buckets[b][key]...)
	}
	ix.countProbe(len(out))
	return out
}

// QuerySet returns the deduplicated set of items colliding with the
// signature.
func (ix *Index) QuerySet(sig []uint32) map[uint32]bool {
	return ix.QuerySetContext(context.Background(), sig)
}

// QuerySetContext is QuerySet honoring cancellation between band probes: a
// dead context returns the partial collision set gathered so far (bands
// already scanned stay in it). Background contexts skip the check entirely.
func (ix *Index) QuerySetContext(ctx context.Context, sig []uint32) map[uint32]bool {
	set := make(map[uint32]bool)
	scanned := 0
	done := ctx.Done()
	for b := 0; b < ix.bands; b++ {
		if done != nil {
			select {
			case <-done:
				ix.countProbe(scanned)
				return set
			default:
			}
		}
		key := bandHash(sig, b, ix.bandSize)
		for _, it := range ix.buckets[b][key] {
			set[it] = true
		}
		scanned += len(ix.buckets[b][key])
	}
	ix.countProbe(scanned)
	return set
}

// countProbe records one signature probe (ix.bands band-bucket lookups)
// that scanned the given number of bucket entries.
func (ix *Index) countProbe(scanned int) {
	ix.probes.Add(int64(ix.bands))
	ix.scanned.Add(int64(scanned))
	mBandProbes.Add(int64(ix.bands))
	mItemsScanned.Add(int64(scanned))
}

// ProbeCounts returns this index's cumulative band-bucket lookups and
// bucket entries scanned across all queries since construction.
func (ix *Index) ProbeCounts() (probes, scanned int64) {
	return ix.probes.Load(), ix.scanned.Load()
}

// NumItems returns how many signatures have been inserted — per-shard
// index sizes for spotting partitioning imbalance.
func (ix *Index) NumItems() int { return ix.items }

// NumBuckets returns the total number of non-empty buckets across bands.
func (ix *Index) NumBuckets() int {
	n := 0
	for _, m := range ix.buckets {
		n += len(m)
	}
	return n
}
