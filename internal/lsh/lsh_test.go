package lsh

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"thetis/internal/embedding"
)

func TestMinHashIdenticalSets(t *testing.T) {
	m := NewMinHasher(64, 1)
	s := []uint64{1, 2, 3, 99}
	a := m.Signature(s)
	b := m.Signature([]uint64{99, 3, 2, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures of the same set differ")
		}
	}
}

func TestMinHashEmptySet(t *testing.T) {
	m := NewMinHasher(16, 1)
	sig := m.Signature(nil)
	for _, v := range sig {
		if v != ^uint32(0) {
			t.Fatal("empty-set signature should be all max")
		}
	}
}

func TestMinHashJaccardEstimate(t *testing.T) {
	m := NewMinHasher(512, 7)
	// Two sets with known Jaccard 50/150 = 1/3.
	a := make([]uint64, 100)
	b := make([]uint64, 100)
	for i := 0; i < 100; i++ {
		a[i] = uint64(i)
		b[i] = uint64(i + 50)
	}
	est := JaccardEstimate(m.Signature(a), m.Signature(b))
	if math.Abs(est-1.0/3.0) > 0.08 {
		t.Errorf("Jaccard estimate = %v, want ~0.333", est)
	}
	// Disjoint sets.
	c := []uint64{1000, 2000}
	est = JaccardEstimate(m.Signature(a), m.Signature(c))
	if est > 0.1 {
		t.Errorf("disjoint estimate = %v, want ~0", est)
	}
}

func TestJaccardEstimateDegenerate(t *testing.T) {
	if JaccardEstimate([]uint32{1}, []uint32{1, 2}) != 0 {
		t.Error("length mismatch should estimate 0")
	}
	if JaccardEstimate(nil, nil) != 0 {
		t.Error("empty signatures should estimate 0")
	}
}

func TestTypePairShingles(t *testing.T) {
	got := TypePairShingles([]uint32{3, 1})
	// Pairs: (1,1), (1,3), (3,3)
	want := []uint64{1<<32 | 1, 1<<32 | 3, 3<<32 | 3}
	if len(got) != len(want) {
		t.Fatalf("shingles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shingles = %v, want %v", got, want)
		}
	}
	if TypePairShingles(nil) != nil {
		t.Error("nil types should give nil shingles")
	}
	// Duplicates collapse.
	if got := TypePairShingles([]uint32{5, 5}); len(got) != 1 {
		t.Errorf("duplicate types shingles = %v", got)
	}
}

func TestHyperplaneSignatureDeterministicAndBinary(t *testing.T) {
	h := NewHyperplaneHasher(32, 8, 3)
	v := embedding.Vector{1, -1, 0.5, 0, 2, -3, 1, 1}
	a := h.Signature(v)
	b := h.Signature(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("hyperplane signature not deterministic")
		}
		if a[i] > 1 {
			t.Fatal("signature values must be bits")
		}
	}
}

func TestHyperplaneSimilarVectorsShareBits(t *testing.T) {
	h := NewHyperplaneHasher(256, 16, 5)
	rng := rand.New(rand.NewSource(8))
	base := make(embedding.Vector, 16)
	for i := range base {
		base[i] = float32(rng.NormFloat64())
	}
	near := append(embedding.Vector(nil), base...)
	near[0] += 0.01
	far := make(embedding.Vector, 16)
	for i := range far {
		far[i] = -base[i]
	}
	agreeNear := agreement(h.Signature(base), h.Signature(near))
	agreeFar := agreement(h.Signature(base), h.Signature(far))
	if agreeNear < 0.95 {
		t.Errorf("near vector agreement = %v, want ~1", agreeNear)
	}
	if agreeFar > 0.05 {
		t.Errorf("opposite vector agreement = %v, want ~0", agreeFar)
	}
}

func agreement(a, b []uint32) float64 {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

func TestIndexInsertQuery(t *testing.T) {
	ix := NewIndex(32, 8)
	if ix.Bands() != 4 {
		t.Fatalf("bands = %d, want 4", ix.Bands())
	}
	m := NewMinHasher(32, 1)
	sigA := m.Signature([]uint64{1, 2, 3})
	sigB := m.Signature([]uint64{1, 2, 3})
	sigC := m.Signature([]uint64{500, 600, 700})
	ix.Insert(10, sigA)
	ix.Insert(20, sigC)
	got := ix.QuerySet(sigB)
	if !got[10] {
		t.Error("identical signature did not collide")
	}
	if got[20] {
		t.Error("unrelated signature collided in every band (suspicious)")
	}
	bag := ix.Query(sigB)
	// Identical signatures collide in all 4 bands.
	count := 0
	for _, it := range bag {
		if it == 10 {
			count++
		}
	}
	if count != 4 {
		t.Errorf("identical signature collided in %d bands, want 4", count)
	}
}

func TestIndexRemainderBandsIgnored(t *testing.T) {
	ix := NewIndex(30, 10)
	if ix.Bands() != 3 {
		t.Fatalf("bands = %d, want 3", ix.Bands())
	}
}

func TestNewIndexPanicsOnBadBand(t *testing.T) {
	for _, bad := range []struct{ p, b int }{{8, 0}, {4, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewIndex(%d,%d) did not panic", bad.p, bad.b)
				}
			}()
			NewIndex(bad.p, bad.b)
		}()
	}
}

func TestNumBuckets(t *testing.T) {
	ix := NewIndex(16, 8)
	m := NewMinHasher(16, 2)
	ix.Insert(1, m.Signature([]uint64{1}))
	ix.Insert(2, m.Signature([]uint64{2}))
	if ix.NumBuckets() == 0 {
		t.Error("no buckets after inserts")
	}
}

// Property: for random sets, higher true Jaccard implies (statistically)
// higher collision counts. Verified in aggregate over many pairs.
func TestBandingCollisionMonotonicity(t *testing.T) {
	m := NewMinHasher(32, 11)
	ix := NewIndex(32, 8)
	base := make([]uint64, 64)
	for i := range base {
		base[i] = uint64(i)
	}
	ix.Insert(1, m.Signature(base))

	// Overlapping set (J≈0.77) vs nearly disjoint (J≈0.015).
	similar := make([]uint64, 64)
	copy(similar, base)
	for i := 0; i < 8; i++ {
		similar[i] = uint64(1000 + i)
	}
	dissimilar := make([]uint64, 64)
	for i := range dissimilar {
		dissimilar[i] = uint64(5000 + i)
	}
	simHits, disHits := 0, 0
	for trial := 0; trial < 20; trial++ {
		m2 := NewMinHasher(32, int64(100+trial))
		ix2 := NewIndex(32, 8)
		ix2.Insert(1, m2.Signature(base))
		if len(ix2.Query(m2.Signature(similar))) > 0 {
			simHits++
		}
		if len(ix2.Query(m2.Signature(dissimilar))) > 0 {
			disHits++
		}
	}
	if simHits <= disHits {
		t.Errorf("similar sets collided %d times, dissimilar %d times", simHits, disHits)
	}
}

func BenchmarkMinHashSignature128(b *testing.B) {
	m := NewMinHasher(128, 1)
	shingles := make([]uint64, 200)
	for i := range shingles {
		shingles[i] = uint64(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Signature(shingles)
	}
}

func BenchmarkHyperplaneSignature128(b *testing.B) {
	h := NewHyperplaneHasher(128, 48, 1)
	v := make(embedding.Vector, 48)
	for i := range v {
		v[i] = float32(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Signature(v)
	}
}

func TestQuerySetContextCancelled(t *testing.T) {
	ix := NewIndex(32, 8)
	m := NewMinHasher(32, 1)
	sig := m.Signature([]uint64{1, 2, 3})
	ix.Insert(10, sig)
	ix.Insert(20, m.Signature([]uint64{500, 600, 700}))

	full := ix.QuerySetContext(context.Background(), sig)
	if !full[10] {
		t.Fatal("background context lost a collision")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial := ix.QuerySetContext(ctx, sig)
	// A dead context is checked before the first band probe, so nothing
	// was scanned; the partial set must be a (here: empty) subset.
	if len(partial) != 0 {
		t.Errorf("pre-cancelled query returned %d items", len(partial))
	}
	for it := range partial {
		if !full[it] {
			t.Errorf("cancelled query invented item %d", it)
		}
	}
}
