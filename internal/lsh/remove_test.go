package lsh

import (
	"math/rand"
	"testing"
)

// randomSig builds a deterministic pseudo-random signature of length n.
func randomSig(rng *rand.Rand, n int) []uint32 {
	sig := make([]uint32, n)
	for i := range sig {
		sig[i] = rng.Uint32()
	}
	return sig
}

// TestRemoveDeletesEmptiedBuckets pins the empty-bucket regression: after
// add→remove→add cycles, bucket counts and probe counters must look exactly
// like an index that never held the removed items. A zero-length bucket left
// behind by Remove would inflate NumBuckets and band-probe bookkeeping.
func TestRemoveDeletesEmptiedBuckets(t *testing.T) {
	const perms, bandSize = 30, 10
	rng := rand.New(rand.NewSource(1))
	sigs := make([][]uint32, 50)
	for i := range sigs {
		sigs[i] = randomSig(rng, perms)
	}

	// Reference: an index that only ever held the even items.
	ref := NewIndex(perms, bandSize)
	for i := 0; i < len(sigs); i += 2 {
		ref.Insert(uint32(i), sigs[i])
	}

	// Subject: insert everything, remove the odd items again.
	ix := NewIndex(perms, bandSize)
	for i := range sigs {
		ix.Insert(uint32(i), sigs[i])
	}
	for i := 1; i < len(sigs); i += 2 {
		if !ix.Remove(uint32(i), sigs[i]) {
			t.Fatalf("Remove(%d) found nothing", i)
		}
	}

	if got, want := ix.NumItems(), ref.NumItems(); got != want {
		t.Fatalf("NumItems = %d after removals, want %d", got, want)
	}
	if got, want := ix.NumBuckets(), ref.NumBuckets(); got != want {
		t.Fatalf("NumBuckets = %d after removals, want %d (emptied buckets must be deleted)", got, want)
	}

	// Probe-count equivalence: querying both indexes with every signature
	// must scan the same number of bucket entries — removed items may not
	// linger in any bucket.
	for i, sig := range sigs {
		a := ix.QuerySet(sig)
		b := ref.QuerySet(sig)
		if len(a) != len(b) {
			t.Fatalf("sig %d: collision set size %d, reference %d", i, len(a), len(b))
		}
		for it := range b {
			if !a[it] {
				t.Fatalf("sig %d: reference collides with %d, subject does not", i, it)
			}
		}
	}
	gotProbes, gotScanned := ix.ProbeCounts()
	wantProbes, wantScanned := ref.ProbeCounts()
	if gotProbes != wantProbes || gotScanned != wantScanned {
		t.Fatalf("probe counters (%d probes, %d scanned) diverge from never-held reference (%d, %d)",
			gotProbes, gotScanned, wantProbes, wantScanned)
	}

	// Re-adding a removed item restores its collisions exactly.
	ix.Remove(0, sigs[0])
	ix.Insert(0, sigs[0])
	if got := ix.QuerySet(sigs[0]); !got[0] {
		t.Fatal("re-added item no longer collides with its own signature")
	}
	if got, want := ix.NumBuckets(), ref.NumBuckets(); got != want {
		t.Fatalf("NumBuckets = %d after remove→re-add, want %d", got, want)
	}
}

// TestRemoveUnknownItem checks Remove's found-report and that removing an
// absent item leaves the index untouched.
func TestRemoveUnknownItem(t *testing.T) {
	ix := NewIndex(30, 10)
	rng := rand.New(rand.NewSource(2))
	sig := randomSig(rng, 30)
	other := randomSig(rng, 30)
	ix.Insert(7, sig)
	if ix.Remove(7, other) {
		t.Fatal("Remove under a different signature claims success")
	}
	if !ix.QuerySet(sig)[7] {
		t.Fatal("failed Remove damaged the stored item")
	}
	if ix.Remove(8, sig) {
		t.Fatal("Remove of an item never inserted claims success")
	}
	if !ix.Remove(7, sig) {
		t.Fatal("Remove under the original signature failed")
	}
	if ix.NumItems() != 0 || ix.NumBuckets() != 0 {
		t.Fatalf("index not empty after final removal: items=%d buckets=%d", ix.NumItems(), ix.NumBuckets())
	}
}
