package linking

import (
	"testing"

	"thetis/internal/kg"
	"thetis/internal/table"
)

func linkGraph() *kg.Graph {
	g := kg.NewGraph()
	g.AddEntity("dbr:Ron_Santo", "Ron Santo")
	g.AddEntity("dbr:Chicago_Cubs", "Chicago Cubs")
	g.AddEntity("dbr:Chicago", "Chicago")
	g.AddEntity("dbr:Milwaukee_Brewers", "Milwaukee Brewers")
	return g
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Ron   SANTO "); got != "ron santo" {
		t.Errorf("Normalize = %q", got)
	}
	if got := Normalize(""); got != "" {
		t.Errorf("Normalize(empty) = %q", got)
	}
}

func TestDictionaryLinker(t *testing.T) {
	g := linkGraph()
	d := NewDictionaryLinker(g)
	e, ok := d.Link("ron santo")
	if !ok || g.URI(e) != "dbr:Ron_Santo" {
		t.Fatalf("Link(ron santo) = %v, %v", e, ok)
	}
	if _, ok := d.Link("Tony Giarratano"); ok {
		t.Error("unknown value linked")
	}
	if _, ok := d.Link(""); ok {
		t.Error("empty value linked")
	}
	// Case and whitespace insensitive.
	if _, ok := d.Link("  CHICAGO   cubs "); !ok {
		t.Error("normalization failed")
	}
}

func TestDictionaryLinkerAmbiguityPrefersDegree(t *testing.T) {
	g := kg.NewGraph()
	a := g.AddEntity("dbr:Springfield_IL", "Springfield")
	b := g.AddEntity("dbr:Springfield_MA", "Springfield")
	p := g.AddPredicate("rel")
	other := g.AddEntity("dbr:Other", "Other")
	g.AddEdge(b, p, other)
	g.AddEdge(b, p, other)
	d := NewDictionaryLinker(g)
	e, ok := d.Link("Springfield")
	if !ok || e != b {
		t.Errorf("ambiguous link = %v (a=%v b=%v), want higher-degree b", e, a, b)
	}
}

func TestFuzzyLinker(t *testing.T) {
	g := linkGraph()
	f := NewFuzzyLinker(g, 0.5)
	// Exact match works.
	e, ok := f.Link("Chicago Cubs")
	if !ok || g.URI(e) != "dbr:Chicago_Cubs" {
		t.Fatalf("fuzzy exact = %v %v", e, ok)
	}
	// Partial token overlap above threshold: "Cubs Chicago roster" has 2/3
	// tokens in "chicago cubs".
	e, ok = f.Link("Cubs Chicago roster")
	if !ok || g.URI(e) != "dbr:Chicago_Cubs" {
		t.Errorf("fuzzy partial = %v %v", e, ok)
	}
	// Below threshold: only 1/3 tokens overlap.
	if _, ok := f.Link("cubs winter festival"); ok {
		t.Error("low-overlap value linked")
	}
	if _, ok := f.Link("???"); ok {
		t.Error("punctuation-only value linked")
	}
}

func TestNoisyLinkerDropsAndCorrupts(t *testing.T) {
	g := linkGraph()
	base := NewDictionaryLinker(g)
	// Full drop.
	n := NewNoisyLinker(base, g.NumEntities(), 1.0, 0, 1)
	if _, ok := n.Link("Ron Santo"); ok {
		t.Error("DropRate=1 still linked")
	}
	// No noise passes through.
	n = NewNoisyLinker(base, g.NumEntities(), 0, 0, 1)
	e, ok := n.Link("Ron Santo")
	if !ok || g.URI(e) != "dbr:Ron_Santo" {
		t.Errorf("no-noise link = %v %v", e, ok)
	}
	// Full corruption keeps a link but (statistically) changes the target.
	n = NewNoisyLinker(base, g.NumEntities(), 0, 1.0, 1)
	changed := false
	for _, v := range []string{"Ron Santo", "Chicago Cubs", "Chicago", "Milwaukee Brewers"} {
		if e, ok := n.Link(v); ok {
			if want, _ := base.Link(v); e != want {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("ErrorRate=1 never corrupted a link")
	}
}

func TestNoisyLinkerDeterministicPerValue(t *testing.T) {
	g := linkGraph()
	n := NewNoisyLinker(NewDictionaryLinker(g), g.NumEntities(), 0.5, 0.3, 42)
	e1, ok1 := n.Link("Chicago Cubs")
	e2, ok2 := n.Link("Chicago Cubs")
	if ok1 != ok2 || e1 != e2 {
		t.Error("noisy linking not deterministic per value")
	}
}

func TestLinkTable(t *testing.T) {
	g := linkGraph()
	tb := table.New("t", []string{"Player", "Team"})
	tb.AppendValues("Ron Santo", "Chicago Cubs")
	tb.AppendValues("Nobody Special", "Chicago Cubs")
	n := LinkTable(tb, NewDictionaryLinker(g))
	if n != 3 {
		t.Errorf("LinkTable linked %d cells, want 3", n)
	}
	if !tb.Rows[0][0].Linked() || tb.Rows[1][0].Linked() {
		t.Error("wrong cells linked")
	}
}

func TestLinkTableOverwritesStaleLinks(t *testing.T) {
	g := linkGraph()
	e, _ := g.Lookup("dbr:Chicago")
	tb := table.New("t", []string{"A"})
	tb.AppendRow([]table.Cell{table.LinkedCell("Garbage Value", e)})
	LinkTable(tb, NewDictionaryLinker(g))
	if tb.Rows[0][0].Linked() {
		t.Error("stale link not cleared")
	}
}

func TestQuality(t *testing.T) {
	g := linkGraph()
	santo, _ := g.Lookup("dbr:Ron_Santo")
	cubs, _ := g.Lookup("dbr:Chicago_Cubs")
	chicago, _ := g.Lookup("dbr:Chicago")

	gold := table.New("g", []string{"a", "b", "c"})
	gold.AppendRow([]table.Cell{
		table.LinkedCell("Ron Santo", santo),
		table.LinkedCell("Chicago Cubs", cubs),
		{Value: ".277"},
	})
	pred := gold.Clone()
	// One correct, one wrong, one spurious.
	pred.Rows[0][1].Entity = table.Ref(chicago) // wrong target
	pred.Rows[0][2].Entity = table.Ref(chicago) // spurious link
	p, r, f1 := Quality(gold, pred)
	// tp=1 (santo), fp=2, fn=1 -> P=1/3, R=1/2, F1=0.4
	if p < 0.33 || p > 0.34 {
		t.Errorf("precision = %v, want 1/3", p)
	}
	if r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
	if f1 < 0.39 || f1 > 0.41 {
		t.Errorf("f1 = %v, want 0.4", f1)
	}
}

func TestQualityPerfect(t *testing.T) {
	g := linkGraph()
	santo, _ := g.Lookup("dbr:Ron_Santo")
	gold := table.New("g", []string{"a"})
	gold.AppendRow([]table.Cell{table.LinkedCell("Ron Santo", santo)})
	p, r, f1 := Quality(gold, gold.Clone())
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("perfect quality = %v %v %v", p, r, f1)
	}
}

func TestQualityEmpty(t *testing.T) {
	gold := table.New("g", []string{"a"})
	gold.AppendValues("x")
	p, r, f1 := Quality(gold, gold.Clone())
	if p != 0 || r != 0 || f1 != 0 {
		t.Errorf("no-links quality = %v %v %v", p, r, f1)
	}
}
