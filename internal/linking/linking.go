// Package linking implements entity linking: the partial mapping Φ from
// table cell values to KG entities that turns a plain data lake into a
// semantic data lake (Definition 2.1). Three linkers are provided:
//
//   - DictionaryLinker: exact normalized-label matching, standing in for the
//     ground-truth links shipped with the WikiTables benchmarks.
//   - FuzzyLinker: token-overlap search over KG labels, standing in for the
//     Lucene label index the paper builds to link GitTables.
//   - NoisyLinker: a wrapper that degrades another linker's coverage and
//     precision, standing in for the EMBLOOKUP experiment of Section 7.5.
package linking

import (
	"math/rand"
	"strings"

	"thetis/internal/bm25"
	"thetis/internal/kg"
	"thetis/internal/table"
)

// Linker resolves a cell value to a KG entity.
type Linker interface {
	// Link returns the entity a value refers to, or false when the value
	// cannot be linked.
	Link(value string) (kg.EntityID, bool)
}

// Normalize canonicalizes a label or cell value for exact matching:
// lowercased, interior whitespace collapsed.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// DictionaryLinker links values whose normalized form exactly equals an
// entity label. Ambiguous labels resolve to the entity with the highest
// degree (the usual "most prominent sense" heuristic).
type DictionaryLinker struct {
	byLabel map[string]kg.EntityID
}

// NewDictionaryLinker indexes every labeled entity of g.
func NewDictionaryLinker(g *kg.Graph) *DictionaryLinker {
	d := &DictionaryLinker{byLabel: make(map[string]kg.EntityID, g.NumEntities())}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		label := Normalize(g.Label(e))
		if label == "" {
			continue
		}
		if prev, ok := d.byLabel[label]; ok {
			if g.Degree(e) <= g.Degree(prev) {
				continue
			}
		}
		d.byLabel[label] = e
	}
	return d
}

// Link implements Linker.
func (d *DictionaryLinker) Link(value string) (kg.EntityID, bool) {
	e, ok := d.byLabel[Normalize(value)]
	if !ok {
		return kg.InvalidEntity, false
	}
	return e, true
}

// FuzzyLinker links values by token overlap with entity labels, using a
// small BM25 index over labels (the Lucene-substitute of Section 7.4's
// GitTables setup). A value links to the best-scoring entity whose label
// shares at least MinOverlap of the value's tokens.
type FuzzyLinker struct {
	index    *bm25.Index
	labels   []string // entity ID -> normalized label tokens joined
	minScore float64
	overlap  float64
}

// NewFuzzyLinker indexes entity labels. minOverlap is the minimum fraction
// of query tokens that must appear in the winning label (0.5 is a sensible
// default; 1.0 demands all tokens).
func NewFuzzyLinker(g *kg.Graph, minOverlap float64) *FuzzyLinker {
	f := &FuzzyLinker{
		index:   bm25.NewIndex(),
		labels:  make([]string, g.NumEntities()),
		overlap: minOverlap,
	}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		label := Normalize(g.Label(e))
		f.labels[e] = label
		if label != "" {
			f.index.Add(int32(e), label)
		}
	}
	f.index.Finish()
	return f
}

// Link implements Linker.
func (f *FuzzyLinker) Link(value string) (kg.EntityID, bool) {
	tokens := bm25.Tokenize(value)
	if len(tokens) == 0 {
		return kg.InvalidEntity, false
	}
	res := f.index.Search(value, 1)
	if len(res) == 0 {
		return kg.InvalidEntity, false
	}
	best := kg.EntityID(res[0].Doc)
	labelTokens := make(map[string]bool)
	for _, t := range bm25.Tokenize(f.labels[best]) {
		labelTokens[t] = true
	}
	hit := 0
	for _, t := range tokens {
		if labelTokens[t] {
			hit++
		}
	}
	if float64(hit)/float64(len(tokens)) < f.overlap {
		return kg.InvalidEntity, false
	}
	return best, true
}

// NoisyLinker wraps a base linker and degrades it: each successful link is
// dropped with probability DropRate and, if kept, replaced by a random
// wrong entity with probability ErrorRate. Degradation is deterministic per
// value (hash-seeded), so the same value always links the same way.
type NoisyLinker struct {
	Base      Linker
	DropRate  float64
	ErrorRate float64
	Seed      int64
	NumEnt    int
}

// NewNoisyLinker builds a noisy wrapper over base for a graph with
// numEntities entities.
func NewNoisyLinker(base Linker, numEntities int, dropRate, errorRate float64, seed int64) *NoisyLinker {
	return &NoisyLinker{Base: base, DropRate: dropRate, ErrorRate: errorRate, Seed: seed, NumEnt: numEntities}
}

// Link implements Linker.
func (n *NoisyLinker) Link(value string) (kg.EntityID, bool) {
	e, ok := n.Base.Link(value)
	if !ok {
		return kg.InvalidEntity, false
	}
	rng := rand.New(rand.NewSource(n.Seed ^ int64(stringHash(value))))
	if rng.Float64() < n.DropRate {
		return kg.InvalidEntity, false
	}
	if n.NumEnt > 0 && rng.Float64() < n.ErrorRate {
		return kg.EntityID(rng.Intn(n.NumEnt)), true
	}
	return e, true
}

func stringHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// LinkTable annotates every cell of t using l, overwriting existing links.
// It returns the number of linked cells.
func LinkTable(t *table.Table, l Linker) int {
	linked := 0
	for _, row := range t.Rows {
		for i := range row {
			if e, ok := l.Link(row[i].Value); ok {
				row[i].Entity = table.Ref(e)
				linked++
			} else {
				row[i].Entity = table.NoEntity
			}
		}
	}
	return linked
}

// Quality compares predicted links against a gold table cell-by-cell and
// returns precision, recall, and F1 (the paper quotes the EMBLOOKUP linker
// at F1 = 0.21). Both tables must have the same shape.
func Quality(gold, predicted *table.Table) (precision, recall, f1 float64) {
	var tp, fp, fn float64
	for i, row := range gold.Rows {
		for j := range row {
			ge, gok := gold.Rows[i][j].EntityID()
			pe, pok := predicted.Rows[i][j].EntityID()
			switch {
			case gok && pok && ge == pe:
				tp++
			case pok && (!gok || ge != pe):
				fp++
				if gok {
					fn++
				}
			case gok && !pok:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
