// Package shard implements sharded scatter-gather search: the corpus is
// partitioned into shards (lake.Partitioner), each shard owns its slice of
// the tables with its own LSEI, LSH index, column-index memos, and
// query-scoped σ caches, and a Coordinator fans each query out to every
// shard concurrently and merges the per-shard rankings into one global
// top-k (core.MergeRanked).
//
// Three pieces of state must stay global for a sharded search to rank
// exactly like an unsharded one — see docs/SHARDING.md for the full
// argument:
//
//   - informativeness weights (core.IDFInformativenessOver): an entity's
//     weight depends on how many tables of the whole corpus mention it;
//   - the LSEI frequent-type filter (core.FrequentTypesOver): which types
//     are "too common to be informative" is a corpus-level property;
//   - the empty-prefilter full-scan fallback: whether any shard found
//     candidates is only knowable after the scatter, so shards never fall
//     back on their own (core.FallbackNone) and the Coordinator rescatters
//     with SearchOptions.ForceFullScan when the global candidate count is
//     zero.
//
// The public façade (package thetis) re-exports Searcher as thetis.Shard
// and wires this machinery into thetis.ShardedSystem and thetisd -shards.
package shard

import (
	"context"
	"strconv"
	"sync/atomic"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/table"
)

// SearchOptions modulates one scatter leg.
type SearchOptions struct {
	// ForceFullScan bypasses the shard's LSEI and scores the shard's whole
	// table slice. The Coordinator sets it on the rescatter round that
	// replaces the single-node full-scan fallback after a globally empty
	// prefilter.
	ForceFullScan bool
}

// Searcher is one shard of a scatter-gather deployment. Implementations
// must return table IDs from the GLOBAL ID space — shards own disjoint
// global ID ranges and the merge never deduplicates or translates — ranked
// exactly like core.Engine ranks: descending score, ascending table ID
// within equal scores. Stats follow the single-shard contract; in
// particular Truncated marks the results as a correctly ranked prefix of
// what a full evaluation would have returned.
//
// Local implements it in-process; a future shard-over-HTTP client
// implements it by proxying to a remote daemon (docs/SHARDING.md).
type Searcher interface {
	SearchShard(ctx context.Context, q core.Query, k int, opts SearchOptions) ([]core.Result, core.Stats)
}

// Local is an in-process shard: one sub-lake plus its private search
// machinery. The assembler (thetis.ShardedSystem, or a test/benchmark
// harness) routes tables in via Add, installs a configured Engine whose
// Lake is the shard's lake — with GLOBAL informativeness weights — and
// optionally hot-swaps an LSEI built with the GLOBAL frequent-type filter.
//
// Ingestion and configuration must not run concurrently with searches;
// once configured, a Local is safe for concurrent searches, and SetIndex
// may hot-swap the LSEI under them (degraded-mode serving, per shard).
type Local struct {
	id string
	lk *lake.Lake

	// Engine scores this shard's tables. Set (and reconfigure) it through
	// SetEngine whenever the similarity changes; its Lake must be this
	// shard's lake.
	engine *core.Engine

	// index holds the shard's LSEI behind an atomic pointer so a
	// background build can hot-swap it under live searches, exactly like
	// the unsharded System's index.
	index atomic.Pointer[core.LSEI]
	votes atomic.Int32

	// global maps this shard's dense local table IDs to the lake-global
	// IDs the coordinator merges on. Append-only, in local ID order.
	global []lake.TableID

	tables *obs.Gauge
}

// NewLocal creates an empty shard with index id over graph g.
func NewLocal(id int, g *kg.Graph) *Local {
	s := &Local{id: strconv.Itoa(id), lk: lake.New(g)}
	s.votes.Store(1)
	s.tables = obs.ShardTables(nil, s.id)
	return s
}

// Lake exposes the shard's sub-lake (for engine construction and global
// frequency/filter computation across all shards).
func (s *Local) Lake() *lake.Lake { return s.lk }

// NumTables returns how many tables this shard owns.
func (s *Local) NumTables() int { return s.lk.NumTables() }

// Add ingests a table that the partitioner assigned to this shard,
// recording the global ID it answers with. Like System.AddTable, a live
// LSEI is extended incrementally. Returns the shard-local ID.
func (s *Local) Add(t *table.Table, global lake.TableID) lake.TableID {
	local := s.lk.Add(t)
	s.global = append(s.global, global)
	if ix := s.index.Load(); ix != nil {
		ix.AddTable(local)
	}
	s.tables.Set(float64(s.lk.NumTables()))
	return local
}

// Remove evicts a shard-local table from the lake and, when an index is
// live, from the LSEI — under whatever frequent-type filter is currently
// in force, which must still match the stored signatures (the assembler
// re-balances the shared filter AFTER this call). Returns the removed
// table (for the assembler's filter accounting), or nil when the local ID
// is not live. The local ID is tombstoned, never reused, preserving the
// monotone local→global mapping.
func (s *Local) Remove(local lake.TableID) *table.Table {
	t := s.lk.Table(local)
	if t == nil {
		return nil
	}
	s.lk.Remove(local)
	if ix := s.index.Load(); ix != nil {
		ix.RemoveTable(local, t)
	}
	s.tables.Set(float64(s.lk.NumTables()))
	return t
}

// GlobalID translates a shard-local table ID to its global ID.
func (s *Local) GlobalID(local lake.TableID) lake.TableID { return s.global[int(local)] }

// SetEngine installs the scoring engine. The engine's Lake must be this
// shard's lake; its Inf should be the global informativeness so rankings
// match the unsharded system. Installing an engine drops any built index
// (signatures depend on the similarity), mirroring System.Use*Similarity.
func (s *Local) SetEngine(eng *core.Engine) {
	s.engine = eng
	s.index.Store(nil)
}

// Engine returns the installed scoring engine (nil before SetEngine).
func (s *Local) Engine() *core.Engine { return s.engine }

// SetIndex atomically installs (or, with nil, removes) the shard's LSEI.
// Safe under concurrent searches — this is the per-shard hot-swap behind
// degraded-mode serving.
func (s *Local) SetIndex(ix *core.LSEI) { s.index.Store(ix) }

// Index returns the currently active LSEI, or nil.
func (s *Local) Index() *core.LSEI { return s.index.Load() }

// SetVotes sets the LSEI vote threshold used by SearchShard.
func (s *Local) SetVotes(v int) { s.votes.Store(int32(v)) }

// SearchShard runs the standard prefilter→score→rank pipeline over this
// shard's slice and translates the ranking to global IDs. The local→global
// mapping is monotone (globals are assigned in ingestion order), so the
// engine's tie-break on ascending local ID translates to ascending global
// ID and the merged ranking stays deterministic.
//
// Shards never fall back to a full scan on an empty prefilter
// (core.FallbackNone): zero candidates on every shard is the only
// condition that warrants one, and only the Coordinator sees it.
func (s *Local) SearchShard(ctx context.Context, q core.Query, k int, opts SearchOptions) ([]core.Result, core.Stats) {
	if s.engine == nil {
		panic("shard: SetEngine before SearchShard")
	}
	ix := s.index.Load()
	if opts.ForceFullScan {
		ix = nil
	}
	results, stats := core.SearchWithIndex(ctx, s.engine, ix, int(s.votes.Load()), q, k, core.FallbackNone)
	for i := range results {
		results[i].Table = s.global[int(results[i].Table)]
	}
	return results, stats
}
