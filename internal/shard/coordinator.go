package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"thetis/internal/core"
	"thetis/internal/obs"
)

// Coordinator scatters a query across shards concurrently and gathers the
// per-shard rankings into one global top-k. It owns no corpus state of its
// own, so it is safe for concurrent searches as long as its shards are.
//
// Partial responses compose: a shard that truncates (cancellation,
// deadline) or panics (contained, counted on thetis_panics_total
// {site="shard"}) contributes its correctly ranked prefix — possibly
// empty — and the merged Stats carry Truncated, so the caller sees exactly
// the ranked-prefix semantics a single truncated search has.
type Coordinator struct {
	shards []Searcher
	legs   []legMetrics
	merge  *obs.Histogram
	resc   *obs.Counter
	panics *obs.Counter
}

// legMetrics are one shard's scatter-leg handles, cached at construction.
type legMetrics struct {
	searches  *obs.Counter
	seconds   *obs.Histogram
	truncated *obs.Counter
}

// NewCoordinator builds a coordinator over the given shards. Shard order
// fixes the metric/trace labels ("0", "1", …) but never the ranking: the
// merge tie-breaks on global table ID, so results are independent of both
// shard order and arrival order.
func NewCoordinator(shards ...Searcher) *Coordinator {
	c := &Coordinator{
		shards: shards,
		legs:   make([]legMetrics, len(shards)),
		merge:  obs.ShardMergeSeconds(),
		resc:   obs.ShardRescattersTotal(),
		panics: obs.PanicsTotal(nil, "shard"),
	}
	for i := range shards {
		label := strconv.Itoa(i)
		c.legs[i] = legMetrics{
			searches:  obs.ShardSearchesTotal(label),
			seconds:   obs.ShardSearchSeconds(label),
			truncated: obs.ShardTruncatedTotal(label),
		}
	}
	return c
}

// NumShards returns how many shards the coordinator fans out to.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// leg is one shard's response to one scatter round.
type leg struct {
	results []core.Result
	stats   core.Stats
	wall    time.Duration
}

// Search scatters q to every shard, merges the per-shard top-k streams,
// and aggregates their stats: counters sum, Truncated ORs, TotalTime is
// the slowest shard's engine time (the critical path), and the Trace
// carries every shard's stages labeled with its shard plus the final merge
// stage — the scatter-gather view served on /debug/trace.
//
// When the prefilter prunes everything on every shard (total candidate
// count zero) and the context is still alive, Search rescatters once with
// ForceFullScan — the sharded equivalent of the single-node full-scan
// fallback, decided globally so that sharding never changes what a query
// returns.
func (c *Coordinator) Search(ctx context.Context, q core.Query, k int) ([]core.Result, core.Stats) {
	start := time.Now()
	legs := c.scatter(ctx, q, k, SearchOptions{})
	candidates := 0
	for i := range legs {
		candidates += legs[i].stats.Candidates
	}
	if candidates == 0 && ctx.Err() == nil {
		c.resc.Inc()
		forced := c.scatter(ctx, q, k, SearchOptions{ForceFullScan: true})
		return c.gather(start, k, legs, forced)
	}
	return c.gather(start, k, legs, nil)
}

// scatter runs one concurrent fan-out round. Every shard gets its own
// goroutine; a panicking shard is contained to an empty truncated leg so
// the round always completes.
func (c *Coordinator) scatter(ctx context.Context, q core.Query, k int, opts SearchOptions) []leg {
	legs := make([]leg, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legStart := time.Now()
			defer func() {
				if r := recover(); r != nil {
					c.panics.Inc()
					legs[i] = leg{stats: core.Stats{
						Truncated:   true,
						ShardErrors: []string{fmt.Sprintf("panic: %v", r)},
						Trace:       obs.NewTrace("search"),
					}}
				}
				legs[i].wall = time.Since(legStart)
				c.legs[i].searches.Inc()
				c.legs[i].seconds.Observe(legs[i].wall.Seconds())
				if legs[i].stats.Truncated {
					c.legs[i].truncated.Inc()
				}
			}()
			legs[i].results, legs[i].stats = c.shards[i].SearchShard(ctx, q, k, opts)
		}(i)
	}
	wg.Wait()
	return legs
}

// gather merges the deciding round's rankings and stats. When a forced
// round ran, its legs decide the result; the first round still contributes
// its (empty-prefilter) stages to the trace so the rescatter is visible.
func (c *Coordinator) gather(start time.Time, k int, first, forced []leg) ([]core.Result, core.Stats) {
	tr := obs.NewTrace("search")
	addStages := func(legs []leg) {
		for i := range legs {
			label := strconv.Itoa(i)
			tr.Add(obs.Stage{Name: "scatter", Shard: label, Wall: legs[i].wall, Items: len(legs[i].results)})
			if legs[i].stats.Trace == nil {
				continue
			}
			for _, st := range legs[i].stats.Trace.Stages {
				st.Shard = label
				tr.Add(st)
			}
		}
	}
	addStages(first)
	deciding := first
	if forced != nil {
		addStages(forced)
		deciding = forced
	}
	agg := core.Stats{Trace: tr}
	lists := make([][]core.Result, len(deciding))
	for i := range deciding {
		st := &deciding[i].stats
		agg.Candidates += st.Candidates
		agg.Scored += st.Scored
		agg.MappingTime += st.MappingTime
		agg.Panicked += st.Panicked
		agg.SigmaHits += st.SigmaHits
		agg.SigmaMisses += st.SigmaMisses
		agg.Truncated = agg.Truncated || st.Truncated
		for _, e := range st.ShardErrors {
			agg.ShardErrors = append(agg.ShardErrors, "shard "+strconv.Itoa(i)+": "+e)
		}
		if st.TotalTime > agg.TotalTime {
			agg.TotalTime = st.TotalTime
		}
		lists[i] = deciding[i].results
	}
	mergeStart := time.Now()
	results := core.MergeRanked(lists, k)
	mergeWall := time.Since(mergeStart)
	c.merge.Observe(mergeWall.Seconds())
	tr.Add(obs.Stage{Name: "merge", Wall: mergeWall, Items: len(results)})
	tr.Total = time.Since(start)
	return results, agg
}
