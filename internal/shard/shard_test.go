package shard

import (
	"context"
	"fmt"
	"testing"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// fixture builds a small typed graph and a corpus of single-column tables
// over it: players and cities, mixed so that different queries rank
// different tables on top.
func fixture(t testing.TB) (*kg.Graph, []*table.Table, []core.Query) {
	t.Helper()
	g := kg.NewGraph()
	player := g.AddType("T:player", "player")
	city := g.AddType("T:city", "city")
	var players, cities []kg.EntityID
	for i := 0; i < 6; i++ {
		e := g.AddEntity(fmt.Sprintf("E:p%d", i), fmt.Sprintf("p%d", i))
		g.AssignType(e, player)
		players = append(players, e)
		c := g.AddEntity(fmt.Sprintf("E:c%d", i), fmt.Sprintf("c%d", i))
		g.AssignType(c, city)
		cities = append(cities, c)
	}

	mk := func(name string, ents []kg.EntityID) *table.Table {
		tb := table.New(name, []string{"col"})
		for _, e := range ents {
			tb.AppendRow([]table.Cell{table.LinkedCell(g.Label(e), e)})
		}
		return tb
	}
	tables := []*table.Table{
		mk("players-a", players[:3]),
		mk("players-b", players[3:]),
		mk("cities-a", cities[:3]),
		mk("cities-b", cities[3:]),
		mk("mixed", []kg.EntityID{players[0], cities[0]}),
		mk("mixed-2", []kg.EntityID{players[5], cities[5]}),
	}
	queries := []core.Query{
		{core.Tuple{players[0]}},
		{core.Tuple{cities[1]}},
		{core.Tuple{players[0], cities[0]}},
		{core.Tuple{players[1]}, core.Tuple{players[4]}},
	}
	return g, tables, queries
}

// buildLocals round-robins the fixture tables across n shards wired the way
// ShardedSystem wires them: global informativeness, shared graph.
func buildLocals(g *kg.Graph, tables []*table.Table, n int) []*Local {
	locals := make([]*Local, n)
	for i := range locals {
		locals[i] = NewLocal(i, g)
	}
	for i, tb := range tables {
		locals[i%n].Add(tb, lake.TableID(i))
	}
	lakes := make([]*lake.Lake, n)
	for i, s := range locals {
		lakes[i] = s.Lake()
	}
	inf := core.IDFInformativenessOver(lakes)
	tj := core.NewTypeJaccard(g)
	for _, s := range locals {
		eng := core.NewEngine(s.Lake(), tj)
		eng.Inf = inf
		s.SetEngine(eng)
	}
	return locals
}

func searchers(locals []*Local) []Searcher {
	out := make([]Searcher, len(locals))
	for i, s := range locals {
		out[i] = s
	}
	return out
}

func TestCoordinatorMatchesDirectFullScan(t *testing.T) {
	g, tables, queries := fixture(t)
	all := lake.New(g)
	for _, tb := range tables {
		all.Add(tb)
	}
	direct := core.NewEngine(all, core.NewTypeJaccard(g))

	for _, n := range []int{1, 2, 3} {
		coord := NewCoordinator(searchers(buildLocals(g, tables, n))...)
		for qi, q := range queries {
			want, _ := direct.SearchContext(context.Background(), q, 4)
			got, stats := coord.Search(context.Background(), q, 4)
			if len(got) != len(want) {
				t.Fatalf("shards=%d q%d: %d results, want %d", n, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].Table != want[i].Table || got[i].Score != want[i].Score {
					t.Fatalf("shards=%d q%d rank %d: got %+v, want %+v", n, qi, i, got[i], want[i])
				}
			}
			if stats.Truncated {
				t.Fatalf("shards=%d q%d: unexpected truncation", n, qi)
			}
		}
	}
}

func TestLocalTranslatesToGlobalIDs(t *testing.T) {
	g, tables, _ := fixture(t)
	locals := buildLocals(g, tables, 2)
	// Shard 1 owns the odd global IDs under round-robin placement.
	p0, _ := g.Lookup("E:p3")
	results, _ := locals[1].SearchShard(context.Background(), core.Query{core.Tuple{p0}}, 10, SearchOptions{})
	if len(results) == 0 {
		t.Fatal("no results from shard 1")
	}
	for _, r := range results {
		if int(r.Table)%2 != 1 {
			t.Fatalf("shard 1 returned global ID %d, which it does not own", r.Table)
		}
	}
	if got := locals[1].GlobalID(0); got != 1 {
		t.Fatalf("GlobalID(0) = %d, want 1", got)
	}
}

func TestLocalSetEngineDropsIndex(t *testing.T) {
	g, tables, _ := fixture(t)
	locals := buildLocals(g, tables, 1)
	s := locals[0]
	tj := core.NewTypeJaccard(g)
	ix := core.BuildTypeLSEI(s.Lake(), tj, core.LSEIConfig{Vectors: 8, BandSize: 4, Seed: 1})
	s.SetIndex(ix)
	if s.Index() == nil {
		t.Fatal("index not installed")
	}
	s.SetEngine(s.Engine())
	if s.Index() != nil {
		t.Fatal("SetEngine must drop the index (signatures depend on σ)")
	}
}

func TestLocalPanicsWithoutEngine(t *testing.T) {
	g, _, _ := fixture(t)
	s := NewLocal(0, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic searching an engineless shard")
		}
	}()
	s.SearchShard(context.Background(), core.Query{}, 1, SearchOptions{})
}

// fakeShard scripts per-round responses for coordinator tests.
type fakeShard struct {
	results []core.Result
	stats   core.Stats
	forced  []core.Result
	panics  bool
}

func (f *fakeShard) SearchShard(ctx context.Context, q core.Query, k int, opts SearchOptions) ([]core.Result, core.Stats) {
	if f.panics {
		panic("fake shard exploded")
	}
	if opts.ForceFullScan {
		st := f.stats
		st.Candidates = 0
		st.Scored = len(f.forced)
		return f.forced, st
	}
	return f.results, f.stats
}

func TestCoordinatorContainsShardPanic(t *testing.T) {
	healthy := &fakeShard{
		results: []core.Result{{Table: 2, Score: 0.8}, {Table: 5, Score: 0.3}},
		stats:   core.Stats{Candidates: 2, Scored: 2},
	}
	coord := NewCoordinator(healthy, &fakeShard{panics: true})
	got, stats := coord.Search(context.Background(), core.Query{}, 10)
	if len(got) != 2 || got[0].Table != 2 || got[1].Table != 5 {
		t.Fatalf("healthy shard's ranking lost: %v", got)
	}
	if !stats.Truncated {
		t.Fatal("a panicked shard must mark the merged stats truncated")
	}
}

func TestCoordinatorRescattersOnGlobalEmptyPrefilter(t *testing.T) {
	// Both shards prune everything in round one; the coordinator must
	// rescatter with ForceFullScan and serve the forced round's results.
	a := &fakeShard{stats: core.Stats{Candidates: 0}, forced: []core.Result{{Table: 0, Score: 0.9}}}
	b := &fakeShard{stats: core.Stats{Candidates: 0}, forced: []core.Result{{Table: 1, Score: 0.4}}}
	coord := NewCoordinator(a, b)
	got, stats := coord.Search(context.Background(), core.Query{}, 10)
	if len(got) != 2 || got[0].Table != 0 || got[1].Table != 1 {
		t.Fatalf("rescatter results wrong: %v", got)
	}
	if stats.Scored != 2 {
		t.Fatalf("stats must come from the deciding round, got %+v", stats)
	}

	// One shard having candidates suppresses the fallback, matching the
	// single-node rule (fallback only on a globally empty prefilter).
	c := &fakeShard{results: []core.Result{{Table: 3, Score: 0.5}}, stats: core.Stats{Candidates: 1, Scored: 1}}
	coord = NewCoordinator(c, b)
	got, _ = coord.Search(context.Background(), core.Query{}, 10)
	if len(got) != 1 || got[0].Table != 3 {
		t.Fatalf("fallback must not fire when any shard had candidates: %v", got)
	}
}

func TestCoordinatorSkipsRescatterWhenCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := &fakeShard{stats: core.Stats{Candidates: 0, Truncated: true}, forced: []core.Result{{Table: 0, Score: 0.9}}}
	coord := NewCoordinator(a)
	got, stats := coord.Search(ctx, core.Query{}, 10)
	if len(got) != 0 {
		t.Fatalf("cancelled search must not rescatter, got %v", got)
	}
	if !stats.Truncated {
		t.Fatal("cancelled search must stay marked truncated")
	}
}

func TestCoordinatorTraceCarriesShardLabels(t *testing.T) {
	g, tables, queries := fixture(t)
	coord := NewCoordinator(searchers(buildLocals(g, tables, 2))...)
	_, stats := coord.Search(context.Background(), queries[0], 3)
	if stats.Trace == nil {
		t.Fatal("merged stats missing trace")
	}
	scatter := map[string]bool{}
	sawMerge := false
	for _, st := range stats.Trace.Stages {
		if st.Name == "scatter" {
			scatter[st.Shard] = true
		}
		if st.Name == "merge" {
			sawMerge = true
			if st.Shard != "" {
				t.Fatalf("merge stage is coordinator-level, got shard %q", st.Shard)
			}
		}
	}
	if !scatter["0"] || !scatter["1"] || !sawMerge {
		t.Fatalf("trace missing scatter/merge stages: scatter=%v merge=%v", scatter, sawMerge)
	}
}

func TestCoordinatorStatsAggregate(t *testing.T) {
	a := &fakeShard{
		results: []core.Result{{Table: 0, Score: 0.9}},
		stats:   core.Stats{Candidates: 3, Scored: 1, SigmaHits: 5, SigmaMisses: 2},
	}
	b := &fakeShard{
		results: []core.Result{{Table: 1, Score: 0.7}},
		stats:   core.Stats{Candidates: 2, Scored: 1, SigmaHits: 1, SigmaMisses: 4, Truncated: true},
	}
	coord := NewCoordinator(a, b)
	_, stats := coord.Search(context.Background(), core.Query{}, 10)
	if stats.Candidates != 5 || stats.Scored != 2 || stats.SigmaHits != 6 || stats.SigmaMisses != 6 {
		t.Fatalf("counters must sum across shards: %+v", stats)
	}
	if !stats.Truncated {
		t.Fatal("Truncated must OR across shards")
	}
}
