package server

// Fuzzing for the query-request JSON decoding path: arbitrary request
// bodies must never panic the server or produce a 5xx, and every response
// must be well-formed JSON. Seeds live in testdata/fuzz/ (checked in) plus
// the f.Add calls below; `go test -run '^Fuzz'` replays them as a
// regression suite, `go test -fuzz FuzzSearchRequestDecode` explores.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzSearchRequestDecode(f *testing.F) {
	f.Add(`{"query": "Ron Santo | Chicago Cubs", "k": 5}`)
	f.Add(`{"query": "Ron Santo; Ernie Banks"}`)
	f.Add(`{"query": ""}`)
	f.Add(`{"query": "x", "bogus": 1}`)
	f.Add(`{"k": -3}`)
	f.Add(`{"query": "Ron Santo", "k": 99999999}`)
	f.Add(`{"query": "res/santo", "keywords": "cubs"}`)
	f.Add(`not json at all`)
	f.Add(`{"query": 42}`)
	f.Add(`{"query": "\u0000\ufffd"}`)
	f.Add(``)
	f.Add(`[]`)
	f.Add(`{"query": "a|b|c|d|e|f\ng|h", "k": 1}` + strings.Repeat(" ", 64))

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range []string{"/search", "/hybrid"} {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("POST %s %q: status %d (must be 4xx, never 5xx):\n%s",
					path, body, rec.Code, rec.Body.String())
			}
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("POST %s %q: invalid JSON response:\n%s", path, body, rec.Body.String())
			}
			if rec.Code == http.StatusOK {
				var resp SearchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatalf("POST %s %q: 200 body not a SearchResponse: %v", path, body, err)
				}
			}
		}
	})
}

// FuzzKeywordRequestDecode covers the /keyword endpoint's independent
// decoder the same way.
func FuzzKeywordRequestDecode(f *testing.F) {
	f.Add(`{"q": "ernie banks"}`)
	f.Add(`{"q": "", "k": 2}`)
	f.Add(`{"q": 7}`)
	f.Add(`garbage`)
	f.Add(``)

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/keyword", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST /keyword %q: status %d:\n%s", body, rec.Code, rec.Body.String())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("POST /keyword %q: invalid JSON response:\n%s", body, rec.Body.String())
		}
	})
}
