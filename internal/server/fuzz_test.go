package server

// Fuzzing for the query-request JSON decoding path: arbitrary request
// bodies must never panic the server or produce a 5xx, and every response
// must be well-formed JSON. Seeds live in testdata/fuzz/ (checked in) plus
// the f.Add calls below; `go test -run '^Fuzz'` replays them as a
// regression suite, `go test -fuzz FuzzSearchRequestDecode` explores.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thetis/internal/remote"
)

func FuzzSearchRequestDecode(f *testing.F) {
	f.Add(`{"query": "Ron Santo | Chicago Cubs", "k": 5}`)
	f.Add(`{"query": "Ron Santo; Ernie Banks"}`)
	f.Add(`{"query": ""}`)
	f.Add(`{"query": "x", "bogus": 1}`)
	f.Add(`{"k": -3}`)
	f.Add(`{"query": "Ron Santo", "k": 99999999}`)
	f.Add(`{"query": "res/santo", "keywords": "cubs"}`)
	f.Add(`not json at all`)
	f.Add(`{"query": 42}`)
	f.Add(`{"query": "\u0000\ufffd"}`)
	f.Add(``)
	f.Add(`[]`)
	f.Add(`{"query": "a|b|c|d|e|f\ng|h", "k": 1}` + strings.Repeat(" ", 64))

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range []string{"/search", "/hybrid"} {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code >= 500 {
				t.Fatalf("POST %s %q: status %d (must be 4xx, never 5xx):\n%s",
					path, body, rec.Code, rec.Body.String())
			}
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("POST %s %q: invalid JSON response:\n%s", path, body, rec.Body.String())
			}
			if rec.Code == http.StatusOK {
				var resp SearchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatalf("POST %s %q: 200 body not a SearchResponse: %v", path, body, err)
				}
			}
		}
	})
}

// FuzzSearchBatchDecode covers POST /search/batch (docs/THROUGHPUT.md):
// arbitrary bodies must never panic or 5xx, and a 200 must decode as a
// BatchSearchResponse whose per-query results arrive in request order.
func FuzzSearchBatchDecode(f *testing.F) {
	f.Add(`{"queries": ["Ron Santo | Chicago Cubs"], "k": 5}`)
	f.Add(`{"queries": ["Ron Santo", "Ernie Banks | Chicago Cubs"]}`)
	f.Add(`{"queries": []}`)
	f.Add(`{"queries": ["Ron Santo", ""]}`)
	f.Add(`{"queries": [""]}`)
	f.Add(`{"queries": "Ron Santo"}`)
	f.Add(`{"queries": [42]}`)
	f.Add(`{"queries": ["a;b", "c|d\ne"], "k": -1}`)
	f.Add(`{"queries": ["Ron Santo"], "k": 99999999}`)
	f.Add(`{"queries": ["Ron Santo"], "bogus": true}`)
	f.Add(`{"query": "Ron Santo"}`) // single-search shape on the batch endpoint
	f.Add("{\"queries\": [\"\u0000\ufffd\"]}")
	f.Add(`not json at all`)
	f.Add(``)
	f.Add(`[]`)

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/search/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST /search/batch %q: status %d (must be 4xx/200, never 5xx):\n%s",
				body, rec.Code, rec.Body.String())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("POST /search/batch %q: invalid JSON response:\n%s", body, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			var resp BatchSearchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("POST /search/batch %q: 200 body not a BatchSearchResponse: %v", body, err)
			}
			var in BatchSearchRequest
			if err := json.Unmarshal([]byte(body), &in); err == nil && len(resp.Results) != len(in.Queries) {
				t.Fatalf("POST /search/batch %q: %d results for %d queries",
					body, len(resp.Results), len(in.Queries))
			}
		}
	})
}

// FuzzShardSearchDecode covers the scatter-leg endpoint POST /shard/search
// (docs/SHARDING.md §"Shard-over-HTTP"): its body is a CRC32C envelope
// around a remote.SearchRequest, so the decoder has two layers to confuse —
// the envelope (bad JSON, wrong checksum, truncated payload) and the
// payload (wrong types, absurd K, unknown URIs). Whatever arrives, the
// daemon must answer 4xx/200 with valid JSON — a coordinator retries 5xx,
// so a decode bug that 500s would turn one malformed request into a
// retry storm.
func FuzzShardSearchDecode(f *testing.F) {
	seal := func(v any) string {
		b, err := remote.Seal(v)
		if err != nil {
			f.Fatal(err)
		}
		return string(b)
	}
	// Well-formed legs: known and unknown entity URIs, forced full scan,
	// negative and huge K, empty tuples.
	f.Add(seal(remote.SearchRequest{Tuples: [][]string{{"res/santo", "res/cubs"}}, K: 5}))
	f.Add(seal(remote.SearchRequest{Tuples: [][]string{{"res/nobody"}}, K: 1, ForceFullScan: true}))
	f.Add(seal(remote.SearchRequest{Tuples: [][]string{{}}, K: -1}))
	f.Add(seal(remote.SearchRequest{K: 99999999}))
	f.Add(seal(remote.SearchRequest{Tuples: [][]string{{"\x00\ufffd"}}, K: 2}))
	// Envelope-layer garbage: no envelope, wrong checksum, truncated and
	// type-confused payloads.
	f.Add(`{"tuples": [["res/santo"]], "k": 3}`) // bare payload, no envelope
	f.Add(`{"crc32c": 0, "payload": {"k": 1}}`)  // checksum mismatch
	f.Add(`{"crc32c": 898466679, "payload": "not an object"}`)
	f.Add(`{"crc32c": "nan", "payload": null}`)
	f.Add(`not json at all`)
	f.Add(``)
	f.Add(seal([]int{1, 2, 3}))              // valid envelope, wrong payload shape
	f.Add(seal(map[string]any{"k": "five"})) // type confusion inside payload

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/shard/search", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST /shard/search %q: status %d (must be 4xx/200, never 5xx):\n%s",
				body, rec.Code, rec.Body.String())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("POST /shard/search %q: invalid JSON response:\n%s", body, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			// A 200 must be a verifiable envelope around a SearchPayload —
			// the client rejects anything else and would retry forever.
			var p remote.SearchPayload
			if err := remote.Open(rec.Body.Bytes(), &p); err != nil {
				t.Fatalf("POST /shard/search %q: 200 body not a sealed SearchPayload: %v", body, err)
			}
		}
	})
}

// FuzzKeywordRequestDecode covers the /keyword endpoint's independent
// decoder the same way.
func FuzzKeywordRequestDecode(f *testing.F) {
	f.Add(`{"q": "ernie banks"}`)
	f.Add(`{"q": "", "k": 2}`)
	f.Add(`{"q": 7}`)
	f.Add(`garbage`)
	f.Add(``)

	srv := New(demoSystem(f))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/keyword", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST /keyword %q: status %d:\n%s", body, rec.Code, rec.Body.String())
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("POST /keyword %q: invalid JSON response:\n%s", body, rec.Body.String())
		}
	})
}
