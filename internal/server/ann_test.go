package server

import (
	"net/http/httptest"
	"testing"

	"thetis"
)

// TestANNStatusEndpoint: /debug/ann reports the ANN serving state — off by
// default, and current with a populated graph once EnableAnnTopK ran.
func TestANNStatusEndpoint(t *testing.T) {
	ts := demoServer(t)
	body := getJSON(t, ts.URL+"/debug/ann", 200)
	if body["enabled"] != false {
		t.Fatalf("enabled = %v, want false", body["enabled"])
	}

	sys := demoSystem(t)
	sys.TrainEmbeddings(thetis.DefaultWalkConfig(), thetis.DefaultTrainConfig())
	sys.UseEmbeddingSimilarity()
	if err := sys.EnableAnnTopK(5, 32); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(sys))
	t.Cleanup(ts2.Close)
	body = getJSON(t, ts2.URL+"/debug/ann", 200)
	if body["enabled"] != true || body["current"] != true {
		t.Fatalf("status = %v, want enabled+current", body)
	}
	if body["top_k"].(float64) != 5 || body["ef_search"].(float64) != 32 {
		t.Fatalf("params = %v", body)
	}
	if body["graph_nodes"].(float64) <= 0 {
		t.Fatalf("graph_nodes = %v, want > 0", body["graph_nodes"])
	}
}
