package server

// Shard-over-HTTP endpoints (docs/SHARDING.md §"Shard-over-HTTP").
//
// Daemon side: a backend that can serve as a remote shard
// (RemoteShardHost — any *thetis.System) gets two extra routes mounted:
//
//	POST /shard/search     one scatter leg (CRC32C envelope both ways)
//	POST /shard/artifacts  global-artifact bootstrap from the coordinator
//
// Coordinator side: WithRemoteShardStatus replaces /readyz's index
// lifecycle with the remote-replica breaker breakdown — the coordinator
// has no local index to track, its readiness is whether every shard has a
// healthy replica.

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"thetis/internal/remote"
)

// RemoteShardHost is the optional serving surface of a daemon that can
// answer remote scatter legs (a *thetis.System; sharded and read-only
// backends deliberately do not implement it).
type RemoteShardHost interface {
	// ServeShardSearch answers one scatter leg in LOCAL table IDs.
	ServeShardSearch(ctx context.Context, req remote.SearchRequest) remote.SearchPayload
	// ApplyShardArtifacts installs the coordinator's global artifacts.
	ApplyShardArtifacts(a remote.Artifacts) error
}

// WithRemoteShardStatus mounts GET /readyz reporting the remote-shard
// replica breakdown snapshotted by fn (thetis.RemoteSharded.ShardStatuses).
// The deployment is ready when every shard has at least one closed-breaker
// replica, degraded otherwise — it still answers searches, just with
// Truncated prefixes missing the dead shards. Mutually exclusive with
// WithReadiness/WithShardReadiness.
func WithRemoteShardStatus(fn func() []remote.Status) Option {
	return func(s *Server) { s.remoteStatus = fn }
}

// maxShardBody bounds a /shard/* request body. Artifacts carry the whole
// corpus's informativeness table, so the cap matches the table-ingest one
// rather than the small search-request size.
const maxShardBody = 64 << 20

// handleShardSearch answers one remote scatter leg. Decode failures —
// malformed envelope, checksum mismatch from an in-flight bit flip,
// malformed payload — are the CLIENT's to retry, so they answer 400, never
// 500; the search itself cannot fail (panics are contained into Panicked
// stats by the backend).
func (s *Server) handleShardSearch(host RemoteShardHost) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		var req remote.SearchRequest
		if err := remote.Open(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		payload := host.ServeShardSearch(r.Context(), req)
		sealed, err := remote.Seal(payload)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(sealed)
	}
}

// handleShardArtifacts installs the coordinator's bootstrap payload.
// A rejected payload (bad index spec, no similarity selected) is 422: the
// request was well-formed but this daemon cannot honor it.
func (s *Server) handleShardArtifacts(host RemoteShardHost) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		var a remote.Artifacts
		if err := remote.Open(body, &a); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := host.ApplyShardArtifacts(a); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": true})
	}
}

// handleReadyRemote is handleReady's coordinator variant (see
// WithRemoteShardStatus): per-shard, per-replica breaker breakdown.
func (s *Server) handleReadyRemote(w http.ResponseWriter, r *http.Request) {
	statuses := s.remoteStatus()
	healthy := 0
	for _, st := range statuses {
		ok := false
		for _, rep := range st.Replicas {
			if rep.Breaker == "closed" {
				ok = true
				break
			}
		}
		if ok {
			healthy++
		}
	}
	state := StateReady
	if healthy < len(statuses) {
		state = StateDegraded
	}
	status := http.StatusOK
	if r.URL.Query().Get("full") == "1" && state != StateReady {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"state":  state.String(),
		"detail": fmt.Sprintf("%d/%d remote shards healthy", healthy, len(statuses)),
		"shards": statuses,
	})
}
