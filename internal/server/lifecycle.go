package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Run serves h on addr until ctx is cancelled, then shuts down gracefully:
// the listener closes immediately (no new connections) while in-flight
// requests get up to drain to finish via http.Server.Shutdown. drain <= 0
// waits indefinitely. The production daemon (cmd/thetisd) passes a
// signal.NotifyContext so SIGINT/SIGTERM drain instead of dropping queries
// mid-score.
func Run(ctx context.Context, addr string, h http.Handler, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, h, drain)
}

// Serve is Run over an existing listener (which it takes ownership of).
// It returns nil after a clean drain, the serve error if the listener
// fails, or a drain error when in-flight requests outlive the drain budget
// — in that case remaining connections are force-closed before returning.
func Serve(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) error {
	srv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}

	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := srv.Shutdown(sctx)
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	if err != nil {
		srv.Close() // drain budget exhausted: cut the stragglers
		return fmt.Errorf("shutdown drain: %w", err)
	}
	return nil
}
