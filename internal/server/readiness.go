package server

// Degraded-mode serving: the daemon binds its listener and answers searches
// immediately — brute force over the whole corpus, correct but slower —
// while the LSEI prefilter builds in the background (or after a corrupt
// snapshot was rejected). When the build finishes, the index is hot-swapped
// into the live System atomically and the daemon flips to ready. GET
// /readyz reports the lifecycle so orchestrators can route bulk traffic
// only at full capacity, while /healthz stays a pure liveness probe.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"thetis"
	"thetis/internal/obs"
)

// IndexState is the prefilter lifecycle phase reported on /readyz and the
// thetis_index_state gauge.
type IndexState int32

const (
	// StateBuilding: no index yet; the initial build is in progress and
	// searches run brute force.
	StateBuilding IndexState = iota
	// StateDegraded: the index snapshot was rejected (corrupt) or a build
	// failed; searches run brute force while a rebuild is attempted.
	StateDegraded
	// StateReady: the LSEI is active; searches are prefiltered.
	StateReady
)

func (s IndexState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateDegraded:
		return "degraded"
	case StateReady:
		return "ready"
	default:
		return fmt.Sprintf("IndexState(%d)", int32(s))
	}
}

// Readiness tracks the index lifecycle for one daemon. It is safe for
// concurrent use; the HTTP handlers read it while ActivateIndex's
// background build writes it.
type Readiness struct {
	state atomic.Int32
	gauge *obs.Gauge

	mu     sync.Mutex
	detail string
	since  time.Time
}

// NewReadiness creates a tracker in the building state, mirrored on the
// thetis_index_state gauge of r (obs.Default when nil).
func NewReadiness(r *obs.Registry) *Readiness {
	rd := &Readiness{gauge: obs.IndexState(r)}
	rd.Set(StateBuilding, "index build pending")
	return rd
}

// Set transitions the lifecycle, recording a human-readable detail.
func (rd *Readiness) Set(state IndexState, detail string) {
	rd.state.Store(int32(state))
	rd.gauge.Set(float64(state))
	rd.mu.Lock()
	rd.detail = detail
	rd.since = time.Now()
	rd.mu.Unlock()
}

// State returns the current lifecycle phase.
func (rd *Readiness) State() IndexState { return IndexState(rd.state.Load()) }

// Snapshot returns the phase with its detail and transition time.
func (rd *Readiness) Snapshot() (state IndexState, detail string, since time.Time) {
	state = rd.State()
	rd.mu.Lock()
	detail, since = rd.detail, rd.since
	rd.mu.Unlock()
	return state, detail, since
}

// ActivateIndex brings the system's LSEI online without blocking serving.
// A non-nil snapshot is tried first, synchronously: a valid one activates
// immediately (ready, no build). A corrupt snapshot is rejected — the
// typed atomicio.ErrCorruptSnapshot guarantee means a flipped byte can
// never load wrong — and the daemon enters degraded mode while a full
// rebuild runs in the background; with no snapshot it starts in building
// mode the same way. The background build constructs the index aside and
// hot-swaps it into sys atomically, then flips readiness to ready.
//
// The returned channel receives the terminal outcome (nil, or the build
// panic converted to an error) exactly once. A build panic is contained:
// counted on thetis_panics_total{site="build"}, state parked at degraded,
// daemon still serving brute force.
func ActivateIndex(sys *thetis.System, ready *Readiness, cfg thetis.IndexConfig, votes int, snapshot io.Reader) <-chan error {
	done := make(chan error, 1)
	if snapshot != nil {
		if err := sys.LoadIndex(snapshot); err == nil {
			sys.SetVotes(votes)
			ready.Set(StateReady, "index loaded from snapshot")
			done <- nil
			return done
		} else {
			ready.Set(StateDegraded, fmt.Sprintf("index snapshot rejected (%v); serving brute force while rebuilding", err))
		}
	} else {
		ready.Set(StateBuilding, "building index; serving brute force meanwhile")
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				obs.PanicsTotal(nil, "build").Inc()
				ready.Set(StateDegraded, fmt.Sprintf("index build panicked: %v; serving brute force", r))
				done <- fmt.Errorf("server: index build panicked: %v", r)
			}
		}()
		sys.BuildIndex(cfg)
		sys.SetVotes(votes)
		ready.Set(StateReady, "index built")
		done <- nil
	}()
	return done
}
