package server

// POST /search/batch endpoint tests (docs/THROUGHPUT.md): request-order
// responses that match sequential /search answers, all-or-nothing parse
// error composition naming the offending query, and the batch limits.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thetis"
)

// demoShardedSystem mirrors demoSystem over a 2-shard ShardedSystem.
func demoShardedSystem(tb testing.TB) *thetis.ShardedSystem {
	tb.Helper()
	g := thetis.NewGraph()
	triples := `
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam>   <rdfs:subClassOf> <onto/Organisation> .
<res/santo> <rdf:type> <onto/BaseballPlayer> .
<res/santo> <rdfs:label> "Ron Santo" .
<res/banks> <rdf:type> <onto/BaseballPlayer> .
<res/banks> <rdfs:label> "Ernie Banks" .
<res/cubs>  <rdf:type> <onto/BaseballTeam> .
<res/cubs>  <rdfs:label> "Chicago Cubs" .
`
	if err := thetis.LoadTriples(g, strings.NewReader(triples)); err != nil {
		tb.Fatal(err)
	}
	sys := thetis.NewShardedSystem(g, thetis.NewHashPartitioner(2))
	linker := thetis.NewDictionaryLinker(g)
	roster := thetis.NewTable("roster", []string{"Player", "Team"})
	roster.AppendValues("Ron Santo", "Chicago Cubs")
	thetis.LinkTable(roster, linker)
	sys.AddTable(roster)
	other := thetis.NewTable("profiles", []string{"Player"})
	other.AppendValues("Ernie Banks")
	thetis.LinkTable(other, linker)
	sys.AddTable(other)
	sys.UseTypeSimilarity()
	sys.BuildKeywordIndex()
	return sys
}

func newPost(path, body string) (*http.Request, *httptest.ResponseRecorder) {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req, httptest.NewRecorder()
}

func postBatch(t *testing.T, url, body string, wantStatus int) (BatchSearchResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/search/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	var out BatchSearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		var e map[string]any
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%v", e["error"])
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /search/batch status = %d, want %d (%s)", resp.StatusCode, wantStatus, buf.String())
	}
	return out, buf.String()
}

// TestBatchEndpointMatchesSequential checks that a batch answer is, query
// by query and in request order, the answer /search gives for the same
// query.
func TestBatchEndpointMatchesSequential(t *testing.T) {
	ts := demoServer(t)
	queries := []string{"Ron Santo | Chicago Cubs", "Ernie Banks", "Chicago Cubs"}
	body, _ := json.Marshal(map[string]any{"queries": queries, "k": 5})
	batch, _ := postBatch(t, ts.URL, string(body), http.StatusOK)
	if len(batch.Results) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch.Results), len(queries))
	}
	for i, q := range queries {
		single := postJSON(t, ts.URL+"/search", fmt.Sprintf(`{"query": %q, "k": 5}`, q), http.StatusOK)
		wantRaw, _ := json.Marshal(single["results"])
		gotRaw, _ := json.Marshal(batch.Results[i].Results)
		// Compare through JSON so the single endpoint's map shape and the
		// typed batch response normalize identically.
		var want, got []SearchResult
		if err := json.Unmarshal(wantRaw, &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(gotRaw, &got); err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %d (%q): batch %d results, sequential %d", i, q, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Errorf("query %d (%q) result %d: batch %+v, sequential %+v", i, q, j, got[j], want[j])
			}
		}
	}
}

// TestBatchEndpointErrorComposition checks the all-or-nothing contract: a
// bad query anywhere rejects the whole batch with 400 naming its index,
// and nothing about the well-formed queries leaks into the response.
func TestBatchEndpointErrorComposition(t *testing.T) {
	ts := demoServer(t)
	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"queries": ["Ron Santo", ""], "k": 3}`, "query 1"},
		{`{"queries": ["", "Ron Santo"], "k": 3}`, "query 0"},
		{`{"queries": ["Ron Santo", "res/unknown-entity-xyz"]}`, "query 1"},
		{`{"queries": []}`, "queries must not be empty"},
		{`{"queries": ["x"], "bogus": 1}`, "bad request body"},
	} {
		_, errMsg := postBatch(t, ts.URL, tc.body, http.StatusBadRequest)
		if !strings.Contains(errMsg, tc.want) {
			t.Errorf("body %s: error %q does not mention %q", tc.body, errMsg, tc.want)
		}
	}
}

// TestBatchEndpointLimit checks the batch-size bound: one request past
// maxBatchQueries is rejected before any parsing or scoring.
func TestBatchEndpointLimit(t *testing.T) {
	ts := demoServer(t)
	queries := make([]string, maxBatchQueries+1)
	for i := range queries {
		queries[i] = "Ron Santo"
	}
	body, _ := json.Marshal(map[string]any{"queries": queries})
	_, errMsg := postBatch(t, ts.URL, string(body), http.StatusBadRequest)
	if !strings.Contains(errMsg, "limit") {
		t.Errorf("oversized batch error = %q, want mention of the limit", errMsg)
	}
}

// TestBatchEndpointSharded runs the same endpoint against a ShardedSystem
// backend — the coordinator path with the context-planted batch σ cache.
func TestBatchEndpointSharded(t *testing.T) {
	sys := demoShardedSystem(t)
	srv := New(sys)
	queries := []string{"Ron Santo | Chicago Cubs", "Ernie Banks"}
	body, _ := json.Marshal(map[string]any{"queries": queries, "k": 5})
	req, rec := newPost("/search/batch", string(body))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded batch status = %d: %s", rec.Code, rec.Body.String())
	}
	var batch BatchSearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch.Results), len(queries))
	}
	for i, q := range queries {
		sreq, srec := newPost("/search", fmt.Sprintf(`{"query": %q, "k": 5}`, q))
		srv.ServeHTTP(srec, sreq)
		if srec.Code != http.StatusOK {
			t.Fatalf("sequential search status = %d", srec.Code)
		}
		var single SearchResponse
		if err := json.Unmarshal(srec.Body.Bytes(), &single); err != nil {
			t.Fatal(err)
		}
		if len(single.Results) != len(batch.Results[i].Results) {
			t.Fatalf("query %d (%q): batch %d results, sequential %d",
				i, q, len(batch.Results[i].Results), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j] != batch.Results[i].Results[j] {
				t.Errorf("query %d (%q) result %d: batch %+v, sequential %+v",
					i, q, j, batch.Results[i].Results[j], single.Results[j])
			}
		}
	}
}
