package server

// Per-shard degraded-mode serving (docs/SHARDING.md): a sharded daemon
// tracks one Readiness per shard, builds every shard's LSEI in the
// background, and hot-swaps each one independently — one shard can rebuild
// while the others keep answering prefiltered, and searches stay correct
// throughout because a shard without an index serves brute force.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"thetis"
	"thetis/internal/obs"
)

// NewShardReadinesses creates one lifecycle tracker per shard, each
// mirrored on thetis_shard_index_state{shard="i"} of r (obs.Default when
// nil). Pass the slice to WithShardReadiness and ActivateShardIndexes.
func NewShardReadinesses(r *obs.Registry, n int) []*Readiness {
	out := make([]*Readiness, n)
	for i := range out {
		rd := &Readiness{gauge: obs.ShardIndexState(r, strconv.Itoa(i))}
		rd.Set(StateBuilding, "shard index build pending")
		out[i] = rd
	}
	return out
}

// WithShardReadiness mounts GET /readyz aggregating per-shard index
// lifecycles: the overall state is the worst across shards (any degraded →
// degraded, else any building → building, else ready) and the response
// carries a per-shard breakdown. Mutually exclusive with WithReadiness.
func WithShardReadiness(rds []*Readiness) Option {
	return func(s *Server) { s.shardRd = rds }
}

// handleReadyShards is handleReady's sharded variant (see WithShardReadiness).
func (s *Server) handleReadyShards(w http.ResponseWriter, r *http.Request) {
	worst := StateReady
	shards := make([]map[string]any, len(s.shardRd))
	for i, rd := range s.shardRd {
		state, detail, since := rd.Snapshot()
		shards[i] = map[string]any{
			"shard":  i,
			"state":  state.String(),
			"detail": detail,
			"since":  since.UTC().Format(time.RFC3339Nano),
		}
		switch {
		case state == StateDegraded:
			worst = StateDegraded
		case state == StateBuilding && worst != StateDegraded:
			worst = StateBuilding
		}
	}
	status := http.StatusOK
	if r.URL.Query().Get("full") == "1" && worst != StateReady {
		status = http.StatusServiceUnavailable
	}
	ready := 0
	for _, rd := range s.shardRd {
		if rd.State() == StateReady {
			ready++
		}
	}
	writeJSON(w, status, map[string]any{
		"state":  worst.String(),
		"detail": fmt.Sprintf("%d/%d shards ready", ready, len(s.shardRd)),
		"shards": shards,
	})
}

// ActivateShardIndexes brings every shard's LSEI online without blocking
// serving: the global index preparation (PrepareIndex — one corpus scan
// for the shared frequent-type filter) runs synchronously, then each
// shard's build runs in its own goroutine and hot-swaps independently,
// flipping its Readiness to ready as it lands. Shards serve brute force
// until their swap, so the daemon answers correctly from the first
// request.
//
// A build panic is contained per shard: counted on
// thetis_panics_total{site="build"}, that shard parked at degraded (brute
// force), the other shards unaffected. The returned channel receives the
// terminal outcome exactly once — nil when every shard landed, or the
// first shard's error.
func ActivateShardIndexes(ss *thetis.ShardedSystem, rds []*Readiness, cfg thetis.IndexConfig, votes int) <-chan error {
	done := make(chan error, 1)
	ss.SetVotes(votes)
	ss.PrepareIndex(cfg)
	errs := make(chan error, len(rds))
	var wg sync.WaitGroup
	for i := range rds {
		rds[i].Set(StateBuilding, "building shard index; serving brute force meanwhile")
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					obs.PanicsTotal(nil, "build").Inc()
					rds[i].Set(StateDegraded, fmt.Sprintf("shard index build panicked: %v; serving brute force", r))
					errs <- fmt.Errorf("server: shard %d index build panicked: %v", i, r)
				}
			}()
			ss.BuildShardIndex(i)
			rds[i].Set(StateReady, "shard index built")
		}(i)
	}
	go func() {
		wg.Wait()
		select {
		case err := <-errs:
			done <- err
		default:
			done <- nil
		}
	}()
	return done
}
