// POST /search/batch (docs/THROUGHPUT.md): N queries answered against one
// corpus snapshot with batch-shared σ caching. Mounted only when the
// backend implements BatchBackend (System, ShardedSystem, and the
// -shard-urls RemoteSharded coordinator all do).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"thetis"
)

// BatchBackend is the optional batch-search surface. Per-query results
// come back in request order; stats are per query.
type BatchBackend interface {
	SearchBatchContext(ctx context.Context, queries []thetis.Query, k int) ([][]thetis.Result, []thetis.SearchStats)
}

// maxBatchQueries bounds one POST /search/batch request. A batch holds
// the serving read lock for its whole duration, so an unbounded batch
// would let one request monopolize the corpus snapshot.
const maxBatchQueries = 256

// BatchSearchRequest is the body of POST /search/batch.
type BatchSearchRequest struct {
	// Queries holds one textual query per element (System.ParseQuery
	// format: entities separated by "|", tuples by newline or ";").
	Queries []string `json:"queries"`
	// K is the per-query result count (default 10, capped at 1000).
	K int `json:"k,omitempty"`
}

// BatchSearchResponse is the body returned by POST /search/batch:
// one SearchResponse per query, in request order, plus the wall time of
// the whole batch.
type BatchSearchResponse struct {
	Results    []SearchResponse `json:"results"`
	TookMicros int64            `json:"took_us"`
	// Truncated reports that the batch was cut short by the per-request
	// deadline or a client cancellation; each element's own Truncated flag
	// is set too, and its Results are a correctly ranked prefix.
	Truncated bool `json:"truncated,omitempty"`
}

// parseBatchRequest decodes and validates a batch search request body.
// Validation is all-or-nothing: any empty or over-limit input rejects the
// whole batch with an error naming the offending query index, so partial
// batches are never silently executed (error composition,
// docs/THROUGHPUT.md).
func parseBatchRequest(r *http.Request) (BatchSearchRequest, error) {
	var req BatchSearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Queries) == 0 {
		return req, errors.New("queries must not be empty")
	}
	if len(req.Queries) > maxBatchQueries {
		return req, fmt.Errorf("batch holds %d queries, limit is %d", len(req.Queries), maxBatchQueries)
	}
	for i, q := range req.Queries {
		if strings.TrimSpace(q) == "" {
			return req, fmt.Errorf("query %d must not be empty", i)
		}
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 1000 {
		req.K = 1000
	}
	return req, nil
}

// handleSearchBatch serves POST /search/batch against bb. Parse errors —
// body decoding and per-query entity resolution alike — reject the whole
// batch with 400 before any scoring starts; execution-time degradation
// (deadline, cancellation) instead succeeds with per-query Truncated
// prefixes, mirroring POST /search.
func (s *Server) handleSearchBatch(bb BatchBackend) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parseBatchRequest(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		queries := make([]thetis.Query, len(req.Queries))
		for i, text := range req.Queries {
			q, err := s.sys.ParseQuery(strings.ReplaceAll(text, ";", "\n"))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			queries[i] = q
		}
		start := time.Now()
		results, stats := bb.SearchBatchContext(r.Context(), queries, req.K)
		resp := BatchSearchResponse{
			Results:    make([]SearchResponse, len(queries)),
			TookMicros: time.Since(start).Microseconds(),
		}
		for i := range queries {
			one := SearchResponse{
				Results:    make([]SearchResult, len(results[i])),
				Candidates: stats[i].Candidates,
				TookMicros: stats[i].TotalTime.Microseconds(),
				Truncated:  stats[i].Truncated,
			}
			for j, res := range results[i] {
				name := ""
				if t := s.sys.Table(res.Table); t != nil {
					name = t.Name
				}
				one.Results[j] = SearchResult{
					Table: int(res.Table),
					Name:  name,
					Score: res.Score,
				}
			}
			if one.Truncated {
				resp.Truncated = true
			}
			resp.Results[i] = one
		}
		writeJSON(w, http.StatusOK, resp)
	}
}
