package server

// Handler tests for the shard-over-HTTP endpoints (remote.go): the
// scatter-leg route, the artifact bootstrap route, the coordinator /readyz
// variant, and the read-only 405 mapping.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thetis"
	"thetis/internal/lake"
	"thetis/internal/remote"
)

func postSealed(t *testing.T, srv http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := remote.Seal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestRemoteShardSearchEndpoint(t *testing.T) {
	srv := New(demoSystem(t))
	rec := postSealed(t, srv, "/shard/search", remote.SearchRequest{
		Tuples: [][]string{{"res/santo", "res/cubs"}},
		K:      5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var p remote.SearchPayload
	if err := remote.Open(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("response not a sealed payload: %v", err)
	}
	if len(p.Results) == 0 {
		t.Fatal("known entities matched no tables")
	}
	if p.Results[0].Table != 0 { // the roster table is local table 0
		t.Fatalf("top result table %d, want 0", p.Results[0].Table)
	}
	if p.Stats.Scored == 0 {
		t.Fatalf("stats did not travel: %+v", p.Stats)
	}
}

func TestRemoteShardSearchEndpointRejectsCorruption(t *testing.T) {
	srv := New(demoSystem(t))
	body, err := remote.Seal(remote.SearchRequest{Tuples: [][]string{{"res/santo"}}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in flight: the daemon must answer 400 (the
	// client retries), never merge or 500.
	bad := bytes.Replace(body, []byte("santo"), []byte("sant0"), 1)
	req := httptest.NewRequest(http.MethodPost, "/shard/search", bytes.NewReader(bad))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupted leg answered %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "checksum") {
		t.Fatalf("error does not name the checksum: %s", rec.Body.String())
	}
}

func TestRemoteShardArtifactsEndpoint(t *testing.T) {
	sys := demoSystem(t)
	srv := New(sys)
	rec := postSealed(t, srv, "/shard/artifacts", remote.Artifacts{
		Informativeness: map[string]float64{"res/santo": 2.0},
		Votes:           2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	// A malformed envelope is the sender's fault: 400.
	req := httptest.NewRequest(http.MethodPost, "/shard/artifacts", strings.NewReader("junk"))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage artifacts answered %d, want 400", rec.Code)
	}
	// A well-formed payload the daemon cannot honor (invalid index spec)
	// is 422, so the coordinator's bootstrap fails loudly instead of
	// retrying a hopeless push.
	rec = postSealed(t, srv, "/shard/artifacts", remote.Artifacts{
		Votes: 1,
		Index: &remote.IndexSpec{Vectors: 7, BandSize: 10},
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad index spec answered %d, want 422", rec.Code)
	}
}

func TestRemoteShardReadyz(t *testing.T) {
	statuses := []remote.Status{
		{Shard: "0", Replicas: []remote.ReplicaStatus{{URL: "http://a", Breaker: "closed"}}},
		{Shard: "1", Replicas: []remote.ReplicaStatus{
			{URL: "http://b", Breaker: "open"},
			{URL: "http://b2", Breaker: "closed"},
		}},
	}
	srv := New(demoSystem(t), WithRemoteShardStatus(func() []remote.Status { return statuses }))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"ready"`) || !strings.Contains(rec.Body.String(), "2/2") {
		t.Fatalf("healthy fleet not reported ready: %s", rec.Body.String())
	}
	// Shard 1 loses its last healthy replica: degraded, and ?full=1
	// flips to 503 so orchestrators can hold traffic.
	statuses[1].Replicas[1].Breaker = "open"
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("degraded fleet: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz?full=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz?full=1 on degraded fleet = %d, want 503", rec.Code)
	}
}

// readOnlyBackend wraps the demo system with mutations rejected the way
// thetis.RemoteSharded rejects them.
type readOnlyBackend struct{ *thetis.System }

func (readOnlyBackend) AddTableJSON(data []byte) (lake.TableID, error) {
	return 0, thetis.ErrReadOnly
}
func (readOnlyBackend) RemoveTable(id lake.TableID) error { return thetis.ErrReadOnly }

func TestReadOnlyMutationsAnswer405(t *testing.T) {
	srv := New(readOnlyBackend{demoSystem(t)})
	req := httptest.NewRequest(http.MethodPost, "/tables", strings.NewReader(`{"name":"x"}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /tables on read-only backend = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/tables/0", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /tables/0 on read-only backend = %d, want 405", rec.Code)
	}
}

// TestRemoteShardEndpointsAbsentOnNonHosts pins the mounting rule: only
// backends that implement RemoteShardHost expose /shard/*; a facade that
// hides it (like readOnlyBackend embedding the system behind an
// interface) does not accidentally inherit the routes.
func TestRemoteShardEndpointsOnlyForHosts(t *testing.T) {
	var _ RemoteShardHost = (*thetis.System)(nil) // the daemon case, compile-checked

	type plainBackend struct{ Backend }
	srv := New(plainBackend{demoSystem(t)})
	rec := postSealed(t, srv, "/shard/search", remote.SearchRequest{K: 1})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/shard/search on a non-host backend = %d, want 404", rec.Code)
	}
}
