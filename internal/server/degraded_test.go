package server

// Degraded-mode serving and panic-containment tests (acceptance criteria of
// the fault-tolerant data plane): a corrupt snapshot is rejected but the
// daemon keeps serving correct brute-force results until the background
// rebuild hot-swaps a fresh index in; panics in handlers become 500s and a
// counter, never a dead process.

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"thetis"
	"thetis/internal/atomicio"
	"thetis/internal/obs"
)

var degradedCfg = thetis.IndexConfig{Vectors: 16, BandSize: 4, Seed: 1}

// indexSnapshot builds and serializes a valid LSEI snapshot for the demo
// system's corpus.
func indexSnapshot(t *testing.T) []byte {
	t.Helper()
	sys := demoSystem(t)
	sys.BuildIndex(degradedCfg)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func searchTop(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	out := postJSON(t, ts.URL+"/search", searchBody, http.StatusOK)
	results := out["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no search results")
	}
	return results[0].(map[string]any)["name"].(string)
}

// TestReadyzContract: /readyz answers 200 in every state (degraded still
// serves correct results), while ?full=1 answers 503 until ready.
func TestReadyzContract(t *testing.T) {
	ready := NewReadiness(obs.NewRegistry())
	sys := demoSystem(t)
	ts := httptest.NewServer(New(sys, WithReadiness(ready)))
	t.Cleanup(ts.Close)

	for _, tc := range []struct {
		state    IndexState
		fullCode int
	}{
		{StateBuilding, http.StatusServiceUnavailable},
		{StateDegraded, http.StatusServiceUnavailable},
		{StateReady, http.StatusOK},
	} {
		ready.Set(tc.state, "test transition")
		out := getJSON(t, ts.URL+"/readyz", http.StatusOK)
		if out["state"] != tc.state.String() || out["detail"] != "test transition" {
			t.Errorf("readyz in %v = %v", tc.state, out)
		}
		getJSON(t, ts.URL+"/readyz?full=1", tc.fullCode)
		// Every state serves correct results.
		if top := searchTop(t, ts); top != "roster" {
			t.Errorf("state %v: top result = %q, want roster", tc.state, top)
		}
	}
}

// TestActivateIndexValidSnapshot: an intact snapshot activates synchronously
// — ready before ActivateIndex even returns, no background build.
func TestActivateIndexValidSnapshot(t *testing.T) {
	snap := indexSnapshot(t)
	sys := demoSystem(t)
	ready := NewReadiness(obs.NewRegistry())
	done := ActivateIndex(sys, ready, degradedCfg, 1, bytes.NewReader(snap))
	if ready.State() != StateReady {
		t.Fatalf("state after valid snapshot = %v, want ready", ready.State())
	}
	if !sys.HasIndex() {
		t.Fatal("no index active after snapshot load")
	}
	if err := <-done; err != nil {
		t.Fatalf("done = %v", err)
	}
}

// TestActivateIndexCorruptSnapshot is the degraded-mode acceptance path: a
// snapshot with one flipped byte is rejected (typed corruption, never a
// wrong load), the daemon keeps serving correct brute-force results, and the
// background rebuild eventually flips /readyz to ready with searches intact.
func TestActivateIndexCorruptSnapshot(t *testing.T) {
	snap := indexSnapshot(t)
	snap[len(snap)/2] ^= 0x40

	// The loader itself reports typed corruption and leaves no index.
	sys := demoSystem(t)
	if err := sys.LoadIndex(bytes.NewReader(snap)); !errors.Is(err, atomicio.ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot load: %v, want ErrCorruptSnapshot", err)
	}
	if sys.HasIndex() {
		t.Fatal("corrupt snapshot installed an index")
	}

	ready := NewReadiness(obs.NewRegistry())
	ts := httptest.NewServer(New(sys, WithReadiness(ready)))
	t.Cleanup(ts.Close)

	done := ActivateIndex(sys, ready, degradedCfg, 1, bytes.NewReader(snap))
	// The rejection is synchronous: by the time ActivateIndex returns the
	// daemon is past building — degraded (brute force), or already ready if
	// the rebuild won the race. Either way searches are correct.
	if st := ready.State(); st == StateBuilding {
		t.Fatalf("state after corrupt snapshot = %v", st)
	}
	if top := searchTop(t, ts); top != "roster" {
		t.Errorf("degraded-mode top result = %q, want roster", top)
	}

	if err := <-done; err != nil {
		t.Fatalf("background rebuild: %v", err)
	}
	if ready.State() != StateReady || !sys.HasIndex() {
		t.Fatalf("after rebuild: state=%v hasIndex=%v", ready.State(), sys.HasIndex())
	}
	out := getJSON(t, ts.URL+"/readyz?full=1", http.StatusOK)
	if out["state"] != "ready" {
		t.Errorf("readyz after rebuild = %v", out)
	}
	// Index-backed results match a never-degraded system's.
	fresh := demoSystem(t)
	fresh.BuildIndex(degradedCfg)
	q, err := sys.ParseQuery("Ron Santo | Chicago Cubs")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sys.Search(q, 5), fresh.Search(q, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("post-rebuild results differ:\n got %v\nwant %v", got, want)
	}
}

// TestActivateIndexNoSnapshot: without a snapshot the daemon starts in
// building state and flips to ready when the background build lands.
func TestActivateIndexNoSnapshot(t *testing.T) {
	sys := demoSystem(t)
	ready := NewReadiness(obs.NewRegistry())
	done := ActivateIndex(sys, ready, degradedCfg, 1, nil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ready.State() != StateReady || !sys.HasIndex() {
		t.Fatalf("state=%v hasIndex=%v", ready.State(), sys.HasIndex())
	}
}

// TestFaultBuildPanicContained: a panicking index build (here: no similarity
// selected) is recovered, counted, and parks the daemon in degraded mode —
// still serving — instead of killing the process.
func TestFaultBuildPanicContained(t *testing.T) {
	g := thetis.NewGraph()
	sys := thetis.New(g) // no UseTypeSimilarity: BuildIndex will panic
	ready := NewReadiness(obs.NewRegistry())
	done := ActivateIndex(sys, ready, degradedCfg, 1, nil)
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("done = %v, want contained panic", err)
	}
	if ready.State() != StateDegraded {
		t.Fatalf("state after build panic = %v, want degraded", ready.State())
	}
}

// TestFaultHTTPPanicContained: a handler panic becomes a 500 with a JSON
// error body and increments thetis_panics_total{site="http"}; the server
// keeps answering afterwards.
func TestFaultHTTPPanicContained(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(demoSystem(t), WithRegistry(reg))
	poisoned := true
	srv.testHookRequest = func(r *http.Request) {
		if poisoned && r.URL.Path == "/search" {
			poisoned = false
			panic("poisoned request")
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	out := postJSON(t, ts.URL+"/search", searchBody, http.StatusInternalServerError)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "internal error") {
		t.Errorf("panic response body = %v", out)
	}
	if n := scrapeCounter(t, reg, `thetis_panics_total{site="http"}`); n != 1 {
		t.Errorf("thetis_panics_total = %d, want 1", n)
	}
	// The server survived: the next request succeeds.
	if top := searchTop(t, ts); top != "roster" {
		t.Errorf("post-panic top result = %q", top)
	}
}
