package server

// Endpoint tests for live mutation: POST /tables, DELETE /tables/{id}, and
// the epoch surfaced on /stats (docs/LIVE_INDEX.md).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

const newTableJSON = `{"name":"legends","attributes":["Player","Team"],` +
	`"rows":[[{"v":"Ernie Banks","e":"res/banks"},{"v":"Chicago Cubs","e":"res/cubs"}]]}`

func doJSON(t *testing.T, method, url, body string, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s status = %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAddTableEndpoint(t *testing.T) {
	ts := demoServer(t)
	before := getJSON(t, ts.URL+"/stats", http.StatusOK)
	out := doJSON(t, http.MethodPost, ts.URL+"/tables", newTableJSON, http.StatusCreated)
	id, ok := out["id"].(float64)
	if !ok {
		t.Fatalf("POST /tables response lacks numeric id: %v", out)
	}
	if out["epoch"].(float64) <= before["epoch"].(float64) {
		t.Fatalf("epoch did not advance on add: %v -> %v", before["epoch"], out["epoch"])
	}
	// The new table is immediately visible and searchable.
	got := getJSON(t, ts.URL+"/tables/"+strconv.Itoa(int(id)), http.StatusOK)
	if got["name"] != "legends" {
		t.Fatalf("GET of new table returned %v", got)
	}
	hits := postJSON(t, ts.URL+"/search", `{"query":"Ernie Banks","k":5}`, http.StatusOK)
	found := false
	for _, r := range hits["results"].([]any) {
		if r.(map[string]any)["table"].(float64) == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("semantic search does not find the added table: %v", hits["results"])
	}
	after := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if after["tables"].(float64) != before["tables"].(float64)+1 {
		t.Fatalf("table count %v, want %v", after["tables"], before["tables"].(float64)+1)
	}
}

func TestAddTableEndpointRejectsBadBody(t *testing.T) {
	ts := demoServer(t)
	doJSON(t, http.MethodPost, ts.URL+"/tables", `{not json`, http.StatusBadRequest)
	// Structurally invalid: row arity does not match the attributes.
	doJSON(t, http.MethodPost, ts.URL+"/tables",
		`{"name":"ragged","attributes":["A"],"rows":[[{"v":"a"},{"v":"b"}]]}`, http.StatusBadRequest)
}

func TestRemoveTableEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := doJSON(t, http.MethodPost, ts.URL+"/tables", newTableJSON, http.StatusCreated)
	id := strconv.Itoa(int(out["id"].(float64)))
	del := doJSON(t, http.MethodDelete, ts.URL+"/tables/"+id, "", http.StatusOK)
	if del["epoch"].(float64) <= out["epoch"].(float64) {
		t.Fatalf("epoch did not advance on remove: %v -> %v", out["epoch"], del["epoch"])
	}
	// Gone from reads; repeat deletes and bad IDs are clean 404s, not 500s.
	getJSON(t, ts.URL+"/tables/"+id, http.StatusNotFound)
	doJSON(t, http.MethodDelete, ts.URL+"/tables/"+id, "", http.StatusNotFound)
	doJSON(t, http.MethodDelete, ts.URL+"/tables/99999", "", http.StatusNotFound)
	doJSON(t, http.MethodDelete, ts.URL+"/tables/banana", "", http.StatusNotFound)
}
