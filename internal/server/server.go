// Package server exposes a configured Thetis system over HTTP with a small
// JSON API, turning the library into the data-discovery service the paper's
// system (and any production deployment) ultimately is:
//
//	GET  /healthz           liveness probe
//	GET  /readyz            index lifecycle (WithReadiness/WithShardReadiness)
//	GET  /stats             corpus and KG statistics
//	GET  /tables/{id}       one table (name, attributes, rows, categories)
//	POST /tables            live ingestion of one annotated-JSON table
//	DELETE /tables/{id}     live removal (docs/LIVE_INDEX.md)
//	POST /search            semantic search  {"query": "...", "k": 10}
//	POST /search/batch      batched semantic search {"queries": [...], "k": 10}
//	POST /keyword           BM25 keyword search {"q": "...", "k": 10}
//	POST /hybrid            BM25-complemented semantic search
//	GET  /metrics           Prometheus text-format metrics
//	GET  /debug/trace       per-stage breakdown of one search (?query=…&k=…)
//	GET  /debug/ann         ANN top-k σ serving state (docs/ANN.md)
//	GET  /debug/ingest      quarantine summary of the corpus load (WithIngestReport)
//	GET  /debug/pprof/*     runtime profiles (opt-in via WithPprof)
//
// The backend behind the handlers is the Backend interface: a single
// *thetis.System or a *thetis.ShardedSystem (thetisd -shards) — scatter-
// gather is invisible at the HTTP surface except for shard labels in
// /debug/trace, thetis_shard_* metrics, and /readyz's per-shard breakdown.
//
// Queries use the textual format of System.ParseQuery: entities separated
// by "|", tuples by newlines (or ";"). Every endpoint is instrumented with
// request/error counters and a latency histogram (docs/OBSERVABILITY.md).
//
// The search-type endpoints (/search, /keyword, /hybrid, /debug/trace) run
// behind a request-lifecycle guard: an optional bounded-concurrency
// semaphore that sheds excess load with 429 + Retry-After
// (WithMaxInFlight), and an optional per-request deadline
// (WithSearchTimeout) under which an expiring search returns its
// best-effort partial ranking marked "truncated" rather than an error.
// Run/Serve provide the production harness with signal-driven graceful
// shutdown that drains in-flight queries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"thetis"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/remote"
)

// Backend is the serving surface the HTTP layer needs: the query/search/
// corpus/mutation methods shared by thetis.System (single-node) and
// thetis.ShardedSystem (scatter-gather, thetisd -shards). Both satisfy it
// structurally; the handlers never know which one answers.
type Backend interface {
	ParseQuery(text string) (thetis.Query, error)
	SearchStatsContext(ctx context.Context, q thetis.Query, k int) ([]thetis.Result, thetis.SearchStats)
	KeywordSearch(text string, k int) []thetis.TableID
	HybridSearchContext(ctx context.Context, q thetis.Query, keywords string, k int) []thetis.TableID
	Stats() lake.Stats
	GraphCounts() thetis.GraphCounts
	NumTables() int
	Table(id thetis.TableID) *thetis.Table
	AddTableJSON(data []byte) (thetis.TableID, error)
	RemoveTable(id thetis.TableID) error
	IndexEpoch() uint64
}

// AnnBackend is the optional ANN-serving surface (docs/ANN.md). Backends
// that support top-k σ — System and ShardedSystem both do — get a
// GET /debug/ann endpoint reporting graph size, build epoch, and whether
// searches are currently served approximately or in exact-σ fallback.
type AnnBackend interface {
	AnnStatus() thetis.AnnStatus
}

// Server is an http.Handler serving one Thetis backend. The underlying
// system must be fully configured (similarity selected; keyword index built
// when the keyword/hybrid endpoints are used) and must not be mutated while
// serving (per-shard index hot-swaps excepted).
type Server struct {
	sys     Backend
	mux     *http.ServeMux
	reg     *obs.Registry
	pprof   bool
	timeout time.Duration
	sem     chan struct{}
	ready   *Readiness
	shardRd []*Readiness
	ingest  *obs.IngestReport

	// remoteStatus, when set (WithRemoteShardStatus), snapshots the
	// remote-shard replica breakdown for the coordinator's /readyz.
	remoteStatus func() []remote.Status

	// testHookRequest, when set, runs inside the lifecycle guard of every
	// search-type request — after semaphore admission and deadline
	// arming, before the handler. Tests use it to hold requests in flight
	// deterministically.
	testHookRequest func(*http.Request)
}

// Option configures a Server.
type Option func(*Server)

// WithPprof mounts net/http/pprof's profile handlers under /debug/pprof/.
// Off by default: profiles expose internals and cost CPU while running, so
// deployments opt in (thetisd -pprof).
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithRegistry serves r on /metrics instead of obs.Default. The search
// pipeline's own metrics always live on obs.Default, so overriding the
// registry detaches /metrics from them — useful mainly in tests.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.reg = r }
}

// WithSearchTimeout bounds every search-type request (/search, /keyword,
// /hybrid, /debug/trace) to d: the request context gets a deadline, the
// search pipeline cooperatively truncates when it expires, and the response
// carries the partial ranking with "truncated": true. d <= 0 leaves
// requests unbounded (the default).
func WithSearchTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithMaxInFlight admits at most n search-type requests concurrently;
// excess load is shed immediately with 429 Too Many Requests and a
// Retry-After header instead of queueing into memory. n <= 0 disables
// shedding (the default).
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		} else {
			s.sem = nil
		}
	}
}

// WithReadiness mounts GET /readyz reporting the index lifecycle tracked
// by rd (see ActivateIndex). Without it, /readyz is not served: a system
// configured synchronously is ready whenever it is alive, and /healthz
// already says so.
func WithReadiness(rd *Readiness) Option {
	return func(s *Server) { s.ready = rd }
}

// WithIngestReport mounts GET /debug/ingest serving the quarantine
// summary of the corpus load (accepted/skipped counts plus a bounded
// sample of rejected records).
func WithIngestReport(ir *obs.IngestReport) Option {
	return func(s *Server) { s.ingest = ir }
}

// New wraps a configured backend (a *thetis.System or *thetis.ShardedSystem).
func New(sys Backend, opts ...Option) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux(), reg: obs.Default}
	for _, opt := range opts {
		opt(s)
	}
	s.handle("GET", "/healthz", s.handleHealth)
	if s.ready != nil || s.shardRd != nil || s.remoteStatus != nil {
		s.handle("GET", "/readyz", s.handleReady)
	}
	if s.ingest != nil {
		s.handle("GET", "/debug/ingest", s.handleIngest)
	}
	s.handle("GET", "/stats", s.handleStats)
	s.handle("GET", "/tables/{id}", s.handleTable)
	s.handle("POST", "/tables", s.handleAddTable)
	s.handle("DELETE", "/tables/{id}", s.handleRemoveTable)
	s.handle("POST", "/search", s.guard("/search", s.handleSearch))
	if bb, ok := s.sys.(BatchBackend); ok {
		s.handle("POST", "/search/batch", s.guard("/search/batch", s.handleSearchBatch(bb)))
	}
	s.handle("POST", "/keyword", s.guard("/keyword", s.handleKeyword))
	s.handle("POST", "/hybrid", s.guard("/hybrid", s.handleHybrid))
	s.handle("GET", "/debug/trace", s.guard("/debug/trace", s.handleTrace))
	if ab, ok := s.sys.(AnnBackend); ok {
		s.handle("GET", "/debug/ann", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, ab.AnnStatus())
		})
	}
	if host, ok := s.sys.(RemoteShardHost); ok {
		s.handle("POST", "/shard/search", s.handleShardSearch(host))
		s.handle("POST", "/shard/artifacts", s.handleShardArtifacts(host))
	}
	s.mux.Handle("GET /metrics", s.reg.Handler())
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// statusWriter captures the response status for the error counter, and
// whether anything was written yet (so panic recovery knows if a 500 can
// still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// handle mounts an instrumented handler: per-endpoint request count, error
// count (status >= 400), and latency histogram. The endpoint label is the
// route pattern, so /tables/{id} stays one series regardless of id.
//
// It also contains handler panics: a panicking request is recovered into a
// 500 (when the response has not started) and counted on
// thetis_panics_total{site="http"} instead of tearing down the connection
// — one poisoned request must not degrade the daemon.
func (s *Server) handle(method, pattern string, h http.HandlerFunc) {
	requests := obs.HTTPRequestsTotal(s.reg, pattern)
	errCount := obs.HTTPErrorsTotal(s.reg, pattern)
	latency := obs.HTTPRequestSeconds(s.reg, pattern)
	panics := obs.PanicsTotal(s.reg, "http")
	s.mux.HandleFunc(method+" "+pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				panics.Inc()
				if sw.wrote {
					// Mid-stream panic: the status is already on the wire;
					// record the failure for the error counter only.
					sw.status = http.StatusInternalServerError
				} else {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", rec))
				}
			}
			latency.Observe(time.Since(start).Seconds())
			requests.Inc()
			if sw.status >= 400 {
				errCount.Inc()
			}
		}()
		h(sw, r)
	})
}

// errBusy is the 429 body when the in-flight limit sheds a request.
var errBusy = errors.New("server at capacity, retry later")

// guard wraps a search-type handler with the request lifecycle: semaphore
// admission (shed with 429 + Retry-After when full), the in-flight gauge,
// and the per-request deadline. After the handler returns, the context's
// fate feeds the timeout/cancellation counters. The instrumentation of
// handle() stays outermost, so sheds are counted as requests and errors.
func (s *Server) guard(pattern string, h http.HandlerFunc) http.HandlerFunc {
	shed := obs.HTTPShedTotal(s.reg, pattern)
	timeouts := obs.HTTPTimeoutsTotal(s.reg, pattern)
	cancels := obs.HTTPCancellationsTotal(s.reg, pattern)
	inflight := obs.HTTPInFlight(s.reg)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				shed.Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, errBusy)
				return
			}
		}
		inflight.Add(1)
		defer inflight.Add(-1)
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.testHookRequest != nil {
			s.testHookRequest(r)
		}
		h(w, r)
		switch ctx.Err() {
		case context.DeadlineExceeded:
			timeouts.Inc()
		case context.Canceled:
			cancels.Inc()
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SearchRequest is the body of POST /search and /hybrid.
type SearchRequest struct {
	// Query holds entity tuples: entities separated by "|", tuples by
	// newline or ";".
	Query string `json:"query"`
	// K is the number of results (default 10).
	K int `json:"k,omitempty"`
	// Keywords overrides the BM25 keywords for /hybrid (default: the query
	// text with separators stripped).
	Keywords string `json:"keywords,omitempty"`
}

// SearchResult is one result row.
type SearchResult struct {
	Table int     `json:"table"`
	Name  string  `json:"name"`
	Score float64 `json:"score,omitempty"`
}

// SearchResponse is the body returned by the search endpoints.
type SearchResponse struct {
	Results []SearchResult `json:"results"`
	// Candidates and ScoredTables report search effort (semantic only).
	Candidates int `json:"candidates,omitempty"`
	// TookMicros is the server-side search duration.
	TookMicros int64 `json:"took_us"`
	// Truncated marks a search cut short by the per-request deadline (or a
	// client cancellation): Results is the correctly ranked prefix of
	// tables scored before the cutoff — the well-formed timeout response,
	// not an error.
	Truncated bool `json:"truncated,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady reports the index lifecycle (building | degraded | ready).
// The daemon serves correct results in every state — degraded just means
// brute-force scans — so /readyz answers 200 with the state by default.
// Orchestrators that should route traffic only at full capacity can ask
// with ?full=1, which answers 503 until the state is ready.
//
// Sharded daemons (WithShardReadiness) report the worst state across
// shards — ready only when every shard is — plus a per-shard breakdown,
// since each shard's index builds and hot-swaps independently.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.shardRd != nil {
		s.handleReadyShards(w, r)
		return
	}
	if s.remoteStatus != nil {
		s.handleReadyRemote(w, r)
		return
	}
	state, detail, since := s.ready.Snapshot()
	status := http.StatusOK
	if r.URL.Query().Get("full") == "1" && state != StateReady {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"state":  state.String(),
		"detail": detail,
		"since":  since.UTC().Format(time.RFC3339Nano),
	})
}

// handleIngest serves the quarantine summary of the corpus load: per-kind
// accepted/skipped counts and a bounded sample of rejected records.
func (s *Server) handleIngest(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ingest.Summary())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Stats()
	// GraphCounts snapshots the KG counters under the backend's serving
	// lock, so /stats never races a POST /tables interning new entities.
	g := s.sys.GraphCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"tables":        st.Tables,
		"mean_rows":     st.MeanRows,
		"mean_columns":  st.MeanColumns,
		"mean_coverage": st.MeanCoverage,
		"entities":      g.Entities,
		"types":         g.Types,
		"predicates":    g.Predicates,
		"edges":         g.Edges,
		"epoch":         s.sys.IndexEpoch(),
	})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	// A nil table covers unassigned IDs AND removed (tombstoned) ones —
	// live mutation means "id < NumTables" is no longer the liveness test.
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", r.PathValue("id")))
		return
	}
	t := s.sys.Table(thetis.TableID(id))
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", r.PathValue("id")))
		return
	}
	rows := make([][]string, t.NumRows())
	for i, row := range t.Rows {
		cells := make([]string, len(row))
		for j, c := range row {
			cells[j] = c.Value
		}
		rows[i] = cells
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         id,
		"name":       t.Name,
		"attributes": t.Attributes,
		"rows":       rows,
		"categories": t.Categories,
		"coverage":   t.LinkCoverage(),
	})
}

// maxTableBody bounds a POST /tables body; it matches the delta log's
// per-record payload cap so anything accepted here is also loggable.
const maxTableBody = 64 << 20

// handleAddTable ingests one table in the annotated JSON interchange
// format (the same one-object-per-line layout as JSONL corpora) and folds
// it into every live index. Responds 201 with the assigned ID and the new
// corpus epoch.
func (s *Server) handleAddTable(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTableBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	id, err := s.sys.AddTableJSON(body)
	if err != nil {
		if errors.Is(err, thetis.ErrReadOnly) {
			writeError(w, http.StatusMethodNotAllowed, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad table: %w", err))
		}
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":    int(id),
		"epoch": s.sys.IndexEpoch(),
	})
}

// handleRemoveTable removes a table from the corpus and every live index.
// The ID is tombstoned, never reused; a second DELETE answers 404.
func (s *Server) handleRemoveTable(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", r.PathValue("id")))
		return
	}
	if err := s.sys.RemoveTable(thetis.TableID(id)); err != nil {
		switch {
		case errors.Is(err, thetis.ErrNoSuchTable):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, thetis.ErrReadOnly):
			writeError(w, http.StatusMethodNotAllowed, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"removed": id,
		"epoch":   s.sys.IndexEpoch(),
	})
}

// parseRequest decodes and validates a search request body.
func parseRequest(r *http.Request) (SearchRequest, error) {
	var req SearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("query must not be empty")
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 1000 {
		req.K = 1000
	}
	return req, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(strings.ReplaceAll(req.Query, ";", "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, stats := s.sys.SearchStatsContext(r.Context(), q, req.K)
	resp := SearchResponse{
		Results:    make([]SearchResult, len(results)),
		Candidates: stats.Candidates,
		TookMicros: stats.TotalTime.Microseconds(),
		Truncated:  stats.Truncated,
	}
	for i, res := range results {
		resp.Results[i] = SearchResult{
			Table: int(res.Table),
			Name:  s.sys.Table(res.Table).Name,
			Score: res.Score,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Q string `json:"q"`
		K int    `json:"k,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Q) == "" {
		writeError(w, http.StatusBadRequest, errors.New("body must be {\"q\": \"keywords\"}"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	ids := s.sys.KeywordSearch(req.Q, req.K)
	resp := SearchResponse{Results: make([]SearchResult, len(ids))}
	for i, id := range ids {
		resp.Results[i] = SearchResult{Table: int(id), Name: s.sys.Table(id).Name}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHybrid(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(strings.ReplaceAll(req.Query, ";", "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	keywords := req.Keywords
	if keywords == "" {
		keywords = strings.NewReplacer("|", " ", ";", " ", "\n", " ").Replace(req.Query)
	}
	ids := s.sys.HybridSearchContext(r.Context(), q, keywords, req.K)
	resp := SearchResponse{Results: make([]SearchResult, len(ids))}
	for i, id := range ids {
		resp.Results[i] = SearchResult{Table: int(id), Name: s.sys.Table(id).Name}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace runs one search and returns its per-stage breakdown as JSON:
//
//	GET /debug/trace?query=res%2Fa%20%7C%20res%2Fb&k=10
//
// The response carries the obs.Trace (stage names, wall/CPU microseconds,
// item counts) plus the result and candidate counts, without the result
// list itself — it is a diagnostics endpoint, not a search endpoint.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	text := r.URL.Query().Get("query")
	if strings.TrimSpace(text) == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing ?query= parameter"))
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
		if v > 1000 {
			v = 1000
		}
		k = v
	}
	q, err := s.sys.ParseQuery(strings.ReplaceAll(text, ";", "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, stats := s.sys.SearchStatsContext(r.Context(), q, k)
	writeJSON(w, http.StatusOK, map[string]any{
		"trace":      stats.Trace,
		"candidates": stats.Candidates,
		"scored":     stats.Scored,
		"results":    len(results),
		"truncated":  stats.Truncated,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
