// Package server exposes a configured Thetis system over HTTP with a small
// JSON API, turning the library into the data-discovery service the paper's
// system (and any production deployment) ultimately is:
//
//	GET  /healthz           liveness probe
//	GET  /stats             corpus and KG statistics
//	GET  /tables/{id}       one table (name, attributes, rows, categories)
//	POST /search            semantic search  {"query": "...", "k": 10}
//	POST /keyword           BM25 keyword search {"q": "...", "k": 10}
//	POST /hybrid            BM25-complemented semantic search
//
// Queries use the textual format of System.ParseQuery: entities separated
// by "|", tuples by newlines (or ";").
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"thetis"
)

// Server is an http.Handler serving one Thetis system. The underlying
// System must be fully configured (similarity selected; keyword index built
// when the keyword/hybrid endpoints are used) and must not be mutated while
// serving.
type Server struct {
	sys *thetis.System
	mux *http.ServeMux
}

// New wraps a configured system.
func New(sys *thetis.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /tables/{id}", s.handleTable)
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /keyword", s.handleKeyword)
	s.mux.HandleFunc("POST /hybrid", s.handleHybrid)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SearchRequest is the body of POST /search and /hybrid.
type SearchRequest struct {
	// Query holds entity tuples: entities separated by "|", tuples by
	// newline or ";".
	Query string `json:"query"`
	// K is the number of results (default 10).
	K int `json:"k,omitempty"`
	// Keywords overrides the BM25 keywords for /hybrid (default: the query
	// text with separators stripped).
	Keywords string `json:"keywords,omitempty"`
}

// SearchResult is one result row.
type SearchResult struct {
	Table int     `json:"table"`
	Name  string  `json:"name"`
	Score float64 `json:"score,omitempty"`
}

// SearchResponse is the body returned by the search endpoints.
type SearchResponse struct {
	Results []SearchResult `json:"results"`
	// Candidates and ScoredTables report search effort (semantic only).
	Candidates int `json:"candidates,omitempty"`
	// TookMicros is the server-side search duration.
	TookMicros int64 `json:"took_us"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Stats()
	g := s.sys.Graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"tables":        st.Tables,
		"mean_rows":     st.MeanRows,
		"mean_columns":  st.MeanColumns,
		"mean_coverage": st.MeanCoverage,
		"entities":      g.NumEntities(),
		"types":         g.NumTypes(),
		"predicates":    g.NumPredicates(),
		"edges":         g.NumEdges(),
	})
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= s.sys.NumTables() {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", r.PathValue("id")))
		return
	}
	t := s.sys.Table(thetis.TableID(id))
	rows := make([][]string, t.NumRows())
	for i, row := range t.Rows {
		cells := make([]string, len(row))
		for j, c := range row {
			cells[j] = c.Value
		}
		rows[i] = cells
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         id,
		"name":       t.Name,
		"attributes": t.Attributes,
		"rows":       rows,
		"categories": t.Categories,
		"coverage":   t.LinkCoverage(),
	})
}

// parseRequest decodes and validates a search request body.
func parseRequest(r *http.Request) (SearchRequest, error) {
	var req SearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("query must not be empty")
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.K > 1000 {
		req.K = 1000
	}
	return req, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(strings.ReplaceAll(req.Query, ";", "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	results, stats := s.sys.SearchStats(q, req.K)
	resp := SearchResponse{
		Results:    make([]SearchResult, len(results)),
		Candidates: stats.Candidates,
		TookMicros: stats.TotalTime.Microseconds(),
	}
	for i, res := range results {
		resp.Results[i] = SearchResult{
			Table: int(res.Table),
			Name:  s.sys.Table(res.Table).Name,
			Score: res.Score,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Q string `json:"q"`
		K int    `json:"k,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Q) == "" {
		writeError(w, http.StatusBadRequest, errors.New("body must be {\"q\": \"keywords\"}"))
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	ids := s.sys.KeywordSearch(req.Q, req.K)
	resp := SearchResponse{Results: make([]SearchResult, len(ids))}
	for i, id := range ids {
		resp.Results[i] = SearchResult{Table: int(id), Name: s.sys.Table(id).Name}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHybrid(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q, err := s.sys.ParseQuery(strings.ReplaceAll(req.Query, ";", "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	keywords := req.Keywords
	if keywords == "" {
		keywords = strings.NewReplacer("|", " ", ";", " ", "\n", " ").Replace(req.Query)
	}
	ids := s.sys.HybridSearch(q, keywords, req.K)
	resp := SearchResponse{Results: make([]SearchResult, len(ids))}
	for i, id := range ids {
		resp.Results[i] = SearchResult{Table: int(id), Name: s.sys.Table(id).Name}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
