package server

// Request-lifecycle tests: graceful shutdown draining in-flight searches,
// semaphore shedding with 429 + Retry-After, and the well-formed partial
// response of a deadline-exceeding request. The tests hold requests in
// flight via the testHookRequest seam (which runs inside the guard, after
// semaphore admission and deadline arming) instead of sleeping, so they
// are deterministic under load.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"thetis/internal/obs"
)

const searchBody = `{"query": "Ron Santo | Chicago Cubs", "k": 5}`

// scrapeCounter reads one counter value from a registry's exposition text.
func scrapeCounter(t *testing.T, reg *obs.Registry, series string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	re := regexp.MustCompile(regexp.QuoteMeta(series) + ` ([0-9]+)`)
	m := re.FindStringSubmatch(rec.Body.String())
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatalf("bad counter value %q for %s", m[1], series)
	}
	return n
}

// TestGracefulShutdownDrains verifies that cancelling Serve's context stops
// accepting work but lets an in-flight search finish: the client blocked
// mid-request still receives its full 200 response, and only then does
// Serve return cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := New(demoSystem(t))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookRequest = func(*http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, ln, srv, 5*time.Second) }()

	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/search",
			"application/json", strings.NewReader(searchBody))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		replies <- reply{status: resp.StatusCode, body: body, err: err}
	}()

	<-entered // the search is now in flight
	cancel()  // request shutdown while it is

	// The server must drain, not return, while the request is held.
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d during shutdown:\n%s", r.status, r.body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(r.body, &resp); err != nil || len(resp.Results) == 0 {
		t.Fatalf("drained response not a full search result (%v):\n%s", err, r.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve after drain = %v, want nil", err)
	}
}

// TestShutdownDrainBudgetExceeded verifies the other side of the contract:
// a request outliving the drain budget is force-closed and Serve reports
// the drain error instead of hanging.
func TestShutdownDrainBudgetExceeded(t *testing.T) {
	srv := New(demoSystem(t))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	srv.testHookRequest = func(*http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- Serve(ctx, ln, srv, 20*time.Millisecond) }()

	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/search",
			"application/json", strings.NewReader(searchBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	select {
	case err := <-served:
		if err == nil {
			t.Fatal("Serve = nil, want drain error for an over-budget request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain budget expired")
	}
}

// TestMaxInFlightSheds verifies bounded-concurrency shedding: with one
// admission slot occupied, the next search is rejected immediately with
// 429 + Retry-After and the shed counter moves; once the slot frees, the
// endpoint admits requests again.
func TestMaxInFlightSheds(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(demoSystem(t), WithMaxInFlight(1), WithRegistry(reg))
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHookRequest = func(*http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(searchBody))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // slot occupied

	resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /search status = %d, want 429:\n%s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	var errResp map[string]string
	if err := json.Unmarshal(body, &errResp); err != nil || errResp["error"] == "" {
		t.Errorf("429 body not a JSON error (%v): %s", err, body)
	}
	if n := scrapeCounter(t, reg, `thetis_http_shed_total{endpoint="/search"}`); n < 1 {
		t.Errorf("shed counter = %d, want >= 1", n)
	}
	// Other slots (here: a different guarded endpoint) are shed too — the
	// semaphore spans all search-type endpoints.
	resp, err = http.Post(ts.URL+"/keyword", "application/json", strings.NewReader(`{"q": "ernie"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated /keyword status = %d, want 429", resp.StatusCode)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("held request status = %d, want 200", got)
	}
	// The slot is free again: the hook now returns immediately (release is
	// closed), so a fresh request must be admitted.
	resp, err = http.Post(ts.URL+"/search", "application/json", strings.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release /search status = %d, want 200", resp.StatusCode)
	}
}

// TestSearchTimeoutResponse verifies the well-formed timeout response: a
// request whose deadline expires still gets HTTP 200 with valid JSON, the
// truncated flag set, and the timeout counter incremented — graceful
// degradation, not a 5xx.
func TestSearchTimeoutResponse(t *testing.T) {
	reg := obs.NewRegistry()
	srv := New(demoSystem(t), WithSearchTimeout(20*time.Millisecond), WithRegistry(reg))
	// Hold the request until its own deadline fires, so the handler runs
	// with an already-expired context — deterministic truncation.
	srv.testHookRequest = func(r *http.Request) { <-r.Context().Done() }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timed-out /search status = %d, want 200 with partial results:\n%s",
			resp.StatusCode, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("timeout response not valid JSON: %v\n%s", err, body)
	}
	if !sr.Truncated {
		t.Errorf("timeout response not marked truncated: %s", body)
	}
	if len(sr.Results) != 0 {
		// The context was dead before scoring began, so the best-effort
		// prefix is empty here; anything else means the deadline leaked.
		t.Errorf("expired-deadline search returned %d results", len(sr.Results))
	}
	if n := scrapeCounter(t, reg, `thetis_http_timeouts_total{endpoint="/search"}`); n < 1 {
		t.Errorf("timeout counter = %d, want >= 1", n)
	}

	// The deadline must not outlive the request: a fresh server without the
	// blocking hook answers the same query untruncated.
	srv2 := New(demoSystem(t), WithSearchTimeout(10*time.Second))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(searchBody))
	srv2.ServeHTTP(rec, req)
	var ok SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil || ok.Truncated {
		t.Errorf("roomy deadline truncated (%v): %s", err, rec.Body.String())
	}
}
