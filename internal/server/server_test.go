package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"thetis"
)

// demoSystem builds the miniature baseball system shared by the endpoint,
// fuzz, and lifecycle tests. testing.TB so fuzz targets can call it too.
func demoSystem(tb testing.TB) *thetis.System {
	tb.Helper()
	g := thetis.NewGraph()
	triples := `
<onto/BaseballPlayer> <rdfs:subClassOf> <onto/Athlete> .
<onto/BaseballTeam>   <rdfs:subClassOf> <onto/Organisation> .
<res/santo> <rdf:type> <onto/BaseballPlayer> .
<res/santo> <rdfs:label> "Ron Santo" .
<res/banks> <rdf:type> <onto/BaseballPlayer> .
<res/banks> <rdfs:label> "Ernie Banks" .
<res/cubs>  <rdf:type> <onto/BaseballTeam> .
<res/cubs>  <rdfs:label> "Chicago Cubs" .
`
	if err := thetis.LoadTriples(g, strings.NewReader(triples)); err != nil {
		tb.Fatal(err)
	}
	sys := thetis.New(g)
	linker := thetis.NewDictionaryLinker(g)
	roster := thetis.NewTable("roster", []string{"Player", "Team"})
	roster.AppendValues("Ron Santo", "Chicago Cubs")
	thetis.LinkTable(roster, linker)
	sys.AddTable(roster)
	other := thetis.NewTable("profiles", []string{"Player"})
	other.AppendValues("Ernie Banks")
	thetis.LinkTable(other, linker)
	sys.AddTable(other)
	sys.UseTypeSimilarity()
	sys.BuildKeywordIndex()
	return sys
}

func demoServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(demoSystem(t), opts...))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s status = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s status = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts := demoServer(t)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["tables"].(float64) != 2 {
		t.Errorf("stats = %v", out)
	}
	if out["entities"].(float64) < 3 {
		t.Errorf("entities = %v", out["entities"])
	}
}

func TestTableEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := getJSON(t, ts.URL+"/tables/0", http.StatusOK)
	if out["name"] != "roster" {
		t.Errorf("table 0 = %v", out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
	getJSON(t, ts.URL+"/tables/99", http.StatusNotFound)
	getJSON(t, ts.URL+"/tables/abc", http.StatusNotFound)
}

func TestSearchEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := postJSON(t, ts.URL+"/search", `{"query": "Ron Santo | Chicago Cubs", "k": 5}`, http.StatusOK)
	results := out["results"].([]any)
	if len(results) == 0 {
		t.Fatalf("no results: %v", out)
	}
	first := results[0].(map[string]any)
	if first["name"] != "roster" || first["score"].(float64) != 1 {
		t.Errorf("first result = %v", first)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	ts := demoServer(t)
	postJSON(t, ts.URL+"/search", `{"k": 5}`, http.StatusBadRequest)                    // empty query
	postJSON(t, ts.URL+"/search", `{"query": "Unknown Person"}`, http.StatusBadRequest) // unresolvable
	postJSON(t, ts.URL+"/search", `{"query": "x", "bogus": 1}`, http.StatusBadRequest)  // unknown field
	postJSON(t, ts.URL+"/search", `not json`, http.StatusBadRequest)                    // malformed
}

func TestKeywordEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := postJSON(t, ts.URL+"/keyword", `{"q": "ernie banks"}`, http.StatusOK)
	results := out["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no keyword results")
	}
	if results[0].(map[string]any)["name"] != "profiles" {
		t.Errorf("keyword top = %v", results[0])
	}
	postJSON(t, ts.URL+"/keyword", `{}`, http.StatusBadRequest)
}

func TestHybridEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := postJSON(t, ts.URL+"/hybrid", `{"query": "Ron Santo | Chicago Cubs", "k": 4}`, http.StatusOK)
	results := out["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no hybrid results")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := demoServer(t)
	// Issue one search so the pipeline metrics move.
	postJSON(t, ts.URL+"/search", `{"query": "Ron Santo | Chicago Cubs"}`, http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE thetis_http_requests_total counter",
		`thetis_http_requests_total{endpoint="/search"}`,
		"# TYPE thetis_http_request_seconds histogram",
		`thetis_http_request_seconds_bucket{endpoint="/search",le="+Inf"}`,
		"# TYPE thetis_search_stage_seconds histogram",
		`thetis_search_stage_seconds_count{stage="score"}`,
		"thetis_search_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	ts := demoServer(t)
	out := getJSON(t, ts.URL+"/debug/trace?query="+url.QueryEscape("Ron Santo | Chicago Cubs")+"&k=3", http.StatusOK)
	trace, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace in response: %v", out)
	}
	if trace["name"] != "search" {
		t.Errorf("trace name = %v", trace["name"])
	}
	stages := trace["stages"].([]any)
	names := make(map[string]bool)
	for _, st := range stages {
		names[st.(map[string]any)["stage"].(string)] = true
	}
	for _, want := range []string{"mapping", "score", "rank"} {
		if !names[want] {
			t.Errorf("trace stages missing %q: %v", want, names)
		}
	}
	if out["candidates"].(float64) != 2 {
		t.Errorf("candidates = %v", out["candidates"])
	}

	getJSON(t, ts.URL+"/debug/trace", http.StatusBadRequest)
	getJSON(t, ts.URL+"/debug/trace?query=x&k=zero", http.StatusBadRequest)
	getJSON(t, ts.URL+"/debug/trace?query="+url.QueryEscape("Unknown Person"), http.StatusBadRequest)
}

func TestErrorCounterMoves(t *testing.T) {
	ts := demoServer(t)
	postJSON(t, ts.URL+"/search", `{"k": 5}`, http.StatusBadRequest)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`thetis_http_errors_total\{endpoint="/search"\} ([0-9]+)`)
	m := re.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("no error counter for /search in:\n%s", body)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("error counter = %d, want >= 1", n)
	}
}

func TestPprofOptIn(t *testing.T) {
	ts := demoServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof must be off by default; status = %d", resp.StatusCode)
	}

	enabled := demoServer(t, WithPprof())
	resp, err = http.Get(enabled.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index with WithPprof: status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := demoServer(t)
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search status = %d, want 405", resp.StatusCode)
	}
}
