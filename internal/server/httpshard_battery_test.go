package server

// Shard-over-HTTP differential battery (docs/SHARDING.md
// §"Shard-over-HTTP"): a coordinator scattering over thetis.RemoteShard
// clients to real HTTP daemons — each a full server.New(*thetis.System)
// stack, not a stub handler — must rank bit-for-bit like the in-process
// ShardedSystem and the unsharded System. Clean, and under every fault
// class the transport can throw (connection refusal, 500s, truncated and
// bit-flipped bodies, mid-body stalls, slow-loris): faults the retry
// budget absorbs must leave rankings untouched; faults that exhaust it
// must compose into a correctly ranked Truncated prefix with the causes
// in Stats.ShardErrors — never an error, never a wrong order.
// `make httpshardcheck` runs this battery under -race.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thetis"
	"thetis/internal/datagen"
	"thetis/internal/faultio"
	"thetis/internal/obs"
)

var (
	hsOnce    sync.Once
	hsKG      *datagen.KG
	hsTables  []*thetis.Table
	hsQueries []thetis.Query
)

// hsEnv generates the battery corpus once: a typed KG, a few hundred
// WT2015-profile tables in ingestion order, and mixed 1-/5-tuple queries
// (the same shape as the root package's shard-invariance battery).
func hsEnv(t *testing.T) (*datagen.KG, []*thetis.Table, []thetis.Query) {
	t.Helper()
	hsOnce.Do(func() {
		hsKG = datagen.GenerateKG(datagen.KGConfig{
			Domains: 5, LeafTypesPerDomain: 2, MembersPerLeafType: 40,
			GroupsPerDomain: 6, Places: 25, EdgesPerMember: 2, Seed: 17,
		})
		l := datagen.GenerateCorpus(hsKG, datagen.ProfileWT2015(300))
		for id := 0; id < l.NumTables(); id++ {
			hsTables = append(hsTables, l.Table(thetis.TableID(id)))
		}
		for _, bq := range datagen.GenerateQueries(hsKG, datagen.QueryConfig{
			Count: 4, TuplesPerQuery: 5, Width: 3, Seed: 17,
		}) {
			hsQueries = append(hsQueries, bq.Truncate(1).Query, bq.Query)
		}
	})
	return hsKG, hsTables, hsQueries
}

// remoteDeployment is one fully wired shard-over-HTTP test fleet: the
// coordinator's local full-corpus System (doubling as the unsharded
// reference), an equivalent in-process ShardedSystem, one daemon System
// per shard served by a real server.New over httptest, and the
// RemoteSharded facade scattering to them.
type remoteDeployment struct {
	local   *thetis.System
	ss      *thetis.ShardedSystem
	rs      *thetis.RemoteSharded
	daemons []*thetis.System
	shards  []*thetis.RemoteShard
}

// buildRemoteDeployment assembles an n-shard fleet. transport(shard,
// replica) supplies each replica's RoundTripper (nil = default); extra
// replicas per shard come from replicasPer > 1, every replica backed by
// the same daemon server (interchangeable by construction).
func buildRemoteDeployment(t *testing.T, label string, n, replicasPer int, opt thetis.RemoteOptions, transport func(shard, replica int) http.RoundTripper) *remoteDeployment {
	t.Helper()
	kgEnv, tables, _ := hsEnv(t)
	part := thetis.NewHashPartitioner(n)

	local := thetis.New(kgEnv.Graph)
	ss := thetis.NewShardedSystem(kgEnv.Graph, part)
	for i, tb := range tables {
		if local.AddTable(tb) != thetis.TableID(i) || ss.AddTable(tb) != thetis.TableID(i) {
			t.Fatalf("global ID assignment diverged at table %d", i)
		}
	}
	local.UseTypeSimilarity()
	ss.UseTypeSimilarity()

	// One daemon per shard, ingesting exactly its hash-assigned slice in
	// global ID order — the same replay ShardGlobalIDs performs.
	globals := local.ShardGlobalIDs(part)
	d := &remoteDeployment{local: local, ss: ss}
	for si := 0; si < n; si++ {
		daemon := thetis.New(kgEnv.Graph)
		for _, gid := range globals[si] {
			daemon.AddTable(local.Table(gid))
		}
		daemon.UseTypeSimilarity()
		srv := httptest.NewServer(New(daemon))
		t.Cleanup(srv.Close)
		replicas := make([]thetis.RemoteReplica, replicasPer)
		for ri := 0; ri < replicasPer; ri++ {
			replicas[ri] = thetis.RemoteReplica{URL: srv.URL}
			if transport != nil {
				if rt := transport(si, ri); rt != nil {
					replicas[ri].Client = &http.Client{Transport: rt}
				}
			}
		}
		sh, err := thetis.NewRemoteShard(label+"-"+string(rune('0'+si)), kgEnv.Graph, globals[si], replicas, opt)
		if err != nil {
			t.Fatal(err)
		}
		d.daemons = append(d.daemons, daemon)
		d.shards = append(d.shards, sh)
	}
	d.rs = thetis.NewRemoteSharded(local, d.shards...)
	return d
}

// bootstrap ships the global artifacts; rankings are only comparable
// afterwards (un-bootstrapped daemons weigh entities by slice-local IDF).
func (d *remoteDeployment) bootstrap(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.rs.Bootstrap(ctx); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
}

// assertRemoteIdentical checks remote == in-process == unsharded, bit for
// bit, for every query.
func assertRemoteIdentical(t *testing.T, label string, d *remoteDeployment, queries []thetis.Query, k int) {
	t.Helper()
	ctx := context.Background()
	for qi, q := range queries {
		want, wantStats := d.local.SearchStats(q, k)
		inproc, _ := d.ss.SearchStatsContext(ctx, q, k)
		got, gotStats := d.rs.SearchStatsContext(ctx, q, k)
		if wantStats.Truncated {
			t.Fatalf("%s q%d: unsharded reference truncated", label, qi)
		}
		if gotStats.Truncated {
			t.Fatalf("%s q%d: remote truncated: %v", label, qi, gotStats.ShardErrors)
		}
		if len(got) != len(want) || len(inproc) != len(want) {
			t.Fatalf("%s q%d: remote %d / in-process %d / unsharded %d results",
				label, qi, len(got), len(inproc), len(want))
		}
		for i := range want {
			if got[i].Table != want[i].Table || got[i].Score != want[i].Score {
				t.Fatalf("%s q%d rank %d: remote %+v, unsharded %+v", label, qi, i, got[i], want[i])
			}
			if inproc[i] != got[i] {
				t.Fatalf("%s q%d rank %d: remote %+v, in-process %+v", label, qi, i, got[i], inproc[i])
			}
		}
	}
}

func TestHTTPShardCleanBitIdentity(t *testing.T) {
	_, _, queries := hsEnv(t)
	for _, n := range []int{1, 2, 4} {
		d := buildRemoteDeployment(t, "clean"+string(rune('0'+n)), n, 1, thetis.RemoteOptions{}, nil)
		d.bootstrap(t)
		label := "full-scan/" + string(rune('0'+n))
		assertRemoteIdentical(t, label, d, queries, 10)
		assertRemoteIdentical(t, label+"/all", d, queries[:2], -1)
	}
}

func TestHTTPShardLSHBitIdentity(t *testing.T) {
	_, _, queries := hsEnv(t)
	cfg := thetis.DefaultIndexConfig()
	d := buildRemoteDeployment(t, "lsh", 3, 1, thetis.RemoteOptions{}, nil)
	// Index everywhere: the unsharded reference and the in-process shards
	// build directly; the remote daemons build from the bootstrapped index
	// spec under the shipped global frequent-type filter.
	d.local.BuildIndex(cfg)
	d.ss.BuildIndex(cfg)
	d.rs.SetIndexConfig(cfg)
	for _, votes := range []int{1, 2, 3} {
		d.local.SetVotes(votes)
		d.ss.SetVotes(votes)
		d.rs.SetVotes(votes)
		d.bootstrap(t) // re-ship: votes travel with the artifacts
		assertRemoteIdentical(t, "lsh", d, queries, 10)
	}
}

func TestHTTPShardRescatterForceFullScan(t *testing.T) {
	_, _, queries := hsEnv(t)
	cfg := thetis.DefaultIndexConfig()
	d := buildRemoteDeployment(t, "rescatter", 2, 1, thetis.RemoteOptions{}, nil)
	d.local.BuildIndex(cfg)
	d.ss.BuildIndex(cfg)
	d.rs.SetIndexConfig(cfg)
	// An unsatisfiable vote threshold empties every shard's prefilter, so
	// the coordinator's rescatter round must carry ForceFullScan over the
	// wire — and the final ranking must match the unsharded system's own
	// fallback full scan.
	d.local.SetVotes(99)
	d.ss.SetVotes(99)
	d.rs.SetVotes(99)
	d.bootstrap(t)
	got, stats := d.rs.SearchStatsContext(context.Background(), queries[1], 10)
	if len(got) == 0 {
		t.Fatalf("rescatter produced no results (stats %+v)", stats)
	}
	assertRemoteIdentical(t, "rescatter", d, queries, 10)
}

// faultScripts enumerates every fault class with a script the retry
// budget (3 attempts) absorbs: two faulted attempts, then clean.
func faultScripts() map[string][]faultio.Fault {
	return map[string][]faultio.Fault{
		"refuse":    {faultio.Refuse, faultio.Refuse},
		"http500":   {faultio.Status500, faultio.Status500},
		"truncate":  {faultio.TruncateBody, faultio.TruncateBody},
		"bitflip":   {faultio.FlipBody, faultio.FlipBody},
		"stall":     {faultio.StallBody, faultio.StallBody},
		"slowloris": {faultio.SlowLoris, faultio.SlowLoris},
		"mixed":     {faultio.Refuse, faultio.FlipBody},
	}
}

func TestHTTPShardFaultMatrixRetriesToBitIdentity(t *testing.T) {
	_, _, queries := hsEnv(t)
	for name, script := range faultScripts() {
		t.Run(name, func(t *testing.T) {
			label := "fm-" + name
			var transports []*faultio.FaultTransport
			opt := thetis.RemoteOptions{
				MaxAttempts:    3,
				AttemptTimeout: 250 * time.Millisecond, // stalls must burn an attempt, not the test
				BackoffBase:    time.Millisecond,
				BackoffMax:     4 * time.Millisecond,
				// Never trip during the scripted faults: this test is about
				// the retry path, the breaker has its own.
				BreakerThreshold: 1000,
			}
			d := buildRemoteDeployment(t, label, 2, 1, opt, func(shard, replica int) http.RoundTripper {
				if shard != 0 {
					return nil // only shard 0 misbehaves
				}
				ft := faultio.NewFaultTransport(nil)
				ft.Delay = 2 * time.Second
				transports = append(transports, ft)
				return ft
			})
			d.bootstrap(t) // clean transport so the artifact push lands
			if len(transports) != 1 {
				t.Fatalf("want 1 fault transport, got %d", len(transports))
			}
			// Arm the script now: the next search's first attempts hit the
			// faults, the final attempt goes clean.
			transports[0].Script = script
			retriesBefore := obs.RemoteShardRetriesTotal(label + "-0").Value()
			got, stats := d.rs.SearchStatsContext(context.Background(), queries[0], 10)
			if stats.Truncated {
				t.Fatalf("retry budget did not absorb %s: %v", name, stats.ShardErrors)
			}
			want, _ := d.local.SearchStats(queries[0], 10)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s rank %d: remote %+v, unsharded %+v", name, i, got[i], want[i])
				}
			}
			if obs.RemoteShardRetriesTotal(label+"-0").Value() == retriesBefore {
				t.Fatalf("%s: faults injected but no retry recorded", name)
			}
			if transports[0].Injected() == 0 {
				t.Fatalf("%s: fault transport never injected", name)
			}
			assertRemoteIdentical(t, name, d, queries, 10)
		})
	}
}

func TestHTTPShardDeadShardDegradesToRankedPrefix(t *testing.T) {
	_, _, queries := hsEnv(t)
	opt := thetis.RemoteOptions{
		MaxAttempts:    2,
		AttemptTimeout: 250 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
	}
	d := buildRemoteDeployment(t, "dead", 3, 1, opt, func(shard, replica int) http.RoundTripper {
		if shard != 1 {
			return nil
		}
		ft := faultio.NewFaultTransport(nil, faultio.Refuse)
		ft.Loop = true // shard 1 is permanently unreachable
		return ft
	})
	// Bootstrap cannot reach shard 1 either: the push must fail loudly.
	if err := d.rs.Bootstrap(context.Background()); err == nil {
		t.Fatal("bootstrap succeeded with an unreachable shard")
	}
	// Re-push to the live shards only so their artifacts are in place.
	a := d.local.ComputeShardArtifacts(nil, 1)
	for _, si := range []int{0, 2} {
		if err := d.shards[si].PushArtifacts(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}
	deadTables := map[thetis.TableID]bool{}
	for _, gid := range d.local.ShardGlobalIDs(thetis.NewHashPartitioner(3))[1] {
		deadTables[gid] = true
	}
	for qi, q := range queries {
		got, stats := d.rs.SearchStatsContext(context.Background(), q, 10)
		if !stats.Truncated {
			t.Fatalf("q%d: dead shard not surfaced as Truncated", qi)
		}
		found := false
		for _, e := range stats.ShardErrors {
			if strings.HasPrefix(e, "shard 1:") {
				found = true
			}
		}
		if !found {
			t.Fatalf("q%d: ShardErrors missing the dead shard: %v", qi, stats.ShardErrors)
		}
		// The prefix must be exactly the unsharded ranking with the dead
		// shard's tables removed — correctly ranked, nothing invented.
		full, _ := d.local.SearchStats(q, -1)
		var want []thetis.Result
		for _, r := range full {
			if !deadTables[r.Table] {
				want = append(want, r)
			}
		}
		if len(want) > 10 {
			want = want[:10]
		}
		if len(got) != len(want) {
			t.Fatalf("q%d: degraded prefix has %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d rank %d: degraded %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

func TestHTTPShardAllShardsDeadExplicitEmpty(t *testing.T) {
	_, _, queries := hsEnv(t)
	opt := thetis.RemoteOptions{
		MaxAttempts:    2,
		AttemptTimeout: 100 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
	}
	d := buildRemoteDeployment(t, "alldead", 2, 1, opt, func(shard, replica int) http.RoundTripper {
		ft := faultio.NewFaultTransport(nil, faultio.Refuse)
		ft.Loop = true
		return ft
	})
	got, stats := d.rs.SearchStatsContext(context.Background(), queries[0], 10)
	if len(got) != 0 {
		t.Fatalf("all-dead fleet returned results: %v", got)
	}
	if !stats.Truncated {
		t.Fatal("all-dead fleet must mark Truncated")
	}
	saw := map[string]bool{}
	for _, e := range stats.ShardErrors {
		if strings.HasPrefix(e, "shard 0:") {
			saw["0"] = true
		}
		if strings.HasPrefix(e, "shard 1:") {
			saw["1"] = true
		}
	}
	if !saw["0"] || !saw["1"] {
		t.Fatalf("per-shard causes incomplete: %v", stats.ShardErrors)
	}
}

func TestHTTPShardReplicaFailoverKeepsIdentity(t *testing.T) {
	_, _, queries := hsEnv(t)
	opt := thetis.RemoteOptions{
		MaxAttempts:      3,
		AttemptTimeout:   250 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // stays tripped for the whole test
	}
	label := "failover"
	var broken *faultio.FaultTransport
	d := buildRemoteDeployment(t, label, 2, 2, opt, func(shard, replica int) http.RoundTripper {
		if shard == 0 && replica == 0 {
			broken = faultio.NewFaultTransport(nil)
			return broken
		}
		return nil
	})
	d.bootstrap(t) // artifacts land while every replica is still healthy
	// Now replica 0 of shard 0 breaks permanently.
	broken.Script = []faultio.Fault{faultio.Status500}
	broken.Loop = true
	before := obs.RemoteShardBreakerOpenTotal(label + "-0").Value()
	// Every search must come back clean and bit-identical: attempts that
	// land on the broken replica fail over to the healthy one, and after
	// BreakerThreshold failures the breaker parks the broken replica so
	// later searches stop paying for it.
	assertRemoteIdentical(t, "failover", d, queries, 10)
	assertRemoteIdentical(t, "failover-again", d, queries, 10)
	if obs.RemoteShardBreakerOpenTotal(label+"-0").Value() == before {
		t.Fatal("broken replica's breaker never tripped")
	}
	st := d.shards[0].Status()
	open := 0
	for _, r := range st.Replicas {
		if r.Breaker == "open" {
			open++
		}
	}
	if open != 1 {
		t.Fatalf("want exactly the broken replica parked, got %+v", st)
	}
}

func TestHTTPShardHybridAndReadOnly(t *testing.T) {
	_, _, queries := hsEnv(t)
	d := buildRemoteDeployment(t, "hybrid", 2, 1, thetis.RemoteOptions{}, nil)
	d.bootstrap(t)
	d.local.BuildKeywordIndex()
	// The hybrid merge must match the unsharded system's: the semantic
	// half is bit-identical (proved above), the BM25 half is the same
	// local index, so the complement merge must agree.
	kw := "member domain city"
	for qi, q := range queries[:4] {
		want := d.local.HybridSearch(q, kw, 10)
		got := d.rs.HybridSearchContext(context.Background(), q, kw, 10)
		if len(got) != len(want) {
			t.Fatalf("q%d: hybrid %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d rank %d: hybrid %v, want %v", qi, i, got[i], want[i])
			}
		}
	}
	// The deployment is read-only: mutations answer ErrReadOnly.
	if _, err := d.rs.AddTableJSON([]byte(`{}`)); err != thetis.ErrReadOnly {
		t.Fatalf("AddTableJSON = %v, want ErrReadOnly", err)
	}
	if err := d.rs.RemoveTable(0); err != thetis.ErrReadOnly {
		t.Fatalf("RemoveTable = %v, want ErrReadOnly", err)
	}
}

// TestHTTPShardCoordinatorServesOverHTTP closes the loop: the
// RemoteSharded facade itself behind server.New — the full
// coordinator-daemon stack — answers /search identically to the unsharded
// system, is read-only over HTTP (405), and reports the remote-replica
// breakdown on /readyz.
func TestHTTPShardCoordinatorServesOverHTTP(t *testing.T) {
	_, _, _ = hsEnv(t)
	d := buildRemoteDeployment(t, "coord", 2, 1, thetis.RemoteOptions{}, nil)
	d.bootstrap(t)
	d.local.BuildKeywordIndex()
	coord := httptest.NewServer(New(d.rs, WithRemoteShardStatus(d.rs.ShardStatuses)))
	t.Cleanup(coord.Close)

	resp, err := http.Get(coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d", resp.StatusCode)
	}

	resp, err = http.Post(coord.URL+"/tables", "application/json", strings.NewReader(`{"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /tables on coordinator = %d, want 405", resp.StatusCode)
	}

	// A textual query through the whole stack: parse on the coordinator,
	// scatter over HTTP, merge, serve.
	resp, err = http.Post(coord.URL+"/search", "application/json",
		strings.NewReader(`{"query": "`+hsKG.Graph.Label(hsKG.Domains[0].Members[0][0])+`", "k": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /search on coordinator = %d", resp.StatusCode)
	}
}
