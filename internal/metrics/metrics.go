// Package metrics implements the retrieval-quality measures used in the
// paper's evaluation: graded NDCG@k, recall against top-k ground truth, and
// the distribution summaries (mean, median, quartiles) behind the box plots
// of Figures 4 and 5.
package metrics

import (
	"math"
	"sort"
)

// NDCG computes the Normalized Discounted Cumulative Gain at cutoff k.
//
// ranked is the system's result list (best first); relevance maps item IDs
// to graded gains (absent = 0). The ideal ordering is derived from the
// relevance map itself. NDCG is 0 when the ground truth has no relevant
// items or when k <= 0.
func NDCG(ranked []int, relevance map[int]float64, k int) float64 {
	if k <= 0 || len(relevance) == 0 {
		return 0
	}
	dcg := 0.0
	seen := make(map[int]bool, k)
	for i, id := range ranked {
		if i >= k {
			break
		}
		if seen[id] {
			continue // a duplicate entry cannot earn gain twice
		}
		seen[id] = true
		if rel := relevance[id]; rel > 0 {
			dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(i)+2)
		}
	}
	idcg := idealDCG(relevance, k)
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

func idealDCG(relevance map[int]float64, k int) float64 {
	gains := make([]float64, 0, len(relevance))
	for _, rel := range relevance {
		if rel > 0 {
			gains = append(gains, rel)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(gains)))
	idcg := 0.0
	for i, rel := range gains {
		if i >= k {
			break
		}
		idcg += (math.Pow(2, rel) - 1) / math.Log2(float64(i)+2)
	}
	return idcg
}

// RecallAtK computes recall of the first k ranked results against the
// ground-truth set of relevant items. When the ground truth is larger than
// k, the denominator is capped at k (retrieving k relevant items out of k
// slots is perfect recall), matching the paper's protocol of evaluating
// retrieved tables against the top-k ground-truth relevant tables.
func RecallAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 || len(relevant) == 0 {
		return 0
	}
	hits := 0
	seen := make(map[int]bool, k)
	for i, id := range ranked {
		if i >= k {
			break
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		if relevant[id] {
			hits++
		}
	}
	denom := len(relevant)
	if denom > k {
		denom = k
	}
	return float64(hits) / float64(denom)
}

// PrecisionAtK computes precision of the first k ranked results.
func PrecisionAtK(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits, returned := 0, 0
	counted := make(map[int]bool, k)
	for i, id := range ranked {
		if i >= k {
			break
		}
		returned++
		if counted[id] {
			continue
		}
		counted[id] = true
		if relevant[id] {
			hits++
		}
	}
	if returned == 0 {
		return 0
	}
	return float64(hits) / float64(returned)
}

// TopKByScore turns a score map into a ranked ID list (descending score,
// ascending ID on ties) truncated to k entries. Items with score <= 0 are
// excluded, matching Problem 2.2's requirement SemRel(Q,T) > 0. Pass k < 0
// for an unbounded list.
func TopKByScore(scores map[int]float64, k int) []int {
	ids := make([]int, 0, len(scores))
	for id, s := range scores {
		if s > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := scores[ids[a]], scores[ids[b]]
		if sa != sb {
			return sa > sb
		}
		return ids[a] < ids[b]
	})
	if k >= 0 && len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// Summary is a five-number-plus-mean distribution summary, the data behind
// one box in the paper's box plots.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes the summary of a sample. An empty sample yields the
// zero Summary.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

// quantile interpolates linearly on a sorted sample (type-7 estimator, the
// default of R and NumPy).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
