package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNDCGPerfectRanking(t *testing.T) {
	rel := map[int]float64{1: 3, 2: 2, 3: 1}
	ranked := []int{1, 2, 3}
	if got := NDCG(ranked, rel, 3); !almostEqual(got, 1) {
		t.Errorf("perfect ranking NDCG = %v, want 1", got)
	}
}

func TestNDCGWorstOrderStillPositive(t *testing.T) {
	rel := map[int]float64{1: 3, 2: 2, 3: 1}
	got := NDCG([]int{3, 2, 1}, rel, 3)
	if got <= 0 || got >= 1 {
		t.Errorf("reversed ranking NDCG = %v, want in (0,1)", got)
	}
}

func TestNDCGIrrelevantResults(t *testing.T) {
	rel := map[int]float64{1: 3}
	if got := NDCG([]int{7, 8, 9}, rel, 3); got != 0 {
		t.Errorf("all-irrelevant NDCG = %v, want 0", got)
	}
}

func TestNDCGEmptyGroundTruth(t *testing.T) {
	if got := NDCG([]int{1, 2}, nil, 10); got != 0 {
		t.Errorf("NDCG with no ground truth = %v, want 0", got)
	}
}

func TestNDCGCutoff(t *testing.T) {
	rel := map[int]float64{1: 1, 2: 1}
	// Item beyond the cutoff contributes nothing.
	a := NDCG([]int{1, 9, 2}, rel, 2)
	b := NDCG([]int{1, 9, 9}, rel, 2)
	if !almostEqual(a, b) {
		t.Errorf("item at rank 3 leaked into NDCG@2: %v vs %v", a, b)
	}
	if got := NDCG([]int{1}, rel, 0); got != 0 {
		t.Errorf("NDCG@0 = %v", got)
	}
}

func TestNDCGGradedOrderMatters(t *testing.T) {
	rel := map[int]float64{1: 3, 2: 1}
	good := NDCG([]int{1, 2}, rel, 2)
	bad := NDCG([]int{2, 1}, rel, 2)
	if good <= bad {
		t.Errorf("graded NDCG not sensitive to order: good=%v bad=%v", good, bad)
	}
}

func TestRecallAtK(t *testing.T) {
	relevant := map[int]bool{1: true, 2: true, 3: true, 4: true}
	ranked := []int{1, 9, 2, 8, 3}
	if got := RecallAtK(ranked, relevant, 5); !almostEqual(got, 0.75) {
		t.Errorf("recall@5 = %v, want 0.75", got)
	}
	// Denominator capped at k.
	if got := RecallAtK([]int{1, 2}, relevant, 2); !almostEqual(got, 1) {
		t.Errorf("recall@2 with 4 relevant = %v, want 1 (capped denominator)", got)
	}
	if got := RecallAtK(ranked, nil, 5); got != 0 {
		t.Errorf("recall with no relevant = %v", got)
	}
}

func TestPrecisionAtK(t *testing.T) {
	relevant := map[int]bool{1: true, 2: true}
	if got := PrecisionAtK([]int{1, 9, 2, 8}, relevant, 4); !almostEqual(got, 0.5) {
		t.Errorf("precision@4 = %v, want 0.5", got)
	}
	// Short result lists divide by what was actually returned.
	if got := PrecisionAtK([]int{1}, relevant, 10); !almostEqual(got, 1) {
		t.Errorf("precision of short list = %v, want 1", got)
	}
	if got := PrecisionAtK(nil, relevant, 10); got != 0 {
		t.Errorf("precision of empty list = %v, want 0", got)
	}
}

func TestTopKByScore(t *testing.T) {
	scores := map[int]float64{1: 0.5, 2: 0.9, 3: 0.0, 4: -0.2, 5: 0.9}
	got := TopKByScore(scores, 10)
	// 3 (zero) and 4 (negative) excluded; ties broken by ID.
	want := []int{2, 5, 1}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := TopKByScore(scores, 1); len(got) != 1 || got[0] != 2 {
		t.Errorf("TopK(1) = %v", got)
	}
	if got := TopKByScore(scores, -1); len(got) != 3 {
		t.Errorf("TopK(-1) should be unbounded, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEqual(s.Median, 2.5) {
		t.Errorf("median = %v, want 2.5", s.Median)
	}
	if !almostEqual(s.Mean, 2.5) {
		t.Errorf("mean = %v, want 2.5", s.Mean)
	}
	if !almostEqual(s.Q1, 1.75) || !almostEqual(s.Q3, 3.25) {
		t.Errorf("quartiles = %v, %v, want 1.75, 3.25", s.Q1, s.Q3)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Q1 != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

// Property: NDCG is always within [0, 1].
func TestNDCGRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := map[int]float64{}
		for i := 0; i < rng.Intn(20); i++ {
			rel[rng.Intn(30)] = float64(rng.Intn(4))
		}
		ranked := make([]int, rng.Intn(25))
		for i := range ranked {
			ranked[i] = rng.Intn(30)
		}
		got := NDCG(ranked, rel, 1+rng.Intn(20))
		return got >= 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: recall and precision are within [0, 1] and recall@k is
// monotonically non-decreasing in k.
func TestRecallMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		relevant := map[int]bool{}
		for i := 0; i < 1+rng.Intn(10); i++ {
			relevant[rng.Intn(20)] = true
		}
		ranked := rng.Perm(20)
		prev := 0.0
		for k := 1; k <= 20; k++ {
			r := RecallAtK(ranked, relevant, k)
			if r < 0 || r > 1+1e-9 {
				return false
			}
			// The capped denominator can only shrink relative recall when k
			// grows past the relevant-set size; allow tiny dips from cap
			// changes only while k <= |relevant|.
			if k > len(relevant) && r < prev-1e-9 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
