package baselines

import (
	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
)

// JoinSearcher is a D³L-style joinability search baseline: it ranks tables
// by the syntactic value overlap between the query's entity mentions and
// table columns (set containment of the query column in the table column).
// Joinability rewards exact value overlap only, so tables that are
// semantically related without shared values score zero — the behaviour
// behind D³L's near-zero NDCG in Section 7.2.
type JoinSearcher struct {
	lake *lake.Lake
	// colEnts[tableID][col] is the distinct entity set per column.
	colEnts [][]map[kg.EntityID]bool
}

// NewJoinSearcher precomputes per-column entity sets.
func NewJoinSearcher(l *lake.Lake) *JoinSearcher {
	j := &JoinSearcher{lake: l, colEnts: make([][]map[kg.EntityID]bool, l.NumTables())}
	for id, t := range l.Tables() {
		cols := make([]map[kg.EntityID]bool, t.NumColumns())
		for c := 0; c < t.NumColumns(); c++ {
			set := make(map[kg.EntityID]bool)
			for _, e := range t.ColumnEntities(c) {
				set[e] = true
			}
			cols[c] = set
		}
		j.colEnts[id] = cols
	}
	return j
}

// Search ranks tables by the best containment of any query column in any
// table column.
func (j *JoinSearcher) Search(q core.Query, k int) []core.Result {
	qcols := queryColumns(q)
	var out []core.Result
	for id, cols := range j.colEnts {
		best := 0.0
		for _, qc := range qcols {
			if len(qc) == 0 {
				continue
			}
			for _, set := range cols {
				hit := 0
				for _, e := range qc {
					if set[e] {
						hit++
					}
				}
				if c := float64(hit) / float64(len(qc)); c > best {
					best = c
				}
			}
		}
		if best > 0 {
			out = append(out, core.Result{Table: lake.TableID(id), Score: best})
		}
	}
	sortResults(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
