package baselines

import (
	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
)

// UnionSearcher is a SANTOS-style table union search baseline: it ranks
// tables by how unionable they are with the query-as-a-table, matching
// columns by the similarity of their semantic signatures (merged type sets,
// the analogue of SANTOS's KG-derived column semantics) and favoring
// structural agreement. Union search looks for tables that could extend the
// query table with more rows — which is why it underperforms on semantic
// relevance search, where the best tables often have entirely different
// schemas (the SANTOS/Starmie rows of Figure 4).
type UnionSearcher struct {
	lake *lake.Lake
	tj   *core.TypeJaccard
	// colTypes[tableID][col] is the merged type set of that column.
	colTypes [][][]kg.TypeID
}

// NewUnionSearcher precomputes column type signatures for the lake.
func NewUnionSearcher(l *lake.Lake, tj *core.TypeJaccard) *UnionSearcher {
	u := &UnionSearcher{lake: l, tj: tj, colTypes: make([][][]kg.TypeID, l.NumTables())}
	for id, t := range l.Tables() {
		cols := make([][]kg.TypeID, t.NumColumns())
		for j := 0; j < t.NumColumns(); j++ {
			cols[j] = mergeTypeSets(tj, t.ColumnEntities(j))
		}
		u.colTypes[id] = cols
	}
	return u
}

// mergeTypeSets unions the expanded type sets of the entities, sorted.
func mergeTypeSets(tj *core.TypeJaccard, ents []kg.EntityID) []kg.TypeID {
	seen := map[kg.TypeID]bool{}
	for _, e := range ents {
		for _, t := range tj.TypeSet(e) {
			seen[t] = true
		}
	}
	out := make([]kg.TypeID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sortTypeIDs(out)
	return out
}

func sortTypeIDs(ts []kg.TypeID) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func typeSetJaccard(a, b []kg.TypeID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// Search ranks tables by unionability with the query table. The score
// greedily matches each query column to its most similar unmatched table
// column and normalizes by the larger column count, so tables with a
// different schema width are penalized even when topically related.
func (u *UnionSearcher) Search(q core.Query, k int) []core.Result {
	qcols := queryColumns(q)
	qsigs := make([][]kg.TypeID, len(qcols))
	for i, col := range qcols {
		qsigs[i] = mergeTypeSets(u.tj, col)
	}
	var out []core.Result
	for id := range u.colTypes {
		score := u.unionability(qsigs, u.colTypes[id])
		if score > 0 {
			out = append(out, core.Result{Table: lake.TableID(id), Score: score})
		}
	}
	sortResults(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// unionability greedily matches query columns to table columns.
func (u *UnionSearcher) unionability(qsigs [][]kg.TypeID, tsigs [][]kg.TypeID) float64 {
	if len(qsigs) == 0 || len(tsigs) == 0 {
		return 0
	}
	used := make([]bool, len(tsigs))
	total := 0.0
	for _, qs := range qsigs {
		best, bestJ := 0.0, -1
		for j, ts := range tsigs {
			if used[j] {
				continue
			}
			if sim := typeSetJaccard(qs, ts); sim > best {
				best, bestJ = sim, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
			total += best
		}
	}
	wider := len(qsigs)
	if len(tsigs) > wider {
		wider = len(tsigs)
	}
	return total / float64(wider)
}
