// Package baselines implements the comparison systems of the paper's
// evaluation (Sections 7.1–7.2) as simplified, from-scratch
// re-implementations: a TURL-style
// pooled table-embedding ranker, a Starmie/SANTOS-style union search, and a
// D³L-style joinability search. Each preserves the behaviour the paper
// measures: pooled representations wash out small tuple queries, and
// union/join ranking favors structural similarity over topical relevance.
package baselines

import (
	"math"
	"sort"
	"strings"

	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// TURLRanker adapts a TURL-like table representation model for table
// search, the way Section 7.1 adapts TURL: pool the contextualized vector
// representations of all cells in a table into one embedding, embed the
// query the same way, and rank tables by cosine similarity.
//
// TURL "is not entity centric" (Section 1): it consumes raw table text, not
// KG-linked entities, so every cell contributes a deterministic
// content-hash vector — our substitute for a language model's
// contextualized representation of an arbitrary string. Identical surface
// strings share a vector, so large query tables that overlap a corpus
// table correlate strongly, while small entity-tuple queries yield
// near-noise vectors. This reproduces both of the paper's observations:
// NDCG ≈ 0.004–0.005 on tuple queries, versus up to 0.488 "using entire
// source tables" as queries.
type TURLRanker struct {
	lake   *lake.Lake
	dim    int
	tables []embedding.Vector // pooled per-table vectors; nil for empty tables
}

// NewTURLRanker pools table representations for the whole lake. The
// embedding store only supplies the representation dimensionality; its
// entity vectors are deliberately unused.
func NewTURLRanker(l *lake.Lake, store *embedding.Store) *TURLRanker {
	r := &TURLRanker{lake: l, dim: store.Dim(), tables: make([]embedding.Vector, l.NumTables())}
	for id, t := range l.Tables() {
		var vecs []embedding.Vector
		for _, row := range t.Rows {
			for _, c := range row {
				if c.Value != "" {
					vecs = append(vecs, valueVector(c.Value, r.dim))
				}
			}
		}
		if m := embedding.Mean(vecs); m != nil {
			r.tables[id] = embedding.Normalize(m)
		}
	}
	return r
}

// SearchTable ranks tables using a whole table as the query (the paper's
// "entire source tables" upgrade path for TURL).
func (r *TURLRanker) SearchTable(q *table.Table, k int) []core.Result {
	var vecs []embedding.Vector
	for _, row := range q.Rows {
		for _, c := range row {
			if c.Value != "" {
				vecs = append(vecs, valueVector(c.Value, r.dim))
			}
		}
	}
	return r.rank(vecs, k)
}

// valueVector derives a deterministic pseudo-embedding for a raw cell value
// (the stand-in for a language model's contextualized representation of an
// arbitrary string): the mean of per-token hash vectors, lowercased. Shared
// tokens — first names, place words, numbers — pull unrelated cells
// together exactly the way subword representations do, which is what keeps
// a generic text encoder from resolving entity identity.
func valueVector(value string, dim int) embedding.Vector {
	tokens := strings.Fields(strings.ToLower(value))
	if len(tokens) == 0 {
		tokens = []string{value}
	}
	out := make(embedding.Vector, dim)
	for _, tok := range tokens {
		h := fnvHash(tok)
		for i := range out {
			h = h*6364136223846793005 + 1442695040888963407
			// Map the top bits to [-1, 1).
			out[i] += float32(int32(h>>32)) / (1 << 31)
		}
	}
	return embedding.Normalize(out)
}

func sqrtf(n int) float64 {
	if n <= 0 {
		return 1
	}
	return math.Sqrt(float64(n))
}

func fnvHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Search embeds the entity-tuple query from the surface text of its
// entities (their KG labels — TURL has no access to the links themselves)
// and ranks tables by cosine similarity, returning the top-k (k < 0 for
// all). The label resolver maps entities to their textual mentions.
func (r *TURLRanker) Search(q core.Query, k int) []core.Result {
	var vecs []embedding.Vector
	for _, e := range q.DistinctEntities() {
		if label := r.lake.Graph.Label(e); label != "" {
			vecs = append(vecs, valueVector(label, r.dim))
		}
	}
	return r.rank(vecs, k)
}

// reprNoiseScale controls how quickly representation quality improves with
// input size: a pooled representation of n cells carries deterministic
// noise of magnitude reprNoiseScale/√n relative to its unit signal. This
// models the paper's explanation of TURL's behaviour — "tables must be
// large enough to achieve high-quality vector representations, limiting
// the effectiveness of small queries" — so 3-cell tuple queries are
// noise-dominated while whole-table queries are not.
const reprNoiseScale = 4.0

func (r *TURLRanker) rank(vecs []embedding.Vector, k int) []core.Result {
	qv := embedding.Mean(vecs)
	if qv == nil {
		return nil
	}
	embedding.Normalize(qv)
	// Deterministic representation noise derived from the pooled content.
	var sig uint64 = 1469598103934665603
	for _, x := range qv {
		sig = sig*1099511628211 + uint64(int64(x*1e6))
	}
	noise := make(embedding.Vector, r.dim)
	h := sig
	for i := range noise {
		h = h*6364136223846793005 + 1442695040888963407
		noise[i] = float32(int32(h>>32)) / (1 << 31)
	}
	embedding.Normalize(noise)
	scale := reprNoiseScale / float32(sqrtf(len(vecs)))
	for i := range qv {
		qv[i] += scale * noise[i]
	}
	embedding.Normalize(qv)
	var out []core.Result
	for id, tv := range r.tables {
		if tv == nil {
			continue
		}
		cos := embedding.Dot(qv, tv)
		if cos > 0 {
			out = append(out, core.Result{Table: lake.TableID(id), Score: cos})
		}
	}
	sortResults(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func sortResults(rs []core.Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Table < rs[j].Table
	})
}

// queryColumns reshapes the query tuples into positional columns: column i
// holds the i-th entity of every tuple that has one. This treats the query
// as a small table, the input shape union/join baselines expect.
func queryColumns(q core.Query) [][]kg.EntityID {
	width := 0
	for _, t := range q {
		if len(t) > width {
			width = len(t)
		}
	}
	cols := make([][]kg.EntityID, width)
	for _, t := range q {
		for i, e := range t {
			cols[i] = append(cols[i], e)
		}
	}
	return cols
}
