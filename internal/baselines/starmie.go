package baselines

import (
	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
)

// EmbeddingUnionSearcher is a Starmie-style union search baseline: columns
// are represented by learned embeddings (here, the mean embedding of the
// column's linked entities — the analogue of Starmie's contextualized
// column encoders) and tables rank by greedy column matching under cosine
// similarity, normalized by the wider schema. The paper attributes
// Starmie's edge over SANTOS to exactly this "rich contextual semantic
// information within tables using trained column encoders"; this
// implementation reproduces that ordering while both remain far below
// semantic relevance search.
type EmbeddingUnionSearcher struct {
	lake *lake.Lake
	ec   *core.EmbeddingCosine
	// colVecs[tableID][col] is the normalized mean embedding; nil when the
	// column has no embedded entities.
	colVecs [][]embedding.Vector
}

// NewEmbeddingUnionSearcher precomputes column embeddings for the lake.
func NewEmbeddingUnionSearcher(l *lake.Lake, ec *core.EmbeddingCosine) *EmbeddingUnionSearcher {
	u := &EmbeddingUnionSearcher{lake: l, ec: ec, colVecs: make([][]embedding.Vector, l.NumTables())}
	for id, t := range l.Tables() {
		cols := make([]embedding.Vector, t.NumColumns())
		for j := 0; j < t.NumColumns(); j++ {
			cols[j] = u.columnVector(t.ColumnEntities(j))
		}
		u.colVecs[id] = cols
	}
	return u
}

func (u *EmbeddingUnionSearcher) columnVector(ents []kg.EntityID) embedding.Vector {
	var vecs []embedding.Vector
	for _, e := range ents {
		if v := u.ec.Vector(e); v != nil {
			vecs = append(vecs, v)
		}
	}
	m := embedding.Mean(vecs)
	if m == nil {
		return nil
	}
	return embedding.Normalize(m)
}

// Search ranks tables by embedding-based unionability with the query table.
func (u *EmbeddingUnionSearcher) Search(q core.Query, k int) []core.Result {
	qcols := queryColumns(q)
	qvecs := make([]embedding.Vector, len(qcols))
	for i, col := range qcols {
		qvecs[i] = u.columnVector(col)
	}
	var out []core.Result
	for id := range u.colVecs {
		score := u.unionability(qvecs, u.colVecs[id])
		if score > 0 {
			out = append(out, core.Result{Table: lake.TableID(id), Score: score})
		}
	}
	sortResults(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// unionability greedily matches query columns to table columns by cosine,
// normalizing by the wider schema (the structural bias of union search).
func (u *EmbeddingUnionSearcher) unionability(qvecs, tvecs []embedding.Vector) float64 {
	if len(qvecs) == 0 || len(tvecs) == 0 {
		return 0
	}
	used := make([]bool, len(tvecs))
	total := 0.0
	for _, qv := range qvecs {
		if qv == nil {
			continue
		}
		best, bestJ := 0.0, -1
		for j, tv := range tvecs {
			if used[j] || tv == nil {
				continue
			}
			if cos := embedding.Dot(qv, tv); cos > best {
				best, bestJ = cos, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
			total += best
		}
	}
	wider := len(qvecs)
	if len(tvecs) > wider {
		wider = len(tvecs)
	}
	return total / float64(wider)
}
