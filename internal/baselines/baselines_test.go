package baselines

import (
	"testing"

	"thetis/internal/core"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// fixture builds a graph + lake with baseball, volleyball, and city tables
// and hand-crafted embeddings clustered by topic.
func fixture(t *testing.T) (*kg.Graph, *lake.Lake, *embedding.Store, core.Query) {
	t.Helper()
	g := kg.NewGraph()
	thing := g.AddType("Thing", "")
	athlete := g.AddType("Athlete", "")
	bp := g.AddType("BaseballPlayer", "")
	team := g.AddType("Team", "")
	city := g.AddType("City", "")
	g.AddSubtype(athlete, thing)
	g.AddSubtype(bp, athlete)
	g.AddSubtype(team, thing)
	g.AddSubtype(city, thing)

	mk := func(uri string, ty kg.TypeID) kg.EntityID {
		e := g.AddEntity(uri, uri)
		g.AssignType(e, ty)
		return e
	}
	santo := mk("santo", bp)
	stetter := mk("stetter", bp)
	banks := mk("banks", bp)
	cubs := mk("cubs", team)
	brewers := mk("brewers", team)
	chicago := mk("chicago", city)
	milwaukee := mk("milwaukee", city)

	l := lake.New(g)
	lc := func(e kg.EntityID) table.Cell { return table.LinkedCell(g.Label(e), e) }

	t0 := table.New("players", []string{"Player", "Team"})
	t0.AppendRow([]table.Cell{lc(santo), lc(cubs)})
	t0.AppendRow([]table.Cell{lc(stetter), lc(brewers)})
	l.Add(t0)

	t1 := table.New("more-players", []string{"Player", "Team"})
	t1.AppendRow([]table.Cell{lc(banks), lc(cubs)})
	l.Add(t1)

	t2 := table.New("cities", []string{"City"})
	t2.AppendRow([]table.Cell{lc(chicago)})
	t2.AppendRow([]table.Cell{lc(milwaukee)})
	l.Add(t2)

	t3 := table.New("empty-links", []string{"X"})
	t3.AppendValues("nothing")
	l.Add(t3)

	store := embedding.NewStore(g.NumEntities(), 3)
	store.Set(santo, embedding.Vector{1, 0.1, 0})
	store.Set(stetter, embedding.Vector{1, 0.2, 0})
	store.Set(banks, embedding.Vector{1, 0.15, 0})
	store.Set(cubs, embedding.Vector{0.9, 0.4, 0})
	store.Set(brewers, embedding.Vector{0.9, 0.5, 0})
	store.Set(chicago, embedding.Vector{0, 0.2, 1})
	store.Set(milwaukee, embedding.Vector{0, 0.3, 1})

	q := core.Query{core.Tuple{santo, cubs}}
	return g, l, store, q
}

func TestTURLRankerTupleQueryIsWeak(t *testing.T) {
	// Small tuple queries yield noise-dominated representations (the
	// paper's explanation for TURL's near-zero NDCG on tuple queries), so
	// a tuple query must score the exact source table well below the
	// perfect 1.0 a clean representation would give.
	_, l, store, q := fixture(t)
	r := NewTURLRanker(l, store)
	res := r.Search(q, -1)
	for _, x := range res {
		if x.Table == 0 && x.Score > 0.9 {
			t.Errorf("tuple query scored the source table %v; representation should be noisy", x.Score)
		}
	}
}

func TestTURLRankerEmptyQuery(t *testing.T) {
	_, l, store, _ := fixture(t)
	r := NewTURLRanker(l, store)
	if res := r.Search(core.Query{}, 5); res != nil {
		t.Errorf("empty query = %v, want nil", res)
	}
}

func TestTURLWholeTableQueryBeatsTupleQuery(t *testing.T) {
	// The paper: TURL reaches NDCG 0.488 "using entire source tables" but
	// only ~0.005 on tuple queries. Shape check: querying with the whole
	// source table must rank that table at the top, while the tiny tuple
	// query gives it a weaker score.
	g, l, store, q := fixture(t)
	// A large source table: representation noise shrinks with 1/√cells, so
	// whole-table retrieval needs a realistically sized table.
	santo, _ := g.Lookup("santo")
	cubs, _ := g.Lookup("cubs")
	big := table.New("big-roster", []string{"Player", "Team", "Season", "Avg"})
	for i := 0; i < 60; i++ {
		big.AppendRow([]table.Cell{
			table.LinkedCell("santo", santo),
			table.LinkedCell("cubs", cubs),
			{Value: "season " + string(rune('a'+i%26))},
			{Value: ".277"},
		})
	}
	bigID := l.Add(big)
	r := NewTURLRanker(l, store)
	whole := r.SearchTable(big, -1)
	if len(whole) == 0 || whole[0].Table != bigID {
		t.Fatalf("whole-table query did not rank the source table first: %v", whole)
	}
	tuple := r.Search(q, -1)
	var tupleScore float64
	for _, res := range tuple {
		if res.Table == bigID {
			tupleScore = res.Score
		}
	}
	if tupleScore >= whole[0].Score {
		t.Errorf("tuple-query score %v >= whole-table score %v", tupleScore, whole[0].Score)
	}
}

func TestTURLRankerTopK(t *testing.T) {
	_, l, store, q := fixture(t)
	r := NewTURLRanker(l, store)
	if res := r.Search(q, 1); len(res) != 1 {
		t.Errorf("top-1 = %v", res)
	}
}

func TestUnionSearcherPrefersSameSchema(t *testing.T) {
	g, l, _, q := fixture(t)
	u := NewUnionSearcher(l, core.NewTypeJaccard(g))
	res := u.Search(q, -1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	// The (Player, Team) tables union perfectly with the (player, team)
	// query; the 1-column city table scores lower.
	if res[0].Table != 0 && res[0].Table != 1 {
		t.Errorf("top union result = %v, want a player/team table", res[0])
	}
	var cityScore, playerScore float64
	for _, r := range res {
		switch r.Table {
		case 0:
			playerScore = r.Score
		case 2:
			cityScore = r.Score
		}
	}
	if cityScore >= playerScore {
		t.Errorf("city table unionability %v >= player table %v", cityScore, playerScore)
	}
}

func TestUnionSearcherStructuralBias(t *testing.T) {
	// A wide table with the same two matching columns plus six unrelated
	// columns is penalized versus the compact table — the structural bias
	// that makes union search unsuitable for semantic relevance.
	g, l, _, q := fixture(t)
	santo, _ := g.Lookup("santo")
	cubs, _ := g.Lookup("cubs")
	wide := table.New("wide", []string{"Player", "Team", "c3", "c4", "c5", "c6", "c7", "c8"})
	wide.AppendRow([]table.Cell{
		table.LinkedCell("santo", santo), table.LinkedCell("cubs", cubs),
		{Value: "x"}, {Value: "x"}, {Value: "x"}, {Value: "x"}, {Value: "x"}, {Value: "x"},
	})
	wideID := l.Add(wide)
	u := NewUnionSearcher(l, core.NewTypeJaccard(g))
	res := u.Search(q, -1)
	scores := map[lake.TableID]float64{}
	for _, r := range res {
		scores[r.Table] = r.Score
	}
	if scores[wideID] >= scores[0] {
		t.Errorf("wide table %v not penalized vs compact %v", scores[wideID], scores[0])
	}
}

func TestJoinSearcherExactOverlapOnly(t *testing.T) {
	_, l, _, q := fixture(t)
	j := NewJoinSearcher(l)
	res := j.Search(q, -1)
	scores := map[lake.TableID]float64{}
	for _, r := range res {
		scores[r.Table] = r.Score
	}
	// Table 0 contains both query entities: containment 1 on each column.
	if scores[0] != 1 {
		t.Errorf("join score of exact table = %v, want 1", scores[0])
	}
	// Table 1 shares cubs only: the team column containment is 1 (cubs is
	// the only query value in that column position), player containment 0.
	if s, ok := scores[1]; !ok || s <= 0 {
		t.Errorf("join score of cubs table = %v", s)
	}
	// City table shares no values: must be absent (score 0).
	if _, ok := scores[2]; ok {
		t.Error("semantically-related-but-disjoint table got a join score")
	}
}

func TestJoinSearcherEmptyQuery(t *testing.T) {
	_, l, _, _ := fixture(t)
	j := NewJoinSearcher(l)
	if res := j.Search(core.Query{}, 5); len(res) != 0 {
		t.Errorf("empty query join results = %v", res)
	}
}

func TestQueryColumns(t *testing.T) {
	q := core.Query{core.Tuple{1, 2, 3}, core.Tuple{4, 5}}
	cols := queryColumns(q)
	if len(cols) != 3 {
		t.Fatalf("width = %d, want 3", len(cols))
	}
	if len(cols[0]) != 2 || len(cols[2]) != 1 {
		t.Errorf("cols = %v", cols)
	}
}

// The headline comparison of Figure 4: on a semantic-relevance ground
// truth, Thetis must beat both union and join baselines at ranking a
// related-but-value-disjoint table.
func TestSemanticBeatsStructuralBaselines(t *testing.T) {
	g, l, _, _ := fixture(t)
	// Query about banks (a player not in table 0): table 0 is
	// semantically related but shares no values with the query.
	banks, _ := g.Lookup("banks")
	brewers, _ := g.Lookup("brewers")
	q := core.Query{core.Tuple{banks, brewers}}

	eng := core.NewEngine(l, core.NewTypeJaccard(g))
	semRes, _ := eng.Search(q, -1)
	joinRes := NewJoinSearcher(l).Search(q, -1)

	semScores := map[lake.TableID]float64{}
	for _, r := range semRes {
		semScores[r.Table] = r.Score
	}
	if semScores[0] <= 0 {
		t.Fatal("semantic search missed the related table")
	}
	for _, r := range joinRes {
		if r.Table == 0 && r.Score >= semScores[0] {
			// join found it only through the shared brewers mention; fine,
			// but it must not dominate.
			t.Logf("join score %v vs semantic %v", r.Score, semScores[0])
		}
	}
}

func TestEmbeddingUnionSearcher(t *testing.T) {
	g, l, store, q := fixture(t)
	ec := core.NewEmbeddingCosine(g, store)
	u := NewEmbeddingUnionSearcher(l, ec)
	res := u.Search(q, -1)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	scores := map[lake.TableID]float64{}
	for _, r := range res {
		scores[r.Table] = r.Score
	}
	// The (Player, Team) tables union well with the player/team query;
	// the 1-column city table scores lower (structural + semantic gap).
	if scores[2] >= scores[0] {
		t.Errorf("city table %v >= player table %v", scores[2], scores[0])
	}
	if got := u.Search(q, 1); len(got) != 1 {
		t.Errorf("top-1 = %v", got)
	}
}

func TestEmbeddingUnionSearcherNoEmbeddings(t *testing.T) {
	g, l, _, q := fixture(t)
	empty := core.NewEmbeddingCosine(g, embedding.NewStore(g.NumEntities(), 3))
	u := NewEmbeddingUnionSearcher(l, empty)
	if res := u.Search(q, 5); len(res) != 0 {
		t.Errorf("results without embeddings = %v", res)
	}
}
