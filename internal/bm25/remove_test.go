package bm25

import (
	"fmt"
	"testing"
)

// buildDocs returns a small deterministic document set.
func liveDocs() map[int32]string {
	return map[int32]string{
		0: "city population table berlin munich",
		1: "city area table hamburg",
		2: "football club table bayern",
		3: "population density city country",
		4: "", // tokenizes to nothing: length-only bookkeeping
		5: "berlin berlin berlin club",
	}
}

// TestRemoveMatchesNeverHeldIndex pins incremental-removal equivalence:
// after Add-all then Remove-some, every search must score and rank exactly
// like an index that never held the removed documents — same df, same IDF,
// same average document length, bit-identical scores.
func TestRemoveMatchesNeverHeldIndex(t *testing.T) {
	docs := liveDocs()
	removed := map[int32]bool{1: true, 4: true, 5: true}

	full := NewIndex()
	for id, text := range docs {
		full.Add(id, text)
	}
	for id := range removed {
		// Doc 4 tokenized to nothing, so Add was a no-op and Remove must
		// report it was never held; every real doc must be found.
		if got, want := full.Remove(id), id != 4; got != want {
			t.Fatalf("Remove(%d) = %v, want %v", id, got, want)
		}
	}
	full.Finish()

	ref := NewIndex()
	for id, text := range docs {
		if !removed[id] {
			ref.Add(id, text)
		}
	}
	ref.Finish()

	if got, want := full.NumDocs(), ref.NumDocs(); got != want {
		t.Fatalf("NumDocs = %d after removals, want %d", got, want)
	}
	for _, q := range []string{"city", "berlin club", "population density", "hamburg", "table city population"} {
		a, b := full.Search(q, -1), ref.Search(q, -1)
		if len(a) != len(b) {
			t.Fatalf("q=%q: %d results after removal, reference %d", q, len(a), len(b))
		}
		for i := range b {
			if a[i].Doc != b[i].Doc || a[i].Score != b[i].Score {
				t.Fatalf("q=%q rank %d: got (%d, %v), reference (%d, %v)", q, i, a[i].Doc, a[i].Score, b[i].Doc, b[i].Score)
			}
		}
	}
}

func TestRemoveDeletesEmptiedPostingLists(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "unique token here")
	ix.Add(2, "token shared")
	if !ix.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	// "unique" and "here" appeared only in doc 1: their lists must be gone,
	// so they no longer contribute matches (a zero-length list would).
	if got := ix.Search("unique here", -1); len(got) != 0 {
		t.Fatalf("emptied posting lists still match: %v", got)
	}
	if got := ix.Search("token", -1); len(got) != 1 || got[0].Doc != 2 {
		t.Fatalf("shared posting list damaged: %v", got)
	}
}

func TestRemoveAbsentAndTokenless(t *testing.T) {
	ix := NewIndex()
	if ix.Remove(9) {
		t.Fatal("Remove on an empty index claims success")
	}
	ix.Add(1, "...") // tokenless: no postings, no length
	if ix.Remove(1) {
		t.Fatal("tokenless doc with zero length should not be tracked")
	}
	ix.Add(2, "some words")
	if ix.Remove(3) {
		t.Fatal("Remove of an absent doc claims success")
	}
	if !ix.Remove(2) || ix.Remove(2) {
		t.Fatal("Remove must succeed exactly once")
	}
	if ix.NumDocs() != 0 {
		t.Fatalf("NumDocs = %d after removing everything", ix.NumDocs())
	}
}

func TestAddAfterRemoveReusesID(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "alpha beta")
	ix.Add(2, "beta gamma")
	ix.Remove(1)
	ix.Add(1, "delta beta")
	got := ix.Search("delta", -1)
	if len(got) != 1 || got[0].Doc != 1 {
		t.Fatalf("re-added doc not searchable: %v", got)
	}
	// The old text must be fully gone.
	if got := ix.Search("alpha", -1); len(got) != 0 {
		t.Fatalf("stale postings from the removed incarnation: %v", got)
	}
	ref := NewIndex()
	ref.Add(1, "delta beta")
	ref.Add(2, "beta gamma")
	a, b := ix.Search("beta", -1), ref.Search("beta", -1)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("re-add diverges from reference: %v vs %v", a, b)
	}
}
