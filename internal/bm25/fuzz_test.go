package bm25

import "testing"

// FuzzTokenize: tokenization must never panic and must only produce
// non-empty lowercase alphanumeric tokens.
func FuzzTokenize(f *testing.F) {
	f.Add("Ron Santo, 3B (Chicago)")
	f.Add("")
	f.Add("δοκιμή ünïcödé 統一")
	f.Fuzz(func(t *testing.T, input string) {
		for _, tok := range Tokenize(input) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if r >= 'A' && r <= 'Z' {
					t.Fatalf("token %q not lowercased", tok)
				}
			}
		}
	})
}

// FuzzIndexSearch: indexing and searching arbitrary text must never panic,
// and scores must stay positive and finite.
func FuzzIndexSearch(f *testing.F) {
	f.Add("hello world", "hello")
	f.Add("", "")
	f.Add("a a a a b", "a b c")
	f.Fuzz(func(t *testing.T, doc, query string) {
		ix := NewIndex()
		ix.Add(0, doc)
		ix.Add(1, "fixed second document")
		ix.Finish()
		for _, r := range ix.Search(query, 10) {
			if !(r.Score > 0) {
				t.Fatalf("non-positive score %v", r.Score)
			}
			if r.Score != r.Score || r.Score > 1e308 {
				t.Fatalf("pathological score %v", r.Score)
			}
		}
	})
}
