package bm25

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Ron Santo, 3rd-base (Chicago Cubs)!")
	want := []string{"ron", "santo", "3rd", "base", "chicago", "cubs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if len(Tokenize("  ... ")) != 0 {
		t.Error("punctuation-only text should produce no tokens")
	}
}

func buildIndex() *Index {
	ix := NewIndex()
	ix.Add(0, "ron santo chicago cubs baseball")
	ix.Add(1, "mitch stetter milwaukee brewers baseball")
	ix.Add(2, "meryl streep actor film")
	ix.Add(3, "chicago bulls basketball chicago chicago")
	ix.Finish()
	return ix
}

func TestSearchRanksExactMatchFirst(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("ron santo", 10)
	if len(res) == 0 || res[0].Doc != 0 {
		t.Fatalf("Search(ron santo) = %v, want doc 0 first", res)
	}
}

func TestSearchMultipleMatches(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("baseball", 10)
	if len(res) != 2 {
		t.Fatalf("Search(baseball) = %v, want 2 docs", res)
	}
	got := map[int32]bool{res[0].Doc: true, res[1].Doc: true}
	if !got[0] || !got[1] {
		t.Errorf("Search(baseball) docs = %v, want {0,1}", got)
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildIndex()
	if res := ix.Search("volleyball", 10); len(res) != 0 {
		t.Errorf("Search(volleyball) = %v, want empty", res)
	}
	if res := ix.Search("", 10); len(res) != 0 {
		t.Errorf("Search(empty) = %v, want empty", res)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("chicago baseball", 1)
	if len(res) != 1 {
		t.Fatalf("k=1 returned %d results", len(res))
	}
	all := ix.Search("chicago baseball", -1)
	if len(all) != 3 {
		t.Errorf("k=-1 returned %d results, want 3", len(all))
	}
	if all[0].Doc != res[0].Doc {
		t.Error("truncation changed the top result")
	}
}

func TestScoresDescending(t *testing.T) {
	ix := buildIndex()
	res := ix.Search("chicago cubs baseball", -1)
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("scores not descending: %v", res)
		}
	}
}

func TestIDFPrefersRareTerms(t *testing.T) {
	ix := NewIndex()
	for i := int32(0); i < 20; i++ {
		ix.Add(i, "common filler words here")
	}
	ix.Add(20, "common rareword")
	ix.Finish()
	res := ix.Search("common rareword", 1)
	if len(res) == 0 || res[0].Doc != 20 {
		t.Fatalf("rare term did not dominate: %v", res)
	}
}

func TestIncrementalAddAfterFinish(t *testing.T) {
	ix := buildIndex()
	if res := ix.Search("lateword", 5); len(res) != 0 {
		t.Fatalf("unexpected hit before incremental add: %v", res)
	}
	ix.Add(9, "lateword arrives")
	res := ix.Search("lateword", 5)
	if len(res) != 1 || res[0].Doc != 9 {
		t.Fatalf("incrementally added document not found: %v", res)
	}
	// The average document length reflects the new document.
	if ix.avgLen == 0 {
		t.Error("avgLen not refreshed after incremental add")
	}
}

func TestSearchWithoutFinishLazilyFinalizes(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, "text here")
	res := ix.Search("text", 1)
	if len(res) != 1 || res[0].Doc != 0 {
		t.Fatalf("lazy finalize failed: %v", res)
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	ix := NewIndex()
	ix.Finish()
	if res := ix.Search("anything", 5); res != nil {
		t.Errorf("empty index search = %v", res)
	}
}

func TestAddSameDocTwiceMerges(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, "alpha beta")
	ix.Add(0, "alpha gamma")
	ix.Add(1, "delta")
	ix.Finish()
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", ix.NumDocs())
	}
	res := ix.Search("alpha", -1)
	if len(res) != 1 || res[0].Doc != 0 {
		t.Errorf("Search(alpha) = %v", res)
	}
}

func TestTableText(t *testing.T) {
	g := kg.NewGraph()
	e := g.AddEntity("dbr:Ron_Santo", "Ron Santo")
	tb := table.New("roster", []string{"Player", "Team"})
	tb.AppendRow([]table.Cell{table.LinkedCell("Ron Santo", e), {Value: "Cubs"}})
	text := TableText(tb)
	for _, want := range []string{"roster", "Player", "Team", "Ron Santo", "Cubs"} {
		if !strings.Contains(text, want) {
			t.Errorf("TableText missing %q: %q", want, text)
		}
	}
}

func TestIndexLake(t *testing.T) {
	g := kg.NewGraph()
	l := lake.New(g)
	t1 := table.New("teams", []string{"Team"})
	t1.AppendValues("Chicago Cubs")
	t2 := table.New("actors", []string{"Name"})
	t2.AppendValues("Meryl Streep")
	l.Add(t1)
	l.Add(t2)
	ix := IndexLake(l)
	res := ix.Search("cubs", 5)
	if len(res) != 1 || res[0].Doc != 0 {
		t.Errorf("IndexLake search = %v, want table 0", res)
	}
}

// Property-style fuzz: search never returns more than k results, never
// returns non-positive scores, and never panics on random input.
func TestSearchFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g"}
	ix := NewIndex()
	for d := int32(0); d < 50; d++ {
		var text string
		for w := 0; w < 1+rng.Intn(10); w++ {
			text += vocab[rng.Intn(len(vocab))] + " "
		}
		ix.Add(d, text)
	}
	ix.Finish()
	for trial := 0; trial < 100; trial++ {
		q := fmt.Sprintf("%s %s", vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
		k := rng.Intn(5)
		res := ix.Search(q, k)
		if len(res) > k {
			t.Fatalf("returned %d > k=%d", len(res), k)
		}
		for _, r := range res {
			if r.Score <= 0 {
				t.Fatalf("non-positive score %v", r)
			}
		}
	}
}
