// Package bm25 implements Okapi BM25 keyword search over data-lake tables,
// the exact-matching baseline of the paper's evaluation ("BM25 on text
// queries"). Every table is one document consisting of its name, attribute
// headers, and cell text. The same index doubles as the label index used to
// link GitTables-style corpora and as the naive BM25 prefilter ablated in
// Section 7.3.
package bm25

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Default Okapi parameters; the standard values used by Lucene.
const (
	DefaultK1 = 1.2
	DefaultB  = 0.75
)

// Tokenize lowercases and splits text into alphanumeric word tokens.
// Numbers are kept (cell contents are often numeric); everything else is a
// separator.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

type posting struct {
	doc  int32
	freq int32
}

// Index is a BM25 inverted index over integer document IDs. Build it with
// Add calls (any order of doc IDs) followed by Finish, then query with
// Search. An Index is safe for concurrent searches after Finish.
type Index struct {
	k1, b float64

	postings map[string][]posting
	docLen   map[int32]int
	// docTokens records each document's distinct tokens, so Remove can walk
	// exactly the posting lists that mention it instead of the whole index.
	docTokens map[int32][]string
	totalLen  int64
	// dirty marks that avgLen must be recomputed before the next search;
	// it lets documents be added incrementally at any time.
	dirty  bool
	avgLen float64
}

// NewIndex creates an empty index with the default BM25 parameters.
func NewIndex() *Index { return NewIndexParams(DefaultK1, DefaultB) }

// NewIndexParams creates an empty index with explicit k1/b parameters.
func NewIndexParams(k1, b float64) *Index {
	return &Index{
		k1:        k1,
		b:         b,
		postings:  make(map[string][]posting),
		docLen:    make(map[int32]int),
		docTokens: make(map[int32][]string),
	}
}

// Add indexes one document. Adding the same doc ID twice concatenates its
// text. Documents may be added at any time (incremental ingestion), but
// Add must not run concurrently with Search.
func (ix *Index) Add(doc int32, text string) {
	ix.dirty = true
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return
	}
	counts := make(map[string]int, len(tokens))
	for _, tok := range tokens {
		counts[tok]++
	}
	for tok, c := range counts {
		pl := ix.postings[tok]
		// Merge with an existing posting for this doc if Add is called
		// twice for the same ID.
		merged := false
		for i := range pl {
			if pl[i].doc == doc {
				pl[i].freq += int32(c)
				merged = true
				break
			}
		}
		if !merged {
			pl = append(pl, posting{doc: doc, freq: int32(c)})
			ix.docTokens[doc] = append(ix.docTokens[doc], tok)
		}
		ix.postings[tok] = pl
	}
	ix.docLen[doc] += len(tokens)
	ix.totalLen += int64(len(tokens))
}

// Remove deletes a document from the index, reporting whether it was
// present. Only the posting lists mentioning the document are touched
// (tracked per doc at Add time); a list emptied by the removal is deleted
// so term document-frequencies — and therefore IDF — match an index that
// never held the document. Like Add, Remove must not run concurrently
// with Search.
func (ix *Index) Remove(doc int32) bool {
	toks, ok := ix.docTokens[doc]
	if !ok {
		if _, had := ix.docLen[doc]; !had {
			return false
		}
		// Documents whose text tokenized to nothing have lengths but no
		// postings.
		ix.totalLen -= int64(ix.docLen[doc])
		delete(ix.docLen, doc)
		ix.dirty = true
		return true
	}
	for _, tok := range toks {
		pl := ix.postings[tok]
		for i := range pl {
			if pl[i].doc == doc {
				pl = append(pl[:i], pl[i+1:]...)
				break
			}
		}
		if len(pl) == 0 {
			delete(ix.postings, tok)
		} else {
			ix.postings[tok] = pl
		}
	}
	delete(ix.docTokens, doc)
	ix.totalLen -= int64(ix.docLen[doc])
	delete(ix.docLen, doc)
	ix.dirty = true
	return true
}

// Finish precomputes the average document length. Calling it is optional —
// Search finalizes lazily — but doing so after bulk ingestion keeps the
// index safe for concurrent searches (a lazy finalize inside Search is not).
func (ix *Index) Finish() {
	if len(ix.docLen) > 0 {
		ix.avgLen = float64(ix.totalLen) / float64(len(ix.docLen))
	}
	ix.dirty = false
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docLen) }

// Result is one scored document.
type Result struct {
	Doc   int32
	Score float64
}

// Search scores all documents matching at least one query token and returns
// the top-k results in descending score order (ascending doc ID on ties).
// Pass k < 0 for all matches.
func (ix *Index) Search(query string, k int) []Result {
	if ix.dirty {
		ix.Finish()
	}
	n := float64(len(ix.docLen))
	if n == 0 {
		return nil
	}
	scores := make(map[int32]float64)
	tokens := Tokenize(query)
	seen := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		if seen[tok] {
			continue // query term frequency is ignored, as in Lucene
		}
		seen[tok] = true
		pl := ix.postings[tok]
		if len(pl) == 0 {
			continue
		}
		df := float64(len(pl))
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, p := range pl {
			tf := float64(p.freq)
			dl := float64(ix.docLen[p.doc])
			norm := ix.k1 * (1 - ix.b + ix.b*dl/ix.avgLen)
			scores[p.doc] += idf * tf * (ix.k1 + 1) / (tf + norm)
		}
	}
	out := make([]Result, 0, len(scores))
	for doc, s := range scores {
		out = append(out, Result{Doc: doc, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
