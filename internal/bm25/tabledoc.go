package bm25

import (
	"strings"

	"thetis/internal/lake"
	"thetis/internal/table"
)

// TableText flattens a table into the document text BM25 indexes: name,
// attribute headers, and every cell value.
func TableText(t *table.Table) string {
	var sb strings.Builder
	sb.WriteString(t.Name)
	sb.WriteByte(' ')
	sb.WriteString(strings.Join(t.Attributes, " "))
	for _, row := range t.Rows {
		for _, c := range row {
			sb.WriteByte(' ')
			sb.WriteString(c.Value)
		}
	}
	return sb.String()
}

// IndexLake builds a finished BM25 index over every live table of a lake,
// with document IDs equal to table IDs (removed tables leave nil slots,
// which are skipped).
func IndexLake(l *lake.Lake) *Index {
	ix := NewIndex()
	for id, t := range l.Tables() {
		if t != nil {
			ix.Add(int32(id), TableText(t))
		}
	}
	ix.Finish()
	return ix
}
