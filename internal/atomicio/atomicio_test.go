package atomicio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thetis/internal/faultio"
)

// envelope builds a sealed snapshot (header + CRC-sealed payload section +
// footer) for corruption tests.
func envelope(t *testing.T, magic, version uint32, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf, magic, version)
	if err != nil {
		t.Fatal(err)
	}
	cw := NewCRCWriter(sw)
	if _, err := cw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteSum(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// open reads an envelope end to end the way snapshot loaders do.
func open(data []byte, magic, version uint32, payloadLen int) error {
	sr, err := NewSnapshotReader(bytes.NewReader(data), magic)
	if err != nil {
		return err
	}
	if sr.Version() != version {
		return Corruptf("unsupported version %d", sr.Version())
	}
	cr := NewCRCReader(sr)
	got := make([]byte, payloadLen)
	if _, err := io.ReadFull(cr, got); err != nil {
		return Corruptf("truncated payload: %v", err)
	}
	if err := cr.VerifySum(); err != nil {
		return err
	}
	return sr.Close()
}

func TestSnapshotEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	data := envelope(t, 0xAB12, 3, payload)
	if err := open(data, 0xAB12, 3, len(payload)); err != nil {
		t.Fatalf("clean envelope rejected: %v", err)
	}
	if err := open(data, 0xAB13, 3, len(payload)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("wrong magic: got %v, want ErrCorruptSnapshot", err)
	}
}

// TestCorruptEnvelopeEveryByte is the core single-byte corruption matrix:
// flipping any byte of the envelope — header, payload, section checksum,
// footer — must be detected.
func TestCorruptEnvelopeEveryByte(t *testing.T) {
	payload := []byte("semantic data lakes hold fantastic tables")
	data := envelope(t, 0x1234, 1, payload)
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0x01
		if err := open(mut, 0x1234, 1, len(payload)); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("byte %d flipped: got %v, want ErrCorruptSnapshot", i, err)
		}
	}
}

// TestCorruptEnvelopeTruncation: every proper prefix must be rejected.
func TestCorruptEnvelopeTruncation(t *testing.T) {
	payload := []byte("short payload")
	data := envelope(t, 0x1234, 1, payload)
	for n := 0; n < len(data); n++ {
		if err := open(data[:n], 0x1234, 1, len(payload)); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrCorruptSnapshot", n, err)
		}
	}
}

func TestCRCSectionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCRCWriter(&buf)
	cw.Write([]byte("hello"))
	cw.Write([]byte(" world"))
	if err := cw.WriteSum(); err != nil {
		t.Fatal(err)
	}
	if cw.Count() != 11 {
		t.Errorf("Count = %d, want 11", cw.Count())
	}
	cr := NewCRCReader(&buf)
	got := make([]byte, 11)
	if _, err := io.ReadFull(cr, got); err != nil {
		t.Fatal(err)
	}
	if err := cr.VerifySum(); err != nil {
		t.Fatalf("clean section rejected: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}
	// Overwrite keeps either old or new, here: new.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v2-longer"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2-longer" {
		t.Fatalf("content after rewrite = %q", got)
	}
}

// TestFaultWriteFileAtomicFailure: a failing payload writer must leave the
// previous file contents intact and no temp litter behind.
func TestFaultWriteFileAtomicFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(path, func(w io.Writer) error {
		fw := faultio.NewFailingWriter(w, 2, nil)
		_, err := fw.Write([]byte("partial write then crash"))
		return err
	})
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("injected write fault not surfaced: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "good" {
		t.Fatalf("previous contents clobbered by failed write: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp litter left behind: %v", ents)
	}
}

func TestLineReader(t *testing.T) {
	lr := NewLineReader(strings.NewReader("one\r\ntwo\n\nfour"), 100)
	want := []string{"one", "two", "", "four"}
	for i, w := range want {
		line, n, tooLong, err := lr.Next()
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if n != i+1 || tooLong || string(line) != w {
			t.Fatalf("line %d = %q (no=%d tooLong=%v), want %q", i+1, line, n, tooLong, w)
		}
	}
	if _, _, _, err := lr.Next(); err != io.EOF {
		t.Fatalf("after last line: %v, want EOF", err)
	}
}

// TestLineReaderTooLong: an over-cap line is reported truncated and fully
// consumed; subsequent lines keep their correct numbers and content.
func TestLineReaderTooLong(t *testing.T) {
	long := strings.Repeat("x", 200*1024) // crosses the internal buffer size
	lr := NewLineReader(strings.NewReader("ok\n"+long+"\nafter\n"), 10)
	line, _, tooLong, err := lr.Next()
	if err != nil || tooLong || string(line) != "ok" {
		t.Fatalf("first line = %q tooLong=%v err=%v", line, tooLong, err)
	}
	line, n, tooLong, err := lr.Next()
	if err != nil || !tooLong || n != 2 {
		t.Fatalf("long line: no=%d tooLong=%v err=%v", n, tooLong, err)
	}
	if len(line) != 10 || string(line) != "xxxxxxxxxx" {
		t.Fatalf("long line kept %d bytes %q, want first 10", len(line), line)
	}
	line, n, tooLong, err = lr.Next()
	if err != nil || tooLong || n != 3 || string(line) != "after" {
		t.Fatalf("line after long = %q (no=%d tooLong=%v err=%v)", line, n, tooLong, err)
	}
}

// TestFaultLineReaderReadError: a mid-stream read error is surfaced, not
// spun on.
func TestFaultLineReaderReadError(t *testing.T) {
	src := faultio.NewFailingReader(strings.NewReader("aaa\nbbb\nccc\n"), 5, nil)
	lr := NewLineReader(src, 100)
	if _, _, _, err := lr.Next(); err != nil {
		t.Fatalf("first line should be buffered: %v", err)
	}
	_, _, _, err := lr.Next()
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("injected read fault not surfaced: %v", err)
	}
}
