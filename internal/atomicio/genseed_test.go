package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzSeeds regenerates the checked-in FuzzDeltaReplay seed
// corpus when run with THETIS_REGEN_FUZZ_SEEDS=1; otherwise it verifies the
// corpus files exist and parse as go-fuzz v1 entries.
func TestGenerateFuzzSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDeltaReplay")
	var buf bytes.Buffer
	dw, err := NewDeltaWriter(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, payload := range [][]byte{[]byte(`{"name":"a"}`), {3, 0, 0, 0}, {}, []byte("tail")} {
		if err := dw.Append(byte(i%2+1), payload); err != nil {
			t.Fatal(err)
		}
	}
	valid := buf.Bytes()
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x80
	seeds := map[string][]byte{
		"valid-log":        valid,
		"truncated-header": valid[:16],
		"truncated-record": valid[:len(valid)-3],
		"flipped-byte":     flipped,
		"garbage-magic":    []byte("TDL1 not really a log"),
	}
	if os.Getenv("THETIS_REGEN_FUZZ_SEEDS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name := range seeds {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("seed corpus missing (regenerate with THETIS_REGEN_FUZZ_SEEDS=1): %v", err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Fatalf("seed %s is not a go-fuzz v1 entry", name)
		}
	}
}
