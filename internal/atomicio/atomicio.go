// Package atomicio provides the robust I/O primitives of the fault-tolerant
// data plane: atomic (temp-file → fsync → rename) file writes, a checksummed
// and versioned snapshot envelope shared by the LSEI and LSH serializers,
// CRC32C section writers/readers, and a bounded line reader that the lenient
// ingestion paths use to skip over-long lines instead of aborting.
//
// The envelope wire format is documented in docs/RELIABILITY.md: an 8-byte
// header (magic, version), the payload (whose components carry their own
// section checksums), and a 16-byte footer (footer magic, CRC32C of header +
// payload, total length). Loads verify every layer and surface any mismatch
// as ErrCorruptSnapshot, so a flipped bit is always detected rather than
// silently deserialized into a wrong index.
package atomicio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCorruptSnapshot is the typed error returned when loading a snapshot
// whose bytes fail validation: bad magic, unsupported version, checksum
// mismatch, truncation, or structurally implausible contents. Callers match
// it with errors.Is and fall back to rebuilding (degraded-mode serving)
// instead of trusting a damaged index.
var ErrCorruptSnapshot = errors.New("corrupt snapshot")

// Corruptf builds an error wrapping ErrCorruptSnapshot with detail.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// AsCorrupt coerces err into the ErrCorruptSnapshot family: errors already
// in it pass through, anything else (including bare io errors from a
// truncated stream) is wrapped. nil stays nil.
func AsCorrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorruptSnapshot) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorruptSnapshot, err)
}

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum of all snapshot sections and footers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRCWriter forwards writes to W while accumulating a CRC32C of every byte
// written. Serializers write a component through it and seal the component
// with WriteSum.
type CRCWriter struct {
	W   io.Writer
	crc uint32
	n   uint64
}

// NewCRCWriter wraps w.
func NewCRCWriter(w io.Writer) *CRCWriter { return &CRCWriter{W: w} }

// Write implements io.Writer.
func (cw *CRCWriter) Write(p []byte) (int, error) {
	n, err := cw.W.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += uint64(n)
	return n, err
}

// Sum32 returns the running CRC32C.
func (cw *CRCWriter) Sum32() uint32 { return cw.crc }

// Count returns the number of bytes written so far.
func (cw *CRCWriter) Count() uint64 { return cw.n }

// WriteSum appends the running checksum (little-endian uint32) to the
// underlying writer, sealing the section. The sum bytes themselves are not
// folded into the running CRC, so the matching CRCReader.VerifySum can
// recompute and compare.
func (cw *CRCWriter) WriteSum() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], cw.crc)
	_, err := cw.W.Write(buf[:])
	return err
}

// CRCReader forwards reads from R while accumulating a CRC32C of every byte
// read, mirroring CRCWriter.
type CRCReader struct {
	R   io.Reader
	crc uint32
	n   uint64
}

// NewCRCReader wraps r.
func NewCRCReader(r io.Reader) *CRCReader { return &CRCReader{R: r} }

// Read implements io.Reader.
func (cr *CRCReader) Read(p []byte) (int, error) {
	n, err := cr.R.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	cr.n += uint64(n)
	return n, err
}

// Sum32 returns the running CRC32C.
func (cr *CRCReader) Sum32() uint32 { return cr.crc }

// Count returns the number of bytes read so far.
func (cr *CRCReader) Count() uint64 { return cr.n }

// VerifySum reads a section checksum written by CRCWriter.WriteSum from the
// underlying reader (outside the running CRC) and compares it against the
// recomputed sum, returning ErrCorruptSnapshot on mismatch or truncation.
func (cr *CRCReader) VerifySum() error {
	want := cr.crc
	var buf [4]byte
	if _, err := io.ReadFull(cr.R, buf[:]); err != nil {
		return Corruptf("truncated section checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return Corruptf("section checksum mismatch: stored %#x, computed %#x", got, want)
	}
	return nil
}

// snapshotFooterMagic marks the envelope footer ("TFT1"). A payload that
// over- or under-consumes (e.g. a flipped length field) lands the reader on
// non-footer bytes and fails this check.
const snapshotFooterMagic = uint32(0x54465431)

// SnapshotWriter frames a payload in the checksummed envelope. Create it
// with NewSnapshotWriter (which emits the header), write the payload through
// it, then Close to emit the footer.
type SnapshotWriter struct {
	cw *CRCWriter
}

// NewSnapshotWriter writes the envelope header (magic, version) to w and
// returns a writer accumulating the envelope checksum.
func NewSnapshotWriter(w io.Writer, magic, version uint32) (*SnapshotWriter, error) {
	sw := &SnapshotWriter{cw: NewCRCWriter(w)}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := sw.cw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Write implements io.Writer over the payload.
func (sw *SnapshotWriter) Write(p []byte) (int, error) { return sw.cw.Write(p) }

// Close writes the footer: footer magic, CRC32C over header + payload, and
// the total header + payload length. It does not close the underlying
// writer.
func (sw *SnapshotWriter) Close() error {
	var f [16]byte
	binary.LittleEndian.PutUint32(f[0:], snapshotFooterMagic)
	binary.LittleEndian.PutUint32(f[4:], sw.cw.Sum32())
	binary.LittleEndian.PutUint64(f[8:], sw.cw.Count())
	_, err := sw.cw.W.Write(f[:])
	return err
}

// SnapshotReader unwraps the checksummed envelope. Create it with
// NewSnapshotReader (which validates the header), read the payload through
// it, then Close to validate the footer. Every validation failure is an
// ErrCorruptSnapshot.
type SnapshotReader struct {
	cr      *CRCReader
	version uint32
}

// NewSnapshotReader reads and validates the envelope header. A magic
// mismatch — whether a flipped byte or a non-snapshot file — returns
// ErrCorruptSnapshot.
func NewSnapshotReader(r io.Reader, magic uint32) (*SnapshotReader, error) {
	sr := &SnapshotReader{cr: NewCRCReader(r)}
	var hdr [8]byte
	if _, err := io.ReadFull(sr.cr, hdr[:]); err != nil {
		return nil, Corruptf("truncated snapshot header: %v", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != magic {
		return nil, Corruptf("bad snapshot magic %#x, want %#x", got, magic)
	}
	sr.version = binary.LittleEndian.Uint32(hdr[4:])
	return sr, nil
}

// Version returns the format version from the header. Callers reject
// unsupported versions with ErrCorruptSnapshot (a flipped version byte is
// indistinguishable from a future format).
func (sr *SnapshotReader) Version() uint32 { return sr.version }

// Read implements io.Reader over the payload.
func (sr *SnapshotReader) Read(p []byte) (int, error) { return sr.cr.Read(p) }

// Close reads and validates the footer against the bytes consumed so far.
// It must be called after the payload has been fully read.
func (sr *SnapshotReader) Close() error {
	want, n := sr.cr.Sum32(), sr.cr.Count()
	var f [16]byte
	if _, err := io.ReadFull(sr.cr.R, f[:]); err != nil {
		return Corruptf("truncated snapshot footer: %v", err)
	}
	if got := binary.LittleEndian.Uint32(f[0:]); got != snapshotFooterMagic {
		return Corruptf("bad footer magic %#x (payload length drift or flipped bytes)", got)
	}
	if got := binary.LittleEndian.Uint32(f[4:]); got != want {
		return Corruptf("envelope checksum mismatch: stored %#x, computed %#x", got, want)
	}
	if got := binary.LittleEndian.Uint64(f[8:]); got != n {
		return Corruptf("envelope length mismatch: stored %d, read %d", got, n)
	}
	return nil
}

// WriteFileAtomic writes a file so that readers observe either the previous
// contents or the complete new contents, never a partial write: fn streams
// into a temp file in the target's directory, which is fsynced and renamed
// over path (the directory is fsynced too, making the rename durable). On
// any error the temp file is removed and the target left untouched.
func WriteFileAtomic(path string, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = fn(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Fsync the directory so the rename itself survives a crash. Best
	// effort: some filesystems refuse directory fsync.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LineReader yields lines from a stream with a hard per-line byte cap.
// Unlike bufio.Scanner, an over-long line is not fatal: the reader reports
// it as truncated, consumes the remainder, and keeps going — the behavior
// lenient ingestion needs to quarantine one pathological line without
// abandoning the rest of a corpus.
type LineReader struct {
	br     *bufio.Reader
	max    int
	lineNo int
	eof    bool
}

// NewLineReader wraps r with the given per-line cap (bytes, excluding the
// newline). maxBytes must be positive.
func NewLineReader(r io.Reader, maxBytes int) *LineReader {
	if maxBytes <= 0 {
		panic("atomicio: LineReader needs a positive line cap")
	}
	return &LineReader{br: bufio.NewReaderSize(r, 64*1024), max: maxBytes}
}

// Next returns the next line (without its newline), its 1-based line
// number, and whether the line exceeded the cap (in which case line holds
// the first max bytes and the rest was consumed and discarded). The final
// unterminated line, if any, is returned like any other; exhaustion returns
// io.EOF. The returned slice is valid until the next call.
func (lr *LineReader) Next() (line []byte, lineNo int, tooLong bool, err error) {
	if lr.eof {
		return nil, lr.lineNo, false, io.EOF
	}
	lr.lineNo++
	for {
		frag, e := lr.br.ReadSlice('\n')
		switch {
		case tooLong:
			// Discarding the remainder of an over-long line.
		case len(line)+len(frag) > lr.max:
			keep := lr.max - len(line)
			line = append(line, frag[:keep]...)
			tooLong = true
		default:
			line = append(line, frag...)
		}
		if e == bufio.ErrBufferFull {
			continue
		}
		if e == io.EOF {
			lr.eof = true
			if len(line) == 0 && !tooLong {
				return nil, lr.lineNo, false, io.EOF
			}
			return trimEOL(line), lr.lineNo, tooLong, nil
		}
		if e != nil {
			return trimEOL(line), lr.lineNo, tooLong, e
		}
		return trimEOL(line), lr.lineNo, tooLong, nil
	}
}

func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}
