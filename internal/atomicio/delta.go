package atomicio

import (
	"encoding/binary"
	"io"
)

// Delta log: an append-only record stream layered next to the base
// snapshot, so a restart can replay base + deltas instead of losing every
// mutation since the last full save (docs/LIVE_INDEX.md).
//
// Wire format (all little-endian):
//
//	header:  magic "TDL1" (u32) | version (u32) | baseTables (u64) | CRC32C
//	record:  seq (u64) | op (u8) | payloadLen (u32) | payload | CRC32C
//
// Each record carries its own CRC32C (over seq..payload), so a torn final
// append — the expected crash shape for an append-only file — is detected
// at exactly that record and everything before it replays. Sequence
// numbers start at 1 and must be contiguous; a reordered, duplicated, or
// dropped record therefore fails validation even if its bytes are intact.
// Every validation failure is an ErrCorruptSnapshot; a clean io.EOF is
// only reported at a record boundary.

// DeltaMagic identifies a delta log ("TDL1" as a little-endian uint32).
const DeltaMagic = uint32(0x544C4431)

// DeltaVersion is the current delta-log format version.
const DeltaVersion = uint32(1)

// MaxDeltaPayload bounds a single record's payload, rejecting corrupt
// length fields before they drive a huge allocation.
const MaxDeltaPayload = 64 << 20

// DeltaWriter appends records to a delta log. It does not buffer or sync;
// callers own the underlying file and its durability.
type DeltaWriter struct {
	w       io.Writer
	nextSeq uint64
}

// NewDeltaWriter writes a fresh log header to w. baseTables records the
// table-slot count of the base snapshot the log applies to, letting replay
// refuse a log paired with the wrong base.
func NewDeltaWriter(w io.Writer, baseTables uint64) (*DeltaWriter, error) {
	cw := NewCRCWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], DeltaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], DeltaVersion)
	binary.LittleEndian.PutUint64(hdr[8:], baseTables)
	if _, err := cw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if err := cw.WriteSum(); err != nil {
		return nil, err
	}
	return &DeltaWriter{w: w, nextSeq: 1}, nil
}

// ResumeDeltaWriter continues appending to an existing log whose records
// have been replayed up to (not including) nextSeq — typically
// DeltaReader.NextSeq after a full replay. No header is written.
func ResumeDeltaWriter(w io.Writer, nextSeq uint64) *DeltaWriter {
	if nextSeq < 1 {
		nextSeq = 1
	}
	return &DeltaWriter{w: w, nextSeq: nextSeq}
}

// NextSeq returns the sequence number the next Append will use.
func (dw *DeltaWriter) NextSeq() uint64 { return dw.nextSeq }

// Append writes one record. op is caller-defined; payload may be empty but
// must not exceed MaxDeltaPayload.
func (dw *DeltaWriter) Append(op byte, payload []byte) error {
	if len(payload) > MaxDeltaPayload {
		return Corruptf("delta payload too large: %d bytes", len(payload))
	}
	cw := NewCRCWriter(dw.w)
	var hdr [13]byte
	binary.LittleEndian.PutUint64(hdr[0:], dw.nextSeq)
	hdr[8] = op
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cw.Write(payload); err != nil {
		return err
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	dw.nextSeq++
	return nil
}

// DeltaReader validates and yields the records of a delta log.
type DeltaReader struct {
	r       io.Reader
	base    uint64
	nextSeq uint64
}

// NewDeltaReader reads and validates the log header. Any mismatch — wrong
// magic, unknown version, flipped header byte — is an ErrCorruptSnapshot.
func NewDeltaReader(r io.Reader) (*DeltaReader, error) {
	cr := NewCRCReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, Corruptf("truncated delta-log header: %v", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != DeltaMagic {
		return nil, Corruptf("bad delta-log magic %#x, want %#x", got, DeltaMagic)
	}
	if got := binary.LittleEndian.Uint32(hdr[4:]); got != DeltaVersion {
		return nil, Corruptf("unsupported delta-log version %d", got)
	}
	dr := &DeltaReader{r: r, base: binary.LittleEndian.Uint64(hdr[8:]), nextSeq: 1}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	return dr, nil
}

// BaseTables returns the base snapshot's table-slot count from the header.
func (dr *DeltaReader) BaseTables() uint64 { return dr.base }

// NextSeq returns the sequence number the next record must carry — after a
// clean io.EOF, the value to hand ResumeDeltaWriter.
func (dr *DeltaReader) NextSeq() uint64 { return dr.nextSeq }

// Next returns the next record. A clean end of log returns io.EOF;
// truncation mid-record, a checksum mismatch, or a sequence break
// (reordered, duplicated, or dropped record) returns ErrCorruptSnapshot.
// The payload slice is freshly allocated and owned by the caller.
func (dr *DeltaReader) Next() (seq uint64, op byte, payload []byte, err error) {
	cr := NewCRCReader(dr.r)
	var hdr [13]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, Corruptf("truncated delta record header: %v", err)
	}
	seq = binary.LittleEndian.Uint64(hdr[0:])
	op = hdr[8]
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > MaxDeltaPayload {
		return 0, 0, nil, Corruptf("delta record %d: implausible payload length %d", seq, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(cr, payload); err != nil {
		return 0, 0, nil, Corruptf("delta record %d: truncated payload: %v", seq, err)
	}
	if err := cr.VerifySum(); err != nil {
		return 0, 0, nil, Corruptf("delta record %d: %v", seq, err)
	}
	if seq != dr.nextSeq {
		return 0, 0, nil, Corruptf("delta sequence break: got record %d, want %d (reordered, duplicated, or dropped)", seq, dr.nextSeq)
	}
	dr.nextSeq++
	return seq, op, payload, nil
}
