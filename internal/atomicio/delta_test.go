package atomicio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// writeLog builds a log with the given base and records, returning the bytes.
func writeLog(t *testing.T, base uint64, records [][2]interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	dw, err := NewDeltaWriter(&buf, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		if err := dw.Append(rec[0].(byte), rec[1].([]byte)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// drain replays a log fully, returning records or the terminal error.
func drain(data []byte) (base uint64, ops []byte, payloads [][]byte, next uint64, err error) {
	dr, err := NewDeltaReader(bytes.NewReader(data))
	if err != nil {
		return 0, nil, nil, 0, err
	}
	for {
		_, op, payload, err := dr.Next()
		if err == io.EOF {
			return dr.BaseTables(), ops, payloads, dr.NextSeq(), nil
		}
		if err != nil {
			return dr.BaseTables(), ops, payloads, dr.NextSeq(), err
		}
		ops = append(ops, op)
		payloads = append(payloads, payload)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	records := [][2]interface{}{
		{byte(1), []byte(`{"name":"t"}`)},
		{byte(2), []byte{7, 0, 0, 0}},
		{byte(1), []byte{}}, // empty payload is legal
	}
	data := writeLog(t, 42, records)
	base, ops, payloads, next, err := drain(data)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if base != 42 {
		t.Fatalf("base = %d, want 42", base)
	}
	if len(ops) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(ops), len(records))
	}
	for i, rec := range records {
		if ops[i] != rec[0].(byte) || !bytes.Equal(payloads[i], rec[1].([]byte)) {
			t.Fatalf("record %d diverged: op=%d payload=%v", i, ops[i], payloads[i])
		}
	}
	if next != uint64(len(records))+1 {
		t.Fatalf("NextSeq = %d, want %d", next, len(records)+1)
	}
}

func TestDeltaResumeWriter(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewDeltaWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Replay, then resume appending at the reported sequence — the combined
	// log must replay cleanly as one contiguous stream.
	_, _, _, next, err := drain(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rw := ResumeDeltaWriter(&buf, next)
	if rw.NextSeq() != 2 {
		t.Fatalf("resumed NextSeq = %d, want 2", rw.NextSeq())
	}
	if err := rw.Append(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	_, ops, _, next, err := drain(buf.Bytes())
	if err != nil {
		t.Fatalf("combined log corrupt: %v", err)
	}
	if len(ops) != 2 || ops[0] != 1 || ops[1] != 2 || next != 3 {
		t.Fatalf("combined replay wrong: ops=%v next=%d", ops, next)
	}
}

// mustCorruptDelta asserts the replay of data fails with ErrCorruptSnapshot.
func mustCorruptDelta(t *testing.T, data []byte, what string) {
	t.Helper()
	_, _, _, _, err := drain(data)
	if err == nil {
		t.Fatalf("%s: replayed without error", what)
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("%s: got %v, want ErrCorruptSnapshot", what, err)
	}
}

func TestDeltaCorruptionDetection(t *testing.T) {
	records := [][2]interface{}{
		{byte(1), []byte("first payload")},
		{byte(2), []byte{1, 2, 3, 4}},
	}
	clean := writeLog(t, 9, records)
	if _, _, _, _, err := drain(clean); err != nil {
		t.Fatalf("clean log: %v", err)
	}

	flip := func(i int) []byte {
		d := append([]byte(nil), clean...)
		d[i] ^= 0x20
		return d
	}
	mustCorruptDelta(t, flip(0), "flipped magic byte")
	mustCorruptDelta(t, flip(4), "flipped version byte")
	mustCorruptDelta(t, flip(10), "flipped baseTables byte")
	mustCorruptDelta(t, flip(25), "flipped record header byte")
	mustCorruptDelta(t, flip(len(clean)-2), "flipped trailing CRC byte")
	mustCorruptDelta(t, clean[:len(clean)-1], "truncated final CRC")
	mustCorruptDelta(t, clean[:25], "truncated mid-record")
	mustCorruptDelta(t, clean[:10], "truncated header")
	mustCorruptDelta(t, nil, "empty input")

	// Duplicated record: repeat the final record's bytes — intact CRC, but
	// the sequence number repeats.
	lastRecLen := 13 + 4 + 4 // header + payload + CRC of record 2
	dup := append(append([]byte(nil), clean...), clean[len(clean)-lastRecLen:]...)
	mustCorruptDelta(t, dup, "duplicated record")

	// Dropped record: cut record 1 out, leaving record 2 with seq 2 first.
	rec1Len := 13 + len("first payload") + 4
	headerLen := 16 + 4
	drop := append(append([]byte(nil), clean[:headerLen]...), clean[headerLen+rec1Len:]...)
	mustCorruptDelta(t, drop, "dropped record")

	// Reordered records: swap the two record regions.
	rec1 := clean[headerLen : headerLen+rec1Len]
	rec2 := clean[headerLen+rec1Len:]
	swapped := append(append(append([]byte(nil), clean[:headerLen]...), rec2...), rec1...)
	mustCorruptDelta(t, swapped, "reordered records")
}

func TestDeltaOversizedPayloadRefused(t *testing.T) {
	var buf bytes.Buffer
	dw, err := NewDeltaWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxDeltaPayload+1)
	if err := dw.Append(1, big); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("oversized append returned %v", err)
	}
	// A forged length field beyond the cap must be rejected before any
	// allocation-sized read.
	data := writeLog(t, 0, [][2]interface{}{{byte(1), []byte("x")}})
	forged := append([]byte(nil), data...)
	forged[20+9] = 0xFF // payloadLen low byte
	forged[20+10] = 0xFF
	forged[20+11] = 0xFF
	forged[20+12] = 0x7F
	mustCorruptDelta(t, forged, "forged payload length")
}

// FuzzDeltaReplay feeds arbitrary bytes through the full replay loop: the
// reader must never panic, never allocate unboundedly, and fail only with a
// clean io.EOF at a record boundary or ErrCorruptSnapshot — the contract
// AttachDeltaLog relies on to turn arbitrary on-disk damage into a typed
// "restore from base" signal.
func FuzzDeltaReplay(f *testing.F) {
	// Seed corpus: a valid log plus structured mutations of it.
	var buf bytes.Buffer
	dw, err := NewDeltaWriter(&buf, 7)
	if err != nil {
		f.Fatal(err)
	}
	for i, payload := range [][]byte{[]byte(`{"name":"a"}`), {3, 0, 0, 0}, {}, []byte("tail")} {
		if err := dw.Append(byte(i%2+1), payload); err != nil {
			f.Fatal(err)
		}
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:16])
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte(nil), valid...), valid[20:]...))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped)
	f.Add([]byte("TDL1 not really a log"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dr, err := NewDeltaReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("header error is not typed corruption: %v", err)
			}
			return
		}
		for i := 0; i < 1<<16; i++ {
			_, _, payload, err := dr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorruptSnapshot) {
					t.Fatalf("record error is not typed corruption: %v", err)
				}
				return
			}
			if len(payload) > MaxDeltaPayload {
				t.Fatalf("oversized payload slipped through: %d bytes", len(payload))
			}
		}
	})
}
