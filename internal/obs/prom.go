package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE block per family, then
// one sample line per series — counters and gauges directly, histograms as
// cumulative `_bucket{le="…"}` lines plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			if err := writeSeries(w, f, f.series[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name, s.labels, ""), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, s.labels, ""), formatFloat(s.g.Value()))
		return err
	default: // histogram
		cumulative, sum, count := s.h.snapshot()
		for i, upper := range s.h.upper {
			le := formatFloat(upper)
			if _, err := fmt.Fprintf(w, "%s %d\n",
				sampleName(f.name+"_bucket", s.labels, `le="`+le+`"`), cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			sampleName(f.name+"_bucket", s.labels, `le="+Inf"`), cumulative[len(cumulative)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", s.labels, ""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", s.labels, ""), count)
		return err
	}
}

// sampleName renders name{labels,extra} with empty parts elided.
func sampleName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format, ready to mount on GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
