package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test", nil)
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	c.Add(-5)
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter went down: %d", got)
	}
}

func TestCounterHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "test", Labels{"x": "1"})
	b := reg.Counter("dup_total", "test", Labels{"x": "1"})
	if a != b {
		t.Error("same name+labels must return the same handle")
	}
	other := reg.Counter("dup_total", "test", Labels{"x": "2"})
	if a == other {
		t.Error("different labels must return distinct handles")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "test", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering gauge under counter name")
		}
	}()
	reg.Gauge("m", "test", nil)
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "test", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8*500*0.5 {
		t.Errorf("gauge = %v, want %v", got, 8*500*0.5)
	}
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge after Set = %v", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "test", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// le semantics: 0.5 and 1 land in bucket ≤1; 1.5 in ≤2; 3 in ≤4; 100 in +Inf.
	cumulative, sum, count := h.snapshot()
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (all: %v)", i, cumulative[i], w, cumulative)
		}
	}
	if count != 5 || sum != 106 {
		t.Errorf("count = %d sum = %v, want 5, 106", count, sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hc", "test", []float64{0.5}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("count = %d sum = %v, want 8000, 8000", h.Count(), h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	// 10 samples uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if q := h.Quantile(0.5); math.Abs(q-10) > 1e-9 {
		t.Errorf("median = %v, want 10 (bucket boundary)", q)
	}
	// 0.75 quantile: rank 15, i.e. halfway through the (10,20] bucket.
	if q := h.Quantile(0.75); math.Abs(q-15) > 1e-9 {
		t.Errorf("p75 = %v, want 15", q)
	}
	if q := h.Quantile(0.25); math.Abs(q-5) > 1e-9 {
		t.Errorf("p25 = %v, want 5", q)
	}
	// Out-of-range q clamps; empty histogram yields NaN.
	if q := h.Quantile(2); math.Abs(q-20) > 1e-9 {
		t.Errorf("clamped q=2 -> %v, want 20", q)
	}
	empty := newHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(50) // lands in +Inf
	if q := h.Quantile(0.99); q != 2 {
		t.Errorf("quantile from +Inf bucket = %v, want largest finite bound 2", q)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for factor <= 1")
		}
	}()
	ExponentialBuckets(1, 1, 3)
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("app_requests_total", "Requests served.", Labels{"endpoint": "/search"}).Add(3)
	reg.Gauge("app_ratio", "A ratio.", nil).Set(0.25)
	h := reg.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		`app_requests_total{endpoint="/search"} 3`,
		"# TYPE app_ratio gauge",
		"app_ratio 0.25",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.1"} 1`,
		`app_latency_seconds_bucket{le="1"} 2`,
		`app_latency_seconds_bucket{le="+Inf"} 3`,
		"app_latency_seconds_sum 5.5625",
		"app_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "test", Labels{"q": "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", b.String())
	}
}
