package obs

// Standard metric definitions for the Thetis search service. Centralizing
// names, help strings, and bucket layouts here keeps /metrics consistent
// with docs/OBSERVABILITY.md; instrumented packages call these once (at
// init or construction) and cache the returned handles.

// SearchesTotal counts completed engine searches.
func SearchesTotal() *Counter {
	return Default.Counter("thetis_search_total",
		"Completed semantic searches (Engine.Search/SearchCandidates).", nil)
}

// SearchSeconds observes end-to-end engine search latency.
func SearchSeconds() *Histogram {
	return Default.Histogram("thetis_search_seconds",
		"End-to-end semantic search wall time in seconds.", LatencyBuckets, nil)
}

// SearchStageSeconds observes per-stage search durations. Stage names
// follow the pipeline: probe, vote, mapping, score, rank. For "mapping" the
// observed value is CPU time summed across scoring workers.
func SearchStageSeconds(stage string) *Histogram {
	return Default.Histogram("thetis_search_stage_seconds",
		"Per-stage search duration in seconds (mapping = cross-worker CPU time).",
		LatencyBuckets, Labels{"stage": stage})
}

// SearchCandidates observes candidate-set sizes entering the scorer.
func SearchCandidates() *Histogram {
	return Default.Histogram("thetis_search_candidates",
		"Tables scored per search, after any prefiltering.", CountBuckets, nil)
}

// SearchTruncatedTotal counts searches cut short by context cancellation or
// deadline expiry — best-effort partial results, not errors.
func SearchTruncatedTotal() *Counter {
	return Default.Counter("thetis_search_truncated_total",
		"Searches truncated by context cancellation or deadline, returning partial results.", nil)
}

// SigmaCacheHitsTotal counts σ evaluations served from the query-scoped
// similarity cache (docs/PERFORMANCE.md).
func SigmaCacheHitsTotal() *Counter {
	return Default.Counter("thetis_sigma_cache_hits_total",
		"Entity-similarity lookups served from the query-scoped sigma cache.", nil)
}

// SigmaCacheMissesTotal counts σ evaluations computed and filled into the
// query-scoped similarity cache (≈ distinct query-entity × corpus-entity
// pairs touched; racing workers may double-fill a cell).
func SigmaCacheMissesTotal() *Counter {
	return Default.Counter("thetis_sigma_cache_misses_total",
		"Entity-similarity lookups computed and memoized by the query-scoped sigma cache.", nil)
}

// SigmaCacheBytes gauges the memory reserved by the most recent search's
// sigma cache (dense mode reserves its full slab footprint up front).
func SigmaCacheBytes() *Gauge {
	return Default.Gauge("thetis_sigma_cache_bytes",
		"Memory reserved by the most recent query's sigma cache.", nil)
}

// SigmaCacheHitRatio gauges the hit ratio of the most recent search's
// sigma cache (hits / lookups).
func SigmaCacheHitRatio() *Gauge {
	return Default.Gauge("thetis_sigma_cache_hit_ratio",
		"Sigma-cache hit ratio of the most recent search.", nil)
}

// CrossCacheHitsTotal counts σ resolutions served from the cross-query
// cache (docs/THROUGHPUT.md). Only lookups that missed the query/batch
// scoped sigma cache consult it.
func CrossCacheHitsTotal() *Counter {
	return Default.Counter("thetis_cross_cache_hits_total",
		"Entity-similarity resolutions served from the cross-query cache.", nil)
}

// CrossCacheMissesTotal counts σ resolutions computed and filled into the
// cross-query cache.
func CrossCacheMissesTotal() *Counter {
	return Default.Counter("thetis_cross_cache_misses_total",
		"Entity-similarity resolutions computed and memoized by the cross-query cache.", nil)
}

// CrossCacheEvictionsTotal counts cross-query cache entries displaced by
// the clock sweep once a shard reaches its capacity share.
func CrossCacheEvictionsTotal() *Counter {
	return Default.Counter("thetis_cross_cache_evictions_total",
		"Cross-query cache entries evicted by the clock sweep.", nil)
}

// CrossCacheBytes gauges the resident entry footprint of the cross-query
// cache (entries × fixed per-entry cost; bounded by -cross-cache-mb).
func CrossCacheBytes() *Gauge {
	return Default.Gauge("thetis_cross_cache_bytes",
		"Resident memory of the cross-query sigma cache.", nil)
}

// CrossCacheHitRatio gauges the cross-cache hit ratio of the most recent
// search that consulted it.
func CrossCacheHitRatio() *Gauge {
	return Default.Gauge("thetis_cross_cache_hit_ratio",
		"Cross-query cache hit ratio of the most recent search.", nil)
}

// SearchBatchTotal counts batch search calls (POST /search/batch and the
// in-process SearchBatch APIs).
func SearchBatchTotal() *Counter {
	return Default.Counter("thetis_search_batch_total",
		"Batch search invocations.", nil)
}

// SearchBatchQueries observes the number of queries per batch search.
func SearchBatchQueries() *Histogram {
	return Default.Histogram("thetis_search_batch_queries",
		"Queries per batch search invocation.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}, nil)
}

// PrefilterQueriesTotal counts LSEI candidate-set computations.
func PrefilterQueriesTotal() *Counter {
	return Default.Counter("thetis_prefilter_queries_total",
		"LSEI prefilter candidate-set computations.", nil)
}

// PrefilterProbesTotal counts LSH index probes issued by the prefilter
// (one per query entity or aggregated query column with a signature).
func PrefilterProbesTotal() *Counter {
	return Default.Counter("thetis_prefilter_probes_total",
		"LSH probes issued by the LSEI prefilter.", nil)
}

// PrefilterVotesTotal counts table votes cast by colliding entities or
// columns before thresholding (Section 6's voting optimization).
func PrefilterVotesTotal() *Counter {
	return Default.Counter("thetis_prefilter_votes_total",
		"Table votes cast by LSH collisions before vote thresholding.", nil)
}

// PrefilterCandidates observes prefiltered candidate-set sizes.
func PrefilterCandidates() *Histogram {
	return Default.Histogram("thetis_prefilter_candidates",
		"Candidate tables surviving the LSEI vote threshold, per query.",
		CountBuckets, nil)
}

// PrefilterReduction tracks the latest search-space reduction ratio
// (1 - candidates/corpus, the metric of the paper's Table 4).
func PrefilterReduction() *Gauge {
	return Default.Gauge("thetis_prefilter_reduction_ratio",
		"Search-space reduction of the most recent prefiltered query (1 - candidates/corpus).", nil)
}

// LSHBandProbesTotal counts band-bucket lookups inside the LSH index.
func LSHBandProbesTotal() *Counter {
	return Default.Counter("thetis_lsh_band_probes_total",
		"Band-bucket lookups performed by LSH index queries.", nil)
}

// LSHItemsScannedTotal counts items read out of colliding LSH buckets.
func LSHItemsScannedTotal() *Counter {
	return Default.Counter("thetis_lsh_items_scanned_total",
		"Items scanned from colliding buckets during LSH index queries.", nil)
}

// IngestOKTotal counts records accepted during ingestion, by kind
// ("triples", "tables").
func IngestOKTotal(r *Registry, kind string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_ingest_"+kind+"_ok_total",
		"Records accepted during corpus ingestion.", nil)
}

// IngestSkippedTotal counts records quarantined by lenient ingestion, by
// kind ("triples", "tables"). Always zero in strict mode, which aborts on
// the first malformed record instead.
func IngestSkippedTotal(r *Registry, kind string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_ingest_"+kind+"_skipped_total",
		"Records quarantined by lenient corpus ingestion.", nil)
}

// IndexState gauges the prefilter lifecycle: 0 = building (no index yet),
// 1 = degraded (snapshot rejected or build failed; serving brute force),
// 2 = ready (LSEI active).
func IndexState(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_index_state",
		"Prefilter index state: 0 building, 1 degraded (brute force), 2 ready.", nil)
}

// IndexEpoch gauges the corpus mutation epoch: it advances by one on every
// AddTable/RemoveTable and is what epoch-keyed caches compare against (see
// docs/LIVE_INDEX.md).
func IndexEpoch(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_index_epoch",
		"Corpus mutation epoch (one tick per AddTable/RemoveTable).", nil)
}

// IndexDeltasTotal counts applied index delta operations, by op
// ("add", "remove").
func IndexDeltasTotal(r *Registry, op string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_index_deltas_total",
		"Index delta operations applied, by op.", Labels{"op": op})
}

// IndexTombstones gauges the number of removed-table slots awaiting
// compaction (lake.NumSlots - lake.NumTables).
func IndexTombstones(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_index_tombstones",
		"Removed table slots not yet reclaimed by compaction.", nil)
}

// IndexCompactionsTotal counts background compactions: from-scratch index
// rebuilds hot-swapped in while queries keep flowing.
func IndexCompactionsTotal(r *Registry) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_index_compactions_total",
		"Background index compactions (rebuild + hot swap).", nil)
}

// IndexFilterResignsTotal counts items re-signed because a corpus mutation
// flipped a type across the frequent-type threshold.
func IndexFilterResignsTotal(r *Registry) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_index_filter_resigns_total",
		"LSEI items re-signed after frequent-type filter flips.", nil)
}

// ShardSearchesTotal counts per-shard scatter legs executed by the
// coordinator, by shard ("0", "1", …).
func ShardSearchesTotal(shard string) *Counter {
	return Default.Counter("thetis_shard_searches_total",
		"Scatter legs executed against one shard by the coordinator.",
		Labels{"shard": shard})
}

// ShardSearchSeconds observes one shard's scatter-leg latency, by shard.
// The spread across shards is the skew the size-balanced partitioner
// exists to flatten.
func ShardSearchSeconds(shard string) *Histogram {
	return Default.Histogram("thetis_shard_search_seconds",
		"Per-shard scatter-leg wall time in seconds.",
		LatencyBuckets, Labels{"shard": shard})
}

// ShardTruncatedTotal counts scatter legs that returned a truncated
// (partial) response — cancellation, deadline, or a contained shard panic.
func ShardTruncatedTotal(shard string) *Counter {
	return Default.Counter("thetis_shard_truncated_total",
		"Scatter legs that returned truncated partial results, by shard.",
		Labels{"shard": shard})
}

// ShardMergeSeconds observes the coordinator's merge stage: k-way merging
// the per-shard rankings into the global top-k.
func ShardMergeSeconds() *Histogram {
	return Default.Histogram("thetis_shard_merge_seconds",
		"Coordinator time merging per-shard rankings in seconds.",
		LatencyBuckets, nil)
}

// ShardRescattersTotal counts second scatter rounds forced by a globally
// empty prefilter (the sharded analogue of the single-node full-scan
// fallback).
func ShardRescattersTotal() *Counter {
	return Default.Counter("thetis_shard_rescatters_total",
		"Full-scan rescatter rounds after a globally empty prefilter.", nil)
}

// ShardTables gauges how many tables each shard owns — partitioning
// balance at a glance.
func ShardTables(r *Registry, shard string) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_shard_tables",
		"Tables owned by one shard.", Labels{"shard": shard})
}

// ShardIndexItems gauges the signatures held by one shard's LSEI
// (entities, or columns in column-aggregation mode).
func ShardIndexItems(r *Registry, shard string) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_shard_index_items",
		"Signatures held by one shard's LSEI.", Labels{"shard": shard})
}

// ShardIndexState gauges one shard's prefilter lifecycle, with the same
// encoding as IndexState: 0 building, 1 degraded, 2 ready.
func ShardIndexState(r *Registry, shard string) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_shard_index_state",
		"Per-shard prefilter index state: 0 building, 1 degraded (brute force), 2 ready.",
		Labels{"shard": shard})
}

// RemoteShardRetriesTotal counts retry attempts (attempts beyond the
// first) issued by the remote-shard HTTP client, by shard.
func RemoteShardRetriesTotal(shard string) *Counter {
	return Default.Counter("thetis_remote_shard_retries_total",
		"Remote shard-leg retry attempts beyond the first, by shard.",
		Labels{"shard": shard})
}

// RemoteShardHedgesTotal counts hedged (duplicate, latency-racing)
// requests fired after the hedge delay elapsed, by shard.
func RemoteShardHedgesTotal(shard string) *Counter {
	return Default.Counter("thetis_remote_shard_hedges_total",
		"Hedged duplicate requests fired against a second replica, by shard.",
		Labels{"shard": shard})
}

// RemoteShardFailoversTotal counts attempts that switched to a different
// replica than the previous attempt used, by shard.
func RemoteShardFailoversTotal(shard string) *Counter {
	return Default.Counter("thetis_remote_shard_failovers_total",
		"Remote shard attempts that failed over to another replica, by shard.",
		Labels{"shard": shard})
}

// RemoteShardBreakerOpenTotal counts circuit-breaker trips (closed→open
// transitions) across a shard's replicas, by shard.
func RemoteShardBreakerOpenTotal(shard string) *Counter {
	return Default.Counter("thetis_remote_shard_breaker_open_total",
		"Replica circuit-breaker trips (closed to open), by shard.",
		Labels{"shard": shard})
}

// RemoteShardReplicaUp gauges one replica's availability as seen by the
// client: 1 when its breaker is closed, 0 when open or half-open.
func RemoteShardReplicaUp(shard, replica string) *Gauge {
	return Default.Gauge("thetis_remote_shard_replica_up",
		"Replica availability: 1 breaker closed, 0 open/half-open.",
		Labels{"shard": shard, "replica": replica})
}

// PanicsTotal counts panics recovered into errors, by site ("search" for
// scoring workers, "shard" for scatter legs, "http" for request handlers).
func PanicsTotal(r *Registry, site string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_panics_total",
		"Panics recovered into errors instead of crashing the process, by site.",
		Labels{"site": site})
}

// HTTPRequestsTotal counts requests per endpoint.
func HTTPRequestsTotal(r *Registry, endpoint string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_http_requests_total",
		"HTTP requests served, by endpoint.", Labels{"endpoint": endpoint})
}

// HTTPErrorsTotal counts responses with status >= 400, per endpoint.
func HTTPErrorsTotal(r *Registry, endpoint string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_http_errors_total",
		"HTTP responses with status >= 400, by endpoint.", Labels{"endpoint": endpoint})
}

// HTTPRequestSeconds observes request latency per endpoint.
func HTTPRequestSeconds(r *Registry, endpoint string) *Histogram {
	if r == nil {
		r = Default
	}
	return r.Histogram("thetis_http_request_seconds",
		"HTTP request handling latency in seconds, by endpoint.",
		LatencyBuckets, Labels{"endpoint": endpoint})
}

// HTTPShedTotal counts search requests rejected with 429 because the
// in-flight concurrency limit was reached, per endpoint.
func HTTPShedTotal(r *Registry, endpoint string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_http_shed_total",
		"Requests shed with 429 at the in-flight concurrency limit, by endpoint.",
		Labels{"endpoint": endpoint})
}

// HTTPTimeoutsTotal counts requests whose per-request deadline expired
// before the handler finished, per endpoint.
func HTTPTimeoutsTotal(r *Registry, endpoint string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_http_timeouts_total",
		"Requests that hit their server-side deadline, by endpoint.",
		Labels{"endpoint": endpoint})
}

// HTTPCancellationsTotal counts requests whose context was cancelled (the
// client went away before the handler finished), per endpoint.
func HTTPCancellationsTotal(r *Registry, endpoint string) *Counter {
	if r == nil {
		r = Default
	}
	return r.Counter("thetis_http_cancellations_total",
		"Requests cancelled by the client before completion, by endpoint.",
		Labels{"endpoint": endpoint})
}

// HTTPInFlight gauges the number of search-type requests currently
// executing (admitted past the concurrency limit, handler not yet done).
func HTTPInFlight(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_http_inflight",
		"Search-type requests currently executing.", nil)
}

// AnnQueriesTotal counts searches scored in top-k σ mode (an ANN
// neighborhood was resolved and used; see docs/ANN.md).
func AnnQueriesTotal() *Counter {
	return Default.Counter("thetis_ann_queries_total",
		"Searches scored with ANN top-k sigma neighborhoods.", nil)
}

// AnnFallbacksTotal counts searches that wanted top-k σ but served exact σ
// instead — the graph was rebuilding after an epoch bump, or no usable
// index/similarity was available. Degraded mode, not an error.
func AnnFallbacksTotal() *Counter {
	return Default.Counter("thetis_ann_fallbacks_total",
		"Top-k sigma searches that fell back to exact sigma (graph rebuilding or unavailable).", nil)
}

// AnnGraphNodes gauges the entity count of the currently installed HNSW
// graph.
func AnnGraphNodes(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_ann_graph_nodes",
		"Entities indexed by the installed ANN graph.", nil)
}

// AnnBuildSeconds gauges the wall time of the most recent ANN graph build.
func AnnBuildSeconds(r *Registry) *Gauge {
	if r == nil {
		r = Default
	}
	return r.Gauge("thetis_ann_build_seconds",
		"Wall time of the most recent ANN graph build.", nil)
}
