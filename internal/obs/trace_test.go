package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceStagesAndLookup(t *testing.T) {
	tr := NewTrace("search")
	sp := tr.StartStage("probe")
	sp.SetItems(5)
	sp.End()
	tr.Add(Stage{Name: "mapping", CPU: 3 * time.Millisecond, Items: 40})
	tr.Prepend(Stage{Name: "vote", Wall: time.Millisecond})

	if got := len(tr.Stages); got != 3 {
		t.Fatalf("stages = %d, want 3", got)
	}
	if tr.Stages[0].Name != "vote" || tr.Stages[1].Name != "probe" || tr.Stages[2].Name != "mapping" {
		t.Errorf("stage order wrong: %+v", tr.Stages)
	}
	if st := tr.Stage("mapping"); st == nil || st.CPU != 3*time.Millisecond || st.Items != 40 {
		t.Errorf("Stage lookup = %+v", tr.Stage("mapping"))
	}
	if tr.Stage("absent") != nil {
		t.Error("absent stage must be nil")
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add(Stage{Name: "x"})
	tr.Prepend(Stage{Name: "y"})
	if tr.Stage("x") != nil {
		t.Error("nil trace Stage must be nil")
	}
	sp := tr.StartStage("z")
	sp.SetItems(1)
	if d := sp.End(); d < 0 {
		t.Error("span on nil trace must still measure time")
	}
	if got := tr.String(); got != "<nil trace>" {
		t.Errorf("nil String = %q", got)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace("search")
	tr.Total = 1500 * time.Microsecond
	tr.Add(Stage{Name: "probe", Wall: 200 * time.Microsecond, Items: 4})
	tr.Add(Stage{Name: "mapping", CPU: 900 * time.Microsecond})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Name    string `json:"name"`
		TotalUS int64  `json:"total_us"`
		Stages  []map[string]any
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "search" || out.TotalUS != 1500 || len(out.Stages) != 2 {
		t.Fatalf("json = %s", data)
	}
	if out.Stages[0]["wall_us"].(float64) != 200 || out.Stages[0]["items"].(float64) != 4 {
		t.Errorf("probe stage json = %v", out.Stages[0])
	}
	if _, present := out.Stages[1]["wall_us"]; present {
		t.Errorf("zero wall must be elided: %v", out.Stages[1])
	}
	if out.Stages[1]["cpu_us"].(float64) != 900 {
		t.Errorf("mapping stage json = %v", out.Stages[1])
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace("search")
	tr.Total = 2 * time.Millisecond
	tr.Add(Stage{Name: "probe", Wall: time.Millisecond, Items: 3})
	tr.Add(Stage{Name: "mapping", CPU: 4 * time.Millisecond})
	s := tr.String()
	for _, want := range []string{"search 2ms:", "probe 1ms (3)", "→ mapping 4ms cpu"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
