package obs

// Quarantine collects records rejected during lenient ingestion. Loaders in
// internal/kg and internal/table skip malformed input instead of aborting,
// and report each rejection here; the daemon exposes the aggregate on
// GET /debug/ingest so operators can see exactly what was dropped and why.
//
// A nil *Quarantine is valid and drops everything silently, so strict-mode
// code paths can share the lenient plumbing without allocating one.

import (
	"fmt"
	"sync"
)

const (
	// maxQuarantineSamples bounds the per-collector record list; skips past
	// the cap still count but keep no sample.
	maxQuarantineSamples = 100
	// maxSampleBytes truncates stored input excerpts.
	maxSampleBytes = 160
)

// QuarantineRecord describes one rejected input record.
type QuarantineRecord struct {
	Source string `json:"source"`           // file or logical stream name
	Line   int    `json:"line"`             // 1-based line/record number
	Reason string `json:"reason"`           // why it was rejected
	Sample string `json:"sample,omitempty"` // truncated excerpt of the input
}

// Quarantine is a thread-safe collector for one ingestion kind ("triples"
// or "tables"). It mirrors its counts onto the thetis_ingest_* metrics.
type Quarantine struct {
	kind string

	mu      sync.Mutex
	ok      int64
	skipped int64
	records []QuarantineRecord

	mOK      *Counter
	mSkipped *Counter
}

// NewQuarantine creates a collector for the given ingestion kind, wired to
// the thetis_ingest_<kind>_{ok,skipped}_total counters on r (Default when
// nil).
func NewQuarantine(r *Registry, kind string) *Quarantine {
	return &Quarantine{
		kind:     kind,
		mOK:      IngestOKTotal(r, kind),
		mSkipped: IngestSkippedTotal(r, kind),
	}
}

// Kind returns the ingestion kind ("triples", "tables").
func (q *Quarantine) Kind() string {
	if q == nil {
		return ""
	}
	return q.kind
}

// Accept counts one successfully ingested record.
func (q *Quarantine) Accept() {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.ok++
	q.mu.Unlock()
	q.mOK.Inc()
}

// Skip records one rejected record. The sample is truncated to a bounded
// excerpt; only the first maxQuarantineSamples rejections keep one.
func (q *Quarantine) Skip(source string, line int, reason, sample string) {
	if q == nil {
		return
	}
	if len(sample) > maxSampleBytes {
		sample = sample[:maxSampleBytes] + "…"
	}
	q.mu.Lock()
	q.skipped++
	if len(q.records) < maxQuarantineSamples {
		q.records = append(q.records, QuarantineRecord{
			Source: source, Line: line, Reason: reason, Sample: sample,
		})
	}
	q.mu.Unlock()
	q.mSkipped.Inc()
}

// Counts returns the accepted and skipped record counts so far.
func (q *Quarantine) Counts() (ok, skipped int64) {
	if q == nil {
		return 0, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ok, q.skipped
}

// Records returns a copy of the retained rejection samples.
func (q *Quarantine) Records() []QuarantineRecord {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantineRecord, len(q.records))
	copy(out, q.records)
	return out
}

// CheckBudget returns an error when more than budget records have been
// skipped (budget < 0 means unlimited). Loaders call it after each Skip so
// a systematically broken input aborts instead of quarantining everything.
func (q *Quarantine) CheckBudget(budget int) error {
	if q == nil || budget < 0 {
		return nil
	}
	q.mu.Lock()
	skipped := q.skipped
	q.mu.Unlock()
	if skipped > int64(budget) {
		return fmt.Errorf("obs: ingest error budget exceeded: %d %s records quarantined (budget %d)",
			skipped, q.kind, budget)
	}
	return nil
}

// QuarantineSummary is the JSON shape of one collector on /debug/ingest.
type QuarantineSummary struct {
	OK      int64              `json:"ok"`
	Skipped int64              `json:"skipped"`
	Samples []QuarantineRecord `json:"samples,omitempty"`
}

// Summary snapshots the collector for reporting.
func (q *Quarantine) Summary() QuarantineSummary {
	ok, skipped := q.Counts()
	return QuarantineSummary{OK: ok, Skipped: skipped, Samples: q.Records()}
}

// IngestReport aggregates the triple and table quarantines of one corpus
// load, for GET /debug/ingest.
type IngestReport struct {
	Triples *Quarantine
	Tables  *Quarantine
}

// NewIngestReport creates a report with one collector per ingestion kind,
// registered on r (Default when nil).
func NewIngestReport(r *Registry) *IngestReport {
	return &IngestReport{
		Triples: NewQuarantine(r, "triples"),
		Tables:  NewQuarantine(r, "tables"),
	}
}

// Summary snapshots both collectors keyed by kind.
func (ir *IngestReport) Summary() map[string]QuarantineSummary {
	if ir == nil {
		return nil
	}
	return map[string]QuarantineSummary{
		"triples": ir.Triples.Summary(),
		"tables":  ir.Tables.Summary(),
	}
}
