package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable,
// but counters are normally obtained from a Registry so they appear on
// /metrics.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative "le" upper
// bounds, Prometheus-style) and tracks their sum. Observe is lock-free; the
// bucket layout is immutable after construction.
type Histogram struct {
	upper   []float64 // ascending finite upper bounds; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v; len(upper) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the finite upper bounds of the bucket layout.
func (h *Histogram) Buckets() []float64 {
	out := make([]float64, len(h.upper))
	copy(out, h.upper)
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the same estimate
// Prometheus' histogram_quantile computes. Samples in the +Inf bucket clamp
// to the largest finite bound. Returns NaN when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.upper) { // +Inf bucket
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			hi := h.upper[i]
			return lo + (hi-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.upper[len(h.upper)-1]
}

// snapshot returns cumulative bucket counts (one per finite bound plus
// +Inf), the sum, and the count. Buckets are read individually, so a
// snapshot taken during concurrent Observes may be off by in-flight
// samples — acceptable for scrapes.
func (h *Histogram) snapshot() (cumulative []int64, sum float64, count int64) {
	cumulative = make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return cumulative, h.Sum(), h.Count()
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor: start, start·factor, start·factor², …
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default layout for request/stage durations in
// seconds: 100µs … ~25s in 2.5× steps (documented in docs/OBSERVABILITY.md).
var LatencyBuckets = ExponentialBuckets(100e-6, 2.5, 14)

// CountBuckets is the default layout for size-like observations (candidate
// set sizes, result counts): 1 … 4^9 ≈ 262k in 4× steps.
var CountBuckets = ExponentialBuckets(1, 4, 10)

// Labels attaches dimension values to a metric. Each distinct label
// combination is its own time series on /metrics.
type Labels map[string]string

// metricKind discriminates family types; mixing kinds under one name panics.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// series is one (family, label-set) time series.
type series struct {
	labels string // rendered `key="value",…` body, "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing a metric name (one HELP/TYPE block).
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]*series
	order   []string // label keys in registration order
}

// Registry is a set of named metrics with Prometheus text exposition.
// Handle creation (Counter/Gauge/Histogram) is mutex-guarded and idempotent
// — the same name+labels returns the same handle — while the handles
// themselves update lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry: the search pipeline's standard
// metrics (std.go) live here, and internal/server exposes it on /metrics.
var Default = NewRegistry()

func (r *Registry) familyLocked(name, help string, kind metricKind, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

func (f *family) seriesLocked(labels Labels) *series {
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, kindCounter, nil).seriesLocked(labels).c
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, kindGauge, nil).seriesLocked(labels).g
}

// Histogram returns (creating if needed) the histogram name{labels} with
// the given finite bucket upper bounds (+Inf is implicit). The layout is
// fixed by the first registration of the name; later calls reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.familyLocked(name, help, kindHistogram, buckets).seriesLocked(labels).h
}

// renderLabels renders a deterministic `k="v",…` body with keys sorted and
// values escaped per the Prometheus text format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
