package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Trace is the structured per-query breakdown of one search: an ordered
// list of pipeline stages (prefilter probe/vote, column mapping, scoring,
// ranking) with wall-clock and — where work fans out across workers — CPU
// durations. It replaces ad-hoc timing fields and backs both the paper's
// Section 7.3 runtime dissection and the live GET /debug/trace endpoint.
//
// A Trace is built by one goroutine; read it only after the traced
// operation returns. All methods are nil-safe no-ops so instrumented code
// never branches on "is tracing on".
type Trace struct {
	// Name identifies the traced operation (e.g. "search").
	Name string
	// Total is the end-to-end wall-clock duration, including stages not
	// broken out individually.
	Total time.Duration
	// Stages lists the pipeline stages in execution order.
	Stages []Stage
}

// Stage is one pipeline stage of a Trace.
type Stage struct {
	// Name identifies the stage ("probe", "vote", "mapping", "score", "rank").
	Name string
	// Shard labels the stage with the shard ("0", "1", …) it ran on when
	// the operation was scatter-gathered; empty for unsharded pipelines.
	Shard string
	// Wall is the wall-clock duration of the stage. Zero for stages that
	// run interleaved inside another stage's wall time (see CPU).
	Wall time.Duration
	// CPU is cumulative CPU time summed across workers, for stages that
	// fan out; it can exceed the enclosing wall time. Zero when the stage
	// is single-threaded (Wall is then the whole story).
	CPU time.Duration
	// Items is the number of units processed (entities probed, tables
	// scored, results ranked, …).
	Items int
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace { return &Trace{Name: name} }

// Add appends a stage. Nil-safe.
func (t *Trace) Add(st Stage) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, st)
}

// Prepend inserts stages before the existing ones, preserving their order —
// used when an outer pipeline layer (e.g. LSEI prefiltering) wraps an inner
// traced call. Nil-safe.
func (t *Trace) Prepend(stages ...Stage) {
	if t == nil || len(stages) == 0 {
		return
	}
	t.Stages = append(append([]Stage(nil), stages...), t.Stages...)
}

// Stage returns the first stage with the given name, or nil. Nil-safe.
func (t *Trace) Stage(name string) *Stage {
	if t == nil {
		return nil
	}
	for i := range t.Stages {
		if t.Stages[i].Name == name {
			return &t.Stages[i]
		}
	}
	return nil
}

// Span measures one in-progress stage. Obtain with StartStage, finish with
// End.
type Span struct {
	t     *Trace
	name  string
	start time.Time
	items int
}

// StartStage begins timing a stage; call End on the returned span to record
// it. Nil-safe: on a nil trace the span records nothing (but still returns
// a usable duration from End).
func (t *Trace) StartStage(name string) *Span {
	return &Span{t: t, name: name, start: time.Now()}
}

// SetItems attaches an item count to the span's stage.
func (s *Span) SetItems(n int) { s.items = n }

// End records the stage on the trace and returns its wall duration.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.t.Add(Stage{Name: s.name, Wall: d, Items: s.items})
	return d
}

// String renders a compact single-line breakdown, e.g.
// "search 12.3ms: probe 0.8ms (5) → vote 0.1ms → score 10.9ms (412)".
func (t *Trace) String() string {
	if t == nil {
		return "<nil trace>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v:", t.Name, t.Total.Round(time.Microsecond))
	for i, st := range t.Stages {
		if i > 0 {
			b.WriteString(" →")
		}
		d := st.Wall
		unit := ""
		if d == 0 && st.CPU > 0 {
			d, unit = st.CPU, " cpu"
		}
		name := st.Name
		if st.Shard != "" {
			name = "s" + st.Shard + ":" + name
		}
		fmt.Fprintf(&b, " %s %v%s", name, d.Round(time.Microsecond), unit)
		if st.Items > 0 {
			fmt.Fprintf(&b, " (%d)", st.Items)
		}
	}
	return b.String()
}

// stageJSON / traceJSON fix the wire shape of /debug/trace: microsecond
// durations under explicit _us keys, zero fields elided.
type stageJSON struct {
	Stage  string `json:"stage"`
	Shard  string `json:"shard,omitempty"`
	WallUS int64  `json:"wall_us,omitempty"`
	CPUUS  int64  `json:"cpu_us,omitempty"`
	Items  int    `json:"items,omitempty"`
}

type traceJSON struct {
	Name    string      `json:"name"`
	TotalUS int64       `json:"total_us"`
	Stages  []stageJSON `json:"stages"`
}

// MarshalJSON implements json.Marshaler with durations in microseconds.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := traceJSON{Name: t.Name, TotalUS: t.Total.Microseconds(), Stages: make([]stageJSON, len(t.Stages))}
	for i, st := range t.Stages {
		out.Stages[i] = stageJSON{
			Stage:  st.Name,
			Shard:  st.Shard,
			WallUS: st.Wall.Microseconds(),
			CPUUS:  st.CPU.Microseconds(),
			Items:  st.Items,
		}
	}
	return json.Marshal(out)
}
