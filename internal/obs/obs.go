// Package obs is the observability substrate of the search service:
// counters, gauges, and fixed-bucket latency histograms behind an atomic,
// allocation-light registry with Prometheus text exposition, plus a
// per-query stage tracer (Trace) that the search pipeline threads through
// prefiltering, column mapping, scoring, and ranking.
//
// The paper's runtime evaluation (Section 7.3) dissects a search into
// exactly these stages — LSEI prefiltering cost, query-to-column mapping
// cost, scoring cost — and this package makes that same breakdown available
// live, per query (GET /debug/trace) and aggregated (GET /metrics), instead
// of only through offline benchmark reruns.
//
// Hot-path discipline: instrumented code caches metric handles (package
// vars or struct fields) once and pays a single atomic operation per
// update. Registry lookups (Registry.Counter and friends) take a mutex and
// build a key string, so they belong in init paths, never inner loops.
// Every metric this repository records is documented in
// docs/OBSERVABILITY.md.
package obs
