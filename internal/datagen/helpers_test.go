package datagen

import "thetis/internal/lake"

// lakeID converts an int to a lake.TableID in tests.
func lakeID(i int) lake.TableID { return lake.TableID(i) }
