package datagen

import (
	"math"
	"testing"

	"thetis/internal/kg"
)

func smallKGConfig() KGConfig {
	return KGConfig{
		Domains:            3,
		LeafTypesPerDomain: 2,
		MembersPerLeafType: 30,
		GroupsPerDomain:    5,
		Places:             10,
		EdgesPerMember:     2,
		Seed:               7,
	}
}

func TestGenerateKGStructure(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	if len(k.Domains) != 3 {
		t.Fatalf("domains = %d", len(k.Domains))
	}
	if len(k.Places) != 10 {
		t.Fatalf("places = %d", len(k.Places))
	}
	wantEntities := 10 + 3*(5+2*30) // places + per-domain groups+members
	if k.Graph.NumEntities() != wantEntities {
		t.Errorf("entities = %d, want %d", k.Graph.NumEntities(), wantEntities)
	}
	for _, d := range k.Domains {
		if len(d.Groups) != 5 || len(d.Members) != 2 {
			t.Errorf("domain %s shape: %d groups, %d member types", d.Name, len(d.Groups), len(d.Members))
		}
		for _, members := range d.Members {
			for _, m := range members {
				if _, ok := d.Home[m]; !ok {
					t.Fatalf("member %d has no home group", m)
				}
			}
		}
		for _, g := range d.Groups {
			if _, ok := k.PlaceOf[g]; !ok {
				t.Fatalf("group %d has no place", g)
			}
		}
	}
}

func TestGenerateKGDeterministic(t *testing.T) {
	a := GenerateKG(smallKGConfig())
	b := GenerateKG(smallKGConfig())
	if a.Graph.NumEntities() != b.Graph.NumEntities() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("KG generation not deterministic")
	}
	// Same labels for same IDs.
	for e := kg.EntityID(0); int(e) < a.Graph.NumEntities(); e++ {
		if a.Graph.Label(e) != b.Graph.Label(e) {
			t.Fatalf("label mismatch at %d", e)
		}
	}
}

func TestGenerateKGTypeGranularity(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	// A member entity must expand to at least: leaf, domain person,
	// Person, Agent, Thing.
	m := k.Domains[0].Members[0][0]
	if n := len(k.Graph.ExpandedTypes(m)); n < 5 {
		t.Errorf("member expanded types = %d, want >= 5", n)
	}
}

func TestGenerateCorpusProfile(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	p := ProfileWT2015(200)
	l := GenerateCorpus(k, p)
	s := l.ComputeStats()
	if s.Tables != 200 {
		t.Fatalf("tables = %d", s.Tables)
	}
	if math.Abs(s.MeanRows-float64(p.MeanRows)) > float64(p.MeanRows)/3 {
		t.Errorf("mean rows = %v, want ~%d", s.MeanRows, p.MeanRows)
	}
	if math.Abs(s.MeanColumns-float64(p.MeanCols)) > float64(p.MeanCols)/3 {
		t.Errorf("mean cols = %v, want ~%d", s.MeanColumns, p.MeanCols)
	}
	if math.Abs(s.MeanCoverage-p.Coverage) > 0.08 {
		t.Errorf("coverage = %v, want ~%v", s.MeanCoverage, p.Coverage)
	}
}

func TestGenerateCorpusCategories(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	l := GenerateCorpus(k, ProfileWT2015(50))
	for _, tb := range l.Tables() {
		if len(tb.Categories) < 2 {
			t.Fatalf("table %q categories = %v, want domain + groups", tb.Name, tb.Categories)
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	a := GenerateCorpus(k, ProfileWT2015(30))
	b := GenerateCorpus(k, ProfileWT2015(30))
	for i := range a.Tables() {
		ta, tb := a.Table(lakeID(i)), b.Table(lakeID(i))
		if ta.Name != tb.Name || ta.NumRows() != tb.NumRows() {
			t.Fatal("corpus generation not deterministic")
		}
	}
}

func TestProfilePresets(t *testing.T) {
	if p := ProfileWT2019(10); p.Coverage >= ProfileWT2015(10).Coverage {
		t.Error("WT2019 must have lower coverage than WT2015")
	}
	if p := ProfileGitTables(10); p.MeanRows <= ProfileWT2015(10).MeanRows {
		t.Error("GitTables must have larger tables")
	}
}

func TestExpandCorpus(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	src := GenerateCorpus(k, ProfileWT2015(20))
	big := ExpandCorpus(src, 2, 99)
	if big.NumTables() != 60 {
		t.Fatalf("expanded tables = %d, want 60", big.NumTables())
	}
	// Synthetic tables keep schema and a subset of rows.
	syn := big.Table(lakeID(25))
	orig := big.Table(lakeID(5))
	if syn.NumColumns() != orig.NumColumns() {
		t.Errorf("synthetic table changed arity")
	}
	if syn.NumRows() > orig.NumRows() {
		t.Errorf("synthetic table has more rows (%d) than source (%d)", syn.NumRows(), orig.NumRows())
	}
	if len(syn.Categories) != len(orig.Categories) {
		t.Error("synthetic table lost categories")
	}
}

func TestGenerateQueries(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	qs := GenerateQueries(k, QueryConfig{Count: 10, TuplesPerQuery: 5, Width: 3, Seed: 4})
	if len(qs) != 10 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if len(q.Query) != 5 {
			t.Fatalf("query %s has %d tuples", q.Name, len(q.Query))
		}
		for _, tup := range q.Query {
			if len(tup) != 3 {
				t.Fatalf("tuple width = %d", len(tup))
			}
		}
		if len(q.Categories) != 2 {
			t.Errorf("categories = %v", q.Categories)
		}
		if len(q.Related) < 3 {
			t.Errorf("related set too small: %d", len(q.Related))
		}
		// All tuple entities must be in the related neighborhood.
		for _, tup := range q.Query {
			for _, e := range tup {
				if !q.Related[e] {
					t.Errorf("query entity %d missing from Related", e)
				}
			}
		}
	}
}

func TestQueryTruncate(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	qs := GenerateQueries(k, QueryConfig{Count: 3, TuplesPerQuery: 5, Width: 3, Seed: 4})
	one := qs[0].Truncate(1)
	if len(one.Query) != 1 {
		t.Fatalf("truncated = %d tuples", len(one.Query))
	}
	// 1-tuple query contained in the 5-tuple query.
	if &one.Query[0][0] == nil || one.Query[0][0] != qs[0].Query[0][0] {
		t.Error("truncation changed the first tuple")
	}
	if got := qs[0].Truncate(99); len(got.Query) != 5 {
		t.Error("over-truncation changed length")
	}
}

func TestKeywordQuery(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	qs := GenerateQueries(k, QueryConfig{Count: 1, TuplesPerQuery: 1, Width: 3, Seed: 4})
	text := qs[0].KeywordQuery(k.Graph)
	if text == "" {
		t.Fatal("empty keyword query")
	}
}

func TestBuildGroundTruth(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	l := GenerateCorpus(k, ProfileWT2015(100))
	qs := GenerateQueries(k, QueryConfig{Count: 5, TuplesPerQuery: 1, Width: 3, Seed: 4})
	for _, q := range qs {
		gt := BuildGroundTruth(l, q)
		if gt.NumRelevant() == 0 {
			t.Fatalf("query %s has no relevant tables in a 100-table corpus", q.Name)
		}
		top := gt.TopK(10)
		if len(top) == 0 {
			t.Fatal("TopK empty")
		}
		// Grades bounded.
		for _, g := range gt.Grades {
			if g <= 0 || g > maxGrade+1e-9 {
				t.Fatalf("grade %v out of range", g)
			}
		}
		// Top-1 table should share the query's domain category.
		cat := q.Categories[0]
		tb := l.Table(lakeID(top[0]))
		found := false
		for _, c := range tb.Categories {
			if c == cat {
				found = true
			}
		}
		if !found {
			t.Errorf("top GT table %q does not share domain category %q", tb.Name, cat)
		}
		rel := gt.RelevantSet(10)
		if len(rel) != len(top) {
			t.Error("RelevantSet size mismatch")
		}
	}
}

func TestBenchmarkRoundTrip(t *testing.T) {
	k := GenerateKG(smallKGConfig())
	l := GenerateCorpus(k, ProfileWT2015(30))
	qs := GenerateQueries(k, QueryConfig{Count: 3, TuplesPerQuery: 2, Width: 3, Seed: 4})
	dir := t.TempDir()
	if err := WriteBenchmark(dir, k.Graph, l, qs); err != nil {
		t.Fatal(err)
	}
	g2, l2, qs2, err := LoadBenchmark(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumTables() != l.NumTables() {
		t.Fatalf("tables after round trip = %d, want %d", l2.NumTables(), l.NumTables())
	}
	if len(qs2) != len(qs) {
		t.Fatalf("queries after round trip = %d, want %d", len(qs2), len(qs))
	}
	for i := range qs {
		if qs2[i].Name != qs[i].Name {
			t.Errorf("query %d name %q != %q", i, qs2[i].Name, qs[i].Name)
		}
		if len(qs2[i].Query) != len(qs[i].Query) {
			t.Fatalf("query %d tuples differ", i)
		}
		if len(qs2[i].Related) != len(qs[i].Related) {
			t.Errorf("query %d related set %d != %d", i, len(qs2[i].Related), len(qs[i].Related))
		}
		// Tuple entities must map to the same URIs.
		for ti := range qs[i].Query {
			for ei := range qs[i].Query[ti] {
				want := k.Graph.URI(qs[i].Query[ti][ei])
				got := g2.URI(qs2[i].Query[ti][ei])
				if want != got {
					t.Fatalf("query %d tuple %d entity %d: %q != %q", i, ti, ei, got, want)
				}
			}
		}
	}
	// Ground truth computed on the loaded benchmark matches the original.
	gt1 := BuildGroundTruth(l, qs[0])
	gt2 := BuildGroundTruth(l2, qs2[0])
	if gt1.NumRelevant() != gt2.NumRelevant() {
		t.Errorf("GT relevant count %d != %d after round trip", gt2.NumRelevant(), gt1.NumRelevant())
	}
	// Link coverage preserved (annotations survived).
	if l2.ComputeStats().MeanCoverage != l.ComputeStats().MeanCoverage {
		t.Error("coverage changed in round trip")
	}
}

func TestLoadBenchmarkMissingDir(t *testing.T) {
	if _, _, _, err := LoadBenchmark("/nonexistent/dir"); err == nil {
		t.Error("missing directory accepted")
	}
}
