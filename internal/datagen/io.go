package datagen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// Benchmark persistence: a generated benchmark (KG + annotated corpus +
// queries with ground-truth metadata) serializes to a directory —
//
//	kg.nt         triples (types, labels, taxonomy, edges)
//	corpus.jsonl  one annotated table per JSON document
//	queries.json  entity tuples + topic categories + related-entity sets
//
// — and loads back for replaying experiments on a fixed corpus.

// benchmarkQueryJSON is the serialized form of a BenchmarkQuery, with
// entities as URIs so the file is self-describing.
type benchmarkQueryJSON struct {
	Name       string     `json:"name"`
	Tuples     [][]string `json:"tuples"`
	Categories []string   `json:"categories"`
	Related    []string   `json:"related"`
}

// WriteBenchmark serializes a benchmark into dir (created if needed).
func WriteBenchmark(dir string, g *kg.Graph, l *lake.Lake, queries []BenchmarkQuery) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "kg.nt"), func(w io.Writer) error {
		return kg.WriteTriples(g, w)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "corpus.jsonl"), func(w io.Writer) error {
		for _, t := range l.Tables() {
			if err := table.WriteJSON(t, g, w); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, "queries.json"), func(w io.Writer) error {
		out := make([]benchmarkQueryJSON, len(queries))
		for i, bq := range queries {
			j := benchmarkQueryJSON{Name: bq.Name, Categories: bq.Categories}
			for _, t := range bq.Query {
				tuple := make([]string, len(t))
				for k, e := range t {
					tuple[k] = g.URI(e)
				}
				j.Tuples = append(j.Tuples, tuple)
			}
			for e := range bq.Related {
				j.Related = append(j.Related, g.URI(e))
			}
			out[i] = j
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(out)
	})
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		return err
	}
	return w.Flush()
}

// LoadBenchmark reads a benchmark directory written by WriteBenchmark,
// returning the graph, the corpus, and the annotated queries.
func LoadBenchmark(dir string) (*kg.Graph, *lake.Lake, []BenchmarkQuery, error) {
	g := kg.NewGraph()
	kf, err := os.Open(filepath.Join(dir, "kg.nt"))
	if err != nil {
		return nil, nil, nil, err
	}
	err = kg.LoadTriples(g, bufio.NewReader(kf))
	kf.Close()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("loading kg.nt: %w", err)
	}

	l := lake.New(g)
	cf, err := os.Open(filepath.Join(dir, "corpus.jsonl"))
	if err != nil {
		return nil, nil, nil, err
	}
	jr := table.NewJSONReader(g, bufio.NewReaderSize(cf, 1<<20))
	for {
		t, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cf.Close()
			return nil, nil, nil, fmt.Errorf("loading corpus.jsonl: %w", err)
		}
		l.Add(t)
	}
	cf.Close()

	qf, err := os.Open(filepath.Join(dir, "queries.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	defer qf.Close()
	var raw []benchmarkQueryJSON
	if err := json.NewDecoder(bufio.NewReader(qf)).Decode(&raw); err != nil {
		return nil, nil, nil, fmt.Errorf("loading queries.json: %w", err)
	}
	queries := make([]BenchmarkQuery, 0, len(raw))
	for _, j := range raw {
		bq := BenchmarkQuery{Name: j.Name, Categories: j.Categories, Related: map[kg.EntityID]bool{}}
		for _, tuple := range j.Tuples {
			var t core.Tuple
			for _, uri := range tuple {
				e, ok := g.Lookup(uri)
				if !ok {
					return nil, nil, nil, fmt.Errorf("query %q: unknown entity %q", j.Name, uri)
				}
				t = append(t, e)
			}
			bq.Query = append(bq.Query, t)
		}
		for _, uri := range j.Related {
			e, ok := g.Lookup(uri)
			if !ok {
				return nil, nil, nil, fmt.Errorf("query %q: unknown related entity %q", j.Name, uri)
			}
			bq.Related[e] = true
		}
		queries = append(queries, bq)
	}
	return g, l, queries, nil
}
