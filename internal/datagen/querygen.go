package datagen

import (
	"math/rand"

	"thetis/internal/core"
	"thetis/internal/kg"
)

// BenchmarkQuery is one ground-truth-annotated query: the entity tuples
// fed to the search engines plus the topic information (categories and the
// topical entity neighborhood) that relevance judgments are derived from.
type BenchmarkQuery struct {
	// Name identifies the query in experiment output.
	Name string
	// Query is the entity-tuple input of Problem 2.2.
	Query core.Query
	// Categories are the topic categories of the query's source topic.
	Categories []string
	// Related is the topical entity neighborhood: the query entities, the
	// other members of the queried groups, and their places. Tables
	// overlapping this set are relevant, mirroring ground truth built from
	// Wikipedia navigational links.
	Related map[kg.EntityID]bool
}

// QueryConfig controls benchmark query generation.
type QueryConfig struct {
	// Count is the number of queries.
	Count int
	// TuplesPerQuery is the number of entity tuples (the paper evaluates
	// 1- and 5-tuple queries).
	TuplesPerQuery int
	// Width is the number of entities per tuple (the paper uses width ≥ 3:
	// member, group, place).
	Width int
	// Seed fixes generation.
	Seed int64
}

// GenerateQueries samples benchmark queries from the KG's topics. Each
// query is rooted at one domain group: tuples are (member, group, place,
// …) rows of that topic, so 1-tuple queries are prefixes of the 5-tuple
// queries built from the same seed, matching the paper's setup where "the
// 1-tuple queries are contained in the 5-tuples queries".
func GenerateQueries(k *KG, cfg QueryConfig) []BenchmarkQuery {
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]BenchmarkQuery, 0, cfg.Count)
	for qi := 0; qi < cfg.Count; qi++ {
		d := rng.Intn(len(k.Domains))
		dom := &k.Domains[d]
		group := dom.Groups[rng.Intn(len(dom.Groups))]

		members := groupMembers(dom, group)
		if len(members) == 0 {
			// Degenerate group; resample deterministically by advancing.
			qi--
			continue
		}

		bq := BenchmarkQuery{
			Name:       dom.Name + "/" + k.Graph.URI(group),
			Categories: []string{domainCategory(dom.Name), groupCategory(k.Graph, group)},
			Related:    make(map[kg.EntityID]bool),
		}
		place := k.PlaceOf[group]
		for t := 0; t < cfg.TuplesPerQuery; t++ {
			member := members[rng.Intn(len(members))]
			tuple := core.Tuple{member, group, place}
			for len(tuple) < cfg.Width {
				// Extra width: sample further members of the topic.
				tuple = append(tuple, members[rng.Intn(len(members))])
			}
			tuple = tuple[:cfg.Width]
			bq.Query = append(bq.Query, tuple)
		}

		// Topical neighborhood: all members of the group + the group +
		// its place.
		bq.Related[group] = true
		bq.Related[place] = true
		for _, m := range members {
			bq.Related[m] = true
		}
		queries = append(queries, bq)
	}
	return queries
}

func groupMembers(dom *Domain, group kg.EntityID) []kg.EntityID {
	var out []kg.EntityID
	for _, members := range dom.Members {
		for _, m := range members {
			if dom.Home[m] == group {
				out = append(out, m)
			}
		}
	}
	return out
}

// Truncate returns a copy of the query keeping only the first n tuples,
// used to derive 1-tuple queries from 5-tuple ones.
func (bq BenchmarkQuery) Truncate(n int) BenchmarkQuery {
	out := bq
	if n < len(bq.Query) {
		out.Query = bq.Query[:n]
	}
	return out
}

// KeywordQuery converts the entity tuples into the text query BM25
// receives ("we extract the entire text contents in each cell in a query
// and let those be keywords").
func (bq BenchmarkQuery) KeywordQuery(g *kg.Graph) string {
	text := ""
	for _, t := range bq.Query {
		for _, e := range t {
			if text != "" {
				text += " "
			}
			text += g.Label(e)
		}
	}
	return text
}
