package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// CorpusProfile describes the shape of a generated corpus, mirroring one
// row of Table 2 in the paper (table count, mean rows, mean columns, mean
// entity-link coverage).
type CorpusProfile struct {
	Name string
	// NumTables is the corpus size.
	NumTables int
	// MeanRows and MeanCols describe the average table shape. Actual
	// tables are drawn uniformly in [mean/2, 3·mean/2].
	MeanRows int
	MeanCols int
	// Coverage is the target mean fraction of cells linked to entities.
	Coverage float64
	// LabelVariance is the probability that an entity cell renders a
	// surface variant of the entity's label (surname only, initials,
	// truncations) instead of the canonical label. Real web tables mention
	// entities under many surface forms, which is what keeps pure keyword
	// search from finding every relevant table.
	LabelVariance float64
	// Seed fixes generation.
	Seed int64
}

// The four corpus profiles of Table 2, scaled to a configurable table
// count (the paper's counts, 238K–1.7M, exceed a test-environment budget;
// the scaling experiment preserves the paper's relative corpus sizes).
func ProfileWT2015(tables int) CorpusProfile {
	return CorpusProfile{Name: "WT2015", NumTables: tables, MeanRows: 35, MeanCols: 6, Coverage: 0.277, LabelVariance: 0.5, Seed: 2015}
}

func ProfileWT2019(tables int) CorpusProfile {
	return CorpusProfile{Name: "WT2019", NumTables: tables, MeanRows: 24, MeanCols: 6, Coverage: 0.182, LabelVariance: 0.5, Seed: 2019}
}

func ProfileGitTables(tables int) CorpusProfile {
	return CorpusProfile{Name: "GitTables", NumTables: tables, MeanRows: 142, MeanCols: 12, Coverage: 0.296, LabelVariance: 0.3, Seed: 33}
}

// Category tag constructors shared by table and query generation.
func domainCategory(name string) string               { return "domain:" + name }
func groupCategory(g *kg.Graph, e kg.EntityID) string { return "group:" + g.URI(e) }

// GenerateCorpus builds a lake of profile-shaped tables over the generated
// KG. Each table is drawn from a topic (a domain plus a few of its groups)
// and follows one of several schema patterns (rosters, member lists, group
// directories, matchups). Topic categories are recorded on each table for
// ground-truth construction — the search algorithms never read them.
func GenerateCorpus(k *KG, p CorpusProfile) *lake.Lake {
	rng := rand.New(rand.NewSource(p.Seed))
	l := lake.New(k.Graph)
	gen := &tableGen{kg: k, rng: rng, profile: p}
	gen.buildMembersByGroup()
	for i := 0; i < p.NumTables; i++ {
		l.Add(gen.table(i))
	}
	return l
}

type tableGen struct {
	kg      *KG
	rng     *rand.Rand
	profile CorpusProfile
	// initialismStyle marks tables that render every entity mention as an
	// initialism (scorecard/code style), making them invisible to keyword
	// search while staying fully entity-linked.
	initialismStyle bool
	// membersByGroup[d][group] lists the members homed at that group.
	membersByGroup []map[kg.EntityID][]kg.EntityID
}

func (tg *tableGen) buildMembersByGroup() {
	tg.membersByGroup = make([]map[kg.EntityID][]kg.EntityID, len(tg.kg.Domains))
	for d := range tg.kg.Domains {
		m := make(map[kg.EntityID][]kg.EntityID)
		for _, members := range tg.kg.Domains[d].Members {
			for _, e := range members {
				m[tg.kg.Domains[d].Home[e]] = append(m[tg.kg.Domains[d].Home[e]], e)
			}
		}
		tg.membersByGroup[d] = m
	}
}

// jitter draws uniformly from [mean/2, 3·mean/2], minimum 1.
func (tg *tableGen) jitter(mean int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	n := lo + tg.rng.Intn(mean+1)
	if n < 1 {
		n = 1
	}
	return n
}

// table generates one topic table.
func (tg *tableGen) table(idx int) *table.Table {
	d := tg.rng.Intn(len(tg.kg.Domains))
	dom := &tg.kg.Domains[d]
	// Topic: 1-3 groups of the domain.
	nGroups := 1 + tg.rng.Intn(3)
	groups := make([]kg.EntityID, 0, nGroups)
	seen := map[kg.EntityID]bool{}
	for len(groups) < nGroups {
		g := dom.Groups[tg.rng.Intn(len(dom.Groups))]
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}

	// One in five tables uses a consistent code/initialism style for all
	// its mentions (like scorecards or ticker tables): topically relevant
	// yet sharing no tokens with canonical entity labels. These are the
	// tables only semantic search can find.
	tg.initialismStyle = tg.profile.LabelVariance > 0 && tg.rng.Float64() < 0.2

	rows := tg.jitter(tg.profile.MeanRows)
	cols := tg.jitter(tg.profile.MeanCols)
	if cols < 2 {
		cols = 2
	}

	pattern := tg.rng.Intn(4)
	t := tg.emit(idx, d, dom, groups, pattern, rows, cols)

	t.Categories = append(t.Categories, domainCategory(dom.Name))
	for _, g := range groups {
		t.Categories = append(t.Categories, groupCategory(tg.kg.Graph, g))
	}
	return t
}

// emit builds the rows for one of the four schema patterns. Entity columns
// come first; the remaining columns are literals. Entity cells are then
// de-linked at random to hit the profile's coverage target.
func (tg *tableGen) emit(idx, d int, dom *Domain, groups []kg.EntityID, pattern, rows, cols int) *table.Table {
	g := tg.kg.Graph
	type colSpec int
	const (
		colMember colSpec = iota
		colGroup
		colPlace
		colLiteral
	)
	var spec []colSpec
	var name string
	switch pattern {
	case 0: // roster: member | group | place | literals
		name = fmt.Sprintf("%s_roster_%d", dom.Name, idx)
		spec = []colSpec{colMember, colGroup, colPlace}
	case 1: // member list: member | literals
		name = fmt.Sprintf("%s_members_%d", dom.Name, idx)
		spec = []colSpec{colMember}
	case 2: // group directory: group | place | literals
		name = fmt.Sprintf("%s_groups_%d", dom.Name, idx)
		spec = []colSpec{colGroup, colPlace}
	default: // matchups: group | group | literals
		name = fmt.Sprintf("%s_matchups_%d", dom.Name, idx)
		spec = []colSpec{colGroup, colGroup}
	}
	for len(spec) < cols {
		spec = append(spec, colLiteral)
	}
	spec = spec[:cols]

	attrs := make([]string, cols)
	for j, s := range spec {
		switch s {
		case colMember:
			attrs[j] = "Member"
		case colGroup:
			attrs[j] = "Group"
		case colPlace:
			attrs[j] = "Place"
		default:
			attrs[j] = fmt.Sprintf("Attr%d", j)
		}
	}
	t := table.New(name, attrs)

	members := tg.topicMembers(d, groups)
	entityCells := 0
	for r := 0; r < rows; r++ {
		group := groups[tg.rng.Intn(len(groups))]
		var member kg.EntityID
		hasMember := false
		if len(members) > 0 {
			member = members[tg.rng.Intn(len(members))]
			hasMember = true
			// Keep rows internally consistent: the group cell shows the
			// member's home group.
			group = dom.Home[member]
		}
		cells := make([]table.Cell, cols)
		for j, s := range spec {
			switch s {
			case colMember:
				if hasMember {
					cells[j] = table.LinkedCell(tg.surface(g.Label(member)), member)
					entityCells++
				} else {
					cells[j] = table.Cell{Value: "n/a"}
				}
			case colGroup:
				gr := group
				if s == colGroup && j > 0 && spec[j-1] == colGroup {
					// Second group column of a matchup: a different group.
					gr = groups[tg.rng.Intn(len(groups))]
				}
				cells[j] = table.LinkedCell(tg.surface(g.Label(gr)), gr)
				entityCells++
			case colPlace:
				pl := tg.kg.PlaceOf[group]
				cells[j] = table.LinkedCell(tg.surface(g.Label(pl)), pl)
				entityCells++
			default:
				cells[j] = table.Cell{Value: tg.literal(j)}
			}
		}
		t.AppendRow(cells)
	}

	tg.delinkToCoverage(t, entityCells, rows*cols)
	return t
}

// topicMembers unions the members of the topic groups.
func (tg *tableGen) topicMembers(d int, groups []kg.EntityID) []kg.EntityID {
	var out []kg.EntityID
	for _, g := range groups {
		out = append(out, tg.membersByGroup[d][g]...)
	}
	return out
}

// delinkToCoverage removes entity links uniformly at random until the
// table's link coverage matches a per-table target whose mean is the
// profile's coverage. Per-table variance matters: real corpora mix fully
// annotated and barely annotated tables, which is what the coverage-cap
// experiment of Figure 6 slices by.
func (tg *tableGen) delinkToCoverage(t *table.Table, entityCells, totalCells int) {
	if entityCells == 0 || totalCells == 0 {
		return
	}
	target := tg.profile.Coverage + tg.rng.NormFloat64()*0.12
	if target < 0.02 {
		target = 0.02
	}
	current := float64(entityCells) / float64(totalCells)
	if current <= target {
		return
	}
	keep := target / current
	for _, row := range t.Rows {
		for j := range row {
			if row[j].Linked() && tg.rng.Float64() > keep {
				row[j].Entity = table.NoEntity
			}
		}
	}
}

// surface renders an entity label as it appears in a cell: usually the
// canonical label, but with probability LabelVariance a surface variant
// (mention heterogeneity: surname only, initialisms, truncation).
func (tg *tableGen) surface(label string) string {
	fields := strings.Fields(label)
	if tg.initialismStyle {
		var b strings.Builder
		for _, f := range fields {
			b.WriteByte(f[0])
		}
		return b.String()
	}
	if tg.rng.Float64() >= tg.profile.LabelVariance {
		return label
	}
	if len(fields) < 2 {
		return label
	}
	switch tg.rng.Intn(4) {
	case 0: // last token(s) only: "Santo K."
		return strings.Join(fields[1:], " ")
	case 1: // initial + rest: "R. Santo K."
		return fields[0][:1] + ". " + strings.Join(fields[1:], " ")
	case 2: // initialism sharing no tokens with the label: "RSK"
		var b strings.Builder
		for _, f := range fields {
			b.WriteByte(f[0])
		}
		return b.String()
	default: // first tokens only: "Ron Santo"
		return strings.Join(fields[:len(fields)-1], " ")
	}
}

func (tg *tableGen) literal(col int) string {
	switch col % 3 {
	case 0:
		return fmt.Sprintf("%d", tg.rng.Intn(1000))
	case 1:
		return fmt.Sprintf("%.3f", tg.rng.Float64())
	default:
		return fmt.Sprintf("%d-%02d-%02d", 1950+tg.rng.Intn(75), 1+tg.rng.Intn(12), 1+tg.rng.Intn(28))
	}
}

// ExpandCorpus applies the paper's synthetic-corpus construction (Section
// 7.1): "for each table, we randomly select some rows and insert them into
// a new synthetic table in random order", then includes the original
// corpus. factor is the number of synthetic tables generated per original
// table; the result contains (1+factor)·|src| tables.
func ExpandCorpus(src *lake.Lake, factor int, seed int64) *lake.Lake {
	rng := rand.New(rand.NewSource(seed))
	out := lake.New(src.Graph)
	for _, t := range src.Tables() {
		out.Add(t)
	}
	for f := 0; f < factor; f++ {
		for _, t := range src.Tables() {
			if t.NumRows() == 0 {
				continue
			}
			n := 1 + rng.Intn(t.NumRows())
			perm := rng.Perm(t.NumRows())
			nt := table.New(fmt.Sprintf("%s_syn%d", t.Name, f), t.Attributes)
			nt.Categories = append([]string(nil), t.Categories...)
			for _, ri := range perm[:n] {
				nt.AppendRow(append([]table.Cell(nil), t.Rows[ri]...))
			}
			out.Add(nt)
		}
	}
	return out
}
