package datagen

import (
	"thetis/internal/lake"
	"thetis/internal/metrics"
)

// Ground truth construction. The benchmark the paper evaluates on derives
// graded table relevance from Wikipedia categories and navigational links;
// our generator records the equivalent signals — topic categories on tables
// and the topical entity neighborhood of each query — and scores relevance
// as a weighted combination of category overlap and entity overlap. Recall
// is then computed against the top-k ground-truth tables by this score,
// matching the paper's protocol ("the number of retrieved tables that are
// in the top-k ground truth relevant tables according to their Jaccard
// similarity to the query").

// Relevance weights: categories carry more signal than raw entity overlap,
// like Wikipedia category membership does versus incidental link overlap.
const (
	categoryWeight = 0.6
	entityWeight   = 0.4
	// maxGrade scales the continuous relevance into NDCG gains.
	maxGrade = 3.0
)

// GroundTruth holds the relevance judgments of one query over one corpus.
type GroundTruth struct {
	// Grades maps table IDs to graded relevance in [0, maxGrade]; absent
	// tables are irrelevant.
	Grades map[int]float64
}

// BuildGroundTruth scores every corpus table against the query's topic.
func BuildGroundTruth(l *lake.Lake, bq BenchmarkQuery) GroundTruth {
	qcats := make(map[string]bool, len(bq.Categories))
	for _, c := range bq.Categories {
		qcats[c] = true
	}
	gt := GroundTruth{Grades: make(map[int]float64)}
	for id, t := range l.Tables() {
		// Category Jaccard.
		inter, union := 0, len(qcats)
		for _, c := range t.Categories {
			if qcats[c] {
				inter++
			} else {
				union++
			}
		}
		catScore := 0.0
		if union > 0 {
			catScore = float64(inter) / float64(union)
		}
		// Entity overlap: Jaccard between the table's entity set and the
		// query's topical neighborhood ("ground truth relevant tables
		// according to their Jaccard similarity to the query"). Jaccard —
		// not containment — so a table sharing one ubiquitous entity (a
		// city) with the query is not judged relevant.
		ents := t.Entities()
		hit := 0
		for _, e := range ents {
			if bq.Related[e] {
				hit++
			}
		}
		entScore := 0.0
		if u := len(ents) + len(bq.Related) - hit; u > 0 {
			entScore = float64(hit) / float64(u)
		}
		score := categoryWeight*catScore + entityWeight*entScore
		if score > 0 {
			gt.Grades[id] = maxGrade * score
		}
	}
	return gt
}

// TopK returns the top-k ground-truth relevant table IDs by grade.
func (gt GroundTruth) TopK(k int) []int {
	return metrics.TopKByScore(gt.Grades, k)
}

// RelevantSet returns the top-k ground truth as a membership set, the shape
// metrics.RecallAtK consumes.
func (gt GroundTruth) RelevantSet(k int) map[int]bool {
	out := make(map[int]bool, k)
	for _, id := range gt.TopK(k) {
		out[id] = true
	}
	return out
}

// NumRelevant returns the number of tables with positive relevance.
func (gt GroundTruth) NumRelevant() int { return len(gt.Grades) }
