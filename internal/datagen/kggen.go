// Package datagen generates synthetic semantic-data-lake benchmarks: a
// DBpedia-like knowledge graph, table corpora matching the four profiles of
// Table 2 in the paper (WT2015, WT2019, GitTables, Synthetic), entity-tuple
// queries, and graded relevance ground truth derived from topic categories
// and entity overlap — the same signals (Wikipedia categories and
// navigational links) the SIGIR'24 benchmark used by the paper derives its
// ground truth from.
//
// Everything is deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"thetis/internal/kg"
)

// KGConfig controls synthetic knowledge graph generation.
type KGConfig struct {
	// Domains is the number of topical domains (sports, film, geography…).
	Domains int
	// LeafTypesPerDomain is the number of member leaf types per domain
	// (e.g. BaseballPlayer, BaseballCoach under the baseball domain).
	LeafTypesPerDomain int
	// MembersPerLeafType is the number of member entities per leaf type.
	MembersPerLeafType int
	// GroupsPerDomain is the number of group entities (teams, studios…)
	// members attach to.
	GroupsPerDomain int
	// Places is the size of a shared geography domain every group links
	// into, providing cross-domain connectivity.
	Places int
	// EdgesPerMember is the number of relation edges per member entity.
	EdgesPerMember int
	// Seed fixes generation.
	Seed int64
}

// DefaultKGConfig is sized so that corpora in the tens of thousands of
// tables have realistic entity reuse.
func DefaultKGConfig() KGConfig {
	return KGConfig{
		Domains:            8,
		LeafTypesPerDomain: 3,
		MembersPerLeafType: 400,
		GroupsPerDomain:    25,
		Places:             120,
		EdgesPerMember:     3,
		Seed:               1,
	}
}

// Domain describes one generated topical domain: its entities and types.
type Domain struct {
	Name string
	// MemberTypes are the leaf types of member entities.
	MemberTypes []kg.TypeID
	// GroupType is the type of the domain's group entities.
	GroupType kg.TypeID
	// Members holds member entities grouped by leaf type.
	Members [][]kg.EntityID
	// Groups holds the domain's group entities.
	Groups []kg.EntityID
	// Home maps each member entity to its primary group.
	Home map[kg.EntityID]kg.EntityID
}

// KG bundles the generated graph with its domain structure, which the
// table and query generators sample from.
type KG struct {
	Graph   *kg.Graph
	Domains []Domain
	// Places are the shared geography entities.
	Places []kg.EntityID
	// PlaceOf maps each group to its place.
	PlaceOf map[kg.EntityID]kg.EntityID
}

var domainNames = []string{
	"baseball", "basketball", "film", "music", "politics",
	"aviation", "literature", "cuisine", "chess", "cycling",
	"astronomy", "rail", "finance", "fashion", "botany", "sailing",
}

// GenerateKG builds the synthetic knowledge graph: a four-level taxonomy
// (Thing → DomainAgent → Domain roots → leaf types), member and group
// entities with multi-granularity type annotations, membership and location
// edges, and a shared place domain.
func GenerateKG(cfg KGConfig) *KG {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := kg.NewGraph()
	out := &KG{Graph: g, PlaceOf: make(map[kg.EntityID]kg.EntityID)}

	thing := g.AddType("onto/Thing", "Thing")
	agent := g.AddType("onto/Agent", "Agent")
	org := g.AddType("onto/Organisation", "Organisation")
	person := g.AddType("onto/Person", "Person")
	place := g.AddType("onto/Place", "Place")
	g.AddSubtype(agent, thing)
	g.AddSubtype(org, agent)
	g.AddSubtype(person, agent)
	g.AddSubtype(place, thing)

	memberOf := g.AddPredicate("onto/memberOf")
	locatedIn := g.AddPredicate("onto/locatedIn")
	related := g.AddPredicate("onto/related")

	// Shared geography.
	cityType := g.AddType("onto/City", "City")
	g.AddSubtype(cityType, place)
	for i := 0; i < cfg.Places; i++ {
		e := g.AddEntity(fmt.Sprintf("res/place_%d", i), fmt.Sprintf("%s %d", placeName(rng), i))
		g.AssignType(e, cityType)
		out.Places = append(out.Places, e)
	}

	for d := 0; d < cfg.Domains; d++ {
		name := domainName(d)
		dom := Domain{Name: name, Home: make(map[kg.EntityID]kg.EntityID)}

		domPerson := g.AddType(fmt.Sprintf("onto/%sPerson", name), fmt.Sprintf("%s person", name))
		g.AddSubtype(domPerson, person)
		dom.GroupType = g.AddType(fmt.Sprintf("onto/%sGroup", name), fmt.Sprintf("%s group", name))
		g.AddSubtype(dom.GroupType, org)

		for i := 0; i < cfg.GroupsPerDomain; i++ {
			e := g.AddEntity(fmt.Sprintf("res/%s_group_%d", name, i),
				fmt.Sprintf("%s %s %d", placeName(rng), groupNoun(name), i))
			g.AssignType(e, dom.GroupType)
			g.AssignType(e, org) // multi-granularity direct annotation
			dom.Groups = append(dom.Groups, e)
			pl := out.Places[rng.Intn(len(out.Places))]
			g.AddEdge(e, locatedIn, pl)
			out.PlaceOf[e] = pl
		}

		for lt := 0; lt < cfg.LeafTypesPerDomain; lt++ {
			leaf := g.AddType(fmt.Sprintf("onto/%sRole%d", name, lt),
				fmt.Sprintf("%s role %d", name, lt))
			g.AddSubtype(leaf, domPerson)
			dom.MemberTypes = append(dom.MemberTypes, leaf)
			members := make([]kg.EntityID, 0, cfg.MembersPerLeafType)
			for i := 0; i < cfg.MembersPerLeafType; i++ {
				e := g.AddEntity(fmt.Sprintf("res/%s_r%d_m%d", name, lt, i),
					personName(rng))
				g.AssignType(e, leaf)
				g.AssignType(e, person)
				group := dom.Groups[rng.Intn(len(dom.Groups))]
				g.AddEdge(e, memberOf, group)
				dom.Home[e] = group
				for x := 1; x < cfg.EdgesPerMember; x++ {
					// Intra-domain relatedness edges.
					g.AddEdge(e, related, dom.Groups[rng.Intn(len(dom.Groups))])
				}
				members = append(members, e)
			}
			dom.Members = append(dom.Members, members)
		}
		out.Domains = append(out.Domains, dom)
	}
	return out
}

func domainName(d int) string {
	if d < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("domain%d", d)
}

var firstNames = []string{
	"Ron", "Mitch", "Tony", "Micah", "Grace", "Laura", "Renee", "Katja",
	"Martin", "Matteo", "Aris", "Elena", "Pavel", "Yuki", "Omar", "Ines",
	"Dara", "Noor", "Felix", "Paula", "Ivan", "Mei", "Sofia", "Jonas",
}

var lastNames = []string{
	"Santo", "Stetter", "Giarratano", "Hoffpauir", "Miller", "Hose",
	"Keller", "Novak", "Tanaka", "Haddad", "Costa", "Berg", "Olsen",
	"Vargas", "Okafor", "Lindqvist", "Moretti", "Petrov", "Saito", "Doyle",
}

var placeWords = []string{
	"Chicago", "Milwaukee", "Aalborg", "Boston", "Verona", "Vienna",
	"Madison", "Austin", "Portland", "Leiden", "Galway", "Tampere",
	"Basel", "Gdansk", "Porto", "Osaka", "Cusco", "Tunis", "Bergen",
}

func personName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))] +
		fmt.Sprintf(" %c.", 'A'+rune(rng.Intn(26)))
}

func placeName(rng *rand.Rand) string {
	return placeWords[rng.Intn(len(placeWords))]
}

func groupNoun(domain string) string {
	switch domain {
	case "baseball", "basketball", "cycling", "chess", "sailing":
		return "Team"
	case "film", "music", "fashion":
		return "Studio"
	case "politics", "finance":
		return "Party"
	default:
		return "Club"
	}
}
