package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaximizeIdentity(t *testing.T) {
	score := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	}
	got := Maximize(score)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
	if s := TotalScore(score, got); s != 3 {
		t.Errorf("total = %v, want 3", s)
	}
}

func TestMaximizePrefersBestPermutation(t *testing.T) {
	// Greedy (row 0 -> col 0) is suboptimal here.
	score := [][]float64{
		{10, 9},
		{9, 1},
	}
	got := Maximize(score)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("assignment = %v, want [1 0] (total 18 > 11)", got)
	}
}

func TestMaximizeRectangularWide(t *testing.T) {
	// 2 rows, 4 columns: both rows assigned, distinct columns.
	score := [][]float64{
		{0.1, 0.9, 0.2, 0.3},
		{0.2, 0.8, 0.1, 0.7},
	}
	got := Maximize(score)
	if got[0] == got[1] {
		t.Fatalf("two rows assigned the same column: %v", got)
	}
	if s := TotalScore(score, got); math.Abs(s-1.6) > 1e-12 {
		t.Errorf("total = %v, want 1.6 (row0->1, row1->3)", s)
	}
}

func TestMaximizeRectangularTall(t *testing.T) {
	// 3 rows, 1 column: only one row can be assigned — the best one.
	score := [][]float64{{0.2}, {0.9}, {0.5}}
	got := Maximize(score)
	assigned := 0
	for i, j := range got {
		if j >= 0 {
			assigned++
			if i != 1 {
				t.Errorf("assigned row %d, want row 1 (score 0.9)", i)
			}
		}
	}
	if assigned != 1 {
		t.Fatalf("assignment = %v, want exactly one assigned row", got)
	}
}

func TestMaximizeEmpty(t *testing.T) {
	if got := Maximize(nil); got != nil {
		t.Errorf("Maximize(nil) = %v", got)
	}
	got := Maximize([][]float64{{}, {}})
	if len(got) != 2 || got[0] != -1 || got[1] != -1 {
		t.Errorf("Maximize(zero columns) = %v, want [-1 -1]", got)
	}
}

func TestMaximizeNegativeScores(t *testing.T) {
	score := [][]float64{
		{-1, -5},
		{-5, -1},
	}
	got := Maximize(score)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("assignment = %v, want [0 1]", got)
	}
}

// bruteForceBest enumerates all injective assignments and returns the best
// total score. Rows may stay unassigned only when rows > cols.
func bruteForceBest(score [][]float64) float64 {
	n := len(score)
	if n == 0 {
		return 0
	}
	m := len(score[0])
	best := math.Inf(-1)
	usedCols := make([]bool, m)
	var rec func(row int, total float64, assigned int)
	rec = func(row int, total float64, assigned int) {
		if row == n {
			// A valid solution must assign min(n, m) rows.
			if assigned == minInt(n, m) && total > best {
				best = total
			}
			return
		}
		// Option: leave row unassigned (only useful when n > m).
		rec(row+1, total, assigned)
		for j := 0; j < m; j++ {
			if !usedCols[j] {
				usedCols[j] = true
				rec(row+1, total+score[row][j], assigned+1)
				usedCols[j] = false
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMaximizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		score := make([][]float64, n)
		for i := range score {
			score[i] = make([]float64, m)
			for j := range score[i] {
				score[i][j] = math.Round(rng.Float64()*100) / 100
			}
		}
		got := Maximize(score)
		// Validity: injective, in range.
		seen := map[int]bool{}
		for _, j := range got {
			if j < -1 || j >= m {
				t.Fatalf("trial %d: column out of range: %v", trial, got)
			}
			if j >= 0 {
				if seen[j] {
					t.Fatalf("trial %d: column %d assigned twice: %v", trial, j, got)
				}
				seen[j] = true
			}
		}
		want := bruteForceBest(score)
		if diff := math.Abs(TotalScore(score, got) - want); diff > 1e-9 {
			t.Fatalf("trial %d (%dx%d): total %v, brute force %v, matrix %v",
				trial, n, m, TotalScore(score, got), want, score)
		}
	}
}

func TestMaximizeAssignsAllRowsWhenPossible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(4) // m >= n
		score := make([][]float64, n)
		for i := range score {
			score[i] = make([]float64, m)
			for j := range score[i] {
				score[i][j] = rng.Float64()
			}
		}
		got := Maximize(score)
		for i, j := range got {
			if j < 0 {
				t.Fatalf("trial %d: row %d unassigned with m >= n: %v", trial, i, got)
			}
		}
	}
}

func BenchmarkMaximize10x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	score := make([][]float64, 10)
	for i := range score {
		score[i] = make([]float64, 20)
		for j := range score[i] {
			score[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Maximize(score)
	}
}
