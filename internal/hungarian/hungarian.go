// Package hungarian solves the linear assignment problem with the Hungarian
// method (Kuhn–Munkres, potentials formulation, O(n²·m)). Thetis uses it to
// map query-tuple entities to table columns such that the summed
// column-relevance score is maximized (Section 5.1 of the paper).
package hungarian

import "math"

// Maximize finds an assignment of rows to columns of the score matrix that
// maximizes the total score, assigning each row to at most one column and
// each column to at most one row. It returns, for each row, the assigned
// column index, or -1 when the row is unassigned (possible only when there
// are more rows than columns). All rows of score must have equal length.
//
// The solver is exact; negative scores are allowed. An empty matrix yields
// an empty assignment.
func Maximize(score [][]float64) []int {
	n := len(score)
	if n == 0 {
		return nil
	}
	m := len(score[0])
	if m == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out
	}

	if n <= m {
		cost := negate(score, n, m)
		return minCostAssign(cost, n, m)
	}
	// More rows than columns: solve the transpose and invert the mapping.
	t := make([][]float64, m)
	for j := 0; j < m; j++ {
		t[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			t[j][i] = -score[i][j]
		}
	}
	colToRow := minCostAssign(t, m, n)
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j, i := range colToRow {
		if i >= 0 {
			out[i] = j
		}
	}
	return out
}

// TotalScore sums the score of an assignment produced by Maximize.
func TotalScore(score [][]float64, assignment []int) float64 {
	var total float64
	for i, j := range assignment {
		if j >= 0 {
			total += score[i][j]
		}
	}
	return total
}

func negate(score [][]float64, n, m int) [][]float64 {
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			cost[i][j] = -score[i][j]
		}
	}
	return cost
}

// minCostAssign solves min-cost assignment for an n×m cost matrix with
// n ≤ m, assigning every row. It returns per-row column indexes.
func minCostAssign(a [][]float64, n, m int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row (1-based) currently matched to column j; 0 = free
	way := make([]int, m+1) // way[j]: previous column on the augmenting path

	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	out := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
