// Package hungarian solves the linear assignment problem with the Hungarian
// method (Kuhn–Munkres, potentials formulation, O(n²·m) for an n×m matrix
// with n ≤ m; the transpose is solved when n > m). Thetis uses it to map
// query-tuple entities to table columns such that the summed
// column-relevance score is maximized — the mapping µ of Section 5.1 of the
// paper, whose optimality the greedy-mapping ablation (core.MappingGreedy)
// quantifies.
//
// The solver is exact and deterministic, which matters beyond correctness:
// the scoring pipeline memoizes entity similarities across workers
// (core.SigmaCache) under the guarantee that identical inputs produce
// identical assignments, so ranked results cannot depend on scheduling.
// Callers hand the same score-matrix rows to repeated solves (rows may
// alias each other when query tuples repeat entities); the solver treats
// the matrix as read-only.
package hungarian

import "math"

// Maximize finds an assignment of rows to columns of the score matrix that
// maximizes the total score, assigning each row to at most one column and
// each column to at most one row. It returns, for each row, the assigned
// column index, or -1 when the row is unassigned (possible only when there
// are more rows than columns). All rows of score must have equal length.
//
// The solver is exact; negative scores are allowed. An empty matrix yields
// an empty assignment.
func Maximize(score [][]float64) []int {
	n := len(score)
	if n == 0 {
		return nil
	}
	m := len(score[0])
	if m == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out
	}

	if n <= m {
		cost := negate(score, n, m)
		return minCostAssign(cost, n, m)
	}
	// More rows than columns: solve the transpose and invert the mapping.
	t := make([][]float64, m)
	for j := 0; j < m; j++ {
		t[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			t[j][i] = -score[i][j]
		}
	}
	colToRow := minCostAssign(t, m, n)
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j, i := range colToRow {
		if i >= 0 {
			out[i] = j
		}
	}
	return out
}

// TotalScore sums the score of an assignment over the given matrix:
// Σ score[i][assignment[i]] across assigned rows (unassigned rows, -1,
// contribute nothing). It accepts any assignment shape Maximize or a
// greedy alternative produces, so ablations can compare solvers on the
// same objective.
func TotalScore(score [][]float64, assignment []int) float64 {
	var total float64
	for i, j := range assignment {
		if j >= 0 {
			total += score[i][j]
		}
	}
	return total
}

func negate(score [][]float64, n, m int) [][]float64 {
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			cost[i][j] = -score[i][j]
		}
	}
	return cost
}

// minCostAssign solves min-cost assignment for an n×m cost matrix with
// n ≤ m, assigning every row. It returns per-row column indexes.
//
// This is the dual (potentials) formulation: u/v are row/column potentials
// kept feasible (u[i]+v[j] ≤ cost[i][j]); each outer iteration grows the
// matching by one row via a shortest augmenting path over reduced costs
// (minv tracks the frontier, way the path). 1-based indexing with column 0
// as the virtual start keeps the augmenting walk branch-free.
func minCostAssign(a [][]float64, n, m int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row (1-based) currently matched to column j; 0 = free
	way := make([]int, m+1) // way[j]: previous column on the augmenting path

	minv := make([]float64, m+1)
	used := make([]bool, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	out := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
