package core

import (
	"math/rand"
	"testing"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// stubSim is a fully controllable σ for axiom tests: identity is 1,
// everything else comes from an explicit symmetric map (default 0).
type stubSim map[[2]kg.EntityID]float64

func (s stubSim) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	if v, ok := s[[2]kg.EntityID{a, b}]; ok {
		return v
	}
	return s[[2]kg.EntityID{b, a}]
}

// axiomFixture builds a graph with n plain entities and a lake factory.
func axiomFixture(n int) (*kg.Graph, []kg.EntityID) {
	g := kg.NewGraph()
	ents := make([]kg.EntityID, n)
	for i := range ents {
		ents[i] = g.AddEntity(string(rune('a'+i)), "")
	}
	return g, ents
}

func singleRowTable(name string, ents []kg.EntityID, g *kg.Graph) *table.Table {
	attrs := make([]string, len(ents))
	cells := make([]table.Cell, len(ents))
	for i, e := range ents {
		attrs[i] = string(rune('A' + i))
		cells[i] = table.LinkedCell(g.Label(e), e)
	}
	t := table.New(name, attrs)
	t.AppendRow(cells)
	return t
}

func scoreOf(t *testing.T, results []Result, id lake.TableID) float64 {
	t.Helper()
	for _, r := range results {
		if r.Table == id {
			return r.Score
		}
	}
	return 0
}

// Axiom 1: a total exact mapping scores strictly above any table with no
// relevant mapping for some entity (unrelated content).
func TestAxiom1TotalExactBeatsUnrelated(t *testing.T) {
	g, e := axiomFixture(6)
	sim := stubSim{
		// e3 is weakly related to e0; e4/e5 unrelated to everything.
		{e[0], e[3]}: 0.4,
	}
	l := lake.New(g)
	exact := l.Add(singleRowTable("exact", []kg.EntityID{e[0], e[1]}, g))
	partial := l.Add(singleRowTable("partial", []kg.EntityID{e[3], e[4]}, g))

	eng := &Engine{Lake: l, Sim: sim, Inf: UniformInformativeness, Agg: AggregateMax}
	q := Query{Tuple{e[0], e[1]}}
	res, _ := eng.Search(q, -1)
	se, sp := scoreOf(t, res, exact), scoreOf(t, res, partial)
	if se != 1 {
		t.Errorf("total exact mapping score = %v, want 1", se)
	}
	if !(se > sp) {
		t.Errorf("axiom 1 violated: exact %v <= partial %v", se, sp)
	}
}

// Axiom 2: with dom(µ2) ⊆ dom(µ1), the larger exact mapping scores at
// least as high, for any random query over random exact subsets.
func TestAxiom2LargerExactMappingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		width := 2 + rng.Intn(4)
		g, e := axiomFixture(width)
		q := Query{Tuple(append([]kg.EntityID(nil), e...))}

		// Random subset sizes s2 <= s1 of exactly-matched entities.
		s1 := 1 + rng.Intn(width)
		s2 := 1 + rng.Intn(s1)
		l := lake.New(g)
		t1 := l.Add(singleRowTable("t1", e[:s1], g))
		t2 := l.Add(singleRowTable("t2", e[:s2], g))

		eng := &Engine{Lake: l, Sim: stubSim{}, Inf: UniformInformativeness, Agg: AggregateMax}
		res, _ := eng.Search(q, -1)
		v1, v2 := scoreOf(t, res, t1), scoreOf(t, res, t2)
		if v1 < v2-1e-12 {
			t.Fatalf("trial %d: axiom 2 violated: |dom|=%d scored %v < |dom|=%d scored %v",
				trial, s1, v1, s2, v2)
		}
	}
}

// Axiom 3: if every mapped entity is strictly more similar in T1 than in
// T2, then SemRel(T1) > SemRel(T2).
func TestAxiom3StrongerSimilaritiesWin(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		width := 1 + rng.Intn(4)
		g, e := axiomFixture(3 * width)
		query := e[:width]
		strong := e[width : 2*width]
		weak := e[2*width : 3*width]

		sim := stubSim{}
		for i := 0; i < width; i++ {
			hi := 0.5 + rng.Float64()*0.5 // (0.5, 1)
			lo := 0.01 + rng.Float64()*0.4
			sim[[2]kg.EntityID{query[i], strong[i]}] = hi
			sim[[2]kg.EntityID{query[i], weak[i]}] = lo
		}
		l := lake.New(g)
		t1 := l.Add(singleRowTable("strong", strong, g))
		t2 := l.Add(singleRowTable("weak", weak, g))

		eng := &Engine{Lake: l, Sim: sim, Inf: UniformInformativeness, Agg: AggregateMax}
		res, _ := eng.Search(Query{Tuple(query)}, -1)
		v1, v2 := scoreOf(t, res, t1), scoreOf(t, res, t2)
		if !(v1 > v2) {
			t.Fatalf("trial %d: axiom 3 violated: strong %v <= weak %v", trial, v1, v2)
		}
	}
}

// Section 4.1's asymmetry requirement: for t2 ⊂ t1, SemRel(query=t1,
// table=t2) <= SemRel(query=t2, table=t1).
func TestSubsetQueryAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		width := 2 + rng.Intn(4)
		g, e := axiomFixture(width)
		sub := 1 + rng.Intn(width-1)

		lBig := lake.New(g)
		bigID := lBig.Add(singleRowTable("big", e, g))
		lSmall := lake.New(g)
		smallID := lSmall.Add(singleRowTable("small", e[:sub], g))

		engBig := &Engine{Lake: lBig, Sim: stubSim{}, Inf: UniformInformativeness, Agg: AggregateMax}
		engSmall := &Engine{Lake: lSmall, Sim: stubSim{}, Inf: UniformInformativeness, Agg: AggregateMax}

		// Query = subset tuple against the superset table: perfect.
		rSub, _ := engBig.Search(Query{Tuple(e[:sub])}, -1)
		// Query = superset tuple against the subset table: partial.
		rSup, _ := engSmall.Search(Query{Tuple(e)}, -1)

		vSub := scoreOf(t, rSub, bigID)
		vSup := scoreOf(t, rSup, smallID)
		if vSup > vSub+1e-12 {
			t.Fatalf("trial %d: asymmetry violated: SemRel(t1,t2)=%v > SemRel(t2,t1)=%v",
				trial, vSup, vSub)
		}
		if vSub != 1 {
			t.Fatalf("trial %d: subset query against superset table = %v, want 1", trial, vSub)
		}
	}
}

// SemRel is always within (0, 1] for returned tables, for random σ values,
// random tables, and random informativeness weights.
func TestSemRelRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(8)
		g, e := axiomFixture(n)
		sim := stubSim{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					sim[[2]kg.EntityID{e[i], e[j]}] = rng.Float64()
				}
			}
		}
		l := lake.New(g)
		for tbl := 0; tbl < 4; tbl++ {
			width := 1 + rng.Intn(3)
			tt := table.New("t", make([]string, width))
			for r := 0; r < 1+rng.Intn(4); r++ {
				cells := make([]table.Cell, width)
				for c := range cells {
					if rng.Float64() < 0.7 {
						cells[c] = table.LinkedCell("x", e[rng.Intn(n)])
					} else {
						cells[c] = table.Cell{Value: "lit"}
					}
				}
				tt.AppendRow(cells)
			}
			l.Add(tt)
		}
		inf := func(kg.EntityID) float64 { return 0.1 + 0.9*rng.Float64() }
		// Informativeness must be deterministic per entity: memoize.
		memo := map[kg.EntityID]float64{}
		infm := func(x kg.EntityID) float64 {
			if v, ok := memo[x]; ok {
				return v
			}
			v := inf(x)
			memo[x] = v
			return v
		}
		agg := AggregateMax
		if rng.Intn(2) == 0 {
			agg = AggregateAvg
		}
		mode := ModeEntityWise
		if rng.Intn(2) == 0 {
			mode = ModePairwise
		}
		eng := &Engine{Lake: l, Sim: sim, Inf: infm, Agg: agg, Mode: mode, Parallelism: 1}
		q := Query{Tuple{e[rng.Intn(n)], e[rng.Intn(n)]}}
		res, _ := eng.Search(q, -1)
		for _, r := range res {
			if r.Score <= 0 || r.Score > 1+1e-12 {
				t.Fatalf("trial %d: SemRel %v out of (0,1]", trial, r.Score)
			}
		}
	}
}
