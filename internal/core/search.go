package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
)

// Search-pipeline metrics (see docs/OBSERVABILITY.md), cached as package
// handles so the hot path pays one atomic update each.
var (
	mSearches     = obs.SearchesTotal()
	mSearchSecs   = obs.SearchSeconds()
	mStageMapping = obs.SearchStageSeconds("mapping")
	mStageScore   = obs.SearchStageSeconds("score")
	mStageRank    = obs.SearchStageSeconds("rank")
	mCandidates   = obs.SearchCandidates()
	mTruncated    = obs.SearchTruncatedTotal()
	mSearchPanics = obs.PanicsTotal(nil, "search")
	mSigmaHits    = obs.SigmaCacheHitsTotal()
	mSigmaMisses  = obs.SigmaCacheMissesTotal()
	mSigmaBytes   = obs.SigmaCacheBytes()
	mSigmaRatio   = obs.SigmaCacheHitRatio()
	mCrossHits    = obs.CrossCacheHitsTotal()
	mCrossMisses  = obs.CrossCacheMissesTotal()
	mCrossBytes   = obs.CrossCacheBytes()
	mCrossRatio   = obs.CrossCacheHitRatio()
)

// sigmaCacheRuntimeOff is the process-wide σ-cache kill switch, set by
// SetSigmaCacheEnabled. It complements the per-engine DisableSigmaCache
// field and the nosigmacache build tag.
var sigmaCacheRuntimeOff atomic.Bool

// SetSigmaCacheEnabled toggles the query-scoped σ cache for every engine
// in the process (default enabled). Benchmark drivers flip it to pair
// cached against uncached runs inside one binary; results are identical
// either way, only the runtime changes (see docs/PERFORMANCE.md).
func SetSigmaCacheEnabled(enabled bool) { sigmaCacheRuntimeOff.Store(!enabled) }

func kgEntity(x uint32) kg.EntityID { return kg.EntityID(x) }

// Engine is the semantic table search engine of Algorithm 1. Configure it
// with a similarity σ (types or embeddings), an informativeness weighting,
// and a row aggregation, then call Search. An Engine is safe for concurrent
// searches.
type Engine struct {
	Lake *lake.Lake
	Sim  Similarity
	Inf  Informativeness
	Agg  Aggregation
	// Mode selects Algorithm 1's entity-wise aggregation (default) or the
	// pairwise tuple-to-tuple reading of Equation 1.
	Mode ScoreMode
	// Mapping selects the query-to-column assignment algorithm (Hungarian
	// by default; greedy as a cheaper, suboptimal ablation).
	Mapping MappingMethod
	// Parallelism bounds the scoring worker count; 0 means GOMAXPROCS.
	Parallelism int
	// DisableSigmaCache turns off the query-scoped σ cache for this
	// engine, falling back to per-worker memoization. Scores are
	// bit-identical either way (σ is deterministic; only the amount of
	// recomputation changes) — the differential test battery and the
	// benchcheck baseline rely on that. See also SetSigmaCacheEnabled and
	// the nosigmacache build tag.
	DisableSigmaCache bool
	// SigmaTopK > 0 turns on approximate top-k σ scoring (docs/ANN.md):
	// each query entity resolves its k nearest store entities once per
	// search through Ann, and pairs outside that neighborhood score σ = 0.
	// 0 (the default) scores exactly; results are then bit-identical to an
	// engine without the field.
	SigmaTopK int
	// Ann supplies the ANN index for top-k σ, consulted once per search.
	// A nil source or a nil index falls back to exact σ for that search
	// (counted on thetis_ann_fallbacks_total).
	Ann AnnSource
	// Cross is the optional cross-query σ cache (docs/THROUGHPUT.md),
	// consulted on query-cache misses and persisting across searches under
	// epoch invalidation. Nil (the default) is the exactness baseline the
	// differential battery compares against; results are bit-identical
	// either way. It is never consulted when a search scores with a
	// per-query top-k σ (docs/ANN.md), whose values are query-relative.
	Cross *CrossCache
}

// newSigmaCache returns the σ cache for one search over the given σ (the
// engine's exact σ, or the search's top-k σ), or nil when caching is
// disabled by the build tag, the process-wide switch, or the engine.
// When ctx carries a batch-scoped cache (WithBatchSigma) built for the
// same σ, that shared cache is returned instead of a fresh query-scoped
// one — the σ-sharing seam of the batch API. A top-k σ never matches the
// batch cache's σ, so those searches keep their private query-scoped
// cache, and all the disable switches are checked first, so the escape
// hatches govern the batch scope too.
func (eng *Engine) newSigmaCache(ctx context.Context, q Query, sim Similarity) *SigmaCache {
	if !sigmaCacheBuildEnabled || eng.DisableSigmaCache || sigmaCacheRuntimeOff.Load() {
		return nil
	}
	if eng.Lake == nil || eng.Lake.Graph == nil {
		return nil
	}
	if bs := batchSigmaFrom(ctx); bs != nil && bs.sim == sim && bs.cache != nil {
		return bs.cache
	}
	return NewSigmaCache(q, sim, eng.Lake.Graph.NumEntities())
}

// crossFor returns the engine's cross-query cache when it may serve a
// search scoring with sim: the cache memoizes the engine's exact σ, so a
// per-query top-k σ (whose values are relative to one query's ANN
// neighborhoods) must bypass it.
func (eng *Engine) crossFor(sim Similarity) *CrossCache {
	if eng.Cross == nil || sim != eng.Sim {
		return nil
	}
	return eng.Cross
}

// NewEngine builds an engine with IDF informativeness and MAX aggregation,
// the configuration the paper recommends.
func NewEngine(l *lake.Lake, sim Similarity) *Engine {
	return &Engine{Lake: l, Sim: sim, Inf: IDFInformativeness(l), Agg: AggregateMax}
}

// Result is one scored table.
type Result struct {
	Table lake.TableID
	Score float64
}

// Stats reports how a search spent its time, backing the runtime
// experiments of Section 7.3.
type Stats struct {
	// Candidates is the number of tables considered (after prefiltering).
	Candidates int
	// Scored is the number of tables with SemRel > 0.
	Scored int
	// MappingTime is CPU time spent in the query-to-column assignment μ,
	// summed across all tables and all scoring workers. With
	// Parallelism > 1 it can therefore exceed TotalTime; the wall-clock
	// stage breakdown lives in Trace (the mapping stage carries this same
	// value in its CPU field, inside the score stage's wall time).
	MappingTime time.Duration
	// TotalTime is the wall-clock duration of the engine search. It does
	// not include LSEI prefiltering, which runs before the engine; the
	// enclosing Trace's Total does.
	TotalTime time.Duration
	// Truncated reports that the search's context was cancelled or hit its
	// deadline before every candidate was scored. The returned results are
	// a best-effort subset: every table that was scored before the cutoff,
	// correctly ranked — graceful degradation, not an error.
	Truncated bool
	// Panicked counts candidate tables whose scoring panicked (poisoned
	// data reaching a σ or aggregation). Each panic is contained to its
	// table — recovered, counted on thetis_panics_total{site="search"}, and
	// excluded from the results — instead of crashing the process.
	Panicked int
	// SigmaHits and SigmaMisses count σ evaluations served from and
	// filled into the query-scoped SigmaCache during this search. Both
	// are zero when the cache is disabled (the per-worker fallback does
	// not report its memoization). Their sum is the total number of σ
	// lookups the scoring stage issued through the cache.
	SigmaHits, SigmaMisses int64
	// CrossHits and CrossMisses count σ resolutions served from and filled
	// into the cross-query CrossCache (docs/THROUGHPUT.md). Only lookups
	// that missed the query/batch-scoped cache reach the cross cache, so
	// CrossHits+CrossMisses ≤ SigmaMisses when both caches run. Zero when
	// no cross cache is attached.
	CrossHits, CrossMisses int64
	// ShardErrors explains, in human-readable form, why shard legs of a
	// scatter-gather search contributed nothing: a contained panic, a
	// remote shard whose every replica/retry failed, and so on. Empty on
	// unsharded searches and on sharded searches where every leg
	// answered. A non-empty value always travels with Truncated=true —
	// the results are still a correctly ranked prefix, never an error —
	// and distinguishes "nothing matched" from "shards were unreachable".
	ShardErrors []string
	// Trace is the structured per-stage breakdown of this search
	// (mapping → score → rank, with prefilter probe/vote stages prepended
	// by System.SearchStats when an LSEI is active). Always non-nil on
	// searches executed by Search/SearchCandidates.
	Trace *obs.Trace
}

// Search scores every table of the lake against q and returns the top-k
// results (k < 0 returns all) in descending score order. Tables with
// SemRel(Q,T) = 0 are never returned. It is SearchContext with a
// background context (never cancelled).
func (eng *Engine) Search(q Query, k int) ([]Result, Stats) {
	return eng.SearchCandidatesContext(context.Background(), q, nil, k)
}

// SearchContext is Search honoring cancellation and deadlines: scoring
// workers check ctx between tables (the cancellation granule is one table),
// so an expiring deadline returns promptly with the best-effort prefix of
// tables scored so far, marked Stats.Truncated. Deadlines are checked
// against the clock as well as ctx.Done (see cancelProbe), so truncation
// does not depend on the runtime scheduling the context's timer goroutine.
func (eng *Engine) SearchContext(ctx context.Context, q Query, k int) ([]Result, Stats) {
	return eng.SearchCandidatesContext(ctx, q, nil, k)
}

// SearchCandidates is Search restricted to a candidate table set (nil =
// the whole lake), the entry point used after LSEI prefiltering.
func (eng *Engine) SearchCandidates(q Query, candidates []lake.TableID, k int) ([]Result, Stats) {
	return eng.SearchCandidatesContext(context.Background(), q, candidates, k)
}

// SearchCandidatesContext is SearchCandidates honoring cancellation (see
// SearchContext for the truncation contract).
func (eng *Engine) SearchCandidatesContext(ctx context.Context, q Query, candidates []lake.TableID, k int) ([]Result, Stats) {
	start := time.Now()
	tr := obs.NewTrace("search")
	if candidates == nil {
		// Full scan enumerates the live tables only — after removals the ID
		// space has tombstoned slots a dense 0..N-1 walk would mis-cover.
		candidates = eng.Lake.LiveTableIDs()
	}
	stats := Stats{Candidates: len(candidates), Trace: tr}
	mSearches.Inc()
	mCandidates.Observe(float64(len(candidates)))
	if len(q) == 0 || len(candidates) == 0 {
		stats.TotalTime = time.Since(start)
		tr.Total = stats.TotalTime
		mSearchSecs.Observe(stats.TotalTime.Seconds())
		return nil, stats
	}

	workers := eng.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}

	stop := newCancelProbe(ctx)
	var truncated atomic.Bool
	if ctx.Err() != nil {
		truncated.Store(true)
		workers = 0 // context already dead: skip scoring entirely
	}

	type partial struct {
		results                []Result
		mapping                time.Duration
		panicked               int
		hits, misses           int64
		crossHits, crossMisses int64
	}
	// sim is the σ this search scores with: the engine's exact σ, or —
	// with SigmaTopK on — a per-search top-k neighborhood σ resolved once
	// here, before the workers start, so rankings do not depend on
	// Parallelism.
	sim := eng.searchSim(q, tr)
	// sigma is the query-scoped σ cache, shared by every scoring worker of
	// this search so each distinct (query entity, cell entity) pair is
	// scored exactly once per query — or the batch-scoped cache when ctx
	// carries one (docs/THROUGHPUT.md). Nil when disabled; scorers then
	// fall back to per-worker memoization.
	sigma := eng.newSigmaCache(ctx, q, sim)
	// cross is the optional cross-query σ cache, consulted by scorers only
	// on sigma-cache misses. Nil unless attached to the engine and the
	// search scores with the engine's exact σ.
	cross := eng.crossFor(sim)
	// scoreOne contains a panic to the table that caused it: scoring worker
	// goroutines are outside any net/http recovery, so an uncontained panic
	// here would kill the whole process.
	scoreOne := func(sc *scorer, tid lake.TableID) (score float64, mt time.Duration, panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				mSearchPanics.Inc()
			}
		}()
		t := eng.Lake.Table(tid)
		if t == nil {
			// Removed table: a stale candidate (e.g. from an index snapshot
			// predating the removal) scores 0 rather than crashing a worker.
			return 0, 0, false
		}
		score, mt = sc.scoreTable(t, eng.Lake.ColumnIndex(tid))
		return
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	scoreStart := time.Now()
	chunk := 0
	if workers > 0 {
		chunk = (len(candidates) + workers - 1) / workers
	}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Each worker gets its own scorer (scratch rows, local σ
			// fallback); the SigmaCache is the part they share.
			sc := newScorer(q, sim, eng.Inf, eng.Agg, eng.Mode, eng.Mapping, sigma, cross)
			defer func() {
				parts[w].hits += sc.hits
				parts[w].misses += sc.misses
				parts[w].crossHits += sc.crossHits
				parts[w].crossMisses += sc.crossMisses
			}()
			for _, tid := range candidates[lo:hi] {
				if stop.expired() {
					truncated.Store(true)
					return
				}
				score, mt, panicked := scoreOne(sc, tid)
				parts[w].mapping += mt
				if panicked {
					parts[w].panicked++
					// The scorer's scratch may be mid-update; rebuild it.
					// (SigmaCache entries are stored whole, so the shared
					// cache stays valid.)
					parts[w].hits += sc.hits
					parts[w].misses += sc.misses
					parts[w].crossHits += sc.crossHits
					parts[w].crossMisses += sc.crossMisses
					sc = newScorer(q, sim, eng.Inf, eng.Agg, eng.Mode, eng.Mapping, sigma, cross)
					continue
				}
				if score > 0 {
					parts[w].results = append(parts[w].results, Result{Table: tid, Score: score})
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	scoreWall := time.Since(scoreStart)

	var results []Result
	for _, p := range parts {
		results = append(results, p.results...)
		stats.MappingTime += p.mapping
		stats.Panicked += p.panicked
		stats.SigmaHits += p.hits
		stats.SigmaMisses += p.misses
		stats.CrossHits += p.crossHits
		stats.CrossMisses += p.crossMisses
	}
	if sigma != nil {
		sigma.addCounts(stats.SigmaHits, stats.SigmaMisses)
		mSigmaHits.Add(stats.SigmaHits)
		mSigmaMisses.Add(stats.SigmaMisses)
		mSigmaBytes.Set(float64(sigma.MemoryBytes()))
		if total := stats.SigmaHits + stats.SigmaMisses; total > 0 {
			mSigmaRatio.Set(float64(stats.SigmaHits) / float64(total))
		}
	}
	if cross != nil {
		cross.addCounts(stats.CrossHits, stats.CrossMisses)
		mCrossHits.Add(stats.CrossHits)
		mCrossMisses.Add(stats.CrossMisses)
		mCrossBytes.Set(float64(cross.MemoryBytes()))
		if total := stats.CrossHits + stats.CrossMisses; total > 0 {
			mCrossRatio.Set(float64(stats.CrossHits) / float64(total))
		}
		tr.Add(obs.Stage{Name: "crosscache", Items: int(stats.CrossHits)})
	}
	stats.Truncated = truncated.Load()
	if stats.Truncated {
		mTruncated.Inc()
	}
	// The mapping stage runs inside the scoring workers, so its wall time
	// is part of the score stage; it is reported as cross-worker CPU time.
	tr.Add(obs.Stage{Name: "mapping", CPU: stats.MappingTime, Items: len(candidates)})
	tr.Add(obs.Stage{Name: "score", Wall: scoreWall, Items: len(candidates)})
	rank := tr.StartStage("rank")
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Table < results[j].Table
	})
	stats.Scored = len(results)
	if k >= 0 && len(results) > k {
		results = results[:k]
	}
	rank.SetItems(stats.Scored)
	rankWall := rank.End()
	stats.TotalTime = time.Since(start)
	tr.Total = stats.TotalTime
	mStageMapping.Observe(stats.MappingTime.Seconds())
	mStageScore.Observe(scoreWall.Seconds())
	mStageRank.Observe(rankWall.Seconds())
	mSearchSecs.Observe(stats.TotalTime.Seconds())
	return results, stats
}

// ScoreTable computes SemRel(Q, T) for a single table, returning the score
// and the time spent in the column-mapping step (the microbenchmark of
// Section 7.3). It shares the search path's memoization (query-scoped σ
// cache, column pre-aggregation), so its score is bit-identical to the one
// the same table earns inside Search.
func (eng *Engine) ScoreTable(q Query, tid lake.TableID) (float64, time.Duration) {
	sim := eng.searchSim(q, nil)
	sigma := eng.newSigmaCache(context.Background(), q, sim)
	sc := newScorer(q, sim, eng.Inf, eng.Agg, eng.Mode, eng.Mapping, sigma, eng.crossFor(sim))
	return sc.scoreTable(eng.Lake.Table(tid), eng.Lake.ColumnIndex(tid))
}

// ScoreTableContext is ScoreTable honoring cancellation: one table is the
// scoring granule, so a dead context short-circuits to (0, 0) and a live
// one scores the table in full.
func (eng *Engine) ScoreTableContext(ctx context.Context, q Query, tid lake.TableID) (float64, time.Duration) {
	if ctx.Err() != nil {
		return 0, 0
	}
	return eng.ScoreTable(q, tid)
}

// RankedTables projects results onto table IDs as plain ints, the shape the
// metrics package consumes.
func RankedTables(results []Result) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = int(r.Table)
	}
	return out
}
