package core

import (
	"math"
	"testing"
	"time"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// fixtureLake assembles a miniature version of Figure 1b: baseball tables,
// a volleyball table, and a cities table, all linked against fixtureGraph.
func fixtureLake(t testing.TB) (*lake.Lake, *kg.Graph) {
	t.Helper()
	g := fixtureGraph()
	l := lake.New(g)

	le := func(uri string) table.Cell {
		e, ok := g.Lookup(uri)
		if !ok {
			t.Fatalf("fixture entity %q missing", uri)
		}
		return table.LinkedCell(g.Label(e), e)
	}

	// Table 0: exact data for the query (players + teams).
	t0 := table.New("players", []string{"Player", "Team", "Avg"})
	t0.AppendRow([]table.Cell{le("santo"), le("cubs"), {Value: ".277"}})
	t0.AppendRow([]table.Cell{le("stetter"), le("brewers"), {Value: ".102"}})
	l.Add(t0)

	// Table 1: related data (other baseball players/teams).
	t1 := table.New("transfers", []string{"Player", "From"})
	t1.AppendRow([]table.Cell{le("stetter"), le("brewers")})
	l.Add(t1)

	// Table 2: same shape but a different sport (less relevant).
	t2 := table.New("volleyball", []string{"Player", "Team"})
	t2.AppendRow([]table.Cell{le("volley1"), le("volleyteam")})
	l.Add(t2)

	// Table 3: cities only (weakly related through the taxonomy root).
	t3 := table.New("cities", []string{"City"})
	t3.AppendRow([]table.Cell{le("chicago")})
	t3.AppendRow([]table.Cell{le("milwaukee")})
	l.Add(t3)

	// Table 4: completely unlinked (no entities at all).
	t4 := table.New("numbers", []string{"A", "B"})
	t4.AppendValues("1", "2")
	l.Add(t4)

	return l, g
}

func queryOf(t testing.TB, g *kg.Graph, uris ...string) Query {
	t.Helper()
	tuple := make(Tuple, len(uris))
	for i, u := range uris {
		tuple[i] = ent(t, g, u)
	}
	return Query{tuple}
}

func TestSearchRanksExactTableFirst(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, stats := eng.Search(q, -1)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].Table != 0 {
		t.Errorf("top table = %d, want 0 (exact match); results %v", results[0].Table, results)
	}
	if results[0].Score != 1 {
		t.Errorf("exact total mapping score = %v, want 1", results[0].Score)
	}
	if stats.Candidates != l.NumTables() {
		t.Errorf("candidates = %d, want all %d", stats.Candidates, l.NumTables())
	}
	// The unlinked table must never be returned.
	for _, r := range results {
		if r.Table == 4 {
			t.Error("unlinked table returned with positive score")
		}
	}
}

// Axiom 1: total exact mappings beat everything unrelated.
// Axiom 3: tuples with more related entities score higher.
func TestSearchAxiomOrdering(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, _ := eng.Search(q, -1)
	pos := map[lake.TableID]int{}
	score := map[lake.TableID]float64{}
	for i, r := range results {
		pos[r.Table] = i
		score[r.Table] = r.Score
	}
	// exact (0) > related baseball (1) > volleyball (2) > cities (3)
	if !(score[0] > score[1]) {
		t.Errorf("exact %v should beat related %v", score[0], score[1])
	}
	if !(score[1] > score[2]) {
		t.Errorf("related baseball %v should beat volleyball %v", score[1], score[2])
	}
	if !(score[2] > score[3]) {
		t.Errorf("volleyball %v should beat cities %v", score[2], score[3])
	}
}

// Axiom 2: a larger partial exact mapping is at least as relevant.
func TestPartialExactMappingOrdering(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// Table 0 contains both query entities; table 1 only one of them.
	t0 := table.New("both", []string{"a", "b"})
	t0.AppendRow([]table.Cell{le("santo"), le("cubs")})
	l.Add(t0)
	t1 := table.New("one", []string{"a"})
	t1.AppendRow([]table.Cell{le("santo")})
	l.Add(t1)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, _ := eng.Search(q, -1)
	if len(results) != 2 || results[0].Table != 0 {
		t.Fatalf("results = %v, want table 0 first", results)
	}
	if !(results[0].Score > results[1].Score) {
		t.Errorf("total exact %v must beat partial exact %v", results[0].Score, results[1].Score)
	}
}

func TestColumnMappingAssignsDistinctColumns(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// Both query entities are players; the table has two player columns.
	// The Hungarian constraint forces them onto different columns.
	tb := table.New("matchups", []string{"Home", "Away"})
	tb.AppendRow([]table.Cell{le("santo"), le("stetter")})
	l.Add(tb)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "stetter")
	results, _ := eng.Search(q, -1)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	// Optimal: santo->Home (1.0), stetter->Away (1.0) => SemRel 1.
	if results[0].Score != 1 {
		t.Errorf("score = %v, want 1 (distinct optimal columns)", results[0].Score)
	}
}

func TestQueryWiderThanTable(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	tb := table.New("narrow", []string{"Player"})
	tb.AppendRow([]table.Cell{le("santo")})
	l.Add(tb)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs", "chicago")
	results, _ := eng.Search(q, -1)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if results[0].Score <= 0 || results[0].Score >= 1 {
		t.Errorf("partial mapping score = %v, want in (0,1)", results[0].Score)
	}
}

func TestSearchTopKAndOrderStability(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	all, _ := eng.Search(q, -1)
	top2, _ := eng.Search(q, 2)
	if len(top2) != 2 {
		t.Fatalf("top2 = %v", top2)
	}
	for i := range top2 {
		if top2[i] != all[i] {
			t.Errorf("truncation changed order: %v vs %v", top2, all[:2])
		}
	}
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Error("scores not descending")
		}
	}
}

func TestSearchParallelMatchesSerial(t *testing.T) {
	l, g := fixtureLake(t)
	q := queryOf(t, g, "santo", "cubs")
	serial := NewEngine(l, NewTypeJaccard(g))
	serial.Parallelism = 1
	parallel := NewEngine(l, NewTypeJaccard(g))
	parallel.Parallelism = 4
	rs, _ := serial.Search(q, -1)
	rp, _ := parallel.Search(q, -1)
	if len(rs) != len(rp) {
		t.Fatalf("serial %d results, parallel %d", len(rs), len(rp))
	}
	for i := range rs {
		if rs[i].Table != rp[i].Table || math.Abs(rs[i].Score-rp[i].Score) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, rs[i], rp[i])
		}
	}
}

func TestSearchCandidatesSubset(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, stats := eng.SearchCandidates(q, []lake.TableID{2, 3}, -1)
	if stats.Candidates != 2 {
		t.Errorf("candidates = %d", stats.Candidates)
	}
	for _, r := range results {
		if r.Table != 2 && r.Table != 3 {
			t.Errorf("result outside candidate set: %v", r)
		}
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	l, _ := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(l.Graph))
	results, stats := eng.Search(Query{}, 10)
	if results != nil || stats.Scored != 0 {
		t.Errorf("empty query results = %v", results)
	}
}

func TestMultiTupleQueryAveragesScores(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := Query{
		Tuple{ent(t, g, "santo"), ent(t, g, "cubs")},
		Tuple{ent(t, g, "stetter"), ent(t, g, "brewers")},
	}
	results, _ := eng.Search(q, -1)
	if len(results) == 0 || results[0].Table != 0 {
		t.Fatalf("results = %v, want table 0 first", results)
	}
	// Table 0 contains both tuples exactly: score 1.
	if results[0].Score != 1 {
		t.Errorf("both-tuple exact score = %v, want 1", results[0].Score)
	}
	// Table 1 contains only the second tuple exactly; averaged with the
	// related-only first tuple the score must be below 1.
	for _, r := range results {
		if r.Table == 1 && r.Score >= 1 {
			t.Errorf("partial table score = %v, want < 1", r.Score)
		}
	}
}

func TestAggregationMaxVsAvg(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// One matching row among many unrelated rows: MAX keeps the signal,
	// AVG dilutes it.
	tb := table.New("mixed", []string{"Who"})
	tb.AppendRow([]table.Cell{le("santo")})
	for i := 0; i < 9; i++ {
		tb.AppendRow([]table.Cell{le("chicago")})
	}
	l.Add(tb)
	q := queryOf(t, g, "santo")

	engMax := NewEngine(l, NewTypeJaccard(g))
	engMax.Agg = AggregateMax
	engAvg := NewEngine(l, NewTypeJaccard(g))
	engAvg.Agg = AggregateAvg
	rMax, _ := engMax.Search(q, -1)
	rAvg, _ := engAvg.Search(q, -1)
	if len(rMax) != 1 || len(rAvg) != 1 {
		t.Fatalf("results: %v / %v", rMax, rAvg)
	}
	if !(rMax[0].Score > rAvg[0].Score) {
		t.Errorf("MAX %v should beat AVG %v on diluted tables", rMax[0].Score, rAvg[0].Score)
	}
	if rMax[0].Score != 1 {
		t.Errorf("MAX with exact row = %v, want 1", rMax[0].Score)
	}
}

func TestInformativenessWeighting(t *testing.T) {
	l, g := fixtureLake(t)
	inf := IDFInformativeness(l)
	santo := ent(t, g, "santo") // appears in 1 table
	// cubs appears in 1 table too; use chicago (1) vs a fabricated
	// high-frequency check instead: all fixture entities appear once, so
	// check absent entity gets weight 1 and present entities < 1.
	if w := inf(santo); w <= 0 || w > 1 {
		t.Errorf("I(santo) = %v, want in (0,1]", w)
	}
	absent := g.AddEntity("ghost", "")
	if w := inf(absent); w != 1 {
		t.Errorf("I(absent) = %v, want 1", w)
	}
}

func TestIDFRareBeatsFrequent(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// chicago appears in 5 tables, santo in 1.
	for i := 0; i < 5; i++ {
		tb := table.New("c", []string{"City"})
		tb.AppendRow([]table.Cell{le("chicago")})
		l.Add(tb)
	}
	tb := table.New("p", []string{"Player"})
	tb.AppendRow([]table.Cell{le("santo")})
	l.Add(tb)
	inf := IDFInformativeness(l)
	if !(inf(ent(t, g, "santo")) > inf(ent(t, g, "chicago"))) {
		t.Errorf("I(rare)=%v should exceed I(frequent)=%v",
			inf(ent(t, g, "santo")), inf(ent(t, g, "chicago")))
	}
}

func TestScoreTableStats(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	score, mapping := eng.ScoreTable(q, 0)
	if score != 1 {
		t.Errorf("ScoreTable = %v, want 1", score)
	}
	if mapping < 0 {
		t.Errorf("mapping time = %v", mapping)
	}
	_, stats := eng.Search(q, -1)
	if stats.TotalTime <= 0 {
		t.Error("TotalTime not measured")
	}
	if stats.MappingTime <= 0 || stats.MappingTime > stats.TotalTime+time.Millisecond {
		t.Errorf("MappingTime = %v vs TotalTime %v", stats.MappingTime, stats.TotalTime)
	}
}

func TestRankedTables(t *testing.T) {
	rs := []Result{{Table: 3, Score: 0.9}, {Table: 1, Score: 0.5}}
	got := RankedTables(rs)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("RankedTables = %v", got)
	}
}

func TestConcurrentSearches(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	want, _ := eng.Search(q, -1)
	done := make(chan []Result, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, _ := eng.Search(q, -1)
			done <- res
		}()
	}
	for i := 0; i < 8; i++ {
		got := <-done
		if len(got) != len(want) {
			t.Fatalf("concurrent search returned %d results, want %d", len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("concurrent search diverged at %d: %v vs %v", j, got[j], want[j])
			}
		}
	}
}
