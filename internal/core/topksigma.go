package core

// Top-k σ: an approximate embedding-similarity mode that makes first-touch
// σ cost sublinear in the entity store (ISSUE 8, docs/ANN.md). Instead of
// an exact cosine against every corpus entity, each query entity resolves
// its k nearest store entities once per search through an ANN index
// (embedding.HNSW); pairs outside the neighborhood score σ = 0, pairs
// inside score the exact clamped cosine, so in-neighborhood values are
// bit-identical to exact mode. The mode is off by default
// (Engine.SigmaTopK = 0) and exact scoring stays bit-identical when it is
// off — the differential harness (`benchrunner -exp ann`) measures what
// turning it on trades away.

import (
	"time"

	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/obs"
)

// AnnIndex is the approximate nearest-neighbor source for top-k σ:
// embedding.HNSW implements it. Implementations must be safe for
// concurrent TopK calls and deterministic for a fixed graph.
type AnnIndex interface {
	TopK(vec embedding.Vector, k int) []embedding.Neighbor
}

// AnnSource supplies the ANN index for one search. It is consulted once
// per search, so a serving layer can hand out the current graph — or nil
// to force exact σ while a rebuild after a mutation-epoch bump is in
// flight (the degraded-fallback contract of docs/ANN.md).
type AnnSource func() AnnIndex

// StaticAnn wraps a fixed index as an AnnSource (tests, experiments).
func StaticAnn(ix AnnIndex) AnnSource {
	return func() AnnIndex { return ix }
}

var (
	mAnnQueries   = obs.AnnQueriesTotal()
	mAnnFallbacks = obs.AnnFallbacksTotal()
	mStageAnn     = obs.SearchStageSeconds("ann")
)

// topKSigma is the per-search neighborhood similarity. The neighborhood is
// pooled: the candidate set is the union of every query entity's k-nearest
// store entities (plus the query entities themselves), and every
// (query entity, candidate) pair scores the exact clamped cosine — because
// a table reached through one query entity's neighborhood is scored
// against all of them, per-entity neighborhoods would zero the
// cross-entity σ values the column mapping depends on. Neighborhoods are
// resolved once, before scoring workers start, and read-only afterwards —
// which is what keeps rankings identical across Parallelism settings and
// lets the query-scoped SigmaCache memoize it like any other σ.
type topKSigma struct {
	exact *EmbeddingCosine
	// hood[qe][e] is the exact σ(qe, e) for e in the pooled candidate set;
	// entities absent from the inner map score 0. Query entities without
	// an embedding get an empty (non-nil) map: everything but themselves
	// scores 0, matching exact mode, which also scores 0 for them.
	hood map[kg.EntityID]map[kg.EntityID]float64
	// neighbors is the total resolved neighborhood size (trace items).
	neighbors int
}

// Score implements Similarity. a is a query entity on every search-path
// call (scorers always pass (query entity, cell entity)); a query entity
// missing from hood means the caller bypassed resolution, and the exact
// score keeps the contract rather than silently zeroing.
func (t *topKSigma) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	m, ok := t.hood[a]
	if !ok {
		return t.exact.Score(a, b)
	}
	return m[b]
}

// newTopKSigma resolves the query's neighborhoods, or returns nil when the
// engine cannot run top-k σ for this search (mode off, no index available,
// or σ is not embedding cosine).
func (eng *Engine) newTopKSigma(q Query) *topKSigma {
	if eng.SigmaTopK <= 0 || eng.Ann == nil {
		return nil
	}
	ec, ok := eng.Sim.(*EmbeddingCosine)
	if !ok {
		return nil
	}
	ix := eng.Ann()
	if ix == nil {
		return nil
	}
	t := &topKSigma{exact: ec, hood: make(map[kg.EntityID]map[kg.EntityID]float64)}
	distinct := q.DistinctEntities()
	pool := make(map[kg.EntityID]bool, len(distinct)*eng.SigmaTopK)
	for _, qe := range distinct {
		pool[qe] = true
		if v := ec.Vector(qe); v != nil {
			for _, nb := range ix.TopK(v, eng.SigmaTopK) {
				pool[nb.ID] = true
			}
		}
	}
	for _, qe := range distinct {
		m := map[kg.EntityID]float64{}
		if ec.Vector(qe) != nil {
			for e := range pool {
				if e == qe {
					continue // σ(e,e) = 1 is handled identically in Score
				}
				if s := ec.Score(qe, e); s > 0 {
					m[e] = s
				}
			}
		}
		t.hood[qe] = m
		t.neighbors += len(m)
	}
	return t
}

// searchSim returns the σ this search scores with — the engine's exact σ,
// or a freshly resolved top-k σ — and records the ann trace stage and the
// query/fallback metrics. The stage is only emitted when the mode is on,
// so exact-mode traces are unchanged.
func (eng *Engine) searchSim(q Query, tr *obs.Trace) Similarity {
	if eng.SigmaTopK <= 0 {
		return eng.Sim
	}
	start := time.Now()
	t := eng.newTopKSigma(q)
	d := time.Since(start)
	mStageAnn.Observe(d.Seconds())
	if tr != nil {
		st := obs.Stage{Name: "ann", Wall: d}
		if t != nil {
			st.Items = t.neighbors
		}
		tr.Add(st)
	}
	if t == nil {
		mAnnFallbacks.Inc()
		return eng.Sim
	}
	mAnnQueries.Inc()
	return t
}
