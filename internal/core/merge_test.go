package core

import (
	"math/rand"
	"sort"
	"testing"

	"thetis/internal/lake"
)

// mergeReference is the obviously correct merge: concatenate and sort with
// the shared comparator.
func mergeReference(lists [][]Result, k int) []Result {
	var all []Result
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return resultLess(all[i], all[j]) })
	if k >= 0 && k < len(all) {
		all = all[:k]
	}
	return all
}

func equalResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomRankings generates per-shard rankings over disjoint ID ranges with
// deliberately colliding scores (small score alphabet) so cross-shard ties
// are common.
func randomRankings(rng *rand.Rand, shards, maxLen int) [][]Result {
	lists := make([][]Result, shards)
	next := 0
	for s := range lists {
		n := rng.Intn(maxLen + 1)
		for i := 0; i < n; i++ {
			lists[s] = append(lists[s], Result{
				Table: lake.TableID(next),
				Score: float64(rng.Intn(4)) / 4, // few distinct scores → many ties
			})
			next++
		}
		sort.Slice(lists[s], func(i, j int) bool { return resultLess(lists[s][i], lists[s][j]) })
	}
	return lists
}

func TestMergeRankedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lists := randomRankings(rng, 1+rng.Intn(5), 8)
		for _, k := range []int{-1, 0, 1, 3, 100} {
			got := MergeRanked(lists, k)
			want := mergeReference(lists, k)
			if !equalResults(got, want) {
				t.Fatalf("trial %d k=%d: merged %v, want %v (inputs %v)", trial, k, got, want, lists)
			}
		}
	}
}

func TestMergeRankedTieBreaksOnTableID(t *testing.T) {
	// Two shards, every score equal: the merged order must be ascending
	// table ID regardless of which list holds which IDs.
	a := []Result{{Table: 1, Score: 0.5}, {Table: 4, Score: 0.5}}
	b := []Result{{Table: 0, Score: 0.5}, {Table: 3, Score: 0.5}}
	want := []Result{{Table: 0, Score: 0.5}, {Table: 1, Score: 0.5}, {Table: 3, Score: 0.5}, {Table: 4, Score: 0.5}}
	if got := MergeRanked([][]Result{a, b}, -1); !equalResults(got, want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	// Shard-order independence: swapping the input lists changes nothing.
	if got := MergeRanked([][]Result{b, a}, -1); !equalResults(got, want) {
		t.Fatalf("swapped merge %v, want %v", got, want)
	}
}

func TestMergeRankedShardOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		lists := randomRankings(rng, 4, 6)
		want := MergeRanked(lists, 10)
		perm := rng.Perm(len(lists))
		shuffled := make([][]Result, len(lists))
		for i, p := range perm {
			shuffled[i] = lists[p]
		}
		if got := MergeRanked(shuffled, 10); !equalResults(got, want) {
			t.Fatalf("trial %d: permuted inputs changed the merge: %v vs %v", trial, got, want)
		}
	}
}

func TestMergeRankedTruncation(t *testing.T) {
	lists := [][]Result{
		{{Table: 0, Score: 0.9}, {Table: 2, Score: 0.1}},
		{{Table: 1, Score: 0.5}},
	}
	if got := MergeRanked(lists, 2); len(got) != 2 || got[0].Table != 0 || got[1].Table != 1 {
		t.Fatalf("top-2 merge wrong: %v", got)
	}
	if got := MergeRanked(lists, 0); len(got) != 0 {
		t.Fatalf("k=0 should be empty, got %v", got)
	}
	if got := MergeRanked(nil, 5); len(got) != 0 {
		t.Fatalf("no inputs should merge to empty, got %v", got)
	}
}

func TestMergeRankedRepairsUnsortedInput(t *testing.T) {
	// A foreign Shard implementation might violate the ordering contract;
	// the merge must still come out globally ordered, and must not mutate
	// the caller's slice while repairing it.
	bad := []Result{{Table: 5, Score: 0.2}, {Table: 3, Score: 0.9}}
	badCopy := append([]Result(nil), bad...)
	good := []Result{{Table: 1, Score: 0.6}}
	got := MergeRanked([][]Result{bad, good}, -1)
	want := []Result{{Table: 3, Score: 0.9}, {Table: 1, Score: 0.6}, {Table: 5, Score: 0.2}}
	if !equalResults(got, want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	if !equalResults(bad, badCopy) {
		t.Fatalf("input mutated: %v, was %v", bad, badCopy)
	}
}
