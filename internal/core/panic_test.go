package core

import (
	"testing"

	"thetis/internal/kg"
)

// poisonSimilarity panics whenever a chosen entity is scored, modeling a
// similarity structure corrupted for one entity (e.g. an out-of-range ID
// from a damaged embeddings file).
type poisonSimilarity struct {
	inner  Similarity
	poison kg.EntityID
}

func (p poisonSimilarity) Score(a, b kg.EntityID) float64 {
	if a == p.poison || b == p.poison {
		panic("poisoned entity scored")
	}
	return p.inner.Score(a, b)
}

// TestFaultSearchPanicContained: a panic while scoring one table is
// contained — that table is dropped and counted on Stats.Panicked, every
// other table is still ranked, and the process (whose scoring runs in
// worker goroutines, outside net/http's recovery) survives.
func TestFaultSearchPanicContained(t *testing.T) {
	l, g := fixtureLake(t)
	stetter, ok := g.Lookup("stetter")
	if !ok {
		t.Fatal("fixture entity stetter missing")
	}
	eng := NewEngine(l, poisonSimilarity{inner: NewTypeJaccard(g), poison: stetter})
	q := queryOf(t, g, "santo", "cubs")

	results, stats := eng.Search(q, -1)
	// Tables 0 and 1 contain stetter and are dropped by the contained
	// panic; the volleyball and cities tables still rank.
	if stats.Panicked != 2 {
		t.Errorf("Stats.Panicked = %d, want 2", stats.Panicked)
	}
	if len(results) == 0 {
		t.Fatal("no results survived a partial poisoning")
	}
	for _, r := range results {
		if r.Table == 0 || r.Table == 1 {
			t.Errorf("poisoned table %d present in results", r.Table)
		}
	}

	// A clean engine on the same lake is unaffected (the panic counter and
	// containment are per-search).
	clean := NewEngine(l, NewTypeJaccard(g))
	cr, cs := clean.Search(q, -1)
	if cs.Panicked != 0 {
		t.Errorf("clean search Panicked = %d", cs.Panicked)
	}
	if len(cr) <= len(results) {
		t.Errorf("clean search found %d tables, poisoned %d", len(cr), len(results))
	}
}
