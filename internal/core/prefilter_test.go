package core

import (
	"testing"

	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
)

func typeLSEI(t testing.TB, cfg LSEIConfig) (*LSEI, *lake.Lake, *kg.Graph) {
	t.Helper()
	l, g := fixtureLake(t)
	tj := NewTypeJaccard(g)
	return BuildTypeLSEI(l, tj, cfg), l, g
}

func TestTypeLSEIFindsOwnTables(t *testing.T) {
	x, _, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := queryOf(t, g, "santo", "cubs")
	cands := x.Candidates(q, 1)
	found := map[lake.TableID]bool{}
	for _, c := range cands {
		found[c] = true
	}
	// The exact-match table must survive prefiltering: the query entities
	// themselves are in the index and link to table 0.
	if !found[0] {
		t.Errorf("prefilter dropped the exact-match table; candidates %v", cands)
	}
	// The unlinked table can never be a candidate.
	if found[4] {
		t.Error("unlinked table became a candidate")
	}
}

func TestLSEIReduction(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 30, BandSize: 10, Seed: 1})
	q := queryOf(t, g, "santo")
	cands := x.Candidates(q, 1)
	red := x.Reduction(cands)
	want := 1 - float64(len(cands))/float64(l.NumTables())
	if red != want {
		t.Errorf("Reduction = %v, want %v", red, want)
	}
	if red < 0 || red > 1 {
		t.Errorf("Reduction out of range: %v", red)
	}
}

func TestLSEIVotingMonotone(t *testing.T) {
	x, _, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := queryOf(t, g, "santo", "cubs")
	v1 := x.Candidates(q, 1)
	v3 := x.Candidates(q, 3)
	if len(v3) > len(v1) {
		t.Errorf("3 votes returned more candidates (%d) than 1 vote (%d)", len(v3), len(v1))
	}
	// votes < 1 behaves like 1.
	v0 := x.Candidates(q, 0)
	if len(v0) != len(v1) {
		t.Errorf("votes=0 (%d) != votes=1 (%d)", len(v0), len(v1))
	}
}

func TestLSEISearchMatchesBruteForceTop1(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	brute, _ := eng.Search(q, 1)
	pre, _ := eng.SearchCandidates(q, x.Candidates(q, 1), 1)
	if len(brute) == 0 || len(pre) == 0 {
		t.Fatal("empty results")
	}
	if brute[0].Table != pre[0].Table {
		t.Errorf("prefiltered top-1 %v != brute-force top-1 %v", pre[0], brute[0])
	}
}

func TestTypeLSEIColumnAggregation(t *testing.T) {
	x, _, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1, ColumnAggregation: true})
	q := queryOf(t, g, "santo", "cubs")
	cands := x.Candidates(q, 1)
	found := map[lake.TableID]bool{}
	for _, c := range cands {
		found[c] = true
	}
	if !found[0] {
		t.Errorf("column-aggregated prefilter dropped table 0; candidates %v", cands)
	}
}

func TestFrequentTypeFilter(t *testing.T) {
	l, g := fixtureLake(t)
	tj := NewTypeJaccard(g)
	// Thing/Agent appear in nearly every table; with an aggressive
	// threshold everything common is dropped and signatures become more
	// selective, but the index must still be buildable and queryable.
	x := BuildTypeLSEI(l, tj, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1, FrequentTypeThreshold: 0.3})
	q := queryOf(t, g, "santo")
	cands := x.Candidates(q, 1)
	for _, c := range cands {
		if c == 4 {
			t.Error("unlinked table candidate")
		}
	}
}

func embeddingFixture(t testing.TB) (*lake.Lake, *kg.Graph, *EmbeddingCosine) {
	t.Helper()
	l, g := fixtureLake(t)
	store := embedding.NewStore(g.NumEntities(), 4)
	// Hand-crafted embeddings: baseball in one quadrant, volleyball in
	// another, cities in a third.
	set := func(uri string, v embedding.Vector) {
		e, ok := g.Lookup(uri)
		if !ok {
			t.Fatalf("missing %q", uri)
		}
		store.Set(e, v)
	}
	set("santo", embedding.Vector{1, 0.1, 0, 0})
	set("stetter", embedding.Vector{1, 0.2, 0, 0})
	set("cubs", embedding.Vector{0.9, 0.3, 0, 0})
	set("brewers", embedding.Vector{0.95, 0.25, 0, 0})
	set("volley1", embedding.Vector{0, 0, 1, 0.1})
	set("volleyteam", embedding.Vector{0, 0, 1, 0.2})
	set("chicago", embedding.Vector{0, 1, 0, -1})
	set("milwaukee", embedding.Vector{0, 1, 0, -0.9})
	return l, g, NewEmbeddingCosine(g, store)
}

func TestEmbeddingLSEI(t *testing.T) {
	l, g, ec := embeddingFixture(t)
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := queryOf(t, g, "santo", "cubs")
	cands := x.Candidates(q, 1)
	found := map[lake.TableID]bool{}
	for _, c := range cands {
		found[c] = true
	}
	if !found[0] {
		t.Errorf("embedding prefilter dropped table 0; candidates %v", cands)
	}
	if found[4] {
		t.Error("unlinked table candidate")
	}
}

func TestEmbeddingLSEIColumnAggregation(t *testing.T) {
	l, g, ec := embeddingFixture(t)
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1, ColumnAggregation: true})
	q := queryOf(t, g, "santo")
	cands := x.Candidates(q, 1)
	found := false
	for _, c := range cands {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("column-aggregated embedding prefilter dropped table 0: %v", cands)
	}
}

func TestEmbeddingLSEIMissingVectors(t *testing.T) {
	l, g := fixtureLake(t)
	// Empty store: nothing indexable; candidates must be empty, not panic.
	ec := NewEmbeddingCosine(g, embedding.NewStore(g.NumEntities(), 4))
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := queryOf(t, g, "santo")
	if cands := x.Candidates(q, 1); len(cands) != 0 {
		t.Errorf("candidates with no embeddings = %v", cands)
	}
}

func TestLSEINumBuckets(t *testing.T) {
	x, _, _ := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	if x.NumBuckets() == 0 {
		t.Error("no buckets after build")
	}
}

func TestDefaultLSEIConfig(t *testing.T) {
	cfg := DefaultLSEIConfig()
	if cfg.Vectors != 30 || cfg.BandSize != 10 {
		t.Errorf("default config = %+v, want the paper's (30,10)", cfg)
	}
}

func TestCandidatesAggregatedTypes(t *testing.T) {
	x, _, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := Query{
		Tuple{ent(t, g, "santo"), ent(t, g, "cubs")},
		Tuple{ent(t, g, "stetter"), ent(t, g, "brewers")},
	}
	cands := x.CandidatesAggregated(q, 1)
	found := map[lake.TableID]bool{}
	for _, c := range cands {
		found[c] = true
	}
	if !found[0] {
		t.Errorf("query-aggregated prefilter dropped table 0: %v", cands)
	}
	if found[4] {
		t.Error("unlinked table candidate")
	}
}

func TestCandidatesAggregatedEmbeddings(t *testing.T) {
	l, g, ec := embeddingFixture(t)
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := Query{
		Tuple{ent(t, g, "santo"), ent(t, g, "cubs")},
		Tuple{ent(t, g, "stetter"), ent(t, g, "brewers")},
	}
	cands := x.CandidatesAggregated(q, 1)
	found := false
	for _, c := range cands {
		if c == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("embedding query aggregation dropped table 0: %v", cands)
	}
}

func TestCandidatesAggregatedNoSignal(t *testing.T) {
	l, g := fixtureLake(t)
	ec := NewEmbeddingCosine(g, embedding.NewStore(g.NumEntities(), 4))
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	q := queryOf(t, g, "santo")
	if cands := x.CandidatesAggregated(q, 1); len(cands) != 0 {
		t.Errorf("aggregated candidates with no embeddings = %v", cands)
	}
}
