package core

import (
	"sort"

	"thetis/internal/kg"
)

// PredicateJaccard scores entities by the Jaccard similarity of the
// predicate sets around them (incoming and outgoing edge labels). This is
// the alternative set-based similarity the paper points to ("one can also
// compute the similarity between two entities based on the set of
// predicates around them [47]"); it is useful in KGs with a thin taxonomy
// but a rich relation vocabulary. Like the adjusted type Jaccard, the score
// for non-identical entities is capped at MaxJaccard.
//
// Directionality is preserved: an outgoing predicate and the same
// predicate incoming count as different signals, so a player (out: team)
// and a team (in: team) do not look alike.
type PredicateJaccard struct {
	preds [][]uint32 // sorted per-entity predicate signatures
}

// NewPredicateJaccard precomputes the predicate signature of every entity
// of g.
func NewPredicateJaccard(g *kg.Graph) *PredicateJaccard {
	pj := &PredicateJaccard{preds: make([][]uint32, g.NumEntities())}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		seen := map[uint32]bool{}
		for _, edge := range g.Out(e) {
			seen[uint32(edge.Predicate)<<1] = true
		}
		for _, edge := range g.In(e) {
			seen[uint32(edge.Predicate)<<1|1] = true
		}
		sig := make([]uint32, 0, len(seen))
		for p := range seen {
			sig = append(sig, p)
		}
		sort.Slice(sig, func(i, j int) bool { return sig[i] < sig[j] })
		pj.preds[e] = sig
	}
	return pj
}

// PredicateSet returns the directional predicate signature of e (owned by
// the receiver). Entities beyond the graph the scorer was built over —
// added later, or a remote query's ephemeral unknown-entity IDs — have an
// empty signature, mirroring TypeJaccard.TypeSet.
func (pj *PredicateJaccard) PredicateSet(e kg.EntityID) []uint32 {
	if int(e) >= len(pj.preds) {
		return nil
	}
	return pj.preds[e]
}

// Score implements Similarity.
func (pj *PredicateJaccard) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	if int(a) >= len(pj.preds) || int(b) >= len(pj.preds) {
		return 0
	}
	pa, pb := pj.preds[a], pj.preds[b]
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i] == pb[j]:
			inter++
			i++
			j++
		case pa[i] < pb[j]:
			i++
		default:
			j++
		}
	}
	jac := float64(inter) / float64(len(pa)+len(pb)-inter)
	if jac > MaxJaccard {
		return MaxJaccard
	}
	return jac
}
