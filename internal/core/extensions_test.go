package core

import (
	"testing"

	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

func TestCombinedSimilarityBlends(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	store := embedding.NewStore(g.NumEntities(), 2)
	santo, volley := ent(t, g, "santo"), ent(t, g, "volley1")
	store.Set(santo, embedding.Vector{1, 0})
	store.Set(volley, embedding.Vector{0, 1})
	ec := NewEmbeddingCosine(g, store)

	// Types say the players are related (0.667); embeddings say orthogonal
	// (0). A 50/50 blend lands in the middle.
	comb := NewCombinedSimilarity([]Similarity{tj, ec}, []float64{1, 1})
	tjs := tj.Score(santo, volley)
	got := comb.Score(santo, volley)
	want := tjs / 2
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("combined = %v, want %v", got, want)
	}
	if comb.Score(santo, santo) != 1 {
		t.Errorf("combined identity = %v, want 1", comb.Score(santo, santo))
	}
}

func TestCombinedSimilarityWeightNormalization(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	a, b := ent(t, g, "santo"), ent(t, g, "stetter")
	c1 := NewCombinedSimilarity([]Similarity{tj}, []float64{0.2})
	if c1.Score(a, b) != tj.Score(a, b) {
		t.Error("single-component blend should equal the component")
	}
	c2 := NewCombinedSimilarity([]Similarity{tj, tj}, []float64{3, 1})
	if c2.Score(a, b) != tj.Score(a, b) {
		t.Error("same-component blend should equal the component")
	}
}

func TestCombinedSimilarityPanics(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	cases := []func(){
		func() { NewCombinedSimilarity(nil, nil) },
		func() { NewCombinedSimilarity([]Similarity{tj}, []float64{1, 2}) },
		func() { NewCombinedSimilarity([]Similarity{tj}, []float64{-1}) },
		func() { NewCombinedSimilarity([]Similarity{tj}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCombinedSimilarityInEngine(t *testing.T) {
	l, g := fixtureLake(t)
	comb := NewCombinedSimilarity(
		[]Similarity{NewTypeJaccard(g), NewPredicateJaccard(g)},
		[]float64{0.7, 0.3})
	eng := NewEngine(l, comb)
	q := queryOf(t, g, "santo", "cubs")
	res, _ := eng.Search(q, -1)
	if len(res) == 0 || res[0].Table != 0 {
		t.Fatalf("combined-σ search = %v, want table 0 first", res)
	}
}

// relaxFixture: a lake where the full 3-entity query matches nothing well,
// but dropping the ubiquitous city entity makes the player tables findable.
func relaxFixture(t *testing.T) (*lake.Lake, *kg.Graph, Query) {
	t.Helper()
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// Several tables mention chicago (making it uninformative), none
	// contain all three query entities together.
	for i := 0; i < 5; i++ {
		tb := table.New("city", []string{"City"})
		tb.AppendRow([]table.Cell{le("chicago")})
		l.Add(tb)
	}
	players := table.New("players", []string{"Player", "Team"})
	players.AppendRow([]table.Cell{le("santo"), le("cubs")})
	l.Add(players)
	q := Query{Tuple{ent(t, g, "santo"), ent(t, g, "cubs"), ent(t, g, "chicago")}}
	return l, g, q
}

func TestRelaxedSearchDropsUninformativeEntity(t *testing.T) {
	l, g, q := relaxFixture(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	// Demand 1 result with a perfect score: only achievable after
	// relaxing away the chicago constraint.
	results, relaxed := eng.RelaxedSearch(q, RelaxOptions{K: 3, MinResults: 1, MinScore: 0.999})
	if len(relaxed) != 1 {
		t.Fatalf("relaxed query = %v", relaxed)
	}
	if len(relaxed[0]) >= 3 {
		t.Errorf("query was not relaxed: width still %d", len(relaxed[0]))
	}
	if len(results) == 0 || results[0].Score < 0.999 {
		t.Fatalf("relaxation did not reach a perfect match: %v", results)
	}
	if results[0].Table != 5 {
		t.Errorf("top table = %d, want the players table (5)", results[0].Table)
	}
	// The dropped entity must be the least informative one (chicago,
	// frequency 5 vs 1).
	for _, e := range relaxed[0] {
		if e == ent(t, g, "chicago") {
			t.Error("relaxation dropped the wrong entity")
		}
	}
}

func TestRelaxedSearchStopsWhenSatisfied(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, relaxed := eng.RelaxedSearch(q, RelaxOptions{K: 3, MinResults: 1, MinScore: 0.9})
	if len(relaxed[0]) != 2 {
		t.Errorf("satisfied query was relaxed anyway: %v", relaxed)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
}

func TestRelaxedSearchSingleEntityFloor(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := queryOf(t, g, "santo")
	// Impossible demand: relaxation must stop at the 1-entity floor, not
	// loop or produce an empty query.
	results, relaxed := eng.RelaxedSearch(q, RelaxOptions{K: 3, MinResults: 100, MinScore: 0.9999})
	if len(relaxed) != 1 || len(relaxed[0]) != 1 {
		t.Errorf("single-entity query changed: %v", relaxed)
	}
	_ = results
}

func TestRelaxedSearchEmptyQuery(t *testing.T) {
	l, _ := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(l.Graph))
	results, relaxed := eng.RelaxedSearch(Query{}, RelaxOptions{K: 5})
	if len(results) != 0 || len(relaxed) != 0 {
		t.Errorf("empty query relaxed search = %v, %v", results, relaxed)
	}
}
