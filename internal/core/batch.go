package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thetis/internal/lake"
	"thetis/internal/obs"
)

// Batched scoring (docs/THROUGHPUT.md). A batch of N queries shares one
// σ cache scoped to the union of their distinct entities, so a pair
// touched by several queries is computed once per batch instead of once
// per query — the throughput lever of ROADMAP item 5. Two seams deliver
// it:
//
//   - Engine.SearchBatchContext scores the batch in a single table-major
//     pass over the union of the candidate sets (the unsharded path).
//   - WithBatchSigma plants the shared cache in a context, and
//     Engine.newSigmaCache picks it up per search leg — which is how the
//     sharded coordinator's scatter legs share σ without widening the
//     shard.Searcher interface.
//
// Results are bit-identical to N sequential Search calls in both shapes:
// σ is deterministic, so sharing memoized values across queries can only
// change *when* a pair is computed, never its value, and each query keeps
// its own scorer, candidate set, ranking, and top-k cut.

var (
	mBatchSearches = obs.SearchBatchTotal()
	mBatchQueries  = obs.SearchBatchQueries()
)

// BatchSigma carries one batch's shared σ cache. Build it with
// NewBatchSigma, plant it with WithBatchSigma, and run ordinary searches
// under that context; engines scoring with the same σ join the cache
// automatically, and everything else (top-k σ searches, other engines'
// σ) keeps its private query-scoped cache.
type BatchSigma struct {
	sim   Similarity
	cache *SigmaCache
}

// NewBatchSigma builds the shared cache for a batch of queries scored by
// sim over a corpus ID space of numEntities. Returns nil when the batch
// has no entities (nothing to share).
func NewBatchSigma(queries []Query, sim Similarity, numEntities int) *BatchSigma {
	total := 0
	for _, q := range queries {
		total += len(q)
	}
	if total == 0 || sim == nil {
		return nil
	}
	return &BatchSigma{sim: sim, cache: NewBatchSigmaCache(queries, sim, numEntities)}
}

// Cache exposes the underlying shared cache (introspection and tests).
func (bs *BatchSigma) Cache() *SigmaCache {
	if bs == nil {
		return nil
	}
	return bs.cache
}

type batchSigmaCtxKey struct{}

// WithBatchSigma returns a context carrying bs; searches executed under
// it share the batch σ cache (see BatchSigma). A nil bs returns ctx
// unchanged.
func WithBatchSigma(ctx context.Context, bs *BatchSigma) context.Context {
	if bs == nil {
		return ctx
	}
	return context.WithValue(ctx, batchSigmaCtxKey{}, bs)
}

func batchSigmaFrom(ctx context.Context) *BatchSigma {
	bs, _ := ctx.Value(batchSigmaCtxKey{}).(*BatchSigma)
	return bs
}

// SearchBatch scores every query against the lake in one pass and returns
// per-query top-k rankings, in query order. It is SearchBatchContext with
// a background context and full-scan candidates.
func (eng *Engine) SearchBatch(queries []Query, k int) ([][]Result, []Stats) {
	return eng.SearchBatchContext(context.Background(), queries, nil, k)
}

// SearchBatchContext scores all queries of a batch in one table-major
// pass over the union of their candidate sets. candidates[i] restricts
// query i (nil = full scan, like SearchCandidatesContext); candidates
// itself may be nil to full-scan every query. Results and stats are
// returned in query order and are bit-identical to calling
// SearchCandidatesContext once per query with the same arguments.
//
// Cancellation truncates the whole batch at a table boundary: every
// query's results become a correctly ranked prefix of the tables scored
// before the cutoff, and every query's Stats.Truncated is set (the pass
// is table-major, so "how far we got" is a property of the batch, not of
// one query).
func (eng *Engine) SearchBatchContext(ctx context.Context, queries []Query, candidates [][]lake.TableID, k int) ([][]Result, []Stats) {
	start := time.Now()
	n := len(queries)
	results := make([][]Result, n)
	stats := make([]Stats, n)
	if n == 0 {
		return results, stats
	}
	mBatchSearches.Inc()
	mBatchQueries.Observe(float64(n))

	// Resolve per-query candidate sets, full-scanning where nil. The live
	// list is fetched once — all queries of a batch see one corpus state.
	var live []lake.TableID
	liveOnce := func() []lake.TableID {
		if live == nil {
			live = eng.Lake.LiveTableIDs()
		}
		return live
	}
	cands := make([][]lake.TableID, n)
	for i := range queries {
		if candidates != nil && candidates[i] != nil {
			cands[i] = candidates[i]
		} else {
			cands[i] = liveOnce()
		}
	}

	type batchLeg struct {
		qi    int
		sim   Similarity
		sigma *SigmaCache
		cross *CrossCache
	}
	var legs []batchLeg
	traces := make([]*obs.Trace, n)
	for i, q := range queries {
		tr := obs.NewTrace("search")
		traces[i] = tr
		stats[i] = Stats{Candidates: len(cands[i]), Trace: tr}
		mSearches.Inc()
		mCandidates.Observe(float64(len(cands[i])))
		if len(q) == 0 || len(cands[i]) == 0 {
			continue
		}
		legs = append(legs, batchLeg{qi: i, sim: eng.searchSim(q, tr)})
	}

	stop := newCancelProbe(ctx)
	var truncated atomic.Bool
	dead := ctx.Err() != nil
	if dead {
		truncated.Store(true)
	}

	var scoreWall time.Duration
	if len(legs) > 0 && !dead {
		// The batch cache covers the union of the legs that score with the
		// engine's exact σ; top-k σ legs keep private query-scoped caches
		// (their σ values are query-relative and must not be shared).
		var exactQueries []Query
		for _, lg := range legs {
			if lg.sim == eng.Sim {
				exactQueries = append(exactQueries, queries[lg.qi])
			}
		}
		var shared *SigmaCache
		if len(exactQueries) > 0 && sigmaCacheBuildEnabled && !eng.DisableSigmaCache &&
			!sigmaCacheRuntimeOff.Load() && eng.Lake != nil && eng.Lake.Graph != nil {
			shared = NewBatchSigmaCache(exactQueries, eng.Sim, eng.Lake.Graph.NumEntities())
		}
		for li := range legs {
			lg := &legs[li]
			if lg.sim == eng.Sim && shared != nil {
				lg.sigma = shared
			} else {
				lg.sigma = eng.newSigmaCache(context.Background(), queries[lg.qi], lg.sim)
			}
			lg.cross = eng.crossFor(lg.sim)
		}

		// Union pass: every table is visited once; want[t] lists the legs
		// whose candidate set contains it. Tables are processed in
		// ascending ID order for determinism (per-query results are
		// re-ranked afterwards, so visit order never affects output).
		want := make(map[lake.TableID][]int32, len(cands[legs[0].qi]))
		for li, lg := range legs {
			for _, tid := range cands[lg.qi] {
				want[tid] = append(want[tid], int32(li))
			}
		}
		union := make([]lake.TableID, 0, len(want))
		for tid := range want {
			union = append(union, tid)
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })

		workers := eng.Parallelism
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(union) {
			workers = len(union)
		}

		type bpartial struct {
			results                []Result
			mapping                time.Duration
			panicked               int
			hits, misses           int64
			crossHits, crossMisses int64
		}
		// parts[w*len(legs)+li] is worker w's partial for leg li.
		parts := make([]bpartial, workers*len(legs))

		scoreOne := func(sc *scorer, tid lake.TableID) (score float64, mt time.Duration, panicked bool) {
			defer func() {
				if r := recover(); r != nil {
					panicked = true
					mSearchPanics.Inc()
				}
			}()
			t := eng.Lake.Table(tid)
			if t == nil {
				return 0, 0, false
			}
			score, mt = sc.scoreTable(t, eng.Lake.ColumnIndex(tid))
			return
		}

		var wg sync.WaitGroup
		scoreStart := time.Now()
		chunk := (len(union) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(union) {
				hi = len(union)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				// One scorer per leg per worker, built lazily on the first
				// table the leg wants in this chunk; the shared batch cache
				// is what they all plug into.
				scorers := make([]*scorer, len(legs))
				defer func() {
					for li, sc := range scorers {
						if sc == nil {
							continue
						}
						p := &parts[w*len(legs)+li]
						p.hits += sc.hits
						p.misses += sc.misses
						p.crossHits += sc.crossHits
						p.crossMisses += sc.crossMisses
					}
				}()
				for _, tid := range union[lo:hi] {
					if stop.expired() {
						truncated.Store(true)
						return
					}
					for _, li := range want[tid] {
						sc := scorers[li]
						if sc == nil {
							lg := legs[li]
							sc = newScorer(queries[lg.qi], lg.sim, eng.Inf, eng.Agg, eng.Mode, eng.Mapping, lg.sigma, lg.cross)
							scorers[li] = sc
						}
						score, mt, panicked := scoreOne(sc, tid)
						p := &parts[w*len(legs)+int(li)]
						p.mapping += mt
						if panicked {
							p.panicked++
							p.hits += sc.hits
							p.misses += sc.misses
							p.crossHits += sc.crossHits
							p.crossMisses += sc.crossMisses
							scorers[li] = nil
							continue
						}
						if score > 0 {
							p.results = append(p.results, Result{Table: tid, Score: score})
						}
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		scoreWall = time.Since(scoreStart)

		for li, lg := range legs {
			st := &stats[lg.qi]
			for w := 0; w < workers; w++ {
				p := &parts[w*len(legs)+li]
				results[lg.qi] = append(results[lg.qi], p.results...)
				st.MappingTime += p.mapping
				st.Panicked += p.panicked
				st.SigmaHits += p.hits
				st.SigmaMisses += p.misses
				st.CrossHits += p.crossHits
				st.CrossMisses += p.crossMisses
			}
			if lg.sigma != nil {
				lg.sigma.addCounts(st.SigmaHits, st.SigmaMisses)
				mSigmaHits.Add(st.SigmaHits)
				mSigmaMisses.Add(st.SigmaMisses)
			}
			if lg.cross != nil {
				lg.cross.addCounts(st.CrossHits, st.CrossMisses)
				mCrossHits.Add(st.CrossHits)
				mCrossMisses.Add(st.CrossMisses)
				mCrossBytes.Set(float64(lg.cross.MemoryBytes()))
				traces[lg.qi].Add(obs.Stage{Name: "crosscache", Items: int(st.CrossHits)})
			}
		}
		if shared != nil {
			mSigmaBytes.Set(float64(shared.MemoryBytes()))
		}
	}

	// Per-query ranking, identical to the sequential path's rank stage.
	batchTruncated := truncated.Load()
	for i := range queries {
		tr := traces[i]
		st := &stats[i]
		if len(queries[i]) > 0 && len(cands[i]) > 0 {
			// The mapping/score stages ran inside the shared table-major
			// pass; each query's trace reports the shared score wall with
			// its own candidate count and CPU mapping time.
			tr.Add(obs.Stage{Name: "mapping", CPU: st.MappingTime, Items: len(cands[i])})
			tr.Add(obs.Stage{Name: "score", Wall: scoreWall, Items: len(cands[i])})
			st.Truncated = batchTruncated
			if st.Truncated {
				mTruncated.Inc()
			}
		}
		rank := tr.StartStage("rank")
		rs := results[i]
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].Score != rs[b].Score {
				return rs[a].Score > rs[b].Score
			}
			return rs[a].Table < rs[b].Table
		})
		st.Scored = len(rs)
		if k >= 0 && len(rs) > k {
			rs = rs[:k]
		}
		results[i] = rs
		rank.SetItems(st.Scored)
		rank.End()
		st.TotalTime = time.Since(start)
		tr.Total = st.TotalTime
		mSearchSecs.Observe(st.TotalTime.Seconds())
	}
	return results, stats
}
