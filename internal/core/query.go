package core

import (
	"fmt"
	"strings"

	"thetis/internal/kg"
)

// Tuple is one example entity tuple of a query: an ordered list of KG
// entities, e.g. ⟨Mitch Stetter, Milwaukee Brewers⟩.
type Tuple []kg.EntityID

// Query is a set of entity tuples, the input of semantic table search
// (Problem 2.2). Tuples may have different widths.
type Query []Tuple

// NumEntities returns the total number of entities across all tuples.
func (q Query) NumEntities() int {
	n := 0
	for _, t := range q {
		n += len(t)
	}
	return n
}

// DistinctEntities returns the deduplicated entities of the query, in first
// occurrence order.
func (q Query) DistinctEntities() []kg.EntityID {
	seen := make(map[kg.EntityID]bool)
	var out []kg.EntityID
	for _, t := range q {
		for _, e := range t {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// ParseQuery resolves a textual query into entity tuples. Each line is one
// tuple; entities are separated by "|" and resolved first as URIs and then
// as labels via the provided resolver. Unresolvable mentions are skipped
// (query entities not in the KG are ignored, per Section 2.4); an entirely
// unresolvable tuple is dropped. The returned error is non-nil only when no
// tuple survives.
func ParseQuery(g *kg.Graph, text string) (Query, error) {
	labelIndex := map[string]kg.EntityID{}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		label := strings.ToLower(strings.TrimSpace(g.Label(e)))
		if _, dup := labelIndex[label]; !dup {
			labelIndex[label] = e
		}
	}
	var q Query
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var tuple Tuple
		for _, mention := range strings.Split(line, "|") {
			mention = strings.TrimSpace(mention)
			if mention == "" {
				continue
			}
			if e, ok := g.Lookup(mention); ok {
				tuple = append(tuple, e)
				continue
			}
			if e, ok := labelIndex[strings.ToLower(mention)]; ok {
				tuple = append(tuple, e)
			}
		}
		if len(tuple) > 0 {
			q = append(q, tuple)
		}
	}
	if len(q) == 0 {
		return nil, fmt.Errorf("core: no query tuple could be resolved against the KG")
	}
	return q, nil
}
