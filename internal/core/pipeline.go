package core

import (
	"context"
	"time"

	"thetis/internal/obs"
)

// PrefilterFallback selects what an index-backed search does when the LSH
// prefilter returns no candidates at all (e.g. every query entity's types
// were dropped by the frequent-type filter).
type PrefilterFallback int

const (
	// FallbackFullScan degrades to scoring the whole lake rather than
	// silently returning nothing — the single-node behavior.
	FallbackFullScan PrefilterFallback = iota
	// FallbackNone returns the empty ranking. Shards use this: whether a
	// full scan is warranted is only knowable globally, so the coordinator
	// makes that call after seeing every shard's candidate count.
	FallbackNone
)

// SearchWithIndex is the one search pipeline behind System searches and
// shard searches: LSEI prefilter (when ix is non-nil), candidate scoring,
// ranking. A nil ix scores the whole lake brute-force. The returned stats
// carry the full trace — prefilter probe/vote stages prepended to the
// engine's mapping/score/rank stages, with Trace.Total spanning everything
// (Stats.TotalTime remains engine-only, the quantity of the paper's
// Table 3). When ctx dies mid-search the results are a best-effort,
// correctly ranked prefix and Stats.Truncated is set.
func SearchWithIndex(ctx context.Context, eng *Engine, ix *LSEI, votes int, q Query, k int, fb PrefilterFallback) ([]Result, Stats) {
	if ix == nil {
		return eng.SearchContext(ctx, q, k)
	}
	start := time.Now()
	pre := obs.NewTrace("prefilter")
	cands := ix.CandidatesTracedContext(ctx, q, votes, pre)
	var (
		results []Result
		stats   Stats
	)
	if len(cands) > 0 || fb == FallbackNone {
		// An empty candidate slice (non-nil) scores nothing and reports
		// Candidates: 0, which is what lets a coordinator distinguish "the
		// prefilter pruned everything" from "this shard scored and found
		// nothing".
		results, stats = eng.SearchCandidatesContext(ctx, q, cands, k)
	} else {
		// Keep the empty prefilter's stages so the trace shows why the
		// search degraded to a full scan.
		results, stats = eng.SearchContext(ctx, q, k)
	}
	if ctx.Err() != nil {
		// A prefilter cut short also truncates the search, even when the
		// scoring phase over the partial candidate set happened to finish.
		stats.Truncated = true
	}
	stats.Trace.Prepend(pre.Stages...)
	stats.Trace.Total = time.Since(start)
	return results, stats
}
