package core

import (
	"context"
	"time"
)

// cancelProbe is a non-blocking cancellation check for CPU-bound loops.
//
// Watching ctx.Done() alone is not enough for deadline contexts: the Done
// channel is closed by the context's timer goroutine, and on a single-CPU
// scheduler (GOMAXPROCS=1) a tight scoring loop can run to completion
// before that goroutine is ever scheduled — the deadline has passed but no
// check observes it. The probe therefore captures the deadline once and
// additionally compares it against the clock, so expiry is detected on the
// very next check regardless of scheduler timing.
//
// Background (uncancellable) contexts cost one nil comparison per check.
type cancelProbe struct {
	done     <-chan struct{}
	deadline time.Time
	timed    bool
}

// newCancelProbe captures ctx's Done channel and deadline, if any.
func newCancelProbe(ctx context.Context) cancelProbe {
	p := cancelProbe{done: ctx.Done()}
	p.deadline, p.timed = ctx.Deadline()
	return p
}

// expired reports whether the context has been cancelled or its deadline
// has passed. It never blocks.
func (p *cancelProbe) expired() bool {
	if p.done == nil {
		return false
	}
	select {
	case <-p.done:
		return true
	default:
	}
	return p.timed && !time.Now().Before(p.deadline)
}
