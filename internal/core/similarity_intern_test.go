package core

import (
	"fmt"
	"testing"

	"thetis/internal/kg"
)

// internFixture builds a graph with extraTypes padding types beyond the
// ones entities actually use, so the same entity/type structure can be
// evaluated under both the bitset (small taxonomy) and linear-merge (large
// taxonomy) intersection paths.
func internFixture(extraTypes int) *kg.Graph {
	g := kg.NewGraph()
	ts := make([]kg.TypeID, 6)
	for i := range ts {
		ts[i] = g.AddType(fmt.Sprintf("t%d", i), "")
	}
	for i := 0; i < extraTypes; i++ {
		g.AddType(fmt.Sprintf("pad%d", i), "")
	}
	add := func(types ...kg.TypeID) kg.EntityID {
		e := g.AddEntity(fmt.Sprintf("e%d", g.NumEntities()), "")
		for _, t := range types {
			g.AssignType(e, t)
		}
		return e
	}
	add(ts[0], ts[1], ts[2]) // e0
	add(ts[0], ts[1], ts[2]) // e1: same set as e0
	add(ts[1], ts[2], ts[3]) // e2: Jaccard 2/4 with e0
	add(ts[4])               // e3: disjoint from e0
	add()                    // e4: untyped
	return g
}

func TestTypeJaccardInternsDuplicateSets(t *testing.T) {
	tj := NewTypeJaccard(internFixture(0))
	s0, s1 := tj.TypeSet(0), tj.TypeSet(1)
	if len(s0) == 0 || &s0[0] != &s1[0] {
		t.Fatal("entities with equal type sets must share one canonical slice")
	}
	if tj.SetID(0) != tj.SetID(1) {
		t.Fatalf("SetID(0)=%d != SetID(1)=%d for equal sets", tj.SetID(0), tj.SetID(1))
	}
	if tj.SetID(0) == tj.SetID(2) {
		t.Fatal("different sets share a SetID")
	}
	if tj.SetID(4) != -1 {
		t.Fatalf("untyped entity SetID = %d, want -1", tj.SetID(4))
	}
	if tj.SetID(kg.EntityID(999)) != -1 {
		t.Fatal("out-of-range SetID must be -1")
	}
	// e0/e1, e2, e3 — three distinct non-empty sets.
	if tj.NumTypeSets() != 3 {
		t.Fatalf("NumTypeSets = %d, want 3", tj.NumTypeSets())
	}
	// Same set ID short-circuits to the cap without an element walk.
	if got := tj.Score(0, 1); got != MaxJaccard {
		t.Fatalf("equal-set score = %v, want %v", got, MaxJaccard)
	}
}

// The bitset popcount path (taxonomy ≤ bitsetMaxTypes) and the linear
// merge path (larger taxonomies) must agree exactly on every pair.
func TestTypeJaccardBitsetMatchesMerge(t *testing.T) {
	small := NewTypeJaccard(internFixture(0))
	big := NewTypeJaccard(internFixture(bitsetMaxTypes)) // pushes NumTypes past the bitset bound
	for a := kg.EntityID(0); a < 5; a++ {
		for b := kg.EntityID(0); b < 5; b++ {
			if sv, bv := small.Score(a, b), big.Score(a, b); sv != bv {
				t.Errorf("Score(%d,%d): bitset %v != merge %v", a, b, sv, bv)
			}
		}
	}
	if got, want := small.Score(0, 2), 0.5; got != want {
		t.Errorf("Score(0,2) = %v, want %v (|∩|=2, |∪|=4)", got, want)
	}
	if got := small.Score(0, 3); got != 0 {
		t.Errorf("disjoint sets score = %v, want 0", got)
	}
}
