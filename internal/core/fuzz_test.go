package core

import (
	"bytes"
	"errors"
	"testing"

	"thetis/internal/atomicio"
)

// FuzzLoadTypeLSEI: the snapshot loader must never panic, never allocate
// unboundedly, and on arbitrary input either load a usable index (only for
// bytes that re-serialize from a valid one) or return the typed
// ErrCorruptSnapshot. Seeds live in testdata/fuzz/FuzzLoadTypeLSEI.
func FuzzLoadTypeLSEI(f *testing.F) {
	x, l, g := typeLSEI(f, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage data"))
	f.Add([]byte{})
	sim := NewTypeJaccard(g)
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := LoadTypeLSEI(l, sim, bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
				t.Fatalf("non-typed load error: %v", err)
			}
			return
		}
		// A load that succeeded must be usable.
		q := queryOf(t, g, "santo")
		_ = back.Candidates(q, 1)
	})
}
