package core

import (
	"testing"

	"thetis/internal/lake"
	"thetis/internal/table"
)

func TestPairwiseModeExactRowScoresOne(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	eng.Mode = ModePairwise
	q := queryOf(t, g, "santo", "cubs")
	results, _ := eng.Search(q, -1)
	if len(results) == 0 || results[0].Table != 0 {
		t.Fatalf("pairwise results = %v, want table 0 first", results)
	}
	// Table 0 row 1 is exactly (santo, cubs): pairwise MAX = 1.
	if results[0].Score != 1 {
		t.Errorf("pairwise MAX exact score = %v, want 1", results[0].Score)
	}
}

// Pairwise MAX differs from entity-wise MAX when the best entities live in
// different rows: entity-wise can combine them, pairwise cannot.
func TestPairwiseVsEntityWiseCrossRow(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	// santo appears in row 0 with an unrelated city; cubs in row 1 with an
	// unrelated player. No single row matches both query entities.
	tb := table.New("split", []string{"Who", "What"})
	tb.AppendRow([]table.Cell{le("santo"), le("chicago")})
	tb.AppendRow([]table.Cell{le("volley1"), le("cubs")})
	l.Add(tb)

	q := queryOf(t, g, "santo", "cubs")
	ew := NewEngine(l, NewTypeJaccard(g))
	pw := NewEngine(l, NewTypeJaccard(g))
	pw.Mode = ModePairwise

	rew, _ := ew.Search(q, -1)
	rpw, _ := pw.Search(q, -1)
	if len(rew) != 1 || len(rpw) != 1 {
		t.Fatalf("results: %v / %v", rew, rpw)
	}
	if !(rew[0].Score > rpw[0].Score) {
		t.Errorf("entity-wise %v should exceed pairwise %v on cross-row matches",
			rew[0].Score, rpw[0].Score)
	}
	// Entity-wise finds a perfect column-wise match (santo in col 0, cubs
	// in col 1, both σ=1 after row aggregation).
	if rew[0].Score != 1 {
		t.Errorf("entity-wise cross-row score = %v, want 1", rew[0].Score)
	}
}

func TestPairwiseAvgDilutes(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	tb := table.New("mixed", []string{"Who"})
	tb.AppendRow([]table.Cell{le("santo")})
	for i := 0; i < 9; i++ {
		tb.AppendRow([]table.Cell{le("chicago")})
	}
	l.Add(tb)
	q := queryOf(t, g, "santo")

	pwMax := NewEngine(l, NewTypeJaccard(g))
	pwMax.Mode = ModePairwise
	pwMax.Agg = AggregateMax
	pwAvg := NewEngine(l, NewTypeJaccard(g))
	pwAvg.Mode = ModePairwise
	pwAvg.Agg = AggregateAvg

	rMax, _ := pwMax.Search(q, -1)
	rAvg, _ := pwAvg.Search(q, -1)
	if len(rMax) != 1 || len(rAvg) != 1 {
		t.Fatalf("results: %v / %v", rMax, rAvg)
	}
	if !(rMax[0].Score > rAvg[0].Score) {
		t.Errorf("pairwise MAX %v should beat AVG %v on diluted tables",
			rMax[0].Score, rAvg[0].Score)
	}
	if rMax[0].Score != 1 {
		t.Errorf("pairwise MAX = %v, want 1 (exact row present)", rMax[0].Score)
	}
}

func TestPairwiseIrrelevantStillZero(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewTypeJaccard(g))
	eng.Mode = ModePairwise
	q := queryOf(t, g, "santo", "cubs")
	results, _ := eng.Search(q, -1)
	for _, r := range results {
		if r.Table == 4 {
			t.Error("pairwise mode returned the unlinked table")
		}
	}
}

func TestScoreModeString(t *testing.T) {
	if ModeEntityWise.String() != "entitywise" || ModePairwise.String() != "pairwise" {
		t.Error("ScoreMode.String wrong")
	}
}
