package core

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTypeLSEIRoundTrip(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTypeLSEI(l, NewTypeJaccard(g), &buf)
	if err != nil {
		t.Fatal(err)
	}
	q := queryOf(t, g, "santo", "cubs")
	want := x.Candidates(q, 1)
	got := back.Candidates(q, 1)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("candidates after round trip = %v, want %v", got, want)
	}
	if back.NumBuckets() != x.NumBuckets() {
		t.Errorf("buckets = %d, want %d", back.NumBuckets(), x.NumBuckets())
	}
	// Incremental inserts still work on a loaded index.
	back.AddTable(0)
}

func TestEmbeddingLSEIRoundTrip(t *testing.T) {
	l, g, ec := embeddingFixture(t)
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbeddingLSEI(l, ec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	q := queryOf(t, g, "santo", "cubs")
	if !reflect.DeepEqual(x.Candidates(q, 1), back.Candidates(q, 1)) {
		t.Error("embedding LSEI candidates differ after round trip")
	}
}

func TestColumnModeLSEIRoundTrip(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1, ColumnAggregation: true})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTypeLSEI(l, NewTypeJaccard(g), &buf)
	if err != nil {
		t.Fatal(err)
	}
	q := queryOf(t, g, "santo")
	if !reflect.DeepEqual(x.Candidates(q, 1), back.Candidates(q, 1)) {
		t.Error("column-mode LSEI candidates differ after round trip")
	}
}

func TestLSEILoadKindMismatch(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 32, BandSize: 8, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, g2, ec := embeddingFixture(t)
	_ = g2
	if _, err := LoadEmbeddingLSEI(l, ec, &buf); err == nil {
		t.Error("type snapshot accepted as embedding LSEI")
	}
	_ = g
}

func TestLSEILoadGarbage(t *testing.T) {
	l, g := fixtureLake(t)
	if _, err := LoadTypeLSEI(l, NewTypeJaccard(g), bytes.NewReader([]byte("garbage data"))); err == nil {
		t.Error("garbage accepted as LSEI snapshot")
	}
}
