package core

import (
	"bytes"
	"errors"
	"testing"

	"thetis/internal/atomicio"
	"thetis/internal/faultio"
)

// Corruption matrix for the LSEI snapshot format (acceptance criterion of
// the fault-tolerant data plane): flipping ANY single byte of a snapshot, or
// truncating it at ANY prefix, must make the loader return
// atomicio.ErrCorruptSnapshot — never a wrong-but-loaded index, never a
// panic. Run with `make faults`.

func TestCorruptTypeLSEIEveryByteFlip(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sim := NewTypeJaccard(g)
	if _, err := LoadTypeLSEI(l, sim, bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for off := range data {
		fr := faultio.NewFlipReader(bytes.NewReader(data), int64(off), 0x01)
		if _, err := LoadTypeLSEI(l, sim, fr); !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("byte %d flipped: got %v, want ErrCorruptSnapshot", off, err)
		}
	}
}

func TestCorruptEmbeddingLSEIEveryByteFlip(t *testing.T) {
	l, _, ec := embeddingFixture(t)
	x := BuildEmbeddingLSEI(l, ec, 4, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadEmbeddingLSEI(l, ec, bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for off := range data {
		fr := faultio.NewFlipReader(bytes.NewReader(data), int64(off), 0x80)
		if _, err := LoadEmbeddingLSEI(l, ec, fr); !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("byte %d flipped: got %v, want ErrCorruptSnapshot", off, err)
		}
	}
}

func TestCorruptLSEIEveryTruncation(t *testing.T) {
	x, l, g := typeLSEI(t, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sim := NewTypeJaccard(g)
	for n := 0; n < len(data); n++ {
		sr := faultio.NewShortReader(bytes.NewReader(data), int64(n))
		if _, err := LoadTypeLSEI(l, sim, sr); !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrCorruptSnapshot", n, len(data), err)
		}
	}
}

// TestCorruptLSEIKindMismatch: an INTACT type snapshot fed to the embedding
// loader is a usage error (plain, not ErrCorruptSnapshot — the checksums
// verified fine); a FLIPPED kind byte is corruption and is covered by the
// every-byte-flip matrices above. Either way: an error, never a wrong load.
func TestCorruptLSEIKindMismatch(t *testing.T) {
	x, l, _ := typeLSEI(t, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, _, ec := embeddingFixture(t)
	if _, err := LoadEmbeddingLSEI(l, ec, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("type snapshot accepted by embedding loader")
	} else if errors.Is(err, atomicio.ErrCorruptSnapshot) {
		t.Fatalf("intact wrong-kind snapshot misreported as corrupt: %v", err)
	}
}

// TestFaultLSEIWriteFailure: a device error mid-write surfaces from Write
// instead of producing a silently truncated snapshot.
func TestFaultLSEIWriteFailure(t *testing.T) {
	x, _, _ := typeLSEI(t, LSEIConfig{Vectors: 16, BandSize: 4, Seed: 1})
	var full bytes.Buffer
	if err := x.Write(&full); err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 1, int64(full.Len()) / 2, int64(full.Len()) - 1} {
		var buf bytes.Buffer
		fw := faultio.NewFailingWriter(&buf, off, nil)
		if err := x.Write(fw); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("write failing at byte %d: got %v, want ErrInjected", off, err)
		}
	}
}
