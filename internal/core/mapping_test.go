package core

import (
	"testing"

	"thetis/internal/hungarian"
	"thetis/internal/lake"
	"thetis/internal/table"
)

func TestGreedyMaximizeBasics(t *testing.T) {
	S := [][]float64{
		{10, 9},
		{9, 1},
	}
	got := greedyMaximize(S)
	// Greedy takes (0,0)=10 then (1,1)=1 -> total 11; optimal is 18.
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("greedy = %v, want [0 1]", got)
	}
	if hungarian.TotalScore(S, got) >= hungarian.TotalScore(S, hungarian.Maximize(S)) {
		t.Error("greedy should be suboptimal on this matrix")
	}
}

func TestGreedyMaximizeSkipsZeroColumns(t *testing.T) {
	S := [][]float64{{0, 0}}
	got := greedyMaximize(S)
	if got[0] != -1 {
		t.Errorf("greedy assigned a zero-score column: %v", got)
	}
	if got := greedyMaximize(nil); len(got) != 0 {
		t.Errorf("greedy(nil) = %v", got)
	}
}

// Greedy can pick a suboptimal assignment when an early query entity takes
// the column a later entity needs more: column C holds both players (sum
// 1.95 for either query entity), column D holds only santo. Greedy sends
// santo to C and stetter to D; the Hungarian optimum crosses them, which
// also yields the better SemRel.
func TestGreedySuboptimalCase(t *testing.T) {
	g := fixtureGraph()
	l := lake.New(g)
	le := func(uri string) table.Cell {
		e, _ := g.Lookup(uri)
		return table.LinkedCell(g.Label(e), e)
	}
	tb := table.New("crossed", []string{"C", "D"})
	tb.AppendRow([]table.Cell{le("santo"), le("santo")})
	tb.AppendRow([]table.Cell{le("stetter"), {Value: "-"}})
	l.Add(tb)

	q := queryOf(t, g, "santo", "stetter")
	hung := NewEngine(l, NewTypeJaccard(g))
	greedy := NewEngine(l, NewTypeJaccard(g))
	greedy.Mapping = MappingGreedy
	rh, _ := hung.Search(q, -1)
	rg, _ := greedy.Search(q, -1)
	if len(rh) != 1 || len(rg) != 1 {
		t.Fatalf("results: %v / %v", rh, rg)
	}
	// Hungarian: stetter->C (max σ = 1), santo->D (max σ = 1) => SemRel 1.
	if rh[0].Score != 1 {
		t.Errorf("hungarian crossed score = %v, want 1", rh[0].Score)
	}
	if !(rg[0].Score < rh[0].Score) {
		t.Errorf("greedy %v should be below hungarian %v on crossed columns",
			rg[0].Score, rh[0].Score)
	}
}

// The Hungarian method maximizes the *assignment total* (Section 5.1's
// objective). Greedy can never exceed it on that objective — though the
// downstream MAX-aggregated SemRel is a different function and may
// occasionally disagree, which is exactly what the ablation quantifies.
func TestHungarianDominatesGreedyOnAssignmentTotal(t *testing.T) {
	l, g := fixtureLake(t)
	q := queryOf(t, g, "santo", "stetter")
	sc := newScorer(q, NewTypeJaccard(g), UniformInformativeness, AggregateMax, ModeEntityWise, MappingHungarian, nil, nil)
	scGreedy := newScorer(q, NewTypeJaccard(g), UniformInformativeness, AggregateMax, ModeEntityWise, MappingGreedy, nil, nil)
	for _, tb := range l.Tables() {
		if tb.NumRows() == 0 {
			continue
		}
		ci := table.BuildColumnIndex(tb)
		sc.beginTable()
		scGreedy.beginTable()
		_, hTotal := sc.mapColumns(0, ci)
		_, gTotal := scGreedy.mapColumns(0, ci)
		if gTotal > hTotal+1e-9 {
			t.Errorf("table %q: greedy total %v exceeds hungarian %v", tb.Name, gTotal, hTotal)
		}
	}
}

func TestMappingMethodString(t *testing.T) {
	if MappingHungarian.String() != "hungarian" || MappingGreedy.String() != "greedy" {
		t.Error("MappingMethod.String wrong")
	}
}
