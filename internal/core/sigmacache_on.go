//go:build !nosigmacache

package core

// sigmaCacheBuildEnabled reports whether this binary was built with the
// query-scoped σ cache available. The `nosigmacache` build tag flips it
// off — the escape hatch `make benchcheck` uses to pair cached against
// uncached runs of the same benchmark (docs/PERFORMANCE.md).
const sigmaCacheBuildEnabled = true
