package core

// Request-lifecycle test battery: cooperative cancellation, graceful
// truncation, determinism under parallelism, and race-freedom of a shared
// Engine under mixed concurrent load (run with -race).

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/table"
)

// stressLake builds a corpus of n two-row tables over a generated sports KG
// with distinct entities per table, so per-table scoring does real σ work
// (no cross-table cache hits) and scores still vary by type overlap. The
// returned query references the first table's entities.
func stressLake(t *testing.T, n int) (*lake.Lake, *kg.Graph, Query) {
	t.Helper()
	g := kg.NewGraph()
	thing := g.AddType("Thing", "")
	agent := g.AddType("Agent", "")
	person := g.AddType("Person", "")
	athlete := g.AddType("Athlete", "")
	org := g.AddType("Organisation", "")
	team := g.AddType("SportsTeam", "")
	g.AddSubtype(agent, thing)
	g.AddSubtype(person, agent)
	g.AddSubtype(athlete, person)
	g.AddSubtype(org, agent)
	g.AddSubtype(team, org)
	// Leaf types are assigned in four blocks so each leaf covers only about
	// a quarter of the tables, staying under the LSEI's frequent-type filter
	// (types in more than half of all tables are dropped before shingling).
	const leaves = 4
	playerLeaf := make([]kg.TypeID, leaves)
	teamLeaf := make([]kg.TypeID, leaves)
	for i := range playerLeaf {
		playerLeaf[i] = g.AddType(fmt.Sprintf("Player%c", 'A'+i), "")
		g.AddSubtype(playerLeaf[i], athlete)
		teamLeaf[i] = g.AddType(fmt.Sprintf("Team%c", 'A'+i), "")
		g.AddSubtype(teamLeaf[i], team)
	}

	players := make([]kg.EntityID, n)
	teams := make([]kg.EntityID, n)
	for i := 0; i < n; i++ {
		players[i] = g.AddEntity(fmt.Sprintf("player/%d", i), fmt.Sprintf("Player %d", i))
		teams[i] = g.AddEntity(fmt.Sprintf("team/%d", i), fmt.Sprintf("Team %d", i))
		leaf := i * leaves / n
		g.AssignType(players[i], playerLeaf[leaf])
		g.AssignType(teams[i], teamLeaf[leaf])
	}

	l := lake.New(g)
	cell := func(e kg.EntityID) table.Cell { return table.LinkedCell(g.Label(e), e) }
	for i := 0; i < n; i++ {
		tbl := table.New(fmt.Sprintf("roster-%d", i), []string{"Player", "Team"})
		tbl.AppendRow([]table.Cell{cell(players[i]), cell(teams[i])})
		tbl.AppendRow([]table.Cell{cell(players[(i+1)%n]), cell(teams[(i+1)%n])})
		l.Add(tbl)
	}
	return l, g, Query{Tuple{players[0], teams[0]}}
}

// slowSim delays every σ evaluation, making table scoring slow enough for a
// deadline to land mid-search deterministically. Scores delegate unchanged,
// so a truncated ranking stays comparable to the fast serial reference.
type slowSim struct {
	inner Similarity
	delay time.Duration
}

func (s slowSim) Score(a, b kg.EntityID) float64 {
	time.Sleep(s.delay)
	return s.inner.Score(a, b)
}

// cancelSim cancels a context after a fixed number of σ evaluations — a
// deterministic mid-search cancellation independent of machine speed.
type cancelSim struct {
	inner  Similarity
	after  int64
	calls  *atomic.Int64
	cancel context.CancelFunc
}

func (s cancelSim) Score(a, b kg.EntityID) float64 {
	if s.calls.Add(1) == s.after {
		s.cancel()
	}
	return s.inner.Score(a, b)
}

// requireRanked asserts descending scores with ascending-ID tie-breaks, the
// engine's total order.
func requireRanked(t *testing.T, results []Result) {
	t.Helper()
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if b.Score > a.Score || (b.Score == a.Score && b.Table <= a.Table) {
			t.Fatalf("results not ranked at %d: %v then %v", i, a, b)
		}
	}
}

// requireSubsetOfReference asserts every returned result carries exactly the
// score the serial reference computed for that table, with no duplicates.
func requireSubsetOfReference(t *testing.T, results []Result, ref map[lake.TableID]float64) {
	t.Helper()
	seen := make(map[lake.TableID]bool)
	for _, r := range results {
		if seen[r.Table] {
			t.Fatalf("table %d returned twice", r.Table)
		}
		seen[r.Table] = true
		want, ok := ref[r.Table]
		if !ok {
			t.Fatalf("table %d not in reference ranking", r.Table)
		}
		if r.Score != want {
			t.Fatalf("table %d score = %v, reference %v", r.Table, r.Score, want)
		}
	}
}

func referenceScores(results []Result) map[lake.TableID]float64 {
	ref := make(map[lake.TableID]float64, len(results))
	for _, r := range results {
		ref[r.Table] = r.Score
	}
	return ref
}

func TestSearchContextBackgroundMatchesSearch(t *testing.T) {
	l, g, q := stressLake(t, 12)
	eng := NewEngine(l, NewTypeJaccard(g))
	want, wantStats := eng.Search(q, -1)
	got, stats := eng.SearchContext(context.Background(), q, -1)
	if stats.Truncated || wantStats.Truncated {
		t.Fatal("uncancelled search reported Truncated")
	}
	if len(got) != len(want) {
		t.Fatalf("%d results vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSearchContextPreCancelled(t *testing.T) {
	l, g, q := stressLake(t, 12)
	eng := NewEngine(l, NewTypeJaccard(g))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats := eng.SearchContext(ctx, q, -1)
	if !stats.Truncated {
		t.Error("pre-cancelled search not marked Truncated")
	}
	if len(results) != 0 || stats.Scored != 0 {
		t.Errorf("pre-cancelled search scored tables: %v", results)
	}
	if stats.Candidates != l.NumTables() {
		t.Errorf("Candidates = %d, want %d", stats.Candidates, l.NumTables())
	}
}

func TestScoreTableContextCancelled(t *testing.T) {
	l, g, q := stressLake(t, 4)
	eng := NewEngine(l, NewTypeJaccard(g))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if score, mt := eng.ScoreTableContext(ctx, q, 0); score != 0 || mt != 0 {
		t.Errorf("cancelled ScoreTableContext = (%v, %v), want (0, 0)", score, mt)
	}
	want, _ := eng.ScoreTable(q, 0)
	if got, _ := eng.ScoreTableContext(context.Background(), q, 0); got != want {
		t.Errorf("live ScoreTableContext = %v, want %v", got, want)
	}
}

// A deadline must return promptly with the correctly ranked prefix of
// tables scored before the cutoff — graceful degradation, not an error.
func TestSearchContextDeadlineTruncatesPromptly(t *testing.T) {
	l, g, q := stressLake(t, 40)
	ref := NewEngine(l, NewTypeJaccard(g))
	full, _ := ref.Search(q, -1)
	refScores := referenceScores(full)

	eng := NewEngine(l, slowSim{inner: NewTypeJaccard(g), delay: 2 * time.Millisecond})
	eng.Parallelism = 2
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	results, stats := eng.SearchContext(ctx, q, -1)
	elapsed := time.Since(start)

	if !stats.Truncated {
		t.Fatalf("deadline search not truncated (scored %d/%d in %v)",
			stats.Scored, stats.Candidates, elapsed)
	}
	if stats.Scored >= l.NumTables() {
		t.Errorf("truncated search scored all %d tables", stats.Scored)
	}
	// The full slow search would take well over a second (≥4 fresh σ calls
	// per table × 2ms × 40 tables per worker chain); the cutoff must land
	// within the deadline plus a few table-scoring granules.
	if elapsed > 500*time.Millisecond {
		t.Errorf("truncated search took %v, want prompt return", elapsed)
	}
	requireRanked(t, results)
	requireSubsetOfReference(t, results, refScores)
}

// Cancelling mid-search must never corrupt results: the returned prefix
// carries exact reference scores in correct rank order.
func TestSearchContextCancelMidSearch(t *testing.T) {
	l, g, q := stressLake(t, 40)
	ref := NewEngine(l, NewTypeJaccard(g))
	full, _ := ref.Search(q, -1)
	refScores := referenceScores(full)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	eng := NewEngine(l, cancelSim{inner: NewTypeJaccard(g), after: 20, calls: &calls, cancel: cancel})
	eng.Parallelism = 4
	results, stats := eng.SearchContext(ctx, q, -1)

	if !stats.Truncated {
		t.Fatal("mid-search cancellation not marked Truncated")
	}
	if stats.Scored >= l.NumTables() {
		t.Errorf("cancelled search scored all %d tables", stats.Scored)
	}
	requireRanked(t, results)
	requireSubsetOfReference(t, results, refScores)
}

// Top-k output must be byte-identical across worker counts: per-table
// scores are computed sequentially by exactly one worker, so no float64
// reassociation can occur, and ties break on table ID.
func TestSearchDeterminismAcrossParallelism(t *testing.T) {
	l, g, q := stressLake(t, 37)
	serial := NewEngine(l, NewTypeJaccard(g))
	serial.Parallelism = 1
	want, _ := serial.Search(q, -1)
	if len(want) == 0 {
		t.Fatal("reference search returned nothing")
	}
	requireRanked(t, want)
	for _, p := range []int{4, 16} {
		eng := NewEngine(l, NewTypeJaccard(g))
		eng.Parallelism = p
		got, _ := eng.Search(q, -1)
		if len(got) != len(want) {
			t.Fatalf("P=%d: %d results vs %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("P=%d diverged at %d: %v vs %v (scores must be exactly equal)",
					p, i, got[i], want[i])
			}
		}
	}
}

// Shuffling the candidate ordering must not change the ranked output.
func TestSearchDeterminismShuffledCandidates(t *testing.T) {
	l, g, q := stressLake(t, 37)
	eng := NewEngine(l, NewTypeJaccard(g))
	eng.Parallelism = 4
	candidates := make([]lake.TableID, l.NumTables())
	for i := range candidates {
		candidates[i] = lake.TableID(i)
	}
	want, _ := eng.SearchCandidates(q, candidates, -1)
	for seed := int64(1); seed <= 3; seed++ {
		shuffled := append([]lake.TableID(nil), candidates...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, _ := eng.SearchCandidates(q, shuffled, -1)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d results vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d diverged at %d: %v vs %v", seed, i, got[i], want[i])
			}
		}
	}
}

func TestPrefilterContextCancelled(t *testing.T) {
	l, g, q := stressLake(t, 24)
	tj := NewTypeJaccard(g)
	x := BuildTypeLSEI(l, tj, DefaultLSEIConfig())
	want := x.Candidates(q, 1)
	if len(want) == 0 {
		t.Fatal("prefilter returned no candidates")
	}
	got := x.CandidatesTracedContext(context.Background(), q, 1, nil)
	if len(got) != len(want) {
		t.Fatalf("background context changed candidates: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d = %v, want %v", i, got[i], want[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial := x.CandidatesTracedContext(ctx, q, 1, nil)
	inFull := make(map[lake.TableID]bool, len(want))
	for _, id := range want {
		inFull[id] = true
	}
	for _, id := range partial {
		if !inFull[id] {
			t.Errorf("cancelled prefilter invented candidate %d", id)
		}
	}
	if len(partial) >= len(want) && len(want) > 0 {
		// A dead context is checked before the first probe, so the partial
		// set must be empty here.
		if len(partial) != 0 {
			t.Errorf("pre-cancelled prefilter returned %d candidates", len(partial))
		}
	}
}

// TestRaceStressSharedEngine hammers one shared Engine (and one shared
// LSEI) from many goroutines mixing brute-force and LSH-prefiltered
// searches while /metrics is scraped concurrently. Run under -race; every
// ranking must equal the serial reference exactly.
func TestRaceStressSharedEngine(t *testing.T) {
	l, g, q := stressLake(t, 30)
	tj := NewTypeJaccard(g)
	eng := NewEngine(l, tj)
	x := BuildTypeLSEI(l, tj, DefaultLSEIConfig())

	queries := []Query{
		q,
		{Tuple{ent2(t, g, "player/3"), ent2(t, g, "team/3")}},
		{Tuple{ent2(t, g, "player/7")}, Tuple{ent2(t, g, "team/8")}},
	}
	type reference struct {
		brute []Result
		cands []lake.TableID
		lsh   []Result
	}
	refs := make([]reference, len(queries))
	for i, qq := range queries {
		refs[i].brute, _ = eng.Search(qq, -1)
		refs[i].cands = x.Candidates(qq, 1)
		refs[i].lsh, _ = eng.SearchCandidates(qq, refs[i].cands, -1)
		if len(refs[i].brute) == 0 {
			t.Fatalf("query %d has empty reference", i)
		}
	}

	metrics := httptest.NewServer(obs.Default.Handler())
	defer metrics.Close()
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(metrics.URL)
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}

	const goroutines = 24
	const iterations = 15
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				qi := (gid + it) % len(queries)
				want := refs[qi]
				var got []Result
				if (gid+it)%2 == 0 {
					got, _ = eng.Search(queries[qi], -1)
					if err := sameResults(got, want.brute); err != nil {
						errc <- fmt.Errorf("goroutine %d brute query %d: %v", gid, qi, err)
						return
					}
				} else {
					cands := x.Candidates(queries[qi], 1)
					if len(cands) != len(want.cands) {
						errc <- fmt.Errorf("goroutine %d query %d: %d candidates, want %d",
							gid, qi, len(cands), len(want.cands))
						return
					}
					got, _ = eng.SearchCandidates(queries[qi], cands, -1)
					if err := sameResults(got, want.lsh); err != nil {
						errc <- fmt.Errorf("goroutine %d lsh query %d: %v", gid, qi, err)
						return
					}
				}
			}
		}(gid)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func sameResults(got, want []Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
	return nil
}

// ent2 is ent for the generated stress graph (distinct name to avoid
// clashing with the fixture helper's error message).
func ent2(t *testing.T, g *kg.Graph, uri string) kg.EntityID {
	t.Helper()
	e, ok := g.Lookup(uri)
	if !ok {
		t.Fatalf("stress entity %q missing", uri)
	}
	return e
}
