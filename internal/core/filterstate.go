package core

import (
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/obs"
	"thetis/internal/table"
)

var mFilterResigns = obs.IndexFilterResignsTotal(nil)

// TypeFilterState maintains the frequent-type filter of Section 6.1 under
// corpus mutation. The filter drops types present in more than threshold
// of all tables, so its membership depends on two moving quantities: each
// type's table count and the total table count (the limit is
// threshold × total and shifts with EVERY add or remove — any type can
// cross it on any mutation, in either direction). The state keeps the
// per-type counts, recomputes membership after each mutation, and when a
// type flips it re-signs every affected item in the attached LSEIs: remove
// under the old filter, toggle the shared map, re-insert under the new one
// (see LSEI.removeForResign/reinsert).
//
// The invariant this buys is exact rebuild equivalence: after any sequence
// of mutations, Filter() equals FrequentTypesOver on the final corpus and
// every stored LSH signature equals the one a from-scratch build would
// compute — the property the live battery (live_test.go) checks bit for
// bit.
//
// The filter map handed out by Filter is the same instance the LSEIs were
// built with (BuildTypeLSEIFiltered) and is mutated in place, so readers
// must be excluded during AddTable/RemoveTable — thetis.System holds its
// write lock. Embedding-mode indexes have no type filter and need no
// state.
type TypeFilterState struct {
	tj        *TypeJaccard
	threshold float64
	counts    map[kg.TypeID]int
	total     int
	filter    map[kg.TypeID]bool
}

// NewTypeFilterState computes the filter over the given lakes from
// scratch, exactly as FrequentTypesOver would. Pass the returned Filter()
// map to BuildTypeLSEIFiltered so state and index share one instance.
func NewTypeFilterState(lakes []*lake.Lake, tj *TypeJaccard, threshold float64) *TypeFilterState {
	fs := &TypeFilterState{
		tj:        tj,
		threshold: threshold,
		counts:    make(map[kg.TypeID]int),
		filter:    make(map[kg.TypeID]bool),
	}
	for _, l := range lakes {
		for _, t := range l.Tables() {
			if t != nil {
				fs.count(t, 1)
			}
		}
	}
	for _, ty := range fs.flips() {
		fs.filter[ty] = true
	}
	return fs
}

// ResumeTypeFilterState rebuilds mutation state around an existing filter
// map — the one a built or snapshot-loaded LSEI already carries — so the
// index's signatures stay valid and later flips propagate through the
// shared instance. Counts are recomputed from the lakes; if the adopted
// map disagrees with the recomputed membership (it cannot when filter and
// corpus were saved together), the attached indexes are re-signed to
// reconcile.
func ResumeTypeFilterState(filter map[kg.TypeID]bool, lakes []*lake.Lake, tj *TypeJaccard, threshold float64, ixs ...*LSEI) *TypeFilterState {
	fs := &TypeFilterState{
		tj:        tj,
		threshold: threshold,
		counts:    make(map[kg.TypeID]int),
		filter:    filter,
	}
	for _, l := range lakes {
		for _, t := range l.Tables() {
			if t != nil {
				fs.count(t, 1)
			}
		}
	}
	fs.resign(ixs)
	return fs
}

// Filter returns the shared live filter map. Callers must treat it as
// read-only and hold the owning system's read lock while consulting it.
func (fs *TypeFilterState) Filter() map[kg.TypeID]bool { return fs.filter }

// AddTable records t joining the corpus and re-signs whatever its arrival
// flips across the threshold. Call it BEFORE LSEI.AddTable for the same
// table, so the new table's own signatures are computed under the filter
// that now includes it.
func (fs *TypeFilterState) AddTable(t *table.Table, ixs ...*LSEI) {
	fs.count(t, 1)
	fs.resign(ixs)
}

// RemoveTable records t leaving the corpus and re-signs whatever its
// departure flips. Call it AFTER LSEI.RemoveTable for the same table,
// which must run while the filter still matches the stored signatures.
func (fs *TypeFilterState) RemoveTable(t *table.Table, ixs ...*LSEI) {
	fs.count(t, -1)
	fs.resign(ixs)
}

// count applies one table's expanded type set to the counters with the
// given delta (+1 add, -1 remove).
func (fs *TypeFilterState) count(t *table.Table, delta int) {
	seen := make(map[kg.TypeID]bool)
	for _, e := range t.Entities() {
		for _, ty := range fs.tj.TypeSet(e) {
			seen[ty] = true
		}
	}
	fs.total += delta
	for ty := range seen {
		if fs.counts[ty] += delta; fs.counts[ty] == 0 {
			delete(fs.counts, ty)
		}
	}
}

// flips returns every type whose frequent-ness disagrees with the current
// filter map. Because the limit moves with the total, this scans all
// counted types, plus filtered types whose count dropped to zero.
func (fs *TypeFilterState) flips() []kg.TypeID {
	limit := fs.threshold * float64(fs.total)
	var out []kg.TypeID
	for ty, c := range fs.counts {
		if (float64(c) > limit) != fs.filter[ty] {
			out = append(out, ty)
		}
	}
	for ty := range fs.filter {
		if fs.counts[ty] == 0 {
			out = append(out, ty)
		}
	}
	return out
}

// resign propagates pending flips: pull affected items out of every index
// under the old filter, toggle the shared map, re-insert under the new
// one.
func (fs *TypeFilterState) resign(ixs []*LSEI) {
	flips := fs.flips()
	if len(flips) == 0 {
		return
	}
	removed := make([][]uint32, len(ixs))
	for i, ix := range ixs {
		removed[i] = ix.removeForResign(flips)
	}
	for _, ty := range flips {
		if fs.filter[ty] {
			delete(fs.filter, ty)
		} else {
			fs.filter[ty] = true
		}
	}
	n := 0
	for i, ix := range ixs {
		ix.reinsert(removed[i])
		n += len(removed[i])
	}
	mFilterResigns.Add(int64(n))
}
