//go:build nosigmacache

package core

// sigmaCacheBuildEnabled is false under the `nosigmacache` build tag:
// engines fall back to per-worker memoization exactly as if every Engine
// set DisableSigmaCache, giving `make benchcheck` an uncached baseline
// binary (docs/PERFORMANCE.md).
const sigmaCacheBuildEnabled = false
