package core

import (
	"math"
	"time"

	"thetis/internal/hungarian"
	"thetis/internal/kg"
	"thetis/internal/table"
)

// Aggregation selects how per-row entity scores are folded into one score
// per query entity (Algorithm 1, line 13). The paper finds MAX up to 5×
// better on NDCG because it amplifies the relevance signal of the best
// matching tuples (Section 7.2).
type Aggregation int

const (
	// AggregateMax keeps, per query entity, the best similarity across all
	// table rows of the mapped column.
	AggregateMax Aggregation = iota
	// AggregateAvg averages the similarity across all table rows
	// (unlinked cells contribute 0).
	AggregateAvg
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	if a == AggregateAvg {
		return "avg"
	}
	return "max"
}

// ScoreMode selects between the two interpretations of SemRel(Q, T)
// discussed in Section 4.1 of the paper.
type ScoreMode int

const (
	// ModeEntityWise is Algorithm 1: per query entity, row scores down the
	// assigned column are aggregated first, then one weighted Euclidean
	// distance is computed per query tuple. This is the default.
	ModeEntityWise ScoreMode = iota
	// ModePairwise is Equation 1's reading: every table row is scored as a
	// whole tuple against the query tuple (its own weighted Euclidean
	// distance), and the per-row SemRel values are then folded across rows
	// with the configured aggregation ("the average of the score within
	// each tuple-to-tuple comparison or … the best match between query
	// tuples and tuples in the table").
	ModePairwise
)

// String implements fmt.Stringer.
func (m ScoreMode) String() string {
	if m == ModePairwise {
		return "pairwise"
	}
	return "entitywise"
}

// MappingMethod selects how query entities are assigned to table columns.
type MappingMethod int

const (
	// MappingHungarian solves the assignment optimally (Section 5.1, the
	// paper's choice). O(k²·n) in query width k and column count n.
	MappingHungarian MappingMethod = iota
	// MappingGreedy assigns each query entity its best still-free column
	// in query order. Cheaper but can pick a suboptimal assignment when
	// entities compete for the same column — the ablation quantifying why
	// the paper uses the Hungarian method.
	MappingGreedy
)

// String implements fmt.Stringer.
func (m MappingMethod) String() string {
	if m == MappingGreedy {
		return "greedy"
	}
	return "hungarian"
}

// sigmaCache memoizes σ(e, ·) for a fixed distinct query entity — the
// per-worker fallback used when the shared query-scoped SigmaCache is
// disabled (Engine.DisableSigmaCache or the nosigmacache build tag).
type sigmaCache map[uint32]float64

// scorer evaluates SemRel for one query against tables, carrying the
// immutable pieces of Algorithm 1's inner loop. Query entities are
// resolved once to distinct slots, so σ memoization and per-table column
// scores are shared between tuples that repeat an entity.
type scorer struct {
	sim     Similarity
	inf     Informativeness
	agg     Aggregation
	mode    ScoreMode
	mapping MappingMethod
	q       Query
	// weights[ti][k] = I(q[ti][k]), precomputed.
	weights [][]float64
	// distinct are the deduplicated query entities; slots[ti][k] indexes
	// q[ti][k]'s entity in it.
	distinct []kg.EntityID
	slots    [][]int

	// shared is the query-scoped (or batch-scoped) σ cache shared across
	// all workers of one search; nil when disabled, in which case local
	// memoizes per worker. cacheSlot maps the scorer's distinct-entity
	// index to the cache's slot: identity for a query-scoped cache, a
	// union remap for a batch-scoped one (docs/THROUGHPUT.md).
	shared    *SigmaCache
	cacheSlot []int
	local     []sigmaCache
	// hits/misses batch the shared cache's counters locally (merged once
	// per search, not once per lookup).
	hits, misses int64

	// cross is the optional cross-query σ cache, consulted only on a
	// shared/local miss (so its per-lookup cost rides on σ computations,
	// never on memoized hits); nil when disabled.
	cross                  *CrossCache
	crossHits, crossMisses int64

	// Per-table scratch, reset by scoreTable: rowScore[di][j] is the sum
	// of σ(distinct[di], e) over column j's cells — the σ submatrix row of
	// the column mapping, computed once per distinct entity per table and
	// reused by every tuple that mentions the entity.
	rowScore [][]float64
	rowValid []bool
}

func newScorer(q Query, sim Similarity, inf Informativeness, agg Aggregation, mode ScoreMode, mapping MappingMethod, shared *SigmaCache, cross *CrossCache) *scorer {
	s := &scorer{
		sim:     sim,
		inf:     inf,
		agg:     agg,
		mode:    mode,
		mapping: mapping,
		q:       q,
		weights: make([][]float64, len(q)),
		slots:   make([][]int, len(q)),
		shared:  shared,
		cross:   cross,
	}
	slotOf := make(map[kg.EntityID]int)
	for ti, tq := range q {
		s.weights[ti] = make([]float64, len(tq))
		s.slots[ti] = make([]int, len(tq))
		for k, e := range tq {
			s.weights[ti][k] = inf(e)
			di, ok := slotOf[e]
			if !ok {
				di = len(s.distinct)
				slotOf[e] = di
				s.distinct = append(s.distinct, e)
			}
			s.slots[ti][k] = di
		}
	}
	if shared != nil {
		// Resolve this scorer's distinct entities to the cache's slots.
		// A query-scoped cache covers them by construction; a batch-scoped
		// cache covers the union of its batch's queries. An uncovered
		// entity means the cache belongs to some other query set — drop it
		// and fall back to worker-local memoization rather than mis-slot.
		s.cacheSlot = make([]int, len(s.distinct))
		for i, e := range s.distinct {
			slot, ok := shared.Slot(e)
			if !ok {
				s.shared, s.cacheSlot = nil, nil
				break
			}
			s.cacheSlot[i] = slot
		}
	}
	if s.shared == nil {
		s.local = make([]sigmaCache, len(s.distinct))
		for i := range s.local {
			s.local[i] = make(sigmaCache)
		}
	}
	s.rowScore = make([][]float64, len(s.distinct))
	s.rowValid = make([]bool, len(s.distinct))
	return s
}

// sigma returns σ(distinct[di], target), memoized in the shared query- or
// batch-scoped cache when one is attached, else in the worker-local map.
func (s *scorer) sigma(di int, target uint32) float64 {
	if s.shared != nil {
		if v, ok := s.shared.lookup(s.cacheSlot[di], target); ok {
			s.hits++
			return v
		}
		v := s.resolveSigma(di, target)
		s.shared.store(s.cacheSlot[di], target, v)
		s.misses++
		return v
	}
	c := s.local[di]
	if v, ok := c[target]; ok {
		return v
	}
	v := s.resolveSigma(di, target)
	c[target] = v
	return v
}

// resolveSigma produces σ(distinct[di], target) on a query-cache miss:
// from the cross-query cache when one is attached (filling it on a cross
// miss), else by direct evaluation. Either way the value is the same
// deterministic σ, so attaching a cross cache never changes results.
func (s *scorer) resolveSigma(di int, target uint32) float64 {
	if s.cross == nil {
		return s.sim.Score(s.distinct[di], kgEntity(target))
	}
	if v, ok := s.cross.Get(s.distinct[di], target); ok {
		s.crossHits++
		return v
	}
	v := s.sim.Score(s.distinct[di], kgEntity(target))
	s.cross.Put(s.distinct[di], target, v)
	s.crossMisses++
	return v
}

// scoreTable computes SemRel(Q, T) per Algorithm 1 and returns the score
// together with the time spent computing the query-to-column mapping μ
// (the cost fraction studied in Section 7.3). ci is the table's column
// pre-aggregation (nil builds a transient one). A table for which no query
// entity has any positive similarity scores 0 and is thereby excluded from
// results, satisfying Problem 2.2.
func (s *scorer) scoreTable(t *table.Table, ci *table.ColumnIndex) (float64, time.Duration) {
	if t.NumRows() == 0 || t.NumColumns() == 0 {
		return 0, 0
	}
	if ci == nil {
		ci = table.BuildColumnIndex(t)
	}
	s.beginTable()
	var mappingTime time.Duration
	total := 0.0
	matched := false
	for ti := range s.q {
		start := time.Now()
		assignment, assignScore := s.mapColumns(ti, ci)
		mappingTime += time.Since(start)
		if assignScore <= 0 {
			// No relevant mapping for this tuple: contributes 0.
			continue
		}
		matched = true
		if s.mode == ModePairwise {
			total += s.tupleScorePairwise(ti, t, assignment)
		} else {
			total += s.tupleScore(ti, t, ci, assignment)
		}
	}
	if !matched {
		return 0, mappingTime
	}
	return total / float64(len(s.q)), mappingTime
}

// beginTable invalidates the per-table memoized column-score rows. Called
// by scoreTable before each table; callers driving mapColumns directly
// (tests) must call it when switching tables.
func (s *scorer) beginTable() {
	for di := range s.rowValid {
		s.rowValid[di] = false
	}
}

// columnScores returns, for distinct query entity di, the per-column sums
// of σ against every cell — one row of the score matrix S (Section 5.1).
// Rows are computed lazily per table via the column index (distinct
// entities × multiplicities instead of raw cells) and reused by every
// tuple of the query that mentions the entity, so wide queries with
// repeated entities pay for each σ row once.
func (s *scorer) columnScores(di int, ci *table.ColumnIndex) []float64 {
	if s.rowValid[di] {
		return s.rowScore[di]
	}
	row := s.rowScore[di][:0]
	for j := range ci.Cols {
		cs := &ci.Cols[j]
		sum := 0.0
		for i, e := range cs.Entities {
			sum += float64(cs.Counts[i]) * s.sigma(di, uint32(e))
		}
		row = append(row, sum)
	}
	s.rowScore[di] = row
	s.rowValid[di] = true
	return row
}

// mapColumns assembles the score matrix S (Section 5.1) for query tuple ti
// from the memoized per-entity column-score rows and solves the assignment
// problem, returning per-entity column assignments (-1 = unassigned) and
// the total assignment score. Tuple entities that repeat share one row
// (aliased, read-only under both solvers).
func (s *scorer) mapColumns(ti int, ci *table.ColumnIndex) ([]int, float64) {
	slots := s.slots[ti]
	S := make([][]float64, len(slots))
	for i, di := range slots {
		S[i] = s.columnScores(di, ci)
	}
	var assignment []int
	if s.mapping == MappingGreedy {
		assignment = greedyMaximize(S)
	} else {
		assignment = hungarian.Maximize(S)
	}
	return assignment, hungarian.TotalScore(S, assignment)
}

// greedyMaximize assigns each row (query entity) its best still-unused
// column, in row order. Not optimal; see MappingGreedy.
func greedyMaximize(S [][]float64) []int {
	out := make([]int, len(S))
	used := make([]bool, 0)
	if len(S) > 0 {
		used = make([]bool, len(S[0]))
	}
	for i := range S {
		out[i] = -1
		best := 0.0
		for j, v := range S[i] {
			if !used[j] && v > best {
				best, out[i] = v, j
			}
		}
		if out[i] >= 0 {
			used[out[i]] = true
		}
	}
	return out
}

// tupleScore computes the weighted-Euclidean SemRel of query tuple ti
// against the whole table under the given column assignment (Equations 2–3,
// Algorithm 1 lines 7–14).
func (s *scorer) tupleScore(ti int, t *table.Table, ci *table.ColumnIndex, assignment []int) float64 {
	slots := s.slots[ti]
	var distSq float64
	for i := range slots {
		x := 0.0
		if j := assignment[i]; j >= 0 {
			x = s.aggregateColumn(slots[i], ci, j, t.NumRows())
		}
		miss := 1 - x
		distSq += s.weights[ti][i] * miss * miss
	}
	return 1 / (math.Sqrt(distSq) + 1)
}

// tupleScorePairwise computes SemRel for one query tuple under
// ModePairwise: each table row becomes a point in the query's Euclidean
// space and earns its own SemRel, which is then folded across rows by the
// configured aggregation.
func (s *scorer) tupleScorePairwise(ti int, t *table.Table, assignment []int) float64 {
	slots := s.slots[ti]
	best, sum := 0.0, 0.0
	for _, row := range t.Rows {
		var distSq float64
		for i := range slots {
			x := 0.0
			if j := assignment[i]; j >= 0 {
				if e, ok := row[j].EntityID(); ok {
					x = s.sigma(slots[i], uint32(e))
				}
			}
			miss := 1 - x
			distSq += s.weights[ti][i] * miss * miss
		}
		rowScore := 1 / (math.Sqrt(distSq) + 1)
		sum += rowScore
		if rowScore > best {
			best = rowScore
		}
	}
	if s.agg == AggregateAvg {
		return sum / float64(t.NumRows())
	}
	return best
}

// aggregateColumn folds the per-row similarities of distinct query entity
// di against column j into one score per the configured aggregation,
// iterating the column's distinct entities with multiplicities instead of
// its raw cells.
func (s *scorer) aggregateColumn(di int, ci *table.ColumnIndex, j, numRows int) float64 {
	switch s.agg {
	case AggregateAvg:
		// The per-row σ sum of the column is exactly this entity's score-
		// matrix cell, already memoized by the mapping step.
		return s.columnScores(di, ci)[j] / float64(numRows)
	default: // AggregateMax
		best := 0.0
		for _, e := range ci.Cols[j].Entities {
			if v := s.sigma(di, uint32(e)); v > best {
				best = v
				if best >= 1 {
					return 1
				}
			}
		}
		return best
	}
}
