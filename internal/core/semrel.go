package core

import (
	"math"
	"time"

	"thetis/internal/hungarian"
	"thetis/internal/table"
)

// Aggregation selects how per-row entity scores are folded into one score
// per query entity (Algorithm 1, line 13). The paper finds MAX up to 5×
// better on NDCG because it amplifies the relevance signal of the best
// matching tuples (Section 7.2).
type Aggregation int

const (
	// AggregateMax keeps, per query entity, the best similarity across all
	// table rows of the mapped column.
	AggregateMax Aggregation = iota
	// AggregateAvg averages the similarity across all table rows
	// (unlinked cells contribute 0).
	AggregateAvg
)

// String implements fmt.Stringer.
func (a Aggregation) String() string {
	if a == AggregateAvg {
		return "avg"
	}
	return "max"
}

// ScoreMode selects between the two interpretations of SemRel(Q, T)
// discussed in Section 4.1 of the paper.
type ScoreMode int

const (
	// ModeEntityWise is Algorithm 1: per query entity, row scores down the
	// assigned column are aggregated first, then one weighted Euclidean
	// distance is computed per query tuple. This is the default.
	ModeEntityWise ScoreMode = iota
	// ModePairwise is Equation 1's reading: every table row is scored as a
	// whole tuple against the query tuple (its own weighted Euclidean
	// distance), and the per-row SemRel values are then folded across rows
	// with the configured aggregation ("the average of the score within
	// each tuple-to-tuple comparison or … the best match between query
	// tuples and tuples in the table").
	ModePairwise
)

// String implements fmt.Stringer.
func (m ScoreMode) String() string {
	if m == ModePairwise {
		return "pairwise"
	}
	return "entitywise"
}

// MappingMethod selects how query entities are assigned to table columns.
type MappingMethod int

const (
	// MappingHungarian solves the assignment optimally (Section 5.1, the
	// paper's choice). O(k²·n) in query width k and column count n.
	MappingHungarian MappingMethod = iota
	// MappingGreedy assigns each query entity its best still-free column
	// in query order. Cheaper but can pick a suboptimal assignment when
	// entities compete for the same column — the ablation quantifying why
	// the paper uses the Hungarian method.
	MappingGreedy
)

// String implements fmt.Stringer.
func (m MappingMethod) String() string {
	if m == MappingGreedy {
		return "greedy"
	}
	return "hungarian"
}

// sigmaCache memoizes σ(e, ·) for a fixed query entity, since a table
// column usually repeats few distinct entities.
type sigmaCache map[uint32]float64

// scorer evaluates SemRel for one query against tables, carrying the
// immutable pieces of Algorithm 1's inner loop.
type scorer struct {
	sim     Similarity
	inf     Informativeness
	agg     Aggregation
	mode    ScoreMode
	mapping MappingMethod
	q       Query
	// weights[i][k] = I(q[i][k]), precomputed.
	weights [][]float64
	// caches[i][k] memoizes σ(q[i][k], ·).
	caches [][]sigmaCache
}

func newScorer(q Query, sim Similarity, inf Informativeness, agg Aggregation, mode ScoreMode, mapping MappingMethod) *scorer {
	s := &scorer{
		sim:     sim,
		inf:     inf,
		agg:     agg,
		mode:    mode,
		mapping: mapping,
		q:       q,
		weights: make([][]float64, len(q)),
		caches:  make([][]sigmaCache, len(q)),
	}
	for i, tq := range q {
		s.weights[i] = make([]float64, len(tq))
		s.caches[i] = make([]sigmaCache, len(tq))
		for k, e := range tq {
			s.weights[i][k] = inf(e)
			s.caches[i][k] = make(sigmaCache)
		}
	}
	return s
}

func (s *scorer) sigma(tupleIdx, entIdx int, target uint32) float64 {
	c := s.caches[tupleIdx][entIdx]
	if v, ok := c[target]; ok {
		return v
	}
	v := s.sim.Score(s.q[tupleIdx][entIdx], kgEntity(target))
	c[target] = v
	return v
}

// scoreTable computes SemRel(Q, T) per Algorithm 1 and returns the score
// together with the time spent computing the query-to-column mapping μ
// (the cost fraction studied in Section 7.3). A table for which no query
// entity has any positive similarity scores 0 and is thereby excluded from
// results, satisfying Problem 2.2.
func (s *scorer) scoreTable(t *table.Table) (float64, time.Duration) {
	if t.NumRows() == 0 || t.NumColumns() == 0 {
		return 0, 0
	}
	var mappingTime time.Duration
	total := 0.0
	matched := false
	for ti := range s.q {
		start := time.Now()
		assignment, assignScore := s.mapColumns(ti, t)
		mappingTime += time.Since(start)
		if assignScore <= 0 {
			// No relevant mapping for this tuple: contributes 0.
			continue
		}
		matched = true
		if s.mode == ModePairwise {
			total += s.tupleScorePairwise(ti, t, assignment)
		} else {
			total += s.tupleScore(ti, t, assignment)
		}
	}
	if !matched {
		return 0, mappingTime
	}
	return total / float64(len(s.q)), mappingTime
}

// mapColumns builds the score matrix S (Section 5.1) for query tuple ti and
// solves the assignment problem, returning per-entity column assignments
// (-1 = unassigned) and the total assignment score.
func (s *scorer) mapColumns(ti int, t *table.Table) ([]int, float64) {
	tq := s.q[ti]
	k, n := len(tq), t.NumColumns()
	S := make([][]float64, k)
	for i := range S {
		S[i] = make([]float64, n)
	}
	for _, row := range t.Rows {
		for j, cell := range row {
			e, ok := cell.EntityID()
			if !ok {
				continue
			}
			for i := range tq {
				S[i][j] += s.sigma(ti, i, uint32(e))
			}
		}
	}
	var assignment []int
	if s.mapping == MappingGreedy {
		assignment = greedyMaximize(S)
	} else {
		assignment = hungarian.Maximize(S)
	}
	return assignment, hungarian.TotalScore(S, assignment)
}

// greedyMaximize assigns each row (query entity) its best still-unused
// column, in row order. Not optimal; see MappingGreedy.
func greedyMaximize(S [][]float64) []int {
	out := make([]int, len(S))
	used := make([]bool, 0)
	if len(S) > 0 {
		used = make([]bool, len(S[0]))
	}
	for i := range S {
		out[i] = -1
		best := 0.0
		for j, v := range S[i] {
			if !used[j] && v > best {
				best, out[i] = v, j
			}
		}
		if out[i] >= 0 {
			used[out[i]] = true
		}
	}
	return out
}

// tupleScore computes the weighted-Euclidean SemRel of query tuple ti
// against the whole table under the given column assignment (Equations 2–3,
// Algorithm 1 lines 7–14).
func (s *scorer) tupleScore(ti int, t *table.Table, assignment []int) float64 {
	tq := s.q[ti]
	var distSq float64
	for i := range tq {
		x := 0.0
		if j := assignment[i]; j >= 0 {
			x = s.aggregateColumn(ti, i, t, j)
		}
		miss := 1 - x
		distSq += s.weights[ti][i] * miss * miss
	}
	return 1 / (math.Sqrt(distSq) + 1)
}

// tupleScorePairwise computes SemRel for one query tuple under
// ModePairwise: each table row becomes a point in the query's Euclidean
// space and earns its own SemRel, which is then folded across rows by the
// configured aggregation.
func (s *scorer) tupleScorePairwise(ti int, t *table.Table, assignment []int) float64 {
	tq := s.q[ti]
	best, sum := 0.0, 0.0
	for _, row := range t.Rows {
		var distSq float64
		for i := range tq {
			x := 0.0
			if j := assignment[i]; j >= 0 {
				if e, ok := row[j].EntityID(); ok {
					x = s.sigma(ti, i, uint32(e))
				}
			}
			miss := 1 - x
			distSq += s.weights[ti][i] * miss * miss
		}
		rowScore := 1 / (math.Sqrt(distSq) + 1)
		sum += rowScore
		if rowScore > best {
			best = rowScore
		}
	}
	if s.agg == AggregateAvg {
		return sum / float64(t.NumRows())
	}
	return best
}

// aggregateColumn folds the per-row similarities of query entity (ti, i)
// against column j into one score per the configured aggregation.
func (s *scorer) aggregateColumn(ti, i int, t *table.Table, j int) float64 {
	switch s.agg {
	case AggregateAvg:
		sum := 0.0
		for _, row := range t.Rows {
			if e, ok := row[j].EntityID(); ok {
				sum += s.sigma(ti, i, uint32(e))
			}
		}
		return sum / float64(t.NumRows())
	default: // AggregateMax
		best := 0.0
		for _, row := range t.Rows {
			if e, ok := row[j].EntityID(); ok {
				if v := s.sigma(ti, i, uint32(e)); v > best {
					best = v
					if best >= 1 {
						return 1
					}
				}
			}
		}
		return best
	}
}
