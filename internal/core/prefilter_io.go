package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/lsh"
)

// LSEI persistence: a built index can be written to disk and reloaded
// against the same lake and similarity structures, skipping the per-entity
// hashing pass at startup. The caller is responsible for pairing the
// snapshot with the same corpus it was built from.

const lseiMagic = uint32(0x544C5331) // "TLS1"

// Write serializes the LSEI (configuration, hashers, filters, bucket
// index). The lake itself is not serialized.
func (x *LSEI) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	wU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := wU32(lseiMagic); err != nil {
		return err
	}
	kind := uint32(0)
	if x.minHash == nil {
		kind = 1
	}
	mode := uint32(0)
	if x.columnMode {
		mode = 1
	}
	for _, v := range []uint32{kind, mode,
		uint32(x.cfg.Vectors), uint32(x.cfg.BandSize),
		math.Float32bits(float32(x.cfg.FrequentTypeThreshold)),
		uint32(x.cfg.Seed)} {
		if err := wU32(v); err != nil {
			return err
		}
	}
	// Type filter (empty for embedding indexes).
	filter := make([]uint32, 0, len(x.typeFilter))
	for t := range x.typeFilter {
		filter = append(filter, uint32(t))
	}
	sort.Slice(filter, func(i, j int) bool { return filter[i] < filter[j] })
	if err := wU32(uint32(len(filter))); err != nil {
		return err
	}
	for _, t := range filter {
		if err := wU32(t); err != nil {
			return err
		}
	}
	// Entity-mode indexed set / column-mode table map.
	if x.columnMode {
		if err := wU32(uint32(len(x.colTable))); err != nil {
			return err
		}
		for _, tid := range x.colTable {
			if err := wU32(uint32(tid)); err != nil {
				return err
			}
		}
	} else {
		ids := make([]uint32, 0, len(x.indexed))
		for e := range x.indexed {
			ids = append(ids, uint32(e))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if err := wU32(uint32(len(ids))); err != nil {
			return err
		}
		for _, e := range ids {
			if err := wU32(e); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Hasher and bucket index blobs.
	if x.minHash != nil {
		if err := x.minHash.Write(w); err != nil {
			return err
		}
	} else {
		if err := x.hyper.Write(w); err != nil {
			return err
		}
	}
	return x.index.Write(w)
}

// lseiHeader holds the decoded fixed-size prefix.
type lseiHeader struct {
	kind, mode uint32
	cfg        LSEIConfig
}

func readLSEIHeader(br *bufio.Reader) (lseiHeader, error) {
	var h lseiHeader
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := rU32()
	if err != nil {
		return h, err
	}
	if magic != lseiMagic {
		return h, fmt.Errorf("core: bad LSEI magic %#x", magic)
	}
	fields := make([]uint32, 6)
	for i := range fields {
		if fields[i], err = rU32(); err != nil {
			return h, err
		}
	}
	h.kind, h.mode = fields[0], fields[1]
	h.cfg = LSEIConfig{
		Vectors:               int(fields[2]),
		BandSize:              int(fields[3]),
		FrequentTypeThreshold: float64(math.Float32frombits(fields[4])),
		ColumnAggregation:     h.mode == 1,
		Seed:                  int64(fields[5]),
	}
	return h, nil
}

// LoadTypeLSEI reads a snapshot written by Write for a type index,
// reattaching it to the lake and type sets it was built over.
func LoadTypeLSEI(l *lake.Lake, tj *TypeJaccard, r io.Reader) (*LSEI, error) {
	br := bufio.NewReader(r)
	h, err := readLSEIHeader(br)
	if err != nil {
		return nil, err
	}
	if h.kind != 0 {
		return nil, fmt.Errorf("core: snapshot holds an embedding LSEI, not a type LSEI")
	}
	x := &LSEI{cfg: h.cfg, lake: l, typeSets: tj, columnMode: h.mode == 1, typeFilter: map[kg.TypeID]bool{}}
	if err := readLSEIBody(br, x); err != nil {
		return nil, err
	}
	if x.minHash, err = lsh.ReadMinHasher(br); err != nil {
		return nil, err
	}
	if x.index, err = lsh.ReadIndex(br); err != nil {
		return nil, err
	}
	return x, nil
}

// LoadEmbeddingLSEI reads a snapshot written by Write for an embedding
// index.
func LoadEmbeddingLSEI(l *lake.Lake, ec *EmbeddingCosine, r io.Reader) (*LSEI, error) {
	br := bufio.NewReader(r)
	h, err := readLSEIHeader(br)
	if err != nil {
		return nil, err
	}
	if h.kind != 1 {
		return nil, fmt.Errorf("core: snapshot holds a type LSEI, not an embedding LSEI")
	}
	x := &LSEI{cfg: h.cfg, lake: l, cos: ec, columnMode: h.mode == 1, typeFilter: map[kg.TypeID]bool{}}
	if err := readLSEIBody(br, x); err != nil {
		return nil, err
	}
	if x.hyper, err = lsh.ReadHyperplaneHasher(br); err != nil {
		return nil, err
	}
	if x.index, err = lsh.ReadIndex(br); err != nil {
		return nil, err
	}
	return x, nil
}

// readLSEIBody decodes the type filter and indexed/colTable sections.
func readLSEIBody(br *bufio.Reader, x *LSEI) error {
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	nFilter, err := rU32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nFilter; i++ {
		t, err := rU32()
		if err != nil {
			return err
		}
		x.typeFilter[kg.TypeID(t)] = true
	}
	n, err := rU32()
	if err != nil {
		return err
	}
	if x.columnMode {
		x.colTable = make([]lake.TableID, n)
		for i := range x.colTable {
			v, err := rU32()
			if err != nil {
				return err
			}
			x.colTable[i] = lake.TableID(v)
		}
	} else {
		x.indexed = make(map[kg.EntityID]bool, n)
		for i := uint32(0); i < n; i++ {
			v, err := rU32()
			if err != nil {
				return err
			}
			x.indexed[kg.EntityID(v)] = true
		}
	}
	return nil
}
