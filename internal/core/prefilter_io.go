package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"thetis/internal/atomicio"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/lsh"
)

// LSEI persistence: a built index can be written to disk and reloaded
// against the same lake and similarity structures, skipping the per-entity
// hashing pass at startup. The caller is responsible for pairing the
// snapshot with the same corpus it was built from.
//
// The snapshot is framed in the checksummed atomicio envelope (magic +
// version header, CRC32C-sealed sections, whole-file footer checksum; see
// docs/RELIABILITY.md for the wire layout). Loading validates every layer:
// a snapshot with even a single flipped bit fails with
// atomicio.ErrCorruptSnapshot instead of producing a silently wrong index,
// so callers can fall back to a brute-force rebuild (degraded-mode
// serving).

const (
	lseiMagic   = uint32(0x544C5332) // "TLS2"
	lseiVersion = uint32(1)
)

// Write serializes the LSEI (configuration, hashers, filters, bucket
// index). The lake itself is not serialized.
func (x *LSEI) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sw, err := atomicio.NewSnapshotWriter(bw, lseiMagic, lseiVersion)
	if err != nil {
		return err
	}
	// Header section: fixed-size configuration plus the type filter and
	// indexed-set / column-table body, sealed with its own checksum.
	cw := atomicio.NewCRCWriter(sw)
	wU32 := func(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }
	kind := uint32(0)
	if x.minHash == nil {
		kind = 1
	}
	mode := uint32(0)
	if x.columnMode {
		mode = 1
	}
	for _, v := range []uint32{kind, mode,
		uint32(x.cfg.Vectors), uint32(x.cfg.BandSize),
		math.Float32bits(float32(x.cfg.FrequentTypeThreshold)),
		uint32(x.cfg.Seed)} {
		if err := wU32(v); err != nil {
			return err
		}
	}
	// Type filter (empty for embedding indexes).
	filter := make([]uint32, 0, len(x.typeFilter))
	for t := range x.typeFilter {
		filter = append(filter, uint32(t))
	}
	sort.Slice(filter, func(i, j int) bool { return filter[i] < filter[j] })
	if err := wU32(uint32(len(filter))); err != nil {
		return err
	}
	for _, t := range filter {
		if err := wU32(t); err != nil {
			return err
		}
	}
	// Entity-mode indexed set / column-mode table map.
	if x.columnMode {
		if err := wU32(uint32(len(x.colTable))); err != nil {
			return err
		}
		for _, tid := range x.colTable {
			if err := wU32(uint32(tid)); err != nil {
				return err
			}
		}
	} else {
		ids := make([]uint32, 0, len(x.indexed))
		for e := range x.indexed {
			ids = append(ids, uint32(e))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if err := wU32(uint32(len(ids))); err != nil {
			return err
		}
		for _, e := range ids {
			if err := wU32(e); err != nil {
				return err
			}
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	// Hasher and bucket index sections (each sealed by its own checksum in
	// internal/lsh).
	if x.minHash != nil {
		if err := x.minHash.Write(sw); err != nil {
			return err
		}
	} else {
		if err := x.hyper.Write(sw); err != nil {
			return err
		}
	}
	if err := x.index.Write(sw); err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// lseiHeader holds the decoded fixed-size prefix.
type lseiHeader struct {
	kind, mode uint32
	cfg        LSEIConfig
}

func readLSEIHeader(r io.Reader) (lseiHeader, error) {
	var h lseiHeader
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	fields := make([]uint32, 6)
	for i := range fields {
		var err error
		if fields[i], err = rU32(); err != nil {
			return h, atomicio.Corruptf("core: truncated LSEI header: %v", err)
		}
	}
	h.kind, h.mode = fields[0], fields[1]
	h.cfg = LSEIConfig{
		Vectors:               int(fields[2]),
		BandSize:              int(fields[3]),
		FrequentTypeThreshold: float64(math.Float32frombits(fields[4])),
		ColumnAggregation:     h.mode == 1,
		Seed:                  int64(fields[5]),
	}
	if h.kind > 1 || h.mode > 1 {
		return h, atomicio.Corruptf("core: implausible LSEI header kind=%d mode=%d", h.kind, h.mode)
	}
	if err := h.cfg.Validate(); err != nil {
		return h, atomicio.Corruptf("core: implausible LSEI configuration: %v", err)
	}
	return h, nil
}

// openLSEISnapshot validates the envelope header and version.
func openLSEISnapshot(r io.Reader) (*atomicio.SnapshotReader, error) {
	sr, err := atomicio.NewSnapshotReader(bufio.NewReader(r), lseiMagic)
	if err != nil {
		return nil, err
	}
	if v := sr.Version(); v != lseiVersion {
		return nil, atomicio.Corruptf("core: unsupported LSEI snapshot version %d (want %d)", v, lseiVersion)
	}
	return sr, nil
}

// LoadTypeLSEI reads a snapshot written by Write for a type index,
// reattaching it to the lake and type sets it was built over. Corrupt
// input of any kind — flipped bytes, truncation, implausible shapes —
// fails with atomicio.ErrCorruptSnapshot, never a wrong-but-loaded index.
func LoadTypeLSEI(l *lake.Lake, tj *TypeJaccard, r io.Reader) (*LSEI, error) {
	sr, err := openLSEISnapshot(r)
	if err != nil {
		return nil, err
	}
	cr := atomicio.NewCRCReader(sr)
	h, err := readLSEIHeader(cr)
	if err != nil {
		return nil, err
	}
	x := &LSEI{cfg: h.cfg, lake: l, typeSets: tj, columnMode: h.mode == 1, typeFilter: map[kg.TypeID]bool{}}
	if err := readLSEIBody(cr, x); err != nil {
		return nil, err
	}
	// Verify the header section before acting on its kind byte, so a
	// flipped kind reads as corruption, not as a wrong-kind snapshot.
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	if h.kind != 0 {
		return nil, fmt.Errorf("core: snapshot holds an embedding LSEI, not a type LSEI")
	}
	if x.minHash, err = lsh.ReadMinHasher(sr); err != nil {
		return nil, err
	}
	if x.index, err = lsh.ReadIndex(sr); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return x, nil
}

// LoadEmbeddingLSEI reads a snapshot written by Write for an embedding
// index. See LoadTypeLSEI for the corruption contract.
func LoadEmbeddingLSEI(l *lake.Lake, ec *EmbeddingCosine, r io.Reader) (*LSEI, error) {
	sr, err := openLSEISnapshot(r)
	if err != nil {
		return nil, err
	}
	cr := atomicio.NewCRCReader(sr)
	h, err := readLSEIHeader(cr)
	if err != nil {
		return nil, err
	}
	x := &LSEI{cfg: h.cfg, lake: l, cos: ec, columnMode: h.mode == 1, typeFilter: map[kg.TypeID]bool{}}
	if err := readLSEIBody(cr, x); err != nil {
		return nil, err
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	if h.kind != 1 {
		return nil, fmt.Errorf("core: snapshot holds a type LSEI, not an embedding LSEI")
	}
	if x.hyper, err = lsh.ReadHyperplaneHasher(sr); err != nil {
		return nil, err
	}
	if x.index, err = lsh.ReadIndex(sr); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return x, nil
}

// lseiAllocHint caps capacity pre-allocated from decoded counts, so a
// corrupt count cannot drive an out-of-memory crash; larger collections
// grow by append, bounded by the actual stream length.
const lseiAllocHint = 1 << 20

// readLSEIBody decodes the type filter and indexed/colTable sections.
func readLSEIBody(r io.Reader, x *LSEI) error {
	rU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(r, binary.LittleEndian, &v)
		return v, err
	}
	nFilter, err := rU32()
	if err != nil {
		return atomicio.Corruptf("core: truncated LSEI type filter: %v", err)
	}
	for i := uint32(0); i < nFilter; i++ {
		t, err := rU32()
		if err != nil {
			return atomicio.Corruptf("core: truncated LSEI type filter: %v", err)
		}
		x.typeFilter[kg.TypeID(t)] = true
	}
	n, err := rU32()
	if err != nil {
		return atomicio.Corruptf("core: truncated LSEI body: %v", err)
	}
	if x.columnMode {
		x.colTable = make([]lake.TableID, 0, min(int(n), lseiAllocHint))
		for i := uint32(0); i < n; i++ {
			v, err := rU32()
			if err != nil {
				return atomicio.Corruptf("core: truncated LSEI column table: %v", err)
			}
			x.colTable = append(x.colTable, lake.TableID(v))
		}
	} else {
		x.indexed = make(map[kg.EntityID]bool, min(int(n), lseiAllocHint))
		for i := uint32(0); i < n; i++ {
			v, err := rU32()
			if err != nil {
				return atomicio.Corruptf("core: truncated LSEI indexed set: %v", err)
			}
			x.indexed[kg.EntityID(v)] = true
		}
	}
	return nil
}
