package core

import "testing"

func TestPredicateJaccard(t *testing.T) {
	g := fixtureGraph()
	pj := NewPredicateJaccard(g)
	santo := ent(t, g, "santo")
	stetter := ent(t, g, "stetter")
	cubs := ent(t, g, "cubs")
	volley := ent(t, g, "volley1")

	if got := pj.Score(santo, santo); got != 1 {
		t.Errorf("σ(e,e) = %v", got)
	}
	// Both players have only out:team — capped identical signatures.
	if got := pj.Score(santo, stetter); got != MaxJaccard {
		t.Errorf("σ(player, player) = %v, want cap %v", got, MaxJaccard)
	}
	// Player (out:team) vs team (in:team, out:city): disjoint directional
	// signatures.
	if got := pj.Score(santo, cubs); got != 0 {
		t.Errorf("σ(player, team) = %v, want 0 (directional)", got)
	}
	// A volleyball player also has out:team only — predicate similarity
	// cannot distinguish sports (that is the taxonomy's/embeddings' job).
	if got := pj.Score(santo, volley); got != MaxJaccard {
		t.Errorf("σ(player, volleyball player) = %v, want cap", got)
	}
}

func TestPredicateJaccardIsolated(t *testing.T) {
	g := fixtureGraph()
	lonely := g.AddEntity("lonely", "")
	pj := NewPredicateJaccard(g)
	if got := pj.Score(lonely, ent(t, g, "santo")); got != 0 {
		t.Errorf("σ(isolated, connected) = %v, want 0", got)
	}
	if got := pj.Score(lonely, lonely); got != 1 {
		t.Errorf("σ(isolated, itself) = %v, want 1", got)
	}
}

func TestPredicateJaccardSymmetric(t *testing.T) {
	g := fixtureGraph()
	pj := NewPredicateJaccard(g)
	a, b := ent(t, g, "santo"), ent(t, g, "cubs")
	if pj.Score(a, b) != pj.Score(b, a) {
		t.Error("predicate Jaccard not symmetric")
	}
}

func TestEngineWithPredicateSimilarity(t *testing.T) {
	l, g := fixtureLake(t)
	eng := NewEngine(l, NewPredicateJaccard(g))
	q := queryOf(t, g, "santo", "cubs")
	results, _ := eng.Search(q, -1)
	if len(results) == 0 || results[0].Table != 0 {
		t.Fatalf("predicate-σ search = %v, want table 0 first", results)
	}
}
