package core_test

// Runnable godoc examples for the two central entry points: configuring an
// Engine and searching (Algorithm 1), and prefiltering the search space
// with a type-based LSEI (Section 6). `go test` verifies the outputs.

import (
	"fmt"

	"thetis/internal/core"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// exampleLake builds a miniature semantic data lake in the spirit of the
// paper's Figure 1: a taxonomy of sports types, a handful of linked
// entities, and four tables of varying relevance to a baseball query.
func exampleLake() (*lake.Lake, *kg.Graph, core.Query) {
	g := kg.NewGraph()
	thing := g.AddType("Thing", "")
	athlete := g.AddType("Athlete", "")
	team := g.AddType("SportsTeam", "")
	bp := g.AddType("BaseballPlayer", "")
	bt := g.AddType("BaseballTeam", "")
	vp := g.AddType("VolleyballPlayer", "")
	vt := g.AddType("VolleyballTeam", "")
	city := g.AddType("City", "")
	g.AddSubtype(athlete, thing)
	g.AddSubtype(team, thing)
	g.AddSubtype(bp, athlete)
	g.AddSubtype(bt, team)
	g.AddSubtype(vp, athlete)
	g.AddSubtype(vt, team)
	g.AddSubtype(city, thing)

	ent := func(uri, label string, t kg.TypeID) kg.EntityID {
		e := g.AddEntity(uri, label)
		g.AssignType(e, t)
		return e
	}
	santo := ent("santo", "Ron Santo", bp)
	stetter := ent("stetter", "Mitch Stetter", bp)
	cubs := ent("cubs", "Chicago Cubs", bt)
	brewers := ent("brewers", "Milwaukee Brewers", bt)
	volley := ent("volley", "Vera Volley", vp)
	smash := ent("smash", "Smash City", vt)
	chicago := ent("chicago", "Chicago", city)
	milwaukee := ent("milwaukee", "Milwaukee", city)

	l := lake.New(g)
	cell := func(e kg.EntityID) table.Cell { return table.LinkedCell(g.Label(e), e) }

	roster := table.New("roster", []string{"Player", "Team"})
	roster.AppendRow([]table.Cell{cell(santo), cell(cubs)})
	l.Add(roster)

	transfers := table.New("transfers", []string{"Player", "From"})
	transfers.AppendRow([]table.Cell{cell(stetter), cell(brewers)})
	l.Add(transfers)

	volleyball := table.New("volleyball", []string{"Player", "Team"})
	volleyball.AppendRow([]table.Cell{cell(volley), cell(smash)})
	l.Add(volleyball)

	cities := table.New("cities", []string{"City"})
	cities.AppendRow([]table.Cell{cell(chicago)})
	cities.AppendRow([]table.Cell{cell(milwaukee)})
	l.Add(cities)

	return l, g, core.Query{core.Tuple{santo, cubs}}
}

// ExampleNewEngine configures the recommended engine (type similarity, IDF
// informativeness, MAX aggregation) and ranks every table against the
// query ⟨Ron Santo, Chicago Cubs⟩.
func ExampleNewEngine() {
	l, g, q := exampleLake()
	eng := core.NewEngine(l, core.NewTypeJaccard(g))
	results, _ := eng.Search(q, 10)
	for _, r := range results {
		fmt.Printf("%s %.2f\n", l.Table(r.Table).Name, r.Score)
	}
	// Output:
	// roster 1.00
	// transfers 0.93
	// volleyball 0.59
	// cities 0.44
}

// ExampleNewSigmaCache memoizes σ outside the engine and introspects the
// cache. Engine.Search wires one of these per query automatically (the
// hit/miss tallies surface in Stats.SigmaHits/SigmaMisses and the
// thetis_sigma_cache_* metrics); constructing one directly shows what the
// scoring workers share.
func ExampleNewSigmaCache() {
	_, g, q := exampleLake()
	cache := core.NewSigmaCache(q, core.NewTypeJaccard(g), g.NumEntities())

	// Score every corpus entity against each distinct query entity, twice:
	// the second pass is served entirely from the cache.
	for pass := 0; pass < 2; pass++ {
		for slot := 0; slot < cache.NumSlots(); slot++ {
			for e := 0; e < g.NumEntities(); e++ {
				cache.Sigma(slot, kg.EntityID(e))
			}
		}
	}

	st := cache.Stats()
	fmt.Printf("slots=%d dense=%v entries=%d\n", st.Slots, st.Dense, st.Entries)
	fmt.Printf("hits=%d misses=%d hit rate %.0f%%\n", st.Hits, st.Misses, 100*st.HitRate())
	// Output:
	// slots=2 dense=true entries=16
	// hits=16 misses=16 hit rate 50%
}

// ExampleBuildTypeLSEI prefilters the search space with a MinHash LSEI
// before scoring: only tables that collide with the query's entities (and
// survive voting) are scored at all.
func ExampleBuildTypeLSEI() {
	l, g, q := exampleLake()
	tj := core.NewTypeJaccard(g)
	x := core.BuildTypeLSEI(l, tj, core.DefaultLSEIConfig())

	candidates := x.Candidates(q, 1)
	fmt.Printf("candidates: %d of %d tables (reduction %.0f%%)\n",
		len(candidates), l.NumTables(), 100*x.Reduction(candidates))

	eng := core.NewEngine(l, tj)
	results, _ := eng.SearchCandidates(q, candidates, 10)
	for _, r := range results {
		fmt.Println(l.Table(r.Table).Name)
	}
	// Output:
	// candidates: 2 of 4 tables (reduction 50%)
	// roster
	// transfers
}
