package core

import "thetis/internal/kg"

// CombinedSimilarity blends several entity similarities into one σ by
// weighted average — the paper's future-work direction of "using a
// combination of similarity measures in Thetis ... in a unified manner".
// Weights are normalized at construction; identical entities still score 1
// because every component satisfies σ(e, e) = 1.
type CombinedSimilarity struct {
	sims    []Similarity
	weights []float64
}

// NewCombinedSimilarity builds a weighted blend. Panics when the inputs are
// empty, mismatched, or the weights do not sum to a positive value —
// programming errors in configuration code.
func NewCombinedSimilarity(sims []Similarity, weights []float64) *CombinedSimilarity {
	if len(sims) == 0 || len(sims) != len(weights) {
		panic("core: combined similarity needs matching non-empty sims and weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("core: combined similarity weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("core: combined similarity weights must sum to a positive value")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &CombinedSimilarity{sims: sims, weights: norm}
}

// Score implements Similarity.
func (c *CombinedSimilarity) Score(a, b kg.EntityID) float64 {
	var s float64
	for i, sim := range c.sims {
		s += c.weights[i] * sim.Score(a, b)
	}
	return s
}
