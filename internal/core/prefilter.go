package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/lsh"
	"thetis/internal/obs"
	"thetis/internal/table"
)

// Prefilter metrics (see docs/OBSERVABILITY.md), cached as package handles.
var (
	mPrefilterQueries = obs.PrefilterQueriesTotal()
	mPrefilterProbes  = obs.PrefilterProbesTotal()
	mPrefilterVotes   = obs.PrefilterVotesTotal()
	mPrefilterCands   = obs.PrefilterCandidates()
	mPrefilterRed     = obs.PrefilterReduction()
)

// LSEIConfig parameterizes a Locality-Sensitive Entity Index (Section 6).
// The paper denotes configurations as (Vectors, BandSize) pairs, e.g.
// (32, 8), (128, 8), and the recommended (30, 10).
type LSEIConfig struct {
	// Vectors is the number of MinHash permutations (type index) or random
	// projections (embedding index).
	Vectors int
	// BandSize is the number of signature positions per band.
	BandSize int
	// FrequentTypeThreshold drops types occurring in more than this
	// fraction of tables before shingling (types index only). The paper
	// uses 0.5: "a type that describes more than half of the entities
	// cannot be really informative". Zero means the default 0.5.
	FrequentTypeThreshold float64
	// ColumnAggregation indexes one aggregated signature per table column
	// instead of one per entity (the space optimization of Section 6.2).
	ColumnAggregation bool
	// Seed fixes the random permutations/projections.
	Seed int64
}

// DefaultLSEIConfig returns the paper's recommended (30, 10) configuration.
func DefaultLSEIConfig() LSEIConfig {
	return LSEIConfig{Vectors: 30, BandSize: 10, FrequentTypeThreshold: 0.5, Seed: 1}
}

// maxVectors bounds the accepted signature length — far above the paper's
// largest configuration (128) but low enough to reject corrupt or absurd
// parameters before they drive huge allocations.
const maxVectors = 1 << 20

// Validate rejects configurations that would make index construction panic
// or behave nonsensically: a band size outside [1, Vectors] (the lsh.NewIndex
// panic), non-positive vector counts, or a frequent-type threshold outside
// [0, 1]. Callers deriving a config from flags or snapshot headers should
// validate before building.
func (cfg LSEIConfig) Validate() error {
	if cfg.Vectors < 1 || cfg.Vectors > maxVectors {
		return fmt.Errorf("core: LSEI vectors must be in [1, %d], got %d", maxVectors, cfg.Vectors)
	}
	if cfg.BandSize < 1 || cfg.BandSize > cfg.Vectors {
		return fmt.Errorf("core: LSEI band size must be in [1, vectors=%d], got %d", cfg.Vectors, cfg.BandSize)
	}
	if math.IsNaN(cfg.FrequentTypeThreshold) || cfg.FrequentTypeThreshold < 0 || cfg.FrequentTypeThreshold > 1 {
		return fmt.Errorf("core: frequent-type threshold must be in [0, 1], got %v", cfg.FrequentTypeThreshold)
	}
	return nil
}

// LSEI prefilters the table search space: querying it with the entities of
// a query returns the subset of tables worth scoring, cutting runtime by up
// to 17× in the paper without reducing NDCG.
type LSEI struct {
	cfg   LSEIConfig
	lake  *lake.Lake
	index *lsh.Index

	// Entity-level mode: items inserted into the LSH index are entity IDs;
	// tables are reached through the lake's posting lists.
	// Column-aggregation mode: items are dense column UIDs mapped to their
	// table by colTable; RemoveTable tombstones a UID's slot to -1 (UIDs are
	// never reused).
	columnMode bool
	colTable   []lake.TableID
	// colOf maps each column UID to its column number within its table —
	// what RemoveTable and filter resigning need to recompute the UID's
	// stored signature. Maintained alongside colTable on every insert; not
	// serialized (ensureColOf rebuilds it deterministically for
	// snapshot-loaded indexes).
	colOf []int32
	// indexed tracks which entities have signatures (entity mode), so
	// incremental AddTable only inserts new ones and RemoveTable knows what
	// to drop when an entity's last table disappears.
	indexed map[kg.EntityID]bool

	// Exactly one of the signature sources is set.
	minHash    *lsh.MinHasher
	typeFilter map[kg.TypeID]bool // frequent types to drop
	typeSets   *TypeJaccard

	hyper *lsh.HyperplaneHasher
	cos   *EmbeddingCosine
}

// BuildTypeLSEI indexes every distinct lake entity (or every table column)
// by the MinHash signature of its type-pair shingles.
func BuildTypeLSEI(l *lake.Lake, tj *TypeJaccard, cfg LSEIConfig) *LSEI {
	return BuildTypeLSEIFiltered(l, tj, cfg, nil)
}

// BuildTypeLSEIFiltered is BuildTypeLSEI with an injected frequent-type
// filter instead of one computed from l alone. Sharded deployments pass the
// filter computed over the whole corpus (FrequentTypesOver) so every
// shard's index drops exactly the types a global index would drop —
// signatures, and therefore LSH collisions, then match the unsharded
// system's bit for bit. A nil filter computes it from l (the single-lake
// behavior).
func BuildTypeLSEIFiltered(l *lake.Lake, tj *TypeJaccard, cfg LSEIConfig, filter map[kg.TypeID]bool) *LSEI {
	if cfg.FrequentTypeThreshold == 0 {
		cfg.FrequentTypeThreshold = 0.5
	}
	if filter == nil {
		filter = FrequentTypesOver([]*lake.Lake{l}, tj, cfg.FrequentTypeThreshold)
	}
	x := &LSEI{
		cfg:        cfg,
		lake:       l,
		index:      lsh.NewIndex(cfg.Vectors, cfg.BandSize),
		columnMode: cfg.ColumnAggregation,
		minHash:    lsh.NewMinHasher(cfg.Vectors, cfg.Seed),
		typeSets:   tj,
		typeFilter: filter,
	}
	if x.columnMode {
		x.buildTypeColumns()
	} else {
		x.indexed = make(map[kg.EntityID]bool)
		for _, e := range l.DistinctEntities() {
			x.insertEntity(e)
		}
	}
	return x
}

// BuildEmbeddingLSEI indexes every distinct lake entity (or every table
// column) by the hyperplane signature of its embedding. Entities without an
// embedding are skipped; their tables remain reachable through co-occurring
// entities.
func BuildEmbeddingLSEI(l *lake.Lake, ec *EmbeddingCosine, dim int, cfg LSEIConfig) *LSEI {
	x := &LSEI{
		cfg:        cfg,
		lake:       l,
		index:      lsh.NewIndex(cfg.Vectors, cfg.BandSize),
		columnMode: cfg.ColumnAggregation,
		hyper:      lsh.NewHyperplaneHasher(cfg.Vectors, dim, cfg.Seed),
		cos:        ec,
	}
	if x.columnMode {
		x.buildEmbeddingColumns()
	} else {
		x.indexed = make(map[kg.EntityID]bool)
		for _, e := range l.DistinctEntities() {
			x.insertEntity(e)
		}
	}
	return x
}

// insertEntity indexes one entity's signature (entity mode). Entities with
// no indexable representation are remembered but not inserted.
func (x *LSEI) insertEntity(e kg.EntityID) {
	if x.indexed[e] {
		return
	}
	x.indexed[e] = true
	if x.minHash != nil {
		sh := x.typeShingles([]kg.EntityID{e})
		if len(sh) == 0 {
			return
		}
		x.index.Insert(uint32(e), x.minHash.Signature(sh))
		return
	}
	if v := x.cos.Vector(e); v != nil {
		x.index.Insert(uint32(e), x.hyper.Signature(v))
	}
}

// AddTable incrementally indexes a table ingested after the LSEI was
// built, implementing the semantic-data-lake principle that new datasets
// are added effortlessly. In entity mode, only entities unseen so far get
// new signatures (known entities already reach the table through the
// lake's posting lists); in column-aggregation mode, the table's columns
// are appended. Signatures use the current frequent-type filter — callers
// maintaining exact rebuild equivalence update the shared filter first
// (TypeFilterState resigns affected items), batch callers keep the built
// filter as an approximation. Not safe to call concurrently with
// Candidates.
func (x *LSEI) AddTable(tid lake.TableID) {
	t := x.lake.Table(tid)
	if t == nil {
		return
	}
	if !x.columnMode {
		for _, e := range t.Entities() {
			x.insertEntity(e)
		}
		return
	}
	x.ensureColOf()
	for j := 0; j < t.NumColumns(); j++ {
		ents := t.ColumnEntities(j)
		if len(ents) == 0 {
			continue
		}
		var sig []uint32
		if x.minHash != nil {
			sig = x.minHash.Signature(x.typeShingles(ents))
		} else {
			sig = x.groupSignature(ents)
			if sig == nil {
				continue
			}
		}
		x.index.Insert(uint32(len(x.colTable)), sig)
		x.colTable = append(x.colTable, tid)
		x.colOf = append(x.colOf, int32(j))
	}
}

// RemoveTable unindexes a table that was just removed from the lake. The
// caller passes the detached *table.Table (the lake slot is already nil).
// In entity mode, entities whose last table disappeared are dropped from
// the index — the stored signature is recomputed (signatures are
// deterministic in the entity's types/embedding and the current filter, so
// nothing extra needs storing) and removed bucket by bucket. In
// column-aggregation mode the table's column UIDs are removed and their
// colTable slots tombstoned to -1. Must be called before any filter update
// for this removal (signatures are recomputed under the filter they were
// inserted with). Not safe to call concurrently with Candidates.
func (x *LSEI) RemoveTable(tid lake.TableID, t *table.Table) {
	if t == nil {
		return
	}
	if !x.columnMode {
		for _, e := range t.Entities() {
			if x.lake.EntityFrequency(e) != 0 || !x.indexed[e] {
				continue
			}
			if sig := x.entitySignature(e); sig != nil {
				x.index.Remove(uint32(e), sig)
			}
			delete(x.indexed, e)
		}
		return
	}
	x.ensureColOf()
	for uid, owner := range x.colTable {
		if owner != tid {
			continue
		}
		ents := t.ColumnEntities(int(x.colOf[uid]))
		var sig []uint32
		if x.minHash != nil {
			sig = x.minHash.Signature(x.typeShingles(ents))
		} else {
			sig = x.groupSignature(ents)
		}
		if sig != nil {
			x.index.Remove(uint32(uid), sig)
		}
		x.colTable[uid] = -1
		x.colOf[uid] = -1
	}
}

// columnIndexed reports whether column j of t gets a signature at build
// time — the predicate behind ensureColOf's deterministic replay of the
// build walk.
func (x *LSEI) columnIndexed(t *table.Table, j int) bool {
	ents := t.ColumnEntities(j)
	if len(ents) == 0 {
		return false
	}
	if x.minHash != nil {
		return true
	}
	for _, e := range ents {
		if x.cos.Vector(e) != nil {
			return true
		}
	}
	return false
}

// ensureColOf reconstructs colOf for a snapshot-loaded column-mode index
// (the snapshot format stores colTable only). UIDs were assigned by
// walking tables in ID order and columns in position order, skipping
// columns that produce no signature, so pairing each table's UIDs with its
// indexable columns in order recovers the mapping exactly.
func (x *LSEI) ensureColOf() {
	if !x.columnMode || len(x.colOf) == len(x.colTable) {
		return
	}
	x.colOf = make([]int32, len(x.colTable))
	next := make(map[lake.TableID]int)
	for uid, tid := range x.colTable {
		if tid < 0 {
			x.colOf[uid] = -1
			continue
		}
		t := x.lake.Table(tid)
		j := next[tid]
		for t != nil && j < t.NumColumns() && !x.columnIndexed(t, j) {
			j++
		}
		x.colOf[uid] = int32(j)
		next[tid] = j + 1
	}
}

// removeForResign pulls every item whose signature involves one of the
// flipped types out of the LSH index, under the current (pre-toggle)
// filter, and returns the affected item IDs so reinsert can put them back
// once the shared filter map has been toggled. Embedding-mode indexes have
// no type filter and return nil. See TypeFilterState.
func (x *LSEI) removeForResign(flips []kg.TypeID) []uint32 {
	if x.minHash == nil || len(flips) == 0 {
		return nil
	}
	fl := make(map[kg.TypeID]bool, len(flips))
	for _, ty := range flips {
		fl[ty] = true
	}
	var out []uint32
	if !x.columnMode {
		for e := range x.indexed {
			if !x.typesIntersect(e, fl) {
				continue
			}
			if sig := x.entitySignature(e); sig != nil {
				x.index.Remove(uint32(e), sig)
			}
			delete(x.indexed, e)
			out = append(out, uint32(e))
		}
		return out
	}
	x.ensureColOf()
	for uid, tid := range x.colTable {
		if tid < 0 {
			continue
		}
		ents := x.lake.Table(tid).ColumnEntities(int(x.colOf[uid]))
		hit := false
		for _, e := range ents {
			if x.typesIntersect(e, fl) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		x.index.Remove(uint32(uid), x.minHash.Signature(x.typeShingles(ents)))
		out = append(out, uint32(uid))
	}
	return out
}

// reinsert restores items removed by removeForResign, computing fresh
// signatures under the (now toggled) filter.
func (x *LSEI) reinsert(items []uint32) {
	if x.minHash == nil {
		return
	}
	if !x.columnMode {
		for _, it := range items {
			x.insertEntity(kg.EntityID(it))
		}
		return
	}
	for _, uid := range items {
		tid := x.colTable[uid]
		if tid < 0 {
			continue
		}
		ents := x.lake.Table(tid).ColumnEntities(int(x.colOf[uid]))
		x.index.Insert(uid, x.minHash.Signature(x.typeShingles(ents)))
	}
}

// typesIntersect reports whether e's type set contains any flipped type.
func (x *LSEI) typesIntersect(e kg.EntityID, flips map[kg.TypeID]bool) bool {
	for _, ty := range x.typeSets.TypeSet(e) {
		if flips[ty] {
			return true
		}
	}
	return false
}

// FrequentTypesOver returns the types present in more than threshold of
// all tables across the given lakes (computed over expanded type sets).
// Since lakes partition disjoint table sets, counting across several lakes
// equals counting over their union — this is how sharded deployments derive
// the one global filter shared by every shard's LSEI.
func FrequentTypesOver(lakes []*lake.Lake, tj *TypeJaccard, threshold float64) map[kg.TypeID]bool {
	tableCount := make(map[kg.TypeID]int)
	total := 0
	for _, l := range lakes {
		total += l.NumTables()
		for _, t := range l.Tables() {
			if t == nil {
				continue
			}
			seen := make(map[kg.TypeID]bool)
			for _, e := range t.Entities() {
				for _, ty := range tj.TypeSet(e) {
					seen[ty] = true
				}
			}
			for ty := range seen {
				tableCount[ty]++
			}
		}
	}
	limit := threshold * float64(total)
	out := make(map[kg.TypeID]bool)
	for ty, c := range tableCount {
		if float64(c) > limit {
			out[ty] = true
		}
	}
	return out
}

// typeShingles merges the filtered type sets of the given entities and
// shingles them pairwise. Entities repeating an already-merged interned
// type set (TypeJaccard.SetID) are skipped: shingling deduplicates types
// anyway, so dropping whole duplicate sets changes nothing in the shingle
// set while column aggregation over skewed corpora merges far fewer
// elements.
func (x *LSEI) typeShingles(ents []kg.EntityID) []uint64 {
	var merged []uint32
	var seenSets map[int32]bool
	if len(ents) > 1 {
		seenSets = make(map[int32]bool, len(ents))
	}
	for _, e := range ents {
		if seenSets != nil {
			id := x.typeSets.SetID(e)
			if id >= 0 {
				if seenSets[id] {
					continue
				}
				seenSets[id] = true
			}
		}
		for _, ty := range x.typeSets.TypeSet(e) {
			if !x.typeFilter[ty] {
				merged = append(merged, uint32(ty))
			}
		}
	}
	return lsh.TypePairShingles(merged)
}

func (x *LSEI) buildTypeColumns() {
	for tid, t := range x.lake.Tables() {
		if t == nil {
			continue
		}
		for j := 0; j < t.NumColumns(); j++ {
			ents := t.ColumnEntities(j)
			if len(ents) == 0 {
				continue
			}
			sig := x.minHash.Signature(x.typeShingles(ents))
			x.index.Insert(uint32(len(x.colTable)), sig)
			x.colTable = append(x.colTable, lake.TableID(tid))
			x.colOf = append(x.colOf, int32(j))
		}
	}
}

func (x *LSEI) buildEmbeddingColumns() {
	for tid, t := range x.lake.Tables() {
		if t == nil {
			continue
		}
		for j := 0; j < t.NumColumns(); j++ {
			var vecs []embedding.Vector
			for _, e := range t.ColumnEntities(j) {
				if v := x.cos.Vector(e); v != nil {
					vecs = append(vecs, v)
				}
			}
			if len(vecs) == 0 {
				continue
			}
			sig := x.hyper.Signature(embedding.Mean(vecs))
			x.index.Insert(uint32(len(x.colTable)), sig)
			x.colTable = append(x.colTable, lake.TableID(tid))
			x.colOf = append(x.colOf, int32(j))
		}
	}
}

// entitySignature computes the probe signature for one query entity, or
// nil when the entity has no indexable representation.
func (x *LSEI) entitySignature(e kg.EntityID) []uint32 {
	if x.minHash != nil {
		sh := x.typeShingles([]kg.EntityID{e})
		if len(sh) == 0 {
			return nil
		}
		return x.minHash.Signature(sh)
	}
	v := x.cos.Vector(e)
	if v == nil {
		return nil
	}
	return x.hyper.Signature(v)
}

// probeTally accumulates the work of one Candidates call: per-stage wall
// durations and the probe/vote counts that feed the trace and /metrics.
type probeTally struct {
	probeWall time.Duration
	voteWall  time.Duration
	probes    int // signatures probed against the index
	votesCast int // table votes before thresholding
}

// probeVote probes the index with one signature, lets colliding entities
// (or columns) vote for their tables, and merges vote-surviving tables into
// out, splitting the spent time into the tally's probe and vote stages.
// The band probes underneath honor ctx (see lsh.Index.QuerySetContext).
func (x *LSEI) probeVote(ctx context.Context, sig []uint32, votes int, out map[lake.TableID]bool, tally *probeTally) {
	probeStart := time.Now()
	tally.probes++
	bag := make(map[lake.TableID]int)
	if x.columnMode {
		for col := range x.index.QuerySetContext(ctx, sig) {
			if tid := x.colTable[col]; tid >= 0 {
				bag[tid]++
			}
		}
	} else {
		for item := range x.index.QuerySetContext(ctx, sig) {
			for _, tid := range x.lake.TablesWith(kg.EntityID(item)) {
				bag[tid]++
			}
		}
	}
	voteStart := time.Now()
	tally.probeWall += voteStart.Sub(probeStart)
	for tid, n := range bag {
		tally.votesCast += n
		if n >= votes {
			out[tid] = true
		}
	}
	tally.voteWall += time.Since(voteStart)
}

// finish sorts the candidate set, records the tally on the trace (probe and
// vote stages) and the prefilter metrics, and returns the sorted IDs.
func (x *LSEI) finish(out map[lake.TableID]bool, tally probeTally, tr *obs.Trace) []lake.TableID {
	ids := make([]lake.TableID, 0, len(out))
	for tid := range out {
		ids = append(ids, tid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	mPrefilterQueries.Inc()
	mPrefilterProbes.Add(int64(tally.probes))
	mPrefilterVotes.Add(int64(tally.votesCast))
	mPrefilterCands.Observe(float64(len(ids)))
	mPrefilterRed.Set(x.Reduction(ids))
	tr.Add(obs.Stage{Name: "probe", Wall: tally.probeWall, Items: tally.probes})
	tr.Add(obs.Stage{Name: "vote", Wall: tally.voteWall, Items: len(ids)})
	return ids
}

// Candidates returns the prefiltered table set for a query: each query
// entity probes the index, colliding entities (or columns) vote for their
// tables, and tables reaching the vote threshold for at least one query
// entity survive. votes <= 1 disables voting. The result is sorted by
// table ID.
func (x *LSEI) Candidates(q Query, votes int) []lake.TableID {
	return x.CandidatesTracedContext(context.Background(), q, votes, nil)
}

// CandidatesTraced is Candidates recording the prefilter's probe and vote
// stages onto tr (nil tr skips tracing; metrics are always updated).
func (x *LSEI) CandidatesTraced(q Query, votes int, tr *obs.Trace) []lake.TableID {
	return x.CandidatesTracedContext(context.Background(), q, votes, tr)
}

// CandidatesTracedContext is CandidatesTraced honoring cancellation: the
// probe/vote loop checks ctx between query entities (and between band
// probes underneath), so a dead context returns the candidates gathered so
// far. Callers detect the cutoff via ctx.Err(); the downstream scoring
// phase bails out immediately anyway and marks its Stats.Truncated.
func (x *LSEI) CandidatesTracedContext(ctx context.Context, q Query, votes int, tr *obs.Trace) []lake.TableID {
	if votes < 1 {
		votes = 1
	}
	stop := newCancelProbe(ctx)
	out := make(map[lake.TableID]bool)
	var tally probeTally
	for _, e := range q.DistinctEntities() {
		if stop.expired() {
			return x.finish(out, tally, tr)
		}
		sig := x.entitySignature(e)
		if sig == nil {
			continue
		}
		x.probeVote(ctx, sig, votes, out, &tally)
	}
	return x.finish(out, tally, tr)
}

// CandidatesAggregated is Candidates with query-side column aggregation
// (the final optimization of Section 6.2): the entities at each tuple
// position are merged into one probe signature — a merged type set, or a
// mean embedding — so a multi-tuple query costs as many LSH lookups as a
// 1-tuple query, trading a further approximation for lookup cost.
func (x *LSEI) CandidatesAggregated(q Query, votes int) []lake.TableID {
	if votes < 1 {
		votes = 1
	}
	width := 0
	for _, t := range q {
		if len(t) > width {
			width = len(t)
		}
	}
	out := make(map[lake.TableID]bool)
	var tally probeTally
	for col := 0; col < width; col++ {
		var ents []kg.EntityID
		for _, t := range q {
			if col < len(t) {
				ents = append(ents, t[col])
			}
		}
		sig := x.groupSignature(ents)
		if sig == nil {
			continue
		}
		x.probeVote(context.Background(), sig, votes, out, &tally)
	}
	return x.finish(out, tally, nil)
}

// groupSignature computes one probe signature for a group of entities:
// merged type shingles, or the mean of available embeddings.
func (x *LSEI) groupSignature(ents []kg.EntityID) []uint32 {
	if x.minHash != nil {
		sh := x.typeShingles(ents)
		if len(sh) == 0 {
			return nil
		}
		return x.minHash.Signature(sh)
	}
	var vecs []embedding.Vector
	for _, e := range ents {
		if v := x.cos.Vector(e); v != nil {
			vecs = append(vecs, v)
		}
	}
	m := embedding.Mean(vecs)
	if m == nil {
		return nil
	}
	return x.hyper.Signature(m)
}

// Reduction returns the search-space reduction achieved by a candidate set
// against the full lake, the metric of Table 4 (e.g. 0.886 = 88.6%).
func (x *LSEI) Reduction(candidates []lake.TableID) float64 {
	n := x.lake.NumTables()
	if n == 0 {
		return 0
	}
	return 1 - float64(len(candidates))/float64(n)
}

// NumBuckets exposes the underlying index's bucket count (diagnostics).
func (x *LSEI) NumBuckets() int { return x.index.NumBuckets() }

// NumItems exposes how many signatures the underlying index holds
// (entities in entity mode, columns in column-aggregation mode) —
// diagnostics for spotting imbalanced shards.
func (x *LSEI) NumItems() int { return x.index.NumItems() }

// Config returns the configuration the index was built or loaded with.
func (x *LSEI) Config() LSEIConfig { return x.cfg }

// TypeFilter returns the frequent-type filter map the index's signatures
// were computed under (nil-or-empty for embedding mode). It is the live
// instance, not a copy: ResumeTypeFilterState adopts it after a snapshot
// load so later mutations can keep filter and signatures in lockstep.
func (x *LSEI) TypeFilter() map[kg.TypeID]bool { return x.typeFilter }
