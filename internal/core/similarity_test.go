package core

import (
	"math"
	"testing"

	"thetis/internal/embedding"
	"thetis/internal/kg"
)

// fixtureGraph builds a small sports KG with a taxonomy:
//
//	Thing ── Agent ── Person ── Athlete ── {BaseballPlayer, VolleyballPlayer}
//	              └── Organisation ── SportsTeam ── {BaseballTeam, VolleyballTeam}
//	Thing ── Place ── City
func fixtureGraph() *kg.Graph {
	g := kg.NewGraph()
	thing := g.AddType("Thing", "")
	agent := g.AddType("Agent", "")
	person := g.AddType("Person", "")
	athlete := g.AddType("Athlete", "")
	bp := g.AddType("BaseballPlayer", "")
	vp := g.AddType("VolleyballPlayer", "")
	org := g.AddType("Organisation", "")
	st := g.AddType("SportsTeam", "")
	bt := g.AddType("BaseballTeam", "")
	vt := g.AddType("VolleyballTeam", "")
	place := g.AddType("Place", "")
	city := g.AddType("City", "")
	g.AddSubtype(agent, thing)
	g.AddSubtype(person, agent)
	g.AddSubtype(athlete, person)
	g.AddSubtype(bp, athlete)
	g.AddSubtype(vp, athlete)
	g.AddSubtype(org, agent)
	g.AddSubtype(st, org)
	g.AddSubtype(bt, st)
	g.AddSubtype(vt, st)
	g.AddSubtype(place, thing)
	g.AddSubtype(city, place)

	addTyped := func(uri, label string, t kg.TypeID) kg.EntityID {
		e := g.AddEntity(uri, label)
		g.AssignType(e, t)
		return e
	}
	addTyped("santo", "Ron Santo", bp)
	addTyped("stetter", "Mitch Stetter", bp)
	addTyped("volley1", "Vera Volley", vp)
	addTyped("cubs", "Chicago Cubs", bt)
	addTyped("brewers", "Milwaukee Brewers", bt)
	addTyped("volleyteam", "Smash City", vt)
	addTyped("chicago", "Chicago", city)
	addTyped("milwaukee", "Milwaukee", city)

	team := g.AddPredicate("team")
	cityOf := g.AddPredicate("city")
	mustLookup := func(uri string) kg.EntityID {
		e, ok := g.Lookup(uri)
		if !ok {
			panic(uri)
		}
		return e
	}
	g.AddEdge(mustLookup("santo"), team, mustLookup("cubs"))
	g.AddEdge(mustLookup("stetter"), team, mustLookup("brewers"))
	g.AddEdge(mustLookup("volley1"), team, mustLookup("volleyteam"))
	g.AddEdge(mustLookup("cubs"), cityOf, mustLookup("chicago"))
	g.AddEdge(mustLookup("brewers"), cityOf, mustLookup("milwaukee"))
	return g
}

func ent(t testing.TB, g *kg.Graph, uri string) kg.EntityID {
	t.Helper()
	e, ok := g.Lookup(uri)
	if !ok {
		t.Fatalf("fixture entity %q missing", uri)
	}
	return e
}

func TestTypeJaccardIdentity(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	santo := ent(t, g, "santo")
	if got := tj.Score(santo, santo); got != 1 {
		t.Errorf("σ(e,e) = %v, want 1", got)
	}
}

func TestTypeJaccardCapAt95(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	santo, stetter := ent(t, g, "santo"), ent(t, g, "stetter")
	got := tj.Score(santo, stetter)
	if got != MaxJaccard {
		t.Errorf("σ(two baseball players) = %v, want cap %v", got, MaxJaccard)
	}
}

func TestTypeJaccardOrdering(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	santo := ent(t, g, "santo")
	volley := ent(t, g, "volley1")
	cubs := ent(t, g, "cubs")
	chicago := ent(t, g, "chicago")
	// A volleyball player shares Athlete..Thing with a baseball player;
	// a city shares only Thing.
	samePos := tj.Score(santo, volley)
	diffDomain := tj.Score(santo, chicago)
	if !(samePos > diffDomain) {
		t.Errorf("σ(player,player')=%v should exceed σ(player,city)=%v", samePos, diffDomain)
	}
	if team := tj.Score(santo, cubs); !(samePos > team) {
		t.Errorf("σ(player,player')=%v should exceed σ(player,team)=%v", samePos, team)
	}
	if diffDomain <= 0 {
		t.Errorf("entities sharing Thing should have σ>0, got %v", diffDomain)
	}
}

func TestTypeJaccardSymmetric(t *testing.T) {
	g := fixtureGraph()
	tj := NewTypeJaccard(g)
	a, b := ent(t, g, "santo"), ent(t, g, "chicago")
	if tj.Score(a, b) != tj.Score(b, a) {
		t.Error("type Jaccard not symmetric")
	}
}

func TestTypeJaccardUntypedEntity(t *testing.T) {
	g := fixtureGraph()
	bare := g.AddEntity("bare", "")
	tj := NewTypeJaccard(g)
	if got := tj.Score(bare, ent(t, g, "santo")); got != 0 {
		t.Errorf("σ(untyped, typed) = %v, want 0", got)
	}
	if got := tj.Score(bare, bare); got != 1 {
		t.Errorf("σ(untyped, itself) = %v, want 1", got)
	}
}

func TestEmbeddingCosineClampsAndIdentity(t *testing.T) {
	g := fixtureGraph()
	store := embedding.NewStore(g.NumEntities(), 2)
	a, b, c := ent(t, g, "santo"), ent(t, g, "stetter"), ent(t, g, "volley1")
	store.Set(a, embedding.Vector{1, 0})
	store.Set(b, embedding.Vector{1, 0.1})
	store.Set(c, embedding.Vector{-1, 0})
	ec := NewEmbeddingCosine(g, store)
	if got := ec.Score(a, a); got != 1 {
		t.Errorf("σ(e,e) = %v", got)
	}
	if got := ec.Score(a, b); got < 0.9 || got > 1 {
		t.Errorf("σ(near) = %v, want ~0.995", got)
	}
	if got := ec.Score(a, c); got != 0 {
		t.Errorf("σ(opposite) = %v, want clamped 0", got)
	}
	// Missing embedding -> 0 (but identity still 1).
	missing := ent(t, g, "cubs")
	if got := ec.Score(a, missing); got != 0 {
		t.Errorf("σ(has, missing) = %v, want 0", got)
	}
	if got := ec.Score(missing, missing); got != 1 {
		t.Errorf("σ(missing, itself) = %v, want 1", got)
	}
}

func TestEmbeddingCosineVectorNormalized(t *testing.T) {
	g := fixtureGraph()
	store := embedding.NewStore(g.NumEntities(), 2)
	a := ent(t, g, "santo")
	store.Set(a, embedding.Vector{3, 4})
	ec := NewEmbeddingCosine(g, store)
	v := ec.Vector(a)
	if math.Abs(embedding.Norm(v)-1) > 1e-6 {
		t.Errorf("stored vector not normalized: |v| = %v", embedding.Norm(v))
	}
	if ec.Vector(kg.EntityID(10_000)) != nil {
		t.Error("out-of-range Vector should be nil")
	}
}
