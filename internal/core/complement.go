package core

// Complement merges two ranked result lists into one of length at most k by
// taking the top half of each and interleaving them (first list first,
// duplicates dropped). This is the STSTC/STSEC combination of Section 7.2:
// complementing exact keyword matching (BM25) with semantic table search
// "combines the best of both worlds". When one list runs short, the other
// fills the remaining slots.
func Complement(a, b []int, k int) []int {
	if k < 0 {
		k = len(a) + len(b)
	}
	half := (k + 1) / 2
	takeA, takeB := half, half
	if takeA > len(a) {
		takeA = len(a)
	}
	if takeB > len(b) {
		takeB = len(b)
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	push := func(id int) bool {
		if len(out) >= k || seen[id] {
			return len(out) < k
		}
		seen[id] = true
		out = append(out, id)
		return true
	}
	for i := 0; i < takeA || i < takeB; i++ {
		if i < takeA {
			push(a[i])
		}
		if i < takeB {
			push(b[i])
		}
	}
	// Fill remaining slots from the tails, preferring list a.
	for i := takeA; i < len(a) && len(out) < k; i++ {
		push(a[i])
	}
	for i := takeB; i < len(b) && len(out) < k; i++ {
		push(b[i])
	}
	return out
}
