package core

import (
	"math"
	"sync"
	"sync/atomic"

	"thetis/internal/kg"
)

// Query-scoped σ memoization. One SearchContext call evaluates σ(q_e, e)
// for every (query entity, cell entity) pair reached by its candidate
// tables; corpus entities are heavily skewed, so the same pair recurs
// thousands of times across candidates. A SigmaCache scores each distinct
// pair exactly once per query and shares the result across all scoring
// workers — the memoization layer the paper's runtime analysis (Section
// 7.3, "dominated by pairwise entity similarity") motivates.

const (
	// sigmaUnset marks an empty dense cache cell. The bit pattern is a
	// quiet NaN that no Similarity returns; if one ever did, that pair
	// would merely be recomputed on every lookup, never served wrong.
	sigmaUnset = ^uint64(0)

	// maxSigmaDenseBytes caps the dense cache footprint per query
	// (distinct query entities × corpus entity space × 8 bytes). Above
	// it the cache switches to sharded maps, trading the lock-free dense
	// lookup for memory proportional to the pairs actually touched.
	maxSigmaDenseBytes = 64 << 20

	// sigmaShards is the shard count of the map-backed cache. Shards are
	// picked by a multiplicative hash of the corpus entity ID, so workers
	// scoring different tables rarely contend on one mutex.
	sigmaShards = 64
)

// SigmaCache memoizes a Similarity over the cross product of one query's
// distinct entities and the corpus entity ID space. It is created per
// query (query-scoped), shared by all scoring workers of that query, and
// discarded with it — no invalidation, since σ is deterministic and
// immutable for the life of a search.
//
// Representation: each distinct query entity owns a slot; small corpora
// get one dense float64-bits slab per slot, addressed by corpus entity ID
// and updated with lock-free atomics (racing workers write the same bits,
// so the last write is as good as the first). When the dense footprint
// would exceed 64 MiB, slots share 64 mutex-guarded map shards instead.
//
// A SigmaCache is safe for concurrent use.
type SigmaCache struct {
	sim      Similarity
	entities []kg.EntityID       // distinct query entities, by slot
	slotOf   map[kg.EntityID]int // entity -> slot
	n        int                 // corpus entity ID space

	dense  [][]uint64 // per-slot slabs (dense mode), nil in sharded mode
	shards []sigmaShard

	hits, misses atomic.Int64
}

type sigmaShard struct {
	mu sync.Mutex
	m  map[uint64]float64
}

// NewSigmaCache builds a cache for the distinct entities of q over a
// corpus ID space of numEntities (typically Graph.NumEntities), evaluating
// sim on each first lookup. Engine wires one up per search automatically;
// construct one directly only to introspect hit rates or to memoize a σ
// outside the engine.
func NewSigmaCache(q Query, sim Similarity, numEntities int) *SigmaCache {
	distinct := q.DistinctEntities()
	c := &SigmaCache{
		sim:      sim,
		entities: distinct,
		slotOf:   make(map[kg.EntityID]int, len(distinct)),
		n:        numEntities,
	}
	for i, e := range distinct {
		c.slotOf[e] = i
	}
	if int64(len(distinct))*int64(numEntities)*8 <= maxSigmaDenseBytes {
		c.dense = make([][]uint64, len(distinct))
		for i := range c.dense {
			slab := make([]uint64, numEntities)
			for j := range slab {
				slab[j] = sigmaUnset
			}
			c.dense[i] = slab
		}
	} else {
		c.shards = make([]sigmaShard, sigmaShards)
		for i := range c.shards {
			c.shards[i].m = make(map[uint64]float64)
		}
	}
	return c
}

// NewBatchSigmaCache builds one cache covering the union of the distinct
// entities of every query in the batch — the batch scope of
// docs/THROUGHPUT.md. Slots follow first-occurrence order across the
// queries in batch order, so any query of the batch can share the cache
// through scorer slot remapping (Slot resolves its entities). Memoized σ
// values are identical whichever query triggered them, so sharing the
// cache across the batch cannot change any query's results. The dense/
// sharded representation switch applies to the union footprint, so large
// batches degrade to sharded maps exactly like large single queries.
func NewBatchSigmaCache(queries []Query, sim Similarity, numEntities int) *SigmaCache {
	var union Query
	for _, q := range queries {
		union = append(union, q...)
	}
	return NewSigmaCache(union, sim, numEntities)
}

// NumSlots returns the number of distinct query entities the cache covers.
func (c *SigmaCache) NumSlots() int { return len(c.entities) }

// Slot returns the slot index of query entity e, or false when e is not a
// distinct entity of the cache's query. Slots follow the first-occurrence
// order of Query.DistinctEntities.
func (c *SigmaCache) Slot(e kg.EntityID) (int, bool) {
	i, ok := c.slotOf[e]
	return i, ok
}

// Dense reports whether the cache runs in dense (lock-free slab) mode, as
// opposed to sharded-map mode.
func (c *SigmaCache) Dense() bool { return c.dense != nil }

// shard maps a (slot, entity) key to its map shard by a multiplicative
// hash of the entity ID (Fibonacci hashing), spreading corpus entities
// that arrive in dense ID order across shards.
func (c *SigmaCache) shard(key uint64) *sigmaShard {
	return &c.shards[(key*0x9E3779B97F4A7C15)>>58&(sigmaShards-1)]
}

// lookup returns the memoized σ for (slot, target), if present. It does
// not touch the hit/miss counters — the scorer hot path batches those
// locally and merges them via addCounts to avoid cross-worker contention.
func (c *SigmaCache) lookup(slot int, target uint32) (float64, bool) {
	if c.dense != nil {
		if int(target) >= c.n {
			return 0, false
		}
		bits := atomic.LoadUint64(&c.dense[slot][target])
		if bits == sigmaUnset {
			return 0, false
		}
		return math.Float64frombits(bits), true
	}
	key := uint64(slot)<<32 | uint64(target)
	sh := c.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	sh.mu.Unlock()
	return v, ok
}

// store memoizes σ for (slot, target). Racing stores write identical bits
// (σ is deterministic), so no compare-and-swap is needed.
func (c *SigmaCache) store(slot int, target uint32, v float64) {
	if c.dense != nil {
		if int(target) >= c.n {
			return
		}
		atomic.StoreUint64(&c.dense[slot][target], math.Float64bits(v))
		return
	}
	key := uint64(slot)<<32 | uint64(target)
	sh := c.shard(key)
	sh.mu.Lock()
	sh.m[key] = v
	sh.mu.Unlock()
}

// Sigma returns σ(query entity of slot, target), computing and memoizing
// it on first use. Unlike the engine-internal path it counts every hit and
// miss on the cache's shared counters, which Stats exposes — the
// introspection entry point shown in the package example.
func (c *SigmaCache) Sigma(slot int, target kg.EntityID) float64 {
	if v, ok := c.lookup(slot, uint32(target)); ok {
		c.hits.Add(1)
		return v
	}
	v := c.sim.Score(c.entities[slot], target)
	c.store(slot, uint32(target), v)
	c.misses.Add(1)
	return v
}

// addCounts merges externally batched hit/miss tallies (the engine's
// per-worker counters) into the cache's totals.
func (c *SigmaCache) addCounts(hits, misses int64) {
	if hits != 0 {
		c.hits.Add(hits)
	}
	if misses != 0 {
		c.misses.Add(misses)
	}
}

// SigmaCacheStats is a point-in-time snapshot of a cache's effectiveness.
type SigmaCacheStats struct {
	// Hits and Misses count lookups served from and filled into the
	// cache. Under concurrent workers Misses can slightly exceed the
	// number of distinct pairs: two workers may race to fill the same
	// cell, each counting one miss while storing identical values.
	Hits, Misses int64
	// Entries is the number of memoized (query entity, corpus entity)
	// pairs currently stored.
	Entries int64
	// Slots is the number of distinct query entities covered.
	Slots int
	// Dense reports the representation (true = lock-free dense slabs,
	// false = sharded maps).
	Dense bool
	// MemoryBytes is the reserved cache memory: the full slab footprint
	// in dense mode, the entry footprint in sharded mode.
	MemoryBytes int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s SigmaCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache. Entry counting scans the dense slabs, so call
// it for introspection, not per lookup.
func (c *SigmaCache) Stats() SigmaCacheStats {
	st := SigmaCacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Slots:  len(c.entities),
		Dense:  c.dense != nil,
	}
	if c.dense != nil {
		for _, slab := range c.dense {
			for i := range slab {
				if atomic.LoadUint64(&slab[i]) != sigmaUnset {
					st.Entries++
				}
			}
		}
		st.MemoryBytes = int64(len(c.dense)) * int64(c.n) * 8
	} else {
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			st.Entries += int64(len(sh.m))
			sh.mu.Unlock()
		}
		st.MemoryBytes = st.Entries * 16
	}
	return st
}

// MemoryBytes returns the reserved cache memory without scanning (dense
// mode reserves its full footprint up front; sharded mode grows with use,
// so this reports the current entry estimate).
func (c *SigmaCache) MemoryBytes() int64 {
	if c.dense != nil {
		return int64(len(c.dense)) * int64(c.n) * 8
	}
	var entries int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return entries * 16
}
