package core

// CrossCache unit battery (docs/THROUGHPUT.md): tag-checked lookups
// (epoch bumps and flushes invalidate lazily), bounded memory under the
// clock sweep, and data-race freedom under concurrent mixed load.

import (
	"fmt"
	"sync"
	"testing"

	"thetis/internal/kg"
)

func TestCrossCachePutGetEpochs(t *testing.T) {
	c := NewCrossCache(1 << 20)
	c.SetEpoch(7)
	c.Put(kg.EntityID(1), 2, 0.5)
	if v, ok := c.Get(kg.EntityID(1), 2); !ok || v != 0.5 {
		t.Fatalf("Get after Put = (%v, %v), want (0.5, true)", v, ok)
	}
	if _, ok := c.Get(kg.EntityID(1), 3); ok {
		t.Fatal("Get of an absent pair hit")
	}

	// Epoch bump: the old entry must lazily invalidate, and a re-Put under
	// the new epoch must hit again.
	c.SetEpoch(8)
	if _, ok := c.Get(kg.EntityID(1), 2); ok {
		t.Fatal("entry from epoch 7 still served after SetEpoch(8)")
	}
	c.Put(kg.EntityID(1), 2, 0.25)
	if v, ok := c.Get(kg.EntityID(1), 2); !ok || v != 0.25 {
		t.Fatalf("Get after epoch-8 Put = (%v, %v), want (0.25, true)", v, ok)
	}

	// Flush invalidates without touching the epoch — same-epoch entries
	// must not resurrect (the σ function may have changed).
	c.Flush()
	if _, ok := c.Get(kg.EntityID(1), 2); ok {
		t.Fatal("entry served after Flush")
	}
	if got := c.Epoch(); got != 8 {
		t.Fatalf("Flush changed the epoch: %d", got)
	}
	c.Put(kg.EntityID(1), 2, 0.75)
	if v, ok := c.Get(kg.EntityID(1), 2); !ok || v != 0.75 {
		t.Fatalf("Get after post-Flush Put = (%v, %v), want (0.75, true)", v, ok)
	}

	// In-place overwrite: a Put on an existing key updates the value
	// without growing the cache.
	entries := c.Stats().Entries
	c.Put(kg.EntityID(1), 2, 0.125)
	if v, _ := c.Get(kg.EntityID(1), 2); v != 0.125 {
		t.Fatalf("overwrite not visible: %v", v)
	}
	if got := c.Stats().Entries; got != entries {
		t.Fatalf("overwrite grew the cache: %d -> %d entries", entries, got)
	}
}

func TestCrossCacheEvictionBounds(t *testing.T) {
	// Capacity for 4 entries per shard (64 B each, 64 shards).
	capacity := int64(4 * crossEntryBytes * crossShards)
	c := NewCrossCache(capacity)
	c.SetEpoch(1)
	const n = 10000
	for i := 0; i < n; i++ {
		c.Put(kg.EntityID(uint32(i)), uint32(i), float64(i))
	}
	st := c.Stats()
	if st.Entries > 4*crossShards {
		t.Fatalf("cache holds %d entries, cap is %d", st.Entries, 4*crossShards)
	}
	if st.MemoryBytes > st.CapacityBytes {
		t.Fatalf("MemoryBytes %d exceeds CapacityBytes %d", st.MemoryBytes, st.CapacityBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("%d inserts into a %d-entry cache evicted nothing", n, 4*crossShards)
	}
	// The cache must stay functional after heavy eviction.
	c.Put(kg.EntityID(1), 42, 0.5)
	if v, ok := c.Get(kg.EntityID(1), 42); !ok || v != 0.5 {
		t.Fatalf("Get after eviction churn = (%v, %v), want (0.5, true)", v, ok)
	}
}

func TestCrossCacheMinimumCapacity(t *testing.T) {
	// Even an absurdly small budget must yield a working (1-entry-per-
	// shard) cache rather than a panic or a cache that can never store.
	c := NewCrossCache(1)
	c.SetEpoch(1)
	c.Put(kg.EntityID(9), 9, 0.5)
	if v, ok := c.Get(kg.EntityID(9), 9); !ok || v != 0.5 {
		t.Fatalf("minimum-capacity Get = (%v, %v), want (0.5, true)", v, ok)
	}
}

func TestCrossCacheStatsCounters(t *testing.T) {
	c := NewCrossCache(1 << 20)
	c.SetEpoch(1)
	c.Put(kg.EntityID(1), 1, 1)
	c.addCounts(5, 3)
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 3 {
		t.Fatalf("addCounts not reflected: %+v", st)
	}
	if want := 5.0 / 8.0; st.HitRate() != want {
		t.Fatalf("HitRate = %v, want %v", st.HitRate(), want)
	}
	if st.Epoch != 1 {
		t.Fatalf("Epoch = %d, want 1", st.Epoch)
	}
}

func TestCrossCacheConcurrency(t *testing.T) {
	// Tiny capacity forces constant eviction while readers race writers
	// and an epoch bumper invalidates under them; -race is the assertion.
	c := NewCrossCache(2 * crossEntryBytes * crossShards)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint32((w*31 + i) % 512)
				if v, ok := c.Get(kg.EntityID(k), k+1); ok && v != float64(k) {
					// A hit must return the value some Put stored for this
					// exact key — values are keyed deterministically here.
					panic(fmt.Sprintf("worker %d: key %d returned %v", w, k, v))
				}
				c.Put(kg.EntityID(k), k+1, float64(k))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint64(1); e < 50; e++ {
			c.SetEpoch(e)
			c.Flush()
		}
	}()
	wg.Wait()
}
