package core

import (
	"sync"
	"sync/atomic"

	"thetis/internal/kg"
	"thetis/internal/obs"
)

// mCrossEvictions is incremented at eviction time rather than batched:
// evictions only happen once a shard is at capacity, so the counter costs
// nothing until the cache is full.
var mCrossEvictions = obs.CrossCacheEvictionsTotal()

// Cross-query σ memoization (docs/THROUGHPUT.md). The query-scoped
// SigmaCache dies with its search, so consecutive queries that share
// entities — the common case at production traffic, where query logs are
// heavily skewed — recompute the same σ pairs from scratch. A CrossCache
// persists those pairs across searches, keyed by the interned
// (query entity, corpus entity) pair and tagged with the index epoch of
// the moment they were computed: a mutation bumps the epoch (live.go /
// sharded.go), and every entry carrying an older tag turns into a miss —
// O(1) lazy invalidation, no scan.
//
// Exactness: σ is a pure function of the entity pair and the immutable
// per-epoch graph/embedding state, so a tag-valid entry is bit-identical
// to recomputing. The cache is opt-in (thetisd -cross-cache-mb, default
// off) and escape-hatched like DisableSigmaCache: a nil Engine.Cross is
// the disabled baseline the differential battery compares against.

const (
	// crossShards is the stripe count of the cache. Keys spread by a
	// multiplicative hash, so concurrent searches rarely contend.
	crossShards = 64

	// crossEntryBytes is the accounting cost of one cached pair: the ring
	// slot (key + tag + value + ref bit, padded) plus the index map entry.
	// Measured footprint is close; the point is a stable, conservative
	// bound, not byte-exact accounting.
	crossEntryBytes = 64

	// crossEpochBits is how many low bits of the index epoch fold into an
	// entry tag; the high bits carry the flush generation so a Flush (e.g.
	// a similarity swap on Refresh) invalidates even when the epoch itself
	// did not move. Epochs are per-mutation counters, so 40 bits outlast
	// any realistic process lifetime.
	crossEpochBits = 40
)

// crossEntry is one memoized σ pair in a shard's clock ring.
type crossEntry struct {
	key uint64 // query entity <<32 | corpus entity
	tag uint64 // generation<<crossEpochBits | epoch at Put time
	val float64
	ref bool // second-chance bit for clock eviction
}

type crossShard struct {
	mu   sync.Mutex
	idx  map[uint64]int32 // key -> ring position
	ring []crossEntry     // grows to cap, then clock-evicts
	hand int32
}

// CrossCache memoizes σ across queries under an epoch tag, bounded in
// memory by per-shard clock (second-chance) eviction. Safe for concurrent
// use; attach one to an Engine via Engine.Cross (or System/ShardedSystem
// EnableCrossCache), and keep its epoch current with SetEpoch on every
// index mutation.
type CrossCache struct {
	epoch atomic.Uint64 // current index epoch (low crossEpochBits used)
	gen   atomic.Uint64 // flush generation (high bits of the tag)

	perShardCap int // max ring entries per shard, ≥ 1

	shards [crossShards]crossShard

	hits, misses, evictions atomic.Int64
}

// NewCrossCache builds a cache bounded to roughly maxBytes of entry
// footprint (≥ one entry per shard). The epoch starts at 0; callers seed
// it with SetEpoch before first use.
func NewCrossCache(maxBytes int64) *CrossCache {
	capTotal := maxBytes / crossEntryBytes
	per := int(capTotal / crossShards)
	if per < 1 {
		per = 1
	}
	c := &CrossCache{perShardCap: per}
	for i := range c.shards {
		c.shards[i].idx = make(map[uint64]int32)
	}
	return c
}

// SetEpoch installs the current index epoch. Entries written under a
// different epoch (or an older flush generation) miss from then on; they
// are reclaimed lazily by eviction or overwritten in place on refill.
func (c *CrossCache) SetEpoch(epoch uint64) { c.epoch.Store(epoch) }

// Epoch returns the epoch the cache currently validates entries against.
func (c *CrossCache) Epoch() uint64 { return c.epoch.Load() }

// Flush invalidates every entry regardless of epoch by bumping the flush
// generation — the hook for changes the epoch does not capture, such as
// swapping the similarity function on Refresh.
func (c *CrossCache) Flush() { c.gen.Add(1) }

// tagNow is the tag a valid entry must carry right now. The two loads are
// not atomic together; mutators hold the system write lock while bumping,
// so searches never observe a torn (gen, epoch) pair in practice, and a
// torn read merely turns valid entries into misses.
func (c *CrossCache) tagNow() uint64 {
	return c.gen.Load()<<crossEpochBits | c.epoch.Load()&(1<<crossEpochBits-1)
}

func crossKey(qe kg.EntityID, target uint32) uint64 {
	return uint64(qe)<<32 | uint64(target)
}

func (c *CrossCache) shard(key uint64) *crossShard {
	return &c.shards[(key*0x9E3779B97F4A7C15)>>58&(crossShards-1)]
}

// Get returns the memoized σ(qe, target) when a current-epoch entry
// exists. It does not touch the hit/miss counters — the scorer batches
// those locally and merges them via addCounts, like SigmaCache.
func (c *CrossCache) Get(qe kg.EntityID, target uint32) (float64, bool) {
	key := crossKey(qe, target)
	tag := c.tagNow()
	sh := c.shard(key)
	sh.mu.Lock()
	pos, ok := sh.idx[key]
	if !ok {
		sh.mu.Unlock()
		return 0, false
	}
	e := &sh.ring[pos]
	if e.tag != tag {
		sh.mu.Unlock()
		return 0, false
	}
	e.ref = true
	v := e.val
	sh.mu.Unlock()
	return v, true
}

// Put memoizes σ(qe, target) under the current epoch tag, evicting by
// clock sweep when the shard is at capacity. Stale-tagged duplicates are
// overwritten in place.
func (c *CrossCache) Put(qe kg.EntityID, target uint32, v float64) {
	key := crossKey(qe, target)
	tag := c.tagNow()
	sh := c.shard(key)
	sh.mu.Lock()
	if pos, ok := sh.idx[key]; ok {
		e := &sh.ring[pos]
		e.tag, e.val, e.ref = tag, v, true
		sh.mu.Unlock()
		return
	}
	if len(sh.ring) < c.perShardCap {
		sh.idx[key] = int32(len(sh.ring))
		sh.ring = append(sh.ring, crossEntry{key: key, tag: tag, val: v, ref: true})
		sh.mu.Unlock()
		return
	}
	// Clock sweep: clear ref bits until an unreferenced victim turns up.
	// Stale-tagged entries are preferred victims — they can never hit
	// again, so their ref bit is ignored.
	for {
		e := &sh.ring[sh.hand]
		if e.tag != tag || !e.ref {
			delete(sh.idx, e.key)
			sh.idx[key] = sh.hand
			*e = crossEntry{key: key, tag: tag, val: v, ref: true}
			sh.hand = (sh.hand + 1) % int32(len(sh.ring))
			c.evictions.Add(1)
			mCrossEvictions.Inc()
			sh.mu.Unlock()
			return
		}
		e.ref = false
		sh.hand = (sh.hand + 1) % int32(len(sh.ring))
	}
}

// addCounts merges externally batched hit/miss tallies (the scorer's
// per-worker counters) into the cache totals.
func (c *CrossCache) addCounts(hits, misses int64) {
	if hits != 0 {
		c.hits.Add(hits)
	}
	if misses != 0 {
		c.misses.Add(misses)
	}
}

// CrossCacheStats is a point-in-time snapshot of the cache.
type CrossCacheStats struct {
	// Hits and Misses count σ lookups that consulted the cross cache:
	// a hit was served from a current-epoch entry, a miss was computed
	// (and filled). Lookups already answered by the query/batch-scoped
	// SigmaCache never reach the cross cache and count in neither.
	Hits, Misses int64
	// Evictions counts entries displaced by the clock sweep.
	Evictions int64
	// Entries is the number of resident pairs (any tag, including stale
	// ones awaiting lazy reclamation).
	Entries int64
	// MemoryBytes is Entries × the fixed per-entry accounting cost.
	MemoryBytes int64
	// CapacityBytes is the configured bound.
	CapacityBytes int64
	// Epoch is the epoch entries are currently validated against.
	Epoch uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CrossCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache (locks each shard briefly; for introspection,
// not the hot path).
func (c *CrossCache) Stats() CrossCacheStats {
	st := CrossCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		CapacityBytes: int64(c.perShardCap) * crossShards * crossEntryBytes,
		Epoch:         c.epoch.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += int64(len(sh.ring))
		sh.mu.Unlock()
	}
	st.MemoryBytes = st.Entries * crossEntryBytes
	return st
}

// MemoryBytes returns the current entry footprint estimate.
func (c *CrossCache) MemoryBytes() int64 {
	var entries int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += int64(len(sh.ring))
		sh.mu.Unlock()
	}
	return entries * crossEntryBytes
}
