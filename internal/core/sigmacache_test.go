package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/lake"
	"thetis/internal/table"
)

// randomCorpus builds a seeded random semantic data lake: a DAG taxonomy,
// entities with 0–3 direct types, and tables whose cells are linked to a
// skewed entity population (so columns repeat entities, like real lakes).
func randomCorpus(seed int64, numTypes, numEntities, numTables, rows, cols int) (*lake.Lake, *kg.Graph) {
	rng := rand.New(rand.NewSource(seed))
	g := kg.NewGraph()
	types := make([]kg.TypeID, numTypes)
	for i := range types {
		types[i] = g.AddType(fmt.Sprintf("type/%d", i), "")
		// Parent edges point at earlier types: an acyclic taxonomy.
		if i > 0 && rng.Intn(3) == 0 {
			g.AddSubtype(types[i], types[rng.Intn(i)])
		}
	}
	ents := make([]kg.EntityID, numEntities)
	for i := range ents {
		ents[i] = g.AddEntity(fmt.Sprintf("ent/%d", i), fmt.Sprintf("E%d", i))
		for n := rng.Intn(4); n > 0; n-- {
			g.AssignType(ents[i], types[rng.Intn(numTypes)])
		}
	}
	l := lake.New(g)
	for t := 0; t < numTables; t++ {
		tb := table.New(fmt.Sprintf("t%d", t), make([]string, cols))
		for r := 0; r < rows; r++ {
			cells := make([]table.Cell, cols)
			for c := range cells {
				if rng.Intn(10) < 7 {
					// Zipf-ish skew: favor low entity IDs.
					e := ents[rng.Intn(1+rng.Intn(numEntities))]
					cells[c] = table.LinkedCell("v", e)
				} else {
					cells[c] = table.Cell{Value: "v"}
				}
			}
			tb.AppendRow(cells)
		}
		l.Add(tb)
	}
	return l, g
}

// randomQuery draws tuples from the corpus entity space with deliberate
// repetition across tuples, the case the query-scoped cache and the
// mapping-row reuse exist for.
func randomQuery(rng *rand.Rand, g *kg.Graph, tuples, width int) Query {
	q := make(Query, tuples)
	shared := kg.EntityID(rng.Intn(g.NumEntities()))
	for i := range q {
		tu := make(Tuple, width)
		for k := range tu {
			if k == 0 {
				tu[k] = shared // every tuple repeats one entity
			} else {
				tu[k] = kg.EntityID(rng.Intn(g.NumEntities()))
			}
		}
		q[i] = tu
	}
	return q
}

// randomEmbeddings gives ~80% of entities a random vector, leaving the
// rest unembedded (σ = 0 against everything).
func randomEmbeddings(rng *rand.Rand, g *kg.Graph, dim int) *embedding.Store {
	st := embedding.NewStore(g.NumEntities(), dim)
	v := make(embedding.Vector, dim)
	for e := 0; e < g.NumEntities(); e++ {
		if rng.Intn(5) == 0 {
			continue
		}
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		st.Set(kg.EntityID(e), v)
	}
	return st
}

// TestSigmaCacheDifferentialBattery proves the tentpole's correctness
// claim: with the query-scoped σ cache (and with it the shared column
// pre-aggregation) enabled, Search and ScoreTable return bit-identical
// scores and identical rankings to the uncached engine, across every
// aggregation, score mode, mapping method, and worker count.
func TestSigmaCacheDifferentialBattery(t *testing.T) {
	l, g := randomCorpus(7, 24, 120, 40, 12, 4)
	rng := rand.New(rand.NewSource(11))
	queries := []Query{
		randomQuery(rng, g, 1, 2),
		randomQuery(rng, g, 3, 3),
		randomQuery(rng, g, 5, 2),
	}
	sims := map[string]Similarity{
		"types":      NewTypeJaccard(g),
		"embeddings": NewEmbeddingCosine(g, randomEmbeddings(rand.New(rand.NewSource(2)), g, 16)),
	}
	for simName, sim := range sims {
		for _, agg := range []Aggregation{AggregateMax, AggregateAvg} {
			for _, mode := range []ScoreMode{ModeEntityWise, ModePairwise} {
				for _, mapping := range []MappingMethod{MappingHungarian, MappingGreedy} {
					for _, par := range []int{1, 4, 16} {
						name := fmt.Sprintf("%s/%v/%v/%v/par%d", simName, agg, mode, mapping, par)
						t.Run(name, func(t *testing.T) {
							cached := &Engine{Lake: l, Sim: sim, Inf: IDFInformativeness(l),
								Agg: agg, Mode: mode, Mapping: mapping, Parallelism: par}
							uncached := &Engine{Lake: l, Sim: sim, Inf: IDFInformativeness(l),
								Agg: agg, Mode: mode, Mapping: mapping, Parallelism: par,
								DisableSigmaCache: true}
							for qi, q := range queries {
								rc, sc := cached.Search(q, -1)
								ru, su := uncached.Search(q, -1)
								if len(rc) != len(ru) {
									t.Fatalf("q%d: cached %d results, uncached %d", qi, len(rc), len(ru))
								}
								for i := range rc {
									if rc[i].Table != ru[i].Table || rc[i].Score != ru[i].Score {
										t.Fatalf("q%d result %d: cached %v, uncached %v (must be bit-identical)",
											qi, i, rc[i], ru[i])
									}
								}
								if su.SigmaHits != 0 || su.SigmaMisses != 0 {
									t.Errorf("q%d: uncached engine reported cache traffic %d/%d",
										qi, su.SigmaHits, su.SigmaMisses)
								}
								// Under -tags nosigmacache both engines run
								// uncached; the traffic assertion is vacuous.
								if sigmaCacheBuildEnabled && sc.SigmaHits+sc.SigmaMisses == 0 && sc.Scored > 0 {
									t.Errorf("q%d: cached engine reported no σ lookups", qi)
								}
								for tid := 0; tid < 5; tid++ {
									vc, _ := cached.ScoreTable(q, lake.TableID(tid))
									vu, _ := uncached.ScoreTable(q, lake.TableID(tid))
									if vc != vu {
										t.Fatalf("q%d table %d: ScoreTable cached %v != uncached %v", qi, tid, vc, vu)
									}
								}
							}
						})
					}
				}
			}
		}
	}
}

// TestSigmaCacheParallelismInvariant re-checks determinism across worker
// counts with the cache on: the shared cache must not let scoring order
// leak into scores.
func TestSigmaCacheParallelismInvariant(t *testing.T) {
	l, g := randomCorpus(19, 16, 80, 30, 10, 3)
	rng := rand.New(rand.NewSource(3))
	q := randomQuery(rng, g, 4, 3)
	ref, _ := (&Engine{Lake: l, Sim: NewTypeJaccard(g), Inf: IDFInformativeness(l), Parallelism: 1}).Search(q, -1)
	for _, par := range []int{2, 4, 16} {
		got, _ := (&Engine{Lake: l, Sim: NewTypeJaccard(g), Inf: IDFInformativeness(l), Parallelism: par}).Search(q, -1)
		if len(got) != len(ref) {
			t.Fatalf("par %d: %d results, want %d", par, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("par %d result %d: %v != %v", par, i, got[i], ref[i])
			}
		}
	}
}

// TestSigmaCacheDenseMode exercises the dense slab representation
// directly: hit/miss accounting, slot lookup, entry counting, and value
// agreement with the raw Similarity.
func TestSigmaCacheDenseMode(t *testing.T) {
	_, g := randomCorpus(5, 8, 40, 1, 1, 1)
	tj := NewTypeJaccard(g)
	q := Query{Tuple{0, 1}, Tuple{1, 2}} // entity 1 repeats across tuples
	c := NewSigmaCache(q, tj, g.NumEntities())
	if !c.Dense() {
		t.Fatal("small corpus should use the dense representation")
	}
	if c.NumSlots() != 3 {
		t.Fatalf("NumSlots = %d, want 3 distinct entities", c.NumSlots())
	}
	if slot, ok := c.Slot(1); !ok || slot != 1 {
		t.Fatalf("Slot(1) = %d,%v; want 1,true (first-occurrence order)", slot, ok)
	}
	if _, ok := c.Slot(39); ok {
		t.Fatal("Slot of a non-query entity must report false")
	}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		if got, want := c.Sigma(0, e), tj.Score(0, e); got != want {
			t.Fatalf("Sigma(0,%d) = %v, want %v", e, got, want)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != int64(g.NumEntities()) {
		t.Fatalf("first pass: hits %d misses %d, want 0/%d", st.Hits, st.Misses, g.NumEntities())
	}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		c.Sigma(0, e)
	}
	st = c.Stats()
	if st.Hits != int64(g.NumEntities()) {
		t.Fatalf("second pass hits = %d, want %d", st.Hits, g.NumEntities())
	}
	if st.Entries != int64(g.NumEntities()) {
		t.Fatalf("entries = %d, want %d (one slot filled)", st.Entries, g.NumEntities())
	}
	if !st.Dense || st.Slots != 3 || st.MemoryBytes != int64(3*g.NumEntities()*8) {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}
}

// TestSigmaCacheShardedMode forces the map-backed representation by
// claiming a corpus ID space too large for dense slabs, and checks the
// same contract holds.
func TestSigmaCacheShardedMode(t *testing.T) {
	_, g := randomCorpus(5, 8, 40, 1, 1, 1)
	tj := NewTypeJaccard(g)
	q := Query{Tuple{0, 1}}
	// Two slots over an ID space this large puts the dense footprint well
	// past maxSigmaDenseBytes, forcing sharded mode.
	c := NewSigmaCache(q, tj, maxSigmaDenseBytes/8+1)
	if c.Dense() {
		t.Fatal("oversized ID space should select the sharded representation")
	}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		if got, want := c.Sigma(1, e), tj.Score(1, e); got != want {
			t.Fatalf("Sigma(1,%d) = %v, want %v", e, got, want)
		}
	}
	c.Sigma(1, 7)
	st := c.Stats()
	if st.Dense {
		t.Fatal("stats must report sharded mode")
	}
	if st.Entries != int64(g.NumEntities()) {
		t.Fatalf("entries = %d, want %d", st.Entries, g.NumEntities())
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
	if st.MemoryBytes == 0 {
		t.Fatal("sharded MemoryBytes should track entries")
	}
}

// TestSigmaCacheConcurrentStress hammers one cache from many goroutines
// (the sharing pattern of scoring workers) and verifies every returned
// value matches the deterministic σ. Run under -race via `make check`.
func TestSigmaCacheConcurrentStress(t *testing.T) {
	_, g := randomCorpus(23, 20, 200, 1, 1, 1)
	tj := NewTypeJaccard(g)
	q := Query{Tuple{0, 5, 9}, Tuple{5, 14}}
	for name, c := range map[string]*SigmaCache{
		"dense":   NewSigmaCache(q, tj, g.NumEntities()),
		"sharded": NewSigmaCache(q, tj, 2*(maxSigmaDenseBytes/8)),
	} {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan string, 16)
			for w := 0; w < 16; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 2000; i++ {
						slot := rng.Intn(c.NumSlots())
						e := kg.EntityID(rng.Intn(g.NumEntities()))
						if got, want := c.Sigma(slot, e), tj.Score(qEntity(q, slot), e); got != want {
							select {
							case errs <- fmt.Sprintf("Sigma(%d,%d) = %v, want %v", slot, e, got, want):
							default:
							}
							return
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errs)
			if msg, ok := <-errs; ok {
				t.Fatal(msg)
			}
			st := c.Stats()
			if st.Hits+st.Misses != 16*2000 {
				t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, 16*2000)
			}
		})
	}
}

// qEntity resolves slot indexes back to query entities (first-occurrence
// order, mirroring Query.DistinctEntities).
func qEntity(q Query, slot int) kg.EntityID {
	return q.DistinctEntities()[slot]
}

// TestSigmaCacheConcurrentSearches runs many concurrent full searches on
// one shared engine with the cache enabled, each verifying against a
// serial reference — the end-to-end race stress of the sharded machinery.
func TestSigmaCacheConcurrentSearches(t *testing.T) {
	l, g := randomCorpus(31, 16, 100, 30, 8, 3)
	eng := NewEngine(l, NewTypeJaccard(g))
	rng := rand.New(rand.NewSource(9))
	queries := make([]Query, 6)
	refs := make([][]Result, len(queries))
	for i := range queries {
		queries[i] = randomQuery(rng, g, 2+i%3, 2)
		refs[i], _ = eng.Search(queries[i], -1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for i := range queries {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, _ := eng.Search(queries[i], -1)
				if len(got) != len(refs[i]) {
					t.Errorf("query %d: %d results, want %d", i, len(got), len(refs[i]))
					return
				}
				for j := range got {
					if got[j] != refs[i][j] {
						t.Errorf("query %d result %d: %v != %v", i, j, got[j], refs[i][j])
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
}

// TestSetSigmaCacheEnabled checks the process-wide kill switch: disabled
// engines report no cache traffic and still return identical results.
func TestSetSigmaCacheEnabled(t *testing.T) {
	l, g := randomCorpus(13, 12, 60, 10, 6, 3)
	eng := NewEngine(l, NewTypeJaccard(g))
	q := Query{Tuple{1, 2}}
	on, statsOn := eng.Search(q, -1)
	SetSigmaCacheEnabled(false)
	defer SetSigmaCacheEnabled(true)
	off, statsOff := eng.Search(q, -1)
	if statsOff.SigmaHits != 0 || statsOff.SigmaMisses != 0 {
		t.Errorf("disabled cache reported traffic %d/%d", statsOff.SigmaHits, statsOff.SigmaMisses)
	}
	if sigmaCacheBuildEnabled && statsOn.SigmaHits+statsOn.SigmaMisses == 0 {
		t.Error("enabled cache reported no traffic")
	}
	if len(on) != len(off) {
		t.Fatalf("result count changed: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("result %d changed: %v vs %v", i, on[i], off[i])
		}
	}
}
