package core

import (
	"reflect"
	"testing"
)

func TestParseQueryByURIAndLabel(t *testing.T) {
	g := fixtureGraph()
	q, err := ParseQuery(g, "santo | Chicago Cubs\nstetter|Milwaukee Brewers\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 {
		t.Fatalf("parsed %d tuples, want 2", len(q))
	}
	want := Query{
		Tuple{ent(t, g, "santo"), ent(t, g, "cubs")},
		Tuple{ent(t, g, "stetter"), ent(t, g, "brewers")},
	}
	if !reflect.DeepEqual(q, want) {
		t.Errorf("parsed = %v, want %v", q, want)
	}
}

func TestParseQuerySkipsUnknownMentions(t *testing.T) {
	g := fixtureGraph()
	q, err := ParseQuery(g, "santo | Martian Dome Ball Club")
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || len(q[0]) != 1 {
		t.Fatalf("parsed = %v, want one 1-entity tuple", q)
	}
}

func TestParseQueryAllUnknown(t *testing.T) {
	g := fixtureGraph()
	if _, err := ParseQuery(g, "nobody | nothing"); err == nil {
		t.Error("fully unresolvable query did not error")
	}
	if _, err := ParseQuery(g, "   \n \n"); err == nil {
		t.Error("empty query did not error")
	}
}

func TestQueryHelpers(t *testing.T) {
	g := fixtureGraph()
	santo, cubs := ent(t, g, "santo"), ent(t, g, "cubs")
	q := Query{Tuple{santo, cubs}, Tuple{santo}}
	if q.NumEntities() != 3 {
		t.Errorf("NumEntities = %d, want 3", q.NumEntities())
	}
	distinct := q.DistinctEntities()
	if len(distinct) != 2 || distinct[0] != santo || distinct[1] != cubs {
		t.Errorf("DistinctEntities = %v", distinct)
	}
}

func TestComplement(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := []int{10, 2, 30, 40}
	got := Complement(a, b, 4)
	// Top halves: a[:2]={1,2}, b[:2]={10,2}; interleaved dedup: 1,10,2.
	// Fill from tails: a[2]=3.
	want := []int{1, 10, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

func TestComplementShortLists(t *testing.T) {
	got := Complement([]int{1}, []int{2}, 10)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Complement = %v", got)
	}
	if got := Complement(nil, []int{5, 6}, 2); !reflect.DeepEqual(got, []int{5, 6}) {
		t.Errorf("Complement(nil, b) = %v", got)
	}
	if got := Complement(nil, nil, 3); len(got) != 0 {
		t.Errorf("Complement(nil,nil) = %v", got)
	}
}

func TestComplementUnboundedK(t *testing.T) {
	got := Complement([]int{1, 2}, []int{3}, -1)
	if len(got) != 3 {
		t.Errorf("unbounded Complement = %v", got)
	}
}

func TestComplementNeverExceedsK(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	b := []int{6, 7, 8, 9, 10}
	for k := 0; k <= 10; k++ {
		if got := Complement(a, b, k); len(got) > k {
			t.Errorf("k=%d: len=%d", k, len(got))
		}
	}
}

func TestAggregationString(t *testing.T) {
	if AggregateMax.String() != "max" || AggregateAvg.String() != "avg" {
		t.Error("Aggregation.String wrong")
	}
}
