package core

import (
	"context"
	"sort"
)

// Over-specialized queries — the paper observes that "the 5-tuple queries
// [become] easily over-specialized", hurting recall, and lists improving
// this case as future work. RelaxedSearch implements the natural remedy the
// informativeness weighting enables: when a query returns too few
// sufficiently relevant tables, drop the least informative entity from each
// tuple (the weakest constraint) and retry, down to single-entity tuples.

// RelaxOptions controls relaxed search.
type RelaxOptions struct {
	// K is the number of results wanted.
	K int
	// MinResults triggers relaxation when fewer results score at least
	// MinScore. Zero means K.
	MinResults int
	// MinScore is the relevance bar results must clear (default 0, i.e.
	// any returned table counts).
	MinScore float64
	// MaxRounds bounds the number of relaxation rounds (default: relax
	// until tuples are single entities).
	MaxRounds int
}

// RelaxedSearch runs Search and, while the result set is too small,
// progressively relaxes the query by removing its least informative entity
// (per the engine's Informativeness) from every tuple containing it. It
// returns the results of the last round together with the query that
// produced them.
func (eng *Engine) RelaxedSearch(q Query, opt RelaxOptions) ([]Result, Query) {
	return eng.RelaxedSearchContext(context.Background(), q, opt)
}

// RelaxedSearchContext is RelaxedSearch honoring cancellation: each round's
// search is truncatable (see SearchContext), and no further relaxation
// round starts once the context is dead — the last round's best-effort
// results are returned.
func (eng *Engine) RelaxedSearchContext(ctx context.Context, q Query, opt RelaxOptions) ([]Result, Query) {
	if opt.MinResults <= 0 {
		opt.MinResults = opt.K
	}
	rounds := opt.MaxRounds
	if rounds <= 0 {
		rounds = q.NumEntities()
	}
	current := q
	results, _ := eng.SearchContext(ctx, current, opt.K)
	for round := 0; round < rounds; round++ {
		if ctx.Err() != nil {
			break
		}
		if countAbove(results, opt.MinScore) >= opt.MinResults {
			break
		}
		relaxed, ok := eng.relaxOnce(current)
		if !ok {
			break
		}
		current = relaxed
		results, _ = eng.SearchContext(ctx, current, opt.K)
	}
	return results, current
}

func countAbove(results []Result, min float64) int {
	n := 0
	for _, r := range results {
		if r.Score >= min {
			n++
		}
	}
	return n
}

// relaxOnce removes the distinct entity with the lowest informativeness
// from every tuple. It reports false when no tuple can shrink further.
func (eng *Engine) relaxOnce(q Query) (Query, bool) {
	distinct := q.DistinctEntities()
	if len(distinct) == 0 {
		return q, false
	}
	sort.Slice(distinct, func(i, j int) bool {
		wi, wj := eng.Inf(distinct[i]), eng.Inf(distinct[j])
		if wi != wj {
			return wi < wj
		}
		return distinct[i] < distinct[j]
	})
	// Drop the least informative entity that leaves every tuple non-empty.
	for _, victim := range distinct {
		out := make(Query, 0, len(q))
		changed := false
		valid := true
		for _, t := range q {
			nt := make(Tuple, 0, len(t))
			for _, e := range t {
				if e == victim {
					changed = true
					continue
				}
				nt = append(nt, e)
			}
			if len(nt) == 0 {
				valid = false
				break
			}
			out = append(out, nt)
		}
		if changed && valid {
			return out, true
		}
	}
	return q, false
}
