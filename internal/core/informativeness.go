package core

import (
	"math"

	"thetis/internal/kg"
	"thetis/internal/lake"
)

// Informativeness is the entity weight I : N → [0, 1] of Section 5.2,
// expressing how discriminative a query entity is. Weights multiply the
// squared per-entity miss in the weighted Euclidean distance (Equation 2).
type Informativeness func(e kg.EntityID) float64

// UniformInformativeness weighs every entity equally at 1.
func UniformInformativeness(kg.EntityID) float64 { return 1 }

// IDFInformativeness derives weights from corpus entity frequency: rare
// entities (a specific player) weigh more than ubiquitous ones (a city),
// using a normalized inverse document frequency
//
//	I(e) = log(1 + N/df(e)) / log(1 + N)
//
// where N is the number of tables and df(e) the number of tables mentioning
// e. Entities absent from the corpus get the maximum weight 1.
//
// N and df are read live on every call, so the closure stays correct as the
// lake mutates (the scorer evaluates it once per query entity, so the live
// read is off the per-table hot path). An empty corpus weighs every entity
// at 1.
func IDFInformativeness(l *lake.Lake) Informativeness {
	return func(e kg.EntityID) float64 {
		n := float64(l.NumTables())
		if n == 0 {
			return 1
		}
		df := float64(l.EntityFrequency(e))
		if df == 0 {
			return 1
		}
		return math.Log(1+n/df) / math.Log(1+n)
	}
}

// IDFInformativenessOver is IDFInformativeness computed across several
// lakes at once, as if their tables lived in one corpus: N is the total
// table count and df(e) sums the per-lake frequencies. Sharded deployments
// use it to give every shard engine the same global entity weights — a
// shard weighing entities by its own sub-corpus would score tables
// differently than an unsharded system and break shard-count invariance.
//
// Both N and the frequencies are read live, so tables added or removed
// afterwards are reflected, matching the single-lake behavior.
func IDFInformativenessOver(lakes []*lake.Lake) Informativeness {
	if len(lakes) == 1 {
		return IDFInformativeness(lakes[0])
	}
	return func(e kg.EntityID) float64 {
		n := 0
		for _, l := range lakes {
			n += l.NumTables()
		}
		if n == 0 {
			return 1
		}
		df := 0
		for _, l := range lakes {
			df += l.EntityFrequency(e)
		}
		if df == 0 {
			return 1
		}
		nf := float64(n)
		return math.Log(1+nf/float64(df)) / math.Log(1+nf)
	}
}
