package core

import (
	"math"

	"thetis/internal/kg"
	"thetis/internal/lake"
)

// Informativeness is the entity weight I : N → [0, 1] of Section 5.2,
// expressing how discriminative a query entity is. Weights multiply the
// squared per-entity miss in the weighted Euclidean distance (Equation 2).
type Informativeness func(e kg.EntityID) float64

// UniformInformativeness weighs every entity equally at 1.
func UniformInformativeness(kg.EntityID) float64 { return 1 }

// IDFInformativeness derives weights from corpus entity frequency: rare
// entities (a specific player) weigh more than ubiquitous ones (a city),
// using a normalized inverse document frequency
//
//	I(e) = log(1 + N/df(e)) / log(1 + N)
//
// where N is the number of tables and df(e) the number of tables mentioning
// e. Entities absent from the corpus get the maximum weight 1.
func IDFInformativeness(l *lake.Lake) Informativeness {
	n := float64(l.NumTables())
	if n == 0 {
		return UniformInformativeness
	}
	denom := math.Log(1 + n)
	return func(e kg.EntityID) float64 {
		df := float64(l.EntityFrequency(e))
		if df == 0 {
			return 1
		}
		return math.Log(1+n/df) / denom
	}
}
