package core

import "sort"

// MergeRanked merges per-shard rankings into one global top-k. Each input
// list is expected in the engine's result order — descending score,
// ascending table ID within equal scores — and the merged output preserves
// exactly that order, truncated to k (k < 0 keeps everything).
//
// The tie-break on table ID is what makes scatter-gather deterministic:
// when tables in different shards earn the same score, the merged ranking
// must not depend on which shard answered first, so ties are always broken
// toward the smaller table ID — the same rule Engine.Search applies within
// one shard. Inputs that violate the expected order (a foreign Shard
// implementation, say) are detected and sorted first, so the output order
// holds unconditionally.
//
// Table IDs are taken as-is: shards own disjoint ID ranges, so the merge
// never deduplicates.
func MergeRanked(lists [][]Result, k int) []Result {
	total := 0
	live := make([][]Result, 0, len(lists))
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		if !sort.SliceIsSorted(l, func(i, j int) bool { return resultLess(l[i], l[j]) }) {
			sorted := append([]Result(nil), l...)
			sort.Slice(sorted, func(i, j int) bool { return resultLess(sorted[i], sorted[j]) })
			l = sorted
		}
		live = append(live, l)
		total += len(l)
	}
	want := total
	if k >= 0 && k < want {
		want = k
	}
	out := make([]Result, 0, want)
	// K-way merge over the list heads. Shard counts are small (tens), so a
	// linear scan for the minimum beats heap bookkeeping and stays obviously
	// deterministic.
	for len(out) < want {
		best := -1
		for i, l := range live {
			if best < 0 || resultLess(l[0], live[best][0]) {
				best = i
			}
		}
		out = append(out, live[best][0])
		if live[best] = live[best][1:]; len(live[best]) == 0 {
			live = append(live[:best], live[best+1:]...)
		}
	}
	return out
}

// resultLess is the ranking order shared by Engine.Search and MergeRanked:
// higher scores first, ties broken toward the smaller table ID.
func resultLess(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Table < b.Table
}
