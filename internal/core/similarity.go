// Package core implements the paper's primary contribution: the semantic
// relevance score SemRel between entity-tuple queries and data lake tables
// (Section 4), the Hungarian query-to-column mapping (Section 5.1), the
// exact table search of Algorithm 1 (Section 5.3), and the LSH-based
// prefiltering of Section 6.
package core

import (
	"math/bits"

	"thetis/internal/embedding"
	"thetis/internal/kg"
)

// Similarity is the entity semantic similarity σ : N × N → [0, 1] of
// Section 4.1, with σ(e, e) = 1. Implementations must be safe for
// concurrent use and deterministic: Score must always return the same
// value for the same pair, which is what lets SigmaCache memoize it
// without changing any search result.
type Similarity interface {
	// Score returns the semantic similarity of two entities in [0, 1].
	Score(a, b kg.EntityID) float64
}

// MaxJaccard caps the adjusted type-Jaccard similarity for non-identical
// entities (Equation 4 of the paper).
const MaxJaccard = 0.95

// bitsetMaxTypes bounds the taxonomy size for which TypeJaccard keeps a
// fixed-size bitset per distinct type set (one popcount-friendly word per
// 64 types). Beyond it only the interned sorted slices are kept and Score
// falls back to a linear merge. 4096 types = 512 bytes per distinct set.
const bitsetMaxTypes = 4096

// TypeJaccard scores entities by the adjusted Jaccard similarity of their
// (taxonomy-expanded) type sets: 1 for identical entities, otherwise the
// Jaccard of the type sets capped at 0.95 (Equation 4).
//
// Type sets are expanded, sorted, and interned at construction through a
// kg.TypeSetInterner: every entity holds a dense set ID into a table of
// canonical sets, so duplicate sets share one allocation, two entities
// with the same set ID short-circuit to Jaccard 1 without touching the
// elements, and — when the taxonomy has at most 4096 types — Equation 4's
// intersection runs as a popcount over fixed-size bitsets instead of a
// merge.
type TypeJaccard struct {
	// setID[e] indexes sets/bitsets; -1 marks an empty type set.
	setID []int32
	// sets holds one canonical sorted slice per distinct type set.
	sets [][]kg.TypeID
	// bitsets[i] is the bitset of sets[i]; nil when the taxonomy is too
	// large for bitset mode.
	bitsets [][]uint64
}

// NewTypeJaccard precomputes expanded type sets for every entity of g.
// Expansion through the taxonomy mirrors DBpedia's materialized types,
// where entities carry "multiple types at different levels of granularity".
// Per-type closures are memoized and the per-entity results interned, so
// construction is linear in the number of (entity, direct type) pairs
// rather than in the total size of all expanded sets.
func NewTypeJaccard(g *kg.Graph) *TypeJaccard {
	tj := &TypeJaccard{setID: make([]int32, g.NumEntities())}
	in := kg.NewTypeSetInterner()
	closures := make([][]kg.TypeID, g.NumTypes())
	var scratch []kg.TypeID
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		scratch = scratch[:0]
		for _, t := range g.Types(e) {
			if closures[t] == nil {
				closures[t] = g.TypeClosure(t)
			}
			scratch = append(scratch, closures[t]...)
		}
		ts := sortDedupe(scratch)
		if len(ts) == 0 {
			tj.setID[e] = -1
			continue
		}
		_, id := in.Intern(ts)
		tj.setID[e] = id
	}
	tj.sets = in.Sets()
	if g.NumTypes() <= bitsetMaxTypes {
		words := (g.NumTypes() + 63) / 64
		tj.bitsets = make([][]uint64, len(tj.sets))
		for i, ts := range tj.sets {
			b := make([]uint64, words)
			for _, t := range ts {
				b[t/64] |= 1 << (t % 64)
			}
			tj.bitsets[i] = b
		}
	}
	return tj
}

// sortDedupe sorts ts in place and removes duplicates (insertion sort: the
// merged closure lists are short and mostly sorted already).
func sortDedupe(ts []kg.TypeID) []kg.TypeID {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// TypeSet returns the expanded, sorted type set of e. The slice is the
// interned canonical copy, shared by every entity with an equal set; it is
// owned by the receiver and must not be modified. Entities added to the
// graph after construction have an empty set; rebuild the TypeJaccard to
// pick them up.
func (tj *TypeJaccard) TypeSet(e kg.EntityID) []kg.TypeID {
	if int(e) >= len(tj.setID) || tj.setID[e] < 0 {
		return nil
	}
	return tj.sets[tj.setID[e]]
}

// SetID returns the dense interned type-set ID of e, or -1 when e has no
// types (or is out of range). Two entities share an ID exactly when their
// expanded type sets are equal, which callers can use to deduplicate
// per-set work (the LSEI prefilter skips repeated sets this way).
func (tj *TypeJaccard) SetID(e kg.EntityID) int32 {
	if int(e) >= len(tj.setID) {
		return -1
	}
	return tj.setID[e]
}

// NumTypeSets returns the number of distinct non-empty expanded type sets
// across all entities — the size of the intern table.
func (tj *TypeJaccard) NumTypeSets() int { return len(tj.sets) }

// Score implements Similarity per Equation 4.
func (tj *TypeJaccard) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	if int(a) >= len(tj.setID) || int(b) >= len(tj.setID) {
		return 0
	}
	sa, sb := tj.setID[a], tj.setID[b]
	if sa < 0 || sb < 0 {
		return 0
	}
	if sa == sb {
		// Identical sets: Jaccard 1, capped for non-identical entities.
		return MaxJaccard
	}
	ta, tb := tj.sets[sa], tj.sets[sb]
	inter := 0
	if tj.bitsets != nil {
		ba, bb := tj.bitsets[sa], tj.bitsets[sb]
		for w := range ba {
			inter += bits.OnesCount64(ba[w] & bb[w])
		}
	} else {
		i, j := 0, 0
		for i < len(ta) && j < len(tb) {
			switch {
			case ta[i] == tb[j]:
				inter++
				i++
				j++
			case ta[i] < tb[j]:
				i++
			default:
				j++
			}
		}
	}
	union := len(ta) + len(tb) - inter
	jac := float64(inter) / float64(union)
	if jac > MaxJaccard {
		return MaxJaccard
	}
	return jac
}

// EmbeddingCosine scores entities by the cosine similarity of their
// embedding vectors, clamped to [0, 1] to satisfy the σ contract (negative
// cosine means "unrelated", not "negatively relevant"). Vectors are
// unit-normalized once at construction into a single contiguous arena
// (embedding.Store.Normalized), so Score is one dot product over two
// cache-adjacent slices. Entities without an embedding have similarity 0
// to everything but themselves.
type EmbeddingCosine struct {
	norm *embedding.Store // unit-normalized arena copy of the source store
}

// NewEmbeddingCosine precomputes unit-normalized vectors from store.
func NewEmbeddingCosine(g *kg.Graph, store *embedding.Store) *EmbeddingCosine {
	return &EmbeddingCosine{norm: store.Normalized()}
}

// Vector returns the unit-normalized embedding of e, or nil when absent.
// The slice aliases the arena and must not be modified.
func (ec *EmbeddingCosine) Vector(e kg.EntityID) embedding.Vector {
	v, ok := ec.norm.Get(e)
	if !ok {
		return nil
	}
	return v
}

// Score implements Similarity.
func (ec *EmbeddingCosine) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	va, vb := ec.Vector(a), ec.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	cos := embedding.Dot(va, vb)
	if cos <= 0 {
		return 0
	}
	if cos > 1 {
		return 1
	}
	return cos
}
