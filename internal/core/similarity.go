// Package core implements the paper's primary contribution: the semantic
// relevance score SemRel between entity-tuple queries and data lake tables
// (Section 4), the Hungarian query-to-column mapping (Section 5.1), the
// exact table search of Algorithm 1 (Section 5.3), and the LSH-based
// prefiltering of Section 6.
package core

import (
	"thetis/internal/embedding"
	"thetis/internal/kg"
)

// Similarity is the entity semantic similarity σ : N × N → [0, 1] of
// Section 4.1, with σ(e, e) = 1. Implementations must be safe for
// concurrent use.
type Similarity interface {
	// Score returns the semantic similarity of two entities in [0, 1].
	Score(a, b kg.EntityID) float64
}

// MaxJaccard caps the adjusted type-Jaccard similarity for non-identical
// entities (Equation 4 of the paper).
const MaxJaccard = 0.95

// TypeJaccard scores entities by the adjusted Jaccard similarity of their
// (taxonomy-expanded) type sets: 1 for identical entities, otherwise the
// Jaccard of the type sets capped at 0.95. Type sets are precomputed and
// sorted so Score runs a linear merge.
type TypeJaccard struct {
	types [][]kg.TypeID
}

// NewTypeJaccard precomputes expanded type sets for every entity of g.
// Expansion through the taxonomy mirrors DBpedia's materialized types,
// where entities carry "multiple types at different levels of granularity".
func NewTypeJaccard(g *kg.Graph) *TypeJaccard {
	tj := &TypeJaccard{types: make([][]kg.TypeID, g.NumEntities())}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		tj.types[e] = g.ExpandedTypes(e)
	}
	return tj
}

// TypeSet returns the expanded, sorted type set of e. The slice is owned by
// the receiver. Entities added to the graph after construction have an
// empty set; rebuild the TypeJaccard to pick them up.
func (tj *TypeJaccard) TypeSet(e kg.EntityID) []kg.TypeID {
	if int(e) >= len(tj.types) {
		return nil
	}
	return tj.types[e]
}

// Score implements Similarity per Equation 4.
func (tj *TypeJaccard) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	ta, tb := tj.TypeSet(a), tj.TypeSet(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] == tb[j]:
			inter++
			i++
			j++
		case ta[i] < tb[j]:
			i++
		default:
			j++
		}
	}
	union := len(ta) + len(tb) - inter
	jac := float64(inter) / float64(union)
	if jac > MaxJaccard {
		return MaxJaccard
	}
	return jac
}

// EmbeddingCosine scores entities by the cosine similarity of their
// embedding vectors, clamped to [0, 1] to satisfy the σ contract (negative
// cosine means "unrelated", not "negatively relevant"). Vectors are
// unit-normalized once at construction so Score is a single dot product.
// Entities without an embedding have similarity 0 to everything but
// themselves.
type EmbeddingCosine struct {
	store *embedding.Store
	norm  []embedding.Vector // normalized copies; nil when absent
}

// NewEmbeddingCosine precomputes unit-normalized vectors from store.
func NewEmbeddingCosine(g *kg.Graph, store *embedding.Store) *EmbeddingCosine {
	ec := &EmbeddingCosine{store: store, norm: make([]embedding.Vector, g.NumEntities())}
	for e := kg.EntityID(0); int(e) < g.NumEntities(); e++ {
		if v, ok := store.Get(e); ok {
			c := append(embedding.Vector(nil), v...)
			ec.norm[e] = embedding.Normalize(c)
		}
	}
	return ec
}

// Vector returns the unit-normalized embedding of e, or nil when absent.
func (ec *EmbeddingCosine) Vector(e kg.EntityID) embedding.Vector {
	if int(e) >= len(ec.norm) {
		return nil
	}
	return ec.norm[e]
}

// Score implements Similarity.
func (ec *EmbeddingCosine) Score(a, b kg.EntityID) float64 {
	if a == b {
		return 1
	}
	va, vb := ec.Vector(a), ec.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	cos := embedding.Dot(va, vb)
	if cos <= 0 {
		return 0
	}
	if cos > 1 {
		return 1
	}
	return cos
}
