package faultio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFailingReader(t *testing.T) {
	fr := NewFailingReader(strings.NewReader("0123456789"), 4, nil)
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "0123" {
		t.Fatalf("delivered %q, want first 4 bytes", got)
	}

	custom := errors.New("boom")
	fr = NewFailingReader(strings.NewReader("abc"), 0, custom)
	if _, err := fr.Read(make([]byte, 1)); !errors.Is(err, custom) {
		t.Fatalf("custom error not propagated: %v", err)
	}
}

func TestShortReader(t *testing.T) {
	sr := NewShortReader(strings.NewReader("0123456789"), 6)
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012345" {
		t.Fatalf("delivered %q, want first 6 bytes then clean EOF", got)
	}
}

func TestFlipReader(t *testing.T) {
	fr := NewFlipReader(strings.NewReader("0123456789"), 3, 0xFF)
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("0123456789")
	want[3] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}

	// Mask 0 must still change the byte.
	fr = NewFlipReader(strings.NewReader("aaa"), 1, 0)
	got, _ = io.ReadAll(fr)
	if string(got) != "a\x60a" {
		t.Fatalf("zero mask: got %q", got)
	}

	// Offset straddling two reads: flip lands in the second read.
	fr = NewFlipReader(strings.NewReader("abcdef"), 4, 0x01)
	buf := make([]byte, 3)
	io.ReadFull(fr, buf)
	io.ReadFull(fr, buf)
	if buf[1] != 'e'^0x01 {
		t.Fatalf("flip across read boundary: got %q", buf)
	}
}

func TestStallReader(t *testing.T) {
	sr := NewStallReader(strings.NewReader("0123456789"), 5, 20*time.Millisecond)
	start := time.Now()
	got, err := io.ReadAll(sr)
	if err != nil || string(got) != "0123456789" {
		t.Fatalf("got %q, %v", got, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("stall did not delay the stream")
	}
}

func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFailingWriter(&buf, 4, nil)
	n, err := fw.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 || buf.String() != "0123" {
		t.Fatalf("accepted %d bytes %q, want exactly 4", n, buf.String())
	}
	if _, err := fw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after fault: %v", err)
	}
}

func TestFlipWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFlipWriter(&buf, 2, 0x80)
	src := []byte("abcd")
	if _, err := fw.Write(src); err != nil {
		t.Fatal(err)
	}
	if string(src) != "abcd" {
		t.Fatal("FlipWriter modified the caller's buffer")
	}
	want := []byte("abcd")
	want[2] ^= 0x80
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("got %q, want %q", buf.Bytes(), want)
	}
}
