// Package faultio provides fault-injecting io.Reader and io.Writer wrappers
// for testing the fault-tolerant data plane: streams that fail with a chosen
// error at byte N, truncate (short-read) at byte N, flip bits at chosen
// offsets, or stall mid-transfer — plus a fault-injecting http.RoundTripper
// (FaultTransport) that misbehaves at the network layer: connection
// refusal, 500s, truncated and bit-flipped responses, mid-body stalls,
// slow-loris. The snapshot and loader test suites drive corruption matrices
// and partial-write scenarios through the stream wrappers (make faults);
// the shard-over-HTTP battery drives every remote-leg fault class through
// FaultTransport (make httpshardcheck). The package depends only on the
// standard library and is usable from any test.
package faultio

import (
	"errors"
	"io"
	"time"
)

// ErrInjected is the default error produced by failing readers/writers.
var ErrInjected = errors.New("faultio: injected fault")

// FailingReader reads from R until Off bytes have been delivered, then
// returns Err (ErrInjected when nil). It models a device error mid-read.
type FailingReader struct {
	R   io.Reader
	Off int64
	Err error
	n   int64
}

// NewFailingReader returns a reader failing with err after off bytes.
func NewFailingReader(r io.Reader, off int64, err error) *FailingReader {
	return &FailingReader{R: r, Off: off, Err: err}
}

func (fr *FailingReader) Read(p []byte) (int, error) {
	if fr.n >= fr.Off {
		return 0, fr.err()
	}
	if max := fr.Off - fr.n; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := fr.R.Read(p)
	fr.n += int64(n)
	if err == nil && fr.n >= fr.Off {
		// Deliver the boundary bytes; the next call fails.
		return n, nil
	}
	return n, err
}

func (fr *FailingReader) err() error {
	if fr.Err != nil {
		return fr.Err
	}
	return ErrInjected
}

// ShortReader delivers the first Off bytes of R and then reports a clean
// io.EOF, modeling a truncated file (e.g. a crashed writer that never
// finished).
type ShortReader struct {
	R   io.Reader
	Off int64
	n   int64
}

// NewShortReader returns a reader truncating r after off bytes.
func NewShortReader(r io.Reader, off int64) *ShortReader {
	return &ShortReader{R: r, Off: off}
}

func (sr *ShortReader) Read(p []byte) (int, error) {
	if sr.n >= sr.Off {
		return 0, io.EOF
	}
	if max := sr.Off - sr.n; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := sr.R.Read(p)
	sr.n += int64(n)
	return n, err
}

// FlipReader XORs the byte at offset Off (0-based) with Mask as it streams
// through, modeling silent single-byte corruption at rest. Mask 0 is
// replaced by 0x01 so a flip always changes the byte.
type FlipReader struct {
	R    io.Reader
	Off  int64
	Mask byte
	n    int64
}

// NewFlipReader returns a reader flipping mask into the byte at off.
func NewFlipReader(r io.Reader, off int64, mask byte) *FlipReader {
	return &FlipReader{R: r, Off: off, Mask: mask}
}

func (fr *FlipReader) Read(p []byte) (int, error) {
	n, err := fr.R.Read(p)
	if idx := fr.Off - fr.n; idx >= 0 && idx < int64(n) {
		mask := fr.Mask
		if mask == 0 {
			mask = 0x01
		}
		p[idx] ^= mask
	}
	fr.n += int64(n)
	return n, err
}

// StallReader sleeps for Delay once, just before delivering the byte at
// offset Off, modeling a hung NFS mount or throttled disk. Reads before and
// after the stall pass through untouched.
type StallReader struct {
	R       io.Reader
	Off     int64
	Delay   time.Duration
	n       int64
	stalled bool
}

// NewStallReader returns a reader stalling once for delay at off.
func NewStallReader(r io.Reader, off int64, delay time.Duration) *StallReader {
	return &StallReader{R: r, Off: off, Delay: delay}
}

func (sr *StallReader) Read(p []byte) (int, error) {
	if !sr.stalled && sr.n >= sr.Off {
		sr.stalled = true
		time.Sleep(sr.Delay)
	}
	n, err := sr.R.Read(p)
	sr.n += int64(n)
	return n, err
}

// FailingWriter forwards writes to W until Off bytes have been accepted,
// then returns Err (ErrInjected when nil), modeling ENOSPC or a device
// error mid-write. The boundary write is split so exactly Off bytes reach W.
type FailingWriter struct {
	W   io.Writer
	Off int64
	Err error
	n   int64
}

// NewFailingWriter returns a writer failing with err after off bytes.
func NewFailingWriter(w io.Writer, off int64, err error) *FailingWriter {
	return &FailingWriter{W: w, Off: off, Err: err}
}

func (fw *FailingWriter) Write(p []byte) (int, error) {
	if fw.n >= fw.Off {
		return 0, fw.err()
	}
	if max := fw.Off - fw.n; int64(len(p)) > max {
		n, err := fw.W.Write(p[:max])
		fw.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, fw.err()
	}
	n, err := fw.W.Write(p)
	fw.n += int64(n)
	return n, err
}

func (fw *FailingWriter) err() error {
	if fw.Err != nil {
		return fw.Err
	}
	return ErrInjected
}

// FlipWriter XORs the byte at offset Off with Mask on its way to W,
// mirroring FlipReader for write-side corruption. Mask 0 is replaced by
// 0x01. The incoming buffer is not modified.
type FlipWriter struct {
	W    io.Writer
	Off  int64
	Mask byte
	n    int64
}

// NewFlipWriter returns a writer flipping mask into the byte at off.
func NewFlipWriter(w io.Writer, off int64, mask byte) *FlipWriter {
	return &FlipWriter{W: w, Off: off, Mask: mask}
}

func (fw *FlipWriter) Write(p []byte) (int, error) {
	if idx := fw.Off - fw.n; idx >= 0 && idx < int64(len(p)) {
		q := make([]byte, len(p))
		copy(q, p)
		mask := fw.Mask
		if mask == 0 {
			mask = 0x01
		}
		q[idx] ^= mask
		p = q
	}
	n, err := fw.W.Write(p)
	fw.n += int64(n)
	return n, err
}
