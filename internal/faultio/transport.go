package faultio

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault selects one network misbehavior for a FaultTransport round trip.
type Fault int

const (
	// None passes the request through untouched.
	None Fault = iota
	// Refuse fails before any bytes are exchanged, modeling a connection
	// refused / unreachable host.
	Refuse
	// Status500 short-circuits the request with a well-formed HTTP 500,
	// modeling a crashed or overloaded handler behind a healthy listener.
	Status500
	// TruncateBody delivers the response headers and the first half of the
	// body, then a clean EOF — a mid-transfer connection drop.
	TruncateBody
	// FlipBody XORs one byte in the second half of the response body,
	// modeling silent in-flight corruption that still parses as HTTP.
	FlipBody
	// StallBody delivers the headers immediately but sleeps Delay before
	// the first body byte, modeling a hung backend mid-response. The stall
	// respects the request context, so per-attempt deadlines cut it short.
	StallBody
	// SlowLoris sleeps Delay before even the headers, modeling a server
	// that accepts connections but never answers (the classic slow-loris
	// shape, seen from the client side).
	SlowLoris
)

// String names the fault for test output and error messages.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Status500:
		return "status500"
	case TruncateBody:
		return "truncate"
	case FlipBody:
		return "flip"
	case StallBody:
		return "stall"
	case SlowLoris:
		return "slowloris"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// FaultTransport is an http.RoundTripper that injects network faults
// according to a per-request script: request i suffers Script[i]; requests
// past the end of the script pass through clean (or, with Loop, the script
// repeats forever). That makes "fail twice then recover" and "permanently
// black-holed" replicas both expressible and deterministic, which is what
// the shard-over-HTTP differential battery needs (docs/SHARDING.md,
// make httpshardcheck).
//
// It is safe for concurrent use; concurrent requests consume script slots
// in arrival order.
type FaultTransport struct {
	// Base performs the real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Delay is the stall duration for StallBody and SlowLoris
	// (50ms when zero).
	Delay time.Duration
	// Script assigns a fault to each request in order. Empty means all
	// requests are clean.
	Script []Fault
	// Loop repeats the script forever instead of going clean past its end.
	Loop bool

	mu       sync.Mutex
	requests int
	injected int
}

// NewFaultTransport wraps base with the given fault script.
func NewFaultTransport(base http.RoundTripper, script ...Fault) *FaultTransport {
	return &FaultTransport{Base: base, Script: script}
}

// Requests returns how many round trips have been attempted.
func (t *FaultTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests
}

// Injected returns how many round trips had a fault injected.
func (t *FaultTransport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// next consumes one script slot.
func (t *FaultTransport) next() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := t.requests
	t.requests++
	if len(t.Script) == 0 {
		return None
	}
	if t.Loop {
		i %= len(t.Script)
	} else if i >= len(t.Script) {
		return None
	}
	f := t.Script[i]
	if f != None {
		t.injected++
	}
	return f
}

func (t *FaultTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *FaultTransport) delay() time.Duration {
	if t.Delay > 0 {
		return t.Delay
	}
	return 50 * time.Millisecond
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	fault := t.next()
	switch fault {
	case None:
		return t.base().RoundTrip(req)
	case Refuse:
		drainRequest(req)
		return nil, fmt.Errorf("faultio: %s %s: %w (connection refused)", req.Method, req.URL.Path, ErrInjected)
	case Status500:
		drainRequest(req)
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("faultio: injected internal error\n")),
			Request:    req,
		}, nil
	case SlowLoris:
		select {
		case <-time.After(t.delay()):
		case <-req.Context().Done():
			drainRequest(req)
			return nil, req.Context().Err()
		}
		return t.base().RoundTrip(req)
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch fault {
	case TruncateBody, FlipBody:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch fault {
		case TruncateBody:
			body = body[:len(body)/2]
		case FlipBody:
			if len(body) > 0 {
				// Land in the second half so the flip hits the payload,
				// not the envelope preamble.
				body[len(body)/2+len(body)/4] ^= 0x01
			}
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return resp, nil
	case StallBody:
		resp.Body = &stallBody{rc: resp.Body, delay: t.delay(), done: req.Context().Done()}
		return resp, nil
	}
	return resp, nil
}

// drainRequest consumes and closes the request body on paths that never
// reach the base transport, as http.RoundTripper implementations must.
func drainRequest(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// stallBody sleeps once before the first read, honoring the request
// context so a per-attempt deadline can cut the stall short.
type stallBody struct {
	rc      io.ReadCloser
	delay   time.Duration
	done    <-chan struct{}
	stalled bool
}

func (s *stallBody) Read(p []byte) (int, error) {
	if !s.stalled {
		s.stalled = true
		select {
		case <-time.After(s.delay):
		case <-s.done:
			return 0, fmt.Errorf("faultio: stalled body: %w", ErrInjected)
		}
	}
	return s.rc.Read(p)
}

func (s *stallBody) Close() error { return s.rc.Close() }
