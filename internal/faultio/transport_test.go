package faultio

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// faultServer answers every request with a fixed JSON-ish body.
func faultServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"crc32c":123,"payload":{"results":[1,2,3,4,5,6,7,8]}}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestFaultTransportScript(t *testing.T) {
	srv := faultServer(t)
	clean, _, err := get(t, srv.Client(), srv.URL)
	if err != nil || clean.StatusCode != 200 {
		t.Fatalf("clean baseline: %v %v", clean, err)
	}
	_, want, _ := get(t, srv.Client(), srv.URL)

	ft := NewFaultTransport(srv.Client().Transport, Refuse, Status500, FlipBody, TruncateBody)
	c := &http.Client{Transport: ft}

	// Request 0: refused outright.
	if _, _, err := get(t, c, srv.URL); err == nil {
		t.Fatalf("Refuse: want transport error, got none")
	}
	// Request 1: well-formed 500.
	resp, _, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("Status500: got %v %v", resp, err)
	}
	// Request 2: body differs from the truth in exactly one bit.
	_, flipped, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatalf("FlipBody: %v", err)
	}
	if len(flipped) != len(want) || string(flipped) == string(want) {
		t.Fatalf("FlipBody: want same-length different body\n got %q\nwant %q", flipped, want)
	}
	diff := 0
	for i := range want {
		if want[i] != flipped[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("FlipBody: %d bytes differ, want 1", diff)
	}
	// Request 3: truncated to half.
	_, short, err := get(t, c, srv.URL)
	if err != nil {
		t.Fatalf("TruncateBody: %v", err)
	}
	if len(short) != len(want)/2 {
		t.Fatalf("TruncateBody: got %d bytes, want %d", len(short), len(want)/2)
	}
	// Request 4: past the script — clean again.
	resp, body, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != 200 || string(body) != string(want) {
		t.Fatalf("past script: got %v %q %v", resp, body, err)
	}
	if got := ft.Requests(); got != 5 {
		t.Fatalf("Requests() = %d, want 5", got)
	}
	if got := ft.Injected(); got != 4 {
		t.Fatalf("Injected() = %d, want 4", got)
	}
}

func TestFaultTransportLoop(t *testing.T) {
	srv := faultServer(t)
	ft := NewFaultTransport(srv.Client().Transport, Refuse)
	ft.Loop = true
	c := &http.Client{Transport: ft}
	for i := 0; i < 3; i++ {
		if _, _, err := get(t, c, srv.URL); err == nil {
			t.Fatalf("request %d: want refusal, got none", i)
		}
	}
}

func TestFaultTransportStallHonorsContext(t *testing.T) {
	srv := faultServer(t)
	for _, fault := range []Fault{StallBody, SlowLoris} {
		ft := NewFaultTransport(srv.Client().Transport, fault)
		ft.Delay = 10 * time.Second
		c := &http.Client{Transport: ft}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		start := time.Now()
		resp, err := c.Do(req)
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err == nil {
			t.Fatalf("%v: want deadline error, got clean response", fault)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%v: stall ignored the context (took %v)", fault, elapsed)
		}
	}
}

func TestFaultTransportDrainsRequestBody(t *testing.T) {
	srv := faultServer(t)
	ft := NewFaultTransport(srv.Client().Transport, Refuse, Status500)
	c := &http.Client{Transport: ft}
	for i := 0; i < 2; i++ {
		resp, err := c.Post(srv.URL, "application/json", strings.NewReader(`{"k":5}`))
		if err == nil {
			resp.Body.Close()
		}
	}
	// No assertion beyond "does not hang or panic": draining is about
	// keeping keep-alive connections reusable.
	if got := ft.Requests(); got != 2 {
		t.Fatalf("Requests() = %d, want 2", got)
	}
}
