package kg

import (
	"bytes"
	"strings"
	"testing"

	"thetis/internal/obs"
)

const cleanTriples = `<e/santo> <rdf:type> <t/player> .
<e/santo> <rdfs:label> "Ron Santo" .
<e/cubs> <rdf:type> <t/team> .
<e/santo> <p/playsFor> <e/cubs> .
<t/player> <rdfs:subClassOf> <t/agent> .
`

const dirtyTriples = `<e/santo> <rdf:type> <t/player> .
<e/santo <rdfs:label> "broken subject" .
<e/santo> <rdfs:label> "Ron Santo" .
<e/cubs> <rdf:type>
<e/cubs> <rdf:type> <t/team> .
just some garbage text with no structure at all that is long
<e/santo> <p/playsFor> <e/cubs> .
<t/player> <rdfs:subClassOf> <t/agent> .
`

// dirtyBadLines is the number of malformed lines injected above.
const dirtyBadLines = 3

func TestLenientLoadQuarantinesCounts(t *testing.T) {
	reg := obs.NewRegistry()
	q := obs.NewQuarantine(reg, "triples")
	g := NewGraph()
	err := LoadTriplesOpts(g, strings.NewReader(dirtyTriples), LoadOptions{
		Lenient:     true,
		ErrorBudget: -1,
		Source:      "dirty.nt",
		Quarantine:  q,
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, skipped := q.Counts()
	if skipped != dirtyBadLines {
		t.Errorf("skipped = %d, want %d", skipped, dirtyBadLines)
	}
	if ok != 5 {
		t.Errorf("ok = %d, want 5", ok)
	}
	recs := q.Records()
	if len(recs) != dirtyBadLines {
		t.Fatalf("records = %d, want %d", len(recs), dirtyBadLines)
	}
	// Records carry source, line number, and a sample for debugging.
	if recs[0].Source != "dirty.nt" || recs[0].Line != 2 || recs[0].Sample == "" {
		t.Errorf("first record = %+v", recs[0])
	}
}

// TestLenientLoadEquivalence is the lenient-ingest acceptance criterion:
// loading a dirty stream leniently builds exactly the graph a strict load of
// its clean subset builds.
func TestLenientLoadEquivalence(t *testing.T) {
	dirty := NewGraph()
	if err := LoadTriplesOpts(dirty, strings.NewReader(dirtyTriples), LoadOptions{Lenient: true, ErrorBudget: -1}); err != nil {
		t.Fatal(err)
	}
	clean := NewGraph()
	if err := LoadTriples(clean, strings.NewReader(cleanTriples)); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteTriples(dirty, &a); err != nil {
		t.Fatal(err)
	}
	if err := WriteTriples(clean, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("lenient-dirty graph differs from strict-clean graph:\n--- lenient ---\n%s--- strict ---\n%s", a.String(), b.String())
	}
}

func TestLenientLoadBudgetExceeded(t *testing.T) {
	g := NewGraph()
	err := LoadTriplesOpts(g, strings.NewReader(dirtyTriples), LoadOptions{Lenient: true, ErrorBudget: 1})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("budget of 1 with %d bad lines: err = %v", dirtyBadLines, err)
	}
}

func TestStrictLoadStillAborts(t *testing.T) {
	g := NewGraph()
	err := LoadTriples(g, strings.NewReader(dirtyTriples))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict load of dirty stream: err = %v", err)
	}
}

func TestOverlongLine(t *testing.T) {
	long := "<e/a> <p/x> \"" + strings.Repeat("y", 4096) + "\" .\n"
	input := "<e/a> <rdf:type> <t/z> .\n" + long + "<e/b> <rdf:type> <t/z> .\n"

	// Strict: error naming the line.
	g := NewGraph()
	err := LoadTriplesOpts(g, strings.NewReader(input), LoadOptions{MaxLineBytes: 256})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("strict over-long line: err = %v", err)
	}

	// Lenient: quarantined, later lines still load.
	reg := obs.NewRegistry()
	q := obs.NewQuarantine(reg, "triples")
	g = NewGraph()
	err = LoadTriplesOpts(g, strings.NewReader(input), LoadOptions{
		Lenient: true, MaxLineBytes: 256, ErrorBudget: -1, Quarantine: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, skipped := q.Counts()
	if ok != 2 || skipped != 1 {
		t.Errorf("counts = (%d ok, %d skipped), want (2, 1)", ok, skipped)
	}
	if g.NumEntities() != 2 {
		t.Errorf("entities = %d, want 2", g.NumEntities())
	}
}
