package kg

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTriples = `
# taxonomy
<dbo:Athlete> <rdfs:subClassOf> <owl:Thing> .
<dbo:BaseballPlayer> <rdfs:subClassOf> <dbo:Athlete> .
<dbo:BaseballPlayer> <rdfs:label> "Baseball Player" .

# entities
<dbr:Ron_Santo> <rdf:type> <dbo:BaseballPlayer> .
<dbr:Ron_Santo> <rdfs:label> "Ron Santo" .
<dbr:Chicago_Cubs> <rdfs:label> "Chicago Cubs" .
<dbr:Ron_Santo> <dbo:team> <dbr:Chicago_Cubs> .
`

func TestLoadTriples(t *testing.T) {
	g := NewGraph()
	if err := LoadTriples(g, strings.NewReader(sampleTriples)); err != nil {
		t.Fatalf("LoadTriples: %v", err)
	}
	santo, ok := g.Lookup("dbr:Ron_Santo")
	if !ok {
		t.Fatal("Ron_Santo not loaded")
	}
	if g.Label(santo) != "Ron Santo" {
		t.Errorf("label = %q", g.Label(santo))
	}
	player, ok := g.LookupType("dbo:BaseballPlayer")
	if !ok {
		t.Fatal("BaseballPlayer type not loaded")
	}
	if g.TypeLabel(player) != "Baseball Player" {
		t.Errorf("type label = %q", g.TypeLabel(player))
	}
	if ts := g.Types(santo); len(ts) != 1 || ts[0] != player {
		t.Errorf("santo types = %v", ts)
	}
	closure := g.TypeClosure(player)
	if len(closure) != 3 {
		t.Errorf("closure = %v, want 3 types", closure)
	}
	cubs, _ := g.Lookup("dbr:Chicago_Cubs")
	out := g.Out(santo)
	if len(out) != 1 || out[0].Object != cubs {
		t.Errorf("edge to cubs not loaded: %v", out)
	}
}

func TestLoadTriplesErrors(t *testing.T) {
	cases := []string{
		"<a> <b>",                 // truncated
		"<a <b> <c> .",            // unterminated URI
		`<a> <b> "unterminated .`, // unterminated literal
		"<a> <b> <c> extra stuff", // trailing garbage
	}
	for _, c := range cases {
		if err := LoadTriples(NewGraph(), strings.NewReader(c)); err == nil {
			t.Errorf("LoadTriples(%q) succeeded, want error", c)
		}
	}
}

func TestLoadTriplesBareTerms(t *testing.T) {
	g := NewGraph()
	if err := LoadTriples(g, strings.NewReader("a rdf:type b .\n")); err != nil {
		t.Fatalf("bare terms: %v", err)
	}
	if _, ok := g.Lookup("a"); !ok {
		t.Error("bare subject not interned")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	g := buildSampleGraph()
	var buf bytes.Buffer
	if err := WriteTriples(g, &buf); err != nil {
		t.Fatalf("WriteTriples: %v", err)
	}
	g2 := NewGraph()
	if err := LoadTriples(g2, &buf); err != nil {
		t.Fatalf("LoadTriples(round trip): %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edges after round trip = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	if g2.NumTypes() != g.NumTypes() {
		t.Errorf("types after round trip = %d, want %d", g2.NumTypes(), g.NumTypes())
	}
	santo, ok := g2.Lookup("dbr:Ron_Santo")
	if !ok {
		t.Fatal("santo lost in round trip")
	}
	if g2.Label(santo) != "Ron Santo" {
		t.Errorf("label after round trip = %q", g2.Label(santo))
	}
	// Type assignments survive.
	player, _ := g2.LookupType("dbo:BaseballPlayer")
	found := false
	for _, tid := range g2.Types(santo) {
		if tid == player {
			found = true
		}
	}
	if !found {
		t.Error("santo lost BaseballPlayer type in round trip")
	}
}

func TestEscapeLiteral(t *testing.T) {
	g := NewGraph()
	g.AddEntity("e", `say "hi"`)
	var buf bytes.Buffer
	if err := WriteTriples(g, &buf); err != nil {
		t.Fatal(err)
	}
	if err := LoadTriples(NewGraph(), bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("literal with quotes did not survive write/load: %v", err)
	}
}
