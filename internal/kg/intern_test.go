package kg

import "testing"

func TestTypeSetInternerDedup(t *testing.T) {
	in := NewTypeSetInterner()
	a1, id1 := in.Intern([]TypeID{1, 2, 5})
	a2, id2 := in.Intern([]TypeID{1, 2, 5})
	if id1 != id2 {
		t.Fatalf("equal sets got different IDs %d / %d", id1, id2)
	}
	if &a1[0] != &a2[0] {
		t.Fatal("equal sets must share one canonical backing array")
	}
	b, idB := in.Intern([]TypeID{1, 2, 6})
	if idB == id1 {
		t.Fatal("different sets share an ID")
	}
	if &b[0] == &a1[0] {
		t.Fatal("different sets share a backing array")
	}
	if in.NumSets() != 2 {
		t.Fatalf("NumSets = %d, want 2", in.NumSets())
	}
}

func TestTypeSetInternerCopiesInput(t *testing.T) {
	in := NewTypeSetInterner()
	src := []TypeID{3, 9}
	canon, id := in.Intern(src)
	src[0] = 77 // caller scribbles over its scratch buffer
	if canon[0] != 3 {
		t.Fatal("canonical slice aliases the caller's input")
	}
	if got := in.Set(id); got[0] != 3 || got[1] != 9 {
		t.Fatalf("Set(%d) = %v, want [3 9]", id, got)
	}
}

func TestTypeSetInternerEmptySet(t *testing.T) {
	in := NewTypeSetInterner()
	_, idEmpty := in.Intern(nil)
	_, idEmpty2 := in.Intern([]TypeID{})
	if idEmpty != idEmpty2 {
		t.Fatal("nil and empty slice must intern to the same set")
	}
	if got := in.Set(idEmpty); len(got) != 0 {
		t.Fatalf("empty set = %v", got)
	}
	// IDs are dense in intern order.
	_, idNext := in.Intern([]TypeID{0})
	if idEmpty != 0 || idNext != 1 {
		t.Fatalf("IDs not dense: %d, %d", idEmpty, idNext)
	}
	if got := in.Sets(); len(got) != 2 {
		t.Fatalf("Sets() has %d entries, want 2", len(got))
	}
}

// Type IDs differing only in the high bytes must not collide in the
// encoded map key.
func TestTypeSetInternerWideIDs(t *testing.T) {
	in := NewTypeSetInterner()
	_, idLow := in.Intern([]TypeID{1})
	_, idHigh := in.Intern([]TypeID{1 << 24})
	if idLow == idHigh {
		t.Fatal("high-byte type IDs collided in the intern key")
	}
}
