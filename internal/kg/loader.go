package kg

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"thetis/internal/atomicio"
	"thetis/internal/obs"
)

// Well-known predicate URIs recognized by the triple loader. They mirror the
// RDF/RDFS/OWL vocabulary used by DBpedia-style KGs.
const (
	PredType       = "rdf:type"
	PredLabel      = "rdfs:label"
	PredSubClassOf = "rdfs:subClassOf"
)

// DefaultMaxLineBytes is the default limit on a single triple line. Real
// N-Triples lines are short; the cap only guards against unbounded memory on
// binary garbage fed to the loader.
const DefaultMaxLineBytes = 16 << 20

// LoadOptions configures LoadTriplesOpts. The zero value is strict loading
// with the default line cap — identical to LoadTriples.
type LoadOptions struct {
	// Lenient skips malformed lines (recording them in Quarantine) instead
	// of aborting on the first one.
	Lenient bool
	// MaxLineBytes caps a single line's length; 0 means
	// DefaultMaxLineBytes. Strict mode errors on an over-long line; lenient
	// mode quarantines it and continues with the next line.
	MaxLineBytes int
	// ErrorBudget bounds how many lines lenient mode may quarantine before
	// giving up on the stream; negative means unlimited, and 0 (the zero
	// value) quarantines nothing — effectively strict with reporting.
	ErrorBudget int
	// Source names the stream in quarantine records (e.g. the file path).
	Source string
	// Quarantine receives skipped-line records and accept/skip counts. May
	// be nil; lenient mode then drops records silently but still counts
	// against ErrorBudget internally.
	Quarantine *obs.Quarantine
}

// LoadTriples reads a whitespace-separated triple stream (an N-Triples
// subset) into g. Each non-empty, non-comment line has the form
//
//	<subject> <predicate> <object> .
//
// where terms are either <uri> references or "quoted literals". The loader
// gives rdf:type, rdfs:label, and rdfs:subClassOf their schema meaning and
// records every other predicate as a relation edge. Terms whose predicate is
// rdf:type create types; plain objects create entities.
//
// LoadTriples is strict: the first malformed line aborts the load. Use
// LoadTriplesOpts with Lenient for quarantine-based loading of dirty
// corpora.
func LoadTriples(g *Graph, r io.Reader) error {
	return LoadTriplesOpts(g, r, LoadOptions{})
}

// LoadTriplesOpts is LoadTriples with explicit strictness, line-length, and
// quarantine configuration. In lenient mode malformed or over-long lines
// are skipped and recorded instead of aborting, up to opts.ErrorBudget;
// well-formed lines load exactly as in strict mode, so a lenient load of a
// dirty corpus builds the same graph as a strict load of its clean subset.
func LoadTriplesOpts(g *Graph, r io.Reader, opts LoadOptions) error {
	maxLine := opts.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	lr := atomicio.NewLineReader(r, maxLine)
	skipped := 0
	// quarantine records one lenient skip; it returns an error only when
	// the budget is blown.
	quarantine := func(lineNo int, reason, sample string) error {
		skipped++
		opts.Quarantine.Skip(opts.Source, lineNo, reason, sample)
		if opts.ErrorBudget >= 0 && skipped > opts.ErrorBudget {
			return fmt.Errorf("line %d: ingest error budget exceeded: %d lines quarantined (budget %d), last: %s",
				lineNo, skipped, opts.ErrorBudget, reason)
		}
		return nil
	}
	for {
		raw, lineNo, tooLong, err := lr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if tooLong {
			if !opts.Lenient {
				return fmt.Errorf("line %d: line exceeds %d bytes", lineNo, maxLine)
			}
			if serr := quarantine(lineNo, fmt.Sprintf("line exceeds %d bytes", maxLine), string(raw[:min(len(raw), 64)])); serr != nil {
				return serr
			}
			continue
		}
		line := strings.TrimSpace(string(raw))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, perr := parseTripleLine(line)
		if perr != nil {
			if !opts.Lenient {
				return fmt.Errorf("line %d: %w", lineNo, perr)
			}
			if serr := quarantine(lineNo, perr.Error(), line); serr != nil {
				return serr
			}
			continue
		}
		switch p {
		case PredType:
			e := g.AddEntity(s, "")
			t := g.AddType(o, "")
			g.AssignType(e, t)
		case PredLabel:
			if t, ok := g.typeIndex[s]; ok {
				if g.types[t].label == "" {
					g.types[t].label = o
				}
			} else {
				g.AddEntity(s, o)
			}
		case PredSubClassOf:
			child := g.AddType(s, "")
			parent := g.AddType(o, "")
			g.AddSubtype(child, parent)
		default:
			sub := g.AddEntity(s, "")
			obj := g.AddEntity(o, "")
			pred := g.AddPredicate(p)
			g.AddEdge(sub, pred, obj)
		}
		opts.Quarantine.Accept()
	}
}

// parseTripleLine splits one triple line into subject, predicate, object.
func parseTripleLine(line string) (s, p, o string, err error) {
	terms := make([]string, 0, 3)
	rest := line
	for len(terms) < 3 {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return "", "", "", fmt.Errorf("truncated triple %q", line)
		}
		var term string
		switch rest[0] {
		case '<':
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", "", "", fmt.Errorf("unterminated URI in %q", line)
			}
			term, rest = rest[1:end], rest[end+1:]
			if strings.ContainsAny(term, "< \t") {
				return "", "", "", fmt.Errorf("malformed URI <%s> in %q", term, line)
			}
		case '"':
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				return "", "", "", fmt.Errorf("unterminated literal in %q", line)
			}
			term, rest = rest[1:1+end], rest[end+2:]
		default:
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				end = len(rest)
			}
			term, rest = rest[:end], rest[end:]
		}
		terms = append(terms, term)
	}
	rest = strings.TrimSpace(rest)
	if rest != "" && rest != "." {
		return "", "", "", fmt.Errorf("trailing content %q in %q", rest, line)
	}
	return terms[0], terms[1], terms[2], nil
}

// WriteTriples serializes g in the format accepted by LoadTriples. Entities
// are written with their types, labels, and outgoing edges; the taxonomy is
// written as rdfs:subClassOf triples.
func WriteTriples(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for t := TypeID(0); int(t) < g.NumTypes(); t++ {
		if g.types[t].label != "" {
			fmt.Fprintf(bw, "<%s> <%s> \"%s\" .\n", g.types[t].uri, PredLabel, escapeLiteral(g.types[t].label))
		}
		for _, p := range g.types[t].parents {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", g.types[t].uri, PredSubClassOf, g.types[p].uri)
		}
	}
	for e := EntityID(0); int(e) < g.NumEntities(); e++ {
		ent := &g.entities[e]
		if ent.label != "" {
			fmt.Fprintf(bw, "<%s> <%s> \"%s\" .\n", ent.uri, PredLabel, escapeLiteral(ent.label))
		}
		for _, t := range ent.types {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", ent.uri, PredType, g.types[t].uri)
		}
		for _, edge := range ent.out {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", ent.uri, g.predicates[edge.Predicate], g.entities[edge.Object].uri)
		}
	}
	return bw.Flush()
}

func escapeLiteral(s string) string {
	return strings.ReplaceAll(s, `"`, `'`)
}
