package kg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Well-known predicate URIs recognized by the triple loader. They mirror the
// RDF/RDFS/OWL vocabulary used by DBpedia-style KGs.
const (
	PredType       = "rdf:type"
	PredLabel      = "rdfs:label"
	PredSubClassOf = "rdfs:subClassOf"
)

// LoadTriples reads a whitespace-separated triple stream (an N-Triples
// subset) into g. Each non-empty, non-comment line has the form
//
//	<subject> <predicate> <object> .
//
// where terms are either <uri> references or "quoted literals". The loader
// gives rdf:type, rdfs:label, and rdfs:subClassOf their schema meaning and
// records every other predicate as a relation edge. Terms whose predicate is
// rdf:type create types; plain objects create entities.
func LoadTriples(g *Graph, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	// Types may be labeled or placed in the taxonomy; remember which URIs
	// were used as types so rdfs:label and rdfs:subClassOf can target them.
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseTripleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch p {
		case PredType:
			e := g.AddEntity(s, "")
			t := g.AddType(o, "")
			g.AssignType(e, t)
		case PredLabel:
			if t, ok := g.typeIndex[s]; ok {
				if g.types[t].label == "" {
					g.types[t].label = o
				}
			} else {
				g.AddEntity(s, o)
			}
		case PredSubClassOf:
			child := g.AddType(s, "")
			parent := g.AddType(o, "")
			g.AddSubtype(child, parent)
		default:
			sub := g.AddEntity(s, "")
			obj := g.AddEntity(o, "")
			pred := g.AddPredicate(p)
			g.AddEdge(sub, pred, obj)
		}
	}
	return sc.Err()
}

// parseTripleLine splits one triple line into subject, predicate, object.
func parseTripleLine(line string) (s, p, o string, err error) {
	terms := make([]string, 0, 3)
	rest := line
	for len(terms) < 3 {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return "", "", "", fmt.Errorf("truncated triple %q", line)
		}
		var term string
		switch rest[0] {
		case '<':
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", "", "", fmt.Errorf("unterminated URI in %q", line)
			}
			term, rest = rest[1:end], rest[end+1:]
			if strings.ContainsAny(term, "< \t") {
				return "", "", "", fmt.Errorf("malformed URI <%s> in %q", term, line)
			}
		case '"':
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				return "", "", "", fmt.Errorf("unterminated literal in %q", line)
			}
			term, rest = rest[1:1+end], rest[end+2:]
		default:
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				end = len(rest)
			}
			term, rest = rest[:end], rest[end:]
		}
		terms = append(terms, term)
	}
	rest = strings.TrimSpace(rest)
	if rest != "" && rest != "." {
		return "", "", "", fmt.Errorf("trailing content %q in %q", rest, line)
	}
	return terms[0], terms[1], terms[2], nil
}

// WriteTriples serializes g in the format accepted by LoadTriples. Entities
// are written with their types, labels, and outgoing edges; the taxonomy is
// written as rdfs:subClassOf triples.
func WriteTriples(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	for t := TypeID(0); int(t) < g.NumTypes(); t++ {
		if g.types[t].label != "" {
			fmt.Fprintf(bw, "<%s> <%s> \"%s\" .\n", g.types[t].uri, PredLabel, escapeLiteral(g.types[t].label))
		}
		for _, p := range g.types[t].parents {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", g.types[t].uri, PredSubClassOf, g.types[p].uri)
		}
	}
	for e := EntityID(0); int(e) < g.NumEntities(); e++ {
		ent := &g.entities[e]
		if ent.label != "" {
			fmt.Fprintf(bw, "<%s> <%s> \"%s\" .\n", ent.uri, PredLabel, escapeLiteral(ent.label))
		}
		for _, t := range ent.types {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", ent.uri, PredType, g.types[t].uri)
		}
		for _, edge := range ent.out {
			fmt.Fprintf(bw, "<%s> <%s> <%s> .\n", ent.uri, g.predicates[edge.Predicate], g.entities[edge.Object].uri)
		}
	}
	return bw.Flush()
}

func escapeLiteral(s string) string {
	return strings.ReplaceAll(s, `"`, `'`)
}
