// Package kg implements an in-memory labeled directed knowledge graph with a
// type taxonomy, the substrate Thetis searches against. It plays the role of
// the DBpedia snapshot used in the paper (the knowledge graph of
// Definition 2.1): entities carry human-readable labels, sets of types at
// multiple granularities, and labeled relation edges to other entities.
//
// All identifiers are interned to dense integer IDs so that the hot paths in
// similarity computation and LSH indexing operate on machine words; URI and
// label strings only appear at the API boundary.
package kg

import (
	"fmt"
	"sort"
)

// EntityID identifies an entity node in the graph. IDs are dense and start
// at 0, so they can index slices directly.
type EntityID uint32

// TypeID identifies an entity type (class) in the taxonomy.
type TypeID uint32

// PredicateID identifies an edge label (relation).
type PredicateID uint32

// InvalidEntity is returned by lookups that fail to resolve an entity.
const InvalidEntity = EntityID(^uint32(0))

// InvalidType is returned by lookups that fail to resolve a type.
const InvalidType = TypeID(^uint32(0))

// Edge is one labeled directed edge between two entities.
type Edge struct {
	Predicate PredicateID
	Object    EntityID
}

// entity is the internal per-node record.
type entity struct {
	uri   string
	label string
	types []TypeID // sorted, deduplicated
	out   []Edge
	in    []Edge
}

// Graph is a labeled directed multigraph G = (N, E, lambda) with a type
// taxonomy. It is append-only: entities, types, and edges may be added but
// never removed, which keeps all issued IDs valid for the life of the graph.
// A Graph is safe for concurrent readers once construction has finished.
type Graph struct {
	entities []entity
	uriIndex map[string]EntityID

	types     []typeInfo
	typeIndex map[string]TypeID

	predicates []string
	predIndex  map[string]PredicateID

	edgeCount int
}

type typeInfo struct {
	uri     string
	label   string
	parents []TypeID // direct supertypes in the taxonomy
}

// NewGraph returns an empty knowledge graph.
func NewGraph() *Graph {
	return &Graph{
		uriIndex:  make(map[string]EntityID),
		typeIndex: make(map[string]TypeID),
		predIndex: make(map[string]PredicateID),
	}
}

// AddEntity interns an entity by URI and returns its ID. Re-adding an
// existing URI returns the existing ID; a non-empty label overwrites an
// empty one.
func (g *Graph) AddEntity(uri, label string) EntityID {
	if id, ok := g.uriIndex[uri]; ok {
		if label != "" && g.entities[id].label == "" {
			g.entities[id].label = label
		}
		return id
	}
	id := EntityID(len(g.entities))
	g.entities = append(g.entities, entity{uri: uri, label: label})
	g.uriIndex[uri] = id
	return id
}

// AddType interns a type by URI and returns its ID.
func (g *Graph) AddType(uri, label string) TypeID {
	if id, ok := g.typeIndex[uri]; ok {
		if label != "" && g.types[id].label == "" {
			g.types[id].label = label
		}
		return id
	}
	id := TypeID(len(g.types))
	g.types = append(g.types, typeInfo{uri: uri, label: label})
	g.typeIndex[uri] = id
	return id
}

// AddSubtype records that child is a direct subtype of parent in the
// taxonomy (e.g. BaseballPlayer -> Athlete).
func (g *Graph) AddSubtype(child, parent TypeID) {
	ti := &g.types[child]
	for _, p := range ti.parents {
		if p == parent {
			return
		}
	}
	ti.parents = append(ti.parents, parent)
}

// AddPredicate interns an edge label and returns its ID.
func (g *Graph) AddPredicate(uri string) PredicateID {
	if id, ok := g.predIndex[uri]; ok {
		return id
	}
	id := PredicateID(len(g.predicates))
	g.predicates = append(g.predicates, uri)
	g.predIndex[uri] = id
	return id
}

// AssignType annotates entity e with type t. Duplicate assignments are
// ignored; the stored type set stays sorted.
func (g *Graph) AssignType(e EntityID, t TypeID) {
	ts := g.entities[e].types
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= t })
	if i < len(ts) && ts[i] == t {
		return
	}
	ts = append(ts, 0)
	copy(ts[i+1:], ts[i:])
	ts[i] = t
	g.entities[e].types = ts
}

// AddEdge inserts the labeled edge subject -p-> object.
func (g *Graph) AddEdge(subject EntityID, p PredicateID, object EntityID) {
	g.entities[subject].out = append(g.entities[subject].out, Edge{Predicate: p, Object: object})
	g.entities[object].in = append(g.entities[object].in, Edge{Predicate: p, Object: subject})
	g.edgeCount++
}

// Lookup resolves an entity URI to its ID, reporting whether it exists.
func (g *Graph) Lookup(uri string) (EntityID, bool) {
	id, ok := g.uriIndex[uri]
	return id, ok
}

// LookupType resolves a type URI to its ID, reporting whether it exists.
func (g *Graph) LookupType(uri string) (TypeID, bool) {
	id, ok := g.typeIndex[uri]
	return id, ok
}

// LookupPredicate resolves a predicate URI to its ID.
func (g *Graph) LookupPredicate(uri string) (PredicateID, bool) {
	id, ok := g.predIndex[uri]
	return id, ok
}

// NumEntities returns the number of entity nodes.
func (g *Graph) NumEntities() int { return len(g.entities) }

// NumTypes returns the number of distinct types.
func (g *Graph) NumTypes() int { return len(g.types) }

// NumPredicates returns the number of distinct edge labels.
func (g *Graph) NumPredicates() int { return len(g.predicates) }

// NumEdges returns the number of relation edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// URI returns the URI of entity e.
func (g *Graph) URI(e EntityID) string { return g.entities[e].uri }

// Label returns the human-readable label of entity e, falling back to its
// URI when no label was recorded.
func (g *Graph) Label(e EntityID) string {
	if l := g.entities[e].label; l != "" {
		return l
	}
	return g.entities[e].uri
}

// Types returns the sorted direct type set of entity e. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) Types(e EntityID) []TypeID { return g.entities[e].types }

// TypeURI returns the URI of type t.
func (g *Graph) TypeURI(t TypeID) string { return g.types[t].uri }

// TypeLabel returns the label of type t, falling back to its URI.
func (g *Graph) TypeLabel(t TypeID) string {
	if l := g.types[t].label; l != "" {
		return l
	}
	return g.types[t].uri
}

// PredicateURI returns the URI of predicate p.
func (g *Graph) PredicateURI(p PredicateID) string { return g.predicates[p] }

// Out returns the outgoing edges of entity e. The slice is owned by the
// graph and must not be modified.
func (g *Graph) Out(e EntityID) []Edge { return g.entities[e].out }

// In returns the incoming edges of entity e (Object holds the source). The
// slice is owned by the graph and must not be modified.
func (g *Graph) In(e EntityID) []Edge { return g.entities[e].in }

// Degree returns the total (in+out) degree of entity e.
func (g *Graph) Degree(e EntityID) int {
	return len(g.entities[e].out) + len(g.entities[e].in)
}

// SuperTypes returns the direct supertypes of t in the taxonomy.
func (g *Graph) SuperTypes(t TypeID) []TypeID { return g.types[t].parents }

// TypeClosure returns the set of t plus all its transitive supertypes,
// sorted. Cycles in the taxonomy are tolerated.
func (g *Graph) TypeClosure(t TypeID) []TypeID {
	seen := map[TypeID]bool{t: true}
	stack := []TypeID{t}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.types[cur].parents {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	out := make([]TypeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExpandedTypes returns the union of the type closures of all direct types
// of entity e, sorted. This models KGs like DBpedia where entities are
// annotated "with multiple types at different levels of granularity".
func (g *Graph) ExpandedTypes(e EntityID) []TypeID {
	seen := map[TypeID]bool{}
	for _, t := range g.entities[e].types {
		for _, c := range g.TypeClosure(t) {
			seen[c] = true
		}
	}
	out := make([]TypeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("kg.Graph{entities: %d, edges: %d, types: %d, predicates: %d}",
		g.NumEntities(), g.NumEdges(), g.NumTypes(), g.NumPredicates())
}
