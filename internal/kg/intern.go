package kg

// Type-set interning. Entity type sets in a real knowledge graph are
// heavily skewed: a handful of (expanded) type combinations — "baseball
// player", "settlement", "company" — cover almost every entity. Storing one
// canonical copy of each distinct set collapses the memory of the
// duplicates and, just as importantly, gives every set a small dense ID
// that similarity kernels can compare and index by (two entities with the
// same set ID have Jaccard 1 without touching the elements).

// TypeSetInterner deduplicates sorted type sets, handing out one canonical
// shared slice plus a dense set ID per distinct set. It is the shared-
// pointer dedup table built at load time that backs core.TypeJaccard's
// interned representation.
//
// An interner is not safe for concurrent writers; intern everything during
// load, then share the canonical slices freely among concurrent readers
// (they must never be modified).
type TypeSetInterner struct {
	index map[string]int32
	sets  [][]TypeID
}

// NewTypeSetInterner returns an empty interner.
func NewTypeSetInterner() *TypeSetInterner {
	return &TypeSetInterner{index: make(map[string]int32)}
}

// setKey encodes a type set as a map key (4 bytes per ID, little endian).
func setKey(ts []TypeID) string {
	buf := make([]byte, 0, 4*len(ts))
	for _, t := range ts {
		buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return string(buf)
}

// Intern canonicalizes ts, which must be sorted and deduplicated (the form
// Graph.ExpandedTypes and Graph.Types produce). The first time a set is
// seen its elements are copied into an interner-owned slice; every later
// call with an equal set returns that same slice and ID. The empty set is
// a valid set with its own ID.
func (in *TypeSetInterner) Intern(ts []TypeID) ([]TypeID, int32) {
	key := setKey(ts)
	if id, ok := in.index[key]; ok {
		return in.sets[id], id
	}
	id := int32(len(in.sets))
	canonical := append([]TypeID(nil), ts...)
	in.sets = append(in.sets, canonical)
	in.index[key] = id
	return canonical, id
}

// NumSets returns the number of distinct sets interned so far.
func (in *TypeSetInterner) NumSets() int { return len(in.sets) }

// Set returns the canonical slice for a set ID issued by Intern. The slice
// is owned by the interner and must not be modified.
func (in *TypeSetInterner) Set(id int32) []TypeID { return in.sets[id] }

// Sets returns all canonical sets indexed by set ID. The outer and inner
// slices are owned by the interner and must not be modified.
func (in *TypeSetInterner) Sets() [][]TypeID { return in.sets }
