package kg

import "sort"

// Stats summarizes the structural properties of a graph. It backs the
// corpus/KG statistics reported in the experimental setup (Section 7.1 of
// the paper quotes node, edge, type, and predicate counts for DBpedia).
type Stats struct {
	Entities   int
	Edges      int
	Types      int
	Predicates int

	// MeanTypesPerEntity is the average size of the direct type set.
	MeanTypesPerEntity float64
	// MeanDegree is the average total degree.
	MeanDegree float64
	// TypeFrequency maps every type to the number of entities annotated
	// with it (direct annotations only).
	TypeFrequency map[TypeID]int
}

// ComputeStats scans the graph once and returns its statistics.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Entities:      g.NumEntities(),
		Edges:         g.NumEdges(),
		Types:         g.NumTypes(),
		Predicates:    g.NumPredicates(),
		TypeFrequency: make(map[TypeID]int),
	}
	if s.Entities == 0 {
		return s
	}
	totalTypes, totalDegree := 0, 0
	for e := EntityID(0); int(e) < g.NumEntities(); e++ {
		ts := g.Types(e)
		totalTypes += len(ts)
		totalDegree += g.Degree(e)
		for _, t := range ts {
			s.TypeFrequency[t]++
		}
	}
	s.MeanTypesPerEntity = float64(totalTypes) / float64(s.Entities)
	s.MeanDegree = float64(totalDegree) / float64(s.Entities)
	return s
}

// TopTypes returns the n most frequent types in descending frequency order.
func (s Stats) TopTypes(n int) []TypeID {
	ids := make([]TypeID, 0, len(s.TypeFrequency))
	for t := range s.TypeFrequency {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := s.TypeFrequency[ids[i]], s.TypeFrequency[ids[j]]
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}
