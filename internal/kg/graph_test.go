package kg

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func buildSampleGraph() *Graph {
	g := NewGraph()
	thing := g.AddType("owl:Thing", "Thing")
	agent := g.AddType("dbo:Agent", "Agent")
	person := g.AddType("dbo:Person", "Person")
	athlete := g.AddType("dbo:Athlete", "Athlete")
	player := g.AddType("dbo:BaseballPlayer", "Baseball Player")
	org := g.AddType("dbo:Organisation", "Organisation")
	team := g.AddType("dbo:BaseballTeam", "Baseball Team")
	g.AddSubtype(agent, thing)
	g.AddSubtype(person, agent)
	g.AddSubtype(athlete, person)
	g.AddSubtype(player, athlete)
	g.AddSubtype(org, agent)
	g.AddSubtype(team, org)

	santo := g.AddEntity("dbr:Ron_Santo", "Ron Santo")
	cubs := g.AddEntity("dbr:Chicago_Cubs", "Chicago Cubs")
	stetter := g.AddEntity("dbr:Mitch_Stetter", "Mitch Stetter")
	brewers := g.AddEntity("dbr:Milwaukee_Brewers", "Milwaukee Brewers")
	g.AssignType(santo, player)
	g.AssignType(santo, thing)
	g.AssignType(stetter, player)
	g.AssignType(stetter, thing)
	g.AssignType(cubs, team)
	g.AssignType(cubs, thing)
	g.AssignType(brewers, team)
	g.AssignType(brewers, thing)

	playsFor := g.AddPredicate("dbo:team")
	g.AddEdge(santo, playsFor, cubs)
	g.AddEdge(stetter, playsFor, brewers)
	return g
}

func TestAddEntityInternsIDs(t *testing.T) {
	g := NewGraph()
	a := g.AddEntity("dbr:A", "A")
	b := g.AddEntity("dbr:B", "B")
	if a == b {
		t.Fatalf("distinct URIs got the same ID %d", a)
	}
	if again := g.AddEntity("dbr:A", ""); again != a {
		t.Errorf("re-adding dbr:A: got ID %d, want %d", again, a)
	}
	if g.NumEntities() != 2 {
		t.Errorf("NumEntities = %d, want 2", g.NumEntities())
	}
}

func TestAddEntityLabelBackfill(t *testing.T) {
	g := NewGraph()
	e := g.AddEntity("dbr:X", "")
	if got := g.Label(e); got != "dbr:X" {
		t.Errorf("Label of unlabeled entity = %q, want URI fallback", got)
	}
	g.AddEntity("dbr:X", "Xavier")
	if got := g.Label(e); got != "Xavier" {
		t.Errorf("Label after backfill = %q, want Xavier", got)
	}
	g.AddEntity("dbr:X", "Other")
	if got := g.Label(e); got != "Xavier" {
		t.Errorf("first non-empty label should win, got %q", got)
	}
}

func TestAssignTypeSortedDeduplicated(t *testing.T) {
	g := NewGraph()
	e := g.AddEntity("dbr:E", "E")
	t3 := g.AddType("t3", "")
	t1 := g.AddType("t1", "")
	t2 := g.AddType("t2", "")
	g.AssignType(e, t3)
	g.AssignType(e, t1)
	g.AssignType(e, t2)
	g.AssignType(e, t1)
	got := g.Types(e)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("type set not sorted: %v", got)
	}
	if len(got) != 3 {
		t.Errorf("type set has %d entries, want 3 (dedup failed): %v", len(got), got)
	}
}

func TestEdgesAndDegree(t *testing.T) {
	g := buildSampleGraph()
	santo, _ := g.Lookup("dbr:Ron_Santo")
	cubs, _ := g.Lookup("dbr:Chicago_Cubs")
	out := g.Out(santo)
	if len(out) != 1 || out[0].Object != cubs {
		t.Fatalf("Out(santo) = %v, want one edge to cubs (%d)", out, cubs)
	}
	in := g.In(cubs)
	if len(in) != 1 || in[0].Object != santo {
		t.Fatalf("In(cubs) = %v, want one edge from santo (%d)", in, santo)
	}
	if g.Degree(santo) != 1 || g.Degree(cubs) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(santo), g.Degree(cubs))
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestTypeClosure(t *testing.T) {
	g := buildSampleGraph()
	player, _ := g.LookupType("dbo:BaseballPlayer")
	closure := g.TypeClosure(player)
	wantURIs := []string{"owl:Thing", "dbo:Agent", "dbo:Person", "dbo:Athlete", "dbo:BaseballPlayer"}
	if len(closure) != len(wantURIs) {
		t.Fatalf("closure size = %d, want %d (%v)", len(closure), len(wantURIs), closure)
	}
	got := map[string]bool{}
	for _, c := range closure {
		got[g.TypeURI(c)] = true
	}
	for _, u := range wantURIs {
		if !got[u] {
			t.Errorf("closure missing %s", u)
		}
	}
}

func TestTypeClosureToleratesCycles(t *testing.T) {
	g := NewGraph()
	a := g.AddType("a", "")
	b := g.AddType("b", "")
	g.AddSubtype(a, b)
	g.AddSubtype(b, a)
	closure := g.TypeClosure(a)
	if len(closure) != 2 {
		t.Fatalf("cyclic closure = %v, want {a,b}", closure)
	}
}

func TestExpandedTypes(t *testing.T) {
	g := buildSampleGraph()
	santo, _ := g.Lookup("dbr:Ron_Santo")
	expanded := g.ExpandedTypes(santo)
	// Direct: BaseballPlayer, Thing. Closure adds Athlete, Person, Agent.
	if len(expanded) != 5 {
		names := make([]string, len(expanded))
		for i, t2 := range expanded {
			names[i] = g.TypeURI(t2)
		}
		t.Fatalf("ExpandedTypes = %v, want 5 types", names)
	}
}

func TestLookupMisses(t *testing.T) {
	g := buildSampleGraph()
	if _, ok := g.Lookup("dbr:Nobody"); ok {
		t.Error("Lookup of unknown entity reported ok")
	}
	if _, ok := g.LookupType("dbo:Nothing"); ok {
		t.Error("LookupType of unknown type reported ok")
	}
	if _, ok := g.LookupPredicate("dbo:none"); ok {
		t.Error("LookupPredicate of unknown predicate reported ok")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildSampleGraph()
	s := ComputeStats(g)
	if s.Entities != 4 || s.Edges != 2 || s.Types != 7 || s.Predicates != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanTypesPerEntity != 2 {
		t.Errorf("MeanTypesPerEntity = %v, want 2", s.MeanTypesPerEntity)
	}
	thing, _ := g.LookupType("owl:Thing")
	if s.TypeFrequency[thing] != 4 {
		t.Errorf("owl:Thing frequency = %d, want 4", s.TypeFrequency[thing])
	}
	top := s.TopTypes(1)
	if len(top) != 1 || top[0] != thing {
		t.Errorf("TopTypes(1) = %v, want [owl:Thing]", top)
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	s := ComputeStats(NewGraph())
	if s.Entities != 0 || s.MeanDegree != 0 {
		t.Errorf("empty graph stats = %+v", s)
	}
}

// Property: interning is a bijection between added URIs and IDs.
func TestEntityInterningProperty(t *testing.T) {
	f := func(uris []string) bool {
		g := NewGraph()
		ids := map[string]EntityID{}
		for _, u := range uris {
			id := g.AddEntity(u, "")
			if prev, ok := ids[u]; ok && prev != id {
				return false
			}
			ids[u] = id
		}
		for u, id := range ids {
			got, ok := g.Lookup(u)
			if !ok || got != id {
				return false
			}
		}
		return g.NumEntities() == len(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AssignType keeps the type slice sorted and duplicate-free for
// any assignment order.
func TestAssignTypeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		g := NewGraph()
		e := g.AddEntity("e", "")
		want := map[TypeID]bool{}
		for i := 0; i < 32; i++ {
			g.AddType(string(rune('a'+i)), "")
		}
		for _, r := range raw {
			id := TypeID(r % 32)
			g.AssignType(e, id)
			want[id] = true
		}
		got := g.Types(e)
		if len(got) != len(want) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGraphString(t *testing.T) {
	g := buildSampleGraph()
	if got := g.String(); got == "" {
		t.Error("String() returned empty")
	}
}

func TestTypesReturnedSliceIsStable(t *testing.T) {
	g := buildSampleGraph()
	santo, _ := g.Lookup("dbr:Ron_Santo")
	before := append([]TypeID(nil), g.Types(santo)...)
	_ = g.ExpandedTypes(santo)
	if !reflect.DeepEqual(before, g.Types(santo)) {
		t.Error("Types slice mutated by read-only operations")
	}
}
