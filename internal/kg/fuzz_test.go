package kg

import (
	"bytes"
	"strings"
	"testing"

	"thetis/internal/atomicio"
)

// FuzzLoadTriples: the loader must never panic and must either error or
// leave the graph internally consistent on arbitrary input.
func FuzzLoadTriples(f *testing.F) {
	f.Add("<a> <b> <c> .")
	f.Add(`<e> <rdfs:label> "hello world" .`)
	f.Add("<a> <rdf:type> <T> .\n<T> <rdfs:subClassOf> <U> .")
	f.Add("# comment\n\n<a> <b> <c>")
	f.Add("<a <b> <c> .")
	f.Add(`<a> <b> "unterminated`)
	f.Add("bare terms here .")
	f.Fuzz(func(t *testing.T, input string) {
		g := NewGraph()
		if err := LoadTriples(g, strings.NewReader(input)); err != nil {
			return
		}
		// Consistency: every entity resolvable by its own URI; type sets
		// sorted; closures terminate.
		for e := EntityID(0); int(e) < g.NumEntities(); e++ {
			id, ok := g.Lookup(g.URI(e))
			if !ok || id != e {
				t.Fatalf("entity %d not resolvable by its own URI %q", e, g.URI(e))
			}
			ts := g.Types(e)
			for i := 1; i < len(ts); i++ {
				if ts[i-1] >= ts[i] {
					t.Fatalf("type set of %d not sorted: %v", e, ts)
				}
			}
			_ = g.ExpandedTypes(e)
		}
	})
}

// FuzzParseTripleLine: parse must never panic, and parsed terms must be
// non-empty for valid lines.
func FuzzParseTripleLine(f *testing.F) {
	f.Add("<a> <b> <c> .")
	f.Add(`x "y z" w`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		s, p, o, err := parseTripleLine(line)
		if err != nil {
			return
		}
		_ = s
		_ = p
		_ = o
	})
}

// FuzzLoadTriplesLenient: lenient loading must never panic, never error
// with an unlimited budget, and must build exactly the graph a strict load
// of the input's well-formed lines builds (the quarantine-equivalence
// invariant). Seeds live in testdata/fuzz/FuzzLoadTriplesLenient.
func FuzzLoadTriplesLenient(f *testing.F) {
	f.Add("<a> <b> <c> .")
	f.Add("<a> <rdf:type> <T> .\ngarbage line\n<b> <rdf:type> <T> .")
	f.Add("<a <b> <c> .\n<a> <b> \"unterminated")
	f.Add("# comment\n\n\x00\x01\x02")
	f.Fuzz(func(t *testing.T, input string) {
		const maxLine = 1 << 16
		lenient := NewGraph()
		err := LoadTriplesOpts(lenient, strings.NewReader(input), LoadOptions{
			Lenient: true, ErrorBudget: -1, MaxLineBytes: maxLine,
		})
		if err != nil {
			t.Fatalf("lenient load with unlimited budget errored: %v", err)
		}
		// Rebuild the clean subset with the loader's own line discipline:
		// keep exactly the lines a strict load accepts.
		var clean []string
		lr := atomicio.NewLineReader(strings.NewReader(input), maxLine)
		for {
			raw, _, tooLong, lerr := lr.Next()
			if lerr != nil {
				break
			}
			if tooLong {
				continue
			}
			line := strings.TrimSpace(string(raw))
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if _, _, _, perr := parseTripleLine(line); perr == nil {
				clean = append(clean, string(raw))
			}
		}
		strict := NewGraph()
		if err := LoadTriples(strict, strings.NewReader(strings.Join(clean, "\n"))); err != nil {
			t.Fatalf("strict load of the clean subset errored: %v", err)
		}
		var a, b bytes.Buffer
		if err := WriteTriples(lenient, &a); err != nil {
			t.Fatal(err)
		}
		if err := WriteTriples(strict, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("lenient graph != strict clean-subset graph\nlenient:\n%s\nstrict:\n%s", a.String(), b.String())
		}
	})
}
