package kg

import (
	"strings"
	"testing"
)

// FuzzLoadTriples: the loader must never panic and must either error or
// leave the graph internally consistent on arbitrary input.
func FuzzLoadTriples(f *testing.F) {
	f.Add("<a> <b> <c> .")
	f.Add(`<e> <rdfs:label> "hello world" .`)
	f.Add("<a> <rdf:type> <T> .\n<T> <rdfs:subClassOf> <U> .")
	f.Add("# comment\n\n<a> <b> <c>")
	f.Add("<a <b> <c> .")
	f.Add(`<a> <b> "unterminated`)
	f.Add("bare terms here .")
	f.Fuzz(func(t *testing.T, input string) {
		g := NewGraph()
		if err := LoadTriples(g, strings.NewReader(input)); err != nil {
			return
		}
		// Consistency: every entity resolvable by its own URI; type sets
		// sorted; closures terminate.
		for e := EntityID(0); int(e) < g.NumEntities(); e++ {
			id, ok := g.Lookup(g.URI(e))
			if !ok || id != e {
				t.Fatalf("entity %d not resolvable by its own URI %q", e, g.URI(e))
			}
			ts := g.Types(e)
			for i := 1; i < len(ts); i++ {
				if ts[i-1] >= ts[i] {
					t.Fatalf("type set of %d not sorted: %v", e, ts)
				}
			}
			_ = g.ExpandedTypes(e)
		}
	})
}

// FuzzParseTripleLine: parse must never panic, and parsed terms must be
// non-empty for valid lines.
func FuzzParseTripleLine(f *testing.F) {
	f.Add("<a> <b> <c> .")
	f.Add(`x "y z" w`)
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		s, p, o, err := parseTripleLine(line)
		if err != nil {
			return
		}
		_ = s
		_ = p
		_ = o
	})
}
