package lake

import (
	"testing"

	"thetis/internal/kg"
	"thetis/internal/table"
)

func buildLake(t *testing.T) (*Lake, *kg.Graph) {
	t.Helper()
	g := kg.NewGraph()
	santo := g.AddEntity("dbr:Ron_Santo", "Ron Santo")
	cubs := g.AddEntity("dbr:Chicago_Cubs", "Chicago Cubs")
	brewers := g.AddEntity("dbr:Milwaukee_Brewers", "Milwaukee Brewers")

	l := New(g)

	t1 := table.New("t1", []string{"Player", "Team"})
	t1.AppendRow([]table.Cell{table.LinkedCell("Ron Santo", santo), table.LinkedCell("Chicago Cubs", cubs)})
	l.Add(t1)

	t2 := table.New("t2", []string{"Team", "City"})
	t2.AppendRow([]table.Cell{table.LinkedCell("Chicago Cubs", cubs), {Value: "Chicago"}})
	t2.AppendRow([]table.Cell{table.LinkedCell("Milwaukee Brewers", brewers), {Value: "Milwaukee"}})
	l.Add(t2)

	return l, g
}

func TestLakeAddAndLookup(t *testing.T) {
	l, g := buildLake(t)
	if l.NumTables() != 2 {
		t.Fatalf("NumTables = %d", l.NumTables())
	}
	if l.Table(0).Name != "t1" || l.Table(1).Name != "t2" {
		t.Error("table IDs not dense/ordered")
	}
	cubs, _ := g.Lookup("dbr:Chicago_Cubs")
	posts := l.TablesWith(cubs)
	if len(posts) != 2 || posts[0] != 0 || posts[1] != 1 {
		t.Errorf("postings for cubs = %v, want [0 1]", posts)
	}
	santo, _ := g.Lookup("dbr:Ron_Santo")
	if f := l.EntityFrequency(santo); f != 1 {
		t.Errorf("freq(santo) = %d, want 1", f)
	}
	if f := l.EntityFrequency(cubs); f != 2 {
		t.Errorf("freq(cubs) = %d, want 2", f)
	}
	if n := len(l.DistinctEntities()); n != 3 {
		t.Errorf("distinct entities = %d, want 3", n)
	}
}

func TestLakeUnknownEntity(t *testing.T) {
	l, g := buildLake(t)
	stranger := g.AddEntity("dbr:Stranger", "")
	if posts := l.TablesWith(stranger); len(posts) != 0 {
		t.Errorf("postings for unseen entity = %v", posts)
	}
	if l.EntityFrequency(stranger) != 0 {
		t.Error("frequency for unseen entity should be 0")
	}
}

func TestComputeStats(t *testing.T) {
	l, _ := buildLake(t)
	s := l.ComputeStats()
	if s.Tables != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanRows != 1.5 {
		t.Errorf("MeanRows = %v, want 1.5", s.MeanRows)
	}
	if s.MeanColumns != 2 {
		t.Errorf("MeanColumns = %v, want 2", s.MeanColumns)
	}
	// t1 coverage = 1.0, t2 coverage = 0.5 -> mean 0.75
	if s.MeanCoverage != 0.75 {
		t.Errorf("MeanCoverage = %v, want 0.75", s.MeanCoverage)
	}
	if s.DistinctEntities != 3 {
		t.Errorf("DistinctEntities = %d, want 3", s.DistinctEntities)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := New(kg.NewGraph()).ComputeStats()
	if s.Tables != 0 || s.MeanRows != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestEntityCountedOncePerTable(t *testing.T) {
	g := kg.NewGraph()
	e := g.AddEntity("dbr:E", "E")
	l := New(g)
	tb := table.New("dup", []string{"a", "b"})
	tb.AppendRow([]table.Cell{table.LinkedCell("E", e), table.LinkedCell("E", e)})
	tb.AppendRow([]table.Cell{table.LinkedCell("E", e), {Value: "x"}})
	l.Add(tb)
	if f := l.EntityFrequency(e); f != 1 {
		t.Errorf("entity mentioned 3x in one table has frequency %d, want 1", f)
	}
	if posts := l.TablesWith(e); len(posts) != 1 {
		t.Errorf("postings = %v, want one entry", posts)
	}
}

func TestColumnIndexMemoized(t *testing.T) {
	l, _ := buildLake(t)
	ci1 := l.ColumnIndex(0)
	ci2 := l.ColumnIndex(0)
	if ci1 == nil || ci1 != ci2 {
		t.Fatal("ColumnIndex must return one memoized index per table")
	}
	if ci1 == l.ColumnIndex(1) {
		t.Fatal("tables must not share a column index")
	}
	// The index reflects the table's annotations: t1 has one linked entity
	// per column.
	if len(ci1.Cols) != 2 || ci1.Cols[0].Linked != 1 || len(ci1.Cols[0].Entities) != 1 {
		t.Fatalf("t1 index = %+v", ci1)
	}
}

func TestColumnIndexConcurrentFirstUse(t *testing.T) {
	l, _ := buildLake(t)
	results := make(chan *table.ColumnIndex, 8)
	for i := 0; i < 8; i++ {
		go func() { results <- l.ColumnIndex(1) }()
	}
	for i := 0; i < 8; i++ {
		ci := <-results
		if ci == nil || len(ci.Cols) != 2 {
			t.Fatalf("concurrent first build returned %+v", ci)
		}
	}
}
