// Package lake implements the data-lake corpus store: a collection of
// tables with dense table IDs, entity→table posting lists, and the corpus
// statistics reported in Table 2 of the paper. Together with a kg.Graph
// and the entity annotations on cells it forms the Semantic Data Lake of
// Definition 2.1 — the pair (catalog of tables, partial cell→entity
// mapping Φ) every search runs against.
//
// Besides raw storage the lake maintains the derived read-side structures
// the search pipeline needs: posting lists from entities to the tables
// mentioning them (the Φ⁻¹ direction, which both the LSEI prefilter votes
// and the IDF informativeness weighting consume), per-entity table
// frequencies, and lazily built per-table column indexes
// (table.ColumnIndex) that let the scorer fold a column by distinct
// entities instead of raw cells. Tables can be added at any time and
// removed again (Remove tombstones the slot so every other table keeps its
// ID — see docs/LIVE_INDEX.md); a Lake is safe for concurrent readers, and
// mutation must be serialized against them by the caller (thetis.System
// holds its write lock across Add/Remove).
package lake

import (
	"fmt"
	"sort"
	"sync/atomic"

	"thetis/internal/kg"
	"thetis/internal/table"
)

// TableID identifies a table within a Lake. IDs are dense and start at 0.
type TableID int32

// Lake is a mutable corpus of tables tied to a reference KG. It is safe
// for concurrent readers; Add/Remove must be serialized against them by
// the caller.
type Lake struct {
	Graph  *kg.Graph
	tables []*table.Table

	// postings maps each entity to the sorted list of tables mentioning it
	// (the Φ⁻¹ side of the semantic data lake mapping).
	postings map[kg.EntityID][]TableID
	// entityFreq counts, per entity, the number of tables that mention it;
	// this drives the informativeness weight I(e).
	entityFreq map[kg.EntityID]int
	// colIndex holds one lazily built column index slot per table,
	// index-aligned with tables.
	colIndex []*atomic.Pointer[table.ColumnIndex]
	// removed counts tombstoned slots (nil entries in tables), so the live
	// table count — the N of every corpus-frequency statistic — stays O(1).
	removed int
	// epoch counts corpus mutations (Add and Remove each bump it once).
	// Anything memoized against the corpus — cross-query caches, the
	// thetis_index_epoch gauge — keys on it to detect staleness.
	epoch atomic.Uint64
}

// New creates an empty lake over graph g.
func New(g *kg.Graph) *Lake {
	return &Lake{
		Graph:      g,
		postings:   make(map[kg.EntityID][]TableID),
		entityFreq: make(map[kg.EntityID]int),
	}
}

// Add ingests a table and returns its ID. The table's entity annotations
// are indexed into the posting lists at this point; annotations added to the
// table afterwards are invisible to the lake (re-ingest instead).
func (l *Lake) Add(t *table.Table) TableID {
	id := TableID(len(l.tables))
	l.tables = append(l.tables, t)
	l.colIndex = append(l.colIndex, &atomic.Pointer[table.ColumnIndex]{})
	for _, e := range t.Entities() {
		l.postings[e] = append(l.postings[e], id)
		l.entityFreq[e]++
	}
	l.epoch.Add(1)
	return id
}

// Remove tombstones table id: the slot is nilled (every other table keeps
// its ID), the table's entities are stripped from the posting lists and
// frequency counts, and its memoized column index is dropped. Removing an
// unknown or already-removed ID returns false. Like Add, Remove must be
// serialized against readers by the caller.
func (l *Lake) Remove(id TableID) bool {
	if int(id) < 0 || int(id) >= len(l.tables) || l.tables[int(id)] == nil {
		return false
	}
	t := l.tables[int(id)]
	for _, e := range t.Entities() {
		pl := l.postings[e]
		for i, tid := range pl {
			if tid == id {
				pl = append(pl[:i], pl[i+1:]...)
				break
			}
		}
		if len(pl) == 0 {
			delete(l.postings, e)
		} else {
			l.postings[e] = pl
		}
		if l.entityFreq[e]--; l.entityFreq[e] == 0 {
			delete(l.entityFreq, e)
		}
	}
	l.tables[int(id)] = nil
	l.colIndex[int(id)].Store(nil)
	l.removed++
	l.epoch.Add(1)
	return true
}

// NumTables returns the number of live (non-removed) tables — the N behind
// IDF informativeness, the frequent-type filter, and Stats.
func (l *Lake) NumTables() int { return len(l.tables) - l.removed }

// NumSlots returns the number of table ID slots ever allocated, including
// tombstones. Table IDs are always in [0, NumSlots()).
func (l *Lake) NumSlots() int { return len(l.tables) }

// Epoch returns the corpus mutation counter: it advances by one on every
// Add and Remove, so equal epochs imply an identical corpus (within one
// process).
func (l *Lake) Epoch() uint64 { return l.epoch.Load() }

// Table returns the table with the given ID, or nil when the ID is out of
// range or the table was removed.
func (l *Lake) Table(id TableID) *table.Table {
	if int(id) < 0 || int(id) >= len(l.tables) {
		return nil
	}
	return l.tables[int(id)]
}

// Tables returns all table slots in ID order. The slice is owned by the
// lake; removed tables appear as nil entries.
func (l *Lake) Tables() []*table.Table { return l.tables }

// LiveTableIDs returns the IDs of all live tables in ascending order — the
// candidate set of a full scan.
func (l *Lake) LiveTableIDs() []TableID {
	out := make([]TableID, 0, l.NumTables())
	for id, t := range l.tables {
		if t != nil {
			out = append(out, TableID(id))
		}
	}
	return out
}

// TablesWith returns the IDs of tables mentioning entity e, in ID order.
// The slice is owned by the lake and must not be modified.
func (l *Lake) TablesWith(e kg.EntityID) []TableID { return l.postings[e] }

// ColumnIndex returns the per-column entity aggregation of table id,
// building it on first use and memoizing it for every later query (the
// scoring hot path folds columns through it instead of iterating raw
// cells). Concurrent first calls may build the index twice; both results
// are identical and one wins benignly. The index snapshots the table's
// annotations, consistent with the lake's own "re-ingest to update"
// contract.
func (l *Lake) ColumnIndex(id TableID) *table.ColumnIndex {
	if int(id) < 0 || int(id) >= len(l.colIndex) {
		return nil
	}
	slot := l.colIndex[int(id)]
	if ci := slot.Load(); ci != nil {
		return ci
	}
	t := l.tables[int(id)]
	if t == nil {
		// Removed table: Remove dropped the memo and the slot stays empty
		// (IDs are never reused), so stale reads are impossible.
		return nil
	}
	ci := table.BuildColumnIndex(t)
	slot.Store(ci)
	return ci
}

// EntityFrequency returns the number of tables mentioning entity e.
func (l *Lake) EntityFrequency(e kg.EntityID) int { return l.entityFreq[e] }

// DistinctEntities returns all entities mentioned anywhere in the lake,
// sorted by ID.
func (l *Lake) DistinctEntities() []kg.EntityID {
	out := make([]kg.EntityID, 0, len(l.entityFreq))
	for e := range l.entityFreq {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats holds the per-corpus statistics of Table 2 in the paper: table
// count, mean rows, mean columns, and mean entity-link coverage.
type Stats struct {
	Tables       int
	MeanRows     float64
	MeanColumns  float64
	MeanCoverage float64
	// DistinctEntities is the number of distinct linked entities.
	DistinctEntities int
}

// ComputeStats scans the live corpus once.
func (l *Lake) ComputeStats() Stats {
	s := Stats{Tables: l.NumTables(), DistinctEntities: len(l.entityFreq)}
	if s.Tables == 0 {
		return s
	}
	var rows, cols, cov float64
	for _, t := range l.tables {
		if t == nil {
			continue
		}
		rows += float64(t.NumRows())
		cols += float64(t.NumColumns())
		cov += t.LinkCoverage()
	}
	n := float64(s.Tables)
	s.MeanRows = rows / n
	s.MeanColumns = cols / n
	s.MeanCoverage = cov / n
	return s
}

// String renders the stats as one Table 2-style row.
func (s Stats) String() string {
	return fmt.Sprintf("T=%d R=%.1f C=%.1f Cov=%.1f%%", s.Tables, s.MeanRows, s.MeanColumns, 100*s.MeanCoverage)
}
