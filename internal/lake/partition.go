package lake

import (
	"hash/fnv"

	"thetis/internal/table"
)

// Partitioner assigns each ingested table to one of a fixed number of
// shards. Assignment happens once, at ingestion time; a table never moves.
// Partitioners may keep state (the size-balanced strategy does), so they
// are not safe for concurrent use — ingestion is single-writer anyway.
//
// Both built-in strategies are deterministic for a given ingestion
// sequence, which is what lets the differential test battery compare
// sharded against unsharded rankings run-over-run.
type Partitioner interface {
	// Shards returns the fixed shard count n.
	Shards() int
	// Assign returns the shard in [0, n) that will own t.
	Assign(t *table.Table) int
}

// NewHashPartitioner partitions by the FNV-1a hash of the table name
// modulo n: stateless, deterministic across processes, and independent of
// ingestion order. Tables sharing a name land on the same shard.
func NewHashPartitioner(n int) Partitioner {
	if n < 1 {
		panic("lake: partitioner needs at least 1 shard")
	}
	return hashPartitioner{n: n}
}

type hashPartitioner struct{ n int }

func (p hashPartitioner) Shards() int { return p.n }

func (p hashPartitioner) Assign(t *table.Table) int {
	h := fnv.New32a()
	h.Write([]byte(t.Name))
	return int(h.Sum32() % uint32(p.n))
}

// NewBalancedPartitioner partitions by load: each table goes to the shard
// with the fewest cells so far (ties break toward the lowest shard index).
// This keeps per-shard scoring work even when table sizes are skewed, at
// the cost of assignments depending on ingestion order.
func NewBalancedPartitioner(n int) Partitioner {
	if n < 1 {
		panic("lake: partitioner needs at least 1 shard")
	}
	return &balancedPartitioner{load: make([]int64, n)}
}

type balancedPartitioner struct{ load []int64 }

func (p *balancedPartitioner) Shards() int { return len(p.load) }

func (p *balancedPartitioner) Assign(t *table.Table) int {
	best := 0
	for i := 1; i < len(p.load); i++ {
		if p.load[i] < p.load[best] {
			best = i
		}
	}
	// Weigh by cell count, floored at 1 so empty tables still move the
	// needle and round-robin instead of piling onto shard 0.
	cells := int64(t.NumRows()) * int64(t.NumColumns())
	if cells < 1 {
		cells = 1
	}
	p.load[best] += cells
	return best
}
