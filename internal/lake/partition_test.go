package lake

import (
	"fmt"
	"testing"

	"thetis/internal/table"
)

func sizedTable(name string, rows, cols int) *table.Table {
	headers := make([]string, cols)
	for j := range headers {
		headers[j] = fmt.Sprintf("c%d", j)
	}
	t := table.New(name, headers)
	row := make([]table.Cell, cols)
	for j := range row {
		row[j] = table.Cell{Value: "x"}
	}
	for i := 0; i < rows; i++ {
		t.AppendRow(row)
	}
	return t
}

func TestHashPartitionerDeterministicAndInRange(t *testing.T) {
	p := NewHashPartitioner(4)
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", p.Shards())
	}
	q := NewHashPartitioner(4)
	for i := 0; i < 200; i++ {
		tb := sizedTable(fmt.Sprintf("table-%d", i), 1, 1)
		got := p.Assign(tb)
		if got < 0 || got >= 4 {
			t.Fatalf("assignment %d out of range", got)
		}
		// Stateless: a second partitioner — and a repeat call — agree.
		if q.Assign(tb) != got || p.Assign(tb) != got {
			t.Fatalf("hash assignment for %q not deterministic", tb.Name)
		}
	}
}

func TestHashPartitionerCoversAllShards(t *testing.T) {
	p := NewHashPartitioner(4)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[p.Assign(sizedTable(fmt.Sprintf("table-%d", i), 1, 1))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("200 hashed tables covered only shards %v", seen)
	}
}

func TestBalancedPartitionerEvensOutSkew(t *testing.T) {
	p := NewBalancedPartitioner(3)
	load := make([]int64, 3)
	// Heavily skewed sizes: a few huge tables among many small ones.
	for i := 0; i < 90; i++ {
		rows := 1
		if i%10 == 0 {
			rows = 500
		}
		tb := sizedTable(fmt.Sprintf("t%d", i), rows, 2)
		s := p.Assign(tb)
		load[s] += int64(rows) * 2
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Least-loaded placement keeps the spread within one max-table of even.
	if max-min > 1000 {
		t.Fatalf("balanced partitioner left skewed loads %v", load)
	}
}

func TestBalancedPartitionerRoundRobinsEmptyTables(t *testing.T) {
	p := NewBalancedPartitioner(3)
	for i := 0; i < 6; i++ {
		want := i % 3
		if got := p.Assign(sizedTable(fmt.Sprintf("e%d", i), 0, 0)); got != want {
			t.Fatalf("empty table %d assigned to %d, want %d", i, got, want)
		}
	}
}

func TestPartitionerPanicsOnBadShardCount(t *testing.T) {
	for _, f := range []func(){
		func() { NewHashPartitioner(0) },
		func() { NewBalancedPartitioner(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for 0 shards")
				}
			}()
			f()
		}()
	}
}
