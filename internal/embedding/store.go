package embedding

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"thetis/internal/kg"
)

// Store maps entities to their embedding vectors. Vectors are stored in one
// contiguous arena indexed by dense entity IDs; entities outside the trained
// vocabulary have no vector. A Store is safe for concurrent readers.
type Store struct {
	dim  int
	data []float32 // len = maxEntities * dim
	has  []bool
}

// NewStore creates a store for entity IDs in [0, maxEntities) with the
// given dimensionality.
func NewStore(maxEntities, dim int) *Store {
	return &Store{
		dim:  dim,
		data: make([]float32, maxEntities*dim),
		has:  make([]bool, maxEntities),
	}
}

// Dim returns the embedding dimensionality.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of entities that have a vector.
func (s *Store) Len() int {
	n := 0
	for _, h := range s.has {
		if h {
			n++
		}
	}
	return n
}

// Set stores the vector of entity e (copied into the arena).
func (s *Store) Set(e kg.EntityID, v Vector) {
	if len(v) != s.dim {
		panic(fmt.Sprintf("embedding: vector dim %d != store dim %d", len(v), s.dim))
	}
	copy(s.data[int(e)*s.dim:(int(e)+1)*s.dim], v)
	s.has[e] = true
}

// Get returns the vector of entity e, or (nil, false) when e has no
// embedding. The returned slice aliases the arena; callers must not modify
// it.
func (s *Store) Get(e kg.EntityID) (Vector, bool) {
	if int(e) >= len(s.has) || !s.has[e] {
		return nil, false
	}
	return Vector(s.data[int(e)*s.dim : (int(e)+1)*s.dim]), true
}

// Normalized returns a new store holding unit-normalized copies of every
// vector, in one contiguous arena indexed by the same dense entity IDs.
// Similarity kernels that reduce cosine to a single dot product (σ of
// Section 4.1) build their lookup table with this: the arena layout keeps
// consecutive entity vectors cache-adjacent, and the dense index replaces
// a per-entity allocation per vector. Zero vectors stay zero.
func (s *Store) Normalized() *Store {
	ns := &Store{
		dim:  s.dim,
		data: append([]float32(nil), s.data...),
		has:  append([]bool(nil), s.has...),
	}
	for e, h := range ns.has {
		if h {
			Normalize(ns.data[e*ns.dim : (e+1)*ns.dim])
		}
	}
	return ns
}

// Similarity returns the cosine similarity of two entities' embeddings and
// whether both embeddings exist.
func (s *Store) Similarity(a, b kg.EntityID) (float64, bool) {
	va, oka := s.Get(a)
	vb, okb := s.Get(b)
	if !oka || !okb {
		return 0, false
	}
	return Cosine(va, vb), true
}

// storeMagic identifies the binary serialization format.
const storeMagic = uint32(0x54485645) // "THVE"

// Write serializes the store in a compact binary format.
func (s *Store) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []uint32{storeMagic, uint32(len(s.has)), uint32(s.dim)}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for e, h := range s.has {
		if !h {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(e)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, s.data[e*s.dim:(e+1)*s.dim]); err != nil {
			return err
		}
	}
	// Terminator: an ID beyond the arena.
	if err := binary.Write(bw, binary.LittleEndian, ^uint32(0)); err != nil {
		return err
	}
	return bw.Flush()
}

// Plausibility caps for deserialized store shapes. They reject corrupt
// headers before the arena allocation, so a flipped byte in a dimension or
// entity count produces a descriptive error instead of an out-of-memory
// crash. 256M entities × 64K dims both sit far above any trained store.
const (
	maxStoreEntities = 1 << 28
	maxStoreDim      = 1 << 16
	maxStoreFloats   = 1 << 30 // arena cap: 4 GiB of float32
)

// ReadStore deserializes a store written by Write. It is safe on corrupt
// or truncated input: structural damage — a bad magic, implausible header
// shape, out-of-range entity ID, or truncation mid-record — returns an
// error naming the offending record, never a panic or unbounded
// allocation.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic, n, dim uint32
	for _, p := range []*uint32{&magic, &n, &dim} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("embedding: truncated store header: %w", err)
		}
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("embedding: bad magic %#x", magic)
	}
	if n > maxStoreEntities || dim > maxStoreDim || uint64(n)*uint64(dim) > maxStoreFloats {
		return nil, fmt.Errorf("embedding: implausible store shape: %d entities × %d dims", n, dim)
	}
	s := NewStore(int(n), int(dim))
	buf := make(Vector, dim)
	for rec := 0; ; rec++ {
		var id uint32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("embedding: record %d: truncated before terminator: %w", rec, err)
		}
		if id == ^uint32(0) {
			return s, nil
		}
		if id >= n {
			return nil, fmt.Errorf("embedding: record %d: entity %d out of range %d", rec, id, n)
		}
		if err := binary.Read(br, binary.LittleEndian, []float32(buf)); err != nil {
			return nil, fmt.Errorf("embedding: record %d (entity %d): truncated vector: %w", rec, id, err)
		}
		s.Set(kg.EntityID(id), buf)
	}
}
