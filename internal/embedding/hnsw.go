package embedding

import (
	"container/heap"
	"math"
	"sort"

	"thetis/internal/kg"
)

// HNSWConfig shapes a hierarchical navigable small world graph (Malkov &
// Yashunin). All parameters are deterministic inputs: two builds over the
// same store with the same config produce byte-identical graphs.
type HNSWConfig struct {
	// M is the maximum neighbor count per node on layers above 0; layer 0
	// allows 2M. Higher M improves recall at the cost of memory and build
	// time.
	M int
	// EfConstruction is the beam width used while inserting nodes. It only
	// affects build quality, not query cost.
	EfConstruction int
	// EfSearch is the default beam width of TopK. Recall rises with it;
	// EfSearch ≥ graph size makes layer-0 search exhaustive over the
	// connected component, recovering exact results.
	EfSearch int
	// Seed drives the level-assignment RNG. Levels depend only on (Seed,
	// insertion ordinal), never on the wall clock, which is what makes
	// rebuilds reproducible.
	Seed int64
}

// DefaultHNSWConfig returns the parameters used by the serving path:
// M=16, efConstruction=200, efSearch=64 (see docs/ANN.md for the measured
// recall/latency trade-off).
func DefaultHNSWConfig() HNSWConfig {
	return HNSWConfig{M: 16, EfConstruction: 200, EfSearch: 64, Seed: 1}
}

// Neighbor is one approximate nearest neighbor: an entity and its cosine
// similarity to the query vector (vectors are unit-normalized at build, so
// the similarity is a single dot product).
type Neighbor struct {
	ID    kg.EntityID
	Score float64
}

// HNSW is a pure-Go approximate nearest-neighbor index over an embedding
// store. It is immutable after Build/Load and safe for concurrent TopK
// calls. Ties are broken by ascending entity ID everywhere, so searches are
// deterministic across runs and parallelism levels.
type HNSW struct {
	cfg HNSWConfig
	dim int

	// ids maps node ordinal (insertion order) to entity ID.
	ids []kg.EntityID
	// vecs is the unit-normalized vector arena: node n occupies
	// vecs[n*dim : (n+1)*dim].
	vecs []float32
	// levels[n] is node n's top layer.
	levels []int32
	// links[n][l] are node n's neighbors (node ordinals) at layer l,
	// l ≤ levels[n]. Edges are symmetric: m ∈ links[n][l] ⇔ n ∈ links[m][l].
	links [][][]uint32

	entry    int32 // entry node ordinal; -1 when the graph is empty
	maxLevel int32
}

// Config returns the build configuration.
func (h *HNSW) Config() HNSWConfig { return h.cfg }

// Dim returns the vector dimensionality.
func (h *HNSW) Dim() int { return h.dim }

// Len returns the number of indexed entities.
func (h *HNSW) Len() int { return len(h.ids) }

// BuildHNSW indexes every entity of store that has a vector, in ascending
// entity ID order. Combined with the seeded level RNG this makes builds
// reproducible: same store, same config, same graph.
func BuildHNSW(store *Store, cfg HNSWConfig) *HNSW {
	if cfg.M <= 0 {
		cfg.M = DefaultHNSWConfig().M
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = DefaultHNSWConfig().EfConstruction
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = DefaultHNSWConfig().EfSearch
	}
	norm := store.Normalized()
	h := &HNSW{cfg: cfg, dim: norm.Dim(), entry: -1}
	rng := levelRNG{state: uint64(cfg.Seed)}
	mL := 1 / math.Log(float64(cfg.M))
	for e := 0; e < norm.NumSlots(); e++ {
		v, ok := norm.Get(kg.EntityID(e))
		if !ok {
			continue
		}
		h.insert(kg.EntityID(e), v, rng.level(mL))
	}
	return h
}

// NumSlots returns the size of the dense entity ID space the store covers
// (indexable IDs are [0, NumSlots), with or without a vector).
func (s *Store) NumSlots() int { return len(s.has) }

// levelRNG derives insertion levels from a splitmix64 stream. One draw per
// insert; the sequence depends only on the seed.
type levelRNG struct{ state uint64 }

func (r *levelRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// level draws floor(-ln(U)·mL), the standard HNSW level distribution,
// capped so a pathological draw cannot allocate an absurd layer stack.
func (r *levelRNG) level(mL float64) int32 {
	// 53 uniform bits in (0,1]; never 0, so Log is finite.
	u := (float64(r.next()>>11) + 1) / (1 << 53)
	l := int32(-math.Log(u) * mL)
	if l > maxHNSWLevel {
		l = maxHNSWLevel
	}
	return l
}

// maxHNSWLevel bounds layer stacks: with mL = 1/ln(16) reaching level 63
// has probability ~16^-63, so the cap never binds on real builds but keeps
// deserialized shapes plausible.
const maxHNSWLevel = 63

func (h *HNSW) vec(n uint32) Vector {
	return Vector(h.vecs[int(n)*h.dim : (int(n)+1)*h.dim])
}

func (h *HNSW) maxNeighbors(layer int32) int {
	if layer == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// insert adds one entity at the given top level, wiring symmetric edges.
func (h *HNSW) insert(e kg.EntityID, v Vector, level int32) {
	n := uint32(len(h.ids))
	h.ids = append(h.ids, e)
	h.vecs = append(h.vecs, v...)
	h.levels = append(h.levels, level)
	h.links = append(h.links, make([][]uint32, level+1))

	if h.entry < 0 {
		h.entry = int32(n)
		h.maxLevel = level
		return
	}

	ep := uint32(h.entry)
	// Greedy descent through layers above the new node's level.
	for lc := h.maxLevel; lc > level; lc-- {
		ep = h.greedyStep(v, ep, lc)
	}
	// Beam search and connect on the shared layers.
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		cands := h.searchLayer(v, []uint32{ep}, h.cfg.EfConstruction, lc, nil)
		for _, c := range h.selectNeighbors(v, cands, h.cfg.M) {
			h.connect(n, c.node, lc)
		}
		if len(cands) > 0 {
			ep = cands[0].node
		}
	}
	if level > h.maxLevel {
		h.entry = int32(n)
		h.maxLevel = level
	}
}

// connect adds the symmetric edge (a,b) at the given layer, shrinking
// either endpoint's list back to its cap by dropping the least similar
// edge — on both sides, so links stay symmetric.
func (h *HNSW) connect(a, b uint32, layer int32) {
	h.links[a][layer] = append(h.links[a][layer], b)
	h.links[b][layer] = append(h.links[b][layer], a)
	h.shrink(a, layer)
	h.shrink(b, layer)
}

// selectNeighbors is the paper's heuristic neighbor selection (Algorithm
// 4): walk candidates best-first and keep one only when it is closer to
// the query point than to every neighbor already kept, so edges spread
// across directions instead of crowding the query's densest cluster —
// the difference between ~0.90 and ~0.99 recall on clustered embedding
// stores. Remaining slots are refilled from the pruned candidates in
// order (the keepPrunedConnections variant), preserving degree.
func (h *HNSW) selectNeighbors(v Vector, cands []scoredNode, m int) []scoredNode {
	if len(cands) <= m {
		return cands
	}
	sel := make([]scoredNode, 0, m)
	pruned := make([]scoredNode, 0, len(cands)-m)
	for _, c := range cands {
		if len(sel) >= m {
			break
		}
		cv := h.vec(c.node)
		diverse := true
		for _, s := range sel {
			if dot32(cv, h.vec(s.node)) > c.score {
				diverse = false
				break
			}
		}
		if diverse {
			sel = append(sel, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(sel) >= m {
			break
		}
		sel = append(sel, c)
	}
	return sel
}

// shrink re-selects node n's edge list with the diversity heuristic when
// it exceeds the layer cap, dropping the pruned edges. An edge whose far
// endpoint would be left with no edges at this layer is kept regardless
// (overflow accepted): new nodes always stay attached to the component
// they joined through, which is what the layer-0 connectivity battery
// pins down.
func (h *HNSW) shrink(n uint32, layer int32) {
	max := h.maxNeighbors(layer)
	if len(h.links[n][layer]) <= max {
		return
	}
	nv := h.vec(n)
	cands := make([]scoredNode, len(h.links[n][layer]))
	for i, m := range h.links[n][layer] {
		cands[i] = scoredNode{node: m, score: dot32(nv, h.vec(m))}
	}
	sort.Slice(cands, func(i, j int) bool { return better(cands[i], cands[j]) })
	kept := make(map[uint32]bool, max)
	for _, c := range h.selectNeighbors(nv, cands, max) {
		kept[c.node] = true
	}
	for _, c := range cands {
		if len(h.links[n][layer]) <= max {
			return
		}
		if kept[c.node] || len(h.links[c.node][layer]) <= 1 {
			continue // selected, or dropping would strand c at this layer
		}
		h.dropEdge(n, c.node, layer)
	}
}

// dropEdge removes the symmetric edge (a,b) at layer.
func (h *HNSW) dropEdge(a, b uint32, layer int32) {
	h.links[a][layer] = removeNode(h.links[a][layer], b)
	h.links[b][layer] = removeNode(h.links[b][layer], a)
}

func removeNode(ls []uint32, n uint32) []uint32 {
	for i, m := range ls {
		if m == n {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}

// greedyStep walks layer lc from ep to the locally best node for v.
func (h *HNSW) greedyStep(v Vector, ep uint32, lc int32) uint32 {
	best, bestScore := ep, dot32(v, h.vec(ep))
	for {
		improved := false
		for _, m := range h.neighborsAt(best, lc) {
			s := dot32(v, h.vec(m))
			if s > bestScore || (s == bestScore && m < best) {
				best, bestScore = m, s
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

func (h *HNSW) neighborsAt(n uint32, lc int32) []uint32 {
	if lc > h.levels[n] {
		return nil
	}
	return h.links[n][lc]
}

// scoredNode orders candidates by descending score with ascending node
// ordinal as the tie-break, the total order that keeps searches
// deterministic.
type scoredNode struct {
	node  uint32
	score float64
}

func better(a, b scoredNode) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.node < b.node
}

// candHeap is a max-heap by better (best candidate on top).
type candHeap []scoredNode

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return better(h[i], h[j]) }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(scoredNode)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// resultHeap is a min-heap by better (worst kept result on top), bounding
// the result set to ef.
type resultHeap []scoredNode

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(scoredNode)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// searchLayer is the standard HNSW best-first beam search at one layer,
// returning up to ef nodes sorted best-first. With ef ≥ graph size the
// result heap never fills, the early-exit never fires, and the search
// visits the whole connected component — the exactness escape hatch.
func (h *HNSW) searchLayer(v Vector, eps []uint32, ef int, lc int32, visited []bool) []scoredNode {
	if visited == nil {
		visited = make([]bool, len(h.ids))
	}
	var cands candHeap
	var results resultHeap
	for _, ep := range eps {
		if visited[ep] {
			continue
		}
		visited[ep] = true
		sn := scoredNode{node: ep, score: dot32(v, h.vec(ep))}
		heap.Push(&cands, sn)
		heap.Push(&results, sn)
	}
	for cands.Len() > 0 {
		c := heap.Pop(&cands).(scoredNode)
		if results.Len() >= ef && better(results[0], c) {
			break
		}
		for _, m := range h.neighborsAt(c.node, lc) {
			if visited[m] {
				continue
			}
			visited[m] = true
			sn := scoredNode{node: m, score: dot32(v, h.vec(m))}
			if results.Len() < ef {
				heap.Push(&cands, sn)
				heap.Push(&results, sn)
			} else if better(sn, results[0]) {
				heap.Push(&cands, sn)
				heap.Pop(&results)
				heap.Push(&results, sn)
			}
		}
	}
	out := []scoredNode(results)
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// TopK returns the k approximate nearest entities to vec by cosine
// similarity, best first, ties by ascending entity ID. The beam width is
// max(cfg.EfSearch, k); use TopKEf to override it. vec need not be
// normalized (it is normalized into a scratch copy when necessary).
func (h *HNSW) TopK(vec Vector, k int) []Neighbor {
	return h.TopKEf(vec, k, h.cfg.EfSearch)
}

// TopKEf is TopK with an explicit beam width ef (clamped up to k), the knob
// the recall harness sweeps.
func (h *HNSW) TopKEf(vec Vector, k, ef int) []Neighbor {
	if k <= 0 || h.entry < 0 || len(vec) != h.dim {
		return nil
	}
	v := vec
	if n := Norm(vec); n != 0 && math.Abs(n-1) > 1e-6 {
		v = append(Vector(nil), vec...)
		Normalize(v)
	}
	if ef < k {
		ef = k
	}
	ep := uint32(h.entry)
	for lc := h.maxLevel; lc > 0; lc-- {
		ep = h.greedyStep(v, ep, lc)
	}
	found := h.searchLayer(v, []uint32{ep}, ef, 0, nil)
	if len(found) > k {
		found = found[:k]
	}
	out := make([]Neighbor, len(found))
	for i, sn := range found {
		out[i] = Neighbor{ID: h.ids[sn.node], Score: sn.score}
	}
	// Entity-ID tie-break for equal scores (node ordinals follow ID order
	// on Build, but loaded graphs keep whatever order was serialized).
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// BruteForceTopK is the exact reference TopK over a normalized store: full
// scan, same ordering contract. The differential harness scores HNSW
// recall against it.
func BruteForceTopK(norm *Store, vec Vector, k int) []Neighbor {
	if k <= 0 || len(vec) != norm.Dim() {
		return nil
	}
	v := vec
	if n := Norm(vec); n != 0 && math.Abs(n-1) > 1e-6 {
		v = append(Vector(nil), vec...)
		Normalize(v)
	}
	var all []Neighbor
	for e := 0; e < norm.NumSlots(); e++ {
		ev, ok := norm.Get(kg.EntityID(e))
		if !ok {
			continue
		}
		all = append(all, Neighbor{ID: kg.EntityID(e), Score: dot32(v, ev)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// dot32 is Dot with the float64 accumulation the rest of the package uses,
// kept local so the hot loop inlines.
func dot32(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}
