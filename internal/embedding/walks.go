package embedding

import (
	"math/rand"

	"thetis/internal/kg"
)

// WalkConfig controls random-walk corpus generation (the RDF2Vec recipe:
// a fixed number of fixed-depth walks started from every entity).
type WalkConfig struct {
	// WalksPerEntity is the number of walks started from each node.
	WalksPerEntity int
	// Length is the number of nodes per walk (including the start).
	Length int
	// Undirected also follows incoming edges, which connects entities that
	// share objects (e.g. two players of the same team) even in sparse KGs.
	Undirected bool
	// IncludePredicates interleaves edge labels into the walks as their own
	// vocabulary tokens (entity, predicate, entity, …), the original
	// RDF2Vec sequence shape. Predicates receive embeddings during
	// training but only entity vectors are kept in the store.
	IncludePredicates bool
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultWalkConfig mirrors common RDF2Vec settings scaled for in-memory
// graphs: 10 walks of depth 8 per entity, undirected.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerEntity: 10, Length: 8, Undirected: true, Seed: 1}
}

// GenerateWalks produces the random-walk corpus over g as entity-only
// sequences. Nodes with no usable edges yield length-1 walks (they still
// enter the vocabulary). For predicate-aware walks use GenerateTokenWalks.
func GenerateWalks(g *kg.Graph, cfg WalkConfig) [][]kg.EntityID {
	cfg.IncludePredicates = false
	tokens, _ := GenerateTokenWalks(g, cfg)
	if tokens == nil {
		return nil
	}
	walks := make([][]kg.EntityID, len(tokens))
	for i, tw := range tokens {
		w := make([]kg.EntityID, len(tw))
		for j, tok := range tw {
			w[j] = kg.EntityID(tok)
		}
		walks[i] = w
	}
	return walks
}

// GenerateTokenWalks produces walks over a combined vocabulary: tokens
// below g.NumEntities() are entity IDs; with IncludePredicates set, tokens
// numEntities+p are predicate IDs, interleaved between the entities they
// connect (the original RDF2Vec sequence shape). It returns the walks and
// the vocabulary size.
func GenerateTokenWalks(g *kg.Graph, cfg WalkConfig) ([][]uint32, int) {
	vocab := g.NumEntities()
	if cfg.IncludePredicates {
		vocab += g.NumPredicates()
	}
	if cfg.WalksPerEntity <= 0 || cfg.Length <= 0 {
		return nil, vocab
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumEntities()
	walks := make([][]uint32, 0, n*cfg.WalksPerEntity)
	for start := 0; start < n; start++ {
		for w := 0; w < cfg.WalksPerEntity; w++ {
			walk := make([]uint32, 0, cfg.Length)
			cur := kg.EntityID(start)
			walk = append(walk, uint32(cur))
			for hops := 1; hops < cfg.Length; hops++ {
				next, pred, ok := step(g, cur, cfg.Undirected, rng)
				if !ok {
					break
				}
				if cfg.IncludePredicates {
					walk = append(walk, uint32(n)+uint32(pred))
				}
				cur = next
				walk = append(walk, uint32(cur))
			}
			walks = append(walks, walk)
		}
	}
	return walks, vocab
}

// step picks a uniformly random neighbor of cur, returning the traversed
// predicate as well.
func step(g *kg.Graph, cur kg.EntityID, undirected bool, rng *rand.Rand) (kg.EntityID, kg.PredicateID, bool) {
	out := g.Out(cur)
	total := len(out)
	var in []kg.Edge
	if undirected {
		in = g.In(cur)
		total += len(in)
	}
	if total == 0 {
		return 0, 0, false
	}
	i := rng.Intn(total)
	if i < len(out) {
		return out[i].Object, out[i].Predicate, true
	}
	e := in[i-len(out)]
	return e.Object, e.Predicate, true
}
