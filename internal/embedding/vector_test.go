package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDotAndNorm(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm(Vector{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{1, 0}); math.Abs(got-1) > 1e-6 {
		t.Errorf("cos(same) = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); math.Abs(got) > 1e-6 {
		t.Errorf("cos(orthogonal) = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{-1, 0}); math.Abs(got+1) > 1e-6 {
		t.Errorf("cos(opposite) = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 0}); got != 0 {
		t.Errorf("cos(zero) = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(Vector{3, 4})
	if math.Abs(Norm(v)-1) > 1e-6 {
		t.Errorf("norm after Normalize = %v", Norm(v))
	}
	z := Normalize(Vector{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("Normalize(0) changed the zero vector")
	}
}

func TestMean(t *testing.T) {
	m := Mean([]Vector{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v, want [2 3]", m)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosineProperties(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := Vector(raw[:half]), Vector(raw[half:2*half])
		for _, x := range raw {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return true
			}
			if math.Abs(float64(x)) > 1e15 {
				return true // avoid float overflow artifacts
			}
		}
		c1, c2 := Cosine(a, b), Cosine(b, a)
		if math.Abs(c1-c2) > 1e-9 {
			return false
		}
		return c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
