package embedding

// Corruption matrix for HNSW snapshots (docs/RELIABILITY.md): every
// truncation and every single-byte flip of a valid snapshot must surface
// as atomicio.ErrCorruptSnapshot — never a panic, an unbounded allocation,
// or a silently wrong graph. Shape attacks that carry valid checksums
// (crafted in-package through Write) must trip the plausibility caps.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"thetis/internal/atomicio"
	"thetis/internal/faultio"
)

func hnswFixture(t testing.TB) []byte {
	t.Helper()
	h := BuildHNSW(randomStore(40, 6, 3), HNSWConfig{M: 4, EfConstruction: 24, EfSearch: 16, Seed: 2})
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorruptHNSWEveryTruncation: a snapshot truncated at any prefix (a
// crashed writer) must fail with the typed corruption error.
func TestCorruptHNSWEveryTruncation(t *testing.T) {
	data := hnswFixture(t)
	if _, err := LoadHNSW(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		_, err := LoadHNSW(faultio.NewShortReader(bytes.NewReader(data), int64(n)))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		}
		if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("prefix of %d bytes: non-typed error: %v", n, err)
		}
	}
}

// TestCorruptHNSWEveryByteFlip: every byte of the snapshot is covered by a
// section CRC, the envelope header, or the footer checksum, so any
// single-byte flip must be detected.
func TestCorruptHNSWEveryByteFlip(t *testing.T) {
	data := hnswFixture(t)
	for i := range data {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 0xFF
		_, err := LoadHNSW(bytes.NewReader(flipped))
		if err == nil {
			t.Fatalf("flip at byte %d/%d accepted", i, len(data))
		}
		if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
			t.Fatalf("flip at byte %d: non-typed error: %v", i, err)
		}
	}
}

// TestCorruptHNSWShapeAttacks: implausible shapes sealed behind valid
// checksums (a hostile or badly buggy writer) must trip the plausibility
// caps before any shape-driven allocation.
func TestCorruptHNSWShapeAttacks(t *testing.T) {
	write := func(h *HNSW) []byte {
		var buf bytes.Buffer
		if err := h.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := func() *HNSW {
		return BuildHNSW(randomStore(8, 4, 1), HNSWConfig{M: 3, EfConstruction: 12, EfSearch: 8, Seed: 1})
	}
	cases := []struct {
		name string
		hack func(h *HNSW)
		want string
	}{
		{"huge-M", func(h *HNSW) { h.cfg.M = 1 << 21 }, "implausible HNSW parameters"},
		{"zero-efsearch", func(h *HNSW) { h.cfg.EfSearch = 0 }, "implausible HNSW parameters"},
		{"huge-maxlevel", func(h *HNSW) { h.maxLevel = maxHNSWLevel + 1 }, "implausible HNSW max level"},
		{"entry-out-of-range", func(h *HNSW) { h.entry = int32(len(h.ids)) + 3 }, "entry point"},
		{"neighbor-out-of-range", func(h *HNSW) { h.links[0][0][0] = uint32(len(h.ids)) }, "bad neighbor"},
		{"self-loop", func(h *HNSW) { h.links[2][0][0] = 2 }, "bad neighbor"},
		{"level-above-max", func(h *HNSW) {
			h.levels[1] = h.maxLevel + 1
			h.links[1] = make([][]uint32, h.levels[1]+1)
		}, "level"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := base()
			tc.hack(h)
			_, err := LoadHNSW(bytes.NewReader(write(h)))
			if err == nil {
				t.Fatal("shape attack accepted")
			}
			if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
				t.Fatalf("non-typed error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultHNSWReadError: a device error mid-read surfaces instead of
// hanging or being misreported as success.
func TestFaultHNSWReadError(t *testing.T) {
	data := hnswFixture(t)
	for _, off := range []int64{0, 5, 17, 40, int64(len(data)) / 2, int64(len(data)) - 3} {
		if _, err := LoadHNSW(faultio.NewFailingReader(bytes.NewReader(data), off, nil)); err == nil {
			t.Fatalf("device error at byte %d ignored", off)
		}
	}
}
