package embedding

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"thetis/internal/faultio"
	"thetis/internal/kg"
)

func storeFixture(t *testing.T) []byte {
	t.Helper()
	s := NewStore(8, 4)
	s.Set(kg.EntityID(1), Vector{1, 2, 3, 4})
	s.Set(kg.EntityID(5), Vector{-1, 0.5, 0, 9})
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorruptStoreEveryTruncation: a store truncated at any prefix (a
// crashed writer) must fail with a descriptive error, never panic or return
// a store silently missing vectors it claims to have.
func TestCorruptStoreEveryTruncation(t *testing.T) {
	data := storeFixture(t)
	if _, err := ReadStore(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine store rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := ReadStore(faultio.NewShortReader(bytes.NewReader(data), int64(n))); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		}
	}
}

// TestCorruptStoreShapeFlips: corrupt header shapes and entity IDs must be
// rejected with record context instead of crashing the Set fast path, which
// used to panic on a dim mismatch.
func TestCorruptStoreShapeFlips(t *testing.T) {
	le := binary.LittleEndian

	// Implausible entity count (flipped high byte).
	data := storeFixture(t)
	le.PutUint32(data[4:], 1<<31)
	if _, err := ReadStore(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("implausible entity count: %v", err)
	}

	// Implausible dimension.
	data = storeFixture(t)
	le.PutUint32(data[8:], 1<<30)
	if _, err := ReadStore(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("implausible dim: %v", err)
	}

	// Individually plausible count and dim whose product overflows the
	// arena cap.
	data = storeFixture(t)
	le.PutUint32(data[4:], 1<<27)
	le.PutUint32(data[8:], 1<<15)
	if _, err := ReadStore(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("arena overflow shape: %v", err)
	}

	// First record's entity ID pushed out of range: the error names the
	// record so operators can locate the damage.
	data = storeFixture(t)
	le.PutUint32(data[12:], 7000)
	if _, err := ReadStore(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "record 0") {
		t.Errorf("out-of-range entity: %v", err)
	}

	// Bad magic.
	data = storeFixture(t)
	data[0] ^= 0xFF
	if _, err := ReadStore(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
}

// TestFaultStoreReadError: a device error mid-read surfaces instead of
// hanging or panicking.
func TestFaultStoreReadError(t *testing.T) {
	data := storeFixture(t)
	for _, off := range []int64{0, 3, 11, 13, int64(len(data)) / 2} {
		if _, err := ReadStore(faultio.NewFailingReader(bytes.NewReader(data), off, nil)); err == nil {
			t.Fatalf("device error at byte %d ignored", off)
		}
	}
}
