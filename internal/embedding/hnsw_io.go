package embedding

import (
	"bufio"
	"encoding/binary"
	"io"

	"thetis/internal/atomicio"
	"thetis/internal/kg"
)

// HNSW persistence: a built graph can be written to disk and reloaded,
// skipping the insertion pass at startup. The snapshot is framed in the
// checksummed atomicio envelope (magic + version header, CRC32C-sealed
// sections, whole-file footer checksum; see docs/RELIABILITY.md). Loading
// validates every layer: a snapshot with even a single flipped bit fails
// with atomicio.ErrCorruptSnapshot instead of producing a silently wrong
// graph, so callers can fall back to a rebuild from the embedding store.

const (
	hnswMagic   = uint32(0x54484E57) // "THNW"
	hnswVersion = uint32(1)
)

// Plausibility caps for deserialized graph shapes. They reject corrupt
// headers before any allocation sized from them, so a flipped count byte
// produces a descriptive error instead of an out-of-memory crash.
const (
	maxHNSWNodes     = maxStoreEntities
	maxHNSWParam     = 1 << 20 // M / efConstruction / efSearch bound
	maxHNSWNeighbors = 1 << 20 // per-node per-layer neighbor list bound
	hnswAllocHint    = 1 << 20 // cap on count-driven preallocation
)

// Write serializes the graph: configuration header, node table (entity ID,
// level, normalized vector), then adjacency lists, each section sealed by
// its own CRC32C.
func (h *HNSW) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sw, err := atomicio.NewSnapshotWriter(bw, hnswMagic, hnswVersion)
	if err != nil {
		return err
	}
	// Header section.
	cw := atomicio.NewCRCWriter(sw)
	wU32 := func(v uint32) error { return binary.Write(cw, binary.LittleEndian, v) }
	for _, v := range []uint32{
		uint32(h.cfg.M), uint32(h.cfg.EfConstruction), uint32(h.cfg.EfSearch),
		uint32(uint64(h.cfg.Seed)), uint32(uint64(h.cfg.Seed) >> 32),
		uint32(h.dim), uint32(len(h.ids)),
		uint32(h.entry + 1), // 0 = empty graph
		uint32(h.maxLevel),
	} {
		if err := wU32(v); err != nil {
			return err
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	// Node section: entity ID, top level, vector per node.
	cw = atomicio.NewCRCWriter(sw)
	for n := range h.ids {
		if err := binary.Write(cw, binary.LittleEndian, uint32(h.ids[n])); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, uint32(h.levels[n])); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, h.vecs[n*h.dim:(n+1)*h.dim]); err != nil {
			return err
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	// Link section: per node, per layer 0..level, count + neighbor ordinals.
	cw = atomicio.NewCRCWriter(sw)
	for n := range h.ids {
		for _, ls := range h.links[n] {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(ls))); err != nil {
				return err
			}
			if err := binary.Write(cw, binary.LittleEndian, ls); err != nil {
				return err
			}
		}
	}
	if err := cw.WriteSum(); err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadHNSW reads a snapshot written by Write. Corrupt input of any kind —
// flipped bytes, truncation, implausible shapes — fails with
// atomicio.ErrCorruptSnapshot, never a wrong-but-loaded graph.
func LoadHNSW(r io.Reader) (*HNSW, error) {
	sr, err := atomicio.NewSnapshotReader(bufio.NewReader(r), hnswMagic)
	if err != nil {
		return nil, err
	}
	if v := sr.Version(); v != hnswVersion {
		return nil, atomicio.Corruptf("embedding: unsupported HNSW snapshot version %d (want %d)", v, hnswVersion)
	}
	// Header section: decode, checksum, then validate shape before any
	// count-driven allocation.
	cr := atomicio.NewCRCReader(sr)
	fields := make([]uint32, 9)
	for i := range fields {
		if err := binary.Read(cr, binary.LittleEndian, &fields[i]); err != nil {
			return nil, atomicio.Corruptf("embedding: truncated HNSW header: %v", err)
		}
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	h := &HNSW{
		cfg: HNSWConfig{
			M:              int(fields[0]),
			EfConstruction: int(fields[1]),
			EfSearch:       int(fields[2]),
			Seed:           int64(uint64(fields[3]) | uint64(fields[4])<<32),
		},
		dim: int(fields[5]),
	}
	numNodes := fields[6]
	entry, maxLevel := fields[7], fields[8]
	switch {
	case h.cfg.M < 1 || h.cfg.M > maxHNSWParam,
		h.cfg.EfConstruction < 1 || h.cfg.EfConstruction > maxHNSWParam,
		h.cfg.EfSearch < 1 || h.cfg.EfSearch > maxHNSWParam:
		return nil, atomicio.Corruptf("embedding: implausible HNSW parameters M=%d efC=%d efS=%d",
			h.cfg.M, h.cfg.EfConstruction, h.cfg.EfSearch)
	case h.dim < 1 || h.dim > maxStoreDim:
		return nil, atomicio.Corruptf("embedding: implausible HNSW dimension %d", h.dim)
	case numNodes > maxHNSWNodes || uint64(numNodes)*uint64(h.dim) > maxStoreFloats:
		return nil, atomicio.Corruptf("embedding: implausible HNSW shape: %d nodes × %d dims", numNodes, h.dim)
	case entry > numNodes:
		return nil, atomicio.Corruptf("embedding: HNSW entry point %d out of range %d", entry, numNodes)
	case numNodes > 0 && entry == 0:
		return nil, atomicio.Corruptf("embedding: HNSW snapshot has %d nodes but no entry point", numNodes)
	case maxLevel > maxHNSWLevel:
		return nil, atomicio.Corruptf("embedding: implausible HNSW max level %d", maxLevel)
	}
	h.entry = int32(entry) - 1
	h.maxLevel = int32(maxLevel)

	// Node section.
	cr = atomicio.NewCRCReader(sr)
	hint := min(int(numNodes), hnswAllocHint)
	h.ids = make([]kg.EntityID, 0, hint)
	h.levels = make([]int32, 0, hint)
	h.vecs = make([]float32, 0, hint*h.dim)
	buf := make([]float32, h.dim)
	for n := uint32(0); n < numNodes; n++ {
		var id, level uint32
		if err := binary.Read(cr, binary.LittleEndian, &id); err != nil {
			return nil, atomicio.Corruptf("embedding: HNSW node %d: truncated: %v", n, err)
		}
		if err := binary.Read(cr, binary.LittleEndian, &level); err != nil {
			return nil, atomicio.Corruptf("embedding: HNSW node %d: truncated: %v", n, err)
		}
		if id >= maxStoreEntities {
			return nil, atomicio.Corruptf("embedding: HNSW node %d: implausible entity %d", n, id)
		}
		if level > maxLevel {
			return nil, atomicio.Corruptf("embedding: HNSW node %d: level %d above max %d", n, level, maxLevel)
		}
		if err := binary.Read(cr, binary.LittleEndian, buf); err != nil {
			return nil, atomicio.Corruptf("embedding: HNSW node %d: truncated vector: %v", n, err)
		}
		h.ids = append(h.ids, kg.EntityID(id))
		h.levels = append(h.levels, int32(level))
		h.vecs = append(h.vecs, buf...)
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}

	// Link section.
	cr = atomicio.NewCRCReader(sr)
	h.links = make([][][]uint32, 0, hint)
	for n := uint32(0); n < numNodes; n++ {
		layers := make([][]uint32, h.levels[n]+1)
		for l := range layers {
			var cnt uint32
			if err := binary.Read(cr, binary.LittleEndian, &cnt); err != nil {
				return nil, atomicio.Corruptf("embedding: HNSW node %d layer %d: truncated links: %v", n, l, err)
			}
			if cnt > maxHNSWNeighbors {
				return nil, atomicio.Corruptf("embedding: HNSW node %d layer %d: implausible neighbor count %d", n, l, cnt)
			}
			ls := make([]uint32, 0, min(int(cnt), hnswAllocHint))
			for i := uint32(0); i < cnt; i++ {
				var m uint32
				if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
					return nil, atomicio.Corruptf("embedding: HNSW node %d layer %d: truncated links: %v", n, l, err)
				}
				if m >= numNodes || m == n {
					return nil, atomicio.Corruptf("embedding: HNSW node %d layer %d: bad neighbor %d", n, l, m)
				}
				ls = append(ls, m)
			}
			layers[l] = ls
		}
		h.links = append(h.links, layers)
	}
	if err := cr.VerifySum(); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return h, nil
}
