// Package embedding provides KG entity embeddings: the RDF2Vec substitute
// of this reproduction, backing the embedding-based similarity function of
// the paper's Section 4.1 and the hyperplane LSEI of Section 6.2. It
// generates random walks over the knowledge graph
// and trains a skip-gram model with negative sampling (word2vec) on the walk
// corpus, yielding one dense vector per entity such that entities with
// similar graph neighborhoods have similar vectors — the only property the
// Thetis similarity function σ consumes.
package embedding

import "math"

// Vector is a dense float32 embedding.
type Vector []float32

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a Vector) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity in [-1, 1]. Zero vectors have
// similarity 0 with everything.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales a to unit norm in place and returns it. Zero vectors are
// returned unchanged.
func Normalize(a Vector) Vector {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := float32(1 / n)
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Add accumulates b into a.
func Add(a, b Vector) {
	for i := range a {
		a[i] += b[i]
	}
}

// Scale multiplies a by s in place.
func Scale(a Vector, s float64) {
	f := float32(s)
	for i := range a {
		a[i] *= f
	}
}

// Mean returns the element-wise mean of the given vectors; nil when the
// input is empty. All vectors must share one dimension.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := make(Vector, len(vs[0]))
	for _, v := range vs {
		Add(out, v)
	}
	Scale(out, 1/float64(len(vs)))
	return out
}
