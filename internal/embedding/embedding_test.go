package embedding

import (
	"bytes"
	"fmt"
	"testing"

	"thetis/internal/kg"
)

func TestStoreSetGet(t *testing.T) {
	s := NewStore(10, 3)
	if _, ok := s.Get(4); ok {
		t.Error("Get on empty store reported a vector")
	}
	s.Set(4, Vector{1, 2, 3})
	v, ok := s.Get(4)
	if !ok || v[0] != 1 || v[2] != 3 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if s.Len() != 1 || s.Dim() != 3 {
		t.Errorf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if _, ok := s.Get(99); ok {
		t.Error("out-of-range Get reported a vector")
	}
}

func TestStoreSetWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set with wrong dim did not panic")
		}
	}()
	NewStore(5, 3).Set(0, Vector{1})
}

func TestStoreSimilarity(t *testing.T) {
	s := NewStore(5, 2)
	s.Set(0, Vector{1, 0})
	s.Set(1, Vector{1, 0})
	s.Set(2, Vector{0, 1})
	if sim, ok := s.Similarity(0, 1); !ok || sim < 0.999 {
		t.Errorf("sim(0,1) = %v, %v", sim, ok)
	}
	if sim, ok := s.Similarity(0, 2); !ok || sim > 0.001 {
		t.Errorf("sim(0,2) = %v, %v", sim, ok)
	}
	if _, ok := s.Similarity(0, 4); ok {
		t.Error("similarity with missing vector reported ok")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(8, 4)
	s.Set(1, Vector{1, 2, 3, 4})
	s.Set(7, Vector{-1, 0, 1, 0.5})
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Dim() != 4 {
		t.Fatalf("round trip Len=%d Dim=%d", back.Len(), back.Dim())
	}
	v, ok := back.Get(7)
	if !ok || v[3] != 0.5 {
		t.Errorf("vector 7 after round trip = %v, %v", v, ok)
	}
	if _, ok := back.Get(2); ok {
		t.Error("round trip invented a vector")
	}
}

func TestReadStoreBadMagic(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
}

// twoClusterGraph builds two disconnected hub-and-spoke communities.
func twoClusterGraph() (*kg.Graph, []kg.EntityID, []kg.EntityID) {
	g := kg.NewGraph()
	p := g.AddPredicate("rel")
	var a, b []kg.EntityID
	hubA := g.AddEntity("hubA", "")
	hubB := g.AddEntity("hubB", "")
	a = append(a, hubA)
	b = append(b, hubB)
	for i := 0; i < 8; i++ {
		ea := g.AddEntity(fmt.Sprintf("a%d", i), "")
		eb := g.AddEntity(fmt.Sprintf("b%d", i), "")
		g.AddEdge(ea, p, hubA)
		g.AddEdge(eb, p, hubB)
		// Intra-cluster chains for connectivity.
		if i > 0 {
			g.AddEdge(a[len(a)-1], p, ea)
			g.AddEdge(b[len(b)-1], p, eb)
		}
		a = append(a, ea)
		b = append(b, eb)
	}
	return g, a, b
}

func TestGenerateWalks(t *testing.T) {
	g, _, _ := twoClusterGraph()
	cfg := WalkConfig{WalksPerEntity: 3, Length: 5, Undirected: true, Seed: 42}
	walks := GenerateWalks(g, cfg)
	if len(walks) != g.NumEntities()*3 {
		t.Fatalf("walk count = %d, want %d", len(walks), g.NumEntities()*3)
	}
	for _, w := range walks {
		if len(w) == 0 || len(w) > 5 {
			t.Fatalf("walk length %d out of range", len(w))
		}
	}
	// Determinism.
	again := GenerateWalks(g, cfg)
	for i := range walks {
		if len(walks[i]) != len(again[i]) {
			t.Fatal("walks not deterministic")
		}
		for j := range walks[i] {
			if walks[i][j] != again[i][j] {
				t.Fatal("walks not deterministic")
			}
		}
	}
}

func TestGenerateWalksIsolatedNode(t *testing.T) {
	g := kg.NewGraph()
	g.AddEntity("lonely", "")
	walks := GenerateWalks(g, WalkConfig{WalksPerEntity: 2, Length: 4, Seed: 1})
	if len(walks) != 2 {
		t.Fatalf("walks = %v", walks)
	}
	for _, w := range walks {
		if len(w) != 1 {
			t.Errorf("isolated node walk = %v, want length 1", w)
		}
	}
}

func TestGenerateWalksDirectedDeadEnd(t *testing.T) {
	g := kg.NewGraph()
	p := g.AddPredicate("p")
	a := g.AddEntity("a", "")
	b := g.AddEntity("b", "")
	g.AddEdge(a, p, b)
	walks := GenerateWalks(g, WalkConfig{WalksPerEntity: 1, Length: 5, Undirected: false, Seed: 1})
	// Walk from b cannot move (no outgoing edges).
	for _, w := range walks {
		if w[0] == b && len(w) != 1 {
			t.Errorf("directed walk escaped a dead end: %v", w)
		}
	}
}

func TestGenerateWalksInvalidConfig(t *testing.T) {
	g, _, _ := twoClusterGraph()
	if w := GenerateWalks(g, WalkConfig{WalksPerEntity: 0, Length: 5}); w != nil {
		t.Error("zero walks config should return nil")
	}
}

func TestTrainSeparatesClusters(t *testing.T) {
	g, a, b := twoClusterGraph()
	store := TrainGraph(g,
		WalkConfig{WalksPerEntity: 20, Length: 8, Undirected: true, Seed: 3},
		TrainConfig{Dim: 16, Window: 4, Negatives: 5, Epochs: 8, LearningRate: 0.05, Seed: 3})

	if store.Len() != g.NumEntities() {
		t.Fatalf("trained %d vectors, want %d", store.Len(), g.NumEntities())
	}
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for _, x := range a {
		for _, y := range a {
			if x != y {
				s, _ := store.Similarity(x, y)
				intra += s
				nIntra++
			}
		}
		for _, y := range b {
			s, _ := store.Similarity(x, y)
			inter += s
			nInter++
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter {
		t.Errorf("embeddings failed to separate clusters: intra=%.3f inter=%.3f", intra, inter)
	}
}

func TestTrainDeterministic(t *testing.T) {
	g, _, _ := twoClusterGraph()
	w := WalkConfig{WalksPerEntity: 5, Length: 6, Undirected: true, Seed: 9}
	c := TrainConfig{Dim: 8, Window: 3, Negatives: 3, Epochs: 2, LearningRate: 0.025, Seed: 9}
	s1 := TrainGraph(g, w, c)
	s2 := TrainGraph(g, w, c)
	v1, _ := s1.Get(0)
	v2, _ := s2.Get(0)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	s := Train(nil, 10, DefaultTrainConfig())
	if s.Len() != 0 {
		t.Errorf("empty corpus produced %d vectors", s.Len())
	}
}

func TestTrainSkipsAbsentEntities(t *testing.T) {
	walks := [][]kg.EntityID{{0, 1, 0, 1}}
	s := Train(walks, 5, TrainConfig{Dim: 4, Window: 2, Negatives: 2, Epochs: 2, LearningRate: 0.025, Seed: 1})
	if _, ok := s.Get(3); ok {
		t.Error("entity absent from walks received a vector")
	}
	if _, ok := s.Get(0); !ok {
		t.Error("entity present in walks received no vector")
	}
}

func TestGenerateTokenWalksWithPredicates(t *testing.T) {
	g, _, _ := twoClusterGraph()
	cfg := WalkConfig{WalksPerEntity: 2, Length: 4, Undirected: true, IncludePredicates: true, Seed: 1}
	walks, vocab := GenerateTokenWalks(g, cfg)
	if vocab != g.NumEntities()+g.NumPredicates() {
		t.Fatalf("vocab = %d, want %d", vocab, g.NumEntities()+g.NumPredicates())
	}
	n := uint32(g.NumEntities())
	sawPredicate := false
	for _, w := range walks {
		// Walks alternate entity, predicate, entity, …
		for i, tok := range w {
			isPred := tok >= n
			if isPred {
				sawPredicate = true
			}
			if i%2 == 0 && isPred {
				t.Fatalf("walk %v: even position %d holds a predicate token", w, i)
			}
			if i%2 == 1 && !isPred {
				t.Fatalf("walk %v: odd position %d holds an entity token", w, i)
			}
			if int(tok) >= vocab {
				t.Fatalf("token %d out of vocabulary %d", tok, vocab)
			}
		}
	}
	if !sawPredicate {
		t.Error("no predicate tokens emitted")
	}
}

func TestTrainWithPredicateWalksSeparatesClusters(t *testing.T) {
	g, a, b := twoClusterGraph()
	store := TrainGraph(g,
		WalkConfig{WalksPerEntity: 20, Length: 8, Undirected: true, IncludePredicates: true, Seed: 3},
		TrainConfig{Dim: 16, Window: 4, Negatives: 5, Epochs: 8, LearningRate: 0.05, Seed: 3})
	if store.Len() != g.NumEntities() {
		t.Fatalf("trained %d entity vectors, want %d (predicates must not leak into the store)",
			store.Len(), g.NumEntities())
	}
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for _, x := range a {
		for _, y := range a {
			if x != y {
				s, _ := store.Similarity(x, y)
				intra += s
				nIntra++
			}
		}
		for _, y := range b {
			s, _ := store.Similarity(x, y)
			inter += s
			nInter++
		}
	}
	if intra/float64(nIntra) <= inter/float64(nInter) {
		t.Errorf("predicate-aware embeddings failed to separate clusters: intra=%.3f inter=%.3f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}
