package embedding

// Property battery for HNSW graph invariants (ISSUE 8, docs/ANN.md):
// randomized seeded insert sequences must always yield a graph with
// symmetric links, monotone layer stacks, a connected layer 0, and exact
// recall once the beam covers the whole store. A failing sequence is
// ddmin-shrunk to a minimal reproducer, the same style as the live-lake
// battery in live_test.go.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"thetis/internal/kg"
)

// hnswOp is one insert: an entity whose vector is derived deterministically
// from (seed, entity), so an op list stays self-contained under shrinking.
type hnswOp struct {
	entity kg.EntityID
}

func opVector(seed int64, e kg.EntityID, dim int) Vector {
	rng := rand.New(rand.NewSource(seed ^ int64(e)*0x9e3779b9))
	v := make(Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	Normalize(v)
	return v
}

// buildFromOps replays an insert sequence through the same insertion path
// BuildHNSW uses, with levels drawn from the op ordinal like a real build.
func buildFromOps(ops []hnswOp, cfg HNSWConfig, vecSeed int64, dim int) *HNSW {
	h := &HNSW{cfg: cfg, dim: dim, entry: -1}
	rng := levelRNG{state: uint64(cfg.Seed)}
	mL := 1 / math.Log(float64(cfg.M)) // mirror BuildHNSW's level scale
	for _, op := range ops {
		h.insert(op.entity, opVector(vecSeed, op.entity, dim), rng.level(mL))
	}
	return h
}

// checkHNSWInvariants validates the four battery invariants, returning a
// descriptive error for the first violation.
func checkHNSWInvariants(h *HNSW) error {
	// Level monotonicity: one adjacency list per layer 0..level, and every
	// edge stays within both endpoints' layer stacks.
	for n := range h.ids {
		if got, want := len(h.links[n]), int(h.levels[n])+1; got != want {
			return fmt.Errorf("node %d: %d layer lists for level %d", n, got, h.levels[n])
		}
		for l, ls := range h.links[n] {
			seen := map[uint32]bool{}
			for _, m := range ls {
				if m == uint32(n) {
					return fmt.Errorf("node %d layer %d: self loop", n, l)
				}
				if seen[m] {
					return fmt.Errorf("node %d layer %d: duplicate edge to %d", n, l, m)
				}
				seen[m] = true
				if int32(l) > h.levels[m] {
					return fmt.Errorf("node %d layer %d: neighbor %d only reaches level %d", n, l, m, h.levels[m])
				}
			}
		}
	}
	// Bidirectional links: m ∈ links[n][l] ⇔ n ∈ links[m][l].
	for n := range h.ids {
		for l, ls := range h.links[n] {
			for _, m := range ls {
				if !containsNode(h.links[m][l], uint32(n)) {
					return fmt.Errorf("asymmetric edge: %d→%d at layer %d has no reverse", n, m, l)
				}
			}
		}
	}
	// Layer-0 connectivity: BFS from the entry point reaches every node.
	if len(h.ids) > 0 {
		if h.entry < 0 {
			return fmt.Errorf("non-empty graph without entry point")
		}
		seen := make([]bool, len(h.ids))
		queue := []uint32{uint32(h.entry)}
		seen[h.entry] = true
		reached := 0
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			reached++
			for _, m := range h.links[n][0] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		if reached != len(h.ids) {
			return fmt.Errorf("layer 0 disconnected: reached %d of %d nodes", reached, len(h.ids))
		}
	}
	return nil
}

func containsNode(ls []uint32, n uint32) bool {
	for _, m := range ls {
		if m == n {
			return true
		}
	}
	return false
}

// checkExactRecall verifies TopKEf with ef ≥ graph size matches brute
// force over the same vectors for a handful of probes.
func checkExactRecall(h *HNSW, ops []hnswOp, vecSeed int64, dim int) error {
	norm := NewStore(maxEntitySlot(ops)+1, dim)
	for _, op := range ops {
		norm.Set(op.entity, opVector(vecSeed, op.entity, dim))
	}
	for i := 0; i < len(ops); i += 1 + len(ops)/8 {
		v := opVector(vecSeed, ops[i].entity, dim)
		exact := BruteForceTopK(norm, v, 5)
		got := h.TopKEf(v, 5, h.Len())
		if !reflect.DeepEqual(exact, got) {
			return fmt.Errorf("probe %d (entity %d): ef=N result %v != exact %v", i, ops[i].entity, got, exact)
		}
	}
	return nil
}

func maxEntitySlot(ops []hnswOp) int {
	max := 0
	for _, op := range ops {
		if int(op.entity) > max {
			max = int(op.entity)
		}
	}
	return max
}

// shrinkHNSWOps minimizes a failing insert sequence by chunk-halving
// deletion, bounded to 48 trials (ddmin, same shape as shrinkLiveOps).
func shrinkHNSWOps(check func([]hnswOp) error, ops []hnswOp) []hnswOp {
	trials := 0
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(ops) && trials < 48; {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			cand := make([]hnswOp, 0, len(ops)-(end-start))
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[end:]...)
			trials++
			if check(cand) != nil {
				ops = cand // still fails without the chunk: keep it out
			} else {
				start = end
			}
		}
	}
	return ops
}

func TestHNSWGraphInvariants(t *testing.T) {
	scenarios := []struct {
		name    string
		n, dim  int
		cfg     HNSWConfig
		vecSeed int64
	}{
		{"m4-small", 60, 8, HNSWConfig{M: 4, EfConstruction: 30, EfSearch: 16, Seed: 1}, 101},
		{"m6-mid", 200, 12, HNSWConfig{M: 6, EfConstruction: 60, EfSearch: 32, Seed: 2}, 202},
		{"m8-shuffled", 350, 16, HNSWConfig{M: 8, EfConstruction: 80, EfSearch: 32, Seed: 3}, 303},
		{"m3-tight", 120, 6, HNSWConfig{M: 3, EfConstruction: 24, EfSearch: 12, Seed: 4}, 404},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Sparse entity IDs in shuffled insertion order: gaps and
			// non-monotone arrivals are both part of the property space.
			rng := rand.New(rand.NewSource(sc.vecSeed))
			ops := make([]hnswOp, sc.n)
			for i := range ops {
				ops[i] = hnswOp{entity: kg.EntityID(i*2 + rng.Intn(2))}
			}
			rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

			check := func(ops []hnswOp) error {
				h := buildFromOps(ops, sc.cfg, sc.vecSeed, sc.dim)
				if err := checkHNSWInvariants(h); err != nil {
					return err
				}
				if len(ops) == 0 {
					return nil
				}
				return checkExactRecall(h, ops, sc.vecSeed, sc.dim)
			}
			if err := check(ops); err != nil {
				min := shrinkHNSWOps(check, ops)
				t.Fatalf("graph invariant broken: %v\nminimal sequence (%d of %d inserts): %v",
					check(min), len(min), len(ops), min)
			}
		})
	}
}
