package embedding

import (
	"bytes"
	"errors"
	"testing"

	"thetis/internal/atomicio"
)

// FuzzLoadHNSW: the graph deserializer must never panic or allocate
// unboundedly on arbitrary bytes; every rejection is the typed
// ErrCorruptSnapshot, and anything it accepts must survive a write/reload
// round trip. Seeds live in testdata/fuzz/FuzzLoadHNSW.
func FuzzLoadHNSW(f *testing.F) {
	h := BuildHNSW(randomStore(12, 4, 9), HNSWConfig{M: 3, EfConstruction: 12, EfSearch: 8, Seed: 7})
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // footer checksum torn off
	f.Add(valid[:9])            // mid-header
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := LoadHNSW(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, atomicio.ErrCorruptSnapshot) {
				t.Fatalf("non-typed load error: %v", err)
			}
			return
		}
		// Accepted input: searching and re-serializing must both work.
		if g.Len() > 0 {
			probe := make(Vector, g.Dim())
			probe[0] = 1
			_ = g.TopK(probe, 3)
		}
		var out bytes.Buffer
		if err := g.Write(&out); err != nil {
			t.Fatalf("accepted graph failed to re-serialize: %v", err)
		}
		if _, err := LoadHNSW(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-serialized graph rejected: %v", err)
		}
	})
}
