package embedding

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"thetis/internal/kg"
)

// randomStore fills a store with n unit-scale random vectors (every slot
// below n gets one; IDs are dense).
func randomStore(n, dim int, seed int64) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := NewStore(n, dim)
	v := make(Vector, dim)
	for e := 0; e < n; e++ {
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		s.Set(kg.EntityID(e), v)
	}
	return s
}

// recallAgainstExact returns mean recall@k of the HNSW result sets versus
// brute force over nq query vectors drawn from the store itself.
func recallAgainstExact(t *testing.T, h *HNSW, norm *Store, k, ef, nq int) float64 {
	t.Helper()
	total := 0.0
	for q := 0; q < nq; q++ {
		e := kg.EntityID(q * norm.NumSlots() / nq)
		v, ok := norm.Get(e)
		if !ok {
			continue
		}
		exact := BruteForceTopK(norm, v, k)
		got := h.TopKEf(v, k, ef)
		want := make(map[kg.EntityID]bool, len(exact))
		for _, nb := range exact {
			want[nb.ID] = true
		}
		hit := 0
		for _, nb := range got {
			if want[nb.ID] {
				hit++
			}
		}
		total += float64(hit) / float64(len(exact))
	}
	return total / float64(nq)
}

func TestHNSWTopKRecall(t *testing.T) {
	store := randomStore(800, 16, 7)
	norm := store.Normalized()
	h := BuildHNSW(store, HNSWConfig{M: 12, EfConstruction: 120, EfSearch: 64, Seed: 1})
	if h.Len() != 800 {
		t.Fatalf("Len = %d, want 800", h.Len())
	}
	if r := recallAgainstExact(t, h, norm, 10, 64, 50); r < 0.95 {
		t.Fatalf("recall@10 ef=64 = %.3f, want >= 0.95", r)
	}
}

// TestHNSWExactWhenEfCoversStore: with efSearch ≥ store size layer-0
// search is exhaustive over the connected component, so results must match
// brute force exactly — the exactness escape hatch documented in
// docs/ANN.md.
func TestHNSWExactWhenEfCoversStore(t *testing.T) {
	store := randomStore(300, 12, 11)
	norm := store.Normalized()
	h := BuildHNSW(store, HNSWConfig{M: 8, EfConstruction: 80, EfSearch: 300, Seed: 3})
	for q := 0; q < 20; q++ {
		e := kg.EntityID(q * 15)
		v, _ := norm.Get(e)
		exact := BruteForceTopK(norm, v, 10)
		got := h.TopK(v, 10)
		if !reflect.DeepEqual(exact, got) {
			t.Fatalf("entity %d: ef >= N result diverges from brute force:\n got %v\nwant %v", e, got, exact)
		}
	}
}

// TestHNSWBuildDeterminism: two builds over the same store and config must
// serialize to byte-identical snapshots (seeded level RNG, ID-ordered
// inserts, deterministic tie-breaks).
func TestHNSWBuildDeterminism(t *testing.T) {
	store := randomStore(400, 12, 21)
	cfg := HNSWConfig{M: 8, EfConstruction: 100, EfSearch: 32, Seed: 9}
	var a, b bytes.Buffer
	if err := BuildHNSW(store, cfg).Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := BuildHNSW(store, cfg).Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two builds over the same store serialized differently")
	}
}

// TestHNSWRoundTrip: Write → LoadHNSW must preserve the graph exactly —
// identical config, identical TopK results, and a byte-identical re-write.
func TestHNSWRoundTrip(t *testing.T) {
	store := randomStore(250, 10, 31)
	norm := store.Normalized()
	h := BuildHNSW(store, HNSWConfig{M: 6, EfConstruction: 60, EfSearch: 40, Seed: 5})
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHNSW(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config() != h.Config() || loaded.Len() != h.Len() || loaded.Dim() != h.Dim() {
		t.Fatalf("round trip changed shape: %+v len=%d dim=%d", loaded.Config(), loaded.Len(), loaded.Dim())
	}
	for q := 0; q < 25; q++ {
		v, _ := norm.Get(kg.EntityID(q * 10))
		if !reflect.DeepEqual(h.TopK(v, 8), loaded.TopK(v, 8)) {
			t.Fatalf("query %d: loaded graph ranks differently", q)
		}
	}
	var again bytes.Buffer
	if err := loaded.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-serialized snapshot differs from the original")
	}
}

func TestHNSWEdgeCases(t *testing.T) {
	empty := BuildHNSW(NewStore(0, 4), DefaultHNSWConfig())
	if got := empty.TopK(Vector{1, 0, 0, 0}, 5); got != nil {
		t.Fatalf("empty graph returned %v", got)
	}
	var buf bytes.Buffer
	if err := empty.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded, err := LoadHNSW(bytes.NewReader(buf.Bytes())); err != nil || loaded.Len() != 0 {
		t.Fatalf("empty round trip: %v len=%d", err, loaded.Len())
	}

	store := randomStore(10, 4, 1)
	h := BuildHNSW(store, DefaultHNSWConfig())
	if got := h.TopK(Vector{1, 0}, 3); got != nil {
		t.Fatalf("dim mismatch returned %v", got)
	}
	if got := h.TopK(Vector{1, 0, 0, 0}, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := h.TopK(Vector{1, 0, 0, 0}, 100); len(got) != 10 {
		t.Fatalf("k > len returned %d results, want 10", len(got))
	}
}

// TestHNSWSkipsEntitiesWithoutVectors: only entities holding a vector are
// indexed; gaps in the dense ID space do not produce phantom neighbors.
func TestHNSWSkipsEntitiesWithoutVectors(t *testing.T) {
	s := NewStore(20, 4)
	for e := 0; e < 20; e += 3 {
		s.Set(kg.EntityID(e), Vector{float32(e), 1, 0, 0})
	}
	h := BuildHNSW(s, HNSWConfig{M: 4, EfConstruction: 20, EfSearch: 20, Seed: 1})
	if h.Len() != 7 {
		t.Fatalf("Len = %d, want 7", h.Len())
	}
	for _, nb := range h.TopK(Vector{5, 1, 0, 0}, 7) {
		if nb.ID%3 != 0 {
			t.Fatalf("phantom neighbor %d", nb.ID)
		}
	}
}
