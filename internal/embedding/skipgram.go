package embedding

import (
	"math"
	"math/rand"

	"thetis/internal/kg"
)

// TrainConfig controls skip-gram training.
type TrainConfig struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Window is the maximum context distance; the effective window per
	// center token is sampled uniformly from [1, Window] as in word2vec.
	Window int
	// Negatives is the number of negative samples per positive pair.
	Negatives int
	// Epochs is the number of passes over the walk corpus.
	Epochs int
	// LearningRate is the initial SGD step size, decayed linearly to
	// LearningRate/10 across training.
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultTrainConfig returns word2vec-style defaults sized for KGs of up to
// a few hundred thousand entities.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Dim: 48, Window: 4, Negatives: 5, Epochs: 3, LearningRate: 0.025, Seed: 1}
}

const (
	sigTableSize = 4096
	sigMax       = 6.0
	negTableSize = 1 << 20
)

// Train learns entity embeddings from an entity-only random-walk corpus.
// It is a convenience wrapper over TrainTokens with vocabulary equal to the
// entity ID space.
func Train(walks [][]kg.EntityID, maxEntities int, cfg TrainConfig) *Store {
	tokens := make([][]uint32, len(walks))
	for i, w := range walks {
		tw := make([]uint32, len(w))
		for j, e := range w {
			tw[j] = uint32(e)
		}
		tokens[i] = tw
	}
	return TrainTokens(tokens, maxEntities, maxEntities, cfg)
}

// TrainTokens learns embeddings from a token-walk corpus with skip-gram and
// negative sampling. The vocabulary has vocabSize tokens; the first
// numEntities of them are entity IDs and are the only vectors kept in the
// returned store (predicate tokens train context but are discarded).
// Tokens absent from every walk get no vector.
//
// Training is single-threaded by design: lock-free parallel SGD (HogWild)
// is a data race under the Go memory model, and at the corpus sizes this
// reproduction uses the sequential version trains in seconds.
func TrainTokens(walks [][]uint32, vocabSize, numEntities int, cfg TrainConfig) *Store {
	if cfg.Dim <= 0 || len(walks) == 0 {
		return NewStore(numEntities, max(cfg.Dim, 1))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Vocabulary and unigram counts.
	counts := make([]int, vocabSize)
	tokens := 0
	for _, w := range walks {
		for _, e := range w {
			counts[e]++
			tokens++
		}
	}

	negTable := buildNegTable(counts)
	sig := buildSigmoidTable()

	// Parameter matrices: syn0 = input (entity) vectors, syn1 = output
	// (context) vectors. Initialized as in word2vec: syn0 uniform small,
	// syn1 zero.
	dim := cfg.Dim
	syn0 := make([]float32, vocabSize*dim)
	syn1 := make([]float32, vocabSize*dim)
	for i := range syn0 {
		syn0[i] = (rng.Float32() - 0.5) / float32(dim)
	}

	totalSteps := cfg.Epochs * tokens
	step := 0
	lr0 := cfg.LearningRate
	grad := make([]float32, dim)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, walk := range walks {
			for ci, center := range walk {
				step++
				lr := lr0 * (1 - float64(step)/float64(totalSteps+1))
				if lr < lr0/10 {
					lr = lr0 / 10
				}
				win := 1 + rng.Intn(cfg.Window)
				lo, hi := ci-win, ci+win
				if lo < 0 {
					lo = 0
				}
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				for pos := lo; pos <= hi; pos++ {
					if pos == ci {
						continue
					}
					context := walk[pos]
					trainPair(syn0, syn1, int(context), int(center), dim, lr, cfg.Negatives, negTable, sig, rng, grad)
				}
			}
		}
	}

	store := NewStore(numEntities, dim)
	vec := make(Vector, dim)
	for e := 0; e < numEntities; e++ {
		if counts[e] == 0 {
			continue
		}
		copy(vec, syn0[e*dim:(e+1)*dim])
		store.Set(kg.EntityID(e), vec)
	}
	return store
}

// trainPair performs one skip-gram update: input word `in` against positive
// target `target` plus sampled negatives.
func trainPair(syn0, syn1 []float32, in, target, dim int, lr float64, negatives int, negTable []uint32, sig []float32, rng *rand.Rand, grad []float32) {
	v := syn0[in*dim : (in+1)*dim]
	for i := range grad {
		grad[i] = 0
	}
	for n := 0; n <= negatives; n++ {
		var tgt int
		var label float32
		if n == 0 {
			tgt, label = target, 1
		} else {
			tgt = int(negTable[rng.Intn(len(negTable))])
			if tgt == target {
				continue
			}
			label = 0
		}
		w := syn1[tgt*dim : (tgt+1)*dim]
		var dot float64
		for i := 0; i < dim; i++ {
			dot += float64(v[i]) * float64(w[i])
		}
		g := float32(lr) * (label - sigmoid(sig, dot))
		for i := 0; i < dim; i++ {
			grad[i] += g * w[i]
			w[i] += g * v[i]
		}
	}
	for i := 0; i < dim; i++ {
		v[i] += grad[i]
	}
}

// buildNegTable builds the unigram^0.75 negative-sampling table.
func buildNegTable(counts []int) []uint32 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += math.Pow(float64(c), 0.75)
		}
	}
	table := make([]uint32, 0, negTableSize)
	if total == 0 {
		return table
	}
	for e, c := range counts {
		if c == 0 {
			continue
		}
		n := int(math.Ceil(math.Pow(float64(c), 0.75) / total * negTableSize))
		for i := 0; i < n; i++ {
			table = append(table, uint32(e))
		}
	}
	return table
}

func buildSigmoidTable() []float32 {
	t := make([]float32, sigTableSize)
	for i := range t {
		x := (float64(i)/sigTableSize*2 - 1) * sigMax
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return t
}

func sigmoid(table []float32, x float64) float32 {
	if x >= sigMax {
		return 1
	}
	if x <= -sigMax {
		return 0
	}
	i := int((x + sigMax) / (2 * sigMax) * sigTableSize)
	if i >= sigTableSize {
		i = sigTableSize - 1
	}
	return table[i]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TrainGraph is a convenience helper chaining walk generation and training,
// honoring WalkConfig.IncludePredicates.
func TrainGraph(g *kg.Graph, wcfg WalkConfig, tcfg TrainConfig) *Store {
	walks, vocab := GenerateTokenWalks(g, wcfg)
	return TrainTokens(walks, vocab, g.NumEntities(), tcfg)
}
