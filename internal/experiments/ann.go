package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"thetis/internal/core"
	"thetis/internal/datagen"
	"thetis/internal/embedding"
	"thetis/internal/kg"
	"thetis/internal/metrics"
)

// ANN differential harness (`benchrunner -exp ann`, docs/ANN.md): measures
// what the HNSW top-k σ mode trades away and what it buys, against exact
// embedding σ on the same corpus and queries. Two layers:
//
//   - index quality: recall@k of HNSW TopK against brute-force exact
//     nearest neighbors over the query entities, swept across efSearch;
//   - ranking quality: the NDCG@10 each σ achieves against the benchmark
//     ground truth. Drift is exact-σ NDCG minus top-k-σ NDCG — the quality
//     the approximation costs on the end metric. Agreement (NDCG@10 of the
//     top-k ranking graded by the exact ranking's scores) is reported as an
//     informational column: rank swaps among near-tied tables inflate it
//     without moving retrieval quality.
//
// The anncheck gate (ann_test.go, `make anncheck`) pins the k=10/ef=64
// operating point to recall ≥ 0.95 and drift ≤ 0.02.

// ANNRow is one swept (k, efSearch) operating point.
type ANNRow struct {
	K, Ef int
	// Recall is mean recall@K of TopK vs brute force over query entities.
	Recall float64
	// Drift is exact NDCG@10 minus top-k σ NDCG@10, both against ground
	// truth (measured on the k=10 rows; 0 when not measured).
	Drift float64
	// Agreement is mean NDCG@10 of the top-k σ ranking graded by the exact
	// σ top-10 scores (1 = identical top-10; k=10 rows only).
	Agreement float64
	// TopKLatency is the mean per-entity TopK call time.
	TopKLatency time.Duration
}

// ANNResult is the harness output (rendered to the bench report and
// serialized into BENCH_ann.json).
type ANNResult struct {
	Entities   int // entities probed (distinct query entities)
	GraphNodes int // entities indexed by the graph
	Dim        int
	Build      time.Duration
	Rows       []ANNRow

	// ExactNDCG is the exact-σ NDCG@10 baseline against ground truth.
	ExactNDCG float64

	// First-touch σ cost at the k=10/ef=64 operating point: mean full-scan
	// search time per query with a fresh σ cache, exact vs top-k σ.
	ExactSearch, AnnSearch time.Duration
	Speedup                float64

	// Recall10 and Drift10 are the acceptance-gate numbers (k=10, ef=64).
	Recall10, Drift10 float64
}

// efIndex pins a TopK beam width, so one built graph serves every swept
// operating point.
type efIndex struct {
	ix *embedding.HNSW
	ef int
}

func (e efIndex) TopK(vec embedding.Vector, k int) []embedding.Neighbor {
	return e.ix.TopKEf(vec, k, e.ef)
}

// RunANN builds the HNSW graph over the environment's embedding store and
// runs the recall/NDCG differential sweep.
func RunANN(env *Env) ANNResult {
	out := ANNResult{Dim: env.Store.Dim()}

	t0 := time.Now()
	ix := embedding.BuildHNSW(env.Store, embedding.DefaultHNSWConfig())
	out.Build = time.Since(t0)
	out.GraphNodes = ix.Len()
	norm := env.Store.Normalized()

	queries := append(append([]datagen.BenchmarkQuery{}, env.Queries1...), env.Queries5...)

	// Probe entities: every distinct entity of the benchmark query sets —
	// the vectors the serving path actually resolves neighborhoods for.
	seen := map[kg.EntityID]bool{}
	var probes []kg.EntityID
	for _, bq := range queries {
		for _, e := range bq.Query.DistinctEntities() {
			if !seen[e] {
				seen[e] = true
				probes = append(probes, e)
			}
		}
	}
	out.Entities = len(probes)

	// Exact reference rankings (top 10 per query) and the ground-truth
	// NDCG baseline, computed once.
	exactTop := make([][]core.Result, len(queries))
	exactEng := env.EngineEmbeddings()
	var exactTotal time.Duration
	var exactNDCG float64
	for i, bq := range queries {
		t0 := time.Now()
		res, _ := exactEng.SearchCandidates(bq.Query, nil, 10)
		exactTotal += time.Since(t0)
		exactTop[i] = res
		exactNDCG += metrics.NDCG(core.RankedTables(res), env.GT[bq.Name].Grades, 10)
	}
	out.ExactSearch = exactTotal / time.Duration(len(queries))
	out.ExactNDCG = exactNDCG / float64(len(queries))

	sweep := []struct{ k, ef int }{
		{10, 16}, {10, 32}, {10, 64}, {10, 128}, {5, 64}, {20, 64},
	}
	for _, pt := range sweep {
		row := ANNRow{K: pt.k, Ef: pt.ef}
		// Index-level recall@k vs brute force.
		var recall float64
		var topkTime time.Duration
		counted := 0
		for _, e := range probes {
			v, ok := norm.Get(e)
			if !ok {
				continue
			}
			exact := embedding.BruteForceTopK(norm, v, pt.k)
			t0 := time.Now()
			got := ix.TopKEf(v, pt.k, pt.ef)
			topkTime += time.Since(t0)
			want := make(map[kg.EntityID]bool, len(exact))
			for _, nb := range exact {
				want[nb.ID] = true
			}
			hit := 0
			for _, nb := range got {
				if want[nb.ID] {
					hit++
				}
			}
			recall += float64(hit) / float64(len(exact))
			counted++
		}
		if counted > 0 {
			row.Recall = recall / float64(counted)
			row.TopKLatency = topkTime / time.Duration(counted)
		}
		// Ranking-level NDCG@10 at k=10 points (the serving shape).
		if pt.k == 10 {
			annEng := env.EngineEmbeddings()
			annEng.SigmaTopK = pt.k
			annEng.Ann = core.StaticAnn(efIndex{ix: ix, ef: pt.ef})
			var annNDCG, agreeSum float64
			agreed := 0
			var annTotal time.Duration
			for i, bq := range queries {
				t0 := time.Now()
				res, _ := annEng.SearchCandidates(bq.Query, nil, 10)
				annTotal += time.Since(t0)
				ranked := core.RankedTables(res)
				annNDCG += metrics.NDCG(ranked, env.GT[bq.Name].Grades, 10)
				grades := make(map[int]float64, len(exactTop[i]))
				for _, r := range exactTop[i] {
					grades[int(r.Table)] = r.Score
				}
				if len(grades) > 0 {
					agreeSum += metrics.NDCG(ranked, grades, 10)
					agreed++
				}
			}
			row.Drift = out.ExactNDCG - annNDCG/float64(len(queries))
			if agreed > 0 {
				row.Agreement = agreeSum / float64(agreed)
			}
			if pt.ef == 64 {
				out.AnnSearch = annTotal / time.Duration(len(queries))
				out.Recall10 = row.Recall
				out.Drift10 = row.Drift
			}
		}
		out.Rows = append(out.Rows, row)
	}
	if out.AnnSearch > 0 {
		out.Speedup = float64(out.ExactSearch) / float64(out.AnnSearch)
	}
	return out
}

// Render prints the sweep and the first-touch σ comparison.
func (r ANNResult) Render(w io.Writer) {
	renderHeader(w, "ANN top-k sigma: HNSW recall and ranking drift vs exact embedding sigma")
	fmt.Fprintf(w, "graph: %d nodes, dim %d, built in %v (M=%d efC=%d); %d probe entities; exact NDCG@10 %.4f\n\n",
		r.GraphNodes, r.Dim, r.Build.Round(time.Millisecond),
		embedding.DefaultHNSWConfig().M, embedding.DefaultHNSWConfig().EfConstruction,
		r.Entities, r.ExactNDCG)
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "k\tefSearch\trecall@k\tNDCG@10 drift\tagreement\tTopK latency")
	for _, row := range r.Rows {
		drift, agree := "-", "-"
		if row.K == 10 {
			drift = fmt.Sprintf("%.4f", row.Drift)
			agree = fmt.Sprintf("%.4f", row.Agreement)
		}
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%s\t%s\t%v\n", row.K, row.Ef, row.Recall, drift, agree, row.TopKLatency.Round(time.Microsecond))
	}
	tw.Flush()
	fmt.Fprintf(w, "\nfirst-touch search (full scan, fresh sigma cache, top-10):\n")
	fmt.Fprintf(w, "  exact sigma    %v/query\n", r.ExactSearch.Round(time.Microsecond))
	fmt.Fprintf(w, "  top-10 sigma   %v/query (ef=64)  speedup %.2fx\n", r.AnnSearch.Round(time.Microsecond), r.Speedup)
	fmt.Fprintf(w, "  gate: recall@10 %.4f (>= 0.95), drift %.4f (<= 0.02)\n", r.Recall10, r.Drift10)
}

// JSON serializes the result as one BENCH_ann.json trajectory record.
func (r ANNResult) JSON() ([]byte, error) {
	type jsonRow struct {
		K          int     `json:"k"`
		Ef         int     `json:"ef"`
		Recall     float64 `json:"recall"`
		Drift      float64 `json:"ndcg10_drift"`
		Agreement  float64 `json:"ndcg10_agreement"`
		TopKMicros float64 `json:"topk_us"`
	}
	rows := make([]jsonRow, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = jsonRow{
			K: row.K, Ef: row.Ef, Recall: row.Recall,
			Drift: row.Drift, Agreement: row.Agreement,
			TopKMicros: float64(row.TopKLatency.Microseconds()),
		}
	}
	return json.MarshalIndent(map[string]any{
		"experiment":     "ann",
		"graph_nodes":    r.GraphNodes,
		"dim":            r.Dim,
		"build_seconds":  r.Build.Seconds(),
		"probe_entities": r.Entities,
		"exact_ndcg10":   r.ExactNDCG,
		"sweep":          rows,
		"sigma_first_touch": map[string]any{
			"exact_us":  float64(r.ExactSearch.Microseconds()),
			"ann_us":    float64(r.AnnSearch.Microseconds()),
			"speedup":   r.Speedup,
			"recall_10": r.Recall10,
			"drift_10":  r.Drift10,
		},
	}, "", "  ")
}
