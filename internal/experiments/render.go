package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"thetis/internal/metrics"
)

// newTabWriter standardizes experiment table formatting.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// renderHeader prints a boxed section title.
func renderHeader(w io.Writer, title string) {
	line := strings.Repeat("=", len(title))
	fmt.Fprintf(w, "\n%s\n%s\n", title, line)
}

// fmtSummary renders a metrics.Summary as the box-plot statistics the
// paper's figures show.
func fmtSummary(s metrics.Summary) string {
	return fmt.Sprintf("med=%.3f mean=%.3f q1=%.3f q3=%.3f min=%.3f max=%.3f",
		s.Median, s.Mean, s.Q1, s.Q3, s.Min, s.Max)
}

// fmtPct formats a ratio as a percentage with one decimal.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
